// Kernel-equivalence suite for the SIMD filter engine (core/simd.h,
// core/posting_store.h). Two layers:
//
//  * property tests sweep random inputs through every IsaLevel the
//    machine supports and assert each kernel family (block decode,
//    intersection, count accumulate/extract) is bit-identical to a
//    straightforward scalar reference;
//  * end-to-end tests run the same self-join, R-S join and index Search
//    under each forced dispatch level and assert identical result pairs
//    AND identical JoinStats counters — the dispatch level must be
//    unobservable in anything but wall-clock.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/kjoin.h"
#include "core/kjoin_index.h"
#include "core/posting_store.h"
#include "core/simd.h"
#include "data/benchmark_suite.h"

namespace kjoin {
namespace {

using simd::IsaLevel;

std::vector<IsaLevel> SupportedLevels() {
  std::vector<IsaLevel> levels;
  for (IsaLevel level : {IsaLevel::kScalar, IsaLevel::kSse42, IsaLevel::kAvx2}) {
    if (static_cast<int>(level) <= static_cast<int>(simd::MaxSupportedLevel())) {
      levels.push_back(level);
    }
  }
  return levels;
}

// Sorted, deduplicated random doc list in [0, universe).
std::vector<int32_t> RandomDocs(Rng& rng, int32_t max_len, int32_t universe) {
  const int32_t len = 1 + static_cast<int32_t>(rng.NextUint64(static_cast<uint64_t>(max_len)));
  std::set<int32_t> docs;
  while (static_cast<int32_t>(docs.size()) < len) {
    docs.insert(static_cast<int32_t>(rng.NextUint64(static_cast<uint64_t>(universe))));
  }
  return std::vector<int32_t>(docs.begin(), docs.end());
}

// Reference bit-packer matching the PostingStore block payload: each
// value (delta - 1) at `bits` bits, LSB-first from bit 0, plus one pad
// word so vector decoders can over-read.
std::vector<uint64_t> PackDeltas(const std::vector<int32_t>& docs, int32_t first, int bits) {
  std::vector<uint64_t> words(docs.empty() ? 1 : (docs.size() * bits + 63) / 64 + 1, 0);
  int32_t prev = first;
  for (size_t i = 0; i < docs.size(); ++i) {
    const uint64_t v = static_cast<uint64_t>(docs[i] - prev - 1);
    const size_t bit = i * static_cast<size_t>(bits);
    words[bit / 64] |= v << (bit % 64);
    if (bit % 64 + static_cast<size_t>(bits) > 64) {
      words[bit / 64 + 1] |= v >> (64 - bit % 64);
    }
    prev = docs[i];
  }
  return words;
}

TEST(SimdKernelTest, DecodeDeltaBlockMatchesScalarAtEveryLevel) {
  Rng rng(71);
  for (int iter = 0; iter < 200; ++iter) {
    // Build a block-shaped list: first id raw, up to 127 packed deltas.
    std::vector<int32_t> docs = RandomDocs(rng, simd::kCounterBlock, 1 << 14);
    const int32_t first = docs.front();
    docs.erase(docs.begin());
    int32_t max_gap = 0;
    int32_t prev = first;
    for (int32_t d : docs) {
      max_gap = std::max(max_gap, d - prev - 1);
      prev = d;
    }
    const int bits = max_gap == 0 ? 0 : 64 - static_cast<int>(__builtin_clzll(
                                                 static_cast<uint64_t>(max_gap)));
    const std::vector<uint64_t> words = PackDeltas(docs, first, bits);
    for (IsaLevel level : SupportedLevels()) {
      std::vector<int32_t> out(docs.size() + 8, -1);
      simd::DecodeDeltaBlockAt(level, words.data(), bits,
                               static_cast<int32_t>(docs.size()), first, out.data());
      out.resize(docs.size());
      EXPECT_EQ(out, docs) << "level=" << simd::IsaLevelName(level) << " bits=" << bits
                           << " iter=" << iter;
    }
  }
}

TEST(SimdKernelTest, DecodeConsecutiveRunUsesZeroBits) {
  // bits == 0 is the consecutive-run encoding: no payload words read
  // beyond the pad, output is an iota from first + 1.
  const uint64_t pad = 0;
  for (IsaLevel level : SupportedLevels()) {
    std::vector<int32_t> out(127, -1);
    simd::DecodeDeltaBlockAt(level, &pad, /*bits=*/0, /*count=*/127, /*first=*/41,
                             out.data());
    for (int32_t i = 0; i < 127; ++i) {
      ASSERT_EQ(out[static_cast<size_t>(i)], 42 + i) << simd::IsaLevelName(level);
    }
  }
}

TEST(SimdKernelTest, IntersectionMatchesReferenceAcrossSkews) {
  Rng rng(72);
  // Length ratios from balanced to ~1:1000 — crossing the gallop switch.
  const int32_t kShort[] = {1, 3, 8, 33, 130, 700};
  for (int iter = 0; iter < 60; ++iter) {
    for (int32_t short_len : kShort) {
      const std::vector<int32_t> a = RandomDocs(rng, short_len, 1 << 13);
      const std::vector<int32_t> b = RandomDocs(rng, 1000, 1 << 13);
      std::vector<int32_t> expect;
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(expect));
      for (IsaLevel level : SupportedLevels()) {
        for (int variant = 0; variant < 3; ++variant) {
          std::vector<int32_t> out(std::min(a.size(), b.size()) + 1);
          int32_t n = 0;
          switch (variant) {
            case 0:
              n = simd::IntersectSortedAt(level, a.data(), static_cast<int32_t>(a.size()),
                                          b.data(), static_cast<int32_t>(b.size()),
                                          out.data());
              break;
            case 1:
              n = simd::IntersectLinearAt(level, a.data(), static_cast<int32_t>(a.size()),
                                          b.data(), static_cast<int32_t>(b.size()),
                                          out.data());
              break;
            default:
              n = simd::IntersectGallopAt(level, a.data(), static_cast<int32_t>(a.size()),
                                          b.data(), static_cast<int32_t>(b.size()),
                                          out.data());
          }
          out.resize(static_cast<size_t>(n));
          EXPECT_EQ(out, expect)
              << "level=" << simd::IsaLevelName(level) << " variant=" << variant
              << " an=" << a.size() << " bn=" << b.size();
        }
      }
    }
  }
}

TEST(SimdKernelTest, IntersectionHandlesEmptyAndDisjoint) {
  const std::vector<int32_t> a = {1, 5, 9};
  const std::vector<int32_t> b = {2, 6, 10};
  for (IsaLevel level : SupportedLevels()) {
    int32_t out[4];
    EXPECT_EQ(simd::IntersectSortedAt(level, a.data(), 0, b.data(), 3, out), 0);
    EXPECT_EQ(simd::IntersectSortedAt(level, a.data(), 3, b.data(), 0, out), 0);
    EXPECT_EQ(simd::IntersectSortedAt(level, a.data(), 3, b.data(), 3, out), 0);
    EXPECT_EQ(simd::IntersectGallopAt(level, a.data(), 3, b.data(), 3, out), 0);
  }
}

TEST(SimdKernelTest, AccumulateExtractMatchesReferenceAndClears) {
  Rng rng(73);
  const int32_t kUniverse = 4096;  // 32 counter blocks
  const int32_t num_blocks = kUniverse / simd::kCounterBlock;
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<uint8_t> counts(static_cast<size_t>(kUniverse), 0);
    std::vector<uint64_t> touched((static_cast<size_t>(num_blocks) + 63) / 64, 0);
    std::vector<int> reference(static_cast<size_t>(kUniverse), 0);
    const int lists = 1 + static_cast<int>(rng.NextUint64(6));
    for (int l = 0; l < lists; ++l) {
      const std::vector<int32_t> docs = RandomDocs(rng, 600, kUniverse);
      simd::AccumulateCounts(docs.data(), static_cast<int32_t>(docs.size()), counts.data(),
                             touched.data());
      for (int32_t d : docs) reference[static_cast<size_t>(d)]++;
    }
    // Every touched block must be marked.
    for (int32_t d = 0; d < kUniverse; ++d) {
      if (reference[static_cast<size_t>(d)] == 0) continue;
      const int32_t blk = d / simd::kCounterBlock;
      ASSERT_TRUE(touched[static_cast<size_t>(blk) / 64] & (1ull << (blk % 64)));
    }
    const int threshold = 1 + static_cast<int>(rng.NextUint64(3));
    const IsaLevel level = SupportedLevels()[iter % SupportedLevels().size()];
    std::vector<int32_t> got;
    for (int32_t blk = 0; blk < num_blocks; ++blk) {
      int32_t buf[simd::kCounterBlock];
      const int32_t begin = blk * simd::kCounterBlock;
      const int32_t n = simd::ExtractAndClearBlockAt(level, counts.data() + begin, begin,
                                                     simd::kCounterBlock, threshold, buf);
      got.insert(got.end(), buf, buf + n);
    }
    std::vector<int32_t> expect;
    for (int32_t d = 0; d < kUniverse; ++d) {
      if (reference[static_cast<size_t>(d)] >= threshold) expect.push_back(d);
    }
    EXPECT_EQ(got, expect) << "level=" << simd::IsaLevelName(level)
                           << " threshold=" << threshold;
    // Extraction clears as it goes: the array must be all-zero again.
    EXPECT_EQ(std::count(counts.begin(), counts.end(), 0),
              static_cast<long>(counts.size()));
  }
}

TEST(SimdKernelTest, AccumulateSaturatesAt255) {
  std::vector<uint8_t> counts(static_cast<size_t>(simd::kCounterBlock), 0);
  uint64_t touched = 0;
  const int32_t doc = 7;
  for (int i = 0; i < 300; ++i) simd::AccumulateCounts(&doc, 1, counts.data(), &touched);
  EXPECT_EQ(counts[7], 255);
  for (IsaLevel level : SupportedLevels()) {
    std::vector<uint8_t> copy = counts;
    int32_t buf[simd::kCounterBlock];
    const int32_t n = simd::ExtractAndClearBlockAt(level, copy.data(), 0,
                                                   simd::kCounterBlock, 255, buf);
    ASSERT_EQ(n, 1) << simd::IsaLevelName(level);
    EXPECT_EQ(buf[0], 7);
  }
}

// ---------------------------------------------------------------------------
// PostingStore round-trips.

TEST(PostingStoreTest, BuildDecodeRoundTrip) {
  Rng rng(74);
  for (int iter = 0; iter < 30; ++iter) {
    PostingStore::Builder builder;
    std::vector<std::pair<SigId, std::vector<int32_t>>> lists;
    SigId id = 0;
    const int num_lists = 1 + static_cast<int>(rng.NextUint64(40));
    for (int l = 0; l < num_lists; ++l) {
      id += 1 + static_cast<SigId>(rng.NextUint64(1 << 20));
      lists.emplace_back(id, RandomDocs(rng, 500, 1 << 15));
      builder.Add(id, lists.back().second.data(),
                  static_cast<int32_t>(lists.back().second.size()));
    }
    const PostingStore store = builder.Finish();
    ASSERT_EQ(store.num_lists(), num_lists);
    int64_t entries = 0;
    for (const auto& [key, docs] : lists) entries += static_cast<int64_t>(docs.size());
    EXPECT_EQ(store.num_entries(), entries);
    for (const auto& [key, docs] : lists) {
      const int32_t slot = store.Find(key);
      ASSERT_GE(slot, 0);
      ASSERT_EQ(store.length(slot), static_cast<int32_t>(docs.size()));
      std::vector<int32_t> out(docs.size());
      store.Decode(slot, out.data());
      EXPECT_EQ(out, docs);
    }
    EXPECT_EQ(store.Find(id + 1), -1);
    // ForEach visits every list ascending with the same payloads.
    size_t visited = 0;
    store.ForEach([&](SigId key, const int32_t* docs, int32_t count) {
      ASSERT_LT(visited, lists.size());
      EXPECT_EQ(key, lists[visited].first);
      ASSERT_EQ(count, static_cast<int32_t>(lists[visited].second.size()));
      EXPECT_TRUE(std::equal(docs, docs + count, lists[visited].second.begin()));
      ++visited;
    });
    EXPECT_EQ(visited, lists.size());
  }
}

TEST(PostingStoreTest, CountBelowAndAccumulateBelowRespectLimit) {
  Rng rng(75);
  for (int iter = 0; iter < 30; ++iter) {
    const std::vector<int32_t> docs = RandomDocs(rng, 700, 2000);
    PostingStore::Builder builder;
    builder.Add(11, docs.data(), static_cast<int32_t>(docs.size()));
    const PostingStore store = builder.Finish();
    const int32_t slot = store.Find(11);
    for (int32_t limit : {0, 1, 100, 1000, 1999, 2000, 5000}) {
      const int32_t expect = static_cast<int32_t>(
          std::lower_bound(docs.begin(), docs.end(), limit) - docs.begin());
      EXPECT_EQ(store.CountBelow(slot, limit), expect) << "limit=" << limit;
      std::vector<uint8_t> counts(2048, 0);
      std::vector<uint64_t> touched(1, 0);
      store.AccumulateSlotBelow(slot, limit, counts.data(), touched.data());
      int32_t bumped = 0;
      for (size_t d = 0; d < counts.size(); ++d) {
        if (!counts[d]) continue;
        ++bumped;
        EXPECT_LT(static_cast<int32_t>(d), limit);
      }
      EXPECT_EQ(bumped, expect);
    }
  }
}

TEST(PostingStoreTest, IntersectSlotsMatchesReference) {
  Rng rng(76);
  for (int iter = 0; iter < 40; ++iter) {
    const std::vector<int32_t> a = RandomDocs(rng, 900, 1 << 12);
    const std::vector<int32_t> b = RandomDocs(rng, 40, 1 << 12);
    PostingStore::Builder builder;
    builder.Add(1, a.data(), static_cast<int32_t>(a.size()));
    builder.Add(2, b.data(), static_cast<int32_t>(b.size()));
    const PostingStore store = builder.Finish();
    std::vector<int32_t> expect;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expect));
    for (IsaLevel level : SupportedLevels()) {
      simd::SetActiveLevelForTest(level);
      std::vector<int32_t> out(std::min(a.size(), b.size()) + 1);
      const int32_t n = store.IntersectSlots(store.Find(1), store.Find(2), out.data());
      out.resize(static_cast<size_t>(n));
      EXPECT_EQ(out, expect) << simd::IsaLevelName(level);
      // Symmetric: driving from the other slot gives the same set.
      std::vector<int32_t> out2(out.size() + 8);
      const int32_t n2 = store.IntersectSlots(store.Find(2), store.Find(1), out2.data());
      out2.resize(static_cast<size_t>(n2));
      EXPECT_EQ(out2, expect) << simd::IsaLevelName(level);
    }
    simd::ResetActiveLevelForTest();
  }
}

// ---------------------------------------------------------------------------
// End-to-end dispatch invariance: pairs and JoinStats counters must be
// identical at every forced level (docs/performance.md's contract).

void ExpectSameCounters(const JoinStats& a, const JoinStats& b, const char* label) {
  EXPECT_EQ(a.total_signatures, b.total_signatures) << label;
  EXPECT_EQ(a.prefix_signatures, b.prefix_signatures) << label;
  EXPECT_EQ(a.candidates, b.candidates) << label;
  EXPECT_EQ(a.results, b.results) << label;
  EXPECT_EQ(a.verify.pairs_verified, b.verify.pairs_verified) << label;
  EXPECT_EQ(a.verify.pruned_by_count, b.verify.pruned_by_count) << label;
  EXPECT_EQ(a.verify.pruned_by_weighted_count, b.verify.pruned_by_weighted_count) << label;
  EXPECT_EQ(a.verify.accepted_by_lower_bound, b.verify.accepted_by_lower_bound) << label;
  EXPECT_EQ(a.verify.rejected_by_upper_bound, b.verify.rejected_by_upper_bound) << label;
  EXPECT_EQ(a.verify.hungarian_runs, b.verify.hungarian_runs) << label;
}

class SimdDispatchTest : public testing::Test {
 protected:
  void TearDown() override { simd::ResetActiveLevelForTest(); }
};

TEST_F(SimdDispatchTest, SelfJoinIdenticalAtEveryLevel) {
  const BenchmarkData data = MakeResBenchmark(/*seed=*/301);
  const PreparedObjects prepared =
      BuildObjects(data.hierarchy, data.dataset, /*multi_mapping=*/false);
  KJoinOptions options;
  options.delta = 0.8;
  options.tau = 0.7;
  const KJoin join(data.hierarchy, options);

  simd::SetActiveLevelForTest(IsaLevel::kScalar);
  const JoinResult baseline = join.SelfJoin(prepared.objects);
  EXPECT_GT(baseline.stats.results, 0);
  for (IsaLevel level : SupportedLevels()) {
    for (int threads : {1, 2, 8}) {
      simd::SetActiveLevelForTest(level);
      KJoinOptions opt = options;
      opt.num_threads = threads;
      const JoinResult got = KJoin(data.hierarchy, opt).SelfJoin(prepared.objects);
      EXPECT_EQ(got.pairs, baseline.pairs)
          << simd::IsaLevelName(level) << " threads=" << threads;
      ExpectSameCounters(got.stats, baseline.stats, simd::IsaLevelName(level));
    }
  }
}

TEST_F(SimdDispatchTest, RSJoinIdenticalAtEveryLevel) {
  const BenchmarkData data = MakePubBenchmark(/*seed=*/302);
  const PreparedObjects prepared =
      BuildObjects(data.hierarchy, data.dataset, /*multi_mapping=*/false);
  std::vector<Object> left(prepared.objects.begin(),
                           prepared.objects.begin() + prepared.objects.size() / 2);
  std::vector<Object> right(prepared.objects.begin() + prepared.objects.size() / 2,
                            prepared.objects.end());
  KJoinOptions options;
  options.delta = 0.8;
  options.tau = 0.75;
  const KJoin join(data.hierarchy, options);

  simd::SetActiveLevelForTest(IsaLevel::kScalar);
  const JoinResult baseline = join.Join(left, right);
  for (IsaLevel level : SupportedLevels()) {
    simd::SetActiveLevelForTest(level);
    const JoinResult got = join.Join(left, right);
    EXPECT_EQ(got.pairs, baseline.pairs) << simd::IsaLevelName(level);
    ExpectSameCounters(got.stats, baseline.stats, simd::IsaLevelName(level));
  }
}

TEST_F(SimdDispatchTest, IndexSearchIdenticalAtEveryLevelAndAfterInserts) {
  const BenchmarkData data = MakeResBenchmark(/*seed=*/303);
  const PreparedObjects prepared =
      BuildObjects(data.hierarchy, data.dataset, /*multi_mapping=*/false);
  KJoinOptions options;
  options.delta = 0.8;
  options.tau = 0.7;
  // Split: most objects frozen into the flat store, the rest inserted
  // into the mutable tail — Search must cross both identically.
  const size_t cut = prepared.objects.size() - 50;
  std::vector<Object> base(prepared.objects.begin(),
                           prepared.objects.begin() + static_cast<long>(cut));
  KJoinIndex index(data.hierarchy, options, std::move(base));
  for (size_t i = cut; i < prepared.objects.size(); ++i) {
    index.Insert(prepared.objects[i]);
  }

  std::vector<std::vector<SearchHit>> baseline;
  simd::SetActiveLevelForTest(IsaLevel::kScalar);
  for (size_t q = 0; q < 40; ++q) baseline.push_back(index.Search(prepared.objects[q]));
  for (IsaLevel level : SupportedLevels()) {
    simd::SetActiveLevelForTest(level);
    for (size_t q = 0; q < 40; ++q) {
      EXPECT_EQ(index.Search(prepared.objects[q]), baseline[q])
          << simd::IsaLevelName(level) << " query=" << q;
    }
  }
}

}  // namespace
}  // namespace kjoin
