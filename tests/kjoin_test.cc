// End-to-end tests of the K-Join driver: completeness/correctness against
// the exhaustive NaiveJoin oracle across the full option matrix
// (signature schemes × prefix rules × verifiers × metrics × modes), the
// paper's running example, and R-S joins.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "baselines/naive_join.h"
#include "common/rng.h"
#include "core/kjoin.h"
#include "data/benchmark_suite.h"
#include "data/generator.h"
#include "hierarchy/dag.h"
#include "hierarchy/hierarchy_builder.h"
#include "hierarchy/hierarchy_generator.h"

namespace kjoin {
namespace {

using PairSet = std::set<std::pair<int32_t, int32_t>>;

PairSet ToSet(const std::vector<std::pair<int32_t, int32_t>>& pairs) {
  PairSet set;
  for (auto [a, b] : pairs) {
    if (a > b) std::swap(a, b);
    set.emplace(a, b);
  }
  return set;
}

TEST(KJoinTest, PaperRunningExample) {
  // Table 1 objects, δ = 0.7, τ = 0.6. ⟨S1, S3⟩ is the worked answer.
  const Hierarchy tree = MakeFigure1Hierarchy();
  EntityMatcher matcher(tree);
  ObjectBuilder builder(matcher, /*multi_mapping=*/false);
  const std::vector<std::vector<std::string>> table1 = {
      {"BurgerKing", "MountainView"},
      {"Pizza", "PaloAlto", "Brooklyn"},
      {"Fastfood", "GoogleHeadquarters"},
      {"PizzaHut", "KFC", "CA"},
      {"Pizza", "GoogleHeadquarters"},
      {"Fastfood", "Manhattan"},
      {"Brooklyn", "Food"},
      {"Pizza", "KFC", "Dominos", "SanFrancisco", "Manhattan", "Brooklyn"},
      {"Fastfood", "PizzaHut", "BurgerKing", "PaloAlto", "MountainView", "NewYork"},
  };
  std::vector<Object> objects;
  for (size_t i = 0; i < table1.size(); ++i) {
    objects.push_back(builder.Build(static_cast<int32_t>(i), table1[i]));
  }

  KJoinOptions options;
  options.delta = 0.7;
  options.tau = 0.6;
  const KJoin join(tree, options);
  const JoinResult result = join.SelfJoin(objects);
  const JoinResult oracle = NaiveJoin(tree, options).SelfJoin(objects);
  EXPECT_EQ(ToSet(result.pairs), ToSet(oracle.pairs));
  // S1 (index 0) and S3 (index 2) must be reported.
  EXPECT_TRUE(ToSet(result.pairs).count({0, 2}));
}

TEST(KJoinTest, FilterNeverExceedsAllPairs) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  EntityMatcher matcher(tree);
  ObjectBuilder builder(matcher, false);
  Rng rng(5);
  std::vector<std::string> labels;
  for (NodeId v = 1; v < tree.num_nodes(); ++v) labels.push_back(tree.label(v));
  std::vector<Object> objects;
  for (int i = 0; i < 40; ++i) {
    std::vector<std::string> tokens;
    const int n = 1 + static_cast<int>(rng.NextUint64(5));
    for (int k = 0; k < n; ++k) tokens.push_back(labels[rng.NextUint64(labels.size())]);
    objects.push_back(builder.Build(i, tokens));
  }
  KJoinOptions options;
  options.delta = 0.7;
  options.tau = 0.8;
  const JoinResult result = KJoin(tree, options).SelfJoin(objects);
  EXPECT_LE(result.stats.candidates, 40 * 39 / 2);
  EXPECT_GE(result.stats.candidates, result.stats.results);
}

// -------- randomized completeness sweep over the option matrix ----------

struct SweepCase {
  SignatureScheme scheme;
  bool weighted_prefix;
  VerifyMode verify_mode;
  SetMetric set_metric;
  ElementMetric element_metric;
  bool plus_mode;
  double delta;
  double tau;
};

std::string CaseName(const testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string name;
  switch (c.scheme) {
    case SignatureScheme::kNode: name += "Node"; break;
    case SignatureScheme::kShallowPath: name += "Shallow"; break;
    case SignatureScheme::kDeepPath: name += "Deep"; break;
  }
  name += c.weighted_prefix ? "Weighted" : "Plain";
  switch (c.verify_mode) {
    case VerifyMode::kBasic: name += "Basic"; break;
    case VerifyMode::kSubGraph: name += "SubGraph"; break;
    case VerifyMode::kAdaptive: name += "Adaptive"; break;
  }
  switch (c.set_metric) {
    case SetMetric::kJaccard: name += "Jaccard"; break;
    case SetMetric::kDice: name += "Dice"; break;
    case SetMetric::kCosine: name += "Cosine"; break;
  }
  name += c.element_metric == ElementMetric::kKJoin ? "KJ" : "WP";
  name += c.plus_mode ? "Plus" : "Single";
  name += "D" + std::to_string(static_cast<int>(c.delta * 100));
  name += "T" + std::to_string(static_cast<int>(c.tau * 100));
  return name;
}

class KJoinSweepTest : public testing::TestWithParam<SweepCase> {};

TEST_P(KJoinSweepTest, MatchesNaiveJoin) {
  const SweepCase& c = GetParam();

  // A mid-sized random hierarchy plus a noisy dataset with duplicates —
  // the perturbation channels exercise sibling swaps, typos, synonyms.
  HierarchyGenParams tree_params;
  tree_params.num_nodes = 300;
  tree_params.height = 5;
  tree_params.avg_fanout = 4.0;
  tree_params.max_fanout = 10;
  tree_params.seed = 42;
  const Hierarchy tree = GenerateHierarchy(tree_params);

  RecordGenParams data_params;
  data_params.num_records = 120;
  data_params.avg_elements = 5;
  data_params.min_elements = 2;
  data_params.max_elements = 9;
  data_params.min_depth = 2;
  data_params.max_depth = 5;
  data_params.duplicate_fraction = 0.5;
  data_params.unmatched_token_rate = 0.15;
  data_params.seed = 99;
  const Dataset dataset = DatasetGenerator(tree, data_params).Generate("sweep");

  const PreparedObjects prepared = BuildObjects(tree, dataset, c.plus_mode);

  KJoinOptions options;
  options.delta = c.delta;
  options.tau = c.tau;
  options.scheme = c.scheme;
  options.weighted_prefix = c.weighted_prefix;
  options.verify_mode = c.verify_mode;
  options.set_metric = c.set_metric;
  options.element_metric = c.element_metric;
  options.plus_mode = c.plus_mode;

  const JoinResult result = KJoin(tree, options).SelfJoin(prepared.objects);
  const JoinResult oracle = NaiveJoin(tree, options).SelfJoin(prepared.objects);

  const PairSet got = ToSet(result.pairs);
  const PairSet expected = ToSet(oracle.pairs);
  // Completeness is the property every filter lemma promises; report any
  // missing pair precisely.
  for (const auto& pair : expected) {
    EXPECT_TRUE(got.count(pair)) << "missing pair (" << pair.first << ", " << pair.second
                                 << ")";
  }
  for (const auto& pair : got) {
    EXPECT_TRUE(expected.count(pair))
        << "spurious pair (" << pair.first << ", " << pair.second << ")";
  }
  EXPECT_FALSE(expected.empty()) << "sweep case degenerated: no true pairs to check";
}

INSTANTIATE_TEST_SUITE_P(
    FilterSchemes, KJoinSweepTest,
    testing::Values(
        SweepCase{SignatureScheme::kNode, false, VerifyMode::kAdaptive, SetMetric::kJaccard,
                  ElementMetric::kKJoin, false, 0.7, 0.6},
        SweepCase{SignatureScheme::kShallowPath, false, VerifyMode::kAdaptive,
                  SetMetric::kJaccard, ElementMetric::kKJoin, false, 0.7, 0.6},
        SweepCase{SignatureScheme::kDeepPath, false, VerifyMode::kAdaptive, SetMetric::kJaccard,
                  ElementMetric::kKJoin, false, 0.7, 0.6},
        SweepCase{SignatureScheme::kDeepPath, true, VerifyMode::kAdaptive, SetMetric::kJaccard,
                  ElementMetric::kKJoin, false, 0.7, 0.6}),
    CaseName);

INSTANTIATE_TEST_SUITE_P(
    Verifiers, KJoinSweepTest,
    testing::Values(
        SweepCase{SignatureScheme::kDeepPath, true, VerifyMode::kBasic, SetMetric::kJaccard,
                  ElementMetric::kKJoin, false, 0.7, 0.7},
        SweepCase{SignatureScheme::kDeepPath, true, VerifyMode::kSubGraph, SetMetric::kJaccard,
                  ElementMetric::kKJoin, false, 0.7, 0.7},
        SweepCase{SignatureScheme::kDeepPath, true, VerifyMode::kAdaptive, SetMetric::kJaccard,
                  ElementMetric::kKJoin, false, 0.7, 0.7}),
    CaseName);

INSTANTIATE_TEST_SUITE_P(
    Thresholds, KJoinSweepTest,
    testing::Values(
        SweepCase{SignatureScheme::kDeepPath, true, VerifyMode::kAdaptive, SetMetric::kJaccard,
                  ElementMetric::kKJoin, false, 0.5, 0.5},
        SweepCase{SignatureScheme::kDeepPath, true, VerifyMode::kAdaptive, SetMetric::kJaccard,
                  ElementMetric::kKJoin, false, 0.6, 0.8},
        SweepCase{SignatureScheme::kDeepPath, true, VerifyMode::kAdaptive, SetMetric::kJaccard,
                  ElementMetric::kKJoin, false, 0.8, 0.9},
        SweepCase{SignatureScheme::kNode, false, VerifyMode::kAdaptive, SetMetric::kJaccard,
                  ElementMetric::kKJoin, false, 0.9, 0.5}),
    CaseName);

INSTANTIATE_TEST_SUITE_P(
    Metrics, KJoinSweepTest,
    testing::Values(
        SweepCase{SignatureScheme::kDeepPath, true, VerifyMode::kAdaptive, SetMetric::kDice,
                  ElementMetric::kKJoin, false, 0.7, 0.7},
        SweepCase{SignatureScheme::kDeepPath, true, VerifyMode::kAdaptive, SetMetric::kCosine,
                  ElementMetric::kKJoin, false, 0.7, 0.7},
        SweepCase{SignatureScheme::kDeepPath, true, VerifyMode::kAdaptive, SetMetric::kJaccard,
                  ElementMetric::kWuPalmer, false, 0.7, 0.7},
        SweepCase{SignatureScheme::kNode, false, VerifyMode::kSubGraph, SetMetric::kDice,
                  ElementMetric::kWuPalmer, false, 0.6, 0.6}),
    CaseName);

INSTANTIATE_TEST_SUITE_P(
    PlusMode, KJoinSweepTest,
    testing::Values(
        SweepCase{SignatureScheme::kDeepPath, true, VerifyMode::kAdaptive, SetMetric::kJaccard,
                  ElementMetric::kKJoin, true, 0.7, 0.6},
        SweepCase{SignatureScheme::kDeepPath, false, VerifyMode::kSubGraph, SetMetric::kJaccard,
                  ElementMetric::kKJoin, true, 0.7, 0.7},
        SweepCase{SignatureScheme::kNode, false, VerifyMode::kAdaptive, SetMetric::kJaccard,
                  ElementMetric::kKJoin, true, 0.8, 0.7},
        SweepCase{SignatureScheme::kShallowPath, false, VerifyMode::kBasic, SetMetric::kJaccard,
                  ElementMetric::kKJoin, true, 0.6, 0.6},
        SweepCase{SignatureScheme::kDeepPath, true, VerifyMode::kAdaptive, SetMetric::kJaccard,
                  ElementMetric::kWuPalmer, true, 0.7, 0.6},
        SweepCase{SignatureScheme::kDeepPath, true, VerifyMode::kAdaptive, SetMetric::kDice,
                  ElementMetric::kWuPalmer, true, 0.8, 0.7}),
    CaseName);

// ------------------------------------------------------------- R-S join

TEST(KJoinTest, RsJoinMatchesNaive) {
  HierarchyGenParams tree_params;
  tree_params.num_nodes = 200;
  tree_params.height = 5;
  tree_params.avg_fanout = 4.0;
  tree_params.seed = 9;
  const Hierarchy tree = GenerateHierarchy(tree_params);

  RecordGenParams data_params;
  data_params.num_records = 150;
  data_params.avg_elements = 4;
  data_params.min_elements = 2;
  data_params.max_elements = 7;
  data_params.min_depth = 2;
  data_params.max_depth = 5;
  data_params.duplicate_fraction = 0.6;
  data_params.seed = 123;
  const Dataset dataset = DatasetGenerator(tree, data_params).Generate("rs");
  const PreparedObjects prepared = BuildObjects(tree, dataset, /*multi_mapping=*/true);

  // Split into two collections sharing the builder's token space.
  // Interleave so duplicate clusters (adjacent records) straddle the two
  // sides and the join has true matches to find.
  std::vector<Object> left, right;
  for (size_t i = 0; i < prepared.objects.size(); ++i) {
    (i % 2 == 0 ? left : right).push_back(prepared.objects[i]);
  }

  KJoinOptions options;
  options.delta = 0.7;
  options.tau = 0.6;
  options.plus_mode = true;
  const JoinResult result = KJoin(tree, options).Join(left, right);
  const JoinResult oracle = NaiveJoin(tree, options).Join(left, right);
  EXPECT_EQ(ToSet(result.pairs), ToSet(oracle.pairs));
  EXPECT_FALSE(oracle.pairs.empty());
}

TEST(KJoinTest, SelfJoinOrdersPairs) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  EntityMatcher matcher(tree);
  ObjectBuilder builder(matcher, false);
  std::vector<Object> objects;
  objects.push_back(builder.Build(0, {"KFC", "CA"}));
  objects.push_back(builder.Build(1, {"KFC", "CA"}));
  objects.push_back(builder.Build(2, {"KFC", "CA"}));
  KJoinOptions options;
  options.delta = 0.7;
  options.tau = 0.9;
  const JoinResult result = KJoin(tree, options).SelfJoin(objects);
  EXPECT_EQ(result.pairs.size(), 3u);
  for (auto [a, b] : result.pairs) EXPECT_LT(a, b);
}

TEST(KJoinTest, EmptyAndSingletonInputs) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  KJoinOptions options;
  const KJoin join(tree, options);
  EXPECT_TRUE(join.SelfJoin({}).pairs.empty());
  EntityMatcher matcher(tree);
  ObjectBuilder builder(matcher, false);
  std::vector<Object> one = {builder.Build(0, {"KFC"})};
  EXPECT_TRUE(join.SelfJoin(one).pairs.empty());
  EXPECT_TRUE(join.Join(one, {}).pairs.empty());
  EXPECT_TRUE(join.Join({}, one).pairs.empty());
}

TEST(KJoinTest, DagHierarchyThroughPlusMode) {
  // §6.5: a DAG is unfolded; the duplicated label maps to several nodes.
  Dag dag;
  const int32_t food = dag.AddNode("Food");
  const int32_t fast = dag.AddNode("Fastfood");
  const int32_t pizza = dag.AddNode("Pizza");
  const int32_t hut = dag.AddNode("PizzaHut");  // both fastfood and pizza
  dag.AddEdge(0, food);
  dag.AddEdge(food, fast);
  dag.AddEdge(food, pizza);
  dag.AddEdge(fast, hut);
  dag.AddEdge(pizza, hut);
  auto tree = ConvertDagToTree(dag);
  ASSERT_TRUE(tree.has_value());

  EntityMatcherOptions matcher_options;
  matcher_options.enable_approximate = false;
  EntityMatcher matcher(*tree, matcher_options);
  ObjectBuilder builder(matcher, /*multi_mapping=*/true);
  std::vector<Object> objects;
  objects.push_back(builder.Build(0, {"PizzaHut", "Fastfood"}));
  objects.push_back(builder.Build(1, {"PizzaHut", "Pizza"}));

  ASSERT_EQ(objects[0].elements[0].mappings.size(), 2u);  // both copies

  // Identical PizzaHut tokens give overlap 1; Fastfood-Pizza (LCA Food at
  // depth 1, both depth 2) is below δ. SIM = 1/(2+2−1) = 1/3.
  KJoinOptions options;
  options.delta = 0.6;
  options.tau = 0.3;
  options.plus_mode = true;
  const KJoin join(*tree, options);
  const JoinResult result = join.SelfJoin(objects);
  const JoinResult oracle = NaiveJoin(*tree, options).SelfJoin(objects);
  EXPECT_EQ(ToSet(result.pairs), ToSet(oracle.pairs));
  EXPECT_EQ(result.pairs.size(), 1u);
}

TEST(KJoinTest, StatsAreConsistent) {
  const BenchmarkData data = MakePoiBenchmark(300, 7);
  const PreparedObjects prepared = BuildObjects(data.hierarchy, data.dataset, false);
  KJoinOptions options;
  options.delta = 0.8;
  options.tau = 0.85;
  const JoinResult result = KJoin(data.hierarchy, options).SelfJoin(prepared.objects);
  EXPECT_EQ(result.stats.num_objects_left, 300);
  EXPECT_EQ(result.stats.results, static_cast<int64_t>(result.pairs.size()));
  EXPECT_EQ(result.stats.verify.pairs_verified, result.stats.candidates);
  EXPECT_GE(result.stats.total_signatures, result.stats.prefix_signatures);
  EXPECT_GE(result.stats.total_seconds, 0.0);
}

}  // namespace
}  // namespace kjoin
