// Sharded serving suite (docs/serving.md, "Sharded serving"): the
// determinism contract (scatter-gather results byte-identical to a
// single index at any shard count and pool width), the documented top-k
// tie-break order, progressive-bound pruning, request batching, router
// admission, per-shard WAL recovery with numbering reconstruction, and
// the one-degraded-shard chaos case. Runs under both the asan and tsan
// presets (tests/CMakeLists.txt labels).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/kjoin_index.h"
#include "data/benchmark_suite.h"
#include "serve/shard_router.h"
#include "serve/sharded_index_manager.h"

namespace kjoin {
namespace {

constexpr int64_t kRecords = 240;

// One dataset + prepared objects + flat reference index, shared across
// tests (the build is the expensive part; every test treats it as
// immutable).
struct ShardStack {
  Dataset dataset;
  std::shared_ptr<const Hierarchy> hierarchy;
  PreparedObjects prepared;
  std::optional<KJoinIndex> reference;  // the single unsharded index
};

KJoinOptions Options() {
  KJoinOptions options;
  options.delta = 0.8;
  options.tau = 0.6;
  options.plus_mode = true;
  return options;
}

ShardStack& Stack() {
  static ShardStack* stack = [] {
    auto* s = new ShardStack();
    BenchmarkData data = MakePoiBenchmark(kRecords, /*seed=*/77);
    s->dataset = std::move(data.dataset);
    s->hierarchy = std::make_shared<const Hierarchy>(std::move(data.hierarchy));
    s->prepared = BuildObjects(*s->hierarchy, s->dataset,
                               /*multi_mapping=*/true, /*min_phi=*/0.8);
    s->reference.emplace(*s->hierarchy, Options(), s->prepared.objects);
    return s;
  }();
  return *stack;
}

std::vector<Object> MakeQueries(int count) {
  const Dataset& dataset = Stack().dataset;
  ObjectBuilder* builder = Stack().prepared.builder.get();
  std::vector<Object> queries;
  queries.reserve(count);
  for (int q = 0; q < count; ++q) {
    std::vector<std::string> tokens =
        dataset.records[(q * 97) % dataset.records.size()].tokens;
    if (tokens.empty()) continue;
    if (q % 2 == 1) tokens.pop_back();
    queries.push_back(builder->Build(-1, tokens));
  }
  return queries;
}

std::unique_ptr<serve::ShardedIndexManager> MakeSharded(int num_shards, ThreadPool* pool,
                                                        MetricsRegistry* metrics = nullptr) {
  ShardStack& stack = Stack();
  return std::make_unique<serve::ShardedIndexManager>(
      stack.hierarchy, Options(), stack.prepared.objects,
      stack.prepared.builder->TokenTable(), stack.dataset.synonyms, num_shards, pool,
      metrics);
}

struct RouterStack {
  std::unique_ptr<serve::ShardedIndexManager> manager;
  std::vector<std::unique_ptr<serve::LocalShard>> backends;
  std::unique_ptr<serve::ShardRouter> router;
};

RouterStack MakeRouter(int num_shards, ThreadPool* pool,
                       serve::ShardRouterOptions options = {},
                       MetricsRegistry* metrics = nullptr) {
  RouterStack stack;
  stack.manager = MakeSharded(num_shards, pool, metrics);
  std::vector<serve::ShardBackend*> shards;
  for (int s = 0; s < num_shards; ++s) {
    stack.backends.push_back(std::make_unique<serve::LocalShard>(stack.manager.get(), s));
    shards.push_back(stack.backends.back().get());
  }
  stack.router =
      std::make_unique<serve::ShardRouter>(std::move(shards), pool, options, metrics);
  return stack;
}

void ExpectHitsIdentical(const std::vector<SearchHit>& expected,
                         const std::vector<SearchHit>& actual, const std::string& where) {
  ASSERT_EQ(expected.size(), actual.size()) << where;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].object_index, actual[i].object_index) << where << " hit " << i;
    // Byte-identical, not approximately equal: the same pairs go through
    // the same arithmetic regardless of which shard holds them.
    EXPECT_EQ(expected[i].similarity, actual[i].similarity) << where << " hit " << i;
  }
}

// ------------------------------------------------- placement function

TEST(ShardPlacementTest, DeterministicAndInRange) {
  for (int num_shards : {1, 2, 7, 8}) {
    for (int64_t g = 0; g < 1000; ++g) {
      const int s = serve::ShardOf(g, num_shards);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, num_shards);
      ASSERT_EQ(s, serve::ShardOf(g, num_shards));  // pure function
    }
  }
  // One shard degenerates to the unsharded layout.
  for (int64_t g = 0; g < 100; ++g) {
    EXPECT_EQ(serve::ShardOf(g, 1), 0);
  }
}

TEST(ShardPlacementTest, MappingTablesPartitionTheCollection) {
  ThreadPool pool(1);
  auto manager = MakeSharded(8, &pool);
  std::set<int32_t> seen;
  for (int s = 0; s < manager->num_shards(); ++s) {
    const auto table = manager->GlobalIndexes(s);
    for (size_t i = 0; i < table->size(); ++i) {
      if (i > 0) {
        EXPECT_LT((*table)[i - 1], (*table)[i]) << "shard " << s;
      }
      EXPECT_TRUE(seen.insert((*table)[i]).second);
    }
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), manager->num_objects());
  EXPECT_EQ(*seen.rbegin(), static_cast<int32_t>(manager->num_objects() - 1));
}

// ------------------------------------------- determinism contract

// The tentpole contract: Search and SearchTopK through the router are
// byte-identical to the single unsharded index — same hits, same
// similarities, same tie-break order — at every shard count and pool
// width.
TEST(ShardDeterminismTest, IdenticalToSingleIndexAcrossShardsAndThreads) {
  const std::vector<Object> queries = MakeQueries(40);
  const KJoinIndex& reference = *Stack().reference;
  for (int num_shards : {1, 2, 8}) {
    for (int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      RouterStack stack = MakeRouter(num_shards, &pool);
      for (size_t q = 0; q < queries.size(); ++q) {
        const std::string where = "shards=" + std::to_string(num_shards) +
                                  " threads=" + std::to_string(threads) +
                                  " query=" + std::to_string(q);
        // Threshold search.
        serve::QueryRequest request;
        request.query = queries[q];
        serve::QueryResponse response = stack.router->Search(request);
        ASSERT_TRUE(response.status.ok()) << where << ": " << response.status.ToString();
        ExpectHitsIdentical(reference.Search(queries[q]), response.hits,
                            where + " threshold");
        // Top-k (k chosen to cut through the result set).
        request.top_k = 5;
        response = stack.router->Search(request);
        ASSERT_TRUE(response.status.ok()) << where << ": " << response.status.ToString();
        ExpectHitsIdentical(reference.SearchTopK(queries[q], 5, Options().tau),
                            response.hits, where + " top-k");
      }
    }
  }
}

// ------------------------------------------------- tie-break order

// Duplicate objects produce exactly-equal similarities; the documented
// total order (similarity desc, then object index asc) must decide the
// k-cut identically on the single index and through the router.
TEST(TopKTieBreakTest, TiedSimilaritiesBreakByAscendingObjectIndex) {
  ShardStack& stack = Stack();
  std::vector<Object> objects;
  for (int i = 0; i < 6; ++i) objects.push_back(stack.prepared.objects[0]);
  for (int i = 1; i < 5; ++i) objects.push_back(stack.prepared.objects[i]);
  KJoinIndex index(*stack.hierarchy, Options(), objects);

  const Object& query = stack.prepared.objects[0];
  const std::vector<SearchHit> top = index.SearchTopK(query, 4, Options().tau);
  ASSERT_EQ(top.size(), 4u);
  // The six copies tie at the maximum similarity; the cut keeps the four
  // lowest object indexes, in ascending order.
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].object_index, static_cast<int32_t>(i));
    EXPECT_EQ(top[i].similarity, top[0].similarity);
  }
  // The full result set is in the documented total order.
  const std::vector<SearchHit> all = index.Search(query);
  ASSERT_GE(all.size(), 6u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_TRUE(HitBefore(all[i - 1], all[i]) || !HitBefore(all[i], all[i - 1]));
    EXPECT_FALSE(HitBefore(all[i], all[i - 1]));
  }

  // Sharded: the tied group spreads across shards, and the gather must
  // reproduce the same cut.
  ThreadPool pool(1);
  auto manager = std::make_unique<serve::ShardedIndexManager>(
      stack.hierarchy, Options(), objects, stack.prepared.builder->TokenTable(),
      stack.dataset.synonyms, 2, &pool);
  serve::LocalShard shard0(manager.get(), 0);
  serve::LocalShard shard1(manager.get(), 1);
  serve::ShardRouter router({&shard0, &shard1}, &pool);
  serve::QueryRequest request;
  request.query = query;
  request.top_k = 4;
  const serve::QueryResponse response = router.Search(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ExpectHitsIdentical(top, response.hits, "sharded tie-break");
}

// ------------------------------------------------- progressive bound

TEST(ProgressiveBoundTest, TopKProbesTightenAndPrune) {
  ThreadPool pool(1);
  RouterStack stack = MakeRouter(8, &pool);
  const std::vector<Object> queries = MakeQueries(40);
  SearchStats total;
  for (const Object& query : queries) {
    serve::QueryRequest request;
    request.query = query;
    request.top_k = 3;
    const serve::QueryResponse response = stack.router->Search(request);
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    total.bound_tightenings += response.stats.bound_tightenings;
    total.bound_pruned_lists += response.stats.bound_pruned_lists;
    total.bound_pruned_entries += response.stats.bound_pruned_entries;
    total.bound_pruned_blocks += response.stats.bound_pruned_blocks;
    total.bound_raised_verifies += response.stats.bound_raised_verifies;
  }
  // Across the workload the shared bound must have both tightened and
  // saved work somewhere (exact counts are data-dependent).
  EXPECT_GT(total.bound_tightenings, 0);
  EXPECT_GT(total.bound_pruned_entries + total.bound_pruned_lists +
                total.bound_raised_verifies,
            0);
}

// ------------------------------------------------------- batching

TEST(RouterBatchingTest, SubmitBatchesMatchSyncSearch) {
  ThreadPool pool(2);
  serve::ShardRouterOptions options;
  options.max_batch = 16;
  options.batch_window_seconds = 0.001;
  MetricsRegistry metrics;
  RouterStack stack = MakeRouter(4, &pool, options, &metrics);
  const std::vector<Object> queries = MakeQueries(32);
  std::vector<serve::QueryRequest> requests;
  for (const Object& query : queries) {
    serve::QueryRequest request;
    request.query = query;
    request.top_k = 5;
    requests.push_back(std::move(request));
  }
  const std::vector<serve::QueryResponse> batched = stack.router->SearchBatch(requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(batched[i].status.ok()) << batched[i].status.ToString();
    const serve::QueryResponse sync = stack.router->Search(requests[i]);
    ASSERT_TRUE(sync.status.ok());
    ExpectHitsIdentical(sync.hits, batched[i].hits, "query " + std::to_string(i));
  }
  EXPECT_EQ(stack.router->queue_depth(), 0);
  EXPECT_EQ(stack.router->in_flight(), 0);
  EXPECT_GT(metrics.counter("router.batches")->value(), 0);
  EXPECT_EQ(metrics.counter("router.queries")->value(),
            static_cast<int64_t>(2 * requests.size()));
}

TEST(RouterAdmissionTest, DeadlineInfeasibleShedsBeforeDispatch) {
  ThreadPool pool(1);
  MetricsRegistry metrics;
  RouterStack stack = MakeRouter(2, &pool, {}, &metrics);
  stack.router->SetQueueDelayEwmaForTest(1.0);  // pretend a 1s queue
  serve::QueryRequest request;
  request.query = MakeQueries(1)[0];
  request.top_k = 3;
  request.deadline_seconds = 0.01;  // far below the planted estimate
  bool called = false;
  stack.router->Submit(request, [&](serve::QueryResponse response) {
    called = true;
    EXPECT_TRUE(IsResourceExhausted(response.status)) << response.status.ToString();
  });
  EXPECT_TRUE(called);  // shed callbacks run inline
  EXPECT_EQ(metrics.counter("router.shed_deadline_infeasible")->value(), 1);
  // Without a deadline the same query goes through.
  request.deadline_seconds = 0.0;
  const serve::QueryResponse response = stack.router->Search(request);
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
}

// ------------------------------------------------- WAL + recovery

TEST(ShardWalTest, RecoveryReconstructsNumberingAndAnswers) {
  const std::string prefix = testing::TempDir() + "/shard_test_recover.wal";
  for (int s = 0; s < 3; ++s) {
    std::remove((prefix + ".shard-" + std::to_string(s)).c_str());
  }
  ThreadPool pool(1);
  const std::vector<Object> queries = MakeQueries(12);
  std::vector<std::vector<SearchHit>> before;
  int64_t total_objects = 0;
  {
    RouterStack stack = MakeRouter(3, &pool);
    ASSERT_TRUE(stack.manager->AttachWal(prefix).ok());
    // Mutations that must survive: inserts (copies of existing objects,
    // so similarities duplicate deterministically) and one delete.
    std::vector<Object> inserts;
    for (int i = 0; i < 7; ++i) inserts.push_back(Stack().prepared.objects[i]);
    ASSERT_TRUE(stack.manager->InsertBatch(std::move(inserts)).ok());
    ASSERT_TRUE(stack.manager->DeleteObjects({3}).ok());
    stack.manager->Flush();
    total_objects = stack.manager->num_objects();
    EXPECT_EQ(total_objects, kRecords + 7);
    for (const Object& query : queries) {
      serve::QueryRequest request;
      request.query = query;
      before.push_back(stack.router->Search(request).hits);
    }
  }
  // Fresh stack from the same initial collection + the shard WAL set.
  RouterStack stack = MakeRouter(3, &pool);
  ASSERT_TRUE(stack.manager->AttachWal(prefix).ok());
  EXPECT_EQ(stack.manager->num_objects(), total_objects);
  for (size_t q = 0; q < queries.size(); ++q) {
    serve::QueryRequest request;
    request.query = queries[q];
    const serve::QueryResponse response = stack.router->Search(request);
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ExpectHitsIdentical(before[q], response.hits, "recovered query " + std::to_string(q));
  }
  for (int s = 0; s < 3; ++s) {
    std::remove((prefix + ".shard-" + std::to_string(s)).c_str());
  }
}

TEST(ShardWalTest, MissingShardLogFailsReconstructionAsDataLoss) {
  const std::string prefix = testing::TempDir() + "/shard_test_dataloss.wal";
  for (int s = 0; s < 3; ++s) {
    std::remove((prefix + ".shard-" + std::to_string(s)).c_str());
  }
  ThreadPool pool(1);
  int victim = -1;
  {
    auto manager = MakeSharded(3, &pool);
    ASSERT_TRUE(manager->AttachWal(prefix).ok());
    std::vector<Object> inserts;
    for (int i = 0; i < 8; ++i) inserts.push_back(Stack().prepared.objects[i]);
    const int64_t base = manager->num_objects();
    ASSERT_TRUE(manager->InsertBatch(std::move(inserts)).ok());
    manager->Flush();
    // Pick a shard that actually received part of the batch.
    for (int s = 0; s < 3 && victim < 0; ++s) {
      if ((*manager->GlobalIndexes(s)).back() >= base) victim = s;
    }
    ASSERT_GE(victim, 0);
  }
  // Losing one shard's log makes the set non-reconstructible: the counts
  // no longer agree with the placement function.
  std::remove((prefix + ".shard-" + std::to_string(victim)).c_str());
  auto manager = MakeSharded(3, &pool);
  const Status status = manager->AttachWal(prefix);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsDataLoss(status)) << status.ToString();
  for (int s = 0; s < 3; ++s) {
    std::remove((prefix + ".shard-" + std::to_string(s)).c_str());
  }
}

// ------------------------------------------------------- chaos

// One shard's WAL goes bad and trips degraded read-only mode; the router
// must keep serving correct reads off every shard while sharded writes
// are rejected up front — and heal once the log recovers.
TEST(ShardChaosTest, DegradedShardKeepsServingReads) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const std::string prefix = testing::TempDir() + "/shard_test_chaos.wal";
  for (int s = 0; s < 4; ++s) {
    std::remove((prefix + ".shard-" + std::to_string(s)).c_str());
  }
  ThreadPool pool(1);
  RouterStack stack = MakeRouter(4, &pool);
  ASSERT_TRUE(stack.manager->AttachWal(prefix).ok());
  const KJoinIndex& reference = *Stack().reference;
  const std::vector<Object> queries = MakeQueries(8);

  {
    fault::Scope scope;
    fault::Enable("serve/wal_append");  // every append fails, as a full disk would
    // Trip ONE shard by writing to it directly; the default threshold is
    // 3 consecutive failures.
    serve::IndexManager* victim = stack.manager->shard(1);
    for (int i = 0; i < 3; ++i) {
      const Status failed = victim->InsertBatch({Stack().prepared.objects[0]});
      ASSERT_FALSE(failed.ok());
    }
    ASSERT_EQ(victim->HealthSnapshot().state, serve::HealthState::kDegradedReadOnly);
    // Worst-of health is degraded...
    EXPECT_EQ(stack.manager->HealthSnapshot().state,
              serve::HealthState::kDegradedReadOnly);
    // ...sharded writes are refused up front (numbering stays intact)...
    std::vector<Object> batch = {Stack().prepared.objects[1]};
    const Status rejected = stack.manager->InsertBatch(std::move(batch));
    ASSERT_FALSE(rejected.ok());
    EXPECT_TRUE(IsUnavailable(rejected)) << rejected.ToString();
    // ...and reads keep serving every shard, still byte-identical.
    for (const Object& query : queries) {
      serve::QueryRequest request;
      request.query = query;
      request.top_k = 5;
      const serve::QueryResponse response = stack.router->Search(request);
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      ExpectHitsIdentical(reference.SearchTopK(query, 5, Options().tau), response.hits,
                          "degraded read");
    }
  }
  // Fault disarmed: the shard's probe loop moves it to kRecovering (a
  // real acked append, not the probe, is what restores kServing — and
  // that append must flow through the sharded write path, so the gate
  // admits recovering shards).
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (stack.manager->HealthSnapshot().state == serve::HealthState::kDegradedReadOnly &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(stack.manager->HealthSnapshot().state, serve::HealthState::kDegradedReadOnly);
  // ShardOf walks pseudo-randomly, so keep inserting until the healing
  // append actually lands on the recovering shard.
  for (int i = 0; i < 64 &&
                  stack.manager->HealthSnapshot().state != serve::HealthState::kServing;
       ++i) {
    std::vector<Object> batch = {Stack().prepared.objects[1]};
    ASSERT_TRUE(stack.manager->InsertBatch(std::move(batch)).ok());
  }
  stack.manager->Flush();
  EXPECT_EQ(stack.manager->HealthSnapshot().state, serve::HealthState::kServing);
  for (int s = 0; s < 4; ++s) {
    std::remove((prefix + ".shard-" + std::to_string(s)).c_str());
  }
}

}  // namespace
}  // namespace kjoin
