// Randomized consistency tests ("fuzz-lite"): structural invariants over
// many random instances — hierarchy IO round-trips, LCA algebra,
// generator statistics, verifier stats accounting, clustering vs a BFS
// reference, and baseline edge cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_map>

#include "baselines/fastjoin.h"
#include "baselines/ppjoin.h"
#include "baselines/synonym_join.h"
#include "common/rng.h"
#include "core/clustering.h"
#include "core/verifier.h"
#include "data/dataset_io.h"
#include "data/generator.h"
#include "hierarchy/hierarchy_generator.h"
#include "hierarchy/hierarchy_io.h"
#include "hierarchy/lca.h"
#include "text/edit_distance.h"

namespace kjoin {
namespace {

TEST(HierarchyFuzzTest, IoRoundTripsRandomTrees) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    HierarchyGenParams params;
    params.num_nodes = 50 + seed * 37;
    params.height = 3 + static_cast<int>(seed % 4);
    params.avg_fanout = 3.0;
    params.max_fanout = 9;
    params.seed = seed;
    const Hierarchy tree = GenerateHierarchy(params);
    auto parsed = ParseHierarchy(SerializeHierarchy(tree));
    ASSERT_TRUE(parsed.has_value()) << "seed " << seed;
    ASSERT_EQ(parsed->num_nodes(), tree.num_nodes());
    for (NodeId v = 0; v < tree.num_nodes(); ++v) {
      ASSERT_EQ(parsed->label(v), tree.label(v));
      ASSERT_EQ(parsed->depth(v), tree.depth(v));
      if (v != tree.root()) ASSERT_EQ(parsed->parent(v), tree.parent(v));
    }
  }
}

TEST(LcaAlgebraTest, LcaLawsHoldOnRandomTrees) {
  HierarchyGenParams params;
  params.num_nodes = 600;
  params.height = 6;
  params.avg_fanout = 4.0;
  params.seed = 77;
  const Hierarchy tree = GenerateHierarchy(params);
  const LcaIndex lca(tree);
  Rng rng(5);
  for (int trial = 0; trial < 3000; ++trial) {
    const NodeId x = static_cast<NodeId>(rng.NextUint64(tree.num_nodes()));
    const NodeId y = static_cast<NodeId>(rng.NextUint64(tree.num_nodes()));
    const NodeId l = lca.Lca(x, y);
    // Symmetry, idempotence, ancestorship.
    ASSERT_EQ(l, lca.Lca(y, x));
    ASSERT_EQ(lca.Lca(x, x), x);
    ASSERT_TRUE(tree.IsAncestor(l, x));
    ASSERT_TRUE(tree.IsAncestor(l, y));
    // Maximality: l's children cannot be common ancestors.
    for (NodeId child : tree.children(l)) {
      ASSERT_FALSE(tree.IsAncestor(child, x) && tree.IsAncestor(child, y));
    }
    // Absorption: lca(x, lca(x, y)) == lca(x, y).
    ASSERT_EQ(lca.Lca(x, l), l);
  }
}

TEST(GeneratorStatsTest, ZipfSkewCreatesHubElements) {
  const Hierarchy tree = GenerateHierarchy(HierarchyGenParams{});
  RecordGenParams skewed;
  skewed.num_records = 3000;
  skewed.zipf_exponent = 1.6;
  skewed.seed = 9;
  RecordGenParams uniform = skewed;
  uniform.zipf_exponent = 0.0;

  auto top_share = [&](const RecordGenParams& params) {
    const Dataset dataset = DatasetGenerator(tree, params).Generate("x");
    std::unordered_map<std::string, int64_t> counts;
    int64_t total = 0;
    for (const Record& record : dataset.records) {
      for (const std::string& token : record.tokens) {
        ++counts[token];
        ++total;
      }
    }
    int64_t best = 0;
    for (const auto& [token, count] : counts) best = std::max(best, count);
    return static_cast<double>(best) / total;
  };

  const double skewed_share = top_share(skewed);
  const double uniform_share = top_share(uniform);
  EXPECT_GT(skewed_share, 3.0 * uniform_share)
      << "skewed " << skewed_share << " uniform " << uniform_share;
}

TEST(GeneratorStatsTest, DuplicateFractionRoughlyHonored) {
  const Hierarchy tree = GenerateHierarchy(HierarchyGenParams{});
  RecordGenParams params;
  params.num_records = 5000;
  params.duplicate_fraction = 0.3;
  params.max_duplicates_per_record = 2;
  params.seed = 4;
  const Dataset dataset = DatasetGenerator(tree, params).Generate("x");
  int64_t in_clusters = 0;
  for (const Record& record : dataset.records) in_clusters += record.cluster >= 0;
  const double fraction = static_cast<double>(in_clusters) / dataset.records.size();
  // 30% of bases spawn 1-2 duplicates => roughly 35-55% of records live
  // in clusters.
  EXPECT_GT(fraction, 0.25);
  EXPECT_LT(fraction, 0.65);
}

TEST(GeneratorStatsTest, PerturbationActuallyChangesTokens) {
  const Hierarchy tree = GenerateHierarchy(HierarchyGenParams{});
  RecordGenParams params;
  params.num_records = 2000;
  params.duplicate_fraction = 1.0;  // every base gets duplicates
  params.typo_rate = 0.3;
  params.sibling_swap_rate = 0.3;
  params.seed = 6;
  const Dataset dataset = DatasetGenerator(tree, params).Generate("x");
  const auto truth = GroundTruthPairs(dataset);
  ASSERT_FALSE(truth.empty());
  int changed = 0;
  for (const auto& [a, b] : truth) {
    changed += dataset.records[a].tokens != dataset.records[b].tokens;
  }
  EXPECT_GT(static_cast<double>(changed) / truth.size(), 0.8);
}

TEST(ClusteringFuzzTest, MatchesBfsComponents) {
  Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 5 + static_cast<int>(rng.NextUint64(40));
    std::vector<std::pair<int32_t, int32_t>> pairs;
    const int m = static_cast<int>(rng.NextUint64(60));
    for (int e = 0; e < m; ++e) {
      pairs.emplace_back(static_cast<int32_t>(rng.NextUint64(n)),
                         static_cast<int32_t>(rng.NextUint64(n)));
    }
    const Clustering clustering = ClusterPairs(n, pairs);

    // BFS reference.
    std::vector<std::vector<int32_t>> adjacency(n);
    for (const auto& [a, b] : pairs) {
      adjacency[a].push_back(b);
      adjacency[b].push_back(a);
    }
    std::vector<int32_t> component(n, -1);
    int32_t num_components = 0;
    for (int32_t start = 0; start < n; ++start) {
      if (component[start] >= 0) continue;
      const int32_t id = num_components++;
      std::queue<int32_t> queue;
      queue.push(start);
      component[start] = id;
      while (!queue.empty()) {
        const int32_t v = queue.front();
        queue.pop();
        for (int32_t w : adjacency[v]) {
          if (component[w] < 0) {
            component[w] = id;
            queue.push(w);
          }
        }
      }
    }
    ASSERT_EQ(clustering.num_clusters, num_components) << "trial " << trial;
    for (int32_t a = 0; a < n; ++a) {
      for (int32_t b = 0; b < n; ++b) {
        ASSERT_EQ(clustering.cluster_of[a] == clustering.cluster_of[b],
                  component[a] == component[b]);
      }
    }
  }
}

TEST(EditDistanceAlgebraTest, MetricAxiomsOnRandomStrings) {
  Rng rng(12);
  const std::string alphabet = "abc";
  auto random_string = [&]() {
    std::string s;
    const int len = static_cast<int>(rng.NextUint64(7));
    for (int i = 0; i < len; ++i) s += alphabet[rng.NextUint64(alphabet.size())];
    return s;
  };
  for (int trial = 0; trial < 400; ++trial) {
    const std::string x = random_string();
    const std::string y = random_string();
    const std::string z = random_string();
    const int xy = EditDistance(x, y);
    // Identity and symmetry.
    ASSERT_EQ(EditDistance(x, x), 0);
    ASSERT_EQ(xy, EditDistance(y, x));
    ASSERT_EQ(xy == 0, x == y);
    // Triangle inequality.
    ASSERT_LE(xy, EditDistance(x, z) + EditDistance(z, y));
    // Length difference lower bound.
    ASSERT_GE(xy, std::abs(static_cast<int>(x.size()) - static_cast<int>(y.size())));
  }
}

TEST(BaselineEdgeCaseTest, DegenerateRecords) {
  FastJoin fastjoin(FastJoinOptions{0.8, 0.8, 2});
  EXPECT_TRUE(fastjoin.SelfJoin({}).pairs.empty());
  const JoinResult single = fastjoin.SelfJoin({{"alone"}});
  EXPECT_TRUE(single.pairs.empty());
  const JoinResult twins = fastjoin.SelfJoin({{"same"}, {"same"}});
  EXPECT_EQ(twins.pairs.size(), 1u);

  SynonymJoin synonym({}, SynonymJoinOptions{1.0});
  const JoinResult exact = synonym.SelfJoin({{"a", "b"}, {"b", "a"}, {"a", "c"}});
  EXPECT_EQ(exact.pairs.size(), 1u);  // only the permuted twin at tau=1

  PpJoin ppjoin(PpJoinOptions{1.0, true});
  const JoinResult pp = ppjoin.SelfJoin({{"a", "b"}, {"b", "a"}, {"a"}});
  EXPECT_EQ(pp.pairs.size(), 1u);
}

// ----------------------------------------------- malformed-input corpus
//
// The parser entry points treat their input as untrusted (see
// docs/robustness.md): every input below must come back as a clean
// Status — parse, or a non-OK code — never a CHECK-abort or a crash.
// The libFuzzer harness in fuzz_parse.cc (-DKJOIN_FUZZ=ON) runs the same
// entry points coverage-guided; this corpus locks in the known classes.

TEST(ParserCorpusTest, HierarchyCorpusNeverDies) {
  const std::vector<std::string> corpus = {
      "",                                    // empty
      "\n\n# only comments\n",               // no nodes
      "0",                                   // truncated line
      "0\t-1",                               // missing label
      "0\t-1\tRoot\n1\t0",                   // truncated second line
      "0\t-1\tRoot\n1\t0\tA\t extra",        // too many fields
      "0\t-1\tRoot\n0\t0\tdup",              // duplicate id
      "0\t-1\tRoot\n2\t0\tgap",              // non-dense ids
      "1\t-1\tRoot",                         // ids not starting at 0
      "0\t0\tself",                          // root pointing at itself
      "0\t-1\tRoot\n1\t1\tcycle",            // parent == id (cycle edge)
      "0\t-1\tRoot\n1\t2\tfwd\n2\t0\tB",     // forward parent reference
      "0\t-1\tRoot\n1\t-3\tneg",             // negative non-root parent
      "0\t5\tRoot",                          // root with a real parent
      "x\t-1\tRoot",                         // non-numeric id
      "0\tx\tRoot",                          // non-numeric parent
      "99999999999999999999\t-1\tRoot",      // id overflow
      "0\t-1\t\xFF\xFE\xFA",                 // non-UTF-8 label
      "0\t-1\tRoot\r\n1\t0\tA\r",            // CR-LF endings
      std::string("0\t-1\tRo\0ot", 10),      // embedded NUL
      "0\t-1\tRoot\n1\t0\t",                 // empty label
  };
  for (size_t i = 0; i < corpus.size(); ++i) {
    const auto parsed = ParseHierarchy(corpus[i], "corpus");
    if (!parsed.ok()) {
      EXPECT_TRUE(IsInvalidArgument(parsed.status()))
          << "corpus[" << i << "]: " << parsed.status();
    }
  }
}

TEST(ParserCorpusTest, DatasetCorpusNeverDies) {
  const std::vector<std::string> corpus = {
      "R",                               // bare type
      "R\t1",                            // no tokens
      "R\tnotanint\ttok",                // bad cluster
      "R\t99999999999999999999\ttok",    // cluster overflow
      "R\t1\t\xC0\x80",                  // overlong-encoded token
      "S\tonly",                         // synonym arity
      "S\ta\tb\tc",                      // synonym arity (too many)
      "S\t\xED\xA0\x80\tb",              // surrogate in synonym
      "Q\t1\ttok",                       // unknown line type
      "\tR\t1\ttok",                     // leading tab
      std::string("R\t1\tto\0k", 8),     // embedded NUL
      "R\t-1\ttok\nR\t",                 // good line then truncated line
  };
  for (size_t i = 0; i < corpus.size(); ++i) {
    const auto parsed = ParseDataset(corpus[i], "corpus");
    if (!parsed.ok()) {
      EXPECT_TRUE(IsInvalidArgument(parsed.status()))
          << "corpus[" << i << "]: " << parsed.status();
    }
  }
}

TEST(ParserCorpusTest, MutatedSerializationsNeverDie) {
  // Start from valid serializations and apply random byte-level damage;
  // whatever comes out must parse or fail cleanly.
  HierarchyGenParams tree_params;
  tree_params.num_nodes = 60;
  tree_params.seed = 3;
  const Hierarchy tree = GenerateHierarchy(tree_params);
  const std::string good_tree = SerializeHierarchy(tree);

  RecordGenParams record_params;
  record_params.num_records = 40;
  record_params.seed = 3;
  const std::string good_data =
      SerializeDataset(DatasetGenerator(tree, record_params).Generate("x"));

  Rng rng(31);
  auto mutate = [&rng](std::string text) {
    const int edits = 1 + static_cast<int>(rng.NextUint64(8));
    for (int e = 0; e < edits && !text.empty(); ++e) {
      const size_t at = rng.NextUint64(text.size());
      switch (rng.NextUint64(5)) {
        case 0: text[at] = static_cast<char>(rng.NextUint64(256)); break;
        case 1: text.erase(at, 1 + rng.NextUint64(16)); break;
        case 2: text.insert(at, 1, static_cast<char>(rng.NextUint64(256))); break;
        case 3: text.resize(at); break;                     // truncate
        case 4: text.insert(at, text.substr(0, at / 2)); break;  // duplicate
      }
    }
    return text;
  };
  for (int trial = 0; trial < 300; ++trial) {
    const auto tree_result = ParseHierarchy(mutate(good_tree), "mutated");
    if (!tree_result.ok()) {
      ASSERT_TRUE(IsInvalidArgument(tree_result.status())) << tree_result.status();
    }
    const auto data_result = ParseDataset(mutate(good_data), "mutated");
    if (!data_result.ok()) {
      ASSERT_TRUE(IsInvalidArgument(data_result.status())) << data_result.status();
    }
  }
}

TEST(VerifyStatsTest, CountersAddUp) {
  VerifyStats a;
  a.pairs_verified = 10;
  a.pruned_by_count = 4;
  a.hungarian_runs = 2;
  VerifyStats b;
  b.pairs_verified = 5;
  b.results = 1;
  a.Add(b);
  EXPECT_EQ(a.pairs_verified, 15);
  EXPECT_EQ(a.pruned_by_count, 4);
  EXPECT_EQ(a.results, 1);
  EXPECT_EQ(a.hungarian_runs, 2);
}

}  // namespace
}  // namespace kjoin
