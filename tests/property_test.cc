// Property-based tests of the filtering theory:
//  * signature completeness (Lemmas 1 and 5) on random hierarchies, for
//    both element metrics and all three schemes;
//  * prefix-rule invariants (never empty, monotone in τ, weighted ⊆
//    plain);
//  * end-to-end prefix soundness: δ-similar objects always share a prefix
//    signature (Lemmas 2, 6, 7) on randomly built objects.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/element_similarity.h"
#include "core/object_similarity.h"
#include "core/prefix.h"
#include "core/signature.h"
#include "hierarchy/hierarchy_generator.h"
#include "hierarchy/lca.h"

namespace kjoin {
namespace {

struct SchemeCase {
  SignatureScheme scheme;
  ElementMetric metric;
  double delta;
};

std::string SchemeCaseName(const testing::TestParamInfo<SchemeCase>& info) {
  std::string name;
  switch (info.param.scheme) {
    case SignatureScheme::kNode: name = "Node"; break;
    case SignatureScheme::kShallowPath: name = "Shallow"; break;
    case SignatureScheme::kDeepPath: name = "Deep"; break;
  }
  name += info.param.metric == ElementMetric::kKJoin ? "KJ" : "WP";
  name += "D" + std::to_string(static_cast<int>(info.param.delta * 100));
  return name;
}

class SignatureCompletenessTest : public testing::TestWithParam<SchemeCase> {};

// Lemma 1 / Lemma 5 generalization: on a random 800-node hierarchy, any
// two δ-similar nodes share a signature under every scheme and metric.
TEST_P(SignatureCompletenessTest, SimilarNodesShareASignature) {
  const SchemeCase& c = GetParam();
  HierarchyGenParams params;
  params.num_nodes = 800;
  params.height = 7;
  params.avg_fanout = 4.0;
  params.max_fanout = 12;
  params.seed = 11;
  const Hierarchy tree = GenerateHierarchy(params);
  const LcaIndex lca(tree);
  const ElementSimilarity esim(lca, c.metric);
  const SignatureGenerator gen(tree, c.metric, c.scheme, c.delta);

  auto sig_set = [&](NodeId node) {
    Object object;
    object.elements.push_back({tree.label(node), static_cast<int32_t>(node), {{node, 1.0}}});
    std::set<SigId> sigs;
    for (const Signature& sig : gen.Generate(object)) sigs.insert(sig.id);
    return sigs;
  };

  Rng rng(31);
  int checked = 0;
  for (int trial = 0; trial < 60000 && checked < 800; ++trial) {
    const NodeId x = static_cast<NodeId>(1 + rng.NextUint64(tree.num_nodes() - 1));
    const NodeId y = static_cast<NodeId>(1 + rng.NextUint64(tree.num_nodes() - 1));
    if (esim.NodeSim(x, y) < c.delta) continue;
    ++checked;
    const std::set<SigId> sx = sig_set(x);
    const std::set<SigId> sy = sig_set(y);
    std::vector<SigId> common;
    std::set_intersection(sx.begin(), sx.end(), sy.begin(), sy.end(),
                          std::back_inserter(common));
    ASSERT_FALSE(common.empty())
        << tree.label(x) << "(d" << tree.depth(x) << ") ~ " << tree.label(y) << "(d"
        << tree.depth(y) << ") sim=" << esim.NodeSim(x, y);
  }
  // Ancestor-descendant pairs are always worth covering explicitly.
  for (NodeId v = 1; v < tree.num_nodes(); ++v) {
    const NodeId parent = tree.parent(v);
    if (parent == tree.root()) continue;
    if (esim.NodeSim(v, parent) < c.delta) continue;
    const std::set<SigId> sv = sig_set(v);
    const std::set<SigId> sp = sig_set(parent);
    std::vector<SigId> common;
    std::set_intersection(sv.begin(), sv.end(), sp.begin(), sp.end(),
                          std::back_inserter(common));
    ASSERT_FALSE(common.empty()) << "parent-child pair at depth " << tree.depth(v);
  }
  ASSERT_GT(checked, 0) << "no similar pairs sampled; sweep degenerated";
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SignatureCompletenessTest,
    testing::Values(SchemeCase{SignatureScheme::kNode, ElementMetric::kKJoin, 0.5},
                    SchemeCase{SignatureScheme::kNode, ElementMetric::kKJoin, 0.7},
                    SchemeCase{SignatureScheme::kNode, ElementMetric::kKJoin, 0.9},
                    SchemeCase{SignatureScheme::kShallowPath, ElementMetric::kKJoin, 0.5},
                    SchemeCase{SignatureScheme::kShallowPath, ElementMetric::kKJoin, 0.7},
                    SchemeCase{SignatureScheme::kShallowPath, ElementMetric::kKJoin, 0.9},
                    SchemeCase{SignatureScheme::kDeepPath, ElementMetric::kKJoin, 0.5},
                    SchemeCase{SignatureScheme::kDeepPath, ElementMetric::kKJoin, 0.7},
                    SchemeCase{SignatureScheme::kDeepPath, ElementMetric::kKJoin, 0.9},
                    SchemeCase{SignatureScheme::kNode, ElementMetric::kWuPalmer, 0.6},
                    SchemeCase{SignatureScheme::kNode, ElementMetric::kWuPalmer, 0.8},
                    SchemeCase{SignatureScheme::kShallowPath, ElementMetric::kWuPalmer, 0.6},
                    SchemeCase{SignatureScheme::kShallowPath, ElementMetric::kWuPalmer, 0.8},
                    SchemeCase{SignatureScheme::kDeepPath, ElementMetric::kWuPalmer, 0.6},
                    SchemeCase{SignatureScheme::kDeepPath, ElementMetric::kWuPalmer, 0.8}),
    SchemeCaseName);

// ---------------------------------------------------------------- prefixes

std::vector<Signature> RandomSigs(Rng& rng, int num_elements, int max_sigs_per_element) {
  std::vector<Signature> sigs;
  SigId next_id = 0;
  for (int32_t e = 0; e < num_elements; ++e) {
    const int count = 1 + static_cast<int>(rng.NextUint64(max_sigs_per_element));
    for (int k = 0; k < count; ++k) {
      sigs.push_back({next_id++, e, static_cast<float>(0.2 + 0.8 * rng.NextDouble())});
    }
  }
  // Global order is arbitrary here; shuffle to avoid element-grouped runs.
  rng.Shuffle(&sigs);
  // Make the element's own (weight-1) signature present, as real schemes
  // guarantee: promote each element's max weight to 1 with prob 1/2.
  return sigs;
}

TEST(PrefixPropertyTest, PrefixMonotoneInThreshold) {
  Rng rng(71);
  for (int trial = 0; trial < 300; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextUint64(8));
    const std::vector<Signature> sigs = RandomSigs(rng, n, 3);
    int32_t previous_distinct = -1;
    int32_t previous_weighted = -1;
    for (int tau10 = 0; tau10 <= 10; ++tau10) {
      const double tau = tau10 / 10.0;
      const int32_t distinct =
          PrefixLengthDistinct(sigs, MinSimilarElements(n, tau, SetMetric::kJaccard));
      const int32_t weighted = PrefixLengthWeighted(sigs, tau * n);
      // A larger τ permits removing more suffix signatures, so prefixes
      // shrink (or stay) as τ grows.
      if (previous_distinct >= 0) {
        ASSERT_LE(distinct, previous_distinct) << "distinct rule not monotone at tau " << tau;
        ASSERT_LE(weighted, previous_weighted) << "weighted rule not monotone at tau " << tau;
      }
      previous_distinct = distinct;
      previous_weighted = weighted;
      ASSERT_GE(distinct, 1);
      ASSERT_GE(weighted, 1);
      ASSERT_LE(distinct, static_cast<int32_t>(sigs.size()));
    }
  }
}

TEST(PrefixPropertyTest, WeightedPrefixNeverLongerThanDistinct) {
  // Each element contributes mass <= 1 to the weighted rule, so the
  // weighted removal can never stop earlier than the distinct-element
  // removal at the same τ|S| budget.
  Rng rng(73);
  for (int trial = 0; trial < 500; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextUint64(8));
    const std::vector<Signature> sigs = RandomSigs(rng, n, 3);
    for (double tau : {0.3, 0.5, 0.7, 0.9, 1.0}) {
      const int32_t distinct =
          PrefixLengthDistinct(sigs, MinSimilarElements(n, tau, SetMetric::kJaccard));
      const int32_t weighted = PrefixLengthWeighted(sigs, tau * n);
      ASSERT_LE(weighted, distinct) << "trial " << trial << " tau " << tau << " n " << n;
    }
  }
}

TEST(PrefixPropertyTest, DistinctRuleSuffixInvariant) {
  // Definition 8: the removed suffix touches at most τ_S - 1 distinct
  // elements, and removing one more signature would touch τ_S.
  Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextUint64(6));
    const std::vector<Signature> sigs = RandomSigs(rng, n, 3);
    const int32_t tau_s = 1 + static_cast<int32_t>(rng.NextUint64(n));
    const int32_t prefix = PrefixLengthDistinct(sigs, tau_s);
    std::set<int32_t> suffix_elements;
    for (size_t k = prefix; k < sigs.size(); ++k) suffix_elements.insert(sigs[k].element);
    ASSERT_LE(static_cast<int32_t>(suffix_elements.size()), tau_s - 1);
    if (prefix > 1) {
      // One more removal would exceed the budget (or the floor of one
      // signature was hit).
      std::set<int32_t> extended = suffix_elements;
      extended.insert(sigs[prefix - 1].element);
      ASSERT_GE(static_cast<int32_t>(extended.size()), tau_s);
    }
  }
}

// ----------------------------- end-to-end prefix soundness (Lemmas 2/6/7)

struct PrefixSoundnessCase {
  SignatureScheme scheme;
  bool weighted;
  double delta;
  double tau;
};

class PrefixSoundnessTest : public testing::TestWithParam<PrefixSoundnessCase> {};

TEST_P(PrefixSoundnessTest, SimilarObjectsSharePrefixSignatures) {
  const PrefixSoundnessCase& c = GetParam();
  HierarchyGenParams tree_params;
  tree_params.num_nodes = 400;
  tree_params.height = 6;
  tree_params.avg_fanout = 4.0;
  tree_params.max_fanout = 10;
  tree_params.seed = 5;
  const Hierarchy tree = GenerateHierarchy(tree_params);
  const LcaIndex lca(tree);
  const ElementSimilarity esim(lca);
  const ObjectSimilarity osim(esim, c.delta);
  const SignatureGenerator gen(tree, ElementMetric::kKJoin, c.scheme, c.delta);

  // Random objects over hierarchy nodes (depth >= 1) with duplicates via
  // shared bases.
  Rng rng(13);
  std::vector<Object> objects;
  for (int i = 0; i < 150; ++i) {
    Object object;
    object.id = i;
    const int size = 2 + static_cast<int>(rng.NextUint64(5));
    for (int k = 0; k < size; ++k) {
      const NodeId node = static_cast<NodeId>(1 + rng.NextUint64(tree.num_nodes() - 1));
      object.elements.push_back(
          {tree.label(node), static_cast<int32_t>(node), {{node, 1.0}}});
    }
    objects.push_back(std::move(object));
    if (i % 3 == 0) {
      // Near-duplicate: copy with one element replaced by a sibling.
      Object copy = objects.back();
      copy.id = ++i;
      Element& victim = copy.elements[rng.NextUint64(copy.elements.size())];
      const NodeId node = victim.mappings[0].node;
      const auto& siblings = tree.children(tree.parent(node));
      const NodeId swap = siblings[rng.NextUint64(siblings.size())];
      victim = {tree.label(swap), static_cast<int32_t>(swap), {{swap, 1.0}}};
      objects.push_back(std::move(copy));
    }
  }

  // Global order + sorted signatures + prefixes.
  GlobalSignatureOrder order;
  std::vector<std::vector<Signature>> sigs;
  for (const Object& object : objects) {
    sigs.push_back(gen.Generate(object));
    order.CountObject(sigs.back());
  }
  order.Finalize();
  std::vector<int32_t> prefix_len;
  for (size_t i = 0; i < objects.size(); ++i) {
    SortByGlobalOrder(order, &sigs[i]);
    if (c.weighted) {
      prefix_len.push_back(PrefixLengthWeighted(
          sigs[i], MinOverlapWithAnyPartner(objects[i].size(), c.tau, SetMetric::kJaccard)));
    } else {
      prefix_len.push_back(PrefixLengthDistinct(
          sigs[i], MinSimilarElements(objects[i].size(), c.tau, SetMetric::kJaccard)));
    }
  }

  auto prefix_set = [&](size_t i) {
    std::set<SigId> set;
    for (int32_t k = 0; k < prefix_len[i]; ++k) set.insert(sigs[i][k].id);
    return set;
  };

  int similar_pairs = 0;
  for (size_t a = 0; a < objects.size(); ++a) {
    for (size_t b = a + 1; b < objects.size(); ++b) {
      if (osim.Similarity(objects[a], objects[b]) < c.tau - 1e-9) continue;
      ++similar_pairs;
      const std::set<SigId> pa = prefix_set(a);
      const std::set<SigId> pb = prefix_set(b);
      std::vector<SigId> common;
      std::set_intersection(pa.begin(), pa.end(), pb.begin(), pb.end(),
                            std::back_inserter(common));
      ASSERT_FALSE(common.empty()) << "objects " << a << " and " << b;
    }
  }
  ASSERT_GT(similar_pairs, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Rules, PrefixSoundnessTest,
    testing::Values(PrefixSoundnessCase{SignatureScheme::kNode, false, 0.7, 0.6},
                    PrefixSoundnessCase{SignatureScheme::kShallowPath, false, 0.7, 0.6},
                    PrefixSoundnessCase{SignatureScheme::kDeepPath, false, 0.7, 0.6},
                    PrefixSoundnessCase{SignatureScheme::kDeepPath, true, 0.7, 0.6},
                    PrefixSoundnessCase{SignatureScheme::kDeepPath, true, 0.5, 0.8},
                    PrefixSoundnessCase{SignatureScheme::kDeepPath, true, 0.9, 0.5},
                    PrefixSoundnessCase{SignatureScheme::kNode, false, 0.6, 0.9}),
    [](const testing::TestParamInfo<PrefixSoundnessCase>& info) {
      std::string name;
      switch (info.param.scheme) {
        case SignatureScheme::kNode: name = "Node"; break;
        case SignatureScheme::kShallowPath: name = "Shallow"; break;
        case SignatureScheme::kDeepPath: name = "Deep"; break;
      }
      name += info.param.weighted ? "Weighted" : "Plain";
      name += "D" + std::to_string(static_cast<int>(info.param.delta * 100));
      name += "T" + std::to_string(static_cast<int>(info.param.tau * 100));
      return name;
    });

}  // namespace
}  // namespace kjoin
