// Serving-stack suite (docs/serving.md): snapshot round-trip fidelity,
// the corruption matrix (truncation at every boundary, bit flips, forged
// checksums, version skew), loader fault points, RCU epoch swapping in
// IndexManager, and the SearchService guard rails. The concurrency tests
// run under the tsan preset; the byte-surgery tests under asan.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <future>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/kjoin_index.h"
#include "data/benchmark_suite.h"
#include "serve/index_manager.h"
#include "serve/search_service.h"
#include "serve/snapshot.h"

namespace kjoin {
namespace {

// ------------------------------------------------------- shared fixture

constexpr int64_t kRecords = 240;

// One built index + its serialized snapshot, shared across tests (the
// build is the expensive part; every test treats it as immutable). The
// hierarchy lives behind a shared_ptr so IndexManager epochs can share it.
struct ServeStack {
  Dataset dataset;
  std::shared_ptr<const Hierarchy> hierarchy;
  PreparedObjects prepared;
  std::optional<KJoinIndex> index;
  std::string bytes;  // SerializeIndexSnapshot of `index`
};

ServeStack& Stack() {
  static ServeStack* stack = [] {
    auto* s = new ServeStack();
    BenchmarkData data = MakePoiBenchmark(kRecords, /*seed=*/77);
    s->dataset = std::move(data.dataset);
    s->hierarchy = std::make_shared<const Hierarchy>(std::move(data.hierarchy));
    s->prepared = BuildObjects(*s->hierarchy, s->dataset,
                               /*multi_mapping=*/true, /*min_phi=*/0.8);
    KJoinOptions options;
    options.delta = 0.8;
    options.tau = 0.6;
    options.plus_mode = true;
    s->index.emplace(*s->hierarchy, options, s->prepared.objects);
    serve::SnapshotInput input;
    input.index = &*s->index;
    input.tokens = s->prepared.builder->TokenTable();
    input.synonyms = s->dataset.synonyms;
    s->bytes = serve::SerializeIndexSnapshot(input);
    return s;
  }();
  return *stack;
}

// Query workload: perturbed copies of indexed records (drop one token),
// built by whichever builder matches the index under test.
std::vector<Object> MakeQueries(ObjectBuilder* builder, int count) {
  const Dataset& dataset = Stack().dataset;
  std::vector<Object> queries;
  queries.reserve(count);
  for (int q = 0; q < count; ++q) {
    std::vector<std::string> tokens =
        dataset.records[(q * 97) % dataset.records.size()].tokens;
    if (tokens.empty()) continue;
    if (q % 2 == 1) tokens.pop_back();
    queries.push_back(builder->Build(-1, tokens));
  }
  return queries;
}

// ----------------------------------------------------- byte surgery

constexpr size_t kHeaderBytes = 16;
constexpr size_t kEntryBytes = 24;

uint32_t ReadU32(const std::string& bytes, size_t offset) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(bytes[offset + i]);
  return v;
}

uint64_t ReadU64(const std::string& bytes, size_t offset) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(bytes[offset + i]);
  return v;
}

void WriteU32(std::string* bytes, size_t offset, uint32_t v) {
  for (int i = 0; i < 4; ++i) (*bytes)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

struct Section {
  size_t entry_offset = 0;  // of its 24-byte table entry
  size_t offset = 0;        // payload
  size_t size = 0;
};

std::vector<Section> SectionTable(const std::string& bytes) {
  const uint32_t count = ReadU32(bytes, 8);
  std::vector<Section> sections(count);
  for (uint32_t i = 0; i < count; ++i) {
    Section& s = sections[i];
    s.entry_offset = kHeaderBytes + i * kEntryBytes;
    s.offset = ReadU64(bytes, s.entry_offset + 8);
    s.size = ReadU64(bytes, s.entry_offset + 16);
  }
  return sections;
}

// After editing the table or a payload, restore the checksums the loader
// verifies first so the edit (not the CRC) is what gets exercised.
void FixSectionCrc(std::string* bytes, const Section& section) {
  WriteU32(bytes, section.entry_offset + 4,
           serve::Crc32(std::string_view(*bytes).substr(section.offset, section.size)));
}

void FixTableCrc(std::string* bytes) {
  const uint32_t count = ReadU32(*bytes, 8);
  WriteU32(bytes, 12,
           serve::Crc32(std::string_view(*bytes).substr(kHeaderBytes, count * kEntryBytes)));
}

Status LoadStatus(const std::string& bytes) {
  auto loaded = serve::LoadIndexSnapshotFromBytes(bytes, "corrupt");
  return loaded.ok() ? OkStatus() : loaded.status();
}

// ------------------------------------------------------- round trip

TEST(SnapshotTest, RoundTripSearchIdentical) {
  ServeStack& stack = Stack();
  auto loaded = serve::LoadIndexSnapshotFromBytes(stack.bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->index->num_indexed(), stack.index->num_indexed());
  EXPECT_EQ(loaded->index->options().tau, stack.index->options().tau);
  EXPECT_EQ(loaded->index->options().delta, stack.index->options().delta);
  EXPECT_EQ(loaded->index->options().plus_mode, stack.index->options().plus_mode);
  EXPECT_EQ(loaded->tokens, stack.prepared.builder->TokenTable());
  EXPECT_EQ(loaded->synonyms, stack.dataset.synonyms);

  // Queries built by the restored pipeline must be token-id-compatible:
  // every Search and SearchTopK answer (hits, candidate counts, verify
  // stats) is byte-identical to the original index's.
  serve::QueryPipeline pipeline = serve::MakeQueryPipeline(*loaded);
  const std::vector<Object> original_queries = MakeQueries(stack.prepared.builder.get(), 40);
  const std::vector<Object> loaded_queries = MakeQueries(pipeline.builder.get(), 40);
  ASSERT_EQ(original_queries.size(), loaded_queries.size());
  int64_t total_hits = 0;
  for (size_t q = 0; q < original_queries.size(); ++q) {
    const JoinControl control;
    std::vector<SearchHit> expected, actual;
    SearchStats expected_stats, actual_stats;
    ASSERT_TRUE(stack.index->Search(original_queries[q], control, &expected, &expected_stats).ok());
    ASSERT_TRUE(loaded->index->Search(loaded_queries[q], control, &actual, &actual_stats).ok());
    EXPECT_EQ(expected, actual) << "query " << q;
    EXPECT_EQ(expected_stats.candidates, actual_stats.candidates) << "query " << q;
    total_hits += static_cast<int64_t>(actual.size());

    const auto expected_topk = stack.index->SearchTopK(original_queries[q], 3, 0.6);
    const auto actual_topk = loaded->index->SearchTopK(loaded_queries[q], 3, 0.6);
    EXPECT_EQ(expected_topk, actual_topk) << "query " << q;
  }
  EXPECT_GT(total_hits, 0);  // the workload must actually exercise search
}

TEST(SnapshotTest, SerializationIsDeterministic) {
  ServeStack& stack = Stack();
  serve::SnapshotInput input;
  input.index = &*stack.index;
  input.tokens = stack.prepared.builder->TokenTable();
  input.synonyms = stack.dataset.synonyms;
  EXPECT_EQ(serve::SerializeIndexSnapshot(input), stack.bytes);
}

TEST(SnapshotTest, ReloadOfResavedSnapshotIsByteIdentical) {
  ServeStack& stack = Stack();
  auto loaded = serve::LoadIndexSnapshotFromBytes(stack.bytes);
  ASSERT_TRUE(loaded.ok());
  serve::SnapshotInput input;
  input.index = loaded->index.get();
  input.tokens = loaded->tokens;
  input.synonyms = loaded->synonyms;
  EXPECT_EQ(serve::SerializeIndexSnapshot(input), stack.bytes);
}

TEST(SnapshotTest, EmptyTokenTableIsReconstructedFromObjects) {
  ServeStack& stack = Stack();
  serve::SnapshotInput input;
  input.index = &*stack.index;  // no tokens, no synonyms
  auto loaded = serve::LoadIndexSnapshotFromBytes(serve::SerializeIndexSnapshot(input));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  serve::QueryPipeline pipeline = serve::MakeQueryPipeline(*loaded);
  // A record searched verbatim must still retrieve itself: every token id
  // referenced by an indexed object survived the reconstruction.
  const Record& record = stack.dataset.records[7];
  const Object query = pipeline.builder->Build(-1, record.tokens);
  const std::vector<SearchHit> hits = loaded->index->Search(query);
  bool found_self = false;
  for (const SearchHit& hit : hits) found_self |= hit.object_index == 7;
  EXPECT_TRUE(found_self);
}

TEST(SnapshotTest, SaveAndLoadFileWithMetrics) {
  ServeStack& stack = Stack();
  const std::string path = testing::TempDir() + "/serve_test_roundtrip.snap";
  serve::SnapshotInput input;
  input.index = &*stack.index;
  input.tokens = stack.prepared.builder->TokenTable();
  input.synonyms = stack.dataset.synonyms;
  ASSERT_TRUE(serve::SaveIndexSnapshot(input, path).ok());

  MetricsRegistry metrics;
  auto loaded = serve::LoadIndexSnapshot(path, &metrics);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->file_bytes, stack.bytes.size());
  EXPECT_EQ(loaded->index->num_indexed(), stack.index->num_indexed());
  EXPECT_EQ(metrics.counter("snapshot.loads")->value(), 1);
  EXPECT_EQ(metrics.counter("snapshot.load_bytes")->value(),
            static_cast<int64_t>(stack.bytes.size()));
  EXPECT_EQ(metrics.counter("snapshot.load_failures")->value(), 0);
  EXPECT_EQ(metrics.histogram("snapshot.load_seconds")->count(), 1);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  MetricsRegistry metrics;
  auto loaded = serve::LoadIndexSnapshot("/nonexistent/kjoin.snap", &metrics);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(IsNotFound(loaded.status())) << loaded.status().ToString();
  EXPECT_EQ(metrics.counter("snapshot.load_failures")->value(), 1);
}

// ------------------------------------------------------- corruption

TEST(SnapshotCorruptionTest, TruncationAtEveryBoundaryFailsCleanly) {
  const std::string& bytes = Stack().bytes;
  const std::vector<Section> sections = SectionTable(bytes);
  std::set<size_t> cuts = {0, 1, 4, 8, 15, kHeaderBytes,
                           kHeaderBytes + sections.size() * kEntryBytes - 1,
                           kHeaderBytes + sections.size() * kEntryBytes,
                           bytes.size() - 1};
  for (const Section& section : sections) {
    cuts.insert(section.offset);          // section fully missing
    cuts.insert(section.offset + 1);      // cut inside the payload
    cuts.insert(section.offset + section.size - 1);  // last byte missing
  }
  for (size_t cut : cuts) {
    ASSERT_LT(cut, bytes.size());
    const Status status = LoadStatus(bytes.substr(0, cut));
    ASSERT_FALSE(status.ok()) << "prefix of " << cut << " bytes was accepted";
    EXPECT_TRUE(IsDataLoss(status) || IsInvalidArgument(status))
        << "prefix " << cut << ": " << status.ToString();
  }
}

TEST(SnapshotCorruptionTest, BitFlipInEachSectionIsDataLoss) {
  const std::string& pristine = Stack().bytes;
  for (const Section& section : SectionTable(pristine)) {
    std::string bytes = pristine;
    bytes[section.offset + section.size / 2] ^= 0x40;
    const Status status = LoadStatus(bytes);
    ASSERT_FALSE(status.ok());
    EXPECT_TRUE(IsDataLoss(status)) << status.ToString();
  }
}

TEST(SnapshotCorruptionTest, SectionTableFlipIsDataLoss) {
  std::string bytes = Stack().bytes;
  bytes[kHeaderBytes + 5] ^= 0x01;  // inside the first entry, CRC-covered
  const Status status = LoadStatus(bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsDataLoss(status)) << status.ToString();
}

TEST(SnapshotCorruptionTest, WrongMagicIsInvalidArgument) {
  std::string bytes = Stack().bytes;
  WriteU32(&bytes, 0, 0x31544147);  // "GAT1"
  const Status status = LoadStatus(bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsInvalidArgument(status)) << status.ToString();
}

TEST(SnapshotCorruptionTest, VersionSkewIsInvalidArgument) {
  std::string bytes = Stack().bytes;
  WriteU32(&bytes, 4, serve::kSnapshotFormatVersion + 9);
  const Status status = LoadStatus(bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsInvalidArgument(status)) << status.ToString();
  // The message must tell the operator which versions are involved.
  EXPECT_NE(status.message().find(std::to_string(serve::kSnapshotFormatVersion + 9)),
            std::string::npos)
      << status.ToString();
}

TEST(SnapshotCorruptionTest, BadSectionCountFailsCleanly) {
  std::string bytes = Stack().bytes;
  WriteU32(&bytes, 8, 4096);  // table would run past EOF
  const Status status = LoadStatus(bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsDataLoss(status) || IsInvalidArgument(status)) << status.ToString();
}

TEST(SnapshotCorruptionTest, UnknownTagIsRejected) {
  std::string bytes = Stack().bytes;
  const std::vector<Section> sections = SectionTable(bytes);
  WriteU32(&bytes, sections[0].entry_offset, 0x58585858);  // "XXXX"
  FixTableCrc(&bytes);
  const Status status = LoadStatus(bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsInvalidArgument(status)) << status.ToString();
}

TEST(SnapshotCorruptionTest, DuplicateTagIsRejected) {
  std::string bytes = Stack().bytes;
  const std::vector<Section> sections = SectionTable(bytes);
  ASSERT_GE(sections.size(), 2u);
  WriteU32(&bytes, sections[1].entry_offset, ReadU32(bytes, sections[0].entry_offset));
  FixTableCrc(&bytes);
  const Status status = LoadStatus(bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsInvalidArgument(status)) << status.ToString();
}

// A CRC-valid snapshot whose TOKS table repeats a string must fail the
// load cleanly: the table feeds ObjectBuilder::PreloadTokens, whose
// intern map CHECK-fails on a repeat, so the parser is the last chance
// to turn the forgery into a Status instead of a process abort.
TEST(SnapshotCorruptionTest, DuplicateTokenEntryIsRejected) {
  serve::SnapshotInput input;
  input.index = &*Stack().index;
  input.tokens = Stack().prepared.builder->TokenTable();
  ASSERT_FALSE(input.tokens.empty());
  input.tokens.push_back(input.tokens.front());
  const Status status = LoadStatus(serve::SerializeIndexSnapshot(input));
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsInvalidArgument(status)) << status.ToString();
}

// A corrupted payload with its checksums recomputed gets past the CRC
// layer on purpose: the structural validators are the last line of
// defense and must turn garbage into a clean Status, never a crash or an
// out-of-bounds access (this is the asan-preset half of the contract).
TEST(SnapshotCorruptionTest, ForgedChecksumsStillFailStructuralValidation) {
  const std::string& pristine = Stack().bytes;
  const std::vector<Section> sections = SectionTable(pristine);
  int rejected = 0;
  int accepted = 0;
  for (const Section& section : sections) {
    for (int probe = 0; probe < 8; ++probe) {
      std::string bytes = pristine;
      const size_t at = section.offset + (section.size * probe) / 8;
      bytes[at] = static_cast<char>(0xFF);
      FixSectionCrc(&bytes, section);
      FixTableCrc(&bytes);
      const Status status = LoadStatus(bytes);
      if (status.ok()) {
        ++accepted;  // the flip landed on a byte whose 0xFF value is legal
      } else {
        ++rejected;
        EXPECT_TRUE(IsDataLoss(status) || IsInvalidArgument(status)) << status.ToString();
      }
    }
  }
  // Most probes must hit a validator (counts, ids, enum ranges); if they
  // all pass, the validators are not actually wired in.
  EXPECT_GT(rejected, accepted);
}

TEST(SnapshotCorruptionTest, GarbageInputsFailCleanly) {
  EXPECT_FALSE(LoadStatus("").ok());
  EXPECT_FALSE(LoadStatus("KJSN").ok());
  EXPECT_FALSE(LoadStatus(std::string(4096, '\xAB')).ok());
  std::string zeros(Stack().bytes.size(), '\0');
  EXPECT_FALSE(LoadStatus(zeros).ok());
}

// ------------------------------------------------------- fault points

TEST(SnapshotFaultTest, OpenFaultFailsLoad) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const std::string path = testing::TempDir() + "/serve_test_fault.snap";
  serve::SnapshotInput input;
  input.index = &*Stack().index;
  ASSERT_TRUE(serve::SaveIndexSnapshot(input, path).ok());

  fault::Scope scope;
  fault::Enable("serve/open");
  auto loaded = serve::LoadIndexSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(SnapshotFaultTest, MmapFaultFallsBackToRead) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const std::string path = testing::TempDir() + "/serve_test_fault.snap";
  serve::SnapshotInput input;
  input.index = &*Stack().index;
  input.tokens = Stack().prepared.builder->TokenTable();
  ASSERT_TRUE(serve::SaveIndexSnapshot(input, path).ok());

  fault::Scope scope;
  fault::Enable("serve/mmap");  // mmap "fails"; plain reads must serve the file
  auto loaded = serve::LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->index->num_indexed(), Stack().index->num_indexed());
  std::remove(path.c_str());
}

TEST(SnapshotFaultTest, ShortReadIsDataLoss) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const std::string path = testing::TempDir() + "/serve_test_fault.snap";
  serve::SnapshotInput input;
  input.index = &*Stack().index;
  ASSERT_TRUE(serve::SaveIndexSnapshot(input, path).ok());

  fault::Scope scope;
  fault::Enable("serve/mmap");  // route through the read fallback...
  fault::Enable("serve/short_read");  // ...and tear it
  auto loaded = serve::LoadIndexSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(IsDataLoss(loaded.status())) << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SnapshotFaultTest, SectionCrcFaultIsDataLoss) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  fault::Scope scope;
  fault::Enable("serve/section_crc");
  const Status status = LoadStatus(Stack().bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsDataLoss(status)) << status.ToString();
}

TEST(SnapshotFaultTest, WriteFaultIsDataLossAndRemovesFile) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const std::string path = testing::TempDir() + "/serve_test_fault.snap";
  fault::Scope scope;
  fault::Enable("serve/write");
  serve::SnapshotInput input;
  input.index = &*Stack().index;
  const Status status = serve::SaveIndexSnapshot(input, path);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsDataLoss(status)) << status.ToString();
  // No torn half-file left behind for a later load to trip over.
  EXPECT_FALSE(serve::LoadIndexSnapshot(path).ok());
}

// ------------------------------------------- concurrent index search

// Satellite of docs/serving.md: Search/SearchTopK are safe for any number
// of concurrent readers, and concurrency never changes answers. Runs
// under the tsan preset.
TEST(ConcurrentSearchTest, EightReadersMatchSerial) {
  ServeStack& stack = Stack();
  const std::vector<Object> queries = MakeQueries(stack.prepared.builder.get(), 24);
  std::vector<std::vector<SearchHit>> serial(queries.size());
  std::vector<std::vector<SearchHit>> serial_topk(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    serial[q] = stack.index->Search(queries[q]);
    serial_topk[q] = stack.index->SearchTopK(queries[q], 3, 0.6);
  }

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t q = t % 3; q < queries.size(); ++q) {  // staggered starts
        if (stack.index->Search(queries[q]) != serial[q]) mismatches.fetch_add(1);
        if (stack.index->SearchTopK(queries[q], 3, 0.6) != serial_topk[q]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// A top-k search that trips its deadline mid-scan still honors the
// caller's contract on the partial result: at most k hits, all at or
// above min_similarity. The microsecond deadlines pass the initial check
// but expire by the first control poll (every 8 verifications), so the
// trip lands with unfiltered hits accumulated — exactly the case where a
// raw early return would leak below-floor and beyond-k hits.
TEST(ConcurrentSearchTest, TrippedTopKStillFiltersAndTruncates) {
  ServeStack& stack = Stack();
  const std::vector<Object> queries = MakeQueries(stack.prepared.builder.get(), 24);
  const double floor = 0.9;  // above tau = 0.6, so some proven hits get filtered
  for (const Object& query : queries) {
    for (const double deadline : {1e-12, 1e-7, 1e-6, 1e-5}) {
      JoinControl control;
      control.deadline_seconds = deadline;
      std::vector<SearchHit> hits;
      const Status status = stack.index->SearchTopK(query, /*k=*/1, floor, control, &hits);
      if (!status.ok()) {
        EXPECT_TRUE(IsDeadlineExceeded(status)) << status.ToString();
      }
      EXPECT_LE(hits.size(), 1u);
      for (const SearchHit& hit : hits) EXPECT_GE(hit.similarity + 1e-9, floor);
    }
  }
}

// --------------------------------------------------- IndexManager

// Fresh objects for insertion, id-contiguous with the shared collection.
std::vector<Object> MakeInserts(ObjectBuilder* builder, int count, int32_t first_id) {
  const Dataset& dataset = Stack().dataset;
  std::vector<Object> batch;
  batch.reserve(count);
  for (int i = 0; i < count; ++i) {
    batch.push_back(builder->Build(first_id + i,
                                   dataset.records[i % dataset.records.size()].tokens));
  }
  return batch;
}

std::unique_ptr<serve::IndexManager> MakeManager(ThreadPool* pool,
                                                 MetricsRegistry* metrics = nullptr) {
  ServeStack& stack = Stack();
  KJoinOptions options = stack.index->options();
  return std::make_unique<serve::IndexManager>(
      stack.hierarchy, options, stack.prepared.objects,
      stack.prepared.builder->TokenTable(), stack.dataset.synonyms, pool, metrics);
}

TEST(IndexManagerTest, InsertPublishesNewEpochOldReadersUnaffected) {
  MetricsRegistry metrics;
  std::unique_ptr<serve::IndexManager> manager = MakeManager(nullptr, &metrics);
  EXPECT_EQ(manager->version(), 1);

  const auto old_epoch = manager->Acquire();
  const int64_t before = old_epoch->index->num_indexed();

  manager->InsertBatch(MakeInserts(Stack().prepared.builder.get(), 10,
                                   static_cast<int32_t>(kRecords)));
  manager->Flush();

  // The held epoch is immutable; the new one has the batch applied.
  EXPECT_EQ(old_epoch->index->num_indexed(), before);
  EXPECT_EQ(old_epoch->version, 1);
  const auto new_epoch = manager->Acquire();
  EXPECT_EQ(new_epoch->version, 2);
  EXPECT_EQ(new_epoch->index->num_indexed(), before + 10);
  EXPECT_EQ(manager->pending_inserts(), 0);
  EXPECT_EQ(metrics.counter("manager.swaps")->value(), 1);
  EXPECT_EQ(metrics.counter("manager.inserts")->value(), 10);

  // An inserted record is searchable at the new epoch: verbatim self-query.
  const Record& record = Stack().dataset.records[0];
  const Object query = Stack().prepared.builder->Build(-1, record.tokens);
  bool found_insert = false;
  for (const SearchHit& hit : new_epoch->index->Search(query)) {
    found_insert |= hit.object_index >= static_cast<int32_t>(before);
  }
  EXPECT_TRUE(found_insert);
}

TEST(IndexManagerTest, BackgroundRebuildOnPool) {
  ThreadPool pool(2);
  std::unique_ptr<serve::IndexManager> manager = MakeManager(&pool);
  manager->InsertBatch(MakeInserts(Stack().prepared.builder.get(), 5,
                                   static_cast<int32_t>(kRecords)));
  manager->Flush();  // barrier: the scheduled rebuild has been applied
  EXPECT_EQ(manager->version(), 2);
  EXPECT_EQ(manager->Acquire()->index->num_indexed(),
            Stack().index->num_indexed() + 5);
}

// Readers spin on Acquire+Search while batches land: versions only move
// forward, collection sizes never shrink, and every acquired epoch is a
// complete index. Runs under the tsan preset.
TEST(IndexManagerTest, ConcurrentReadersDuringSwaps) {
  ThreadPool pool(2);
  std::unique_ptr<serve::IndexManager> manager = MakeManager(&pool);
  const Object query = Stack().prepared.builder->Build(
      -1, Stack().dataset.records[3].tokens);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      int64_t last_version = 0;
      int64_t last_size = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto epoch = manager->Acquire();
        if (epoch->version < last_version) violations.fetch_add(1);
        if (epoch->index->num_indexed() < last_size) violations.fetch_add(1);
        last_version = epoch->version;
        last_size = epoch->index->num_indexed();
        if (epoch->index->Search(query).empty()) violations.fetch_add(1);
      }
    });
  }
  for (int batch = 0; batch < 3; ++batch) {
    manager->InsertBatch(MakeInserts(Stack().prepared.builder.get(), 4,
                                     static_cast<int32_t>(kRecords + batch * 4)));
  }
  manager->Flush();
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(manager->Acquire()->index->num_indexed(), Stack().index->num_indexed() + 12);
}

// Regression for the write-path token bug: InsertBatch used to blindly
// overwrite the pending table, so of two racing token-carrying batches
// the later ack silently won — even if its table was older and SHORTER,
// un-interning ids the other batch's objects already used. The table
// must be validated as an append-only extension of the last acked one.
TEST(IndexManagerTest, RacingTokenTablesValidatedAppendOnly) {
  std::unique_ptr<serve::IndexManager> manager = MakeManager(nullptr);
  const std::vector<std::string> base = Stack().prepared.builder->TokenTable();

  std::vector<std::string> first = base;
  first.push_back("race_tok_a");
  ASSERT_TRUE(manager
                  ->InsertBatch(MakeInserts(Stack().prepared.builder.get(), 2,
                                            static_cast<int32_t>(kRecords)),
                                first)
                  .ok());

  // The losing racer arrives with the stale (pre-extension) table: with
  // the old overwrite semantics this would shrink the published table.
  const Status stale =
      manager->InsertBatch(MakeInserts(Stack().prepared.builder.get(), 2,
                                       static_cast<int32_t>(kRecords) + 2),
                           base);
  ASSERT_FALSE(stale.ok());
  EXPECT_TRUE(IsInvalidArgument(stale)) << stale.ToString();
  EXPECT_NE(stale.message().find("shrank"), std::string::npos) << stale.ToString();

  // A rewrite of an existing id is just as invalid as a shrink.
  std::vector<std::string> rewritten = first;
  rewritten[0] = "hijacked_id_0";
  const Status hijack = manager->InsertBatch(
      MakeInserts(Stack().prepared.builder.get(), 1, static_cast<int32_t>(kRecords) + 4),
      rewritten);
  ASSERT_FALSE(hijack.ok());
  EXPECT_TRUE(IsInvalidArgument(hijack)) << hijack.ToString();

  // A genuine extension still lands, and the failed batches left nothing.
  std::vector<std::string> second = first;
  second.push_back("race_tok_b");
  ASSERT_TRUE(manager
                  ->InsertBatch(MakeInserts(Stack().prepared.builder.get(), 2,
                                            static_cast<int32_t>(kRecords) + 2),
                                second)
                  .ok());
  manager->Flush();
  const auto epoch = manager->Acquire();
  EXPECT_EQ(epoch->tokens, second);
  EXPECT_EQ(epoch->index->num_indexed(), Stack().index->num_indexed() + 4);

  // Concurrent racers whose tables are each valid extensions of what
  // they raced against: at least one must win, the table never shrinks,
  // and the final table is always a prefix-extension of `second`. Runs
  // under the tsan preset.
  std::vector<std::string> third = second;
  third.push_back("race_tok_c");
  std::vector<std::string> fourth = third;
  fourth.push_back("race_tok_d");
  std::atomic<int> accepted{0};
  std::thread racer_a([&] {
    if (manager
            ->InsertBatch(MakeInserts(Stack().prepared.builder.get(), 1,
                                      static_cast<int32_t>(kRecords) + 4),
                          third)
            .ok()) {
      accepted.fetch_add(1);
    }
  });
  std::thread racer_b([&] {
    if (manager
            ->InsertBatch(MakeInserts(Stack().prepared.builder.get(), 1,
                                      static_cast<int32_t>(kRecords) + 5),
                          fourth)
            .ok()) {
      accepted.fetch_add(1);
    }
  });
  racer_a.join();
  racer_b.join();
  manager->Flush();
  EXPECT_GE(accepted.load(), 1);
  const auto final_epoch = manager->Acquire();
  ASSERT_GE(final_epoch->tokens.size(), third.size());
  for (size_t i = 0; i < second.size(); ++i) {
    EXPECT_EQ(final_epoch->tokens[i], second[i]);
  }
}

TEST(IndexManagerTest, DeleteHidesHitsAndUpdateReplaces) {
  std::unique_ptr<serve::IndexManager> manager = MakeManager(nullptr);
  const Record& record = Stack().dataset.records[5];
  const Object self_query = Stack().prepared.builder->Build(-1, record.tokens);

  auto hit_indexes = [&](const std::shared_ptr<const serve::IndexEpoch>& epoch) {
    std::set<int32_t> indexes;
    for (const SearchHit& hit : epoch->index->Search(self_query)) {
      indexes.insert(hit.object_index);
    }
    return indexes;
  };
  ASSERT_TRUE(hit_indexes(manager->Acquire()).count(5));

  ASSERT_TRUE(manager->DeleteObjects({5}).ok());
  manager->Flush();
  const auto after_delete = manager->Acquire();
  EXPECT_FALSE(hit_indexes(after_delete).count(5));
  EXPECT_TRUE(after_delete->index->deleted(5));
  EXPECT_EQ(after_delete->index->num_live(), Stack().index->num_indexed() - 1);
  // Deleting again is an ack'd no-op, not an error.
  ASSERT_TRUE(manager->DeleteObjects({5}).ok());
  manager->Flush();
  EXPECT_EQ(manager->Acquire()->index->num_live(), Stack().index->num_indexed() - 1);

  // Update: object 6 moves to a fresh index in one published epoch.
  const Object replacement = Stack().prepared.builder->Build(
      6, Stack().dataset.records[6].tokens);
  ASSERT_TRUE(manager->UpdateObject(6, replacement).ok());
  manager->Flush();
  const auto after_update = manager->Acquire();
  EXPECT_TRUE(after_update->index->deleted(6));
  const int32_t new_slot = static_cast<int32_t>(after_update->index->num_indexed()) - 1;
  EXPECT_FALSE(after_update->index->deleted(new_slot));
  const Object probe = Stack().prepared.builder->Build(
      -1, Stack().dataset.records[6].tokens);
  std::set<int32_t> indexes;
  for (const SearchHit& hit : after_update->index->Search(probe)) {
    indexes.insert(hit.object_index);
  }
  EXPECT_FALSE(indexes.count(6));
  EXPECT_TRUE(indexes.count(new_slot));

  // Bounds are validated before anything is acked.
  const Status oob = manager->DeleteObjects({static_cast<int32_t>(1 << 20)});
  ASSERT_FALSE(oob.ok());
  EXPECT_TRUE(IsInvalidArgument(oob)) << oob.ToString();
}

TEST(IndexManagerTest, SaveSnapshotAndLoadFrom) {
  const std::string path = testing::TempDir() + "/serve_test_manager.snap";
  std::unique_ptr<serve::IndexManager> manager = MakeManager(nullptr);
  manager->InsertBatch(MakeInserts(Stack().prepared.builder.get(), 3,
                                   static_cast<int32_t>(kRecords)),
                       Stack().prepared.builder->TokenTable());
  manager->Flush();
  ASSERT_TRUE(manager->SaveSnapshot(path).ok());

  auto restored = serve::IndexManager::LoadFrom(path, nullptr);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->version(), 1);  // a loaded snapshot starts a new lineage
  EXPECT_EQ((*restored)->Acquire()->index->num_indexed(),
            Stack().index->num_indexed() + 3);
  std::remove(path.c_str());
}

// --------------------------------------------------- SearchService

TEST(SearchServiceTest, ThresholdAndTopKBasics) {
  ThreadPool pool(2);
  MetricsRegistry metrics;
  std::unique_ptr<serve::IndexManager> manager = MakeManager(&pool);
  serve::SearchService service(manager.get(), &pool, {}, &metrics);

  serve::QueryRequest request;
  request.query = Stack().prepared.objects[5];  // an indexed object verbatim
  serve::QueryResponse response = service.Search(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.epoch_version, 1);
  ASSERT_FALSE(response.hits.empty());
  bool found_self = false;
  for (const SearchHit& hit : response.hits) found_self |= hit.object_index == 5;
  EXPECT_TRUE(found_self);
  EXPECT_GT(response.stats.candidates, 0);

  request.top_k = 2;
  response = service.Search(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_LE(response.hits.size(), 2u);
  for (size_t i = 1; i < response.hits.size(); ++i) {
    EXPECT_GE(response.hits[i - 1].similarity, response.hits[i].similarity);
  }
  EXPECT_EQ(metrics.counter("service.queries")->value(), 2);
  EXPECT_EQ(metrics.histogram("service.latency_seconds")->count(), 2);
  EXPECT_EQ(service.in_flight(), 0);
}

TEST(SearchServiceTest, PreCancelledAndTinyDeadline) {
  ThreadPool pool(2);
  MetricsRegistry metrics;
  std::unique_ptr<serve::IndexManager> manager = MakeManager(&pool);
  serve::SearchService service(manager.get(), &pool, {}, &metrics);

  CancelToken token;
  token.Cancel();
  serve::QueryRequest request;
  request.query = Stack().prepared.objects[0];
  request.cancel_token = &token;
  serve::QueryResponse response = service.Search(request);
  EXPECT_TRUE(IsCancelled(response.status)) << response.status.ToString();
  EXPECT_EQ(metrics.counter("service.cancelled")->value(), 1);

  request.cancel_token = nullptr;
  request.deadline_seconds = 1e-12;  // expired before the first poll
  response = service.Search(request);
  EXPECT_TRUE(IsDeadlineExceeded(response.status)) << response.status.ToString();
  EXPECT_EQ(metrics.counter("service.deadline_exceeded")->value(), 1);
}

TEST(SearchServiceTest, AdmissionCapShedsDeterministically) {
  ThreadPool pool(2);  // exactly one background lane
  MetricsRegistry metrics;
  std::unique_ptr<serve::IndexManager> manager = MakeManager(&pool);
  serve::SearchServiceOptions options;
  options.max_in_flight = 1;
  serve::SearchService service(manager.get(), &pool, options, &metrics);

  // Occupy the worker lane so the admitted query below cannot start, then
  // fill the single admission slot; the synchronous Search must shed.
  std::promise<void> blocker_running, release_blocker;
  pool.Schedule([&] {
    blocker_running.set_value();
    release_blocker.get_future().wait();
  });
  blocker_running.get_future().wait();

  std::promise<serve::QueryResponse> async_done;
  serve::QueryRequest request;
  request.query = Stack().prepared.objects[5];
  service.Submit(request, [&](serve::QueryResponse r) { async_done.set_value(std::move(r)); });
  EXPECT_EQ(service.in_flight(), 1);

  serve::QueryResponse shed = service.Search(request);
  EXPECT_TRUE(IsResourceExhausted(shed.status)) << shed.status.ToString();
  EXPECT_EQ(shed.epoch_version, 0);  // shed before touching the index
  EXPECT_TRUE(shed.hits.empty());
  EXPECT_EQ(metrics.counter("service.shed")->value(), 1);

  release_blocker.set_value();
  const serve::QueryResponse admitted = async_done.get_future().get();
  EXPECT_TRUE(admitted.status.ok()) << admitted.status.ToString();
  EXPECT_FALSE(admitted.hits.empty());
}

TEST(SearchServiceTest, SubmitRunsOnPoolAndDestructorDrains) {
  ThreadPool pool(2);
  std::unique_ptr<serve::IndexManager> manager = MakeManager(&pool);
  constexpr int kQueries = 8;
  std::atomic<int> completed{0};
  std::atomic<int> failed{0};
  {
    serve::SearchService service(manager.get(), &pool);
    for (int q = 0; q < kQueries; ++q) {
      serve::QueryRequest request;
      request.query = Stack().prepared.objects[q];
      service.Submit(std::move(request), [&](serve::QueryResponse response) {
        if (!response.status.ok()) failed.fetch_add(1);
        completed.fetch_add(1);
      });
    }
  }  // ~SearchService is the drain barrier: every done callback has run
  EXPECT_EQ(completed.load(), kQueries);
  EXPECT_EQ(failed.load(), 0);
}

// A pool of 1 spawns no workers, so a Schedule()d query would sit in a
// queue nothing drains and the destructor would hang on the drain wait.
// Submit must detect the missing background lane and run inline instead.
TEST(SearchServiceTest, SubmitOnSingleLanePoolRunsInline) {
  ThreadPool pool(1);
  std::unique_ptr<serve::IndexManager> manager = MakeManager(&pool);
  bool called = false;
  {
    serve::SearchService service(manager.get(), &pool);
    serve::QueryRequest request;
    request.query = Stack().prepared.objects[5];
    service.Submit(std::move(request), [&](serve::QueryResponse response) {
      EXPECT_TRUE(response.status.ok()) << response.status.ToString();
      EXPECT_FALSE(response.hits.empty());
      called = true;
    });
    EXPECT_TRUE(called);  // ran inline on the calling thread
  }  // ~SearchService must not deadlock on the drain wait
  EXPECT_TRUE(called);
}

// Regression for the drain-hang bug: a done callback that throws used to
// skip the async_outstanding_ decrement, so ~SearchService waited
// forever. The bookkeeping is now scope-guarded; the exception is caught,
// counted, and destruction completes (this test finishing IS the assert).
TEST(SearchServiceTest, ThrowingDoneCallbackDoesNotHangDestructor) {
  ThreadPool pool(2);
  MetricsRegistry metrics;
  std::unique_ptr<serve::IndexManager> manager = MakeManager(&pool);
  std::atomic<int> clean_callbacks{0};
  {
    serve::SearchService service(manager.get(), &pool, {}, &metrics);
    serve::QueryRequest request;
    request.query = Stack().prepared.objects[5];
    service.Submit(request, [](serve::QueryResponse) {
      throw std::runtime_error("callback contract violation");
    });
    // A well-behaved query after the thrower: the admission slot the
    // thrower held must have been released.
    service.Submit(request,
                   [&](serve::QueryResponse) { clean_callbacks.fetch_add(1); });
  }  // must not deadlock
  EXPECT_EQ(clean_callbacks.load(), 1);
  EXPECT_EQ(metrics.counter("service.callback_exceptions")->value(), 1);

  // The inline (single-lane) path swallows the throw the same way rather
  // than propagating it out of Submit.
  ThreadPool single(1);
  std::unique_ptr<serve::IndexManager> inline_manager = MakeManager(&single);
  {
    serve::SearchService service(inline_manager.get(), &single, {}, &metrics);
    serve::QueryRequest request;
    request.query = Stack().prepared.objects[5];
    EXPECT_NO_THROW(service.Submit(request, [](serve::QueryResponse) {
      throw std::runtime_error("inline violation");
    }));
    EXPECT_EQ(service.in_flight(), 0);
  }
  EXPECT_EQ(metrics.counter("service.callback_exceptions")->value(), 2);
}

// Regression for the min_similarity sentinel bug: the service used to
// treat only values > 0 as "caller set it", so an explicit floor of 0.0
// silently became tau instead of reaching the index's validation. The
// unset sentinel is now negative, mirroring deadline_seconds.
TEST(SearchServiceTest, ExplicitZeroMinSimilarityReachesTheIndex) {
  ThreadPool pool(2);
  std::unique_ptr<serve::IndexManager> manager = MakeManager(&pool);
  serve::SearchService service(manager.get(), &pool);

  serve::QueryRequest request;
  request.query = Stack().prepared.objects[5];
  request.top_k = 2;

  // Default (-1): index tau applies, the query succeeds.
  serve::QueryResponse response = service.Search(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_FALSE(response.hits.empty());

  // Explicit 0.0: below tau (0.6), the index must reject it — not run
  // a silently-tau'd query that looks like 0.0 worked.
  request.min_similarity = 0.0;
  response = service.Search(request);
  ASSERT_FALSE(response.status.ok());
  EXPECT_TRUE(IsInvalidArgument(response.status)) << response.status.ToString();

  // Explicit floors at and above tau behave as before.
  request.min_similarity = 0.6;
  response = service.Search(request);
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  request.min_similarity = 0.9;
  response = service.Search(request);
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  for (const SearchHit& hit : response.hits) {
    EXPECT_GE(hit.similarity + 1e-9, 0.9);
  }
}

// The acceptance bar for the serving PR: eight clients with deadlines and
// admission control armed (but sized to never trip) return exactly the
// serial answers. Runs under the tsan preset.
TEST(SearchServiceTest, EightClientsIdenticalToSerial) {
  ThreadPool pool(2);
  std::unique_ptr<serve::IndexManager> manager = MakeManager(&pool);
  serve::SearchServiceOptions options;
  options.max_in_flight = 64;              // armed, never reached
  options.default_deadline_seconds = 3600; // armed, never trips
  serve::SearchService service(manager.get(), &pool, options);

  const std::vector<Object> queries = MakeQueries(Stack().prepared.builder.get(), 32);
  std::vector<serve::QueryRequest> requests(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    requests[q].query = queries[q];
    requests[q].top_k = q % 2 == 0 ? 3 : 0;
  }
  std::vector<std::vector<SearchHit>> serial(requests.size());
  for (size_t q = 0; q < requests.size(); ++q) {
    const serve::QueryResponse response = service.Search(requests[q]);
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    serial[q] = response.hits;
  }

  constexpr int kClients = 8;
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t q = c; q < requests.size(); q += 2) {  // overlapping slices
        const serve::QueryResponse response = service.Search(requests[q]);
        if (!response.status.ok()) errors.fetch_add(1);
        if (response.hits != serial[q]) mismatches.fetch_add(1);
        if (response.epoch_version != 1) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SearchServiceTest, SearchBatchPreservesRequestOrder) {
  ThreadPool pool(2);
  std::unique_ptr<serve::IndexManager> manager = MakeManager(&pool);
  serve::SearchService service(manager.get(), &pool);

  std::vector<serve::QueryRequest> requests(6);
  for (size_t q = 0; q < requests.size(); ++q) {
    requests[q].query = Stack().prepared.objects[q];
    requests[q].top_k = 1;
  }
  const std::vector<serve::QueryResponse> responses = service.SearchBatch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (size_t q = 0; q < responses.size(); ++q) {
    ASSERT_TRUE(responses[q].status.ok()) << responses[q].status.ToString();
    ASSERT_EQ(responses[q].hits.size(), 1u);
    // Each indexed object's own nearest neighbor is itself.
    EXPECT_EQ(responses[q].hits[0].object_index, static_cast<int32_t>(q));
  }
}

}  // namespace
}  // namespace kjoin
