// Threading-model tests: the shared worker pool, determinism of the
// parallel join pipeline across thread counts, and the int32_t object-id
// guard at the join entry points.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/kjoin.h"
#include "core/prefix.h"
#include "data/benchmark_suite.h"
#include "data/generator.h"
#include "hierarchy/hierarchy_generator.h"

namespace kjoin {
namespace {

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  const int shards = pool.ParallelFor(kN, 4, [&](int, int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  EXPECT_GE(shards, 1);
  EXPECT_LE(shards, 4);
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForNeverSchedulesEmptyShards) {
  // Fewer items than shards: the pool must clamp, not run idle tasks
  // (the pre-pool verifier spawned and joined empty threads here).
  ThreadPool pool(8);
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> ranges;
  const int shards = pool.ParallelFor(3, 8, [&](int, int64_t begin, int64_t end) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(begin, end);
  });
  EXPECT_EQ(shards, 3);
  ASSERT_EQ(ranges.size(), 3u);
  int64_t covered = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_LT(begin, end) << "empty shard scheduled";
    covered += end - begin;
  }
  EXPECT_EQ(covered, 3);
}

TEST(ThreadPoolTest, ParallelForOnEmptyRangeRunsNothing) {
  ThreadPool pool(4);
  bool called = false;
  EXPECT_EQ(pool.ParallelFor(0, 4, [&](int, int64_t, int64_t) { called = true; }), 0);
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleLanePoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  pool.ParallelFor(10, 1, [&](int, int64_t begin, int64_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    calls += static_cast<int>(end - begin);
  });
  EXPECT_EQ(calls, 10);
}

TEST(ThreadPoolTest, ScheduledWorkDrainsBeforeDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 64; ++i) {
      pool.Schedule([&done] { done.fetch_add(1); });
    }
  }  // ~ThreadPool joins workers after the queue is drained
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, StatsCountExecutedTasks) {
  ThreadPool pool(2);
  const ThreadPoolStats before = pool.stats();
  const int shards = pool.ParallelFor(100, 2, [](int, int64_t, int64_t) {});
  const ThreadPoolStats after = pool.stats();
  EXPECT_EQ(after.tasks_executed - before.tasks_executed, shards);
  EXPECT_GE(after.busy_seconds, before.busy_seconds);
}

// ------------------------------------------- pipeline determinism

struct TestData {
  Hierarchy hierarchy;
  std::vector<Object> objects;
};

TestData MakeTestData(int num_records) {
  HierarchyGenParams tree_params;
  tree_params.num_nodes = 300;
  tree_params.height = 5;
  tree_params.avg_fanout = 4.0;
  tree_params.max_fanout = 10;
  tree_params.seed = 7;
  Hierarchy tree = GenerateHierarchy(tree_params);

  RecordGenParams data_params;
  data_params.num_records = num_records;
  data_params.avg_elements = 5;
  data_params.min_elements = 2;
  data_params.max_elements = 9;
  data_params.min_depth = 2;
  data_params.max_depth = 5;
  data_params.duplicate_fraction = 0.5;
  data_params.unmatched_token_rate = 0.1;
  data_params.seed = 31;
  const Dataset dataset = DatasetGenerator(tree, data_params).Generate("threading");
  std::vector<Object> objects = BuildObjects(tree, dataset, /*multi_mapping=*/false).objects;
  return {std::move(tree), std::move(objects)};
}

// The counters that must not depend on the thread count (timings and the
// scheduling-shape fields legitimately do).
void ExpectSameCounters(const JoinStats& a, const JoinStats& b, int threads) {
  EXPECT_EQ(a.total_signatures, b.total_signatures) << threads << " threads";
  EXPECT_EQ(a.prefix_signatures, b.prefix_signatures) << threads << " threads";
  EXPECT_EQ(a.candidates, b.candidates) << threads << " threads";
  EXPECT_EQ(a.results, b.results) << threads << " threads";
  EXPECT_EQ(a.verify.pairs_verified, b.verify.pairs_verified) << threads << " threads";
  EXPECT_EQ(a.verify.pruned_by_count, b.verify.pruned_by_count) << threads << " threads";
  EXPECT_EQ(a.verify.pruned_by_weighted_count, b.verify.pruned_by_weighted_count)
      << threads << " threads";
  EXPECT_EQ(a.verify.accepted_by_lower_bound, b.verify.accepted_by_lower_bound)
      << threads << " threads";
  EXPECT_EQ(a.verify.rejected_by_upper_bound, b.verify.rejected_by_upper_bound)
      << threads << " threads";
  EXPECT_EQ(a.verify.hungarian_runs, b.verify.hungarian_runs) << threads << " threads";
  EXPECT_EQ(a.verify.results, b.verify.results) << threads << " threads";
}

TEST(ThreadingDeterminismTest, SelfJoinIsIdenticalAcrossThreadCounts) {
  const TestData data = MakeTestData(220);
  KJoinOptions options;
  options.delta = 0.7;
  options.tau = 0.6;
  options.num_threads = 1;
  const JoinResult baseline = KJoin(data.hierarchy, options).SelfJoin(data.objects);
  ASSERT_FALSE(baseline.pairs.empty()) << "degenerate dataset: nothing to compare";

  for (int threads : {2, 8}) {
    options.num_threads = threads;
    const KJoin join(data.hierarchy, options);
    const JoinResult result = join.SelfJoin(data.objects);
    // Exact vector equality: same pairs in the same order.
    EXPECT_EQ(result.pairs, baseline.pairs) << threads << " threads";
    ExpectSameCounters(result.stats, baseline.stats, threads);
    EXPECT_EQ(result.stats.threads, threads);
    // A second run on the same KJoin reuses the pool and must agree too.
    EXPECT_EQ(join.SelfJoin(data.objects).pairs, baseline.pairs);
  }
}

TEST(ThreadingDeterminismTest, RsJoinIsIdenticalAcrossThreadCounts) {
  const TestData data = MakeTestData(200);
  std::vector<Object> left, right;
  for (size_t i = 0; i < data.objects.size(); ++i) {
    (i % 2 == 0 ? left : right).push_back(data.objects[i]);
  }
  KJoinOptions options;
  options.delta = 0.7;
  options.tau = 0.6;
  options.num_threads = 1;
  const JoinResult baseline = KJoin(data.hierarchy, options).Join(left, right);
  ASSERT_FALSE(baseline.pairs.empty()) << "degenerate dataset: nothing to compare";

  for (int threads : {2, 8}) {
    options.num_threads = threads;
    const JoinResult result = KJoin(data.hierarchy, options).Join(left, right);
    EXPECT_EQ(result.pairs, baseline.pairs) << threads << " threads";
    ExpectSameCounters(result.stats, baseline.stats, threads);
  }
}

// Acceptance bar for the similarity cache: a cached NodeSim must be the
// bit-identical double a recompute would produce, so join output cannot
// depend on whether the cache is on, how big it is, or how many threads
// race on it. Cache hit/miss counters DO vary with scheduling, so they
// are deliberately absent from ExpectSameCounters.
TEST(ThreadingDeterminismTest, SimCacheOnOffIsByteIdenticalAcrossThreadCounts) {
  const TestData data = MakeTestData(220);
  KJoinOptions options;
  options.delta = 0.7;
  options.tau = 0.6;
  options.num_threads = 1;
  options.sim_cache = false;
  const JoinResult baseline = KJoin(data.hierarchy, options).SelfJoin(data.objects);
  ASSERT_FALSE(baseline.pairs.empty()) << "degenerate dataset: nothing to compare";
  EXPECT_EQ(baseline.stats.sim_cache_hits, 0);
  EXPECT_EQ(baseline.stats.sim_cache_misses, 0);

  for (bool cache : {false, true}) {
    for (int threads : {1, 2, 8}) {
      options.sim_cache = cache;
      options.sim_cache_capacity = int64_t{1} << 20;
      options.num_threads = threads;
      const JoinResult result = KJoin(data.hierarchy, options).SelfJoin(data.objects);
      EXPECT_EQ(result.pairs, baseline.pairs)
          << "cache=" << cache << " threads=" << threads;
      ExpectSameCounters(result.stats, baseline.stats, threads);
      if (cache) {
        EXPECT_GT(result.stats.sim_cache_hits + result.stats.sim_cache_misses, 0)
            << "cache enabled but saw no traffic at " << threads << " threads";
      }
    }
  }

  // A deliberately starved cache evicts constantly; results still match.
  options.sim_cache = true;
  options.sim_cache_capacity = 1;
  options.num_threads = 8;
  EXPECT_EQ(KJoin(data.hierarchy, options).SelfJoin(data.objects).pairs, baseline.pairs);
}

TEST(ThreadingDeterminismTest, ShardCandidateCountsSumToTotal) {
  const TestData data = MakeTestData(150);
  KJoinOptions options;
  options.delta = 0.7;
  options.tau = 0.6;
  options.num_threads = 4;
  const JoinResult result = KJoin(data.hierarchy, options).SelfJoin(data.objects);
  int64_t sharded = 0;
  for (int64_t c : result.stats.shard_candidates) sharded += c;
  EXPECT_EQ(sharded, result.stats.candidates);
  EXPECT_GE(result.stats.prepare_tasks, 2);  // two passes, >= 1 shard each
  EXPECT_GE(result.stats.filter_tasks, 1);
  EXPECT_GE(result.stats.verify_tasks, result.stats.candidates > 0 ? 1 : 0);
  EXPECT_GE(result.stats.pool_busy_seconds, 0.0);
}

TEST(ThreadingDeterminismTest, SmallJoinCollapsesToSingleShardPerPhase) {
  // Min-work-per-shard dispatch: a join far below every per-shard
  // threshold must not fan out at all, whatever the pool width — paying
  // lane wake-up and merge overhead on a sub-millisecond join is how two
  // threads end up slower than one. Results stay identical to a
  // single-thread run.
  const TestData data = MakeTestData(220);
  KJoinOptions options;
  options.delta = 0.7;
  options.tau = 0.6;
  options.num_threads = 1;
  const JoinResult baseline = KJoin(data.hierarchy, options).SelfJoin(data.objects);
  ASSERT_FALSE(baseline.pairs.empty()) << "degenerate dataset: nothing to compare";
  ASSERT_GT(baseline.stats.candidates, 0);

  options.num_threads = 8;
  const JoinResult result = KJoin(data.hierarchy, options).SelfJoin(data.objects);
  // 220 objects and a few thousand candidate pairs sit far below the
  // prepare/probe/verify thresholds: one inline shard per phase, no pool
  // dispatch (prepare runs its two passes as one shard each).
  EXPECT_EQ(result.stats.prepare_tasks, 2);
  EXPECT_EQ(result.stats.filter_tasks, 1);
  EXPECT_EQ(result.stats.verify_tasks, 1);
  EXPECT_EQ(result.pairs, baseline.pairs);
  ExpectSameCounters(result.stats, baseline.stats, 8);
}

// --------------------------------------------- object-id space guard

TEST(ObjectIdSpaceTest, BoundaryIsInt32Max) {
  EXPECT_TRUE(FitsObjectIdSpace(0));
  EXPECT_TRUE(FitsObjectIdSpace(kMaxJoinCollectionSize));
  EXPECT_FALSE(FitsObjectIdSpace(kMaxJoinCollectionSize + 1));
  EXPECT_FALSE(FitsObjectIdSpace(uint64_t{1} << 32));
  static_assert(kMaxJoinCollectionSize == 2147483647u,
                "candidate pairs store int32_t object ids");
}

// --------------------------------- GlobalSignatureOrder finalize guard

using GlobalOrderDeathTest = testing::Test;

TEST(GlobalOrderDeathTest, DocumentFrequencyBeforeFinalizeDies) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  GlobalSignatureOrder order;
  std::vector<Signature> object = {{5, 0, 1.0f}};
  order.CountObject(object);
  EXPECT_DEATH(order.DocumentFrequency(5), "Finalize");
}

}  // namespace
}  // namespace kjoin
