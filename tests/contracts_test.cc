// API-contract tests: invalid configurations and misuse must fail fast
// through the CHECK macros (the library's no-exceptions error policy),
// and documented preconditions must hold.

#include <gtest/gtest.h>

#include "core/kjoin.h"
#include "core/kjoin_index.h"
#include "core/topk_join.h"
#include "hierarchy/hierarchy_builder.h"
#include "text/entity_matcher.h"
#include "text/qgram_index.h"

namespace kjoin {
namespace {

class ContractsTest : public testing::Test {
 protected:
  ContractsTest() : tree_(MakeFigure1Hierarchy()) {}
  Hierarchy tree_;
};

TEST_F(ContractsTest, KJoinRejectsBadThresholds) {
  KJoinOptions bad_delta;
  bad_delta.delta = 0.0;
  EXPECT_DEATH(KJoin(tree_, bad_delta), "delta");

  KJoinOptions bad_tau;
  bad_tau.tau = 1.5;
  EXPECT_DEATH(KJoin(tree_, bad_tau), "tau");

  KJoinOptions bad_threads;
  bad_threads.num_threads = 0;
  EXPECT_DEATH(KJoin(tree_, bad_threads), "num_threads");
}

TEST_F(ContractsTest, WeightedPrefixRequiresDeepScheme) {
  KJoinOptions options;
  options.scheme = SignatureScheme::kNode;
  options.weighted_prefix = true;
  EXPECT_DEATH(KJoin(tree_, options), "weighted prefix");
}

TEST_F(ContractsTest, SearchTopKRejectsSubThresholdFloor) {
  EntityMatcher matcher(tree_);
  ObjectBuilder builder(matcher, false);
  std::vector<Object> objects = {builder.Build(0, {"KFC"})};
  KJoinOptions options;
  options.tau = 0.8;
  const KJoinIndex index(tree_, options, objects);
  EXPECT_DEATH(index.SearchTopK(objects[0], 5, 0.5), "tau");
}

TEST_F(ContractsTest, TopKJoinValidatesSchedule) {
  TopKOptions bad_floor;
  bad_floor.tau_floor = 0.0;
  EXPECT_DEATH(TopKJoin(tree_, bad_floor), "tau_floor");

  TopKOptions bad_step;
  bad_step.tau_step = 0.0;
  EXPECT_DEATH(TopKJoin(tree_, bad_step), "tau_step");

  TopKOptions good;
  const TopKJoin topk(tree_, good);
  EXPECT_DEATH(topk.SelfJoinTopK({}, 0), "k");
}

TEST_F(ContractsTest, SynonymRegistrationFrozenAfterLookup) {
  EntityMatcher matcher(tree_);
  // Approximate lookup builds the q-gram index lazily; synonyms must be
  // registered before that.
  matcher.MatchAll("pizzahat");
  EXPECT_DEATH(matcher.AddSynonym("alias", "KFC"), "synonyms");
}

TEST_F(ContractsTest, HierarchyRejectsMalformedParents) {
  // Parent after child.
  EXPECT_DEATH(Hierarchy({kInvalidNode, 2, 1}, {"r", "a", "b"}), "parents must precede");
  // Node 0 must be the root.
  EXPECT_DEATH(Hierarchy({0, 0}, {"r", "a"}), "root");
}

TEST_F(ContractsTest, AncestorAtDepthBounds) {
  const NodeId kfc = *tree_.FindByLabel("KFC");
  EXPECT_DEATH(tree_.AncestorAtDepth(kfc, -1), "");
  EXPECT_DEATH(tree_.AncestorAtDepth(kfc, tree_.depth(kfc) + 1), "");
}

TEST_F(ContractsTest, QGramIndexRejectsNegativeBudget) {
  const QGramIndex index({"abc"}, 2);
  EXPECT_DEATH(index.Candidates("abc", -1), "");
}

TEST_F(ContractsTest, NodesWithLabelHandlesUnknownAndDuplicates) {
  EXPECT_TRUE(tree_.NodesWithLabel("NoSuchLabel").empty());
  EXPECT_FALSE(tree_.FindByLabel("NoSuchLabel").has_value());
  // Duplicate labels: FindByLabel refuses to pick.
  HierarchyBuilder builder;
  builder.AddChild(builder.root(), "Dup");
  builder.AddChild(builder.root(), "Dup");
  const Hierarchy dup = std::move(builder).Build();
  EXPECT_EQ(dup.NodesWithLabel("Dup").size(), 2u);
  EXPECT_FALSE(dup.FindByLabel("Dup").has_value());
}

}  // namespace
}  // namespace kjoin
