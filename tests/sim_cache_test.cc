// Tests for the node-pair similarity cache (src/core/sim_cache.h): key
// canonicalization, hit/miss accounting, bit-exactness of cached values
// vs recomputation, eviction under tiny capacity, thread-local L1
// ownership switching between caches, and a multi-threaded hammer (the
// tsan/asan target).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/element_similarity.h"
#include "core/sim_cache.h"
#include "hierarchy/hierarchy_generator.h"
#include "hierarchy/lca.h"

namespace kjoin {
namespace {

Hierarchy MakeTree(int num_nodes, uint64_t seed) {
  HierarchyGenParams params;
  params.num_nodes = num_nodes;
  params.height = 6;
  params.avg_fanout = 5.0;
  params.max_fanout = 12;
  params.seed = seed;
  return GenerateHierarchy(params);
}

// A deterministic stand-in for NodeSim so tests can verify the cache
// returns exactly what the compute function would.
double Oracle(NodeId x, NodeId y, double salt) {
  const uint64_t key = SimCache::Key(x, y);
  return static_cast<double>(key % 9973) / 9973.0 + salt;
}

TEST(SimCacheTest, KeyIsSymmetricAndCanonical) {
  EXPECT_EQ(SimCache::Key(3, 7), SimCache::Key(7, 3));
  EXPECT_EQ(SimCache::Key(0, 0), 0u);
  EXPECT_NE(SimCache::Key(1, 2), SimCache::Key(2, 3));
  // min in the high half, max in the low half.
  EXPECT_EQ(SimCache::Key(5, 9), (uint64_t{5} << 32) | 9);
}

TEST(SimCacheTest, TokenKeySpaceIsDisjointFromNodeKeySpace) {
  EXPECT_EQ(SimCache::TokenKey(3, 7), SimCache::TokenKey(7, 3));
  EXPECT_EQ(SimCache::TokenKey(5, 9), (uint64_t{1} << 63) | (uint64_t{5} << 32) | 9);
  // The same id pair under the two key spaces must never collide, and no
  // token key may equal the vacant-slot sentinel (all-ones).
  EXPECT_NE(SimCache::TokenKey(5, 9), SimCache::Key(5, 9));
  constexpr int32_t kMaxId = 0x7fffffff;
  EXPECT_NE(SimCache::TokenKey(kMaxId, kMaxId), ~uint64_t{0});
  EXPECT_NE(SimCache::Key(kMaxId, kMaxId), ~uint64_t{0});
}

TEST(SimCacheTest, NodeAndTokenEntriesForSameIdsCoexist) {
  SimCache cache(1 << 12);
  const double node_value =
      cache.GetOrComputeKey(SimCache::Key(4, 11), [] { return 0.25; });
  const double token_value =
      cache.GetOrComputeKey(SimCache::TokenKey(4, 11), [] { return 0.75; });
  EXPECT_EQ(node_value, 0.25);
  EXPECT_EQ(token_value, 0.75);
  // Both entries hit independently — neither evicted or aliased the other.
  EXPECT_EQ(cache.GetOrComputeKey(SimCache::Key(4, 11), [] { return -1.0; }), 0.25);
  EXPECT_EQ(cache.GetOrComputeKey(SimCache::TokenKey(4, 11), [] { return -1.0; }), 0.75);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().hits(), 2);
}

TEST(SimCacheTest, RepeatLookupHitsWithoutRecompute) {
  SimCache cache(1 << 12);
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return 0.25;
  };
  EXPECT_EQ(cache.GetOrCompute(3, 7, compute), 0.25);
  EXPECT_EQ(cache.GetOrCompute(7, 3, compute), 0.25);  // symmetric key
  EXPECT_EQ(cache.GetOrCompute(3, 7, compute), 0.25);
  EXPECT_EQ(computes, 1);
  const SimCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits(), 2);
  EXPECT_EQ(stats.lookups(), 3);
  EXPECT_GT(stats.HitRate(), 0.5);
}

TEST(SimCacheTest, CachedNodeSimBitIdenticalToUncached) {
  const Hierarchy tree = MakeTree(800, 3);
  const LcaIndex lca(tree);
  SimCache cache(1 << 14);
  const ElementSimilarity cached(lca, ElementMetric::kKJoin, &cache);
  const ElementSimilarity plain(lca, ElementMetric::kKJoin);
  Rng rng(17);
  for (int trial = 0; trial < 20000; ++trial) {
    const NodeId x = static_cast<NodeId>(rng.NextUint64(tree.num_nodes()));
    const NodeId y = static_cast<NodeId>(rng.NextUint64(tree.num_nodes()));
    // Exact double equality: a hit must be indistinguishable from a
    // recompute, or joins would not be byte-identical with the cache on.
    ASSERT_EQ(cached.NodeSim(x, y), plain.NodeSim(x, y)) << x << " vs " << y;
  }
  EXPECT_GT(cache.stats().hits(), 0);
}

TEST(SimCacheTest, TinyCapacityEvictsButStaysCorrect) {
  SimCache cache(1);  // rounds up to the minimum stripe layout
  EXPECT_GE(cache.capacity(), 1);
  Rng rng(23);
  for (int trial = 0; trial < 100000; ++trial) {
    const NodeId x = static_cast<NodeId>(rng.NextUint64(5000));
    const NodeId y = static_cast<NodeId>(rng.NextUint64(5000));
    const double expected = Oracle(x, y, 0.0);
    ASSERT_EQ(cache.GetOrCompute(x, y, [&] { return expected; }), expected);
  }
  const SimCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups(), 100000);
  EXPECT_GT(stats.misses, 0);  // far more keys than slots: must evict
}

TEST(SimCacheTest, OwnershipSwitchBetweenCachesNeverCrossContaminates) {
  // Alternating between two caches on one thread invalidates the
  // thread-local L1 each time; values from one cache must never leak into
  // lookups on the other (they memoize different functions here).
  SimCache a(1 << 10);
  SimCache b(1 << 10);
  for (int i = 0; i < 2000; ++i) {
    const NodeId x = static_cast<NodeId>(i % 37);
    const NodeId y = static_cast<NodeId>(i % 53);
    const double expect_a = Oracle(x, y, 1.0);
    const double expect_b = Oracle(x, y, 2.0);
    ASSERT_EQ(a.GetOrCompute(x, y, [&] { return expect_a; }), expect_a);
    ASSERT_EQ(b.GetOrCompute(x, y, [&] { return expect_b; }), expect_b);
  }
}

TEST(SimCacheTest, RecreatedCacheDoesNotReviveStaleEntries) {
  // A fresh cache may be allocated at a destroyed cache's address; the
  // process-unique id must keep old thread-local L1 entries dead.
  for (int round = 0; round < 8; ++round) {
    auto cache = std::make_unique<SimCache>(1 << 10);
    const double salt = static_cast<double>(round);
    for (int i = 0; i < 256; ++i) {
      const NodeId x = static_cast<NodeId>(i);
      const NodeId y = static_cast<NodeId>(i + 1);
      const double expected = Oracle(x, y, salt);
      ASSERT_EQ(cache->GetOrCompute(x, y, [&] { return expected; }), expected)
          << "round " << round << " entry " << i;
    }
  }
}

TEST(SimCacheTest, MultiThreadedHammerIsExact) {
  const Hierarchy tree = MakeTree(500, 9);
  const LcaIndex lca(tree);
  // Small capacity: forces eviction and stripe contention under load.
  SimCache cache(1 << 10);
  const ElementSimilarity cached(lca, ElementMetric::kKJoin, &cache);
  const ElementSimilarity plain(lca, ElementMetric::kKJoin);

  ThreadPool pool(8);
  std::atomic<int64_t> mismatches{0};
  pool.ParallelFor(8, 8, [&](int shard, int64_t, int64_t) {
    Rng rng(100 + static_cast<uint64_t>(shard));
    for (int trial = 0; trial < 20000; ++trial) {
      const NodeId x = static_cast<NodeId>(rng.NextUint64(tree.num_nodes()));
      const NodeId y = static_cast<NodeId>(rng.NextUint64(tree.num_nodes()));
      if (cached.NodeSim(x, y) != plain.NodeSim(x, y)) mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
  const SimCacheStats stats = cache.stats();
  EXPECT_GT(stats.lookups(), 0);
  EXPECT_EQ(stats.lookups(), stats.hits() + stats.misses);
}

}  // namespace
}  // namespace kjoin
