// Tests for src/data: dataset generation, ground truth, quality metrics,
// the benchmark suite presets.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/benchmark_suite.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "data/quality.h"
#include "hierarchy/hierarchy_generator.h"

namespace kjoin {
namespace {

TEST(QualityTest, PerfectMatch) {
  const std::vector<std::pair<int32_t, int32_t>> pairs = {{0, 1}, {2, 3}};
  const QualityReport report = EvaluateQuality(pairs, pairs);
  EXPECT_DOUBLE_EQ(report.precision, 1.0);
  EXPECT_DOUBLE_EQ(report.recall, 1.0);
  EXPECT_DOUBLE_EQ(report.f_measure, 1.0);
}

TEST(QualityTest, PartialOverlap) {
  const QualityReport report =
      EvaluateQuality({{0, 1}, {2, 3}, {4, 5}, {6, 7}}, {{0, 1}, {2, 3}, {8, 9}});
  EXPECT_EQ(report.true_positives, 2);
  EXPECT_DOUBLE_EQ(report.precision, 0.5);
  EXPECT_DOUBLE_EQ(report.recall, 2.0 / 3.0);
  EXPECT_NEAR(report.f_measure, 2 * 0.5 * (2.0 / 3.0) / (0.5 + 2.0 / 3.0), 1e-12);
}

TEST(QualityTest, OrderAndDuplicatesIgnored) {
  const QualityReport report = EvaluateQuality({{1, 0}, {0, 1}, {1, 0}}, {{0, 1}});
  EXPECT_EQ(report.reported, 1);
  EXPECT_EQ(report.true_positives, 1);
}

TEST(QualityTest, EmptyInputs) {
  const QualityReport all_empty = EvaluateQuality({}, {});
  EXPECT_DOUBLE_EQ(all_empty.precision, 1.0);
  EXPECT_DOUBLE_EQ(all_empty.recall, 1.0);
  const QualityReport nothing_reported = EvaluateQuality({}, {{0, 1}});
  EXPECT_DOUBLE_EQ(nothing_reported.precision, 1.0);
  EXPECT_DOUBLE_EQ(nothing_reported.recall, 0.0);
  EXPECT_DOUBLE_EQ(nothing_reported.f_measure, 0.0);
}

TEST(QualityTest, SelfPairsIgnored) {
  const QualityReport report = EvaluateQuality({{3, 3}}, {{0, 1}});
  EXPECT_EQ(report.reported, 0);
}

TEST(GroundTruthTest, PairsFromClusters) {
  Dataset dataset;
  dataset.records = {{0, 0, {}}, {1, 0, {}}, {2, -1, {}}, {3, 1, {}}, {4, 0, {}}, {5, 1, {}}};
  const auto pairs = GroundTruthPairs(dataset);
  // Cluster 0 = {0,1,4} -> 3 pairs; cluster 1 = {3,5} -> 1 pair.
  EXPECT_EQ(pairs.size(), 4u);
  const std::set<std::pair<int32_t, int32_t>> set(pairs.begin(), pairs.end());
  EXPECT_TRUE(set.count({0, 1}));
  EXPECT_TRUE(set.count({0, 4}));
  EXPECT_TRUE(set.count({1, 4}));
  EXPECT_TRUE(set.count({3, 5}));
}

TEST(DatasetGeneratorTest, ProducesRequestedCount) {
  const Hierarchy tree = GenerateHierarchy({/*num_nodes=*/500, /*height=*/5,
                                            /*avg_fanout=*/4.0, /*max_fanout=*/15,
                                            /*seed=*/3});
  RecordGenParams params;
  params.num_records = 777;
  params.min_depth = 2;
  params.max_depth = 5;
  params.seed = 5;
  const Dataset dataset = DatasetGenerator(tree, params).Generate("test");
  EXPECT_EQ(dataset.records.size(), 777u);
  EXPECT_EQ(dataset.name, "test");
  for (size_t i = 0; i < dataset.records.size(); ++i) {
    EXPECT_EQ(dataset.records[i].id, static_cast<int32_t>(i));
    EXPECT_FALSE(dataset.records[i].tokens.empty());
  }
}

TEST(DatasetGeneratorTest, DeterministicPerSeed) {
  const Hierarchy tree = GenerateHierarchy({300, 5, 4.0, 12, 3});
  RecordGenParams params;
  params.num_records = 100;
  params.min_depth = 2;
  params.max_depth = 5;
  params.seed = 5;
  const Dataset a = DatasetGenerator(tree, params).Generate("a");
  const Dataset b = DatasetGenerator(tree, params).Generate("b");
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    ASSERT_EQ(a.records[i].tokens, b.records[i].tokens);
    ASSERT_EQ(a.records[i].cluster, b.records[i].cluster);
  }
}

TEST(DatasetGeneratorTest, HasDuplicateClusters) {
  const Hierarchy tree = GenerateHierarchy({300, 5, 4.0, 12, 3});
  RecordGenParams params;
  params.num_records = 500;
  params.min_depth = 2;
  params.max_depth = 5;
  params.duplicate_fraction = 0.4;
  const Dataset dataset = DatasetGenerator(tree, params).Generate("dups");
  const auto truth = GroundTruthPairs(dataset);
  EXPECT_GT(truth.size(), 20u);
  // Duplicates should not be identical too often (perturbation applied).
  int identical = 0;
  for (const auto& [a, b] : truth) {
    identical += (dataset.records[a].tokens == dataset.records[b].tokens);
  }
  EXPECT_LT(identical, static_cast<int>(truth.size()));
}

TEST(DatasetGeneratorTest, SynonymTableRefersToRealLabels) {
  const Hierarchy tree = GenerateHierarchy({300, 5, 4.0, 12, 3});
  RecordGenParams params;
  params.num_records = 50;
  params.min_depth = 2;
  params.max_depth = 5;
  params.synonym_vocabulary_fraction = 0.5;
  const Dataset dataset = DatasetGenerator(tree, params).Generate("syn");
  EXPECT_FALSE(dataset.synonyms.empty());
  for (const auto& [alias, label] : dataset.synonyms) {
    EXPECT_FALSE(tree.NodesWithLabel(label).empty()) << label;
    EXPECT_NE(alias, label);
  }
}

TEST(BenchmarkSuiteTest, PubShapeMatchesTable3) {
  const BenchmarkData data = MakePubBenchmark();
  EXPECT_EQ(data.dataset.records.size(), 1879u);  // Table 3
  EntityMatcher matcher(data.hierarchy);
  const DatasetStats stats = ComputeDatasetStats(data.dataset, matcher);
  EXPECT_NEAR(stats.avg_len, 6.0, 2.0);
  EXPECT_GT(stats.num_truth_pairs, 100);
}

TEST(BenchmarkSuiteTest, ResShapeMatchesTable3) {
  const BenchmarkData data = MakeResBenchmark();
  EXPECT_EQ(data.dataset.records.size(), 864u);  // Table 3
  EntityMatcher matcher(data.hierarchy);
  const DatasetStats stats = ComputeDatasetStats(data.dataset, matcher);
  EXPECT_NEAR(stats.avg_len, 4.0, 0.5);
}

TEST(BenchmarkSuiteTest, PoiShapeMatchesTable3) {
  const BenchmarkData data = MakePoiBenchmark(2000);
  EXPECT_EQ(data.dataset.records.size(), 2000u);
  EXPECT_EQ(data.hierarchy.num_nodes(), 4222);  // Table 2 hierarchy
  EntityMatcher matcher(data.hierarchy);
  const DatasetStats stats = ComputeDatasetStats(data.dataset, matcher);
  EXPECT_NEAR(stats.avg_len, 11.0, 2.0);   // Table 3: AvgLen 11
  EXPECT_NEAR(stats.avg_depth, 4.0, 0.7);  // Table 3: AvgDep 4
}

TEST(BenchmarkSuiteTest, TweetShapeMatchesTable3) {
  const BenchmarkData data = MakeTweetBenchmark(2000);
  EntityMatcher matcher(data.hierarchy);
  const DatasetStats stats = ComputeDatasetStats(data.dataset, matcher);
  EXPECT_NEAR(stats.avg_len, 8.0, 2.0);    // Table 3: AvgLen ~8
  EXPECT_NEAR(stats.avg_depth, 5.0, 0.7);  // Table 3: AvgDep 5
}

TEST(BenchmarkSuiteTest, BuildObjectsSingleVsPlus) {
  const BenchmarkData data = MakeResBenchmark();
  const PreparedObjects single = BuildObjects(data.hierarchy, data.dataset, false);
  const PreparedObjects plus = BuildObjects(data.hierarchy, data.dataset, true);
  ASSERT_EQ(single.objects.size(), plus.objects.size());
  // Plus mode must map at least as many elements (synonyms + typos).
  int64_t single_mapped = 0, plus_mapped = 0;
  for (size_t i = 0; i < single.objects.size(); ++i) {
    for (const Element& e : single.objects[i].elements) single_mapped += e.has_node();
    for (const Element& e : plus.objects[i].elements) plus_mapped += e.has_node();
  }
  EXPECT_GT(plus_mapped, single_mapped);
}

TEST(BenchmarkSuiteTest, DatasetStatsComputesLengths) {
  Dataset dataset;
  dataset.name = "mini";
  dataset.records = {{0, -1, {"a", "b"}}, {1, -1, {"c"}}, {2, -1, {"d", "e", "f"}}};
  const Hierarchy tree = GenerateHierarchy({100, 3, 4.0, 10, 1});
  EntityMatcher matcher(tree);
  const DatasetStats stats = ComputeDatasetStats(dataset, matcher);
  EXPECT_EQ(stats.size, 3);
  EXPECT_DOUBLE_EQ(stats.avg_len, 2.0);
  EXPECT_EQ(stats.max_len, 3);
  EXPECT_EQ(stats.min_len, 1);
}

}  // namespace
}  // namespace kjoin
