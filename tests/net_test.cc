// Network serving tier suite (docs/serving.md, "Network protocol"): the
// KJNP frame format (truncation at every byte boundary, single-bit-flip
// CRC rejection, oversized frames), the structured status detail shared
// by in-process and network callers, the loopback server/client round
// trip (results byte-identical to the in-process router), backpressure,
// slow-loris idle close, graceful drain (every request read before
// SIGTERM gets its response), client recovery after a server dies, and
// the connection-storm chaos case under injected accept/read/write
// faults. Runs under the asan and tsan presets (tests/CMakeLists.txt
// labels).

#include <gtest/gtest.h>

#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "data/benchmark_suite.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "serve/admission.h"
#include "serve/shard_router.h"
#include "serve/sharded_index_manager.h"
#include "serve/status_detail.h"

namespace kjoin {
namespace {

using net::FrameDecoder;
using net::KJoinClient;
using net::KJoinServer;
using net::NetRequest;
using net::NetResponse;
using net::RequestKind;
using net::ServerOptions;

// ------------------------------------------------ status detail (serve)

TEST(StatusDetailTest, FormatsAndParses) {
  EXPECT_EQ(serve::RetryAfterField(42), "retry_after_ms=42");
  const Status status =
      ResourceExhaustedError("query shed: in_flight=9 " + serve::RetryAfterField(17));
  const std::optional<int64_t> hint = serve::RetryAfterMs(status);
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(*hint, 17);
}

TEST(StatusDetailTest, AbsentAndMalformedAreNullopt) {
  EXPECT_FALSE(serve::RetryAfterMs(OkStatus()).has_value());
  EXPECT_FALSE(serve::RetryAfterMs(UnavailableError("busy, retry later")).has_value());
  EXPECT_FALSE(serve::RetryAfterMs(UnavailableError("retry_after_ms=")).has_value());
  EXPECT_FALSE(serve::RetryAfterMs(UnavailableError("retry_after_ms=soon")).has_value());
  // Overflow is treated as absent, not clamped.
  EXPECT_FALSE(
      serve::RetryAfterMs(UnavailableError("retry_after_ms=99999999999999999999"))
          .has_value());
}

TEST(StatusDetailTest, RetryableCodes) {
  EXPECT_TRUE(serve::IsRetryable(ResourceExhaustedError("shed")));
  EXPECT_TRUE(serve::IsRetryable(UnavailableError("read-only")));
  EXPECT_FALSE(serve::IsRetryable(DeadlineExceededError("late")));
  EXPECT_FALSE(serve::IsRetryable(InvalidArgumentError("bad")));
  EXPECT_FALSE(serve::IsRetryable(OkStatus()));
}

// The admission controller's shed statuses must round-trip through the
// shared parser — the regression the one-formatter refactor exists for.
TEST(StatusDetailTest, AdmissionShedStatusCarriesParseableHint) {
  serve::AdmissionOptions options;
  options.max_in_flight = 1;
  serve::AdmissionController admission(options, "test", nullptr);
  admission.SetQueueDelayEwmaForTest(0.25);
  for (const auto outcome : {serve::AdmissionController::Outcome::kShedCap,
                             serve::AdmissionController::Outcome::kShedDeadlineInfeasible}) {
    const Status status = admission.ShedStatus(outcome, /*deadline_seconds=*/0.1);
    EXPECT_TRUE(IsResourceExhausted(status));
    const std::optional<int64_t> hint = serve::RetryAfterMs(status);
    ASSERT_TRUE(hint.has_value()) << status.ToString();
    EXPECT_EQ(*hint, 250);
    EXPECT_TRUE(serve::IsRetryable(status));
  }
}

// ---------------------------------------------------- metrics (common)

TEST(MetricsJsonTest, EscapesNames) {
  EXPECT_EQ(JsonEscape("plain.name"), "plain.name");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string("nul\x01") + "x"), "nul\\u0001x");
  MetricsRegistry registry;
  registry.counter("weird\"name")->Increment(3);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"weird\\\"name\":3"), std::string::npos) << json;
}

TEST(MetricsJsonTest, PercentileOfSorted) {
  EXPECT_EQ(PercentileOfSorted({}, 0.5), 0.0);
  const std::vector<double> one = {7.0};
  EXPECT_EQ(PercentileOfSorted(one, 0.0), 7.0);
  EXPECT_EQ(PercentileOfSorted(one, 1.0), 7.0);
  std::vector<double> ten;
  for (int i = 1; i <= 10; ++i) ten.push_back(i);
  EXPECT_EQ(PercentileOfSorted(ten, 0.0), 1.0);
  EXPECT_EQ(PercentileOfSorted(ten, 1.0), 10.0);
  EXPECT_EQ(PercentileOfSorted(ten, 0.5), 6.0);  // nearest-rank, rounded
  // Out-of-range quantiles clamp instead of indexing out of bounds.
  EXPECT_EQ(PercentileOfSorted(ten, -1.0), 1.0);
  EXPECT_EQ(PercentileOfSorted(ten, 2.0), 10.0);
}

// -------------------------------------------------------- protocol unit

NetRequest SampleSearch() {
  NetRequest request;
  request.id = 0x1122334455667788ull;
  request.kind = RequestKind::kSearch;
  request.deadline_ms = 250;
  request.min_similarity = 0.75;
  request.query_tokens = {"coffee", "house", "berlin"};
  return request;
}

TEST(ProtocolTest, RequestRoundTripAllKinds) {
  std::vector<NetRequest> requests;
  requests.push_back(SampleSearch());
  {
    NetRequest r = SampleSearch();
    r.kind = RequestKind::kTopK;
    r.top_k = 5;
    requests.push_back(r);
  }
  {
    NetRequest r;
    r.id = 7;
    r.kind = RequestKind::kInsert;
    r.inserts = {{101, {"a", "b"}}, {102, {}}, {103, {"c"}}};
    requests.push_back(r);
  }
  {
    NetRequest r;
    r.id = 8;
    r.kind = RequestKind::kDelete;
    r.delete_indexes = {3, 1, 4, 1, 5};
    requests.push_back(r);
  }
  {
    NetRequest r;
    r.id = 9;
    r.kind = RequestKind::kHealth;
    requests.push_back(r);
  }
  {
    NetRequest r;
    r.id = 10;
    r.kind = RequestKind::kMetrics;
    requests.push_back(r);
  }
  for (const NetRequest& request : requests) {
    NetRequest decoded;
    ASSERT_TRUE(net::DecodeRequestPayload(net::EncodeRequestPayload(request), &decoded).ok());
    EXPECT_EQ(decoded.id, request.id);
    EXPECT_EQ(decoded.kind, request.kind);
    EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
    EXPECT_EQ(decoded.min_similarity, request.min_similarity);
    EXPECT_EQ(decoded.top_k, request.kind == RequestKind::kTopK ? request.top_k : 0);
    EXPECT_EQ(decoded.query_tokens, request.query_tokens);
    ASSERT_EQ(decoded.inserts.size(), request.inserts.size());
    for (size_t i = 0; i < request.inserts.size(); ++i) {
      EXPECT_EQ(decoded.inserts[i].external_id, request.inserts[i].external_id);
      EXPECT_EQ(decoded.inserts[i].tokens, request.inserts[i].tokens);
    }
    EXPECT_EQ(decoded.delete_indexes, request.delete_indexes);
  }
}

TEST(ProtocolTest, ResponseRoundTrip) {
  NetResponse response;
  response.id = 99;
  response.code = static_cast<uint32_t>(StatusCode::kResourceExhausted);
  response.retry_after_ms = 120;
  response.message = "shed";
  response.hits = {{4, 0.875}, {9, 0.5}};
  response.epoch_version = 12;
  response.objects_after_insert = 240;
  response.text = "state=SERVING";
  NetResponse decoded;
  ASSERT_TRUE(net::DecodeResponsePayload(net::EncodeResponsePayload(response), &decoded).ok());
  EXPECT_EQ(decoded.id, response.id);
  EXPECT_EQ(decoded.code, response.code);
  EXPECT_EQ(decoded.retry_after_ms, response.retry_after_ms);
  EXPECT_EQ(decoded.message, response.message);
  ASSERT_EQ(decoded.hits.size(), response.hits.size());
  for (size_t i = 0; i < response.hits.size(); ++i) {
    EXPECT_EQ(decoded.hits[i].object_index, response.hits[i].object_index);
    EXPECT_EQ(decoded.hits[i].similarity, response.hits[i].similarity);
  }
  EXPECT_EQ(decoded.epoch_version, response.epoch_version);
  EXPECT_EQ(decoded.objects_after_insert, response.objects_after_insert);
  EXPECT_EQ(decoded.text, response.text);
}

TEST(ProtocolTest, UnknownKindRejected) {
  NetRequest request = SampleSearch();
  std::string payload = net::EncodeRequestPayload(request);
  payload[8] = 99;  // the kind byte follows the u64 id
  NetRequest decoded;
  const Status status = net::DecodeRequestPayload(payload, &decoded);
  EXPECT_TRUE(IsInvalidArgument(status)) << status.ToString();
}

TEST(ProtocolTest, TruncationAtEveryByteBoundaryNeedsMoreNeverErrors) {
  const std::string frame = net::WrapFrame(net::EncodeRequestPayload(SampleSearch()));
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Append(frame.data(), cut);
    std::string payload;
    StatusOr<bool> got = decoder.Next(&payload);
    ASSERT_TRUE(got.ok()) << "cut at " << cut << ": " << got.status().ToString();
    ASSERT_FALSE(*got) << "cut at " << cut;
    // The rest arrives: exactly one frame completes.
    decoder.Append(frame.data() + cut, frame.size() - cut);
    got = decoder.Next(&payload);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(*got);
    NetRequest decoded;
    ASSERT_TRUE(net::DecodeRequestPayload(payload, &decoded).ok());
    EXPECT_EQ(decoded.id, SampleSearch().id);
  }
}

TEST(ProtocolTest, SingleBitFlipNeverYieldsAFrame) {
  const std::string frame = net::WrapFrame(net::EncodeRequestPayload(SampleSearch()));
  for (size_t at = 0; at < frame.size(); ++at) {
    std::string corrupt = frame;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x10);
    FrameDecoder decoder;
    decoder.Append(corrupt.data(), corrupt.size());
    std::string payload;
    StatusOr<bool> got = decoder.Next(&payload);
    // A flipped size field may leave the decoder waiting for bytes that
    // never come; every other flip must poison. What can never happen
    // is a successfully decoded frame.
    if (got.ok()) {
      EXPECT_FALSE(*got) << "flip at " << at << " produced a frame";
    } else {
      EXPECT_TRUE(IsDataLoss(got.status())) << got.status().ToString();
    }
  }
}

TEST(ProtocolTest, OversizedFrameRejectedBeforeBuffering) {
  FrameDecoder decoder(/*max_frame_bytes=*/1024);
  std::string payload(2048, 'x');
  const std::string frame = net::WrapFrame(payload);
  decoder.Append(frame.data(), net::kFrameHeaderBytes);  // header alone suffices
  std::string out;
  StatusOr<bool> got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(IsDataLoss(got.status()));
  EXPECT_TRUE(decoder.poisoned());
}

TEST(ProtocolTest, PipelinedFramesDecodeInOrder) {
  NetRequest first = SampleSearch();
  NetRequest second = SampleSearch();
  second.id = 2;
  std::string stream = net::WrapFrame(net::EncodeRequestPayload(first)) +
                       net::WrapFrame(net::EncodeRequestPayload(second));
  FrameDecoder decoder;
  // Worst case: one byte at a time.
  std::vector<uint64_t> ids;
  for (char c : stream) {
    decoder.Append(&c, 1);
    while (true) {
      std::string payload;
      StatusOr<bool> got = decoder.Next(&payload);
      ASSERT_TRUE(got.ok());
      if (!*got) break;
      NetRequest decoded;
      ASSERT_TRUE(net::DecodeRequestPayload(payload, &decoded).ok());
      ids.push_back(decoded.id);
    }
  }
  EXPECT_EQ(ids, (std::vector<uint64_t>{SampleSearch().id, 2}));
}

TEST(ProtocolTest, ResponseFromStatusLiftsRetryHint) {
  const NetResponse shed = net::ResponseFromStatus(
      5, ResourceExhaustedError("shed; " + serve::RetryAfterField(90)));
  EXPECT_EQ(shed.id, 5u);
  EXPECT_EQ(shed.code, static_cast<uint32_t>(StatusCode::kResourceExhausted));
  EXPECT_EQ(shed.retry_after_ms, 90);
  const NetResponse ok = net::ResponseFromStatus(6, OkStatus());
  EXPECT_EQ(ok.code, 0u);
  EXPECT_EQ(ok.retry_after_ms, 0);
}

// ------------------------------------------------- loopback integration

constexpr int64_t kRecords = 120;

struct NetStack {
  Dataset dataset;
  std::shared_ptr<const Hierarchy> hierarchy;
  PreparedObjects prepared;
};

KJoinOptions Options() {
  KJoinOptions options;
  options.delta = 0.8;
  options.tau = 0.6;
  options.plus_mode = true;
  return options;
}

NetStack& Stack() {
  static NetStack* stack = [] {
    auto* s = new NetStack();
    BenchmarkData data = MakePoiBenchmark(kRecords, /*seed=*/41);
    s->dataset = std::move(data.dataset);
    s->hierarchy = std::make_shared<const Hierarchy>(std::move(data.hierarchy));
    s->prepared = BuildObjects(*s->hierarchy, s->dataset,
                               /*multi_mapping=*/true, /*min_phi=*/0.8);
    return s;
  }();
  return *stack;
}

std::vector<std::string> QueryTokens(int q) {
  const Dataset& dataset = Stack().dataset;
  std::vector<std::string> tokens = dataset.records[(q * 97) % dataset.records.size()].tokens;
  if (tokens.size() > 1 && q % 2 == 1) tokens.pop_back();
  return tokens;
}

// Everything one serving test needs, torn down in order.
struct ServerStack {
  std::unique_ptr<MetricsRegistry> metrics;
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<serve::ShardedIndexManager> manager;
  std::vector<std::unique_ptr<serve::LocalShard>> backends;
  std::unique_ptr<serve::ShardRouter> router;
  std::unique_ptr<KJoinServer> server;

  ~ServerStack() {
    if (server != nullptr) server->Shutdown();
    server.reset();
    router.reset();  // router before manager: dispatcher probes shards
  }
};

std::unique_ptr<ServerStack> MakeServer(ServerOptions options = {},
                                        serve::ShardRouterOptions router_options = {}) {
  auto stack = std::make_unique<ServerStack>();
  stack->metrics = std::make_unique<MetricsRegistry>();
  stack->pool = std::make_unique<ThreadPool>(4);
  NetStack& data = Stack();
  stack->manager = std::make_unique<serve::ShardedIndexManager>(
      data.hierarchy, Options(), data.prepared.objects, data.prepared.builder->TokenTable(),
      data.dataset.synonyms, /*num_shards=*/2, stack->pool.get(), stack->metrics.get());
  std::vector<serve::ShardBackend*> shards;
  for (int s = 0; s < 2; ++s) {
    stack->backends.push_back(
        std::make_unique<serve::LocalShard>(stack->manager.get(), s));
    shards.push_back(stack->backends.back().get());
  }
  stack->router = std::make_unique<serve::ShardRouter>(std::move(shards), stack->pool.get(),
                                                       router_options, stack->metrics.get());
  stack->server = std::make_unique<KJoinServer>(stack->router.get(), stack->manager.get(),
                                                data.prepared.builder.get(),
                                                stack->metrics.get(), options);
  KJOIN_CHECK(stack->server->Start().ok());
  return stack;
}

// A raw loopback socket for protocol-abuse tests the client refuses to
// produce.
int RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  KJOIN_CHECK(fd >= 0);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  KJOIN_CHECK(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) == 0);
  return fd;
}

bool WaitForPeerClose(int fd, double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_seconds));
  char buf[256];
  while (std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n == 0) return true;
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

TEST(NetServerTest, SearchMatchesInProcessRouterExactly) {
  auto stack = MakeServer();
  KJoinClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack->server->port()).ok());
  for (int q = 0; q < 24; ++q) {
    const std::vector<std::string> tokens = QueryTokens(q);
    // In-process reference through the same router and builder.
    serve::QueryRequest reference;
    reference.query = Stack().prepared.builder->Build(0, tokens);
    if (q % 3 == 0) reference.top_k = 5;
    const serve::QueryResponse expected = stack->router->Search(reference);

    StatusOr<NetResponse> got = q % 3 == 0 ? client.TopK(tokens, 5) : client.Search(tokens);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->code, static_cast<uint32_t>(expected.status.code()));
    ASSERT_EQ(got->hits.size(), expected.hits.size()) << "query " << q;
    for (size_t i = 0; i < expected.hits.size(); ++i) {
      EXPECT_EQ(got->hits[i].object_index, expected.hits[i].object_index);
      // Bitwise: the wire format is a bit-exact f64, and the server ran
      // the identical code path.
      EXPECT_EQ(got->hits[i].similarity, expected.hits[i].similarity);
    }
  }
}

TEST(NetServerTest, HealthAndMetrics) {
  auto stack = MakeServer();
  KJoinClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack->server->port()).ok());
  StatusOr<NetResponse> health = client.Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->code, 0u);
  EXPECT_NE(health->text.find("state=SERVING"), std::string::npos) << health->text;
  EXPECT_NE(health->text.find("objects=" + std::to_string(kRecords)), std::string::npos)
      << health->text;
  StatusOr<NetResponse> metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->code, 0u);
  EXPECT_NE(metrics->text.find("\"net.requests\":"), std::string::npos) << metrics->text;
}

TEST(NetServerTest, InsertDeleteVisibleThroughSearch) {
  auto stack = MakeServer();
  KJoinClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack->server->port()).ok());
  // A record with a distinctive duplicate-free token multiset: itself as
  // the query matches with similarity 1.0.
  const std::vector<std::string> tokens = Stack().dataset.records[3].tokens;
  const int64_t before = stack->manager->num_objects();
  StatusOr<NetResponse> inserted = client.Insert({{9001, tokens}});
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  ASSERT_EQ(inserted->code, 0u) << inserted->message;
  EXPECT_EQ(inserted->objects_after_insert, before + 1);

  // Epoch publication is asynchronous: poll until the new object is
  // searchable.
  const int32_t global_index = static_cast<int32_t>(before);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool visible = false;
  while (!visible && std::chrono::steady_clock::now() < deadline) {
    StatusOr<NetResponse> found = client.Search(tokens);
    ASSERT_TRUE(found.ok());
    for (const SearchHit& hit : found->hits) {
      if (hit.object_index == global_index) visible = true;
    }
    if (!visible) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(visible) << "inserted object never became searchable";

  StatusOr<NetResponse> deleted = client.Delete({global_index});
  ASSERT_TRUE(deleted.ok());
  ASSERT_EQ(deleted->code, 0u) << deleted->message;
  bool gone = false;
  while (!gone && std::chrono::steady_clock::now() < deadline) {
    StatusOr<NetResponse> found = client.Search(tokens);
    ASSERT_TRUE(found.ok());
    gone = true;
    for (const SearchHit& hit : found->hits) {
      if (hit.object_index == global_index) gone = false;
    }
    if (!gone) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(gone) << "deleted object still searchable";
}

TEST(NetServerTest, ShedResponseCarriesRetryAfter) {
  serve::ShardRouterOptions router_options;
  router_options.admission.max_in_flight = 4;
  auto stack = MakeServer({}, router_options);
  // Plant a queue-delay estimate far above the deadline: admission
  // sheds the query as deadline-infeasible before it queues.
  stack->router->SetQueueDelayEwmaForTest(5.0);
  KJoinClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack->server->port()).ok());
  StatusOr<NetResponse> shed = client.Search(QueryTokens(0), -1.0, /*deadline_ms=*/1);
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->code, static_cast<uint32_t>(StatusCode::kResourceExhausted))
      << shed->message;
  EXPECT_GE(shed->retry_after_ms, 1) << shed->message;
}

TEST(NetServerTest, MalformedPayloadGetsInvalidArgumentResponse) {
  auto stack = MakeServer();
  KJoinClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack->server->port()).ok());
  // A forged kind the decoder rejects — but the frame itself is valid,
  // so the server answers instead of closing.
  NetRequest bogus;
  bogus.kind = static_cast<RequestKind>(99);
  StatusOr<NetResponse> got = client.Call(std::move(bogus));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->code, static_cast<uint32_t>(StatusCode::kInvalidArgument));
  // The connection survived: the next call works.
  StatusOr<NetResponse> health = client.Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->code, 0u);
}

TEST(NetServerTest, CorruptStreamClosesConnection) {
  auto stack = MakeServer();
  const int fd = RawConnect(stack->server->port());
  const std::string garbage = "this is definitely not a KJNP frame header....";
  ASSERT_GT(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL), 0);
  EXPECT_TRUE(WaitForPeerClose(fd, 5.0)) << "server kept a poisoned stream open";
  ::close(fd);
  EXPECT_GE(stack->metrics->counter("net.protocol_errors")->value(), 1);
}

TEST(NetServerTest, SlowLorisIdleTimeoutClosesPartialFrame) {
  ServerOptions options;
  options.idle_timeout_seconds = 0.2;
  auto stack = MakeServer(options);
  const int fd = RawConnect(stack->server->port());
  // A valid frame prefix, then silence.
  const std::string frame = net::WrapFrame(net::EncodeRequestPayload(SampleSearch()));
  ASSERT_GT(::send(fd, frame.data(), 10, MSG_NOSIGNAL), 0);
  EXPECT_TRUE(WaitForPeerClose(fd, 5.0)) << "idle sweep never closed the stalled stream";
  ::close(fd);
  EXPECT_GE(stack->metrics->counter("net.idle_closed")->value(), 1);
}

TEST(NetServerTest, BackpressurePausesReadsWithoutLosingResponses) {
  ServerOptions options;
  options.write_buffer_cap_bytes = 2048;  // tiny: stall quickly
  auto stack = MakeServer(options);
  const int fd = RawConnect(stack->server->port());
  // Pipeline many searches without reading a single response: the
  // server's write buffer fills and it stops reading; once we drain,
  // every request must still get its response, in order.
  constexpr int kPipelined = 200;
  std::string burst;
  for (int q = 0; q < kPipelined; ++q) {
    NetRequest request;
    request.id = static_cast<uint64_t>(q) + 1;
    request.kind = RequestKind::kSearch;
    request.query_tokens = QueryTokens(q);
    burst += net::WrapFrame(net::EncodeRequestPayload(request));
  }
  std::thread sender([fd, &burst]() {
    size_t sent = 0;
    while (sent < burst.size()) {
      const ssize_t n =
          ::send(fd, burst.data() + sent, burst.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (errno == EINTR) continue;
        // The kernel buffer filled because the server stopped reading —
        // keep pushing; the reader below drains the responses.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      sent += static_cast<size_t>(n);
    }
  });
  FrameDecoder decoder;
  std::vector<uint64_t> ids;
  char buf[16 << 10];
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ids.size() < kPipelined && std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "server closed mid-burst";
    decoder.Append(buf, static_cast<size_t>(n));
    while (true) {
      std::string payload;
      StatusOr<bool> got = decoder.Next(&payload);
      ASSERT_TRUE(got.ok());
      if (!*got) break;
      NetResponse response;
      ASSERT_TRUE(net::DecodeResponsePayload(payload, &response).ok());
      ids.push_back(response.id);
    }
  }
  sender.join();
  ::close(fd);
  ASSERT_EQ(ids.size(), kPipelined);
  for (int q = 0; q < kPipelined; ++q) {
    EXPECT_EQ(ids[static_cast<size_t>(q)], static_cast<uint64_t>(q) + 1);
  }
}

TEST(NetServerTest, GracefulDrainAnswersEverythingRead) {
  auto stack = MakeServer();
  KJoinClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack->server->port()).ok());
  constexpr int kInFlight = 32;
  std::vector<std::future<StatusOr<NetResponse>>> futures;
  for (int q = 0; q < kInFlight; ++q) {
    auto promise = std::make_shared<std::promise<StatusOr<NetResponse>>>();
    futures.push_back(promise->get_future());
    NetRequest request;
    request.kind = RequestKind::kSearch;
    request.query_tokens = QueryTokens(q);
    client.CallAsync(std::move(request), [promise](StatusOr<NetResponse> result) {
      promise->set_value(std::move(result));
    });
  }
  // Wait until the server has read and dispatched every request, so the
  // drain below finds them all in flight.
  Counter* requests = stack->metrics->counter("net.requests");
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (requests->value() < kInFlight && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(requests->value(), kInFlight);
  // SIGTERM semantics: async trigger, then drain. Every dispatched
  // request must get its real response — zero dropped acked requests.
  stack->server->RequestShutdown();
  stack->server->Wait();
  for (auto& future : futures) {
    StatusOr<NetResponse> result = future.get();
    ASSERT_TRUE(result.ok()) << "acked request dropped: " << result.status().ToString();
  }
  EXPECT_EQ(stack->server->active_connections(), 0);
}

TEST(NetServerTest, ClientRecoversAfterServerDies) {
  auto first = MakeServer();
  KJoinClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", first->server->port()).ok());
  StatusOr<NetResponse> ok = client.Health();
  ASSERT_TRUE(ok.ok());
  first->server->Shutdown();
  // The dead connection surfaces as transport kUnavailable (possibly
  // after one in-flight call drains cleanly).
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool saw_failure = false;
  while (!saw_failure && std::chrono::steady_clock::now() < deadline) {
    StatusOr<NetResponse> dead = client.Health();
    if (!dead.ok()) {
      EXPECT_TRUE(IsUnavailable(dead.status())) << dead.status().ToString();
      saw_failure = true;
    }
  }
  EXPECT_TRUE(saw_failure);
  first.reset();
  // A fresh server (new port): the same client reconnects and works.
  auto second = MakeServer();
  client.Disconnect();
  ASSERT_TRUE(client.Connect("127.0.0.1", second->server->port()).ok());
  StatusOr<NetResponse> revived = client.Health();
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ(revived->code, 0u);
}

// --------------------------------------------------------------- chaos

int CountOpenFds() {
  int count = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

// Connection storm under injected accept/read/write faults: the event
// loops must neither wedge nor leak fds, and a clean client must work
// once the faults stop.
TEST(NetChaosTest, ConnectionStormWithInjectedFaultsNeverWedges) {
  if (!fault::Enabled()) {
    GTEST_SKIP() << "fault points compiled out (release preset)";
  }
  const int fds_before = CountOpenFds();
  {
    ServerOptions options;
    options.num_loops = 2;
    auto stack = MakeServer(options);
    fault::Scope scope;
    fault::SetSeed(2026);
    fault::Enable("net/accept", 0.2);
    fault::Enable("net/read", 0.05);
    fault::Enable("net/write", 0.05);
    constexpr int kThreads = 8;
    constexpr int kConnectionsPerThread = 6;
    std::atomic<int> successes{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t, port = stack->server->port(), &successes]() {
        for (int c = 0; c < kConnectionsPerThread; ++c) {
          KJoinClient client;
          if (!client.Connect("127.0.0.1", port).ok()) continue;
          for (int q = 0; q < 4; ++q) {
            StatusOr<NetResponse> got =
                q % 2 == 0 ? client.Search(QueryTokens(t * 31 + c * 7 + q))
                           : client.Health();
            // Injected faults surface as transport errors; anything the
            // server actually answered must be well-formed.
            if (got.ok()) {
              successes.fetch_add(1);
            } else if (!IsUnavailable(got.status()) && !IsDataLoss(got.status())) {
              ADD_FAILURE() << "unexpected failure: " << got.status().ToString();
            }
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    fault::DisarmAll();
    // The storm is over and the faults are gone: a clean client on a
    // clean connection must succeed — the loops never wedged.
    KJoinClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", stack->server->port()).ok());
    StatusOr<NetResponse> health = client.Health();
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    EXPECT_EQ(health->code, 0u);
    EXPECT_GT(successes.load(), 0);
    stack->server->Shutdown();
    EXPECT_EQ(stack->server->active_connections(), 0);
  }
  // Everything torn down: no fd may have leaked. (Exact equality: the
  // stack owned every socket, epoll, and eventfd it created.)
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  int fds_after = CountOpenFds();
  while (fds_after > fds_before && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fds_after = CountOpenFds();
  }
  EXPECT_EQ(fds_after, fds_before);
}

}  // namespace
}  // namespace kjoin
