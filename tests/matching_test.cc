// Tests for src/matching: Hungarian matcher, greedy lower bounds,
// per-vertex upper bound.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "matching/bigraph.h"
#include "matching/bounds.h"
#include "matching/greedy_matching.h"
#include "matching/hungarian.h"

namespace kjoin {
namespace {

Bigraph RandomBigraph(Rng& rng, int32_t left, int32_t right, double edge_probability) {
  Bigraph graph(left, right);
  for (int32_t l = 0; l < left; ++l) {
    for (int32_t r = 0; r < right; ++r) {
      if (rng.NextBool(edge_probability)) {
        graph.AddEdge(l, r, 0.05 + 0.95 * rng.NextDouble());
      }
    }
  }
  return graph;
}

TEST(HungarianTest, EmptyGraph) {
  Bigraph graph(0, 0);
  EXPECT_DOUBLE_EQ(MaxWeightMatching(graph), 0.0);
  Bigraph no_edges(3, 4);
  EXPECT_DOUBLE_EQ(MaxWeightMatching(no_edges), 0.0);
}

TEST(HungarianTest, SingleEdge) {
  Bigraph graph(1, 1);
  graph.AddEdge(0, 0, 0.7);
  std::vector<std::pair<int32_t, int32_t>> matched;
  EXPECT_DOUBLE_EQ(MaxWeightMatching(graph, &matched), 0.7);
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_EQ(matched[0], std::make_pair(0, 0));
}

TEST(HungarianTest, PrefersHeavierCombination) {
  // Greedy would take the 0.9 edge and get 0.9 + 0.1; optimal crosses.
  Bigraph graph(2, 2);
  graph.AddEdge(0, 0, 0.9);
  graph.AddEdge(0, 1, 0.8);
  graph.AddEdge(1, 0, 0.8);
  graph.AddEdge(1, 1, 0.1);
  EXPECT_NEAR(MaxWeightMatching(graph), 1.6, 1e-12);
}

TEST(HungarianTest, PaperFigure2Bigraph) {
  // S1 = {BurgerKing, MountainView}, S4 = {PizzaHut, KFC, CA}, δ = 0.5:
  // edges BK-PH 0.5, BK-KFC 0.75, MV-CA 0.6. Fuzzy overlap = 27/20.
  Bigraph graph(2, 3);
  graph.AddEdge(0, 0, 0.5);
  graph.AddEdge(0, 1, 0.75);
  graph.AddEdge(1, 2, 0.6);
  EXPECT_NEAR(MaxWeightMatching(graph), 27.0 / 20.0, 1e-12);
}

TEST(HungarianTest, RectangularMoreLeftThanRight) {
  Bigraph graph(3, 1);
  graph.AddEdge(0, 0, 0.3);
  graph.AddEdge(1, 0, 0.9);
  graph.AddEdge(2, 0, 0.5);
  EXPECT_NEAR(MaxWeightMatching(graph), 0.9, 1e-12);
}

TEST(HungarianTest, LeavesVerticesUnmatchedWhenBeneficial) {
  // Matching nothing on a vertex is fine; zero-weight forced matches must
  // not reduce the total.
  Bigraph graph(2, 2);
  graph.AddEdge(0, 0, 1.0);
  // Left 1 and right 1 have no edges at all.
  std::vector<std::pair<int32_t, int32_t>> matched;
  EXPECT_NEAR(MaxWeightMatching(graph, &matched), 1.0, 1e-12);
  EXPECT_EQ(matched.size(), 1u);
}

TEST(HungarianTest, ParallelEdgesKeepBest) {
  Bigraph graph(1, 1);
  graph.AddEdge(0, 0, 0.4);
  graph.AddEdge(0, 0, 0.9);
  EXPECT_NEAR(MaxWeightMatching(graph), 0.9, 1e-12);
}

TEST(HungarianTest, MatchesBruteForceOnRandomGraphs) {
  Rng rng(31337);
  for (int trial = 0; trial < 300; ++trial) {
    const int32_t left = 1 + static_cast<int32_t>(rng.NextUint64(6));
    const int32_t right = 1 + static_cast<int32_t>(rng.NextUint64(6));
    const Bigraph graph = RandomBigraph(rng, left, right, 0.5);
    const double exact = MaxWeightMatchingBruteForce(graph);
    ASSERT_NEAR(MaxWeightMatching(graph), exact, 1e-9)
        << "trial " << trial << " " << left << "x" << right;
  }
}

TEST(HungarianTest, MatchedPairsAreConsistent) {
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    const Bigraph graph = RandomBigraph(rng, 5, 7, 0.4);
    std::vector<std::pair<int32_t, int32_t>> matched;
    const double total = MaxWeightMatching(graph, &matched);
    // Pairs are vertex-disjoint and their weights sum to the total.
    std::vector<char> left_used(5, 0), right_used(7, 0);
    double sum = 0.0;
    for (const auto& [l, r] : matched) {
      ASSERT_FALSE(left_used[l]);
      ASSERT_FALSE(right_used[r]);
      left_used[l] = 1;
      right_used[r] = 1;
      double best = 0.0;
      for (int32_t e : graph.left_edges(l)) {
        if (graph.edges()[e].right == r) best = std::max(best, graph.edges()[e].weight);
      }
      ASSERT_GT(best, 0.0);
      sum += best;
    }
    ASSERT_NEAR(sum, total, 1e-9);
  }
}

TEST(HungarianTest, SparseDenseAndBruteForceAgreeOnRandomGraphs) {
  // Matcher equivalence property test: random bigraphs across the whole
  // sparsity range, with skewed shapes (n ≫ m and m ≫ n), injected
  // parallel edges, and zero-weight edges. The sparse scratch solver must
  // agree with the dense oracle on every instance, and with exhaustive
  // search wherever that is feasible.
  Rng rng(90210);
  HungarianScratch scratch;
  int brute_checked = 0;
  for (int trial = 0; trial < 1200; ++trial) {
    int32_t left = 1 + static_cast<int32_t>(rng.NextUint64(8));
    int32_t right = 1 + static_cast<int32_t>(rng.NextUint64(8));
    if (trial % 4 == 1) left += 10;   // n ≫ m
    if (trial % 4 == 2) right += 10;  // m ≫ n
    const double edge_probability = 0.05 + 0.95 * rng.NextDouble();
    Bigraph graph(left, right);
    for (int32_t l = 0; l < left; ++l) {
      for (int32_t r = 0; r < right; ++r) {
        if (!rng.NextBool(edge_probability)) continue;
        const double weight = rng.NextBool(0.1) ? 0.0 : 0.05 + 0.95 * rng.NextDouble();
        graph.AddEdge(l, r, weight);
        // Occasional parallel edge with a different weight; only the best
        // copy may count.
        if (rng.NextBool(0.15)) graph.AddEdge(l, r, 0.05 + 0.95 * rng.NextDouble());
      }
    }
    const double dense = MaxWeightMatchingDense(graph);
    const double sparse = MaxWeightMatching(graph, &scratch);
    ASSERT_NEAR(sparse, dense, 1e-9)
        << "trial " << trial << " " << left << "x" << right << " p=" << edge_probability;
    if (left <= 7 && right <= 7 && graph.edges().size() <= 24) {
      ASSERT_NEAR(sparse, MaxWeightMatchingBruteForce(graph), 1e-9)
          << "trial " << trial << " " << left << "x" << right;
      ++brute_checked;
    }
  }
  EXPECT_GT(brute_checked, 100);  // the gate must not silently skip brute force
}

TEST(HungarianTest, ScratchReachesAllocationFreeSteadyState) {
  // Acceptance check for the no-per-augmentation-allocation criterion:
  // after one warm-up solve at the largest shape, further solves of any
  // smaller instance grow no scratch buffer — augmentation, rewind and
  // extraction all run inside retained capacity.
  Rng rng(4242);
  HungarianScratch scratch;
  Bigraph warm(12, 12);
  for (int32_t l = 0; l < 12; ++l) {
    for (int32_t r = 0; r < 12; ++r) warm.AddEdge(l, r, 0.05 + 0.95 * rng.NextDouble());
  }
  MaxWeightMatching(warm, &scratch);
  const int64_t growths_after_warmup = scratch.capacity_growths();
  EXPECT_GT(growths_after_warmup, 0);
  for (int trial = 0; trial < 300; ++trial) {
    const int32_t left = 1 + static_cast<int32_t>(rng.NextUint64(12));
    const int32_t right = 1 + static_cast<int32_t>(rng.NextUint64(12));
    const Bigraph graph = RandomBigraph(rng, left, right, rng.NextDouble());
    MaxWeightMatching(graph, &scratch);
  }
  EXPECT_EQ(scratch.capacity_growths(), growths_after_warmup);
}

TEST(GreedyBoundsTest, LowerBoundsNeverExceedOptimum) {
  Rng rng(55);
  for (int trial = 0; trial < 300; ++trial) {
    const int32_t left = 1 + static_cast<int32_t>(rng.NextUint64(6));
    const int32_t right = 1 + static_cast<int32_t>(rng.NextUint64(6));
    const Bigraph graph = RandomBigraph(rng, left, right, 0.5);
    const double optimum = MaxWeightMatchingBruteForce(graph);
    ASSERT_LE(GreedyMaxWeightLowerBound(graph), optimum + 1e-9);
    ASSERT_LE(GreedyMinDegreeLowerBound(graph), optimum + 1e-9);
    ASSERT_LE(CombinedLowerBound(graph), optimum + 1e-9);
  }
}

TEST(GreedyBoundsTest, LowerBoundsAreValidMatchings) {
  // On a graph where a perfect matching exists, the greedy bounds should
  // be positive.
  Bigraph graph(2, 2);
  graph.AddEdge(0, 0, 0.5);
  graph.AddEdge(1, 1, 0.5);
  EXPECT_NEAR(GreedyMaxWeightLowerBound(graph), 1.0, 1e-12);
  EXPECT_NEAR(GreedyMinDegreeLowerBound(graph), 1.0, 1e-12);
}

TEST(GreedyBoundsTest, CombinedTakesTheBetterBound) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const Bigraph graph = RandomBigraph(rng, 4, 4, 0.6);
    EXPECT_GE(CombinedLowerBound(graph) + 1e-12,
              std::max(GreedyMaxWeightLowerBound(graph), GreedyMinDegreeLowerBound(graph)));
  }
}

TEST(UpperBoundTest, NeverBelowOptimum) {
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    const int32_t left = 1 + static_cast<int32_t>(rng.NextUint64(6));
    const int32_t right = 1 + static_cast<int32_t>(rng.NextUint64(6));
    const Bigraph graph = RandomBigraph(rng, left, right, 0.5);
    ASSERT_GE(PerVertexUpperBound(graph) + 1e-9, MaxWeightMatchingBruteForce(graph));
  }
}

TEST(UpperBoundTest, PaperSection52Example) {
  // Second group of S8/S9 (δ = 0.6): 3x3 with all weights 4/5.
  Bigraph graph(3, 3);
  for (int32_t l = 0; l < 3; ++l) {
    for (int32_t r = 0; r < 3; ++r) graph.AddEdge(l, r, 0.8);
  }
  EXPECT_NEAR(PerVertexUpperBound(graph), 12.0 / 5.0, 1e-12);  // Bu2 = 12/5
  EXPECT_NEAR(MaxWeightMatching(graph), 12.0 / 5.0, 1e-12);
}

TEST(UpperBoundTest, TightOnDisjointEdges) {
  Bigraph graph(2, 2);
  graph.AddEdge(0, 0, 0.9);
  graph.AddEdge(1, 1, 0.4);
  EXPECT_NEAR(PerVertexUpperBound(graph), 1.3, 1e-12);
}

TEST(BigraphTest, DegreesAndAdjacency) {
  Bigraph graph(2, 3);
  graph.AddEdge(0, 1, 0.5);
  graph.AddEdge(0, 2, 0.6);
  graph.AddEdge(1, 2, 0.7);
  EXPECT_EQ(graph.left_degree(0), 2);
  EXPECT_EQ(graph.left_degree(1), 1);
  EXPECT_EQ(graph.right_degree(0), 0);
  EXPECT_EQ(graph.right_degree(2), 2);
  EXPECT_EQ(graph.edges().size(), 3u);
}

}  // namespace
}  // namespace kjoin
