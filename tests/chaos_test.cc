// Self-healing serving-tier suite (docs/robustness.md, "Failure modes
// and degraded operation"): snapshot generations with failover recovery
// (corrupt newest generation -> quarantine + older generation + WAL
// replay), degraded read-only mode (trip on sustained WAL failure,
// background probe auto-recovery), adaptive admission control, and the
// randomized chaos harness — seeded fault schedules over interleaved
// insert/search/save/kill cycles, asserting the recovered state is
// byte-identical to the acked prefix. Trial count comes from
// KJOIN_CHAOS_TRIALS (scripts/check.sh --chaos runs hundreds under the
// asan and tsan presets, where fault points are compiled in).

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/kjoin_index.h"
#include "data/benchmark_suite.h"
#include "serve/index_manager.h"
#include "serve/search_service.h"
#include "serve/snapshot.h"
#include "serve/snapshot_store.h"
#include "serve/wal.h"

namespace kjoin {
namespace {

// ------------------------------------------------------- shared fixture

// Small on purpose: a chaos trial builds managers and loads snapshots
// many times over; the properties under test are structural, not
// scale-sensitive.
constexpr int64_t kRecords = 60;

struct ChaosStack {
  Dataset dataset;
  std::shared_ptr<const Hierarchy> hierarchy;
  PreparedObjects prepared;
  KJoinOptions options;
};

ChaosStack& Stack() {
  static ChaosStack* stack = [] {
    auto* s = new ChaosStack();
    BenchmarkData data = MakePoiBenchmark(kRecords, /*seed=*/13);
    s->dataset = std::move(data.dataset);
    s->hierarchy = std::make_shared<const Hierarchy>(std::move(data.hierarchy));
    s->prepared = BuildObjects(*s->hierarchy, s->dataset,
                               /*multi_mapping=*/true, /*min_phi=*/0.8);
    s->options.delta = 0.8;
    s->options.tau = 0.6;
    s->options.plus_mode = true;
    return s;
  }();
  return *stack;
}

std::unique_ptr<serve::IndexManager> MakeManager(
    ThreadPool* pool, MetricsRegistry* metrics = nullptr,
    serve::IndexManagerOptions options = {}) {
  ChaosStack& stack = Stack();
  return std::make_unique<serve::IndexManager>(
      stack.hierarchy, stack.options, stack.prepared.objects,
      stack.prepared.builder->TokenTable(), stack.dataset.synonyms, pool, metrics,
      options);
}

std::vector<Object> MakeInserts(int count, int64_t first_id) {
  const Dataset& dataset = Stack().dataset;
  ObjectBuilder* builder = Stack().prepared.builder.get();
  std::vector<Object> batch;
  batch.reserve(count);
  for (int i = 0; i < count; ++i) {
    batch.push_back(builder->Build(static_cast<int32_t>(first_id) + i,
                                   dataset.records[i % dataset.records.size()].tokens));
  }
  return batch;
}

Object MakeQuery(uint64_t salt) {
  const Dataset& dataset = Stack().dataset;
  std::vector<std::string> tokens =
      dataset.records[(salt * 97) % dataset.records.size()].tokens;
  if (tokens.size() > 1 && salt % 2 == 1) tokens.pop_back();
  return Stack().prepared.builder->Build(-1, tokens);
}

// The current epoch serialized — identical states serialize to
// identical bytes (postings sorted, delta chains flattened), so this is
// the chaos harness's equality witness.
std::string StateBytes(const serve::IndexManager& manager) {
  const auto epoch = manager.Acquire();
  serve::SnapshotInput input;
  input.index = epoch->index.get();
  input.tokens = epoch->tokens;
  input.synonyms = epoch->synonyms;
  input.durable_seq = epoch->durable_seq;
  return serve::SerializeIndexSnapshot(input);
}

// ----------------------------------------------------- fs test helpers

void RemoveTree(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      std::remove((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[1 << 14];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

bool FileExists(const std::string& path) { return ::access(path.c_str(), F_OK) == 0; }

// Flips one byte mid-file: every region is covered by a checksum (file
// header check, table CRC, or a section CRC), so the loader must reject
// the generation no matter where the flip lands.
void CorruptFile(const std::string& path, uint64_t salt) {
  std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 0u);
  const size_t at = bytes.size() / 3 + salt % (bytes.size() - bytes.size() / 3);
  bytes[at] = static_cast<char>(bytes[at] ^ 0x5A);
  WriteFile(path, bytes);
}

// Simulates a crash mid-append: garbage past the intact prefix is the
// only tear a real crash can produce (Append fsyncs before acking), and
// replay must drop it silently.
void AppendGarbage(const std::string& path, uint64_t salt) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr) << path;
  const size_t n = 1 + salt % 48;
  for (size_t i = 0; i < n; ++i) {
    const char b = static_cast<char>((salt >> (i % 8)) * 131 + i);
    std::fwrite(&b, 1, 1, f);
  }
  std::fclose(f);
}

uint64_t SplitMix(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

serve::SnapshotInput EpochInput(const serve::IndexEpoch& epoch) {
  serve::SnapshotInput input;
  input.index = epoch.index.get();
  input.tokens = epoch.tokens;
  input.synonyms = epoch.synonyms;
  input.durable_seq = epoch.durable_seq;
  return input;
}

// --------------------------------------------------- snapshot store

TEST(SnapshotStoreTest, PublishRetainsPrunesAndReportsFloor) {
  const std::string dir = testing::TempDir() + "/kjoin_store_retain";
  RemoveTree(dir);
  MetricsRegistry metrics;
  serve::SnapshotStoreOptions options;
  options.retain = 3;
  auto store = serve::SnapshotStore::Open(dir, options, &metrics);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  auto manager = MakeManager(nullptr);
  const auto epoch = manager->Acquire();
  for (int64_t seq = 1; seq <= 5; ++seq) {
    serve::SnapshotInput input = EpochInput(*epoch);
    input.durable_seq = seq;
    auto published = (*store)->Publish(input);
    ASSERT_TRUE(published.ok()) << published.status().ToString();
    EXPECT_EQ(published->generation, seq);
    // The floor tracks the oldest *retained* generation's sequence —
    // truncating further would strand a failover target.
    EXPECT_EQ(published->wal_truncate_floor, std::max<int64_t>(1, seq - options.retain + 1));
  }

  const std::vector<serve::SnapshotGeneration> gens = (*store)->List();
  ASSERT_EQ(gens.size(), 3u);
  EXPECT_EQ(gens.front().generation, 3);
  EXPECT_EQ(gens.back().generation, 5);
  EXPECT_EQ(metrics.counter("store.publishes")->value(), 5);
  EXPECT_EQ(metrics.counter("store.pruned")->value(), 2);

  // The manifest is advisory but should describe the retained window.
  const std::string manifest = ReadFile(dir + "/MANIFEST");
  EXPECT_NE(manifest.find("gen-000000000005.kjsn"), std::string::npos);
  EXPECT_NE(manifest.find("durable_seq=5"), std::string::npos);
  EXPECT_EQ(manifest.find("gen-000000000002.kjsn"), std::string::npos);

  // Generation numbers survive reopen and never repeat.
  auto reopened = serve::SnapshotStore::Open(dir, options, &metrics);
  ASSERT_TRUE(reopened.ok());
  auto next = (*reopened)->Publish(EpochInput(*epoch));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->generation, 6);
  // The reopened store has not loaded the pre-existing generations, so
  // it cannot prove a truncation floor and must report "keep all".
  EXPECT_EQ(next->wal_truncate_floor, 0);
}

TEST(SnapshotStoreTest, RecoverFailsOverPastCorruptNewestAndQuarantines) {
  const std::string dir = testing::TempDir() + "/kjoin_store_failover";
  RemoveTree(dir);
  MetricsRegistry metrics;
  auto store = serve::SnapshotStore::Open(dir, {}, &metrics);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  auto manager = MakeManager(nullptr);
  const auto epoch = manager->Acquire();
  for (int64_t seq = 1; seq <= 3; ++seq) {
    serve::SnapshotInput input = EpochInput(*epoch);
    input.durable_seq = seq;
    ASSERT_TRUE((*store)->Publish(input).ok());
  }
  const std::vector<serve::SnapshotGeneration> gens = (*store)->List();
  ASSERT_EQ(gens.size(), 3u);
  CorruptFile(gens.back().path, /*salt=*/7);

  auto recovered = (*store)->Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->generation, 2);
  EXPECT_EQ(recovered->loaded.durable_seq, 2);
  EXPECT_EQ(recovered->quarantined, 1);
  EXPECT_EQ(metrics.counter("store.quarantined")->value(), 1);
  // The corrupt file was renamed aside, not deleted: kept for forensics,
  // never scanned again.
  EXPECT_FALSE(FileExists(gens.back().path));
  EXPECT_TRUE(FileExists(gens.back().path + ".quarantine"));
  ASSERT_EQ((*store)->List().size(), 2u);
}

TEST(SnapshotStoreTest, NoLoadableGenerationIsNotFound) {
  const std::string dir = testing::TempDir() + "/kjoin_store_empty";
  RemoveTree(dir);
  auto store = serve::SnapshotStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(IsNotFound((*store)->Recover().status()));

  // One generation, corrupted: quarantined, then the same verdict.
  auto manager = MakeManager(nullptr);
  ASSERT_TRUE(manager->SaveSnapshot(store->get()).ok());
  const std::vector<serve::SnapshotGeneration> gens = (*store)->List();
  ASSERT_EQ(gens.size(), 1u);
  CorruptFile(gens.front().path, /*salt=*/11);
  const Status recovered = (*store)->Recover().status();
  EXPECT_TRUE(IsNotFound(recovered)) << recovered.ToString();
  EXPECT_TRUE((*store)->List().empty());
}

// End-to-end failover: the newest generation is corrupted after a kill;
// recovery must land on the older generation and replay the WAL records
// past *its* sequence — reaching the exact acked state.
TEST(SnapshotStoreTest, RecoverFromStoreFailsOverAndReplaysWal) {
  const std::string dir = testing::TempDir() + "/kjoin_store_e2e";
  RemoveTree(dir);
  auto store = serve::SnapshotStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const std::string wal_path = dir + "/wal";

  std::vector<std::vector<Object>> acked;
  {
    auto manager = MakeManager(nullptr);
    ASSERT_TRUE(manager->AttachWal(wal_path).ok());
    ASSERT_TRUE(manager->SaveSnapshot(store->get()).ok());  // gen 1, seq 0
    acked.push_back(MakeInserts(3, kRecords));
    ASSERT_TRUE(manager->InsertBatch(acked.back()).ok());
    manager->Flush();
    ASSERT_TRUE(manager->SaveSnapshot(store->get()).ok());  // gen 2, seq 1
    acked.push_back(MakeInserts(2, kRecords + 3));
    ASSERT_TRUE(manager->InsertBatch(acked.back()).ok());  // only in the WAL
    manager->Flush();
  }
  const std::vector<serve::SnapshotGeneration> gens = (*store)->List();
  ASSERT_EQ(gens.size(), 2u);
  CorruptFile(gens.back().path, /*salt=*/23);

  auto recovered =
      serve::IndexManager::RecoverFromStore(store->get(), wal_path, nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  auto reference = MakeManager(nullptr);
  for (const std::vector<Object>& batch : acked) {
    ASSERT_TRUE(reference->InsertBatch(batch).ok());
  }
  reference->Flush();
  EXPECT_EQ(StateBytes(**recovered), StateBytes(*reference));
  EXPECT_EQ((*recovered)->Acquire()->durable_seq, 2);
}

// ------------------------------------------- durable publish failures

// ENOSPC/EIO on the publish path (injected short write, failed
// directory fsync): no partial generation may ever become visible, and
// whatever was published before stays loadable.
TEST(PublishFaultTest, FailedPublishLeavesNoPartialGeneration) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const std::string dir = testing::TempDir() + "/kjoin_store_enospc";
  RemoveTree(dir);
  auto store = serve::SnapshotStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto manager = MakeManager(nullptr);
  ASSERT_TRUE(manager->SaveSnapshot(store->get()).ok());

  fault::Scope scope;
  for (const char* point : {"serve/write", "serve/dir_fsync"}) {
    fault::Enable(point);
    const Status published = manager->SaveSnapshot(store->get());
    EXPECT_TRUE(IsDataLoss(published)) << point << ": " << published.ToString();
    fault::DisarmAll();
    // Exactly the pre-fault generation remains, still loadable.
    ASSERT_EQ((*store)->List().size(), 1u) << point;
    auto recovered = (*store)->Recover();
    ASSERT_TRUE(recovered.ok()) << point << ": " << recovered.status().ToString();
    EXPECT_EQ(recovered->quarantined, 0) << point;
  }
  // Cleared faults: publishing works again.
  EXPECT_TRUE(manager->SaveSnapshot(store->get()).ok());
}

TEST(PublishFaultTest, DirFsyncFaultFailsSingleSnapshotCleanly) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const std::string path = testing::TempDir() + "/kjoin_dirfsync.kjsn";
  std::remove(path.c_str());
  auto manager = MakeManager(nullptr);

  fault::Scope scope;
  fault::Enable("serve/dir_fsync");
  EXPECT_TRUE(IsDataLoss(manager->SaveSnapshot(path)));
  fault::DisarmAll();
  // Treated as a failed publish: nothing under the final name.
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));

  ASSERT_TRUE(manager->SaveSnapshot(path).ok());
  EXPECT_TRUE(serve::LoadIndexSnapshot(path).ok());
}

// --------------------------------------------- degraded read-only mode

TEST(ReadOnlyModeTest, TripsOnSustainedWalFailureAndAutoRecovers) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const std::string wal_path = testing::TempDir() + "/kjoin_readonly.wal";
  std::remove(wal_path.c_str());

  MetricsRegistry metrics;
  serve::IndexManagerOptions options;
  options.wal_failure_trip_threshold = 2;
  options.wal_probe_interval_seconds = 0.002;
  auto manager = MakeManager(nullptr, &metrics, options);
  ASSERT_TRUE(manager->AttachWal(wal_path).ok());

  std::vector<Object> acked = MakeInserts(2, kRecords);
  ASSERT_TRUE(manager->InsertBatch(acked).ok());
  manager->Flush();
  const std::string state_before = StateBytes(*manager);

  fault::Scope scope;
  fault::Enable("serve/wal_append");  // every append fails, as a full disk would
  for (int i = 0; i < options.wal_failure_trip_threshold; ++i) {
    const Status failed = manager->InsertBatch(MakeInserts(1, kRecords + 2));
    EXPECT_TRUE(IsDataLoss(failed)) << failed.ToString();
  }
  serve::ManagerHealth health = manager->HealthSnapshot();
  EXPECT_EQ(health.state, serve::HealthState::kDegradedReadOnly);
  EXPECT_EQ(health.read_only_trips, 1);
  EXPECT_EQ(metrics.counter("manager.read_only_trips")->value(), 1);
  EXPECT_EQ(metrics.gauge("manager.health_state")->value(), 1);

  // Degraded: writes are rejected up front with kUnavailable and a
  // machine-readable retry hint; reads keep serving the acked state.
  const Status rejected = manager->InsertBatch(MakeInserts(1, kRecords + 2));
  EXPECT_TRUE(IsUnavailable(rejected)) << rejected.ToString();
  EXPECT_NE(rejected.message().find("retry_after_ms="), std::string::npos)
      << rejected.ToString();
  EXPECT_EQ(StateBytes(*manager), state_before);

  // The probe keeps failing while the schedule is armed (it shares the
  // append path's fault points), so the manager must stay degraded.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(manager->HealthSnapshot().state, serve::HealthState::kDegradedReadOnly);
  EXPECT_GT(metrics.counter("manager.wal_probe_failures")->value(), 0);

  // Clear the fault: the probe heals the manager without any writer's
  // help, and the next real append completes the recovery.
  fault::DisarmAll();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (manager->HealthSnapshot().state == serve::HealthState::kDegradedReadOnly &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(manager->HealthSnapshot().state, serve::HealthState::kRecovering);
  EXPECT_EQ(metrics.counter("manager.recoveries")->value(), 1);

  std::vector<Object> late = MakeInserts(1, kRecords + 2);
  ASSERT_TRUE(manager->InsertBatch(late).ok());
  manager->Flush();
  EXPECT_EQ(manager->HealthSnapshot().state, serve::HealthState::kServing);
  EXPECT_EQ(metrics.gauge("manager.health_state")->value(), 0);

  // Round-trip: recovery after the episode sees exactly the acked
  // batches — the failed and rejected writes left no trace.
  manager.reset();
  auto reference = MakeManager(nullptr);
  ASSERT_TRUE(reference->InsertBatch(acked).ok());
  ASSERT_TRUE(reference->InsertBatch(late).ok());
  reference->Flush();
  auto recovered = MakeManager(nullptr);
  ASSERT_TRUE(recovered->AttachWal(wal_path).ok());
  EXPECT_EQ(StateBytes(*recovered), StateBytes(*reference));
}

// ------------------------------------------------ adaptive admission

TEST(AdmissionTest, DeadlineInfeasibleRequestsShedBeforeQueueing) {
  MetricsRegistry metrics;
  ThreadPool pool(2);
  auto manager = MakeManager(&pool);
  serve::SearchServiceOptions options;
  options.max_in_flight = 8;
  options.default_deadline_seconds = 0.01;
  serve::SearchService service(manager.get(), &pool, options, &metrics);

  // Plant a queue-delay estimate far above any deadline: the service
  // must shed up front, without touching the index.
  service.SetQueueDelayEwmaForTest(1.0);
  serve::QueryRequest request;
  request.query = MakeQuery(1);
  serve::QueryResponse response = service.Search(request);
  EXPECT_TRUE(IsResourceExhausted(response.status)) << response.status.ToString();
  EXPECT_EQ(response.epoch_version, 0);
  EXPECT_NE(response.status.message().find("deadline-infeasible"), std::string::npos);
  EXPECT_NE(response.status.message().find("retry_after_ms="), std::string::npos);
  EXPECT_EQ(metrics.counter("service.shed_deadline_infeasible")->value(), 1);
  EXPECT_EQ(metrics.counter("service.shed_total")->value(), 1);
  EXPECT_EQ(metrics.counter("service.queries")->value(), 0);

  // An explicit "no deadline" request is always feasible.
  request.deadline_seconds = 0.0;
  response = service.Search(request);
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();

  // So is any request once the estimate subsides.
  service.SetQueueDelayEwmaForTest(0.0);
  request.deadline_seconds = -1.0;
  response = service.Search(request);
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
}

TEST(AdmissionTest, AimdCapHalvesOnMissStormAndRecoversAdditively) {
  MetricsRegistry metrics;
  ThreadPool pool(1);  // synchronous: window boundaries are deterministic
  auto manager = MakeManager(&pool);
  serve::SearchServiceOptions options;
  options.max_in_flight = 16;
  options.min_in_flight = 2;
  options.aimd_window = 4;
  serve::SearchService service(manager.get(), &pool, options, &metrics);
  EXPECT_EQ(service.effective_cap(), 16);

  // Impossible deadlines: every query misses, every window halves.
  serve::QueryRequest doomed;
  doomed.query = MakeQuery(2);
  doomed.deadline_seconds = 1e-9;
  for (int i = 0; i < options.aimd_window; ++i) {
    const serve::QueryResponse response = service.Search(doomed);
    EXPECT_TRUE(IsDeadlineExceeded(response.status)) << response.status.ToString();
  }
  EXPECT_EQ(service.effective_cap(), 8);
  for (int i = 0; i < options.aimd_window; ++i) service.Search(doomed);
  EXPECT_EQ(service.effective_cap(), 4);
  for (int i = 0; i < options.aimd_window; ++i) service.Search(doomed);
  EXPECT_EQ(service.effective_cap(), 2);
  // The floor holds: a miss storm cannot shed the service to zero.
  for (int i = 0; i < options.aimd_window; ++i) service.Search(doomed);
  EXPECT_EQ(service.effective_cap(), 2);
  EXPECT_EQ(metrics.gauge("service.effective_cap")->value(), 2);

  // Clean windows walk the cap back up one step at a time.
  serve::QueryRequest healthy;
  healthy.query = MakeQuery(3);
  for (int i = 0; i < options.aimd_window; ++i) {
    const serve::QueryResponse response = service.Search(healthy);
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
  EXPECT_EQ(service.effective_cap(), 3);
  for (int i = 0; i < options.aimd_window; ++i) service.Search(healthy);
  EXPECT_EQ(service.effective_cap(), 4);
}

TEST(AdmissionTest, CapShedCarriesLoadAndRetryHint) {
  MetricsRegistry metrics;
  ThreadPool pool(2);  // exactly one background lane
  auto manager = MakeManager(&pool);
  serve::SearchServiceOptions options;
  options.max_in_flight = 1;
  options.min_in_flight = 1;
  serve::SearchService service(manager.get(), &pool, options, &metrics);

  // Occupy the worker lane so the admitted query below cannot start, then
  // fill the single admission slot; the synchronous Search must shed with
  // the full load picture in its message.
  std::promise<void> blocker_running, release_blocker;
  pool.Schedule([&] {
    blocker_running.set_value();
    release_blocker.get_future().wait();
  });
  blocker_running.get_future().wait();

  std::promise<serve::QueryResponse> async_done;
  serve::QueryRequest request;
  request.query = MakeQuery(4);
  service.Submit(request,
                 [&](serve::QueryResponse r) { async_done.set_value(std::move(r)); });
  EXPECT_EQ(service.in_flight(), 1);

  const serve::QueryResponse shed = service.Search(request);
  ASSERT_TRUE(IsResourceExhausted(shed.status)) << shed.status.ToString();
  EXPECT_EQ(shed.epoch_version, 0);  // shed before touching the index
  EXPECT_NE(shed.status.message().find("in_flight=1"), std::string::npos)
      << shed.status.ToString();
  EXPECT_NE(shed.status.message().find("effective_cap=1"), std::string::npos);
  EXPECT_NE(shed.status.message().find("retry_after_ms="), std::string::npos);
  EXPECT_EQ(metrics.counter("service.shed_cap")->value(), 1);
  EXPECT_EQ(metrics.counter("service.shed_total")->value(), 1);
  EXPECT_EQ(metrics.counter("service.shed")->value(), 1);  // legacy alias moves too

  release_blocker.set_value();
  EXPECT_TRUE(async_done.get_future().get().status.ok());
}

// ------------------------------------------------- fault schedules

TEST(FaultScheduleTest, ColonSyntaxAndEnvArming) {
  fault::Scope scope;
  ASSERT_TRUE(fault::EnableFromSpec("a/b:0.5,c/d:1x2,e/f").ok());
  std::vector<fault::FaultPointStats> points = fault::ArmedPoints();
  ASSERT_EQ(points.size(), 3u);
  fault::DisarmAll();

  ::setenv("KJOIN_FAULT_SCHEDULE", "serve/wal_append:0.25,serve/write:1x3", 1);
  ::setenv("KJOIN_FAULT_SEED", "1234", 1);
  ASSERT_TRUE(fault::EnableFromEnv().ok());
  points = fault::ArmedPoints();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].name, "serve/wal_append");
  EXPECT_EQ(points[1].name, "serve/write");
  fault::DisarmAll();

  ::setenv("KJOIN_FAULT_SEED", "not-a-number", 1);
  EXPECT_TRUE(IsInvalidArgument(fault::EnableFromEnv()));
  ::unsetenv("KJOIN_FAULT_SCHEDULE");
  ::unsetenv("KJOIN_FAULT_SEED");
  // Unset variables are a no-op, not an error.
  EXPECT_TRUE(fault::EnableFromEnv().ok());
  EXPECT_TRUE(fault::ArmedPoints().empty());
}

// --------------------------------------------------- the chaos harness

// One randomized trial: a serving stack with a snapshot store and WAL
// takes a seeded schedule of interleaved mutations, searches, snapshot
// publishes and injected fault storms, then "dies"; the on-disk state is
// further damaged in crash-shaped ways (torn WAL tail, corrupt newest
// generation) and recovered. The recovered state must be byte-identical
// to replaying exactly the acked operations — nothing acked is lost,
// nothing unacked resurrects — and no read may ever crash.
void RunChaosTrial(uint64_t trial) {
  uint64_t rng = trial * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL;
  const std::string dir = testing::TempDir() + "/kjoin_chaos_" + std::to_string(trial);
  RemoveTree(dir);
  MetricsRegistry metrics;
  serve::SnapshotStoreOptions store_options;
  store_options.retain = 2;
  auto store_or = serve::SnapshotStore::Open(dir, store_options, &metrics);
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  serve::SnapshotStore* store = store_or->get();
  const std::string wal_path = dir + "/wal";

  serve::IndexManagerOptions options;
  options.max_delta_layers = 2;
  options.wal_failure_trip_threshold = 2;
  options.wal_probe_interval_seconds = 0.001;

  fault::Scope scope;
  struct Op {
    std::vector<Object> objects;
    std::vector<int32_t> deletes;
  };
  std::vector<Op> acked;
  int64_t logical = kRecords;
  int64_t next_id = kRecords;
  {
    auto manager = MakeManager(nullptr, &metrics, options);
    ASSERT_TRUE(manager->AttachWal(wal_path).ok());
    ASSERT_TRUE(manager->SaveSnapshot(store).ok());  // generation 1: the base state

    const int num_ops = 10 + static_cast<int>(SplitMix(&rng) % 10);
    for (int op = 0; op < num_ops; ++op) {
      const uint64_t dice = SplitMix(&rng) % 100;
      if (dice < 12) {
        if (fault::Enabled()) {
          // A seeded fault storm over the whole durable surface. The
          // schedule string goes through EnableFromSpec, the same path
          // KJOIN_FAULT_SCHEDULE takes.
          fault::SetSeed(SplitMix(&rng));
          ASSERT_TRUE(fault::EnableFromSpec("serve/wal_append:0.5,serve/wal_fsync:0.4,"
                                            "serve/write:0.5,serve/dir_fsync:0.3")
                          .ok());
        }
      } else if (dice < 24) {
        fault::DisarmAll();  // the storm passes
      } else if (dice < 55) {
        Op candidate;
        candidate.objects = MakeInserts(1 + static_cast<int>(SplitMix(&rng) % 3), next_id);
        const Status inserted = manager->InsertBatch(candidate.objects);
        if (inserted.ok()) {
          next_id += static_cast<int64_t>(candidate.objects.size());
          logical += static_cast<int64_t>(candidate.objects.size());
          acked.push_back(std::move(candidate));
        } else {
          // Only controlled rejections are legal: a failed append
          // (kDataLoss) or degraded mode (kUnavailable).
          ASSERT_TRUE(IsDataLoss(inserted) || IsUnavailable(inserted))
              << inserted.ToString();
        }
      } else if (dice < 68) {
        Op candidate;
        candidate.deletes.push_back(static_cast<int32_t>(SplitMix(&rng) % logical));
        if (manager->DeleteObjects(candidate.deletes).ok()) {
          acked.push_back(std::move(candidate));
        }
      } else if (dice < 88) {
        // Reads must never crash or error structurally, fault storm or
        // not — at worst they trip their deadline.
        const auto epoch = manager->Acquire();
        JoinControl control;
        control.deadline_seconds = 0.05;
        std::vector<SearchHit> hits;
        SearchStats stats;
        const Status searched = epoch->index->Search(MakeQuery(SplitMix(&rng)), control,
                                                     &hits, &stats);
        ASSERT_TRUE(searched.ok() || IsDeadlineExceeded(searched)) << searched.ToString();
      } else {
        // Publishing may fail under the storm; it must never corrupt.
        (void)manager->SaveSnapshot(store);
      }
    }
    fault::DisarmAll();
    manager->Flush();
    // The manager dies here; only the disk survives into recovery.
  }

  // Crash-shaped damage: a torn unacked WAL tail, and (when an older
  // generation exists to fail over to) a corrupt newest generation.
  if (SplitMix(&rng) % 2 == 0) AppendGarbage(wal_path, SplitMix(&rng));
  const std::vector<serve::SnapshotGeneration> gens = store->List();
  ASSERT_FALSE(gens.empty());
  if (gens.size() >= 2 && SplitMix(&rng) % 2 == 0) {
    CorruptFile(gens.back().path, SplitMix(&rng));
  }

  auto recovered =
      serve::IndexManager::RecoverFromStore(store, wal_path, nullptr, &metrics, options);
  ASSERT_TRUE(recovered.ok()) << "trial " << trial << ": " << recovered.status().ToString();

  auto reference = MakeManager(nullptr);
  for (const Op& op : acked) {
    if (!op.objects.empty()) {
      ASSERT_TRUE(reference->InsertBatch(op.objects).ok());
    }
    if (!op.deletes.empty()) {
      ASSERT_TRUE(reference->DeleteObjects(op.deletes).ok());
    }
  }
  reference->Flush();
  ASSERT_EQ(StateBytes(**recovered), StateBytes(*reference))
      << "trial " << trial << " diverged from its acked prefix ("
      << acked.size() << " acked ops)";

  // Recovered stacks must serve immediately.
  const auto epoch = (*recovered)->Acquire();
  JoinControl control;
  std::vector<SearchHit> hits;
  SearchStats stats;
  ASSERT_TRUE(epoch->index->Search(MakeQuery(trial), control, &hits, &stats).ok());

  recovered->reset();
  RemoveTree(dir);
}

TEST(ChaosTest, RandomizedKillAndRecoverTrials) {
  int trials = 25;
  if (const char* env = std::getenv("KJOIN_CHAOS_TRIALS")) {
    trials = std::max(1, std::atoi(env));
  }
  for (int trial = 0; trial < trials; ++trial) {
    RunChaosTrial(static_cast<uint64_t>(trial));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace kjoin
