// Tests for the top-k join and the PPJoin baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/naive_join.h"
#include "baselines/ppjoin.h"
#include "common/rng.h"
#include "core/topk_join.h"
#include "data/benchmark_suite.h"

namespace kjoin {
namespace {

using PairSet = std::set<std::pair<int32_t, int32_t>>;

PairSet ToSet(const std::vector<std::pair<int32_t, int32_t>>& pairs) {
  PairSet set;
  for (auto [a, b] : pairs) {
    if (a > b) std::swap(a, b);
    set.emplace(a, b);
  }
  return set;
}

// --------------------------------------------------------------- PPJoin

TEST(PpJoinTest, SimilarityIsMultisetJaccard) {
  EXPECT_DOUBLE_EQ(PpJoin::Similarity({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(PpJoin::Similarity({"a", "b"}, {"a", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(PpJoin::Similarity({"a", "a"}, {"a"}), 0.5);
  EXPECT_DOUBLE_EQ(PpJoin::Similarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(PpJoin::Similarity({"x"}, {"y"}), 0.0);
}

std::vector<std::vector<std::string>> RandomTokenRecords(int count, uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::string> vocabulary = {"a", "b", "c", "d", "e", "f",
                                               "g", "h", "i", "j"};
  std::vector<std::vector<std::string>> records;
  for (int i = 0; i < count; ++i) {
    std::vector<std::string> record;
    const int n = 1 + static_cast<int>(rng.NextUint64(6));
    for (int k = 0; k < n; ++k) {
      record.push_back(vocabulary[rng.NextUint64(vocabulary.size())]);
    }
    records.push_back(record);
  }
  return records;
}

TEST(PpJoinTest, MatchesBruteForceAcrossThresholds) {
  const auto records = RandomTokenRecords(120, 42);
  for (double tau : {0.5, 0.6, 0.75, 0.9, 1.0}) {
    for (bool position_filter : {true, false}) {
      const PpJoin join(PpJoinOptions{tau, position_filter});
      PairSet expected;
      for (int32_t x = 0; x < 120; ++x) {
        for (int32_t y = x + 1; y < 120; ++y) {
          if (PpJoin::Similarity(records[x], records[y]) >= tau - 1e-9) {
            expected.emplace(x, y);
          }
        }
      }
      ASSERT_EQ(ToSet(join.SelfJoin(records).pairs), expected)
          << "tau " << tau << " position_filter " << position_filter;
      ASSERT_FALSE(expected.empty());
    }
  }
}

TEST(PpJoinTest, PositionFilterOnlyPrunes) {
  const auto records = RandomTokenRecords(200, 7);
  const JoinResult with = PpJoin(PpJoinOptions{0.7, true}).SelfJoin(records);
  const JoinResult without = PpJoin(PpJoinOptions{0.7, false}).SelfJoin(records);
  EXPECT_EQ(ToSet(with.pairs), ToSet(without.pairs));
  EXPECT_GE(with.stats.verify.rejected_by_upper_bound, 0);
}

TEST(PpJoinTest, RealisticDataset) {
  const BenchmarkData data = MakeResBenchmark();
  std::vector<std::vector<std::string>> records;
  for (const Record& record : data.dataset.records) records.push_back(record.tokens);
  const PpJoin join(PpJoinOptions{0.75, true});
  const JoinResult result = join.SelfJoin(records);
  // Spot-check 30 reported pairs and 30 sampled non-reported pairs.
  Rng rng(3);
  int checked = 0;
  for (const auto& [a, b] : result.pairs) {
    if (checked++ >= 30) break;
    ASSERT_GE(PpJoin::Similarity(records[a], records[b]), 0.75 - 1e-9);
  }
  const PairSet reported = ToSet(result.pairs);
  for (int trial = 0; trial < 30; ++trial) {
    const int32_t a = static_cast<int32_t>(rng.NextUint64(records.size()));
    const int32_t b = static_cast<int32_t>(rng.NextUint64(records.size()));
    if (a == b || reported.count({std::min(a, b), std::max(a, b)})) continue;
    ASSERT_LT(PpJoin::Similarity(records[a], records[b]), 0.75);
  }
}

// ------------------------------------------------------------- TopKJoin

class TopKFixture : public testing::Test {
 protected:
  TopKFixture() : data_(MakeResBenchmark()) {
    prepared_ = BuildObjects(data_.hierarchy, data_.dataset, false);
    // Shrink for the brute-force comparison.
    prepared_.objects.resize(150);
    options_.join.delta = 0.7;
  }

  std::vector<ScoredPair> BruteForceTopK(int32_t k, double floor) const {
    const LcaIndex lca(data_.hierarchy);
    const ElementSimilarity esim(lca);
    const ObjectSimilarity osim(esim, options_.join.delta);
    std::vector<ScoredPair> all;
    const int32_t n = static_cast<int32_t>(prepared_.objects.size());
    for (int32_t a = 0; a < n; ++a) {
      for (int32_t b = a + 1; b < n; ++b) {
        const double sim = osim.Similarity(prepared_.objects[a], prepared_.objects[b]);
        if (sim >= floor - 1e-9) all.push_back({a, b, sim});
      }
    }
    std::sort(all.begin(), all.end(), [](const ScoredPair& x, const ScoredPair& y) {
      if (x.similarity != y.similarity) return x.similarity > y.similarity;
      if (x.first != y.first) return x.first < y.first;
      return x.second < y.second;
    });
    if (static_cast<int32_t>(all.size()) > k) all.resize(k);
    return all;
  }

  BenchmarkData data_;
  PreparedObjects prepared_;
  TopKOptions options_;
};

TEST_F(TopKFixture, MatchesBruteForce) {
  const TopKJoin topk(data_.hierarchy, options_);
  for (int32_t k : {1, 5, 20, 50}) {
    const TopKResult result = topk.SelfJoinTopK(prepared_.objects, k);
    const std::vector<ScoredPair> expected = BruteForceTopK(k, options_.tau_floor);
    ASSERT_EQ(result.pairs.size(), expected.size()) << "k=" << k;
    for (size_t i = 0; i < expected.size(); ++i) {
      // Similarities must agree exactly; pair identity may differ only
      // within exact ties.
      ASSERT_NEAR(result.pairs[i].similarity, expected[i].similarity, 1e-9)
          << "k=" << k << " position " << i;
    }
  }
}

TEST_F(TopKFixture, SaturationFlag) {
  const TopKJoin topk(data_.hierarchy, options_);
  const TopKResult small = topk.SelfJoinTopK(prepared_.objects, 3);
  EXPECT_TRUE(small.saturated);
  EXPECT_EQ(small.pairs.size(), 3u);
  const TopKResult huge = topk.SelfJoinTopK(prepared_.objects, 1000000);
  EXPECT_FALSE(huge.saturated);
  EXPECT_NEAR(huge.final_tau, options_.tau_floor, 1e-9);
}

TEST_F(TopKFixture, ResultsSortedDescending) {
  const TopKJoin topk(data_.hierarchy, options_);
  const TopKResult result = topk.SelfJoinTopK(prepared_.objects, 30);
  for (size_t i = 1; i < result.pairs.size(); ++i) {
    EXPECT_GE(result.pairs[i - 1].similarity, result.pairs[i].similarity);
  }
  EXPECT_GE(result.rounds, 1);
}

}  // namespace
}  // namespace kjoin
