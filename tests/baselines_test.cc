// Tests for src/baselines: FastJoin, SynonymJoin, CrowdJoin, NaiveJoin.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/crowd_join.h"
#include "baselines/fastjoin.h"
#include "baselines/naive_join.h"
#include "baselines/synonym_join.h"
#include "common/rng.h"
#include "data/benchmark_suite.h"
#include "data/quality.h"

namespace kjoin {
namespace {

using PairSet = std::set<std::pair<int32_t, int32_t>>;

PairSet ToSet(const std::vector<std::pair<int32_t, int32_t>>& pairs) {
  PairSet set;
  for (auto [a, b] : pairs) {
    if (a > b) std::swap(a, b);
    set.emplace(a, b);
  }
  return set;
}

// ------------------------------------------------------------- FastJoin

TEST(FastJoinTest, SimilaritySemantics) {
  FastJoin join(FastJoinOptions{/*delta=*/0.8, /*tau=*/0.5, /*qgram_q=*/2});
  // Identical records.
  EXPECT_DOUBLE_EQ(join.Similarity({"pizza", "hut"}, {"pizza", "hut"}), 1.0);
  // A typo pair: "pizzahut" vs "pizzahat": token similarity 7/8 = 0.875.
  const double sim = join.Similarity({"pizzahut"}, {"pizzahat"});
  EXPECT_NEAR(sim, 0.875 / (2 - 0.875), 1e-12);
  // Below-δ tokens contribute nothing.
  EXPECT_DOUBLE_EQ(join.Similarity({"abcdefgh"}, {"zzzzzzzz"}), 0.0);
}

TEST(FastJoinTest, SelfJoinMatchesBruteForce) {
  Rng rng(404);
  const std::vector<std::string> vocabulary = {
      "pizza", "pizzeria", "burger",  "burgers", "sushi", "ramen",
      "tacos", "coffee",   "coffees", "brunch",  "diner", "dinner"};
  std::vector<std::vector<std::string>> records;
  for (int i = 0; i < 60; ++i) {
    std::vector<std::string> record;
    const int n = 1 + static_cast<int>(rng.NextUint64(4));
    for (int k = 0; k < n; ++k) {
      record.push_back(vocabulary[rng.NextUint64(vocabulary.size())]);
    }
    records.push_back(record);
  }
  for (double tau : {0.6, 0.8}) {
    FastJoin join(FastJoinOptions{0.8, tau, 2});
    PairSet expected;
    for (int32_t x = 0; x < 60; ++x) {
      for (int32_t y = x + 1; y < 60; ++y) {
        if (join.Similarity(records[x], records[y]) >= tau - 1e-9) expected.emplace(x, y);
      }
    }
    EXPECT_EQ(ToSet(join.SelfJoin(records).pairs), expected) << "tau " << tau;
    EXPECT_FALSE(expected.empty());
  }
}

TEST(FastJoinTest, ToleratesTyposThatExactJaccardMisses) {
  FastJoin join(FastJoinOptions{0.8, 0.6, 2});
  const JoinResult result =
      join.SelfJoin({{"mountainview", "burgerking"}, {"mountainviev", "burgerking"}});
  EXPECT_EQ(result.pairs.size(), 1u);
}

TEST(FastJoinTest, RejectsTooLowDelta) {
  EXPECT_DEATH(FastJoin(FastJoinOptions{0.3, 0.5, 2}), "delta");
}

// ----------------------------------------------------------- SynonymJoin

TEST(SynonymJoinTest, CanonicalizationBridgesSynonyms) {
  SynonymJoin join({{"bigapple", "newyork"}}, SynonymJoinOptions{0.6});
  EXPECT_EQ(join.Canonicalize("BigApple"), "newyork");
  EXPECT_EQ(join.Canonicalize("other"), "other");
  EXPECT_DOUBLE_EQ(join.Similarity({"bigapple", "pizza"}, {"newyork", "pizza"}), 1.0);
}

TEST(SynonymJoinTest, DoesNotToleratTypos) {
  SynonymJoin join({}, SynonymJoinOptions{0.6});
  EXPECT_DOUBLE_EQ(join.Similarity({"pizzahut"}, {"pizzahat"}), 0.0);
}

TEST(SynonymJoinTest, SelfJoinMatchesBruteForce) {
  Rng rng(505);
  const std::vector<std::string> vocabulary = {"a", "b", "c", "d", "alias1", "canon1",
                                               "alias2", "canon2"};
  const std::vector<std::pair<std::string, std::string>> rules = {{"alias1", "canon1"},
                                                                  {"alias2", "canon2"}};
  std::vector<std::vector<std::string>> records;
  for (int i = 0; i < 80; ++i) {
    std::vector<std::string> record;
    const int n = 1 + static_cast<int>(rng.NextUint64(4));
    for (int k = 0; k < n; ++k) {
      record.push_back(vocabulary[rng.NextUint64(vocabulary.size())]);
    }
    records.push_back(record);
  }
  SynonymJoin join(rules, SynonymJoinOptions{0.6});
  PairSet expected;
  for (int32_t x = 0; x < 80; ++x) {
    for (int32_t y = x + 1; y < 80; ++y) {
      if (join.Similarity(records[x], records[y]) >= 0.6 - 1e-9) expected.emplace(x, y);
    }
  }
  EXPECT_EQ(ToSet(join.SelfJoin(records).pairs), expected);
  EXPECT_FALSE(expected.empty());
}

TEST(SynonymJoinTest, MultisetSemantics) {
  SynonymJoin join({}, SynonymJoinOptions{0.5});
  // {a, a} vs {a}: overlap 1, sim = 1/2.
  EXPECT_DOUBLE_EQ(join.Similarity({"a", "a"}, {"a"}), 0.5);
}

// ------------------------------------------------------------- CrowdJoin

TEST(CrowdJoinTest, PerfectOracleRecoversClusters) {
  CrowdJoinOptions options;
  options.false_negative_rate = 0.0;
  options.false_positive_rate = 0.0;
  options.blocking_jaccard = 0.01;
  const CrowdJoin join(options);
  const std::vector<std::vector<std::string>> records = {
      {"pizza", "nyc"}, {"pizza", "nyc", "east"}, {"sushi", "sf"}, {"sushi", "sf", "bay"}};
  const std::vector<int32_t> clusters = {0, 0, 1, 1};
  const JoinResult result = join.SelfJoin(records, clusters);
  EXPECT_EQ(ToSet(result.pairs), (PairSet{{0, 1}, {2, 3}}));
}

TEST(CrowdJoinTest, BlockingMissesTokenDisjointDuplicates) {
  CrowdJoinOptions options;
  options.false_negative_rate = 0.0;
  options.false_positive_rate = 0.0;
  const CrowdJoin join(options);
  // Same cluster but no shared token: the crowd never sees the pair.
  const JoinResult result = join.SelfJoin({{"alpha"}, {"beta"}}, {0, 0});
  EXPECT_TRUE(result.pairs.empty());
}

TEST(CrowdJoinTest, NoisyOracleDegradesPrecision) {
  CrowdJoinOptions options;
  options.false_negative_rate = 0.0;
  options.false_positive_rate = 1.0;  // every asked non-duplicate is confirmed
  options.blocking_jaccard = 0.01;
  const CrowdJoin join(options);
  const JoinResult result =
      join.SelfJoin({{"x", "y"}, {"x", "z"}, {"x", "w"}}, {-1, -1, -1});
  EXPECT_EQ(result.pairs.size(), 3u);  // all blocked pairs confirmed wrongly
}

TEST(CrowdJoinTest, DeterministicPerSeed) {
  const BenchmarkData data = MakeResBenchmark();
  std::vector<std::vector<std::string>> records;
  std::vector<int32_t> clusters;
  for (const Record& r : data.dataset.records) {
    records.push_back(r.tokens);
    clusters.push_back(r.cluster);
  }
  CrowdJoinOptions options;
  options.seed = 7;
  const JoinResult a = CrowdJoin(options).SelfJoin(records, clusters);
  const JoinResult b = CrowdJoin(options).SelfJoin(records, clusters);
  EXPECT_EQ(ToSet(a.pairs), ToSet(b.pairs));
}

TEST(CrowdJoinTest, HighRecallOnResBenchmark) {
  const BenchmarkData data = MakeResBenchmark();
  std::vector<std::vector<std::string>> records;
  std::vector<int32_t> clusters;
  for (const Record& r : data.dataset.records) {
    records.push_back(r.tokens);
    clusters.push_back(r.cluster);
  }
  const JoinResult result = CrowdJoin(CrowdJoinOptions{}).SelfJoin(records, clusters);
  const QualityReport report =
      EvaluateQuality(result.pairs, GroundTruthPairs(data.dataset));
  EXPECT_GT(report.recall, 0.75);  // paper Table 4: Crowd recall 88.8 on Res
}

// ------------------------------------------------------------- NaiveJoin

TEST(NaiveJoinTest, SymmetricSelfJoin) {
  const BenchmarkData data = MakeResBenchmark();
  Dataset small = data.dataset;
  small.records.resize(60);
  const PreparedObjects prepared = BuildObjects(data.hierarchy, small, true);
  KJoinOptions options;
  options.delta = 0.7;
  options.tau = 0.5;
  options.plus_mode = true;
  const NaiveJoin naive(data.hierarchy, options);
  const JoinResult result = naive.SelfJoin(prepared.objects);
  EXPECT_EQ(result.stats.candidates, 60 * 59 / 2);
  for (auto [a, b] : result.pairs) EXPECT_LT(a, b);
}

}  // namespace
}  // namespace kjoin
