// Resilience suite (docs/robustness.md): Status plumbing at the
// untrusted-input boundary, join deadlines / cancellation / resource
// guards with a quiescent pool, and the fault-injection harness. Runs
// under the tsan and asan presets as well as release (fault-point tests
// skip themselves when injection is compiled out).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/string_util.h"
#include "core/kjoin.h"
#include "data/benchmark_suite.h"
#include "data/dataset_io.h"
#include "hierarchy/dag.h"
#include "hierarchy/hierarchy_builder.h"
#include "hierarchy/hierarchy_io.h"
#include "text/tokenizer.h"

namespace kjoin {
namespace {

// ------------------------------------------------------------ Status

TEST(StatusTest, OkAndErrorBasics) {
  const Status ok = OkStatus();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.ToString(), "OK");

  const Status bad = InvalidArgumentError("bad id");
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(IsInvalidArgument(bad));
  EXPECT_EQ(bad.message(), "bad id");
  EXPECT_EQ(bad.ToString(), "INVALID_ARGUMENT: bad id");

  EXPECT_TRUE(IsCancelled(CancelledError("x")));
  EXPECT_TRUE(IsDeadlineExceeded(DeadlineExceededError("x")));
  EXPECT_TRUE(IsNotFound(NotFoundError("x")));
  EXPECT_TRUE(IsResourceExhausted(ResourceExhaustedError("x")));
  EXPECT_TRUE(IsDataLoss(DataLossError("x")));
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded), "DEADLINE_EXCEEDED");
}

TEST(StatusTest, UpdateKeepsFirstError) {
  Status status = OkStatus();
  status.Update(OkStatus());
  EXPECT_TRUE(status.ok());
  status.Update(CancelledError("first"));
  status.Update(InvalidArgumentError("second"));
  EXPECT_TRUE(IsCancelled(status));
  EXPECT_EQ(status.message(), "first");
}

Status ReturnIfErrorTwice(const Status& first, const Status& second, bool* reached_end) {
  KJOIN_RETURN_IF_ERROR(first);
  KJOIN_RETURN_IF_ERROR(second);
  *reached_end = true;
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  bool reached = false;
  EXPECT_TRUE(ReturnIfErrorTwice(OkStatus(), OkStatus(), &reached).ok());
  EXPECT_TRUE(reached);

  reached = false;
  const Status propagated =
      ReturnIfErrorTwice(OkStatus(), DataLossError("torn page"), &reached);
  EXPECT_TRUE(IsDataLoss(propagated));
  EXPECT_FALSE(reached);
}

StatusOr<int> DoubleOrFail(StatusOr<int> input) {
  KJOIN_ASSIGN_OR_RETURN(const int value, std::move(input));
  return value * 2;
}

TEST(StatusTest, AssignOrReturnMacro) {
  const StatusOr<int> doubled = DoubleOrFail(21);
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(*doubled, 42);

  const StatusOr<int> failed = DoubleOrFail(ResourceExhaustedError("no ints left"));
  EXPECT_FALSE(failed.ok());
  EXPECT_TRUE(IsResourceExhausted(failed.status()));
}

TEST(StatusTest, StatusOrMirrorsOptionalAccessors) {
  StatusOr<std::string> value = std::string("payload");
  EXPECT_TRUE(value.has_value());
  EXPECT_TRUE(value.status().ok());
  EXPECT_EQ(*value, "payload");
  EXPECT_EQ(value->size(), 7u);

  const StatusOr<std::string> error = NotFoundError("gone");
  EXPECT_FALSE(error.has_value());
  EXPECT_TRUE(IsNotFound(error.status()));
}

// ------------------------------------------------- untrusted parsers

TEST(ParseHierarchyTest, ErrorsCarrySourceAndLine) {
  const auto arity = ParseHierarchy("0\t-1\tRoot\n1\t0", "tree.txt");
  ASSERT_FALSE(arity.ok());
  EXPECT_TRUE(IsInvalidArgument(arity.status()));
  EXPECT_NE(arity.status().message().find("tree.txt:2:"), std::string::npos)
      << arity.status();

  // Comments and blank lines still count toward line numbers.
  const auto late = ParseHierarchy("# header\n\n0\t-1\tRoot\n1\tx\tA", "taxo.tsv");
  ASSERT_FALSE(late.ok());
  EXPECT_NE(late.status().message().find("taxo.tsv:4:"), std::string::npos)
      << late.status();
}

TEST(ParseHierarchyTest, RejectsMalformedStructures) {
  EXPECT_TRUE(IsInvalidArgument(ParseHierarchy("0\t-1\tRoot\n2\t0\tA").status()));
  EXPECT_TRUE(IsInvalidArgument(ParseHierarchy("0\t0\tRoot").status()));
  EXPECT_TRUE(IsInvalidArgument(ParseHierarchy("0\t-1\tRoot\n1\t2\tA").status()));
  EXPECT_TRUE(IsInvalidArgument(ParseHierarchy("").status()));
  const auto utf8 = ParseHierarchy("0\t-1\t\xFF\xFE", "bin.txt");
  ASSERT_FALSE(utf8.ok());
  EXPECT_NE(utf8.status().message().find("not valid UTF-8"), std::string::npos);
}

TEST(ParseDatasetTest, ErrorsCarryNameAndLine) {
  const auto bad_cluster = ParseDataset("R\tabc\ttok", "mini.tsv");
  ASSERT_FALSE(bad_cluster.ok());
  EXPECT_TRUE(IsInvalidArgument(bad_cluster.status()));
  EXPECT_NE(bad_cluster.status().message().find("mini.tsv:1:"), std::string::npos)
      << bad_cluster.status();

  const auto overflow = ParseDataset("R\t99999999999999\ttok", "mini.tsv");
  ASSERT_FALSE(overflow.ok());
  EXPECT_NE(overflow.status().message().find("bad cluster"), std::string::npos);

  const auto utf8 = ParseDataset("R\t1\tok\t\xC0\x80", "mini.tsv");
  ASSERT_FALSE(utf8.ok());
  EXPECT_NE(utf8.status().message().find("not valid UTF-8"), std::string::npos);

  EXPECT_TRUE(IsInvalidArgument(ParseDataset("X\t1\ta").status()));
  EXPECT_TRUE(IsInvalidArgument(ParseDataset("S\tonly-two").status()));
}

TEST(DatasetIoTest, MissingFilesAreNotFoundNotFatal) {
  EXPECT_TRUE(IsNotFound(ReadHierarchyFile("/nonexistent/dir/tree.txt").status()));
  EXPECT_TRUE(IsNotFound(ReadDatasetFile("/nonexistent/dir/data.tsv").status()));
  const Hierarchy tree = MakePoiBenchmark(30).hierarchy;
  EXPECT_TRUE(IsNotFound(WriteHierarchyFile(tree, "/nonexistent/dir/tree.txt")));
}

TEST(DagTest, TryAddEdgeReportsBadEdges) {
  Dag dag("root");
  const int32_t a = dag.AddNode("a");
  EXPECT_TRUE(IsInvalidArgument(dag.TryAddEdge(0, 99)));
  EXPECT_TRUE(IsInvalidArgument(dag.TryAddEdge(-1, a)));
  EXPECT_TRUE(IsInvalidArgument(dag.TryAddEdge(a, a)));
  EXPECT_TRUE(dag.TryAddEdge(0, a).ok());
  EXPECT_TRUE(dag.TryAddEdge(0, a).ok());  // duplicate edge is a no-op
}

TEST(DagTest, ConvertReportsCycleOrphanAndOverflowCodes) {
  Dag cyclic("root");
  const int32_t a = cyclic.AddNode("a");
  const int32_t b = cyclic.AddNode("b");
  cyclic.AddEdge(0, a);
  cyclic.AddEdge(a, b);
  cyclic.AddEdge(b, a);
  const auto cycle = ConvertDagToTree(cyclic);
  ASSERT_FALSE(cycle.ok());
  EXPECT_TRUE(IsInvalidArgument(cycle.status()));
  EXPECT_NE(cycle.status().message().find("cycle"), std::string::npos) << cycle.status();

  Dag orphaned("root");
  orphaned.AddNode("island");
  const auto orphan = ConvertDagToTree(orphaned);
  ASSERT_FALSE(orphan.ok());
  EXPECT_TRUE(IsInvalidArgument(orphan.status()));
  EXPECT_NE(orphan.status().message().find("unreachable"), std::string::npos);

  // A diamond ladder doubles the unfolded tree per level; 40 levels
  // overflow any sane bound long before memory does.
  Dag ladder("root");
  int32_t top = 0;
  for (int level = 0; level < 40; ++level) {
    const int32_t left = ladder.AddNode("l");
    const int32_t right = ladder.AddNode("r");
    const int32_t join = ladder.AddNode("j");
    ladder.AddEdge(top, left);
    ladder.AddEdge(top, right);
    ladder.AddEdge(left, join);
    ladder.AddEdge(right, join);
    top = join;
  }
  const auto blown = ConvertDagToTree(ladder, /*max_tree_nodes=*/100000);
  ASSERT_FALSE(blown.ok());
  EXPECT_TRUE(IsResourceExhausted(blown.status()));
}

TEST(HierarchyBuilderTest, CheckedFactoriesReturnStatus) {
  HierarchyBuilder builder("root");
  EXPECT_TRUE(IsInvalidArgument(builder.TryAddChild(99, "child").status()));
  const StatusOr<NodeId> child = builder.TryAddChild(0, "child");
  ASSERT_TRUE(child.ok());
  EXPECT_EQ(*child, 1);

  EXPECT_TRUE(IsInvalidArgument(
      BuildHierarchyChecked({kInvalidNode, 0}, {"root"}).status()));
  EXPECT_TRUE(IsInvalidArgument(BuildHierarchyChecked({0}, {"root"}).status()));
  EXPECT_TRUE(
      IsInvalidArgument(BuildHierarchyChecked({kInvalidNode, 2}, {"r", "a"}).status()));
  const auto good = BuildHierarchyChecked({kInvalidNode, 0, 0}, {"r", "a", "b"});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->num_nodes(), 3);
}

TEST(TokenizerTest, CheckedTokenizeRejectsBadInputAndLimits) {
  Tokenizer plain;
  const auto ok = plain.TokenizeChecked("Pizza, Salad");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, plain.Tokenize("Pizza, Salad"));

  EXPECT_TRUE(IsInvalidArgument(plain.TokenizeChecked("caf\xC3 broken").status()));

  TokenizerOptions limits;
  limits.max_tokens = 2;
  const Tokenizer capped(limits);
  EXPECT_TRUE(IsResourceExhausted(capped.TokenizeChecked("a b c").status()));
  EXPECT_TRUE(capped.TokenizeChecked("a b").ok());

  TokenizerOptions length;
  length.max_token_length = 4;
  const Tokenizer short_only(length);
  EXPECT_TRUE(IsResourceExhausted(short_only.TokenizeChecked("tiny enormous").status()));
}

TEST(StringUtilTest, ValidatesUtf8Strictly) {
  EXPECT_TRUE(IsValidUtf8("plain ascii"));
  EXPECT_TRUE(IsValidUtf8("caf\xC3\xA9"));                // U+00E9
  EXPECT_TRUE(IsValidUtf8("\xE2\x82\xAC"));               // U+20AC
  EXPECT_TRUE(IsValidUtf8("\xF0\x9F\x8D\x95"));           // U+1F355
  EXPECT_FALSE(IsValidUtf8("\xC0\x80"));                  // overlong NUL
  EXPECT_FALSE(IsValidUtf8("\xED\xA0\x80"));              // surrogate
  EXPECT_FALSE(IsValidUtf8("\xF5\x80\x80\x80"));          // > U+10FFFF
  EXPECT_FALSE(IsValidUtf8("\xE2\x82"));                  // truncated
  EXPECT_FALSE(IsValidUtf8("\x80"));                      // bare continuation
}

// ---------------------------------------------- join deadlines / cancel

struct JoinWorkload {
  BenchmarkData data;
  PreparedObjects prepared;
  std::vector<std::pair<int32_t, int32_t>> reference_pairs;
};

KJoinOptions ControlOptions(int threads) {
  KJoinOptions options;
  options.delta = 0.8;
  options.tau = 0.85;
  options.num_threads = threads;
  return options;
}

// Fig.14-style POI workload, built once; big enough that a millisecond
// deadline always lands mid-join on any machine this suite runs on.
const JoinWorkload& PoiWorkload() {
  static const JoinWorkload* workload = [] {
    BenchmarkData data = MakePoiBenchmark(2000, /*seed=*/77);
    PreparedObjects prepared =
        BuildObjects(data.hierarchy, data.dataset, /*multi_mapping=*/false);
    const KJoin join(data.hierarchy, ControlOptions(1));
    std::vector<std::pair<int32_t, int32_t>> reference =
        join.SelfJoin(prepared.objects).pairs;
    return new JoinWorkload{std::move(data), std::move(prepared), std::move(reference)};
  }();
  return *workload;
}

TEST(JoinControlTest, DefaultControlMatchesLegacyJoin) {
  const JoinWorkload& workload = PoiWorkload();
  const KJoin join(workload.data.hierarchy, ControlOptions(2));
  JoinResult result;
  const Status status = join.SelfJoin(workload.prepared.objects, JoinControl{}, &result);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(result.pairs, workload.reference_pairs);
  EXPECT_EQ(result.stats.stopped_phase, JoinPhase::kNone);
  EXPECT_EQ(result.stats.control_polls, 0);
  EXPECT_EQ(result.stats.verify_batches, 1);
  EXPECT_EQ(result.stats.budget_spills, 0);
}

TEST(JoinControlTest, MillisecondDeadlineTripsAcrossThreadCounts) {
  const JoinWorkload& workload = PoiWorkload();
  for (int threads : {1, 2, 8}) {
    const KJoin join(workload.data.hierarchy, ControlOptions(threads));
    JoinControl control;
    control.deadline_seconds = 1e-3;
    JoinResult result;
    const Status status = join.SelfJoin(workload.prepared.objects, control, &result);
    EXPECT_TRUE(IsDeadlineExceeded(status)) << "threads=" << threads << ": " << status;
    EXPECT_NE(result.stats.stopped_phase, JoinPhase::kNone) << "threads=" << threads;
    EXPECT_GT(result.stats.control_polls, 0) << "threads=" << threads;
    // Partial pairs are a prefix-closed subset of the full answer.
    EXPECT_LT(result.pairs.size(), workload.reference_pairs.size());

    // The pool must be drained and reusable: the same instance still
    // computes the exact join afterwards.
    const JoinResult after = join.SelfJoin(workload.prepared.objects);
    EXPECT_EQ(after.pairs, workload.reference_pairs) << "threads=" << threads;
  }
}

TEST(JoinControlTest, PreCancelledTokenStopsInPrepare) {
  const JoinWorkload& workload = PoiWorkload();
  const KJoin join(workload.data.hierarchy, ControlOptions(2));
  CancelToken token;
  token.Cancel();
  JoinControl control;
  control.cancel_token = &token;
  JoinResult result;
  const Status status = join.SelfJoin(workload.prepared.objects, control, &result);
  EXPECT_TRUE(IsCancelled(status)) << status;
  EXPECT_EQ(result.stats.stopped_phase, JoinPhase::kPrepare);
  EXPECT_TRUE(result.pairs.empty());

  // Reusable token: reset and join to completion.
  token.Reset();
  const Status again = join.SelfJoin(workload.prepared.objects, control, &result);
  ASSERT_TRUE(again.ok()) << again;
  EXPECT_EQ(result.pairs, workload.reference_pairs);
}

TEST(JoinControlTest, WatchdogCancelMidJoin) {
  const JoinWorkload& workload = PoiWorkload();
  const KJoin join(workload.data.hierarchy, ControlOptions(2));
  CancelToken token;
  JoinControl control;
  control.cancel_token = &token;
  std::thread watchdog([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.Cancel();
  });
  JoinResult result;
  const Status status = join.SelfJoin(workload.prepared.objects, control, &result);
  watchdog.join();
  if (status.ok()) {
    // The join beat the watchdog (possible on a fast machine); it must
    // then be the full, correct answer.
    EXPECT_EQ(result.pairs, workload.reference_pairs);
  } else {
    EXPECT_TRUE(IsCancelled(status)) << status;
    EXPECT_LE(result.pairs.size(), workload.reference_pairs.size());
  }
}

TEST(JoinControlTest, OversizedCollectionIsInvalidArgumentViaFault) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const JoinWorkload& workload = PoiWorkload();
  const KJoin join(workload.data.hierarchy, ControlOptions(1));
  fault::Scope scope;
  fault::Enable("kjoin/id_space");
  JoinResult result;
  const Status status = join.SelfJoin(workload.prepared.objects, JoinControl{}, &result);
  EXPECT_TRUE(IsInvalidArgument(status)) << status;
  EXPECT_NE(status.message().find("object-id space"), std::string::npos);
  EXPECT_NE(status.message().find(std::to_string(workload.prepared.objects.size())),
            std::string::npos)
      << "message must carry the offending count: " << status;
}

// ------------------------------------------------------ resource guards

// 60 copies of one record: probe p emits exactly p candidates, so caps
// and budgets trip deterministically.
struct DupWorkload {
  BenchmarkData data;
  Dataset dups;
  PreparedObjects prepared;
  std::vector<std::pair<int32_t, int32_t>> reference_pairs;
};

const DupWorkload& DuplicateWorkload() {
  static const DupWorkload* workload = [] {
    BenchmarkData data = MakePoiBenchmark(50, /*seed=*/9);
    Dataset dups;
    dups.name = "dups";
    dups.synonyms = data.dataset.synonyms;
    const Record base = data.dataset.records.front();
    for (int i = 0; i < 60; ++i) {
      Record record = base;
      record.id = i;
      record.cluster = 0;
      dups.records.push_back(std::move(record));
    }
    PreparedObjects prepared =
        BuildObjects(data.hierarchy, dups, /*multi_mapping=*/false);
    const KJoin join(data.hierarchy, ControlOptions(1));
    std::vector<std::pair<int32_t, int32_t>> reference =
        join.SelfJoin(prepared.objects).pairs;
    return new DupWorkload{std::move(data), std::move(dups), std::move(prepared),
                           std::move(reference)};
  }();
  return *workload;
}

TEST(ResourceGuardTest, DuplicateWorkloadIsDense) {
  // Sanity: identical records must all pair up, or the guard tests below
  // would pass vacuously.
  const DupWorkload& workload = DuplicateWorkload();
  EXPECT_EQ(workload.reference_pairs.size(), 60u * 59u / 2u);
}

TEST(ResourceGuardTest, PerProbeCapTripsOnHubObjects) {
  const DupWorkload& workload = DuplicateWorkload();
  for (int threads : {1, 2}) {
    const KJoin join(workload.data.hierarchy, ControlOptions(threads));
    JoinControl control;
    control.max_candidates_per_probe = 10;
    JoinResult result;
    const Status status = join.SelfJoin(workload.prepared.objects, control, &result);
    EXPECT_TRUE(IsResourceExhausted(status)) << "threads=" << threads << ": " << status;
    EXPECT_NE(status.message().find("max_candidates_per_probe"), std::string::npos);
    EXPECT_EQ(result.stats.stopped_phase, JoinPhase::kFilter);

    // Pool reusable after the trip.
    EXPECT_EQ(join.SelfJoin(workload.prepared.objects).pairs, workload.reference_pairs);
  }
}

TEST(ResourceGuardTest, ByteBudgetSpillsVerificationAndPreservesResults) {
  const DupWorkload& workload = DuplicateWorkload();
  for (int threads : {1, 2}) {
    const KJoin join(workload.data.hierarchy, ControlOptions(threads));
    JoinControl control;
    control.candidate_byte_budget = 64 * static_cast<int64_t>(sizeof(std::pair<int32_t, int32_t>));
    JoinResult result;
    const Status status = join.SelfJoin(workload.prepared.objects, control, &result);
    ASSERT_TRUE(status.ok()) << "threads=" << threads << ": " << status;
    EXPECT_EQ(result.pairs, workload.reference_pairs) << "threads=" << threads;
    EXPECT_GT(result.stats.budget_spills, 0) << "threads=" << threads;
    EXPECT_GT(result.stats.verify_batches, 1) << "threads=" << threads;
    EXPECT_EQ(result.stats.stopped_phase, JoinPhase::kNone);
  }
}

TEST(ResourceGuardTest, SingleProbeOverflowingBudgetIsExhausted) {
  const DupWorkload& workload = DuplicateWorkload();
  const KJoin join(workload.data.hierarchy, ControlOptions(1));
  JoinControl control;
  // 4 buffered pairs: probe 4 alone emits 4 >= 4, so after the spill
  // ladder reaches single-probe chunks the budget is declared unholdable.
  control.candidate_byte_budget = 4 * static_cast<int64_t>(sizeof(std::pair<int32_t, int32_t>));
  JoinResult result;
  const Status status = join.SelfJoin(workload.prepared.objects, control, &result);
  EXPECT_TRUE(IsResourceExhausted(status)) << status;
  EXPECT_NE(status.message().find("candidate_byte_budget"), std::string::npos) << status;
  // Pool reusable after the trip.
  EXPECT_EQ(join.SelfJoin(workload.prepared.objects).pairs, workload.reference_pairs);
}

TEST(ResourceGuardTest, VerifierAllocationFailureSurfacesAsStatus) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const DupWorkload& workload = DuplicateWorkload();
  for (int threads : {1, 2}) {
    const KJoin join(workload.data.hierarchy, ControlOptions(threads));
    fault::Scope scope;
    fault::Enable("verifier/scratch_alloc");
    JoinResult result;
    const Status status = join.SelfJoin(workload.prepared.objects, JoinControl{}, &result);
    EXPECT_TRUE(IsResourceExhausted(status)) << "threads=" << threads << ": " << status;
    EXPECT_EQ(result.stats.stopped_phase, JoinPhase::kVerify);
    fault::DisarmAll();
    // The thrown std::bad_alloc unwound through BuildGroups without
    // poisoning its thread-local scratch: the same pool verifies cleanly.
    EXPECT_EQ(join.SelfJoin(workload.prepared.objects).pairs, workload.reference_pairs);
  }
}

// ------------------------------------------------------ fault injection

TEST(FaultInjectionTest, RegistryCountsHitsAndCapsFires) {
  fault::Scope scope;
  fault::Enable("test/point", /*probability=*/1.0, /*max_fires=*/2);
  EXPECT_TRUE(fault::ShouldFail("test/point"));
  EXPECT_TRUE(fault::ShouldFail("test/point"));
  EXPECT_FALSE(fault::ShouldFail("test/point"));  // capped
  EXPECT_FALSE(fault::ShouldFail("never/armed"));

  const std::vector<fault::FaultPointStats> points = fault::ArmedPoints();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].name, "test/point");
  EXPECT_EQ(points[0].hits, 3);
  EXPECT_EQ(points[0].fires, 2);
}

TEST(FaultInjectionTest, SeededProbabilisticFiresAreReproducible) {
  fault::Scope scope;
  auto draw_pattern = [] {
    fault::SetSeed(42);
    fault::Enable("test/flaky", /*probability=*/0.5);
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) pattern.push_back(fault::ShouldFail("test/flaky"));
    fault::Disable("test/flaky");
    return pattern;
  };
  const std::vector<bool> first = draw_pattern();
  const std::vector<bool> second = draw_pattern();
  EXPECT_EQ(first, second);
  // A 0.5 coin that lands 64 identical tosses is a broken PRNG.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST(FaultInjectionTest, EnableFromSpecParsesAndRejects) {
  fault::Scope scope;
  ASSERT_TRUE(fault::EnableFromSpec("a/b, c/d=0.5 ,e/f=1x3").ok());
  const std::vector<fault::FaultPointStats> points = fault::ArmedPoints();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].name, "a/b");
  EXPECT_EQ(points[1].name, "c/d");
  EXPECT_EQ(points[2].name, "e/f");

  EXPECT_TRUE(IsInvalidArgument(fault::EnableFromSpec("p=nope")));
  EXPECT_TRUE(IsInvalidArgument(fault::EnableFromSpec("p=2.0")));
  EXPECT_TRUE(IsInvalidArgument(fault::EnableFromSpec("p=0.5x-1")));
  EXPECT_TRUE(IsInvalidArgument(fault::EnableFromSpec("=0.5")));
}

TEST(FaultInjectionTest, IoFaultPointsSurfaceAsCleanStatuses) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  fault::Scope scope;
  const std::string tree_path = testing::TempDir() + "/kjoin_resilience_tree.txt";
  const std::string data_path = testing::TempDir() + "/kjoin_resilience_data.tsv";
  const BenchmarkData data = MakePoiBenchmark(30);
  ASSERT_TRUE(WriteHierarchyFile(data.hierarchy, tree_path).ok());
  ASSERT_TRUE(WriteDatasetFile(data.dataset, data_path).ok());

  fault::Enable("hierarchy_io/open_fail");
  EXPECT_TRUE(IsNotFound(ReadHierarchyFile(tree_path).status()));
  fault::DisarmAll();

  fault::Enable("hierarchy_io/short_read");
  EXPECT_TRUE(IsDataLoss(ReadHierarchyFile(tree_path).status()));
  fault::DisarmAll();

  fault::Enable("hierarchy_io/write_fail");
  EXPECT_TRUE(IsDataLoss(WriteHierarchyFile(data.hierarchy, tree_path)));
  fault::DisarmAll();

  fault::Enable("dataset_io/open_fail");
  EXPECT_TRUE(IsNotFound(ReadDatasetFile(data_path).status()));
  fault::DisarmAll();

  fault::Enable("dataset_io/short_read");
  EXPECT_TRUE(IsDataLoss(ReadDatasetFile(data_path).status()));
  fault::DisarmAll();

  fault::Enable("dataset_io/write_fail");
  EXPECT_TRUE(IsDataLoss(WriteDatasetFile(data.dataset, data_path)));
  fault::DisarmAll();

  fault::Enable("dag/cycle_check");
  Dag dag("root");
  const int32_t a = dag.AddNode("a");
  dag.AddEdge(0, a);
  EXPECT_TRUE(IsInvalidArgument(ConvertDagToTree(dag).status()));
  fault::DisarmAll();

  // Everything recovers once disarmed.
  EXPECT_TRUE(ReadHierarchyFile(tree_path).ok());
  EXPECT_TRUE(ReadDatasetFile(data_path).ok());
  EXPECT_TRUE(ConvertDagToTree(dag).ok());
}

TEST(FaultInjectionTest, MaxFiresLimitsBlastRadius) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  fault::Scope scope;
  const std::string tree_path = testing::TempDir() + "/kjoin_resilience_retry.txt";
  const BenchmarkData data = MakePoiBenchmark(30);
  ASSERT_TRUE(WriteHierarchyFile(data.hierarchy, tree_path).ok());

  // One injected failure, then clean: a retry loop must succeed on the
  // second attempt.
  fault::Enable("hierarchy_io/short_read", /*probability=*/1.0, /*max_fires=*/1);
  EXPECT_TRUE(IsDataLoss(ReadHierarchyFile(tree_path).status()));
  EXPECT_TRUE(ReadHierarchyFile(tree_path).ok());
}

// ------------------------------------------------------------- logging

TEST(LoggingTest, MinSeverityIsThreadSafeUnderContention) {
  const LogSeverity original = MinLogSeverity();
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&stop, t] {
      const LogSeverity mine = t == 0 ? LogSeverity::kInfo : LogSeverity::kWarning;
      while (!stop.load(std::memory_order_relaxed)) SetMinLogSeverity(mine);
    });
  }
  bool all_valid = true;
  for (int i = 0; i < 20000; ++i) {
    const LogSeverity seen = MinLogSeverity();
    all_valid &= seen == LogSeverity::kInfo || seen == LogSeverity::kWarning ||
                 seen == original;
  }
  stop.store(true);
  for (std::thread& thread : threads) thread.join();
  EXPECT_TRUE(all_valid) << "MinLogSeverity returned a torn/invalid value";
  SetMinLogSeverity(original);
}

}  // namespace
}  // namespace kjoin
