// libFuzzer harness over the binary snapshot loader (docs/serving.md).
// Built only with -DKJOIN_FUZZ=ON (Clang); run by hand:
//
//   cmake --preset default -DKJOIN_FUZZ=ON -DCMAKE_CXX_COMPILER=clang++
//   cmake --build build --target fuzz_snapshot -j
//   ./build/tests/fuzz_snapshot -max_total_time=60
//
// Contract under test: arbitrary bytes either reconstruct a serving stack
// or return a non-OK Status — no aborts, no leaks, no out-of-bounds reads
// and no unbounded allocations (every array count is checked against the
// remaining payload before it is trusted). Seed the corpus with a real
// snapshot (similarity_search --save-snapshot) so the fuzzer gets past
// the header quickly and mutates section payloads.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "serve/snapshot.h"

namespace {

std::string Reserialize(const kjoin::serve::LoadedIndex& loaded) {
  kjoin::serve::SnapshotInput input;
  input.index = loaded.index.get();
  input.tokens = loaded.tokens;
  input.synonyms = loaded.synonyms;
  return kjoin::serve::SerializeIndexSnapshot(input);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  auto loaded = kjoin::serve::LoadIndexSnapshotFromBytes(bytes, "fuzz");
  if (loaded.ok()) {
    // The loader tolerates non-canonical section placement (gaps,
    // permuted payload order), so re-serialization of an accepted file
    // is a *normalization*: it must itself load, and the second
    // serialization must be the fixed point.
    const std::string canonical = Reserialize(*loaded);
    auto again = kjoin::serve::LoadIndexSnapshotFromBytes(canonical, "fuzz2");
    if (!again.ok()) __builtin_trap();
    if (again->index->num_indexed() != loaded->index->num_indexed() ||
        again->tokens != loaded->tokens || again->synonyms != loaded->synonyms) {
      __builtin_trap();
    }
    if (Reserialize(*again) != canonical) __builtin_trap();
  }
  return 0;
}
