// Tests for src/text: edit distance, tokenizer, q-gram index, entity
// matcher.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "hierarchy/dag.h"
#include "hierarchy/hierarchy_builder.h"
#include "text/edit_distance.h"
#include "text/entity_matcher.h"
#include "text/qgram_index.h"
#include "text/tokenizer.h"

namespace kjoin {
namespace {

TEST(EditDistanceTest, BasicCases) {
  EXPECT_EQ(EditDistance("", ""), 0);
  EXPECT_EQ(EditDistance("abc", ""), 3);
  EXPECT_EQ(EditDistance("", "abc"), 3);
  EXPECT_EQ(EditDistance("abc", "abc"), 0);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistance("pizzahut", "pizzahat"), 1);  // paper §2.1.1
  EXPECT_EQ(EditDistance("abc", "acb"), 2);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("sunday", "saturday"), EditDistance("saturday", "sunday"));
}

TEST(EditDistanceBoundedTest, AgreesWithExactWithinBudget) {
  Rng rng(4);
  const std::string alphabet = "abcd";
  for (int trial = 0; trial < 500; ++trial) {
    std::string x, y;
    const int nx = static_cast<int>(rng.NextUint64(10));
    const int ny = static_cast<int>(rng.NextUint64(10));
    for (int i = 0; i < nx; ++i) x += alphabet[rng.NextUint64(alphabet.size())];
    for (int i = 0; i < ny; ++i) y += alphabet[rng.NextUint64(alphabet.size())];
    const int exact = EditDistance(x, y);
    for (int budget = 0; budget <= 6; ++budget) {
      const int bounded = EditDistanceBounded(x, y, budget);
      if (exact <= budget) {
        ASSERT_EQ(bounded, exact) << x << " vs " << y << " budget " << budget;
      } else {
        ASSERT_GT(bounded, budget) << x << " vs " << y << " budget " << budget;
      }
    }
  }
}

TEST(EditSimilarityTest, PaperExample) {
  // ED(PizzaHut, PizzaHat) = 1, |both| = 8, similarity = 7/8.
  EXPECT_DOUBLE_EQ(EditSimilarity("pizzahut", "pizzahat"), 7.0 / 8.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("a", ""), 0.0);
}

TEST(EditSimilarityAtLeastTest, MatchesDirectComputation) {
  Rng rng(6);
  const std::string alphabet = "abc";
  for (int trial = 0; trial < 400; ++trial) {
    std::string x, y;
    const int nx = 1 + static_cast<int>(rng.NextUint64(8));
    const int ny = 1 + static_cast<int>(rng.NextUint64(8));
    for (int i = 0; i < nx; ++i) x += alphabet[rng.NextUint64(alphabet.size())];
    for (int i = 0; i < ny; ++i) y += alphabet[rng.NextUint64(alphabet.size())];
    for (double threshold : {0.3, 0.5, 0.75, 0.9}) {
      ASSERT_EQ(EditSimilarityAtLeast(x, y, threshold),
                EditSimilarity(x, y) >= threshold - 1e-12)
          << x << " vs " << y << " @ " << threshold;
    }
  }
}

TEST(MaxEditErrorsTest, Values) {
  EXPECT_EQ(MaxEditErrors(8, 0.8), 1);   // (1-0.8)*8 = 1.6 -> 1
  EXPECT_EQ(MaxEditErrors(10, 0.8), 2);  // exactly 2.0
  EXPECT_EQ(MaxEditErrors(5, 1.0), 0);
  EXPECT_EQ(MaxEditErrors(5, 0.0), 5);
}

TEST(TokenizerTest, SplitsAndNormalizes) {
  const Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("Californian food, at Fillmore St.!");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0], "californian");
  EXPECT_EQ(tokens[3], "fillmore");
  EXPECT_EQ(tokens[4], "st");
}

TEST(TokenizerTest, KeepsDuplicates) {
  const Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("pizza pizza");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], tokens[1]);
}

TEST(TokenizerTest, MinTokenLengthDropsShortTokens) {
  TokenizerOptions options;
  options.min_token_length = 3;
  const Tokenizer tokenizer(options);
  const auto tokens = tokenizer.Tokenize("a bb ccc dddd");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "ccc");
}

TEST(TokenizerTest, NormalizeStripsPunctuation) {
  const Tokenizer tokenizer;
  EXPECT_EQ(tokenizer.Normalize("Burger-King!"), "burgerking");
  EXPECT_EQ(tokenizer.Normalize("...."), "");
}

TEST(QGramIndexTest, PaddedGramCount) {
  const auto grams = QGramIndex::PaddedQGrams("abc", 2);
  EXPECT_EQ(grams.size(), 4u);  // |s| + q - 1
  const auto single = QGramIndex::PaddedQGrams("a", 3);
  EXPECT_EQ(single.size(), 3u);
}

TEST(QGramIndexTest, FindsExactString) {
  QGramIndex index({"pizza", "burger", "pasta"}, 2);
  const auto hits = index.SearchWithinDistance("pizza", 0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(index.string_at(hits[0]), "pizza");
}

TEST(QGramIndexTest, FindsTypoNeighbors) {
  QGramIndex index({"pizzahut", "burgerking", "dominos"}, 2);
  const auto hits = index.SearchWithinDistance("pizzahat", 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(index.string_at(hits[0]), "pizzahut");
  EXPECT_TRUE(index.SearchWithinDistance("zzzz", 1).empty());
}

TEST(QGramIndexTest, RepeatedCharacterStrings) {
  // Multiset gram semantics must not reject identical strings.
  QGramIndex index({"aaaa", "aaab"}, 2);
  const auto exact = index.SearchWithinDistance("aaaa", 0);
  ASSERT_EQ(exact.size(), 1u);
  const auto close = index.SearchWithinDistance("aaaa", 1);
  EXPECT_EQ(close.size(), 2u);
}

TEST(QGramIndexTest, NeverMissesWithinBudget) {
  // Property: SearchWithinDistance returns exactly the strings whose edit
  // distance is within budget (candidates are a superset; verification
  // trims them).
  Rng rng(77);
  const std::string alphabet = "abcde";
  std::vector<std::string> dictionary;
  for (int i = 0; i < 200; ++i) {
    std::string word;
    const int len = 1 + static_cast<int>(rng.NextUint64(8));
    for (int k = 0; k < len; ++k) word += alphabet[rng.NextUint64(alphabet.size())];
    dictionary.push_back(word);
  }
  QGramIndex index(dictionary, 2);
  for (int trial = 0; trial < 100; ++trial) {
    std::string query;
    const int len = 1 + static_cast<int>(rng.NextUint64(8));
    for (int k = 0; k < len; ++k) query += alphabet[rng.NextUint64(alphabet.size())];
    for (int budget = 0; budget <= 2; ++budget) {
      std::vector<int32_t> expected;
      for (int32_t id = 0; id < static_cast<int32_t>(dictionary.size()); ++id) {
        if (EditDistance(query, dictionary[id]) <= budget) expected.push_back(id);
      }
      ASSERT_EQ(index.SearchWithinDistance(query, budget), expected)
          << "query " << query << " budget " << budget;
    }
  }
}

class EntityMatcherTest : public testing::Test {
 protected:
  EntityMatcherTest() : tree_(MakeFigure1Hierarchy()) {}
  Hierarchy tree_;
};

TEST_F(EntityMatcherTest, ExactMatch) {
  const EntityMatcher matcher(tree_);
  auto match = matcher.MatchOne("BurgerKing");
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->node, *tree_.FindByLabel("BurgerKing"));
  EXPECT_DOUBLE_EQ(match->phi, 1.0);
  // Case and punctuation insensitive.
  EXPECT_TRUE(matcher.MatchOne("burger-king").has_value());
}

TEST_F(EntityMatcherTest, UnmatchedTokenReturnsNothing) {
  const EntityMatcher matcher(tree_);
  EXPECT_FALSE(matcher.MatchOne("qwertyuiop").has_value());
  EXPECT_TRUE(matcher.MatchAll("qwertyuiop").empty());
}

TEST_F(EntityMatcherTest, SynonymMapsWithPhiOne) {
  EntityMatcher matcher(tree_);
  ASSERT_EQ(matcher.AddSynonym("thecolonel", "KFC"), 1);
  auto match = matcher.MatchOne("thecolonel");
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->node, *tree_.FindByLabel("KFC"));
  EXPECT_DOUBLE_EQ(match->phi, 1.0);
}

TEST_F(EntityMatcherTest, SynonymForUnknownLabelIsIgnored) {
  EntityMatcher matcher(tree_);
  EXPECT_EQ(matcher.AddSynonym("alias", "NoSuchNode"), 0);
  EXPECT_FALSE(matcher.MatchOne("alias").has_value());
}

TEST_F(EntityMatcherTest, ApproximateMatchGetsEditSimilarityPhi) {
  EntityMatcherOptions options;
  options.min_phi = 0.7;
  const EntityMatcher matcher(tree_, options);
  const auto matches = matcher.MatchAll("pizzahat");  // typo of PizzaHut
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].node, *tree_.FindByLabel("PizzaHut"));
  EXPECT_DOUBLE_EQ(matches[0].phi, 7.0 / 8.0);  // paper's example value
}

TEST_F(EntityMatcherTest, ApproximateBelowMinPhiIsDropped) {
  EntityMatcherOptions options;
  options.min_phi = 0.95;
  const EntityMatcher matcher(tree_, options);
  EXPECT_TRUE(matcher.MatchAll("pizzahat").empty());
}

TEST_F(EntityMatcherTest, MatchOneIgnoresApproximate) {
  // The paper's plain K-Join maps elements by exact label only.
  const EntityMatcher matcher(tree_);
  EXPECT_FALSE(matcher.MatchOne("pizzahat").has_value());
}

TEST_F(EntityMatcherTest, MatchAllSortsByPhi) {
  EntityMatcher matcher(tree_);
  matcher.AddSynonym("mcfastfood", "Fastfood");
  const auto matches = matcher.MatchAll("fastfood");
  ASSERT_FALSE(matches.empty());
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i - 1].phi, matches[i].phi);
  }
  EXPECT_EQ(matches[0].node, *tree_.FindByLabel("Fastfood"));
}

TEST_F(EntityMatcherTest, AmbiguousLabelReturnsAllNodes) {
  // Build a small DAG-unfolded tree where "C" occurs twice.
  Dag dag;
  const int32_t a = dag.AddNode("A");
  const int32_t b = dag.AddNode("B");
  const int32_t c = dag.AddNode("C");
  dag.AddEdge(0, a);
  dag.AddEdge(0, b);
  dag.AddEdge(a, c);
  dag.AddEdge(b, c);
  auto tree = ConvertDagToTree(dag);
  ASSERT_TRUE(tree.has_value());
  EntityMatcherOptions options;
  options.enable_approximate = false;
  const EntityMatcher matcher(*tree, options);
  EXPECT_EQ(matcher.MatchAll("c").size(), 2u);
}

TEST_F(EntityMatcherTest, MaxMatchesCapRespected) {
  EntityMatcherOptions options;
  options.min_phi = 0.2;
  options.max_matches = 2;
  const EntityMatcher matcher(tree_, options);
  EXPECT_LE(matcher.MatchAll("pizza").size(), 2u);
}

}  // namespace
}  // namespace kjoin
