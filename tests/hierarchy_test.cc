// Tests for src/hierarchy: tree construction, LCA, DAG conversion,
// generator, and text IO.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/status.h"
#include "hierarchy/dag.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/hierarchy_builder.h"
#include "hierarchy/hierarchy_generator.h"
#include "hierarchy/hierarchy_io.h"
#include "hierarchy/lca.h"

namespace kjoin {
namespace {

TEST(HierarchyBuilderTest, BuildsFigure1Tree) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  EXPECT_EQ(tree.num_nodes(), 20);
  EXPECT_EQ(tree.height(), 6);

  // Depths match the paper's worked examples.
  EXPECT_EQ(tree.depth(*tree.FindByLabel("BurgerKing")), 4);
  EXPECT_EQ(tree.depth(*tree.FindByLabel("KFC")), 4);
  EXPECT_EQ(tree.depth(*tree.FindByLabel("Fastfood")), 3);
  EXPECT_EQ(tree.depth(*tree.FindByLabel("MountainView")), 5);
  EXPECT_EQ(tree.depth(*tree.FindByLabel("GoogleHeadquarters")), 6);
  EXPECT_EQ(tree.depth(*tree.FindByLabel("CA")), 3);
  EXPECT_EQ(tree.depth(*tree.FindByLabel("Manhattan")), 5);
}

TEST(HierarchyTest, ParentChildRelations) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  const NodeId fastfood = *tree.FindByLabel("Fastfood");
  const NodeId burger = *tree.FindByLabel("BurgerKing");
  EXPECT_EQ(tree.parent(burger), fastfood);
  const auto& kids = tree.children(fastfood);
  EXPECT_EQ(kids.size(), 2u);
  EXPECT_TRUE(tree.IsLeaf(burger));
  EXPECT_FALSE(tree.IsLeaf(fastfood));
}

TEST(HierarchyTest, AncestorAtDepth) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  const NodeId gh = *tree.FindByLabel("GoogleHeadquarters");
  EXPECT_EQ(tree.AncestorAtDepth(gh, 6), gh);
  EXPECT_EQ(tree.label(tree.AncestorAtDepth(gh, 5)), "MountainView");
  EXPECT_EQ(tree.label(tree.AncestorAtDepth(gh, 4)), "SanFrancisco");
  EXPECT_EQ(tree.label(tree.AncestorAtDepth(gh, 3)), "CA");
  EXPECT_EQ(tree.label(tree.AncestorAtDepth(gh, 0)), "Root");
}

TEST(HierarchyTest, IsAncestor) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  const NodeId food = *tree.FindByLabel("Food");
  const NodeId kfc = *tree.FindByLabel("KFC");
  const NodeId us = *tree.FindByLabel("US");
  EXPECT_TRUE(tree.IsAncestor(food, kfc));
  EXPECT_TRUE(tree.IsAncestor(kfc, kfc));
  EXPECT_FALSE(tree.IsAncestor(us, kfc));
  EXPECT_FALSE(tree.IsAncestor(kfc, food));
}

TEST(HierarchyTest, NaiveLcaMatchesPaperExamples) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  const NodeId burger = *tree.FindByLabel("BurgerKing");
  const NodeId kfc = *tree.FindByLabel("KFC");
  // Paper §2.1.1: LCA(BurgerKing, KFC) = Fastfood at depth 3.
  EXPECT_EQ(tree.label(tree.LowestCommonAncestorNaive(burger, kfc)), "Fastfood");
  // LCA of a node with itself is itself.
  EXPECT_EQ(tree.LowestCommonAncestorNaive(kfc, kfc), kfc);
  // Across the two top branches the LCA is the root.
  const NodeId manhattan = *tree.FindByLabel("Manhattan");
  EXPECT_EQ(tree.LowestCommonAncestorNaive(burger, manhattan), tree.root());
  // Ancestor-descendant pair.
  const NodeId mv = *tree.FindByLabel("MountainView");
  const NodeId gh = *tree.FindByLabel("GoogleHeadquarters");
  EXPECT_EQ(tree.LowestCommonAncestorNaive(mv, gh), mv);
}

TEST(HierarchyTest, LeavesAndStats) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  const HierarchyStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.num_nodes, 20);
  EXPECT_EQ(stats.height, 6);
  EXPECT_EQ(stats.num_leaves, static_cast<int64_t>(tree.leaves().size()));
  EXPECT_GE(stats.max_fanout, 2);
  EXPECT_GE(stats.min_fanout, 1);
}

TEST(LcaIndexTest, MatchesNaiveOnFigure1) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  const LcaIndex lca(tree);
  for (NodeId x = 0; x < tree.num_nodes(); ++x) {
    for (NodeId y = 0; y < tree.num_nodes(); ++y) {
      EXPECT_EQ(lca.Lca(x, y), tree.LowestCommonAncestorNaive(x, y))
          << tree.label(x) << " vs " << tree.label(y);
    }
  }
}

TEST(LcaIndexTest, MatchesNaiveOnRandomTrees) {
  Rng rng(99);
  for (uint64_t seed : {1u, 2u, 3u}) {
    HierarchyGenParams params;
    params.num_nodes = 500;
    params.height = 5;
    params.avg_fanout = 4.0;
    params.max_fanout = 12;
    params.seed = seed;
    const Hierarchy tree = GenerateHierarchy(params);
    const LcaIndex lca(tree);
    for (int trial = 0; trial < 2000; ++trial) {
      const NodeId x = static_cast<NodeId>(rng.NextUint64(tree.num_nodes()));
      const NodeId y = static_cast<NodeId>(rng.NextUint64(tree.num_nodes()));
      ASSERT_EQ(lca.Lca(x, y), tree.LowestCommonAncestorNaive(x, y));
    }
  }
}

TEST(LcaIndexTest, SingleNodeTree) {
  HierarchyBuilder builder("OnlyRoot");
  const Hierarchy tree = std::move(builder).Build();
  const LcaIndex lca(tree);
  EXPECT_EQ(lca.Lca(0, 0), 0);
  EXPECT_EQ(lca.LcaDepth(0, 0), 0);
}

// Degenerate shape: a pure path (every node a single child), so depth runs
// all the way to n-1 and the sparse table's deepest levels are exercised.
TEST(LcaIndexTest, PurePathMatchesNaive) {
  const int n = 400;
  std::vector<NodeId> parents(n);
  std::vector<std::string> labels(n);
  parents[0] = kInvalidNode;
  labels[0] = "n0";
  for (int v = 1; v < n; ++v) {
    parents[v] = static_cast<NodeId>(v - 1);
    labels[v] = "n" + std::to_string(v);
  }
  const Hierarchy tree(std::move(parents), std::move(labels));
  EXPECT_EQ(tree.height(), n - 1);
  const LcaIndex lca(tree);
  // On a path the LCA is always the shallower endpoint.
  EXPECT_EQ(lca.Lca(10, 250), 10);
  EXPECT_EQ(lca.LcaDepth(0, n - 1), 0);
  EXPECT_EQ(lca.LcaDepth(n - 1, n - 1), n - 1);
  Rng rng(11);
  for (int trial = 0; trial < 4000; ++trial) {
    const NodeId x = static_cast<NodeId>(rng.NextUint64(n));
    const NodeId y = static_cast<NodeId>(rng.NextUint64(n));
    ASSERT_EQ(lca.Lca(x, y), tree.LowestCommonAncestorNaive(x, y));
    ASSERT_EQ(lca.LcaDepth(x, y), tree.depth(lca.Lca(x, y)));
  }
}

// Degenerate shape: a star (root plus n-1 leaves) — maximal fanout, Euler
// tour revisits the root between every pair of children.
TEST(LcaIndexTest, StarMatchesNaive) {
  const int n = 2001;
  std::vector<NodeId> parents(n);
  std::vector<std::string> labels(n);
  parents[0] = kInvalidNode;
  labels[0] = "hub";
  for (int v = 1; v < n; ++v) {
    parents[v] = 0;
    labels[v] = "leaf" + std::to_string(v);
  }
  const Hierarchy tree(std::move(parents), std::move(labels));
  EXPECT_EQ(tree.height(), 1);
  const LcaIndex lca(tree);
  Rng rng(13);
  for (int trial = 0; trial < 4000; ++trial) {
    const NodeId x = static_cast<NodeId>(rng.NextUint64(n));
    const NodeId y = static_cast<NodeId>(rng.NextUint64(n));
    ASSERT_EQ(lca.Lca(x, y), tree.LowestCommonAncestorNaive(x, y));
    // Distinct leaves meet at the hub; anything involving a node and
    // itself, or the hub, is resolved by depth alone.
    ASSERT_EQ(lca.LcaDepth(x, y), (x == y && x != 0) ? 1 : 0);
  }
}

// The CSR child layout must agree with the parent array: each child list
// ascending, every child's parent pointing back, and exactly n-1 edges.
TEST(HierarchyTest, CsrChildrenMatchParents) {
  HierarchyGenParams params;
  params.num_nodes = 700;
  params.height = 6;
  params.avg_fanout = 4.0;
  params.max_fanout = 10;
  params.seed = 21;
  const Hierarchy tree = GenerateHierarchy(params);
  int64_t edges = 0;
  for (NodeId v = 0; v < tree.num_nodes(); ++v) {
    const auto kids = tree.children(v);
    EXPECT_TRUE(std::is_sorted(kids.begin(), kids.end()));
    for (NodeId child : kids) {
      EXPECT_EQ(tree.parent(child), v);
    }
    edges += static_cast<int64_t>(kids.size());
    EXPECT_EQ(tree.IsLeaf(v), kids.empty());
  }
  EXPECT_EQ(edges, tree.num_nodes() - 1);
}

// FromParts treats its input as untrusted (snapshot bytes whose CRCs an
// attacker can recompute): forged interior CSR offsets must be rejected
// before the replay loop can index child_nodes out of bounds. Runs under
// the asan preset.
TEST(HierarchyTest, FromPartsRejectsForgedCsrOffsets) {
  // Valid baseline: root 0 with children {1, 2}; node 2 has child 3.
  const auto make_parts = [] {
    HierarchyParts parts;
    parts.parents = {kInvalidNode, 0, 0, 2};
    parts.labels = {"r", "a", "b", "c"};
    parts.depths = {0, 1, 1, 2};
    parts.child_offsets = {0, 2, 2, 3, 3};
    parts.child_nodes = {1, 2, 3};
    parts.leaves = {1, 3};
    parts.height = 2;
    return parts;
  };
  ASSERT_TRUE(Hierarchy::FromParts(make_parts()).ok());

  // A negative interior offset seeds node 2's replay cursor below zero
  // while still passing the `slot >= child_offsets[p + 1]` guard.
  HierarchyParts negative = make_parts();
  negative.child_offsets[2] = -50;
  StatusOr<Hierarchy> forged = Hierarchy::FromParts(std::move(negative));
  ASSERT_FALSE(forged.ok());
  EXPECT_TRUE(IsInvalidArgument(forged.status())) << forged.status().ToString();

  // An oversized interior pair passes the same guard with a slot far past
  // child_nodes.size().
  HierarchyParts oversized = make_parts();
  oversized.child_offsets[2] = 100;
  oversized.child_offsets[3] = 200;
  forged = Hierarchy::FromParts(std::move(oversized));
  ASSERT_FALSE(forged.ok());
  EXPECT_TRUE(IsInvalidArgument(forged.status())) << forged.status().ToString();
}

TEST(HierarchyBuilderTest, AddPathReusesNodes) {
  HierarchyBuilder builder;
  const NodeId a = builder.AddPath({"Food", "Pizza"});
  const NodeId b = builder.AddPath({"Food", "Burgers"});
  const NodeId c = builder.AddPath({"Food", "Pizza"});
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  const Hierarchy tree = std::move(builder).Build();
  EXPECT_EQ(tree.num_nodes(), 4);  // Root, Food, Pizza, Burgers
}

TEST(HierarchyGeneratorTest, MatchesTable2Shape) {
  const Hierarchy tree = GenerateHierarchy(HierarchyGenParams{});
  const HierarchyStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.num_nodes, 4222);  // Table 2
  EXPECT_EQ(stats.height, 6);
  EXPECT_NEAR(stats.avg_fanout, 7.0, 1.5);
  EXPECT_LE(stats.max_fanout, 49);
  EXPECT_GE(stats.max_fanout, 25);
  EXPECT_GE(stats.min_fanout, 1);
}

TEST(HierarchyGeneratorTest, DeterministicPerSeed) {
  HierarchyGenParams params;
  params.num_nodes = 300;
  params.height = 4;
  const Hierarchy a = GenerateHierarchy(params);
  const Hierarchy b = GenerateHierarchy(params);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    ASSERT_EQ(a.parent(v), b.parent(v));
    ASSERT_EQ(a.label(v), b.label(v));
  }
}

TEST(HierarchyGeneratorTest, UniqueLabels) {
  HierarchyGenParams params;
  params.num_nodes = 1000;
  params.height = 5;
  params.avg_fanout = 5.0;
  const Hierarchy tree = GenerateHierarchy(params);
  std::vector<std::string> labels;
  for (NodeId v = 0; v < tree.num_nodes(); ++v) labels.push_back(tree.label(v));
  std::sort(labels.begin(), labels.end());
  EXPECT_TRUE(std::adjacent_find(labels.begin(), labels.end()) == labels.end());
}

TEST(HierarchyGeneratorTest, LeavesAtManyDepths) {
  const Hierarchy tree = GenerateHierarchy(HierarchyGenParams{});
  std::vector<int> leaf_depth_counts(tree.height() + 1, 0);
  for (NodeId leaf : tree.leaves()) ++leaf_depth_counts[tree.depth(leaf)];
  int depths_with_leaves = 0;
  for (int d = 2; d <= tree.height(); ++d) {
    if (leaf_depth_counts[d] > 0) ++depths_with_leaves;
  }
  EXPECT_GE(depths_with_leaves, 3) << "elements should occur at varied depths";
}

TEST(DagTest, SimpleDiamondUnfoldsToTree) {
  // Root -> {A, B} -> C (C has two parents).
  Dag dag;
  const int32_t a = dag.AddNode("A");
  const int32_t b = dag.AddNode("B");
  const int32_t c = dag.AddNode("C");
  dag.AddEdge(0, a);
  dag.AddEdge(0, b);
  dag.AddEdge(a, c);
  dag.AddEdge(b, c);
  auto tree = ConvertDagToTree(dag);
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->num_nodes(), 5);  // Root, A, C@A, B, C@B
  EXPECT_EQ(tree->NodesWithLabel("C").size(), 2u);
  for (NodeId copy : tree->NodesWithLabel("C")) {
    EXPECT_EQ(tree->depth(copy), 2);
  }
}

TEST(DagTest, SubtreeBelowDuplicatedNodeIsCopied) {
  Dag dag;
  const int32_t a = dag.AddNode("A");
  const int32_t b = dag.AddNode("B");
  const int32_t c = dag.AddNode("C");
  const int32_t d = dag.AddNode("D");  // child of the duplicated C
  dag.AddEdge(0, a);
  dag.AddEdge(0, b);
  dag.AddEdge(a, c);
  dag.AddEdge(b, c);
  dag.AddEdge(c, d);
  auto tree = ConvertDagToTree(dag);
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->NodesWithLabel("D").size(), 2u);
  EXPECT_EQ(tree->num_nodes(), 7);
}

TEST(DagTest, RejectsCycle) {
  Dag dag;
  const int32_t a = dag.AddNode("A");
  const int32_t b = dag.AddNode("B");
  dag.AddEdge(0, a);
  dag.AddEdge(a, b);
  dag.AddEdge(b, a);
  EXPECT_FALSE(ConvertDagToTree(dag).has_value());
}

TEST(DagTest, RejectsUnreachableNode) {
  Dag dag;
  dag.AddNode("Orphan");  // never linked
  EXPECT_FALSE(ConvertDagToTree(dag).has_value());
}

TEST(DagTest, RejectsExponentialBlowup) {
  // A stack of diamonds doubles the tree per level.
  Dag dag;
  int32_t top = 0;
  for (int level = 0; level < 30; ++level) {
    const int32_t left = dag.AddNode("L" + std::to_string(level));
    const int32_t right = dag.AddNode("R" + std::to_string(level));
    const int32_t bottom = dag.AddNode("M" + std::to_string(level));
    dag.AddEdge(top, left);
    dag.AddEdge(top, right);
    dag.AddEdge(left, bottom);
    dag.AddEdge(right, bottom);
    top = bottom;
  }
  EXPECT_FALSE(ConvertDagToTree(dag, /*max_tree_nodes=*/100000).has_value());
}

TEST(DagTest, PlainTreeRoundTrips) {
  Dag dag;
  const int32_t a = dag.AddNode("A");
  const int32_t b = dag.AddNode("B");
  dag.AddEdge(0, a);
  dag.AddEdge(a, b);
  auto tree = ConvertDagToTree(dag);
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->num_nodes(), 3);
  EXPECT_EQ(tree->depth(*tree->FindByLabel("B")), 2);
}

TEST(HierarchyIoTest, RoundTrip) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  const std::string text = SerializeHierarchy(tree);
  auto parsed = ParseHierarchy(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->num_nodes(), tree.num_nodes());
  for (NodeId v = 0; v < tree.num_nodes(); ++v) {
    EXPECT_EQ(parsed->label(v), tree.label(v));
    EXPECT_EQ(parsed->depth(v), tree.depth(v));
  }
}

TEST(HierarchyIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseHierarchy("0\t-1").has_value());            // missing label
  EXPECT_FALSE(ParseHierarchy("1\t-1\tRoot").has_value());      // non-dense ids
  EXPECT_FALSE(ParseHierarchy("0\t5\tRoot").has_value());       // bad root parent
  EXPECT_FALSE(ParseHierarchy("0\t-1\tRoot\n1\t2\tA").has_value());  // forward parent
  EXPECT_FALSE(ParseHierarchy("").has_value());                 // empty
}

TEST(HierarchyIoTest, IgnoresCommentsAndBlankLines) {
  auto parsed = ParseHierarchy("# comment\n\n0\t-1\tRoot\n1\t0\tA\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_nodes(), 2);
}

TEST(HierarchyIoTest, FileRoundTrip) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  const std::string path = testing::TempDir() + "/kjoin_hierarchy_test.txt";
  ASSERT_TRUE(WriteHierarchyFile(tree, path).ok());
  auto loaded = ReadHierarchyFile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_nodes(), tree.num_nodes());
}

TEST(HierarchyIoTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(ReadHierarchyFile("/nonexistent/path/tree.txt").has_value());
}

}  // namespace
}  // namespace kjoin
