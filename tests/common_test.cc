// Tests for src/common: rng, string_util, flags, timer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>

#include "common/flags.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace kjoin {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(123);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextUint64(kBuckets)];
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    EXPECT_NEAR(counts[bucket], kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextInt(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoolEdgeCases) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(RngTest, NextWeightedRespectsWeights) {
  Rng rng(21);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) ++counts[rng.NextWeighted({1.0, 2.0, 7.0})];
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.2, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
}

TEST(RngTest, NextWeightedSkipsZeroWeights) {
  Rng rng(33);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.NextWeighted({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(8);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("BurgerKing42"), "burgerking42");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  const auto pieces = Split("a,,b,", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
  EXPECT_EQ(pieces[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  const auto pieces = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "foo");
  EXPECT_EQ(pieces[2], "baz");
}

TEST(StringUtilTest, JoinRoundTrips) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x y \t"), "x y");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("prefix filter", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("kjoin.cc", ".cc"));
  EXPECT_FALSE(EndsWith("cc", "kjoin.cc"));
}

TEST(StringUtilTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

TEST(FlagsTest, ParsesAllTypes) {
  FlagSet flags("test");
  int64_t* n = flags.Int("n", 10, "count");
  double* tau = flags.Double("tau", 0.5, "threshold");
  bool* verbose = flags.Bool("verbose", false, "chatty");
  std::string* name = flags.String("name", "poi", "dataset");

  const char* argv[] = {"prog", "--n=42", "--tau", "0.9", "--verbose", "--name=tweet"};
  ASSERT_TRUE(flags.Parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(*n, 42);
  EXPECT_DOUBLE_EQ(*tau, 0.9);
  EXPECT_TRUE(*verbose);
  EXPECT_EQ(*name, "tweet");
}

TEST(FlagsTest, NegatedBool) {
  FlagSet flags("test");
  bool* pruning = flags.Bool("pruning", true, "");
  const char* argv[] = {"prog", "--nopruning"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)));
  EXPECT_FALSE(*pruning);
}

TEST(FlagsTest, RejectsUnknownFlag) {
  FlagSet flags("test");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
}

TEST(FlagsTest, RejectsBadValue) {
  FlagSet flags("test");
  flags.Int("n", 1, "");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
}

TEST(FlagsTest, CollectsPositional) {
  FlagSet flags("test");
  const char* argv[] = {"prog", "one", "two"};
  ASSERT_TRUE(flags.Parse(3, const_cast<char**>(argv)));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "one");
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  if (sink < 0) std::abort();  // keep the loop from being optimized away
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());
}

TEST(TimerTest, StopWatchAccumulates) {
  StopWatch watch;
  watch.Start();
  watch.Stop();
  const double first = watch.TotalSeconds();
  watch.Start();
  watch.Stop();
  EXPECT_GE(watch.TotalSeconds(), first);
  watch.Reset();
  EXPECT_EQ(watch.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace kjoin
