// libFuzzer harness over the untrusted-input parsers (docs/robustness.md).
// Built only with -DKJOIN_FUZZ=ON (Clang); run by hand:
//
//   cmake --preset default -DKJOIN_FUZZ=ON -DCMAKE_CXX_COMPILER=clang++
//   cmake --build build --target fuzz_parse -j
//   ./build/tests/fuzz_parse -max_total_time=60
//
// Contract under test: arbitrary bytes either parse or return a non-OK
// Status — no aborts, no leaks, no out-of-bounds reads. The first input
// byte routes to a parser so one corpus covers both formats.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "data/dataset_io.h"
#include "hierarchy/hierarchy_io.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const std::string_view text(reinterpret_cast<const char*>(data + 1), size - 1);
  if (data[0] % 2 == 0) {
    const auto parsed = kjoin::ParseHierarchy(text, "fuzz");
    if (parsed.ok()) {
      // Round-trip: anything we accept must serialize and re-parse equal.
      const auto again = kjoin::ParseHierarchy(kjoin::SerializeHierarchy(*parsed), "fuzz2");
      if (!again.ok() || again->num_nodes() != parsed->num_nodes()) __builtin_trap();
    }
  } else {
    const auto parsed = kjoin::ParseDataset(text, "fuzz");
    if (parsed.ok()) {
      const auto again =
          kjoin::ParseDataset(kjoin::SerializeDataset(*parsed), "fuzz2");
      if (!again.ok() || again->records.size() != parsed->records.size()) {
        __builtin_trap();
      }
    }
  }
  return 0;
}
