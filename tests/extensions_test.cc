// Tests for the system layers around the join: KJoinIndex (similarity
// search), result clustering, dataset IO, and parallel verification.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/naive_join.h"
#include "core/clustering.h"
#include "core/kjoin_index.h"
#include "data/benchmark_suite.h"
#include "data/dataset_io.h"
#include "hierarchy/hierarchy_builder.h"

namespace kjoin {
namespace {

// ------------------------------------------------------------ KJoinIndex

class SearchFixture : public testing::Test {
 protected:
  SearchFixture() : data_(MakeResBenchmark()) {
    prepared_ = BuildObjects(data_.hierarchy, data_.dataset, /*multi_mapping=*/true, 0.7);
    options_.delta = 0.7;
    options_.tau = 0.6;
    options_.plus_mode = true;
  }

  BenchmarkData data_;
  PreparedObjects prepared_;
  KJoinOptions options_;
};

TEST_F(SearchFixture, SearchMatchesLinearScan) {
  const KJoinIndex index(data_.hierarchy, options_, prepared_.objects);
  const LcaIndex lca(data_.hierarchy);
  const ElementSimilarity esim(lca);
  const ObjectSimilarity osim(esim, options_.delta, options_.set_metric);

  for (int32_t q = 0; q < 40; ++q) {
    const Object& query = prepared_.objects[q];
    std::set<int32_t> expected;
    for (int32_t i = 0; i < static_cast<int32_t>(prepared_.objects.size()); ++i) {
      if (i == q) continue;
      if (osim.Similarity(query, prepared_.objects[i]) >= options_.tau - 1e-9) {
        expected.insert(i);
      }
    }
    std::set<int32_t> got;
    for (const SearchHit& hit : index.Search(query)) {
      if (hit.object_index != q) got.insert(hit.object_index);
    }
    ASSERT_EQ(got, expected) << "query " << q;
  }
}

TEST_F(SearchFixture, HitsSortedBySimilarity) {
  const KJoinIndex index(data_.hierarchy, options_, prepared_.objects);
  const auto hits = index.Search(prepared_.objects[3]);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].similarity, hits[i].similarity);
  }
  // The object itself is indexed and must be a perfect hit.
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].object_index, 3);
  EXPECT_NEAR(hits[0].similarity, 1.0, 1e-9);
}

TEST_F(SearchFixture, TopKRespectsKAndThreshold) {
  const KJoinIndex index(data_.hierarchy, options_, prepared_.objects);
  const auto all = index.Search(prepared_.objects[5]);
  const auto top2 = index.SearchTopK(prepared_.objects[5], 2, options_.tau);
  EXPECT_LE(top2.size(), 2u);
  for (size_t i = 0; i < top2.size(); ++i) EXPECT_EQ(top2[i], all[i]);
  const auto strict = index.SearchTopK(prepared_.objects[5], 0, 0.99);
  for (const SearchHit& hit : strict) EXPECT_GE(hit.similarity, 0.99 - 1e-9);
}

TEST_F(SearchFixture, QueryWithUnknownTokensIsSafe) {
  const KJoinIndex index(data_.hierarchy, options_, prepared_.objects);
  Object query = prepared_.builder->Build(9999, {"zzzzneverseen", "qqqqalsonew"});
  EXPECT_TRUE(index.Search(query).empty());
}

TEST_F(SearchFixture, InsertMakesObjectSearchable) {
  // Start with the first half indexed, insert the second half, and check
  // each inserted object finds itself and its duplicates.
  std::vector<Object> half(prepared_.objects.begin(),
                           prepared_.objects.begin() + prepared_.objects.size() / 2);
  KJoinIndex index(data_.hierarchy, options_, std::move(half));
  const int64_t before = index.num_indexed();
  for (size_t i = static_cast<size_t>(before); i < prepared_.objects.size(); ++i) {
    const int32_t at = index.Insert(prepared_.objects[i]);
    ASSERT_EQ(at, static_cast<int32_t>(i));
  }
  EXPECT_EQ(index.num_indexed(), static_cast<int64_t>(prepared_.objects.size()));
  // Every object must now retrieve itself as a perfect hit.
  for (int32_t q : {0, 100, 500, 863}) {
    const auto hits = index.Search(prepared_.objects[q]);
    ASSERT_FALSE(hits.empty()) << q;
    EXPECT_EQ(hits[0].object_index, q);
    EXPECT_NEAR(hits[0].similarity, 1.0, 1e-9);
  }
}

TEST_F(SearchFixture, InsertMatchesRebuiltIndex) {
  std::vector<Object> half(prepared_.objects.begin(),
                           prepared_.objects.begin() + 400);
  KJoinIndex incremental(data_.hierarchy, options_, std::move(half));
  for (size_t i = 400; i < prepared_.objects.size(); ++i) {
    incremental.Insert(prepared_.objects[i]);
  }
  const KJoinIndex rebuilt(data_.hierarchy, options_, prepared_.objects);
  for (int32_t q = 0; q < 30; ++q) {
    ASSERT_EQ(incremental.Search(prepared_.objects[q]),
              rebuilt.Search(prepared_.objects[q]))
        << "query " << q;
  }
}

TEST_F(SearchFixture, CandidateCountIsBounded) {
  const KJoinIndex index(data_.hierarchy, options_, prepared_.objects);
  index.Search(prepared_.objects[0]);
  EXPECT_LE(index.last_candidates(), index.num_indexed());
}

// ------------------------------------------------------------ clustering

TEST(ClusteringTest, ConnectedComponents) {
  const Clustering clustering = ClusterPairs(6, {{0, 1}, {1, 2}, {4, 5}});
  EXPECT_EQ(clustering.num_clusters, 3);  // {0,1,2}, {3}, {4,5}
  EXPECT_EQ(clustering.cluster_of[0], clustering.cluster_of[2]);
  EXPECT_NE(clustering.cluster_of[0], clustering.cluster_of[3]);
  EXPECT_EQ(clustering.cluster_of[4], clustering.cluster_of[5]);
  EXPECT_EQ(clustering.clusters[clustering.cluster_of[0]].size(), 3u);
}

TEST(ClusteringTest, NoPairsMeansSingletons) {
  const Clustering clustering = ClusterPairs(4, {});
  EXPECT_EQ(clustering.num_clusters, 4);
  for (const auto& cluster : clustering.clusters) EXPECT_EQ(cluster.size(), 1u);
}

TEST(ClusteringTest, DuplicateAndReversedPairs) {
  const Clustering a = ClusterPairs(3, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(a.num_clusters, 2);
}

TEST(ClusteringTest, PerfectClusteringScoresOne) {
  const std::vector<int32_t> truth = {0, 0, 1, 1, -1};
  const Clustering predicted = ClusterPairs(5, {{0, 1}, {2, 3}});
  const ClusterQuality quality = EvaluateClustering(predicted, truth);
  EXPECT_DOUBLE_EQ(quality.precision, 1.0);
  EXPECT_DOUBLE_EQ(quality.recall, 1.0);
  EXPECT_DOUBLE_EQ(quality.f1, 1.0);
}

TEST(ClusteringTest, OverMergingHurtsPrecision) {
  const std::vector<int32_t> truth = {0, 0, 1, 1};
  // Everything in one blob: 6 predicted pairs, 2 true, 2 common.
  const Clustering predicted = ClusterPairs(4, {{0, 1}, {1, 2}, {2, 3}});
  const ClusterQuality quality = EvaluateClustering(predicted, truth);
  EXPECT_EQ(quality.predicted_pairs, 6);
  EXPECT_EQ(quality.truth_pairs, 2);
  EXPECT_EQ(quality.common_pairs, 2);
  EXPECT_NEAR(quality.precision, 2.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(quality.recall, 1.0);
}

TEST(ClusteringTest, UnderMergingHurtsRecall) {
  const std::vector<int32_t> truth = {0, 0, 0};
  const Clustering predicted = ClusterPairs(3, {{0, 1}});
  const ClusterQuality quality = EvaluateClustering(predicted, truth);
  EXPECT_DOUBLE_EQ(quality.precision, 1.0);
  EXPECT_NEAR(quality.recall, 1.0 / 3.0, 1e-12);
}

TEST(ClusteringTest, EndToEndDeduplication) {
  const BenchmarkData data = MakeResBenchmark();
  const PreparedObjects prepared = BuildObjects(data.hierarchy, data.dataset, true, 0.5);
  KJoinOptions options;
  options.delta = 0.5;
  // Transitive closure amplifies any false pair into a merged blob, so
  // clustering wants a stricter tau than the pairwise join.
  options.tau = 0.75;
  options.plus_mode = true;
  const JoinResult result = KJoin(data.hierarchy, options).SelfJoin(prepared.objects);
  const Clustering clustering =
      ClusterPairs(static_cast<int64_t>(prepared.objects.size()), result.pairs);
  std::vector<int32_t> truth;
  for (const Record& record : data.dataset.records) truth.push_back(record.cluster);
  const ClusterQuality quality = EvaluateClustering(clustering, truth);
  EXPECT_GT(quality.f1, 0.6);
  EXPECT_GT(quality.precision, 0.7);
}

// ------------------------------------------------------------ dataset IO

TEST(DatasetIoTest, RoundTrip) {
  Dataset dataset;
  dataset.name = "mini";
  dataset.records = {{0, 3, {"pizza", "nyc"}}, {1, -1, {"sushi"}}, {2, 3, {"pizza", "ny"}}};
  dataset.synonyms = {{"bigapple", "nyc"}};
  auto parsed = ParseDataset(SerializeDataset(dataset), "mini");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->records.size(), 3u);
  EXPECT_EQ(parsed->records[0].tokens, dataset.records[0].tokens);
  EXPECT_EQ(parsed->records[0].cluster, 3);
  EXPECT_EQ(parsed->records[1].cluster, -1);
  EXPECT_EQ(parsed->synonyms, dataset.synonyms);
}

TEST(DatasetIoTest, GeneratedDatasetRoundTrips) {
  const BenchmarkData data = MakePoiBenchmark(200);
  auto parsed = ParseDataset(SerializeDataset(data.dataset));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->records.size(), data.dataset.records.size());
  for (size_t i = 0; i < parsed->records.size(); ++i) {
    ASSERT_EQ(parsed->records[i].tokens, data.dataset.records[i].tokens);
    ASSERT_EQ(parsed->records[i].cluster, data.dataset.records[i].cluster);
  }
}

TEST(DatasetIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseDataset("X\t1\ta").has_value());        // unknown type
  EXPECT_FALSE(ParseDataset("R\tabc\ttok").has_value());    // bad cluster
  EXPECT_FALSE(ParseDataset("R\t1").has_value());           // no tokens
  EXPECT_FALSE(ParseDataset("S\talias").has_value());       // synonym arity
}

TEST(DatasetIoTest, IgnoresCommentsAndEmptyInput) {
  auto empty = ParseDataset("# nothing here\n\n");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->records.empty());
}

TEST(DatasetIoTest, FileRoundTrip) {
  const BenchmarkData data = MakeResBenchmark();
  const std::string path = testing::TempDir() + "/kjoin_dataset_test.tsv";
  ASSERT_TRUE(WriteDatasetFile(data.dataset, path).ok());
  auto loaded = ReadDatasetFile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->records.size(), data.dataset.records.size());
  EXPECT_FALSE(ReadDatasetFile("/nonexistent/file.tsv").has_value());
}

// ------------------------------------------------- parallel verification

TEST(ParallelJoinTest, ThreadsProduceIdenticalResults) {
  const BenchmarkData data = MakePoiBenchmark(1500, 21);
  const PreparedObjects prepared = BuildObjects(data.hierarchy, data.dataset, false);
  KJoinOptions options;
  options.delta = 0.8;
  options.tau = 0.8;

  const JoinResult sequential = KJoin(data.hierarchy, options).SelfJoin(prepared.objects);
  for (int threads : {2, 4, 8}) {
    options.num_threads = threads;
    const JoinResult parallel = KJoin(data.hierarchy, options).SelfJoin(prepared.objects);
    ASSERT_EQ(parallel.pairs, sequential.pairs) << threads << " threads";
    ASSERT_EQ(parallel.stats.candidates, sequential.stats.candidates);
    ASSERT_EQ(parallel.stats.verify.pairs_verified,
              sequential.stats.verify.pairs_verified);
  }
}

TEST(ParallelJoinTest, RsJoinParallelMatchesSequential) {
  const BenchmarkData data = MakeTweetBenchmark(1200, 23);
  const PreparedObjects prepared = BuildObjects(data.hierarchy, data.dataset, false);
  std::vector<Object> left(prepared.objects.begin(), prepared.objects.begin() + 600);
  std::vector<Object> right(prepared.objects.begin() + 600, prepared.objects.end());
  KJoinOptions options;
  options.delta = 0.8;
  options.tau = 0.75;
  const JoinResult sequential = KJoin(data.hierarchy, options).Join(left, right);
  options.num_threads = 4;
  const JoinResult parallel = KJoin(data.hierarchy, options).Join(left, right);
  EXPECT_EQ(parallel.pairs, sequential.pairs);
}

}  // namespace
}  // namespace kjoin
