// Tests for src/core primitives: element/object similarity, signatures,
// global order, prefixes, verifier. Most expectations replay worked
// examples from the paper (Figure 1 tree, Table 1 objects).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "core/element_similarity.h"
#include "core/sim_cache.h"
#include "core/object.h"
#include "core/object_similarity.h"
#include "core/prefix.h"
#include "core/signature.h"
#include "core/verifier.h"
#include "hierarchy/hierarchy_builder.h"
#include "hierarchy/lca.h"
#include "matching/hungarian.h"
#include "text/entity_matcher.h"

namespace kjoin {
namespace {

// Shared fixture: Figure 1 hierarchy + matcher + builders.
class PaperFixture : public testing::Test {
 protected:
  PaperFixture()
      : tree_(MakeFigure1Hierarchy()),
        lca_(tree_),
        esim_(lca_),
        matcher_(tree_),
        builder_(matcher_, /*multi_mapping=*/false) {}

  Object Make(int32_t id, const std::vector<std::string>& tokens) {
    return builder_.Build(id, tokens);
  }

  NodeId Node(const std::string& label) { return *tree_.FindByLabel(label); }

  Hierarchy tree_;
  LcaIndex lca_;
  ElementSimilarity esim_;
  EntityMatcher matcher_;
  ObjectBuilder builder_;
};

// ---------------------------------------------------------------- elements

TEST_F(PaperFixture, ElementSimilarityPaperExamples) {
  // §2.1.1: SIM(BurgerKing, KFC) = 3/4.
  EXPECT_DOUBLE_EQ(esim_.NodeSim(Node("BurgerKing"), Node("KFC")), 3.0 / 4.0);
  // §2.2: SIM(MountainView, GoogleHeadquarters) = 5/6.
  EXPECT_DOUBLE_EQ(esim_.NodeSim(Node("MountainView"), Node("GoogleHeadquarters")), 5.0 / 6.0);
  // §3.1: SIM(BurgerKing, Manhattan) = 0 (LCA is the root).
  EXPECT_DOUBLE_EQ(esim_.NodeSim(Node("BurgerKing"), Node("Manhattan")), 0.0);
  // §2.1.2 Figure 2 edges: BK-PizzaHut 0.5, MV-CA 0.6.
  EXPECT_DOUBLE_EQ(esim_.NodeSim(Node("BurgerKing"), Node("PizzaHut")), 0.5);
  EXPECT_DOUBLE_EQ(esim_.NodeSim(Node("MountainView"), Node("CA")), 0.6);
  // Identity.
  EXPECT_DOUBLE_EQ(esim_.NodeSim(Node("KFC"), Node("KFC")), 1.0);
  // §4.1: SIM(BurgerKing, Dominos) = 2/4.
  EXPECT_DOUBLE_EQ(esim_.NodeSim(Node("BurgerKing"), Node("Dominos")), 0.5);
}

TEST_F(PaperFixture, ElementSimilaritySymmetric) {
  for (NodeId x = 0; x < tree_.num_nodes(); ++x) {
    for (NodeId y = 0; y < tree_.num_nodes(); ++y) {
      ASSERT_DOUBLE_EQ(esim_.NodeSim(x, y), esim_.NodeSim(y, x));
    }
  }
}

TEST_F(PaperFixture, WuPalmerMetric) {
  const ElementSimilarity wp(lca_, ElementMetric::kWuPalmer);
  // Wu&Palmer: 2*3/(4+4) = 3/4 for BurgerKing-KFC.
  EXPECT_DOUBLE_EQ(wp.NodeSim(Node("BurgerKing"), Node("KFC")), 3.0 / 4.0);
  // MountainView-GoogleHeadquarters: 2*5/(5+6) = 10/11.
  EXPECT_DOUBLE_EQ(wp.NodeSim(Node("MountainView"), Node("GoogleHeadquarters")), 10.0 / 11.0);
  EXPECT_DOUBLE_EQ(wp.NodeSim(Node("KFC"), Node("KFC")), 1.0);
}

TEST_F(PaperFixture, IdenticalTokensAreSimilarEvenUnmatched) {
  const Object a = Make(0, {"zzztoken"});
  const Object b = Make(1, {"zzztoken"});
  EXPECT_DOUBLE_EQ(esim_.Sim(a.elements[0], b.elements[0]), 1.0);
  const Object c = Make(2, {"othertoken"});
  EXPECT_DOUBLE_EQ(esim_.Sim(a.elements[0], c.elements[0]), 0.0);
}

TEST_F(PaperFixture, MultiMappingUsesPhiProduct) {
  // K-Join+ object with a typo: "pizzahat" maps to PizzaHut with φ = 7/8.
  ObjectBuilder plus_builder(matcher_, /*multi_mapping=*/true);
  const Object typo = plus_builder.Build(0, {"pizzahat"});
  const Object exact = plus_builder.Build(1, {"pizzahut"});
  ASSERT_TRUE(typo.elements[0].has_node());
  // Eq. 2: SIM = (d_lca / max depth) * φ * φ' = 1 * 7/8 * 1.
  EXPECT_DOUBLE_EQ(esim_.Sim(typo.elements[0], exact.elements[0]), 7.0 / 8.0);
  // Against a sibling: (3/4) * (7/8).
  const Object dominos = plus_builder.Build(2, {"dominos"});
  EXPECT_DOUBLE_EQ(esim_.Sim(typo.elements[0], dominos.elements[0]), 3.0 / 4.0 * 7.0 / 8.0);
}

TEST_F(PaperFixture, MultiMappingSimScansAllPairsUnderPhiBound) {
  // Hand-built elements (distinct tokens, φ < 1) where the BEST pair has
  // the LOWEST φ product. A premature exit on the φ ceiling must not skip
  // it, and the old `best >= 1` exit could never fire here at all.
  Element x;
  x.token = "x";
  x.token_id = 100;
  x.mappings = {{Node("BurgerKing"), 0.9}, {Node("MountainView"), 0.85}};
  Element y;
  y.token = "y";
  y.token_id = 200;
  y.mappings = {{Node("Manhattan"), 0.9}, {Node("GoogleHeadquarters"), 0.85}};
  // Pair similarities: BK-Manhattan and BK-GH are 0 (LCA is the root);
  // MV-Manhattan is (2/5)·0.85·0.9; MV-GH is (5/6)·0.85·0.85 — the max.
  EXPECT_DOUBLE_EQ(esim_.Sim(x, y), 5.0 / 6.0 * 0.85 * 0.85);
  EXPECT_DOUBLE_EQ(esim_.Sim(y, x), 5.0 / 6.0 * 0.85 * 0.85);
}

TEST_F(PaperFixture, MultiMappingSimEarlyExitAtPhiCeiling) {
  // Identical nodes with φ < 1: the first pair already reaches the
  // max(φ_x)·max(φ_y) ceiling, so the exit fires and is exact.
  Element x;
  x.token = "kfc";
  x.token_id = 100;
  x.mappings = {{Node("KFC"), 0.9}};
  Element y;
  y.token = "kfcc";
  y.token_id = 200;
  y.mappings = {{Node("KFC"), 0.7}, {Node("PizzaHut"), 0.6}};
  EXPECT_DOUBLE_EQ(esim_.Sim(x, y), 0.9 * 0.7);
}

TEST_F(PaperFixture, MultiMappingSimMatchesBruteForceOnRandomElements) {
  Rng rng(77);
  const auto random_element = [&](int32_t id) {
    Element e;
    e.token = "t" + std::to_string(id);
    e.token_id = id;
    const int n = 1 + static_cast<int>(rng.NextUint64(4));
    for (int i = 0; i < n; ++i) {
      const NodeId node = static_cast<NodeId>(rng.NextUint64(tree_.num_nodes()));
      const double phi = 0.05 + 0.95 * rng.NextDouble();
      e.mappings.push_back({node, phi});
    }
    // Deliberately NOT sorted by φ descending: Sim must not rely on it.
    return e;
  };
  for (int trial = 0; trial < 500; ++trial) {
    const Element x = random_element(1000 + 2 * trial);
    const Element y = random_element(1001 + 2 * trial);
    double brute = 0.0;
    for (const ElementMapping& mx : x.mappings) {
      for (const ElementMapping& my : y.mappings) {
        brute = std::max(brute, esim_.NodeSim(mx.node, my.node) * mx.phi * my.phi);
      }
    }
    ASSERT_DOUBLE_EQ(esim_.Sim(x, y), brute) << "trial " << trial;
  }
}

TEST_F(PaperFixture, CachedMultiMappingSimBitIdenticalToUncached) {
  // The token-pair cache path memoizes whole plus-mode Sim values. Every
  // cached value must be bit-identical to the uncached loop, and repeat
  // evaluations of the same token pair must hit instead of recompute.
  SimCache cache(1 << 12);
  const ElementSimilarity cached(lca_, ElementMetric::kKJoin, &cache);
  Rng rng(91);
  const auto random_element = [&](int32_t id) {
    Element e;
    e.token = "t" + std::to_string(id);
    e.token_id = id;
    const int n = 2 + static_cast<int>(rng.NextUint64(3));
    for (int i = 0; i < n; ++i) {
      e.mappings.push_back({static_cast<NodeId>(rng.NextUint64(tree_.num_nodes())),
                            0.05 + 0.95 * rng.NextDouble()});
    }
    return e;
  };
  std::vector<Element> elements;
  for (int32_t id = 0; id < 40; ++id) elements.push_back(random_element(id));
  for (int trial = 0; trial < 4000; ++trial) {
    const Element& x = elements[rng.NextUint64(elements.size())];
    const Element& y = elements[rng.NextUint64(elements.size())];
    ASSERT_EQ(cached.Sim(x, y), esim_.Sim(x, y)) << "trial " << trial;
  }
  const SimCacheStats stats = cache.stats();
  EXPECT_GT(stats.hits(), 0);
  // 40 elements give at most 40·39/2 distinct unequal token pairs.
  EXPECT_LE(stats.misses, 40 * 39 / 2);
}

TEST(ThresholdGeometryTest, MinSignatureDepth) {
  // §3.1: δ = 0.7 -> d_δ = 3; δ = 0.6 -> 2; δ = 0.5 -> 1; δ = 0.8 -> 4.
  EXPECT_EQ(ElementSimilarity::MinSignatureDepth(0.7, ElementMetric::kKJoin), 3);
  EXPECT_EQ(ElementSimilarity::MinSignatureDepth(0.6, ElementMetric::kKJoin), 2);
  EXPECT_EQ(ElementSimilarity::MinSignatureDepth(0.5, ElementMetric::kKJoin), 1);
  EXPECT_EQ(ElementSimilarity::MinSignatureDepth(0.8, ElementMetric::kKJoin), 4);
  // §6.2 Wu&Palmer: δ/(2(1−δ)); δ = 0.8 -> 2.
  EXPECT_EQ(ElementSimilarity::MinSignatureDepth(0.8, ElementMetric::kWuPalmer), 2);
}

TEST(ThresholdGeometryTest, MinLcaDepthFor) {
  // Deep signature range lower ends (§4.1): δ = 0.6, d = 4 -> ⌈2.4⌉ = 3.
  EXPECT_EQ(ElementSimilarity::MinLcaDepthFor(4, 0.6, ElementMetric::kKJoin), 3);
  EXPECT_EQ(ElementSimilarity::MinLcaDepthFor(5, 0.7, ElementMetric::kKJoin), 4);
  EXPECT_EQ(ElementSimilarity::MinLcaDepthFor(3, 0.7, ElementMetric::kKJoin), 3);
  // Exactly integral products stay put.
  EXPECT_EQ(ElementSimilarity::MinLcaDepthFor(5, 0.6, ElementMetric::kKJoin), 3);
}

TEST(ThresholdGeometryTest, MaxSimBounds) {
  EXPECT_DOUBLE_EQ(ElementSimilarity::MaxSimToDistinctNode(4, ElementMetric::kKJoin),
                   4.0 / 5.0);
  EXPECT_DOUBLE_EQ(ElementSimilarity::MaxSimToDistinctNode(3, ElementMetric::kWuPalmer),
                   6.0 / 7.0);
  EXPECT_DOUBLE_EQ(ElementSimilarity::MaxSimThroughDepth(3, 4, ElementMetric::kKJoin),
                   3.0 / 4.0);
  EXPECT_DOUBLE_EQ(ElementSimilarity::MaxSimThroughDepth(4, 4, ElementMetric::kKJoin), 1.0);
}

// ----------------------------------------------------------------- objects

TEST_F(PaperFixture, FuzzyOverlapPaperFigure2) {
  // §2.1.2: S1 ∩̃0.5 S4 = 3/4 + 3/5 = 27/20 and SIMδ = 27/73.
  const Object s1 = Make(1, {"BurgerKing", "MountainView"});
  const Object s4 = Make(4, {"PizzaHut", "KFC", "CA"});
  const ObjectSimilarity osim(esim_, /*delta=*/0.5);
  EXPECT_NEAR(osim.FuzzyOverlap(s1, s4), 27.0 / 20.0, 1e-12);
  EXPECT_NEAR(osim.Similarity(s1, s4), 27.0 / 73.0, 1e-12);
}

TEST_F(PaperFixture, SimilarityPaperSection22) {
  // §2.2: SIMδ(S1, S3) = 19/29 with δ = 0.7.
  const Object s1 = Make(1, {"BurgerKing", "MountainView"});
  const Object s3 = Make(3, {"Fastfood", "GoogleHeadquarters"});
  const ObjectSimilarity osim(esim_, /*delta=*/0.7);
  EXPECT_NEAR(osim.FuzzyOverlap(s1, s3), 19.0 / 12.0, 1e-12);
  EXPECT_NEAR(osim.Similarity(s1, s3), 19.0 / 29.0, 1e-12);
  EXPECT_GT(osim.Similarity(s1, s3), 0.6);  // ⟨S1,S3⟩ is an answer
}

TEST_F(PaperFixture, DeltaThresholdDropsWeakEdges) {
  const Object s1 = Make(1, {"BurgerKing", "MountainView"});
  const Object s4 = Make(4, {"PizzaHut", "KFC", "CA"});
  // With δ = 0.7 only BK-KFC (0.75) survives; MV-CA (0.6) is dropped.
  const ObjectSimilarity osim(esim_, /*delta=*/0.7);
  EXPECT_NEAR(osim.FuzzyOverlap(s1, s4), 0.75, 1e-12);
}

TEST(SetMetricTest, MinSimilarElements) {
  EXPECT_EQ(MinSimilarElements(3, 0.6, SetMetric::kJaccard), 2);   // ⌈1.8⌉
  EXPECT_EQ(MinSimilarElements(2, 0.6, SetMetric::kJaccard), 2);   // ⌈1.2⌉
  EXPECT_EQ(MinSimilarElements(5, 0.8, SetMetric::kJaccard), 4);   // exactly 4.0
  EXPECT_EQ(MinSimilarElements(4, 0.5, SetMetric::kDice), 2);      // ⌈4/3⌉
  EXPECT_EQ(MinSimilarElements(4, 0.5, SetMetric::kCosine), 1);    // ⌈1.0⌉
  EXPECT_EQ(MinSimilarElements(10, 0.0, SetMetric::kJaccard), 0);
}

TEST(SetMetricTest, MinFuzzyOverlapJaccard) {
  // §3.2: τ/(1+τ)(|Sx|+|Sy|); τ = 0.6, sizes 2+2 -> 1.5.
  EXPECT_NEAR(MinFuzzyOverlap(2, 2, 0.6, SetMetric::kJaccard), 1.5, 1e-12);
  EXPECT_NEAR(MinFuzzyOverlap(2, 3, 0.6, SetMetric::kJaccard), 15.0 / 8.0, 1e-12);
}

TEST(SetMetricTest, CombineOverlapAllMetrics) {
  EXPECT_NEAR(CombineOverlap(1.5, 2, 3, SetMetric::kJaccard), 1.5 / 3.5, 1e-12);
  EXPECT_NEAR(CombineOverlap(1.5, 2, 3, SetMetric::kDice), 3.0 / 5.0, 1e-12);
  EXPECT_NEAR(CombineOverlap(1.5, 2, 3, SetMetric::kCosine), 1.5 / std::sqrt(6.0), 1e-12);
  EXPECT_DOUBLE_EQ(CombineOverlap(0.0, 0, 0, SetMetric::kJaccard), 1.0);
  EXPECT_DOUBLE_EQ(CombineOverlap(0.0, 0, 3, SetMetric::kJaccard), 0.0);
}

TEST(SetMetricTest, ConsistencyBetweenBounds) {
  // If SIM >= τ then overlap >= MinFuzzyOverlap: check the algebra by
  // inverting CombineOverlap at the boundary.
  for (SetMetric metric : {SetMetric::kJaccard, SetMetric::kDice, SetMetric::kCosine}) {
    for (double tau : {0.5, 0.7, 0.9}) {
      const int sx = 5, sy = 8;
      const double needed = MinFuzzyOverlap(sx, sy, tau, metric);
      EXPECT_NEAR(CombineOverlap(needed, sx, sy, metric), tau, 1e-9);
    }
  }
}

// -------------------------------------------------------------- signatures

TEST_F(PaperFixture, NodeSignaturesTable1) {
  // δ = 0.7 -> d_δ = 3. Table 1 column "Node Signature".
  const SignatureGenerator gen(tree_, ElementMetric::kKJoin, SignatureScheme::kNode, 0.7);
  auto labels_of = [&](const Object& object) {
    std::multiset<std::string> labels;
    for (const Signature& sig : gen.Generate(object)) {
      if (sig.id < tree_.num_nodes()) {
        labels.insert(tree_.label(static_cast<NodeId>(sig.id)));
      } else {
        labels.insert("<token>");
      }
    }
    return labels;
  };
  EXPECT_EQ(labels_of(Make(1, {"BurgerKing", "MountainView"})),
            (std::multiset<std::string>{"Fastfood", "CA"}));
  EXPECT_EQ(labels_of(Make(2, {"Pizza", "PaloAlto", "Brooklyn"})),
            (std::multiset<std::string>{"Pizza", "CA", "NY"}));
  EXPECT_EQ(labels_of(Make(4, {"PizzaHut", "KFC", "CA"})),
            (std::multiset<std::string>{"Pizza", "Fastfood", "CA"}));
  EXPECT_EQ(labels_of(Make(7, {"Brooklyn", "Food"})),
            (std::multiset<std::string>{"NY", "Food"}));
  // S8 has duplicate signatures (multiset semantics).
  EXPECT_EQ(labels_of(Make(8, {"Pizza", "KFC", "Dominos", "SanFrancisco", "Manhattan",
                               "Brooklyn"})),
            (std::multiset<std::string>{"Pizza", "Fastfood", "Pizza", "CA", "NY", "NY"}));
}

TEST_F(PaperFixture, DeepPathSignaturesTable1) {
  const SignatureGenerator gen(tree_, ElementMetric::kKJoin, SignatureScheme::kDeepPath, 0.7);
  auto labels_of = [&](const Object& object) {
    std::multiset<std::string> labels;
    for (const Signature& sig : gen.Generate(object)) {
      labels.insert(tree_.label(static_cast<NodeId>(sig.id)));
    }
    return labels;
  };
  // Table 1, "(Deep) Path Signature" column.
  EXPECT_EQ(labels_of(Make(1, {"BurgerKing", "MountainView"})),
            (std::multiset<std::string>{"BurgerKing", "MountainView", "SanFrancisco",
                                        "Fastfood"}));
  EXPECT_EQ(labels_of(Make(3, {"Fastfood", "GoogleHeadquarters"})),
            (std::multiset<std::string>{"GoogleHeadquarters", "MountainView", "Fastfood"}));
  EXPECT_EQ(labels_of(Make(4, {"PizzaHut", "KFC", "CA"})),
            (std::multiset<std::string>{"PizzaHut", "CA", "KFC", "Pizza", "Fastfood"}));
  EXPECT_EQ(labels_of(Make(6, {"Fastfood", "Manhattan"})),
            (std::multiset<std::string>{"Manhattan", "Fastfood", "NewYork"}));
}

TEST_F(PaperFixture, ShallowSignaturesSection41) {
  // §4.1, δ = 0.6: BurgerKing -> {Fastfood, WesternFood};
  // Dominos -> {Pizza, WesternFood}.
  const SignatureGenerator gen(tree_, ElementMetric::kKJoin, SignatureScheme::kShallowPath,
                               0.6);
  auto labels_of = [&](const Object& object) {
    std::multiset<std::string> labels;
    for (const Signature& sig : gen.Generate(object)) {
      labels.insert(tree_.label(static_cast<NodeId>(sig.id)));
    }
    return labels;
  };
  EXPECT_EQ(labels_of(Make(0, {"BurgerKing"})),
            (std::multiset<std::string>{"Fastfood", "WesternFood"}));
  EXPECT_EQ(labels_of(Make(1, {"Dominos"})),
            (std::multiset<std::string>{"Pizza", "WesternFood"}));
}

TEST_F(PaperFixture, DeepSignaturesSection41) {
  // §4.1, δ = 0.6: deep signatures of BurgerKing = {Fastfood, BurgerKing},
  // of Dominos = {Pizza, Dominos} — they do not overlap, pruning the pair
  // node/shallow signatures cannot prune.
  const SignatureGenerator gen(tree_, ElementMetric::kKJoin, SignatureScheme::kDeepPath, 0.6);
  auto ids_of = [&](const Object& object) {
    std::set<SigId> ids;
    for (const Signature& sig : gen.Generate(object)) ids.insert(sig.id);
    return ids;
  };
  const auto burger = ids_of(Make(0, {"BurgerKing"}));
  const auto dominos = ids_of(Make(1, {"Dominos"}));
  EXPECT_EQ(burger.size(), 2u);
  EXPECT_EQ(dominos.size(), 2u);
  std::vector<SigId> common;
  std::set_intersection(burger.begin(), burger.end(), dominos.begin(), dominos.end(),
                        std::back_inserter(common));
  EXPECT_TRUE(common.empty());
}

TEST_F(PaperFixture, SimilarElementsShareDeepSignature) {
  // Property behind Lemma 5: for all node pairs and several δ, δ-similar
  // nodes share a deep signature and a shallow signature.
  for (double delta : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    const SignatureGenerator deep(tree_, ElementMetric::kKJoin, SignatureScheme::kDeepPath,
                                  delta);
    const SignatureGenerator shallow(tree_, ElementMetric::kKJoin,
                                     SignatureScheme::kShallowPath, delta);
    const SignatureGenerator node(tree_, ElementMetric::kKJoin, SignatureScheme::kNode, delta);
    for (NodeId x = 1; x < tree_.num_nodes(); ++x) {
      for (NodeId y = 1; y < tree_.num_nodes(); ++y) {
        if (esim_.NodeSim(x, y) < delta) continue;
        for (const SignatureGenerator* gen : {&deep, &shallow, &node}) {
          Object ox, oy;
          ox.elements.push_back({tree_.label(x), 0, {{x, 1.0}}});
          oy.elements.push_back({tree_.label(y), 1, {{y, 1.0}}});
          std::set<SigId> sx, sy;
          for (const Signature& s : gen->Generate(ox)) sx.insert(s.id);
          for (const Signature& s : gen->Generate(oy)) sy.insert(s.id);
          std::vector<SigId> common;
          std::set_intersection(sx.begin(), sx.end(), sy.begin(), sy.end(),
                                std::back_inserter(common));
          ASSERT_FALSE(common.empty())
              << tree_.label(x) << " ~ " << tree_.label(y) << " @ delta " << delta;
        }
      }
    }
  }
}

// ---------------------------------------------------------------- prefixes

std::vector<Signature> MakeSigs(const std::vector<std::pair<int32_t, double>>& entries) {
  // Builds a signature list already in "global order": ids are positions.
  std::vector<Signature> sigs;
  for (size_t i = 0; i < entries.size(); ++i) {
    sigs.push_back({static_cast<SigId>(i), entries[i].first,
                    static_cast<float>(entries[i].second)});
  }
  return sigs;
}

TEST(PrefixTest, PathPrefixPaperS4) {
  // §4.2.1: PS4 = {PizzaHut, CA, KFC, Pizza, Fastfood} with elements
  // PizzaHut=0, CA=2, KFC=1, Pizza=0, Fastfood=1; τ_S4 = 2 -> keep 4.
  const auto sigs = MakeSigs({{0, 1.0}, {2, 1.0}, {1, 1.0}, {0, 0.75}, {1, 0.75}});
  EXPECT_EQ(PrefixLengthDistinct(sigs, 2), 4);
}

TEST(PrefixTest, PathPrefixPaperS1) {
  // §4.2.1: PS1 = {BurgerKing, MountainView, SanFrancisco, Fastfood},
  // elements BK=0, MV=1, SF=1, FF=0; τ_S1 = 2 -> keep 3.
  const auto sigs = MakeSigs({{0, 1.0}, {1, 1.0}, {1, 0.8}, {0, 0.75}});
  EXPECT_EQ(PrefixLengthDistinct(sigs, 2), 3);
}

TEST(PrefixTest, WeightedPathPrefixPaperS4) {
  // §4.2.2: weights {PizzaHut:1, CA:1, KFC:1, Pizza:3/4, Fastfood:3/4},
  // τ|S4| = 1.8 -> weighted prefix keeps only {PizzaHut, CA}.
  const auto sigs = MakeSigs({{0, 1.0}, {2, 1.0}, {1, 1.0}, {0, 0.75}, {1, 0.75}});
  EXPECT_EQ(PrefixLengthWeighted(sigs, 1.8), 2);
}

TEST(PrefixTest, WeightedPrefixFullRemovalCostsOne) {
  // An element whose low-weight signatures are all removed must be charged
  // similarity 1 (an identical token matches it fully).
  const auto sigs = MakeSigs({{0, 1.0}, {1, 0.5}, {1, 0.4}});
  // Budget 0.95: removing both of element 1's signatures costs 1 >= 0.95,
  // so only one can go... in fact removing the *second* one already makes
  // the element fully removed -> cost 1 -> stop after removing none?
  // Walk: remove sig id=2 (w=.4, element 1 partial, mass .4 < .95 ok);
  // remove sig id=1 (element 1 now fully removed, mass = 1 >= .95 stop).
  EXPECT_EQ(PrefixLengthWeighted(sigs, 0.95), 2);
}

TEST(PrefixTest, PrefixNeverEmpty) {
  const auto sigs = MakeSigs({{0, 0.3}, {0, 0.2}});
  EXPECT_GE(PrefixLengthDistinct(sigs, 1), 1);
  EXPECT_GE(PrefixLengthWeighted(sigs, 10.0), 1);
  EXPECT_EQ(PrefixLengthDistinct({}, 3), 0);
}

TEST(PrefixTest, ZeroThresholdKeepsEverything) {
  const auto sigs = MakeSigs({{0, 1.0}, {1, 1.0}});
  EXPECT_EQ(PrefixLengthDistinct(sigs, 0), 2);
  EXPECT_EQ(PrefixLengthWeighted(sigs, 0.0), 2);
}

TEST(GlobalOrderTest, RareSignaturesFirst) {
  GlobalSignatureOrder order;
  // Object A has sigs {1, 2}, B has {2, 3}, C has {2}. df: 1->1, 3->1, 2->3.
  const auto a = MakeSigs({{0, 1.0}, {0, 1.0}});
  std::vector<Signature> oa = {{1, 0, 1.0f}, {2, 1, 1.0f}};
  std::vector<Signature> ob = {{2, 0, 1.0f}, {3, 1, 1.0f}};
  std::vector<Signature> oc = {{2, 0, 1.0f}};
  order.CountObject(oa);
  order.CountObject(ob);
  order.CountObject(oc);
  order.Finalize();
  EXPECT_EQ(order.DocumentFrequency(2), 3);
  EXPECT_EQ(order.DocumentFrequency(1), 1);
  EXPECT_LT(order.Rank(1), order.Rank(2));
  EXPECT_LT(order.Rank(3), order.Rank(2));
  EXPECT_LT(order.Rank(1), order.Rank(3));  // tie broken by id
  SortByGlobalOrder(order, &oa);
  EXPECT_EQ(oa[0].id, 1);
  EXPECT_EQ(oa[1].id, 2);
}

TEST(GlobalOrderTest, RankOrFallsBackForUnknownIds) {
  GlobalSignatureOrder order;
  std::vector<Signature> object = {{7, 0, 1.0f}};
  order.CountObject(object);
  order.Finalize();
  EXPECT_EQ(order.RankOr(7, -1), order.Rank(7));
  EXPECT_EQ(order.RankOr(999, -1), -1);
}

TEST(GlobalOrderTest, DuplicateSigsInOneObjectCountOnce) {
  GlobalSignatureOrder order;
  std::vector<Signature> object = {{5, 0, 1.0f}, {5, 1, 1.0f}};
  order.CountObject(object);
  order.Finalize();
  EXPECT_EQ(order.DocumentFrequency(5), 1);
}

// ---------------------------------------------------------------- verifier

class VerifierFixture : public PaperFixture {
 protected:
  Verifier MakeVerifier(double delta, double tau, VerifyMode mode,
                        const SignatureGenerator& gen) {
    VerifierOptions options;
    options.delta = delta;
    options.tau = tau;
    options.mode = mode;
    return Verifier(esim_, gen, options);
  }
};

TEST_F(VerifierFixture, CountPruningPaperExampleS1S6) {
  // §3.2: S1 and S6 with δ = 0.7, τ = 0.6: Σ min sizes = 1 < 1.5 -> prune.
  const SignatureGenerator gen(tree_, ElementMetric::kKJoin, SignatureScheme::kNode, 0.7);
  VerifierOptions options;
  options.delta = 0.7;
  options.tau = 0.6;
  options.weighted_count_pruning = false;
  const Verifier verifier(esim_, gen, options);
  VerifyStats stats;
  EXPECT_FALSE(verifier.Verify(Make(1, {"BurgerKing", "MountainView"}),
                               Make(6, {"Fastfood", "Manhattan"}), &stats));
  EXPECT_EQ(stats.pruned_by_count, 1);
  EXPECT_EQ(stats.hungarian_runs, 0);
}

TEST_F(VerifierFixture, WeightedCountPruningPaperExampleS1S4) {
  // §3.2: count pruning cannot prune ⟨S1, S4⟩ but the weighted bound
  // 31/20 < 15/8 does.
  const SignatureGenerator gen(tree_, ElementMetric::kKJoin, SignatureScheme::kNode, 0.7);
  VerifierOptions options;
  options.delta = 0.7;
  options.tau = 0.6;
  const Verifier verifier(esim_, gen, options);
  VerifyStats stats;
  EXPECT_FALSE(verifier.Verify(Make(1, {"BurgerKing", "MountainView"}),
                               Make(4, {"PizzaHut", "KFC", "CA"}), &stats));
  EXPECT_EQ(stats.pruned_by_count, 0);
  EXPECT_EQ(stats.pruned_by_weighted_count, 1);
  EXPECT_EQ(stats.hungarian_runs, 0);
}

TEST_F(VerifierFixture, AcceptsPaperAnswerS1S3) {
  const SignatureGenerator gen(tree_, ElementMetric::kKJoin, SignatureScheme::kNode, 0.7);
  for (VerifyMode mode : {VerifyMode::kBasic, VerifyMode::kSubGraph, VerifyMode::kAdaptive}) {
    VerifierOptions options;
    options.delta = 0.7;
    options.tau = 0.6;
    options.mode = mode;
    const Verifier verifier(esim_, gen, options);
    VerifyStats stats;
    EXPECT_TRUE(verifier.Verify(Make(1, {"BurgerKing", "MountainView"}),
                                Make(3, {"Fastfood", "GoogleHeadquarters"}), &stats));
  }
}

TEST_F(VerifierFixture, RejectsPaperSection52ExampleS8S9) {
  // §5.2: SIMδ(S8, S9) with δ = τ = 0.6 is below τ (real overlap 113/30).
  const SignatureGenerator gen(tree_, ElementMetric::kKJoin, SignatureScheme::kNode, 0.6);
  const Object s8 =
      Make(8, {"Pizza", "KFC", "Dominos", "SanFrancisco", "Manhattan", "Brooklyn"});
  const Object s9 = Make(9, {"Fastfood", "PizzaHut", "BurgerKing", "PaloAlto", "MountainView",
                             "NewYork"});
  // Exact overlap = 13/6 + 8/5 = 113/30 (the paper's combined lower bound
  // is tight here).
  const ObjectSimilarity osim(esim_, 0.6);
  EXPECT_NEAR(osim.FuzzyOverlap(s8, s9), 113.0 / 30.0, 1e-9);
  for (VerifyMode mode : {VerifyMode::kBasic, VerifyMode::kSubGraph, VerifyMode::kAdaptive}) {
    VerifierOptions options;
    options.delta = 0.6;
    options.tau = 0.6;
    options.mode = mode;
    const Verifier verifier(esim_, gen, options);
    VerifyStats stats;
    EXPECT_FALSE(verifier.Verify(s8, s9, &stats));
  }
}

TEST_F(VerifierFixture, AllModesAgreeOnRandomPairs) {
  // Property: Basic, SubGraph and Adaptive verify identically (with and
  // without pruning), and agree with exact similarity.
  Rng rng(2024);
  const SignatureGenerator gen(tree_, ElementMetric::kKJoin, SignatureScheme::kNode, 0.6);
  std::vector<std::string> labels;
  for (NodeId v = 1; v < tree_.num_nodes(); ++v) labels.push_back(tree_.label(v));
  labels.push_back("freetoken1");
  labels.push_back("freetoken2");

  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::string> tx, ty;
    const int nx = 1 + static_cast<int>(rng.NextUint64(6));
    const int ny = 1 + static_cast<int>(rng.NextUint64(6));
    for (int i = 0; i < nx; ++i) tx.push_back(labels[rng.NextUint64(labels.size())]);
    for (int i = 0; i < ny; ++i) ty.push_back(labels[rng.NextUint64(labels.size())]);
    const Object x = Make(0, tx);
    const Object y = Make(1, ty);

    const ObjectSimilarity osim(esim_, 0.6);
    const bool expected = osim.Similarity(x, y) >= 0.6 - 1e-9;
    for (VerifyMode mode : {VerifyMode::kBasic, VerifyMode::kSubGraph, VerifyMode::kAdaptive}) {
      for (bool pruning : {true, false}) {
        VerifierOptions options;
        options.delta = 0.6;
        options.tau = 0.6;
        options.mode = mode;
        options.count_pruning = pruning;
        options.weighted_count_pruning = pruning;
        const Verifier verifier(esim_, gen, options);
        VerifyStats stats;
        ASSERT_EQ(verifier.Verify(x, y, &stats), expected)
            << "trial " << trial << " mode " << static_cast<int>(mode) << " pruning "
            << pruning;
      }
    }
  }
}

TEST_F(VerifierFixture, AllModesAgreeOnRandomPlusModePairs) {
  // The same property in K-Join+ mode: multi-node mappings, merged groups
  // (§6.4), and the plan-merge group construction must leave all three
  // modes in exact agreement with the oracle.
  Rng rng(6404);
  const SignatureGenerator gen(tree_, ElementMetric::kKJoin, SignatureScheme::kNode, 0.6);
  ObjectBuilder plus_builder(matcher_, /*multi_mapping=*/true);
  std::vector<std::string> labels;
  for (NodeId v = 1; v < tree_.num_nodes(); ++v) labels.push_back(tree_.label(v));
  labels.push_back("pizzahat");  // typo: φ < 1, several candidate entities
  labels.push_back("freetoken1");

  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::string> tx, ty;
    const int nx = 1 + static_cast<int>(rng.NextUint64(6));
    const int ny = 1 + static_cast<int>(rng.NextUint64(6));
    for (int i = 0; i < nx; ++i) tx.push_back(labels[rng.NextUint64(labels.size())]);
    for (int i = 0; i < ny; ++i) ty.push_back(labels[rng.NextUint64(labels.size())]);
    const Object x = plus_builder.Build(0, tx);
    const Object y = plus_builder.Build(1, ty);

    const ObjectSimilarity osim(esim_, 0.6);
    const bool expected = osim.Similarity(x, y) >= 0.6 - 1e-9;
    for (VerifyMode mode : {VerifyMode::kBasic, VerifyMode::kSubGraph, VerifyMode::kAdaptive}) {
      for (bool pruning : {true, false}) {
        VerifierOptions options;
        options.delta = 0.6;
        options.tau = 0.6;
        options.mode = mode;
        options.plus_mode = true;
        options.count_pruning = pruning;
        options.weighted_count_pruning = pruning;
        const Verifier verifier(esim_, gen, options);
        VerifyStats stats;
        ASSERT_EQ(verifier.Verify(x, y, &stats), expected)
            << "trial " << trial << " mode " << static_cast<int>(mode) << " pruning "
            << pruning;
      }
    }
  }
}

TEST_F(VerifierFixture, PrecomputedPlansMatchPlanlessVerification) {
  // The join builds one ObjectGroupPlan per object and reuses it across
  // every candidate pair; the plan-taking Verify overload must make the
  // same decisions with the same counters as the plan-less one.
  Rng rng(777);
  const SignatureGenerator gen(tree_, ElementMetric::kKJoin, SignatureScheme::kNode, 0.6);
  std::vector<std::string> labels;
  for (NodeId v = 1; v < tree_.num_nodes(); ++v) labels.push_back(tree_.label(v));
  labels.push_back("pizzahat");

  for (bool plus : {false, true}) {
    ObjectBuilder builder(matcher_, /*multi_mapping=*/plus);
    std::vector<Object> objects;
    for (int32_t id = 0; id < 12; ++id) {
      std::vector<std::string> tokens;
      const int n = 1 + static_cast<int>(rng.NextUint64(6));
      for (int i = 0; i < n; ++i) tokens.push_back(labels[rng.NextUint64(labels.size())]);
      objects.push_back(builder.Build(id, tokens));
    }
    VerifierOptions options;
    options.delta = 0.6;
    options.tau = 0.6;
    options.plus_mode = plus;
    const Verifier verifier(esim_, gen, options);
    std::vector<ObjectGroupPlan> plans(objects.size());
    for (size_t o = 0; o < objects.size(); ++o) verifier.BuildPlan(objects[o], &plans[o]);

    for (size_t i = 0; i < objects.size(); ++i) {
      for (size_t j = i + 1; j < objects.size(); ++j) {
        VerifyStats planless, planned;
        const bool a = verifier.Verify(objects[i], objects[j], &planless);
        const bool b = verifier.Verify(objects[i], objects[j], plans[i], plans[j], &planned);
        ASSERT_EQ(a, b) << (plus ? "plus" : "pure") << " pair " << i << "," << j;
        EXPECT_EQ(planless.pruned_by_count, planned.pruned_by_count);
        EXPECT_EQ(planless.pruned_by_weighted_count, planned.pruned_by_weighted_count);
        EXPECT_EQ(planless.accepted_by_lower_bound, planned.accepted_by_lower_bound);
        EXPECT_EQ(planless.rejected_by_upper_bound, planned.rejected_by_upper_bound);
        EXPECT_EQ(planless.hungarian_runs, planned.hungarian_runs);
        EXPECT_EQ(planless.groups_pinned, planned.groups_pinned);
        EXPECT_EQ(planless.results, planned.results);
      }
    }
  }
}

TEST_F(VerifierFixture, AdaptiveUsesEarlyTermination) {
  // Two identical large objects: lower bound accepts without Hungarian.
  const SignatureGenerator gen(tree_, ElementMetric::kKJoin, SignatureScheme::kNode, 0.7);
  VerifierOptions options;
  options.delta = 0.7;
  options.tau = 0.6;
  options.mode = VerifyMode::kAdaptive;
  const Verifier verifier(esim_, gen, options);
  const Object a = Make(0, {"BurgerKing", "Pizza", "Manhattan", "CA"});
  const Object b = Make(1, {"BurgerKing", "Pizza", "Manhattan", "CA"});
  VerifyStats stats;
  EXPECT_TRUE(verifier.Verify(a, b, &stats));
  EXPECT_EQ(stats.hungarian_runs, 0);
  EXPECT_EQ(stats.accepted_by_lower_bound, 1);
}

}  // namespace
}  // namespace kjoin
