// Full-pipeline integration: persist a hierarchy and dataset to disk,
// reload both, rebuild objects, and verify the join over the reloaded
// artifacts matches the in-memory join exactly — the kjoin_cli path.

#include <gtest/gtest.h>

#include <set>

#include "core/kjoin.h"
#include "data/benchmark_suite.h"
#include "data/dataset_io.h"
#include "data/quality.h"
#include "hierarchy/hierarchy_io.h"

namespace kjoin {
namespace {

using PairSet = std::set<std::pair<int32_t, int32_t>>;

PairSet ToSet(const std::vector<std::pair<int32_t, int32_t>>& pairs) {
  PairSet set;
  for (auto [a, b] : pairs) {
    if (a > b) std::swap(a, b);
    set.emplace(a, b);
  }
  return set;
}

TEST(IntegrationTest, PersistReloadJoinRoundTrip) {
  const BenchmarkData original = MakePoiBenchmark(800, 67);

  // Persist both artifacts.
  const std::string tree_path = testing::TempDir() + "/kjoin_it_tree.txt";
  const std::string data_path = testing::TempDir() + "/kjoin_it_data.tsv";
  ASSERT_TRUE(WriteHierarchyFile(original.hierarchy, tree_path).ok());
  ASSERT_TRUE(WriteDatasetFile(original.dataset, data_path).ok());

  // Reload.
  auto tree = ReadHierarchyFile(tree_path);
  auto dataset = ReadDatasetFile(data_path);
  ASSERT_TRUE(tree.has_value());
  ASSERT_TRUE(dataset.has_value());

  // Join both worlds identically (K-Join+ exercises synonyms from the
  // persisted rule table and approximate matching).
  KJoinOptions options;
  options.delta = 0.8;
  options.tau = 0.75;
  options.plus_mode = true;

  const PreparedObjects mem =
      BuildObjects(original.hierarchy, original.dataset, true, options.delta);
  const JoinResult mem_result = KJoin(original.hierarchy, options).SelfJoin(mem.objects);

  const PreparedObjects disk = BuildObjects(*tree, *dataset, true, options.delta);
  const JoinResult disk_result = KJoin(*tree, options).SelfJoin(disk.objects);

  EXPECT_EQ(ToSet(disk_result.pairs), ToSet(mem_result.pairs));
  EXPECT_FALSE(mem_result.pairs.empty());

  // Ground truth survived the round trip too.
  const QualityReport mem_quality =
      EvaluateQuality(mem_result.pairs, GroundTruthPairs(original.dataset));
  const QualityReport disk_quality =
      EvaluateQuality(disk_result.pairs, GroundTruthPairs(*dataset));
  EXPECT_DOUBLE_EQ(mem_quality.f_measure, disk_quality.f_measure);
}

}  // namespace
}  // namespace kjoin
