// libFuzzer harness over the KJNP network protocol decoders — the
// byte streams a server accepts from untrusted sockets. Three surfaces
// per input: the frame decoder fed the raw bytes in fuzzer-chosen chunk
// sizes (must never crash, never overflow, and never hand out a payload
// whose CRC did not verify), the request payload decoder, and the
// response payload decoder (the client's attack surface). Any payload
// that decodes successfully must re-encode and decode to the same
// value — the round-trip invariant the wire format relies on.
//
// Build with -DKJOIN_FUZZ=ON (Clang); run:
//   ./build/tests/fuzz_net -max_total_time=60

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/logging.h"
#include "net/protocol.h"

namespace kjoin::net {
namespace {

void FuzzFrameDecoder(const uint8_t* data, size_t size) {
  // The first byte picks a chunking pattern so reassembly boundaries get
  // exercised, not just one-shot appends.
  if (size == 0) return;
  const size_t chunk = static_cast<size_t>(data[0] % 64) + 1;
  FrameDecoder decoder(/*max_frame_bytes=*/1 << 16);
  size_t at = 1;
  while (at < size) {
    const size_t n = std::min(chunk, size - at);
    decoder.Append(reinterpret_cast<const char*>(data + at), n);
    at += n;
    while (true) {
      std::string payload;
      StatusOr<bool> got = decoder.Next(&payload);
      if (!got.ok()) {
        KJOIN_CHECK(decoder.poisoned());
        return;  // permanently poisoned; nothing more can arrive
      }
      if (!*got) break;
      // A delivered payload passed the CRC: framing it again must
      // reproduce the identical frame bytes.
      const std::string reframed = WrapFrame(payload);
      KJOIN_CHECK(reframed.size() == kFrameHeaderBytes + payload.size());
    }
  }
}

void FuzzRequestDecoder(const uint8_t* data, size_t size) {
  const std::string payload(reinterpret_cast<const char*>(data), size);
  NetRequest request;
  if (!DecodeRequestPayload(payload, &request).ok()) return;
  NetRequest again;
  KJOIN_CHECK(DecodeRequestPayload(EncodeRequestPayload(request), &again).ok());
  KJOIN_CHECK(again.id == request.id);
  KJOIN_CHECK(again.kind == request.kind);
  KJOIN_CHECK(again.query_tokens == request.query_tokens);
  KJOIN_CHECK(again.delete_indexes == request.delete_indexes);
  KJOIN_CHECK(again.inserts.size() == request.inserts.size());
}

void FuzzResponseDecoder(const uint8_t* data, size_t size) {
  const std::string payload(reinterpret_cast<const char*>(data), size);
  NetResponse response;
  if (!DecodeResponsePayload(payload, &response).ok()) return;
  NetResponse again;
  KJOIN_CHECK(DecodeResponsePayload(EncodeResponsePayload(response), &again).ok());
  KJOIN_CHECK(again.id == response.id);
  KJOIN_CHECK(again.code == response.code);
  KJOIN_CHECK(again.hits.size() == response.hits.size());
  KJOIN_CHECK(again.text == response.text);
}

}  // namespace
}  // namespace kjoin::net

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  switch (data[0] % 3) {
    case 0:
      kjoin::net::FuzzFrameDecoder(data + 1, size - 1);
      break;
    case 1:
      kjoin::net::FuzzRequestDecoder(data + 1, size - 1);
      break;
    default:
      kjoin::net::FuzzResponseDecoder(data + 1, size - 1);
      break;
  }
  return 0;
}
