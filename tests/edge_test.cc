// Edge-case and stress tests: degenerate hierarchies (chains, stars),
// extreme thresholds, metric combinations, and tokenizer-driven object
// construction.

#include <gtest/gtest.h>

#include <set>

#include "baselines/naive_join.h"
#include "common/rng.h"
#include "core/kjoin.h"
#include "hierarchy/hierarchy_builder.h"
#include "hierarchy/lca.h"
#include "text/entity_matcher.h"

namespace kjoin {
namespace {

using PairSet = std::set<std::pair<int32_t, int32_t>>;

PairSet ToSet(const std::vector<std::pair<int32_t, int32_t>>& pairs) {
  PairSet set;
  for (auto [a, b] : pairs) {
    if (a > b) std::swap(a, b);
    set.emplace(a, b);
  }
  return set;
}

// A path: Root -> c1 -> c2 -> ... -> c{depth}.
Hierarchy MakeChain(int depth) {
  HierarchyBuilder builder;
  NodeId current = builder.root();
  for (int d = 1; d <= depth; ++d) {
    current = builder.AddChild(current, "c" + std::to_string(d));
  }
  return std::move(builder).Build();
}

// Root with `fanout` leaf children.
Hierarchy MakeStar(int fanout) {
  HierarchyBuilder builder;
  for (int i = 0; i < fanout; ++i) {
    builder.AddChild(builder.root(), "leaf" + std::to_string(i));
  }
  return std::move(builder).Build();
}

TEST(ChainHierarchyTest, AncestorSimilarities) {
  const Hierarchy chain = MakeChain(40);
  const LcaIndex lca(chain);
  const ElementSimilarity esim(lca);
  const NodeId deep = *chain.FindByLabel("c40");
  const NodeId mid = *chain.FindByLabel("c20");
  // LCA(c20, c40) = c20 at depth 20 -> 20/40.
  EXPECT_DOUBLE_EQ(esim.NodeSim(deep, mid), 0.5);
  EXPECT_DOUBLE_EQ(esim.NodeSim(deep, *chain.FindByLabel("c39")), 39.0 / 40.0);
}

TEST(ChainHierarchyTest, DeepSignaturesSpanTheRange) {
  const Hierarchy chain = MakeChain(40);
  const SignatureGenerator gen(chain, ElementMetric::kKJoin, SignatureScheme::kDeepPath, 0.9);
  Object object;
  const NodeId deep = *chain.FindByLabel("c40");
  object.elements.push_back({"c40", 0, {{deep, 1.0}}});
  const auto sigs = gen.Generate(object);
  // Depths ⌈0.9·40⌉=36 .. 40 -> 5 signatures.
  EXPECT_EQ(sigs.size(), 5u);
  for (const Signature& sig : sigs) {
    const int depth = chain.depth(static_cast<NodeId>(sig.id));
    EXPECT_GE(depth, 36);
    EXPECT_LE(depth, 40);
    // Definition 9 weight: depth / 40.
    EXPECT_NEAR(sig.weight, depth / 40.0, 1e-6);
  }
}

TEST(ChainHierarchyTest, JoinOnChainMatchesOracle) {
  const Hierarchy chain = MakeChain(30);
  EntityMatcherOptions matcher_options;
  matcher_options.enable_approximate = false;
  EntityMatcher matcher(chain, matcher_options);
  ObjectBuilder builder(matcher, false);
  Rng rng(3);
  std::vector<Object> objects;
  for (int i = 0; i < 60; ++i) {
    std::vector<std::string> tokens;
    const int n = 1 + static_cast<int>(rng.NextUint64(4));
    for (int k = 0; k < n; ++k) {
      tokens.push_back("c" + std::to_string(1 + rng.NextUint64(30)));
    }
    objects.push_back(builder.Build(i, tokens));
  }
  KJoinOptions options;
  options.delta = 0.8;
  options.tau = 0.7;
  const JoinResult fast = KJoin(chain, options).SelfJoin(objects);
  const JoinResult oracle = NaiveJoin(chain, options).SelfJoin(objects);
  EXPECT_EQ(ToSet(fast.pairs), ToSet(oracle.pairs));
}

TEST(StarHierarchyTest, LeavesAreDissimilar) {
  const Hierarchy star = MakeStar(50);
  const LcaIndex lca(star);
  const ElementSimilarity esim(lca);
  const NodeId a = *star.FindByLabel("leaf0");
  const NodeId b = *star.FindByLabel("leaf1");
  EXPECT_DOUBLE_EQ(esim.NodeSim(a, b), 0.0);  // LCA is the root (depth 0)
  EXPECT_DOUBLE_EQ(esim.NodeSim(a, a), 1.0);
}

TEST(StarHierarchyTest, JoinReducesToExactSetJoin) {
  // On a star hierarchy, knowledge-aware similarity degenerates to exact
  // token matching: sanity-check against the oracle.
  const Hierarchy star = MakeStar(20);
  EntityMatcherOptions matcher_options;
  matcher_options.enable_approximate = false;
  EntityMatcher matcher(star, matcher_options);
  ObjectBuilder builder(matcher, false);
  Rng rng(5);
  std::vector<Object> objects;
  for (int i = 0; i < 80; ++i) {
    std::vector<std::string> tokens;
    const int n = 2 + static_cast<int>(rng.NextUint64(3));
    for (int k = 0; k < n; ++k) {
      tokens.push_back("leaf" + std::to_string(rng.NextUint64(20)));
    }
    objects.push_back(builder.Build(i, tokens));
  }
  KJoinOptions options;
  options.delta = 0.5;
  options.tau = 0.6;
  const JoinResult fast = KJoin(star, options).SelfJoin(objects);
  const JoinResult oracle = NaiveJoin(star, options).SelfJoin(objects);
  EXPECT_EQ(ToSet(fast.pairs), ToSet(oracle.pairs));
}

TEST(ExtremeThresholdTest, TauOneFindsOnlyPerfectMatches) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  EntityMatcher matcher(tree);
  ObjectBuilder builder(matcher, false);
  std::vector<Object> objects;
  objects.push_back(builder.Build(0, {"KFC", "CA"}));
  objects.push_back(builder.Build(1, {"KFC", "CA"}));
  objects.push_back(builder.Build(2, {"KFC", "NY"}));
  objects.push_back(builder.Build(3, {"CA", "KFC"}));  // order-insensitive
  KJoinOptions options;
  options.delta = 0.7;
  options.tau = 1.0;
  const JoinResult result = KJoin(tree, options).SelfJoin(objects);
  EXPECT_EQ(ToSet(result.pairs), (PairSet{{0, 1}, {0, 3}, {1, 3}}));
}

TEST(ExtremeThresholdTest, DeltaNearOneKeepsOnlyIdenticalElements) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  const LcaIndex lca(tree);
  const ElementSimilarity esim(lca);
  const ObjectSimilarity osim(esim, /*delta=*/0.99);
  EntityMatcher matcher(tree);
  ObjectBuilder builder(matcher, false);
  const Object a = builder.Build(0, {"BurgerKing", "KFC"});
  const Object b = builder.Build(1, {"KFC", "PizzaHut"});
  // Only the identical KFC survives δ = 0.99.
  EXPECT_NEAR(osim.FuzzyOverlap(a, b), 1.0, 1e-12);
}

TEST(MetricMatrixTest, AllVerifiersAgreeAcrossMetricCombinations) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  const LcaIndex lca(tree);
  EntityMatcher matcher(tree);
  ObjectBuilder builder(matcher, false);
  Rng rng(2025);
  std::vector<std::string> labels;
  for (NodeId v = 1; v < tree.num_nodes(); ++v) labels.push_back(tree.label(v));

  std::vector<Object> objects;
  for (int i = 0; i < 30; ++i) {
    std::vector<std::string> tokens;
    const int n = 1 + static_cast<int>(rng.NextUint64(5));
    for (int k = 0; k < n; ++k) tokens.push_back(labels[rng.NextUint64(labels.size())]);
    objects.push_back(builder.Build(i, tokens));
  }

  for (ElementMetric emetric : {ElementMetric::kKJoin, ElementMetric::kWuPalmer}) {
    for (SetMetric smetric : {SetMetric::kJaccard, SetMetric::kDice, SetMetric::kCosine}) {
      KJoinOptions options;
      options.delta = 0.7;
      options.tau = 0.65;
      options.element_metric = emetric;
      options.set_metric = smetric;
      const JoinResult oracle = NaiveJoin(tree, options).SelfJoin(objects);
      for (VerifyMode mode :
           {VerifyMode::kBasic, VerifyMode::kSubGraph, VerifyMode::kAdaptive}) {
        options.verify_mode = mode;
        const JoinResult result = KJoin(tree, options).SelfJoin(objects);
        ASSERT_EQ(ToSet(result.pairs), ToSet(oracle.pairs))
            << "emetric " << static_cast<int>(emetric) << " smetric "
            << static_cast<int>(smetric) << " mode " << static_cast<int>(mode);
      }
    }
  }
}

TEST(ObjectBuilderTest, BuildFromTextTokenizes) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  EntityMatcher matcher(tree);
  ObjectBuilder builder(matcher, false);
  const Object object = builder.BuildFromText(0, "Burger-King, at Mountain_View!");
  // "burger", "king", "at", "mountain", "view" (punctuation splits).
  EXPECT_EQ(object.size(), 5);
  EXPECT_EQ(object.elements[0].token, "burger");
}

TEST(ObjectBuilderTest, BuildWithSpansRecognizesMultiWordEntities) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  EntityMatcher matcher(tree);
  ObjectBuilder builder(matcher, false);
  // "mountain view" concatenates to "mountainview" = MountainView's
  // normalized label; "burger king" likewise.
  const Object object =
      builder.BuildWithSpans(0, {"burger", "king", "near", "mountain", "view"});
  ASSERT_EQ(object.size(), 3);  // burgerking, near, mountainview
  EXPECT_EQ(object.elements[0].token, "burgerking");
  ASSERT_TRUE(object.elements[0].has_node());
  EXPECT_EQ(object.elements[0].mappings[0].node, *tree.FindByLabel("BurgerKing"));
  EXPECT_EQ(object.elements[1].token, "near");
  EXPECT_FALSE(object.elements[1].has_node());
  EXPECT_EQ(object.elements[2].token, "mountainview");
  ASSERT_TRUE(object.elements[2].has_node());
}

TEST(ObjectBuilderTest, BuildWithSpansPrefersLongestMatch) {
  // A label that is a prefix of a longer label: spans take the longest.
  HierarchyBuilder tb;
  const NodeId food = tb.AddChild(tb.root(), "Food");
  tb.AddChild(food, "Pizza");
  tb.AddChild(food, "PizzaHut");
  const Hierarchy tree = std::move(tb).Build();
  EntityMatcherOptions options;
  options.enable_approximate = false;
  EntityMatcher matcher(tree, options);
  ObjectBuilder builder(matcher, false);
  const Object object = builder.BuildWithSpans(0, {"pizza", "hut"});
  ASSERT_EQ(object.size(), 1);
  EXPECT_EQ(object.elements[0].token, "pizzahut");
  EXPECT_EQ(object.elements[0].mappings[0].node, *tree.FindByLabel("PizzaHut"));
}

TEST(ObjectBuilderTest, BuildWithSpansFallsBackToSingles) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  EntityMatcher matcher(tree);
  ObjectBuilder builder(matcher, false);
  const Object spans = builder.BuildWithSpans(0, {"kfc", "ca"});
  const Object plain = builder.Build(1, {"kfc", "ca"});
  ASSERT_EQ(spans.size(), plain.size());
  for (int32_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans.elements[i].token, plain.elements[i].token);
    EXPECT_EQ(spans.elements[i].mappings, plain.elements[i].mappings);
  }
}

TEST(ObjectBuilderTest, TokenIdsSharedAcrossObjects) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  EntityMatcher matcher(tree);
  ObjectBuilder builder(matcher, false);
  const Object a = builder.Build(0, {"KFC", "foo"});
  const Object b = builder.Build(1, {"foo", "KFC"});
  EXPECT_EQ(a.elements[0].token_id, b.elements[1].token_id);
  EXPECT_EQ(a.elements[1].token_id, b.elements[0].token_id);
  EXPECT_EQ(builder.num_distinct_tokens(), 2);
}

TEST(SingleElementObjectTest, JoinWorks) {
  const Hierarchy tree = MakeFigure1Hierarchy();
  EntityMatcher matcher(tree);
  ObjectBuilder builder(matcher, false);
  std::vector<Object> objects;
  objects.push_back(builder.Build(0, {"BurgerKing"}));
  // Element SIM(BurgerKing, KFC) = 3/4, so Jaccard = 0.75/1.25 = 0.6.
  objects.push_back(builder.Build(1, {"KFC"}));
  objects.push_back(builder.Build(2, {"Manhattan"}));  // SIM = 0
  KJoinOptions options;
  options.delta = 0.7;
  options.tau = 0.6;
  const JoinResult result = KJoin(tree, options).SelfJoin(objects);
  EXPECT_EQ(ToSet(result.pairs), (PairSet{{0, 1}}));
}

}  // namespace
}  // namespace kjoin
