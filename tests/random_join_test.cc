// Randomized differential testing: fresh random hierarchies, datasets and
// join configurations each trial, always compared against the exhaustive
// oracle. Complements the fixed-seed sweep in kjoin_test.cc with broader
// configuration-space coverage.

#include <gtest/gtest.h>

#include <set>

#include "baselines/naive_join.h"
#include "common/rng.h"
#include "core/kjoin.h"
#include "data/benchmark_suite.h"
#include "data/generator.h"
#include "hierarchy/hierarchy_generator.h"

namespace kjoin {
namespace {

using PairSet = std::set<std::pair<int32_t, int32_t>>;

PairSet ToSet(const std::vector<std::pair<int32_t, int32_t>>& pairs) {
  PairSet set;
  for (auto [a, b] : pairs) {
    if (a > b) std::swap(a, b);
    set.emplace(a, b);
  }
  return set;
}

class RandomJoinTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RandomJoinTest, RandomConfigurationMatchesOracle) {
  Rng rng(GetParam());

  // Random hierarchy shape.
  HierarchyGenParams tree_params;
  tree_params.num_nodes = 150 + static_cast<int64_t>(rng.NextUint64(400));
  tree_params.height = 4 + static_cast<int>(rng.NextUint64(4));
  tree_params.avg_fanout = 3.0 + rng.NextDouble() * 3.0;
  tree_params.max_fanout = 8 + static_cast<int>(rng.NextUint64(8));
  tree_params.seed = rng.NextUint64();
  const Hierarchy tree = GenerateHierarchy(tree_params);

  // Random dataset shape.
  RecordGenParams data_params;
  data_params.num_records = 80 + static_cast<int64_t>(rng.NextUint64(60));
  data_params.avg_elements = 4 + static_cast<int>(rng.NextUint64(4));
  data_params.min_elements = 2;
  data_params.max_elements = data_params.avg_elements + 4;
  data_params.min_depth = 2;
  data_params.max_depth = tree_params.height;
  data_params.duplicate_fraction = 0.3 + rng.NextDouble() * 0.4;
  data_params.unmatched_token_rate = rng.NextDouble() * 0.3;
  data_params.typo_rate = rng.NextDouble() * 0.3;
  data_params.sibling_swap_rate = rng.NextDouble() * 0.3;
  data_params.synonym_rate = rng.NextDouble() * 0.3;
  data_params.zipf_exponent = rng.NextDouble() * 2.0;
  data_params.seed = rng.NextUint64();
  const Dataset dataset = DatasetGenerator(tree, data_params).Generate("random");

  // Random configuration.
  KJoinOptions options;
  options.delta = 0.5 + 0.1 * static_cast<double>(rng.NextUint64(5));
  options.tau = 0.5 + 0.1 * static_cast<double>(rng.NextUint64(5));
  const SignatureScheme schemes[] = {SignatureScheme::kNode, SignatureScheme::kShallowPath,
                                     SignatureScheme::kDeepPath};
  options.scheme = schemes[rng.NextUint64(3)];
  options.weighted_prefix =
      options.scheme == SignatureScheme::kDeepPath && rng.NextBool(0.5);
  const VerifyMode modes[] = {VerifyMode::kBasic, VerifyMode::kSubGraph,
                              VerifyMode::kAdaptive};
  options.verify_mode = modes[rng.NextUint64(3)];
  const SetMetric set_metrics[] = {SetMetric::kJaccard, SetMetric::kDice, SetMetric::kCosine};
  options.set_metric = set_metrics[rng.NextUint64(3)];
  options.element_metric =
      rng.NextBool(0.3) ? ElementMetric::kWuPalmer : ElementMetric::kKJoin;
  options.plus_mode = rng.NextBool(0.5);
  options.count_pruning = rng.NextBool(0.8);
  options.weighted_count_pruning = rng.NextBool(0.8);
  options.num_threads = 1 + static_cast<int>(rng.NextUint64(4));

  const PreparedObjects prepared =
      BuildObjects(tree, dataset, options.plus_mode, options.delta);

  const JoinResult result = KJoin(tree, options).SelfJoin(prepared.objects);
  const JoinResult oracle = NaiveJoin(tree, options).SelfJoin(prepared.objects);

  const PairSet got = ToSet(result.pairs);
  const PairSet expected = ToSet(oracle.pairs);
  for (const auto& pair : expected) {
    ASSERT_TRUE(got.count(pair))
        << "missing pair (" << pair.first << ", " << pair.second << ") with delta "
        << options.delta << " tau " << options.tau << " scheme "
        << static_cast<int>(options.scheme) << " mode "
        << static_cast<int>(options.verify_mode) << " set metric "
        << static_cast<int>(options.set_metric) << " plus " << options.plus_mode;
  }
  for (const auto& pair : got) {
    ASSERT_TRUE(expected.count(pair))
        << "spurious pair (" << pair.first << ", " << pair.second << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomJoinTest,
                         testing::Values(101u, 202u, 303u, 404u, 505u, 606u, 707u, 808u,
                                         909u, 1010u, 1111u, 1212u, 1313u, 1414u, 1515u,
                                         1616u));

}  // namespace
}  // namespace kjoin
