// Write-ahead-log suite (docs/serving.md, "Durability"): record framing
// round trips, the crash matrix (tail truncated or bit-flipped at and
// between every record boundary), semantic validation against the
// snapshot a log extends, fault-injected append/fsync failures, and the
// end-to-end kill-and-replay property — recovery reaches a state whose
// serialized snapshot is byte-identical to the pre-crash epoch's. Runs
// under the asan and tsan presets (fault points are compiled in there).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/kjoin_index.h"
#include "data/benchmark_suite.h"
#include "serve/index_manager.h"
#include "serve/snapshot.h"
#include "serve/wal.h"

namespace kjoin {
namespace {

// ------------------------------------------------------- shared fixture

constexpr int64_t kRecords = 200;

struct WalStack {
  Dataset dataset;
  std::shared_ptr<const Hierarchy> hierarchy;
  PreparedObjects prepared;
  KJoinOptions options;
};

WalStack& Stack() {
  static WalStack* stack = [] {
    auto* s = new WalStack();
    BenchmarkData data = MakePoiBenchmark(kRecords, /*seed=*/91);
    s->dataset = std::move(data.dataset);
    s->hierarchy = std::make_shared<const Hierarchy>(std::move(data.hierarchy));
    s->prepared = BuildObjects(*s->hierarchy, s->dataset,
                               /*multi_mapping=*/true, /*min_phi=*/0.8);
    s->options.delta = 0.8;
    s->options.tau = 0.6;
    s->options.plus_mode = true;
    return s;
  }();
  return *stack;
}

std::vector<Object> MakeInserts(int count, int64_t first_id) {
  const Dataset& dataset = Stack().dataset;
  ObjectBuilder* builder = Stack().prepared.builder.get();
  std::vector<Object> batch;
  batch.reserve(count);
  for (int i = 0; i < count; ++i) {
    batch.push_back(builder->Build(static_cast<int32_t>(first_id) + i,
                                   dataset.records[i % dataset.records.size()].tokens));
  }
  return batch;
}

std::vector<Object> MakeQueries(int count) {
  const Dataset& dataset = Stack().dataset;
  ObjectBuilder* builder = Stack().prepared.builder.get();
  std::vector<Object> queries;
  queries.reserve(count);
  for (int q = 0; q < count; ++q) {
    std::vector<std::string> tokens =
        dataset.records[(q * 97) % dataset.records.size()].tokens;
    if (tokens.empty()) continue;
    if (q % 2 == 1) tokens.pop_back();
    queries.push_back(builder->Build(-1, tokens));
  }
  return queries;
}

std::unique_ptr<serve::IndexManager> MakeManager(
    ThreadPool* pool, MetricsRegistry* metrics = nullptr,
    serve::IndexManagerOptions options = {}) {
  WalStack& stack = Stack();
  return std::make_unique<serve::IndexManager>(
      stack.hierarchy, stack.options, stack.prepared.objects,
      stack.prepared.builder->TokenTable(), stack.dataset.synonyms, pool, metrics,
      options);
}

std::string TempPath(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[1 << 14];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

serve::WalReplayInput BaseReplayInput() {
  serve::WalReplayInput input;
  input.tokens = Stack().prepared.builder->TokenTable();
  input.num_nodes = Stack().hierarchy->num_nodes();
  input.num_objects = kRecords;
  input.min_sequence_exclusive = 0;
  return input;
}

// The current epoch serialized — the "state bytes" the kill-and-replay
// property compares (postings are written sorted, so identical states
// serialize to identical bytes).
std::string StateBytes(const serve::IndexManager& manager) {
  const auto epoch = manager.Acquire();
  serve::SnapshotInput input;
  input.index = epoch->index.get();
  input.tokens = epoch->tokens;
  input.synonyms = epoch->synonyms;
  input.durable_seq = epoch->durable_seq;
  return serve::SerializeIndexSnapshot(input);
}

// ------------------------------------------------------- framing

// Appends three representative records (inserts + a token-table
// extension, deletes, plain inserts) and replays them back verbatim.
TEST(WalFormatTest, AppendReplayRoundTrip) {
  const std::string path = TempPath("wal_roundtrip.wal");
  serve::WriteAheadLog::Options options;
  options.fsync = true;
  auto wal = serve::WriteAheadLog::Open(path, options);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  const std::vector<std::string> base_tokens = Stack().prepared.builder->TokenTable();
  serve::WalRecord r1;
  r1.sequence = 1;
  r1.objects = MakeInserts(3, static_cast<int32_t>(kRecords));
  r1.token_base = static_cast<int64_t>(base_tokens.size());
  r1.token_suffix = {"wal_rt_zz_1", "wal_rt_zz_2"};
  serve::WalRecord r2;
  r2.sequence = 2;
  r2.deletes = {0, 7, 42};
  serve::WalRecord r3;
  r3.sequence = 3;
  r3.objects = MakeInserts(2, static_cast<int32_t>(kRecords) + 3);
  ASSERT_TRUE((*wal)->Append(r1).ok());
  ASSERT_TRUE((*wal)->Append(r2).ok());
  ASSERT_TRUE((*wal)->Append(r3).ok());
  EXPECT_GT((*wal)->size_bytes(), static_cast<int64_t>(serve::kWalHeaderBytes));
  wal->reset();  // close before reading

  auto replay = serve::WriteAheadLog::Replay(path, BaseReplayInput());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay->torn_tail);
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->records[0].sequence, 1);
  EXPECT_EQ(replay->records[0].objects.size(), 3u);
  EXPECT_EQ(replay->records[0].token_base, static_cast<int64_t>(base_tokens.size()));
  EXPECT_EQ(replay->records[0].token_suffix, r1.token_suffix);
  EXPECT_EQ(replay->records[1].deletes, r2.deletes);
  EXPECT_TRUE(replay->records[1].objects.empty());
  EXPECT_EQ(replay->records[2].objects.size(), 2u);
  // Parsed objects carry the same ids and element counts they went in with.
  for (size_t i = 0; i < r3.objects.size(); ++i) {
    EXPECT_EQ(replay->records[2].objects[i].id, r3.objects[i].id);
    EXPECT_EQ(replay->records[2].objects[i].elements.size(),
              r3.objects[i].elements.size());
  }
  std::remove(path.c_str());
}

TEST(WalFormatTest, MissingFileIsEmptyLog) {
  auto replay =
      serve::WriteAheadLog::Replay(TempPath("wal_never_created.wal"), BaseReplayInput());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->records.empty());
  EXPECT_FALSE(replay->torn_tail);
}

TEST(WalFormatTest, ForeignFileIsInvalidArgument) {
  const std::string path = TempPath("wal_foreign.wal");
  WriteFile(path, "definitely not a K-Join WAL, but comfortably past 8 bytes");
  const auto replay = serve::WriteAheadLog::Replay(path, BaseReplayInput());
  EXPECT_FALSE(replay.ok());
  EXPECT_TRUE(IsInvalidArgument(replay.status())) << replay.status().ToString();
  // Open must refuse it too, untouched, rather than appending after garbage.
  const auto wal = serve::WriteAheadLog::Open(path);
  EXPECT_FALSE(wal.ok());
  EXPECT_TRUE(IsInvalidArgument(wal.status())) << wal.status().ToString();
  std::remove(path.c_str());
}

// ------------------------------------------------------- crash matrix

// Writes a small log and records the file size after every append, so
// the crash tests below know every record boundary exactly.
struct BoundedLog {
  std::string path;
  std::string bytes;               // full intact file
  std::vector<int64_t> boundaries;  // size after each append
};

BoundedLog MakeBoundedLog(const std::string& name, int records) {
  BoundedLog log;
  log.path = TempPath(name);
  auto wal = serve::WriteAheadLog::Open(log.path);
  KJOIN_CHECK(wal.ok()) << wal.status();
  for (int i = 0; i < records; ++i) {
    serve::WalRecord record;
    record.sequence = i + 1;
    record.objects = MakeInserts(1 + i % 2, static_cast<int32_t>(kRecords + i * 2));
    if (i == 1) record.deletes = {3, 9};
    KJOIN_CHECK((*wal)->Append(record).ok());
    log.boundaries.push_back((*wal)->size_bytes());
  }
  wal->reset();
  log.bytes = ReadFile(log.path);
  KJOIN_CHECK(static_cast<int64_t>(log.bytes.size()) == log.boundaries.back());
  return log;
}

// The central crash property: truncate the log at EVERY byte length and
// replay — recovery keeps exactly the records whose frames are intact
// (the last acked batch with a complete frame) and flags the torn tail.
TEST(WalCrashTest, TruncationSweepKeepsExactlyTheIntactPrefix) {
  BoundedLog log = MakeBoundedLog("wal_trunc_sweep.wal", 4);
  const auto header = static_cast<int64_t>(serve::kWalHeaderBytes);
  for (int64_t cut = 0; cut <= static_cast<int64_t>(log.bytes.size()); ++cut) {
    WriteFile(log.path, log.bytes.substr(0, static_cast<size_t>(cut)));
    const auto replay = serve::WriteAheadLog::Replay(log.path, BaseReplayInput());
    ASSERT_TRUE(replay.ok()) << "cut=" << cut << ": " << replay.status().ToString();

    size_t expected = 0;
    int64_t valid = header;
    for (const int64_t boundary : log.boundaries) {
      if (boundary <= cut) {
        ++expected;
        valid = boundary;
      }
    }
    if (cut < header) valid = 0;  // even the header is gone
    ASSERT_EQ(replay->records.size(), expected) << "cut=" << cut;
    for (size_t i = 0; i < expected; ++i) {
      ASSERT_EQ(replay->records[i].sequence, static_cast<int64_t>(i) + 1)
          << "cut=" << cut;
    }
    EXPECT_EQ(static_cast<int64_t>(replay->valid_bytes), valid) << "cut=" << cut;
    EXPECT_EQ(replay->torn_tail, valid < cut) << "cut=" << cut;
  }
  std::remove(log.path.c_str());
}

// Companion property: flip every single byte of the record region (frame
// headers and payloads alike) — the CRC must catch it, replay keeps the
// records before the flipped one and reports the tail torn.
TEST(WalCrashTest, BitFlipSweepDropsFromTheFlippedRecordOn) {
  BoundedLog log = MakeBoundedLog("wal_flip_sweep.wal", 4);
  const auto header = static_cast<int64_t>(serve::kWalHeaderBytes);
  for (int64_t at = header; at < static_cast<int64_t>(log.bytes.size()); ++at) {
    std::string corrupt = log.bytes;
    corrupt[static_cast<size_t>(at)] ^= 0x41;
    WriteFile(log.path, corrupt);
    const auto replay = serve::WriteAheadLog::Replay(log.path, BaseReplayInput());

    // Which record owns the flipped byte: the first boundary past `at`.
    size_t flipped = 0;
    while (log.boundaries[flipped] <= at) ++flipped;

    // A flip in a frame's size field can masquerade as a shorter, CRC-
    // valid prefix only if the CRC also matched — impossible for a
    // single-byte flip. It CAN make a record look truncated or oversized;
    // both stop the scan at the flipped record.
    ASSERT_TRUE(replay.ok()) << "at=" << at << ": " << replay.status().ToString();
    ASSERT_EQ(replay->records.size(), flipped) << "at=" << at;
    for (size_t i = 0; i < flipped; ++i) {
      ASSERT_EQ(replay->records[i].sequence, static_cast<int64_t>(i) + 1);
    }
    EXPECT_TRUE(replay->torn_tail) << "at=" << at;
  }
  std::remove(log.path.c_str());
}

// Open() truncates a torn tail so new appends extend the intact prefix —
// and the rewritten log replays cleanly.
TEST(WalCrashTest, OpenTruncatesTornTailAndAppendsContinue) {
  BoundedLog log = MakeBoundedLog("wal_reopen.wal", 3);
  // Tear mid-way through the last record.
  const int64_t cut = (log.boundaries[1] + log.boundaries[2]) / 2;
  WriteFile(log.path, log.bytes.substr(0, static_cast<size_t>(cut)));

  auto wal = serve::WriteAheadLog::Open(log.path);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ((*wal)->size_bytes(), log.boundaries[1]);  // tail dropped
  serve::WalRecord record;
  record.sequence = 3;  // re-acked after the torn record was lost
  record.objects = MakeInserts(1, static_cast<int32_t>(kRecords + 50));
  ASSERT_TRUE((*wal)->Append(record).ok());
  wal->reset();

  const auto replay = serve::WriteAheadLog::Replay(log.path, BaseReplayInput());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->records[2].sequence, 3);
  EXPECT_FALSE(replay->torn_tail);
  std::remove(log.path.c_str());
}

// ------------------------------------------------------- semantics

TEST(WalSemanticsTest, SequenceGapIsDataLoss) {
  BoundedLog log = MakeBoundedLog("wal_gap.wal", 3);
  // Splice record 2 out: [header, r1][r3].
  const std::string spliced =
      log.bytes.substr(0, static_cast<size_t>(log.boundaries[0])) +
      log.bytes.substr(static_cast<size_t>(log.boundaries[1]));
  WriteFile(log.path, spliced);
  const auto replay = serve::WriteAheadLog::Replay(log.path, BaseReplayInput());
  ASSERT_FALSE(replay.ok());
  EXPECT_TRUE(IsDataLoss(replay.status())) << replay.status().ToString();
  std::remove(log.path.c_str());
}

TEST(WalSemanticsTest, LogBehindTheSnapshotIsDataLoss) {
  BoundedLog log = MakeBoundedLog("wal_behind.wal", 2);
  // The snapshot says durable_seq = 0 but the log starts at sequence 2:
  // records were truncated beyond what the snapshot covers.
  const std::string tail_only =
      log.bytes.substr(0, serve::kWalHeaderBytes) +
      log.bytes.substr(static_cast<size_t>(log.boundaries[0]));
  WriteFile(log.path, tail_only);
  const auto replay = serve::WriteAheadLog::Replay(log.path, BaseReplayInput());
  ASSERT_FALSE(replay.ok());
  EXPECT_TRUE(IsDataLoss(replay.status())) << replay.status().ToString();
  std::remove(log.path.c_str());
}

TEST(WalSemanticsTest, ReplaySkipsRecordsTheSnapshotCovers) {
  BoundedLog log = MakeBoundedLog("wal_skip.wal", 3);
  serve::WalReplayInput input = BaseReplayInput();
  input.min_sequence_exclusive = 2;
  // Records 1-2 inserted 3 objects (1 + 2); the snapshot covers them.
  input.num_objects = kRecords + 3;
  const auto replay = serve::WriteAheadLog::Replay(log.path, input);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].sequence, 3);
  std::remove(log.path.c_str());
}

TEST(WalSemanticsTest, TruncateDropsCoveredRecordsOnly) {
  BoundedLog log = MakeBoundedLog("wal_truncate.wal", 3);
  auto wal = serve::WriteAheadLog::Open(log.path);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_TRUE((*wal)->Truncate(2).ok());
  EXPECT_LT((*wal)->size_bytes(), log.boundaries[2]);
  wal->reset();

  serve::WalReplayInput input = BaseReplayInput();
  input.min_sequence_exclusive = 2;
  input.num_objects = kRecords + 3;
  const auto replay = serve::WriteAheadLog::Replay(log.path, input);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].sequence, 3);
  std::remove(log.path.c_str());
}

TEST(WalSemanticsTest, TokenTableDivergenceIsRejected) {
  const std::string path = TempPath("wal_tok_diverge.wal");
  auto wal = serve::WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  serve::WalRecord record;
  record.sequence = 1;
  // Claims to extend a 3-entry table; the snapshot's table is far bigger.
  record.token_base = 3;
  record.token_suffix = {"diverged"};
  ASSERT_TRUE((*wal)->Append(record).ok());
  wal->reset();
  const auto replay = serve::WriteAheadLog::Replay(path, BaseReplayInput());
  ASSERT_FALSE(replay.ok());
  EXPECT_TRUE(IsDataLoss(replay.status())) << replay.status().ToString();
  std::remove(path.c_str());
}

// ------------------------------------------------------- fault points

// An injected append or fsync failure must surface as a clean error on
// the mutating call, leave the served state untouched, and leave NO
// trace in the log — a batch the caller was told failed must not
// resurrect on recovery.
TEST(WalFaultTest, FailedAppendAcksNothingAndLeavesNoTrace) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault points compiled out";
  for (const char* point : {"serve/wal_append", "serve/wal_fsync"}) {
    const std::string snap = TempPath(std::string("wal_fault_") +
                                      (std::strchr(point, 'f') ? "fsync" : "append") +
                                      ".snap");
    const std::string wal = snap + ".wal";
    std::remove(wal.c_str());
    auto manager = MakeManager(nullptr);
    ASSERT_TRUE(manager->SaveSnapshot(snap).ok());
    ASSERT_TRUE(manager->AttachWal(wal).ok());
    ASSERT_TRUE(manager->InsertBatch(MakeInserts(2, kRecords)).ok());
    manager->Flush();
    const std::string before = StateBytes(*manager);
    const int64_t wal_before = manager->wal_size_bytes();

    {
      fault::Scope scope;
      fault::Enable(point);
      const Status failed = manager->InsertBatch(MakeInserts(3, kRecords + 2));
      ASSERT_FALSE(failed.ok()) << point;
      EXPECT_TRUE(IsDataLoss(failed)) << point << ": " << failed.ToString();
    }
    manager->Flush();
    // Nothing was acked: state and log both exactly as before the fault.
    EXPECT_EQ(StateBytes(*manager), before) << point;
    EXPECT_EQ(manager->wal_size_bytes(), wal_before) << point;

    // The log still appends fine, and recovery shows only acked batches.
    ASSERT_TRUE(manager->InsertBatch(MakeInserts(1, kRecords + 2)).ok());
    manager->Flush();
    const std::string after = StateBytes(*manager);
    manager.reset();
    auto recovered = serve::IndexManager::Recover(snap, wal, nullptr);
    ASSERT_TRUE(recovered.ok()) << point << ": " << recovered.status().ToString();
    EXPECT_EQ(StateBytes(**recovered), after) << point;
    std::remove(snap.c_str());
    std::remove(wal.c_str());
  }
}

// ------------------------------------------------------- recovery

// The acceptance property: snapshot, mutate through every write API,
// crash without a final snapshot, Recover() — the recovered epoch
// serializes to byte-identical state and answers every query identically.
TEST(WalRecoveryTest, KillAndReplayReachesByteIdenticalState) {
  const std::string snap = TempPath("wal_e2e.snap");
  const std::string wal = TempPath("wal_e2e.wal");
  auto manager = MakeManager(nullptr);
  ASSERT_TRUE(manager->SaveSnapshot(snap).ok());
  ASSERT_TRUE(manager->AttachWal(wal).ok());

  ObjectBuilder* builder = Stack().prepared.builder.get();
  ASSERT_TRUE(
      manager->InsertBatch(MakeInserts(6, kRecords), builder->TokenTable()).ok());
  ASSERT_TRUE(manager->DeleteObjects({2, 5}).ok());
  const Object replacement =
      builder->Build(9000, {"walwal", "replayed", "e2e_unique_token"});
  ASSERT_TRUE(manager->UpdateObject(7, replacement, builder->TokenTable()).ok());
  ASSERT_TRUE(manager->InsertBatch(MakeInserts(3, kRecords + 7)).ok());
  manager->Flush();

  const auto live = manager->Acquire();
  EXPECT_EQ(live->durable_seq, 4);
  EXPECT_GT(live->index->delta_depth(), 0);  // published as deltas, not rebuilds
  const std::string live_bytes = StateBytes(*manager);
  const std::vector<Object> queries = MakeQueries(24);
  manager.reset();  // crash: no final snapshot, the WAL is the only record

  auto recovered = serve::IndexManager::Recover(snap, wal, nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const auto rec = (*recovered)->Acquire();
  EXPECT_EQ(rec->durable_seq, 4);
  EXPECT_EQ(rec->tokens, live->tokens);
  EXPECT_EQ(rec->index->num_indexed(), live->index->num_indexed());
  EXPECT_EQ(rec->index->num_live(), live->index->num_live());
  EXPECT_EQ(StateBytes(**recovered), live_bytes);
  for (const Object& query : queries) {
    EXPECT_EQ(rec->index->Search(query), live->index->Search(query));
    EXPECT_EQ(rec->index->SearchTopK(query, 3, 0.6),
              live->index->SearchTopK(query, 3, 0.6));
  }
  // The deleted objects stay deleted and the replacement is live.
  EXPECT_TRUE(rec->index->deleted(2));
  EXPECT_TRUE(rec->index->deleted(7));
  EXPECT_FALSE(rec->index->deleted(kRecords + 6));  // the update's new slot
  std::remove(snap.c_str());
  std::remove(wal.c_str());
}

// A tokens-only update (interned tokens, no objects yet) must publish
// the table without copying or re-layering the index — and must be as
// durable as any other batch.
TEST(WalRecoveryTest, TokensOnlyUpdateSharesIndexAndSurvivesReplay) {
  const std::string snap = TempPath("wal_tokens_only.snap");
  const std::string wal = TempPath("wal_tokens_only.wal");
  auto manager = MakeManager(nullptr);
  ASSERT_TRUE(manager->SaveSnapshot(snap).ok());
  ASSERT_TRUE(manager->AttachWal(wal).ok());

  const auto before = manager->Acquire();
  std::vector<std::string> extended = before->tokens;
  extended.push_back("tokens_only_zz_1");
  extended.push_back("tokens_only_zz_2");
  ASSERT_TRUE(manager->InsertBatch({}, extended).ok());
  manager->Flush();

  const auto after = manager->Acquire();
  EXPECT_EQ(after->tokens, extended);
  EXPECT_EQ(after->version, before->version + 1);
  EXPECT_EQ(after->durable_seq, 1);
  // The index was shared, not copied: same object, depth unchanged.
  EXPECT_EQ(after->index.get(), before->index.get());

  manager.reset();
  auto recovered = serve::IndexManager::Recover(snap, wal, nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->Acquire()->tokens, extended);
  EXPECT_EQ((*recovered)->Acquire()->durable_seq, 1);
  std::remove(snap.c_str());
  std::remove(wal.c_str());
}

TEST(WalRecoveryTest, SaveSnapshotTruncatesTheWalAndRecoveryStillWorks) {
  const std::string snap = TempPath("wal_truncating.snap");
  const std::string wal = TempPath("wal_truncating.wal");
  auto manager = MakeManager(nullptr);
  ASSERT_TRUE(manager->SaveSnapshot(snap).ok());
  ASSERT_TRUE(manager->AttachWal(wal).ok());
  ASSERT_TRUE(manager->InsertBatch(MakeInserts(4, kRecords)).ok());
  ASSERT_TRUE(manager->InsertBatch(MakeInserts(2, kRecords + 4)).ok());
  manager->Flush();
  const int64_t grown = manager->wal_size_bytes();
  EXPECT_GT(grown, static_cast<int64_t>(serve::kWalHeaderBytes));

  // The new snapshot covers both records; the log shrinks to its header.
  ASSERT_TRUE(manager->SaveSnapshot(snap).ok());
  EXPECT_EQ(manager->wal_size_bytes(), static_cast<int64_t>(serve::kWalHeaderBytes));

  // Mutations after the snapshot land at the right sequence and replay
  // against it cleanly.
  ASSERT_TRUE(manager->DeleteObjects({1}).ok());
  manager->Flush();
  const std::string live_bytes = StateBytes(*manager);
  manager.reset();
  auto recovered = serve::IndexManager::Recover(snap, wal, nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(StateBytes(**recovered), live_bytes);
  std::remove(snap.c_str());
  std::remove(wal.c_str());
}

// Satellite: snapshots taken WHILE writers are acking batches are each a
// consistent cut, and snapshot+WAL always recovers to the final state.
// Runs under the tsan preset.
TEST(WalRecoveryTest, ConcurrentInsertsAndSnapshotsRecoverIdentically) {
  const std::string snap = TempPath("wal_concurrent.snap");
  const std::string wal = TempPath("wal_concurrent.wal");
  ThreadPool pool(2);
  auto manager = MakeManager(&pool);
  ASSERT_TRUE(manager->SaveSnapshot(snap).ok());
  ASSERT_TRUE(manager->AttachWal(wal).ok());

  constexpr int kBatches = 12;
  std::atomic<int> failures{0};
  std::thread writer([&] {
    for (int b = 0; b < kBatches; ++b) {
      if (!manager->InsertBatch(MakeInserts(2, kRecords + b * 2)).ok()) {
        failures.fetch_add(1);
      }
      if (b % 4 == 1 && !manager->DeleteObjects({b}).ok()) failures.fetch_add(1);
    }
  });
  for (int s = 0; s < 4; ++s) {
    ASSERT_TRUE(manager->SaveSnapshot(snap).ok());
  }
  writer.join();
  ASSERT_EQ(failures.load(), 0);
  manager->Flush();
  // One more snapshot cycle after the dust settles, then a final batch so
  // recovery exercises snapshot + tail records together.
  ASSERT_TRUE(manager->SaveSnapshot(snap).ok());
  ASSERT_TRUE(manager->InsertBatch(MakeInserts(1, kRecords + kBatches * 2)).ok());
  manager->Flush();
  const std::string live_bytes = StateBytes(*manager);
  manager.reset();

  auto recovered = serve::IndexManager::Recover(snap, wal, nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(StateBytes(**recovered), live_bytes);
  std::remove(snap.c_str());
  std::remove(wal.c_str());
}

// ------------------------------------------------------- compaction

// Delta chains past max_delta_layers are folded into a flat base by the
// rebuild loop; answers are identical before and after, and readers keep
// their old epoch.
TEST(CompactionTest, DeepChainFoldsToFlatBaseWithIdenticalAnswers) {
  MetricsRegistry metrics;
  serve::IndexManagerOptions options;
  options.max_delta_layers = 2;
  auto manager = MakeManager(nullptr, &metrics, options);

  // Build up a reference of expected answers from an uncompacted twin.
  serve::IndexManagerOptions lazy;
  lazy.max_delta_layers = 1000;  // never compacts
  auto twin = MakeManager(nullptr, nullptr, lazy);

  for (int b = 0; b < 5; ++b) {
    std::vector<Object> batch = MakeInserts(2, static_cast<int32_t>(kRecords + b * 2));
    ASSERT_TRUE(manager->InsertBatch(batch).ok());
    ASSERT_TRUE(twin->InsertBatch(std::move(batch)).ok());
    if (b == 2) {
      const std::vector<int32_t> doomed = {4, static_cast<int32_t>(kRecords) + 1};
      ASSERT_TRUE(manager->DeleteObjects(doomed).ok());
      ASSERT_TRUE(twin->DeleteObjects(doomed).ok());
    }
  }
  manager->Flush();
  twin->Flush();

  const auto compacted = manager->Acquire();
  const auto chained = twin->Acquire();
  EXPECT_LE(compacted->index->delta_depth(), options.max_delta_layers);
  EXPECT_GT(chained->index->delta_depth(), options.max_delta_layers);
  EXPECT_GE(metrics.counter("manager.compactions")->value(), 1);
  EXPECT_EQ(compacted->index->num_indexed(), chained->index->num_indexed());
  EXPECT_EQ(compacted->index->num_live(), chained->index->num_live());
  for (const Object& query : MakeQueries(16)) {
    EXPECT_EQ(compacted->index->Search(query), chained->index->Search(query));
  }
}

}  // namespace
}  // namespace kjoin
