#!/usr/bin/env python3
"""Diff a fresh bench_regression report against the last committed one.

    scripts/compare_bench.py fresh.json [--baseline BENCH_PR4.json]
                             [--tolerance 0.10]

Without --baseline, the newest committed BENCH_PR*.json in the repo root
(highest PR number) is used. Exits non-zero when any tracked metric
regresses by more than the tolerance (default 10%), or when a
results_identical flag that was true in the baseline turned false.

Tracked metrics are listed in TRACKED below: "lower is better" wall times
and "higher is better" throughputs. Metrics absent from either file are
skipped with a note — the schema is allowed to grow between PRs — so a
new section never breaks the comparison, and a dropped one is visible in
the output without failing it.
"""

import argparse
import glob
import json
import os
import re
import sys

# (json path, direction) — direction is "lower" or "higher" (better).
TRACKED = [
    (("micro_lca", "sparse_qps"), "higher"),
    (("micro_lca", "nodesim_cached_warm_qps"), "higher"),
    (("micro_hungarian", "sparse_qps"), "higher"),
    (("fig11_verify", "cache_on_verify_seconds"), "lower"),
    (("fig11_verify", "cache_off_verify_seconds"), "lower"),
    (("deadline_overhead", "control_seconds"), "lower"),
    # Serving sections from bench_search (docs/serving.md): the snapshot
    # speedup is a ratio of the two cold-start paths, so it is stable
    # where the raw load_seconds (milliseconds) would be noise-dominated.
    (("serving_cold_start", "snapshot_speedup"), "higher"),
    # Write path: the per-publish delta bytes are deterministic (a pure
    # function of the workload), so any growth means the delta layer
    # started copying state it used to share. The fsync-bound acked
    # latencies are too disk-noisy to gate on and are reported only.
    (("serving_write_path", "delta_publish_bytes_avg"), "lower"),
    # Admission: the adaptive controller's steady-state QPS must keep up
    # with the baseline run's (its overhead_pct also has an absolute <1%
    # gate below, independent of any baseline).
    (("serving_admission", "adaptive_qps"), "higher"),
    # Sharded scatter-gather: the 8-shard/8-client speedup over the
    # single-index path is a ratio of two same-run measurements, so it is
    # stable where raw QPS drifts with the machine.
    (("serving_sharded", "speedup_8shard_8client"), "higher"),
]

# Absolute gates checked on the fresh report alone — properties the
# current build must hold regardless of what the baseline measured.
# (json path, ceiling): fails when the value is present and >= ceiling.
ABSOLUTE_CEILINGS = [
    # Adaptive admission + health tracking must cost <1% QPS at steady
    # state vs a static-cap, no-metrics service (docs/robustness.md).
    (("serving_admission", "overhead_pct"), 1.0),
    # The Submit dispatcher (batching) path must cost <=5% QPS at one
    # client, where batches never form and its machinery is pure overhead
    # (docs/serving.md, "Sharded serving").
    (("serving_sharded", "batching", "overhead_pct"), 5.0),
]

# Absolute floors checked on the fresh report alone.
# (json path, floor): fails when the value is present and < floor.
ABSOLUTE_FLOORS = [
    # The scatter-gather cascade with progressive pruning must beat the
    # single-index path by >=2.5x at 8 shards / 8 clients on the top-1
    # lookup workload (docs/serving.md, "Sharded serving").
    (("serving_sharded", "speedup_8shard_8client"), 2.5),
]

# fig9_filter, fig10_filter_delta, fig14_threads, serving_qps,
# serving_delta_search and micro_intersect rows are arrays keyed by
# scheme / delta / thread count / client count / delta depth / ratio.
TRACKED_FIG9 = "total_seconds"  # per scheme, lower is better
TRACKED_FIG10 = "filter_seconds"  # per delta, lower is better
TRACKED_FIG14 = "total_seconds"  # per thread count, lower is better
TRACKED_SERVING = "qps"  # per client count, higher is better
TRACKED_DELTA = "delta_qps"  # per delta depth, higher is better
TRACKED_INTERSECT = "dispatched_qps"  # per length ratio, higher is better
# The skews worth gating on: balanced (merge kernel), the dispatch
# crossover, and heavy skew (gallop kernel). Intermediate rows are
# reported in the JSON but too noisy to fail on.
TRACKED_INTERSECT_RATIOS = ["1:1", "1:32", "1:1000"]

IDENTICAL_FLAGS = [
    ("fig11_verify", "results_identical"),
    ("micro_hungarian", "results_identical"),
    ("deadline_overhead", "results_identical"),
]


def lookup(report, path):
    node = report
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def latest_committed_baseline(repo_root):
    candidates = []
    for name in glob.glob(os.path.join(repo_root, "BENCH_PR*.json")):
        match = re.search(r"BENCH_PR(\d+)\.json$", name)
        if match:
            candidates.append((int(match.group(1)), name))
    if not candidates:
        return None
    return max(candidates)[1]


def compare_scalar(label, base, fresh, direction, tolerance, failures):
    if base is None or fresh is None:
        print(f"  skip  {label}: missing in {'baseline' if base is None else 'fresh run'}")
        return
    if not isinstance(base, (int, float)) or not isinstance(fresh, (int, float)) or base <= 0:
        print(f"  skip  {label}: not comparable ({base!r} vs {fresh!r})")
        return
    if direction == "lower":
        change = fresh / base - 1.0  # positive = slower
    else:
        change = base / fresh - 1.0 if fresh > 0 else float("inf")
    status = "ok   "
    if change > tolerance:
        status = "FAIL "
        failures.append(f"{label}: {change * 100.0:+.1f}% vs tolerance {tolerance * 100.0:.0f}%")
    print(f"  {status}{label}: {base:g} -> {fresh:g} ({change * 100.0:+.1f}% regression)")


def index_rows(rows, key):
    return {row[key]: row for row in rows if isinstance(row, dict) and key in row}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="fresh bench_regression JSON report")
    parser.add_argument("--baseline", help="committed report to compare against")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional regression per metric (default 0.10)")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_path = args.baseline or latest_committed_baseline(repo_root)
    if baseline_path is None:
        print("no committed BENCH_PR*.json found; nothing to compare against")
        return 0
    with open(baseline_path) as f:
        base = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)
    print(f"baseline: {baseline_path}")
    print(f"fresh:    {args.fresh}")

    failures = []
    for path, direction in TRACKED:
        compare_scalar("/".join(path), lookup(base, path), lookup(fresh, path), direction,
                       args.tolerance, failures)

    for path, ceiling in ABSOLUTE_CEILINGS:
        label = "/".join(path)
        value = lookup(fresh, path)
        if not isinstance(value, (int, float)):
            print(f"  skip  {label}: absent from fresh run (absolute ceiling {ceiling:g})")
            continue
        if value >= ceiling:
            failures.append(f"{label}: {value:g} breaches absolute ceiling {ceiling:g}")
            print(f"  FAIL {label}: {value:g} (absolute ceiling {ceiling:g})")
        else:
            print(f"  ok   {label}: {value:g} (absolute ceiling {ceiling:g})")

    for path, floor in ABSOLUTE_FLOORS:
        label = "/".join(path)
        value = lookup(fresh, path)
        if not isinstance(value, (int, float)):
            print(f"  skip  {label}: absent from fresh run (absolute floor {floor:g})")
            continue
        if value < floor:
            failures.append(f"{label}: {value:g} under absolute floor {floor:g}")
            print(f"  FAIL {label}: {value:g} (absolute floor {floor:g})")
        else:
            print(f"  ok   {label}: {value:g} (absolute floor {floor:g})")

    base_fig9 = index_rows(base.get("fig9_filter", []), "scheme")
    fresh_fig9 = index_rows(fresh.get("fig9_filter", []), "scheme")
    for scheme in base_fig9:
        compare_scalar(f"fig9_filter[{scheme}]/{TRACKED_FIG9}",
                       base_fig9[scheme].get(TRACKED_FIG9),
                       fresh_fig9.get(scheme, {}).get(TRACKED_FIG9),
                       "lower", args.tolerance, failures)

    base_fig10 = index_rows(base.get("fig10_filter_delta", []), "delta")
    fresh_fig10 = index_rows(fresh.get("fig10_filter_delta", []), "delta")
    for delta in base_fig10:
        compare_scalar(f"fig10_filter_delta[{delta}]/{TRACKED_FIG10}",
                       base_fig10[delta].get(TRACKED_FIG10),
                       fresh_fig10.get(delta, {}).get(TRACKED_FIG10),
                       "lower", args.tolerance, failures)
        base_flag = base_fig10[delta].get("results_identical")
        fresh_flag = fresh_fig10.get(delta, {}).get("results_identical")
        if base_flag is True and fresh_flag is False:
            failures.append(f"fig10_filter_delta[{delta}]/results_identical flipped to false")

    base_mi = index_rows(lookup(base, ("micro_intersect", "rows")) or [], "ratio")
    fresh_mi = index_rows(lookup(fresh, ("micro_intersect", "rows")) or [], "ratio")
    for ratio in TRACKED_INTERSECT_RATIOS:
        if ratio not in base_mi:
            continue
        compare_scalar(f"micro_intersect[{ratio}]/{TRACKED_INTERSECT}",
                       base_mi[ratio].get(TRACKED_INTERSECT),
                       fresh_mi.get(ratio, {}).get(TRACKED_INTERSECT),
                       "higher", args.tolerance, failures)
        if base_mi[ratio].get("identical") is True and \
                fresh_mi.get(ratio, {}).get("identical") is False:
            failures.append(f"micro_intersect[{ratio}]/identical flipped to false")
    base_acc = lookup(base, ("micro_intersect", "accumulate"))
    fresh_acc = lookup(fresh, ("micro_intersect", "accumulate"))
    if isinstance(base_acc, dict):
        compare_scalar("micro_intersect/accumulate/dispatched_mops",
                       base_acc.get("dispatched_mops"),
                       (fresh_acc or {}).get("dispatched_mops"),
                       "higher", args.tolerance, failures)
        if base_acc.get("identical") is True and \
                (fresh_acc or {}).get("identical") is False:
            failures.append("micro_intersect/accumulate/identical flipped to false")

    base_fig14 = index_rows(base.get("fig14_threads", []), "threads")
    fresh_fig14 = index_rows(fresh.get("fig14_threads", []), "threads")
    for threads in base_fig14:
        compare_scalar(f"fig14_threads[{threads}]/{TRACKED_FIG14}",
                       base_fig14[threads].get(TRACKED_FIG14),
                       fresh_fig14.get(threads, {}).get(TRACKED_FIG14),
                       "lower", args.tolerance, failures)
        base_flag = base_fig14[threads].get("results_identical")
        fresh_flag = fresh_fig14.get(threads, {}).get("results_identical")
        if base_flag is True and fresh_flag is False:
            failures.append(f"fig14_threads[{threads}]/results_identical flipped to false")

    base_serving = index_rows(base.get("serving_qps", []), "clients")
    fresh_serving = index_rows(fresh.get("serving_qps", []), "clients")
    for clients in base_serving:
        compare_scalar(f"serving_qps[{clients}]/{TRACKED_SERVING}",
                       base_serving[clients].get(TRACKED_SERVING),
                       fresh_serving.get(clients, {}).get(TRACKED_SERVING),
                       "higher", args.tolerance, failures)
        base_flag = base_serving[clients].get("results_identical")
        fresh_flag = fresh_serving.get(clients, {}).get("results_identical")
        if base_flag is True and fresh_flag is False:
            failures.append(f"serving_qps[{clients}]/results_identical flipped to false")

    base_delta = index_rows(base.get("serving_delta_search", []), "depth")
    fresh_delta = index_rows(fresh.get("serving_delta_search", []), "depth")
    for depth in base_delta:
        compare_scalar(f"serving_delta_search[{depth}]/{TRACKED_DELTA}",
                       base_delta[depth].get(TRACKED_DELTA),
                       fresh_delta.get(depth, {}).get(TRACKED_DELTA),
                       "higher", args.tolerance, failures)
        base_flag = base_delta[depth].get("results_identical")
        fresh_flag = fresh_delta.get(depth, {}).get("results_identical")
        if base_flag is True and fresh_flag is False:
            failures.append(f"serving_delta_search[{depth}]/results_identical flipped to false")

    # serving_sharded rows are keyed by (shards, clients); identity at
    # every shard count is the determinism contract, so any flip fails.
    def sharded_rows(report, key):
        rows = lookup(report, ("serving_sharded", key)) or []
        return {(row.get("shards", 0), row["clients"]): row
                for row in rows if isinstance(row, dict) and "clients" in row}

    for key in ("single_index", "sharded"):
        base_rows = sharded_rows(base, key)
        fresh_rows = sharded_rows(fresh, key)
        for row_key in base_rows:
            label = f"serving_sharded/{key}[shards={row_key[0]},clients={row_key[1]}]"
            compare_scalar(f"{label}/qps", base_rows[row_key].get("qps"),
                           fresh_rows.get(row_key, {}).get("qps"),
                           "higher", args.tolerance, failures)
            base_flag = base_rows[row_key].get("results_identical")
            fresh_flag = fresh_rows.get(row_key, {}).get("results_identical")
            if base_flag is True and fresh_flag is False:
                failures.append(f"{label}/results_identical flipped to false")
    # Identity must also hold absolutely on the fresh run, baseline or not.
    fresh_sharded = lookup(fresh, ("serving_sharded", "sharded")) or []
    for row in fresh_sharded:
        if isinstance(row, dict) and row.get("results_identical") is False:
            failures.append(
                f"serving_sharded/sharded[shards={row.get('shards')},"
                f"clients={row.get('clients')}]/results_identical is false")
    fresh_prune = lookup(fresh, ("serving_sharded", "tau_prune"))
    if isinstance(fresh_prune, dict) and fresh_prune.get("bound_tightenings", 0) <= 0:
        failures.append("serving_sharded/tau_prune/bound_tightenings is zero — "
                        "the progressive bound never engaged")

    # serving_network rows are keyed by connection count. Identity is the
    # wire contract — loopback answers must be byte-identical to the
    # in-process router — so any false flag fails absolutely, and the
    # network path must hold >=0.5x the in-process QPS at 8 connections
    # regardless of what the baseline measured (docs/serving.md,
    # "Network protocol").
    base_net = index_rows(lookup(base, ("serving_network", "network")) or [],
                          "connections")
    fresh_net = index_rows(lookup(fresh, ("serving_network", "network")) or [],
                           "connections")
    for conns in base_net:
        compare_scalar(f"serving_network[{conns}]/qps",
                       base_net[conns].get("qps"),
                       fresh_net.get(conns, {}).get("qps"),
                       "higher", args.tolerance, failures)
    for conns, row in sorted(fresh_net.items()):
        if row.get("results_identical") is False:
            failures.append(f"serving_network[{conns}]/results_identical is false")
    net_floor = 0.5
    net_row8 = fresh_net.get(8)
    if isinstance(net_row8, dict) and \
            isinstance(net_row8.get("qps_vs_inprocess"), (int, float)):
        ratio = net_row8["qps_vs_inprocess"]
        if ratio < net_floor:
            failures.append(f"serving_network[8]/qps_vs_inprocess: {ratio:g} "
                            f"under absolute floor {net_floor:g}")
            print(f"  FAIL serving_network[8]/qps_vs_inprocess: {ratio:g} "
                  f"(absolute floor {net_floor:g})")
        else:
            print(f"  ok   serving_network[8]/qps_vs_inprocess: {ratio:g} "
                  f"(absolute floor {net_floor:g})")
    elif fresh_net:
        print("  skip  serving_network[8]/qps_vs_inprocess: absent from fresh run")

    for path in IDENTICAL_FLAGS:
        base_flag = lookup(base, path)
        fresh_flag = lookup(fresh, path)
        if base_flag is True and fresh_flag is False:
            failures.append("/".join(path) + " flipped to false")

    if failures:
        print("\nregressions beyond tolerance:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nno tracked metric regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
