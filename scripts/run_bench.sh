#!/usr/bin/env bash
# Builds the release tree and runs the bench-regression harness, writing a
# machine-readable report (default BENCH_PR4.json in the repo root).
#
#   scripts/run_bench.sh [out.json] [extra bench_regression flags...]
#
# Compare the report against the committed one from the previous PR to
# catch hot-path regressions; docs/performance.md describes the schema.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo/BENCH_PR4.json}"
shift || true

cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" --target bench_regression -j "$(nproc)"
"$repo/build/bench/bench_regression" --out "$out" "$@"
echo "report: $out"
