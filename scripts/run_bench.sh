#!/usr/bin/env bash
# Builds the release tree and runs the bench-regression harness, the
# serving sections of bench_search and the filter-kernel microbench,
# merging all three into one machine-readable report (default
# BENCH_PR10.json in the repo root).
#
#   scripts/run_bench.sh [out.json] [extra bench_regression flags...]
#
# Compare the report against the committed one from the previous PR to
# catch hot-path regressions; docs/performance.md describes the
# bench_regression schema and the micro_intersect section, and
# docs/serving.md the serving sections (serving_cold_start, serving_qps,
# serving_admission, serving_write_path, serving_delta_search,
# serving_sharded, serving_network).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo/BENCH_PR10.json}"
shift || true

cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" --target bench_regression bench_search bench_micro_intersect \
  -j "$(nproc)"

regression="$(mktemp /tmp/bench_regression.XXXXXX.json)"
serving="$(mktemp /tmp/bench_serving.XXXXXX.json)"
intersect="$(mktemp /tmp/bench_intersect.XXXXXX.json)"
"$repo/build/bench/bench_regression" --out "$regression" "$@"
"$repo/build/bench/bench_search" --out "$serving"
"$repo/build/bench/bench_micro_intersect" --out "$intersect"

python3 - "$regression" "$serving" "$intersect" "$out" <<'EOF'
import json, sys
merged = {}
for path in sys.argv[1:4]:
    with open(path) as f:
        merged.update(json.load(f))
with open(sys.argv[4], "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
EOF
rm -f "$regression" "$serving" "$intersect"
echo "report: $out"
