#!/usr/bin/env bash
# Builds the release tree and runs the bench-regression harness plus the
# serving sections of bench_search, merging both into one machine-readable
# report (default BENCH_PR6.json in the repo root).
#
#   scripts/run_bench.sh [out.json] [extra bench_regression flags...]
#
# Compare the report against the committed one from the previous PR to
# catch hot-path regressions; docs/performance.md describes the
# bench_regression schema and docs/serving.md the serving sections
# (serving_cold_start, serving_qps, serving_write_path,
# serving_delta_search).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo/BENCH_PR6.json}"
shift || true

cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" --target bench_regression bench_search -j "$(nproc)"

regression="$(mktemp /tmp/bench_regression.XXXXXX.json)"
serving="$(mktemp /tmp/bench_serving.XXXXXX.json)"
"$repo/build/bench/bench_regression" --out "$regression" "$@"
"$repo/build/bench/bench_search" --out "$serving"

python3 - "$regression" "$serving" "$out" <<'EOF'
import json, sys
merged = {}
for path in sys.argv[1:3]:
    with open(path) as f:
        merged.update(json.load(f))
with open(sys.argv[3], "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
EOF
rm -f "$regression" "$serving"
echo "report: $out"
