#!/usr/bin/env bash
# Full verification sweep: builds and tests the release, asan, and tsan
# presets (see CMakePresets.json). The sanitizer presets compile with
# KJOIN_FAULT_INJECTION=1, so the resilience and serving suites'
# fault-point tests run for real there instead of skipping; their ctest
# filters keep the sanitizer passes to the threading/memory-sensitive
# suites plus resilience_test and serve_test (docs/robustness.md,
# docs/serving.md — snapshot byte surgery under asan, the concurrent
# epoch-swap and search-service tests under tsan).
#
#   scripts/check.sh                 # release + asan + tsan
#   scripts/check.sh default         # just one preset
#   scripts/check.sh --bench [...]   # additionally run bench_regression
#                                    # and diff it against the last
#                                    # committed BENCH_PR*.json
#                                    # (scripts/compare_bench.py, fails on
#                                    # >10% regression in tracked metrics)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
run_bench=0
presets=()
for arg in "$@"; do
  if [[ "$arg" == "--bench" ]]; then
    run_bench=1
  else
    presets+=("$arg")
  fi
done
if [[ ${#presets[@]} -eq 0 ]]; then
  presets=(default asan tsan)
fi

for preset in "${presets[@]}"; do
  echo "==> [$preset] configure"
  cmake --preset "$preset" -S "$repo" >/dev/null
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "==> [$preset] test"
  (cd "$repo" && ctest --preset "$preset")
done
echo "all presets green: ${presets[*]}"

if [[ $run_bench -eq 1 ]]; then
  echo "==> [bench] fresh bench_regression run"
  fresh="$(mktemp /tmp/bench_fresh.XXXXXX.json)"
  "$repo/scripts/run_bench.sh" "$fresh"
  echo "==> [bench] compare against last committed BENCH_PR*.json"
  python3 "$repo/scripts/compare_bench.py" "$fresh"
  echo "bench comparison passed"
fi
