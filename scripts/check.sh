#!/usr/bin/env bash
# Full verification sweep: builds and tests the release, asan, and tsan
# presets (see CMakePresets.json). The sanitizer presets compile with
# KJOIN_FAULT_INJECTION=1, so the resilience suite's fault-point tests run
# for real there instead of skipping; their ctest filters keep the
# sanitizer passes to the threading/memory-sensitive suites plus
# resilience_test (docs/robustness.md).
#
#   scripts/check.sh            # release + asan + tsan
#   scripts/check.sh default    # just one preset
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
presets=("$@")
if [[ ${#presets[@]} -eq 0 ]]; then
  presets=(default asan tsan)
fi

for preset in "${presets[@]}"; do
  echo "==> [$preset] configure"
  cmake --preset "$preset" -S "$repo" >/dev/null
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "==> [$preset] test"
  (cd "$repo" && ctest --preset "$preset")
done
echo "all presets green: ${presets[*]}"
