#!/usr/bin/env bash
# Full verification sweep: builds and tests the release, asan, and tsan
# presets (see CMakePresets.json). The sanitizer presets compile with
# KJOIN_FAULT_INJECTION=1, so the resilience and serving suites'
# fault-point tests run for real there instead of skipping; their ctest
# filters keep the sanitizer passes to the threading/memory-sensitive
# suites plus resilience_test, serve_test, wal_test, shard_test and
# chaos_test (docs/robustness.md, docs/serving.md — snapshot byte
# surgery under asan; the concurrent epoch-swap, search-service and
# shard-router scatter-gather tests under tsan; the sharded chaos case
# with one degraded shard, ShardChaosTest.DegradedShardKeepsServingReads,
# runs under both).
#
#   scripts/check.sh                 # release + asan + tsan
#   scripts/check.sh default         # just one preset
#   scripts/check.sh --bench [...]   # additionally run bench_regression
#                                    # and diff it against the last
#                                    # committed BENCH_PR*.json
#                                    # (scripts/compare_bench.py, fails on
#                                    # >10% regression in tracked metrics)
#   scripts/check.sh --recovery      # additionally run the WAL
#                                    # kill-and-replay harness: a writer
#                                    # process is hard-killed mid-stream,
#                                    # the log tail is torn, and recovery
#                                    # must reproduce every acked batch
#                                    # byte-identically
#                                    # (examples/wal_kill_replay.cc)
#   scripts/check.sh --no-simd       # additionally re-run the filter
#                                    # suites with KJOIN_FORCE_SCALAR=1,
#                                    # pinning the kernel dispatch
#                                    # (core/simd.h) to the scalar
#                                    # fallbacks — the results must not
#                                    # change
#   scripts/check.sh --net           # additionally run the two-process
#                                    # network smoke under every preset: a
#                                    # --listen kjoin_server is started on
#                                    # an ephemeral loopback port, a
#                                    # --connect process replays queries
#                                    # and exits non-zero unless every
#                                    # response is bit-identical to its
#                                    # own in-process router, then SIGTERM
#                                    # must drain cleanly (every accepted
#                                    # request answered, zero connections
#                                    # left)
#   scripts/check.sh --chaos         # additionally run the chaos harness
#                                    # (tests/chaos_test.cc) at full
#                                    # strength: KJOIN_CHAOS_TRIALS=300
#                                    # randomized kill-and-recover trials
#                                    # under both sanitizer presets, with
#                                    # seeded fault storms over the WAL,
#                                    # snapshot and directory-fsync paths
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
run_bench=0
run_recovery=0
run_no_simd=0
run_chaos=0
run_net=0
chaos_trials="${KJOIN_CHAOS_TRIALS:-300}"
presets=()
for arg in "$@"; do
  if [[ "$arg" == "--bench" ]]; then
    run_bench=1
  elif [[ "$arg" == "--recovery" ]]; then
    run_recovery=1
  elif [[ "$arg" == "--no-simd" ]]; then
    run_no_simd=1
  elif [[ "$arg" == "--chaos" ]]; then
    run_chaos=1
  elif [[ "$arg" == "--net" ]]; then
    run_net=1
  else
    presets+=("$arg")
  fi
done
if [[ ${#presets[@]} -eq 0 ]]; then
  presets=(default asan tsan)
fi

for preset in "${presets[@]}"; do
  echo "==> [$preset] configure"
  cmake --preset "$preset" -S "$repo" >/dev/null
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "==> [$preset] test"
  (cd "$repo" && ctest --preset "$preset")
done
echo "all presets green: ${presets[*]}"
if [[ $run_chaos -eq 0 ]]; then
  echo "(chaos harness ran at its quick in-suite default; scripts/check.sh --chaos runs the ${chaos_trials}-trial sweep)"
fi

if [[ $run_no_simd -eq 1 ]]; then
  # Scalar-fallback pass: the same release binaries, with dispatch forced
  # to the scalar kernels before the first probe. Covers the suites that
  # exercise the filter engine (the simd_test identity sweeps assert the
  # join results and JoinStats counters match the SIMD paths bit for bit).
  echo "==> [no-simd] release suites with KJOIN_FORCE_SCALAR=1"
  cmake -B "$repo/build" -S "$repo" >/dev/null
  cmake --build "$repo/build" -j "$(nproc)" >/dev/null
  (cd "$repo/build" && KJOIN_FORCE_SCALAR=1 ctest --output-on-failure \
    -L '^(simd_test|core_test|kjoin_test|property_test|random_join_test|serve_test)$')
  echo "no-simd pass green"
fi

if [[ $run_recovery -eq 1 ]]; then
  echo "==> [recovery] build wal_kill_replay"
  cmake -B "$repo/build" -S "$repo" >/dev/null
  cmake --build "$repo/build" --target wal_kill_replay -j "$(nproc)" >/dev/null
  harness="$repo/build/examples/wal_kill_replay"
  workdir="$(mktemp -d /tmp/kjoin_recovery.XXXXXX)"
  trap 'rm -rf "$workdir"' EXIT

  echo "==> [recovery] writer killed mid-stream after batch 17/30"
  "$harness" --dir "$workdir" --mode writer --batches 30 --kill-after 17 && status=0 || status=$?
  if [[ $status -ne 7 ]]; then
    echo "expected the writer to _exit(7), got $status" >&2
    exit 1
  fi
  echo "==> [recovery] tear the log tail (simulated crash mid-append)"
  "$harness" --dir "$workdir" --mode tear
  echo "==> [recovery] verify: every acked batch recovered byte-identically"
  "$harness" --dir "$workdir" --mode verify
  echo "==> [recovery] resume the writer to completion and re-verify"
  "$harness" --dir "$workdir" --mode writer --batches 30
  "$harness" --dir "$workdir" --mode verify
  echo "recovery harness passed"
fi

if [[ $run_net -eq 1 ]]; then
  # Two-process loopback smoke over the KJNP front end. The connect-side
  # process builds its own copy of the dataset and router and fails hard
  # on any response that is not bit-identical to the in-process answer,
  # so this covers the full wire path: framing, CRC, request decode,
  # router dispatch, response encode, and the SIGTERM drain contract.
  for preset in default asan tsan; do
    echo "==> [net/$preset] build kjoin_server"
    cmake --preset "$preset" -S "$repo" >/dev/null
    cmake --build --preset "$preset" --target kjoin_server -j "$(nproc)" >/dev/null
    if [[ "$preset" == "default" ]]; then
      bin="$repo/build/examples/kjoin_server"
    else
      bin="$repo/build-$preset/examples/kjoin_server"
    fi
    log="$(mktemp /tmp/kjoin_net.XXXXXX.log)"
    "$bin" --n 400 --listen 0 --loops 2 >"$log" 2>&1 &
    server_pid=$!
    port=""
    for _ in $(seq 1 200); do
      port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$log" | head -n 1)"
      [[ -n "$port" ]] && break
      kill -0 "$server_pid" 2>/dev/null || break
      sleep 0.1
    done
    if [[ -z "$port" ]]; then
      echo "[net/$preset] server never reported a listen port:" >&2
      cat "$log" >&2
      kill "$server_pid" 2>/dev/null || true
      exit 1
    fi
    echo "==> [net/$preset] loopback queries + write path on port $port"
    if ! "$bin" --n 400 --connect "127.0.0.1:$port" --clients 4 --queries 25; then
      echo "[net/$preset] connect-side run failed" >&2
      kill "$server_pid" 2>/dev/null || true
      exit 1
    fi
    echo "==> [net/$preset] SIGTERM drain"
    kill -TERM "$server_pid"
    wait "$server_pid"
    if ! grep -q "drained cleanly" "$log"; then
      echo "[net/$preset] server did not drain cleanly:" >&2
      cat "$log" >&2
      exit 1
    fi
    rm -f "$log"
  done
  echo "net smoke passed (default + asan + tsan)"
fi

if [[ $run_chaos -eq 1 ]]; then
  # Full-strength chaos: the default ctest passes above already run the
  # suite at its quick 25-trial default; this pass re-runs the randomized
  # kill-and-recover harness at $chaos_trials trials under both
  # sanitizers, where fault points are compiled in and the seeded storms
  # actually fire.
  for preset in asan tsan; do
    echo "==> [chaos/$preset] build chaos_test"
    cmake --preset "$preset" -S "$repo" >/dev/null
    cmake --build --preset "$preset" --target chaos_test -j "$(nproc)" >/dev/null
    echo "==> [chaos/$preset] $chaos_trials randomized kill-and-recover trials"
    KJOIN_CHAOS_TRIALS="$chaos_trials" \
      "$repo/build-$preset/tests/chaos_test" \
      --gtest_filter='ChaosTest.RandomizedKillAndRecoverTrials'
    echo "==> [chaos/$preset] sharded serving with one degraded shard"
    cmake --build --preset "$preset" --target shard_test -j "$(nproc)" >/dev/null
    "$repo/build-$preset/tests/shard_test" \
      --gtest_filter='ShardChaosTest.DegradedShardKeepsServingReads'
  done
  echo "chaos harness passed ($chaos_trials trials per sanitizer)"
fi

if [[ $run_bench -eq 1 ]]; then
  echo "==> [bench] fresh bench_regression run"
  fresh="$(mktemp /tmp/bench_fresh.XXXXXX.json)"
  "$repo/scripts/run_bench.sh" "$fresh"
  echo "==> [bench] compare against last committed BENCH_PR*.json"
  python3 "$repo/scripts/compare_bench.py" "$fresh"
  echo "bench comparison passed"
fi
