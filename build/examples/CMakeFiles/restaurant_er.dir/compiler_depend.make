# Empty compiler generated dependencies file for restaurant_er.
# This may be replaced when dependencies are built.
