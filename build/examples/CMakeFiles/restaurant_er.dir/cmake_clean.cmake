file(REMOVE_RECURSE
  "CMakeFiles/restaurant_er.dir/restaurant_er.cc.o"
  "CMakeFiles/restaurant_er.dir/restaurant_er.cc.o.d"
  "restaurant_er"
  "restaurant_er.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restaurant_er.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
