# Empty compiler generated dependencies file for metrics_tour.
# This may be replaced when dependencies are built.
