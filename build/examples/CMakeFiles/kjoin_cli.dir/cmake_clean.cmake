file(REMOVE_RECURSE
  "CMakeFiles/kjoin_cli.dir/kjoin_cli.cc.o"
  "CMakeFiles/kjoin_cli.dir/kjoin_cli.cc.o.d"
  "kjoin_cli"
  "kjoin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kjoin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
