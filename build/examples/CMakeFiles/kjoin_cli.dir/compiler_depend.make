# Empty compiler generated dependencies file for kjoin_cli.
# This may be replaced when dependencies are built.
