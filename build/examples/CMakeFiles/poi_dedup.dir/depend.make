# Empty dependencies file for poi_dedup.
# This may be replaced when dependencies are built.
