file(REMOVE_RECURSE
  "CMakeFiles/poi_dedup.dir/poi_dedup.cc.o"
  "CMakeFiles/poi_dedup.dir/poi_dedup.cc.o.d"
  "poi_dedup"
  "poi_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poi_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
