file(REMOVE_RECURSE
  "CMakeFiles/tweet_poi_join.dir/tweet_poi_join.cc.o"
  "CMakeFiles/tweet_poi_join.dir/tweet_poi_join.cc.o.d"
  "tweet_poi_join"
  "tweet_poi_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tweet_poi_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
