# Empty dependencies file for tweet_poi_join.
# This may be replaced when dependencies are built.
