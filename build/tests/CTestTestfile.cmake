# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/matching_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/kjoin_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/topk_ppjoin_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/contracts_test[1]_include.cmake")
include("/root/repo/build/tests/random_join_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
