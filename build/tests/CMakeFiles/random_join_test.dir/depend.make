# Empty dependencies file for random_join_test.
# This may be replaced when dependencies are built.
