file(REMOVE_RECURSE
  "CMakeFiles/random_join_test.dir/random_join_test.cc.o"
  "CMakeFiles/random_join_test.dir/random_join_test.cc.o.d"
  "random_join_test"
  "random_join_test.pdb"
  "random_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
