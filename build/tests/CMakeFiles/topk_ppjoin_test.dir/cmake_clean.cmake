file(REMOVE_RECURSE
  "CMakeFiles/topk_ppjoin_test.dir/topk_ppjoin_test.cc.o"
  "CMakeFiles/topk_ppjoin_test.dir/topk_ppjoin_test.cc.o.d"
  "topk_ppjoin_test"
  "topk_ppjoin_test.pdb"
  "topk_ppjoin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_ppjoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
