# Empty dependencies file for topk_ppjoin_test.
# This may be replaced when dependencies are built.
