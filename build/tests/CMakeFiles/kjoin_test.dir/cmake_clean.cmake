file(REMOVE_RECURSE
  "CMakeFiles/kjoin_test.dir/kjoin_test.cc.o"
  "CMakeFiles/kjoin_test.dir/kjoin_test.cc.o.d"
  "kjoin_test"
  "kjoin_test.pdb"
  "kjoin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kjoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
