# Empty dependencies file for kjoin_test.
# This may be replaced when dependencies are built.
