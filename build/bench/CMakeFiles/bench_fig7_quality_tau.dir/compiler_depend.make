# Empty compiler generated dependencies file for bench_fig7_quality_tau.
# This may be replaced when dependencies are built.
