file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_quality_tau.dir/bench_fig7_quality_tau.cc.o"
  "CMakeFiles/bench_fig7_quality_tau.dir/bench_fig7_quality_tau.cc.o.d"
  "bench_fig7_quality_tau"
  "bench_fig7_quality_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_quality_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
