file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_quality_delta.dir/bench_fig8_quality_delta.cc.o"
  "CMakeFiles/bench_fig8_quality_delta.dir/bench_fig8_quality_delta.cc.o.d"
  "bench_fig8_quality_delta"
  "bench_fig8_quality_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_quality_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
