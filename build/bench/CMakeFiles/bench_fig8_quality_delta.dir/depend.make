# Empty dependencies file for bench_fig8_quality_delta.
# This may be replaced when dependencies are built.
