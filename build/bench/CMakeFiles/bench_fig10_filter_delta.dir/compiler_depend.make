# Empty compiler generated dependencies file for bench_fig10_filter_delta.
# This may be replaced when dependencies are built.
