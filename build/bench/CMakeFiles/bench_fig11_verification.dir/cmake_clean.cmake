file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_verification.dir/bench_fig11_verification.cc.o"
  "CMakeFiles/bench_fig11_verification.dir/bench_fig11_verification.cc.o.d"
  "bench_fig11_verification"
  "bench_fig11_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
