# Empty dependencies file for bench_fig9_filter_tau.
# This may be replaced when dependencies are built.
