# Empty compiler generated dependencies file for bench_micro_lca.
# This may be replaced when dependencies are built.
