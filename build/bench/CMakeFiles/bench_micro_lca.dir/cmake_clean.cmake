file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_lca.dir/bench_micro_lca.cc.o"
  "CMakeFiles/bench_micro_lca.dir/bench_micro_lca.cc.o.d"
  "bench_micro_lca"
  "bench_micro_lca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_lca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
