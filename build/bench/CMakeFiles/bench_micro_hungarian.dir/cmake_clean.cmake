file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_hungarian.dir/bench_micro_hungarian.cc.o"
  "CMakeFiles/bench_micro_hungarian.dir/bench_micro_hungarian.cc.o.d"
  "bench_micro_hungarian"
  "bench_micro_hungarian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_hungarian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
