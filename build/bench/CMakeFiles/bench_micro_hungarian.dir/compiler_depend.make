# Empty compiler generated dependencies file for bench_micro_hungarian.
# This may be replaced when dependencies are built.
