# Empty dependencies file for bench_micro_signatures.
# This may be replaced when dependencies are built.
