file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_signatures.dir/bench_micro_signatures.cc.o"
  "CMakeFiles/bench_micro_signatures.dir/bench_micro_signatures.cc.o.d"
  "bench_micro_signatures"
  "bench_micro_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
