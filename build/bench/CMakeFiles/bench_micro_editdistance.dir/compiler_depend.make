# Empty compiler generated dependencies file for bench_micro_editdistance.
# This may be replaced when dependencies are built.
