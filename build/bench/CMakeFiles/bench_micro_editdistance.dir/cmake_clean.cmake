file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_editdistance.dir/bench_micro_editdistance.cc.o"
  "CMakeFiles/bench_micro_editdistance.dir/bench_micro_editdistance.cc.o.d"
  "bench_micro_editdistance"
  "bench_micro_editdistance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_editdistance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
