# Empty dependencies file for bench_fig13_compare_delta.
# This may be replaced when dependencies are built.
