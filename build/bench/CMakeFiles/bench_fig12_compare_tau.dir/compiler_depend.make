# Empty compiler generated dependencies file for bench_fig12_compare_tau.
# This may be replaced when dependencies are built.
