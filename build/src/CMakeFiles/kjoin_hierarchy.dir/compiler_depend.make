# Empty compiler generated dependencies file for kjoin_hierarchy.
# This may be replaced when dependencies are built.
