
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hierarchy/dag.cc" "src/CMakeFiles/kjoin_hierarchy.dir/hierarchy/dag.cc.o" "gcc" "src/CMakeFiles/kjoin_hierarchy.dir/hierarchy/dag.cc.o.d"
  "/root/repo/src/hierarchy/hierarchy.cc" "src/CMakeFiles/kjoin_hierarchy.dir/hierarchy/hierarchy.cc.o" "gcc" "src/CMakeFiles/kjoin_hierarchy.dir/hierarchy/hierarchy.cc.o.d"
  "/root/repo/src/hierarchy/hierarchy_builder.cc" "src/CMakeFiles/kjoin_hierarchy.dir/hierarchy/hierarchy_builder.cc.o" "gcc" "src/CMakeFiles/kjoin_hierarchy.dir/hierarchy/hierarchy_builder.cc.o.d"
  "/root/repo/src/hierarchy/hierarchy_generator.cc" "src/CMakeFiles/kjoin_hierarchy.dir/hierarchy/hierarchy_generator.cc.o" "gcc" "src/CMakeFiles/kjoin_hierarchy.dir/hierarchy/hierarchy_generator.cc.o.d"
  "/root/repo/src/hierarchy/hierarchy_io.cc" "src/CMakeFiles/kjoin_hierarchy.dir/hierarchy/hierarchy_io.cc.o" "gcc" "src/CMakeFiles/kjoin_hierarchy.dir/hierarchy/hierarchy_io.cc.o.d"
  "/root/repo/src/hierarchy/lca.cc" "src/CMakeFiles/kjoin_hierarchy.dir/hierarchy/lca.cc.o" "gcc" "src/CMakeFiles/kjoin_hierarchy.dir/hierarchy/lca.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
