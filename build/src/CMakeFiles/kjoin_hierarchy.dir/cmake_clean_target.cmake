file(REMOVE_RECURSE
  "libkjoin_hierarchy.a"
)
