file(REMOVE_RECURSE
  "CMakeFiles/kjoin_hierarchy.dir/hierarchy/dag.cc.o"
  "CMakeFiles/kjoin_hierarchy.dir/hierarchy/dag.cc.o.d"
  "CMakeFiles/kjoin_hierarchy.dir/hierarchy/hierarchy.cc.o"
  "CMakeFiles/kjoin_hierarchy.dir/hierarchy/hierarchy.cc.o.d"
  "CMakeFiles/kjoin_hierarchy.dir/hierarchy/hierarchy_builder.cc.o"
  "CMakeFiles/kjoin_hierarchy.dir/hierarchy/hierarchy_builder.cc.o.d"
  "CMakeFiles/kjoin_hierarchy.dir/hierarchy/hierarchy_generator.cc.o"
  "CMakeFiles/kjoin_hierarchy.dir/hierarchy/hierarchy_generator.cc.o.d"
  "CMakeFiles/kjoin_hierarchy.dir/hierarchy/hierarchy_io.cc.o"
  "CMakeFiles/kjoin_hierarchy.dir/hierarchy/hierarchy_io.cc.o.d"
  "CMakeFiles/kjoin_hierarchy.dir/hierarchy/lca.cc.o"
  "CMakeFiles/kjoin_hierarchy.dir/hierarchy/lca.cc.o.d"
  "libkjoin_hierarchy.a"
  "libkjoin_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kjoin_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
