file(REMOVE_RECURSE
  "CMakeFiles/kjoin_data.dir/data/benchmark_suite.cc.o"
  "CMakeFiles/kjoin_data.dir/data/benchmark_suite.cc.o.d"
  "CMakeFiles/kjoin_data.dir/data/dataset.cc.o"
  "CMakeFiles/kjoin_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/kjoin_data.dir/data/dataset_io.cc.o"
  "CMakeFiles/kjoin_data.dir/data/dataset_io.cc.o.d"
  "CMakeFiles/kjoin_data.dir/data/generator.cc.o"
  "CMakeFiles/kjoin_data.dir/data/generator.cc.o.d"
  "CMakeFiles/kjoin_data.dir/data/quality.cc.o"
  "CMakeFiles/kjoin_data.dir/data/quality.cc.o.d"
  "libkjoin_data.a"
  "libkjoin_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kjoin_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
