# Empty dependencies file for kjoin_data.
# This may be replaced when dependencies are built.
