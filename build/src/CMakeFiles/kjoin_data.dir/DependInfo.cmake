
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/benchmark_suite.cc" "src/CMakeFiles/kjoin_data.dir/data/benchmark_suite.cc.o" "gcc" "src/CMakeFiles/kjoin_data.dir/data/benchmark_suite.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/kjoin_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/kjoin_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/dataset_io.cc" "src/CMakeFiles/kjoin_data.dir/data/dataset_io.cc.o" "gcc" "src/CMakeFiles/kjoin_data.dir/data/dataset_io.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/CMakeFiles/kjoin_data.dir/data/generator.cc.o" "gcc" "src/CMakeFiles/kjoin_data.dir/data/generator.cc.o.d"
  "/root/repo/src/data/quality.cc" "src/CMakeFiles/kjoin_data.dir/data/quality.cc.o" "gcc" "src/CMakeFiles/kjoin_data.dir/data/quality.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kjoin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kjoin_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kjoin_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kjoin_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
