file(REMOVE_RECURSE
  "libkjoin_data.a"
)
