file(REMOVE_RECURSE
  "CMakeFiles/kjoin_matching.dir/matching/bigraph.cc.o"
  "CMakeFiles/kjoin_matching.dir/matching/bigraph.cc.o.d"
  "CMakeFiles/kjoin_matching.dir/matching/bounds.cc.o"
  "CMakeFiles/kjoin_matching.dir/matching/bounds.cc.o.d"
  "CMakeFiles/kjoin_matching.dir/matching/greedy_matching.cc.o"
  "CMakeFiles/kjoin_matching.dir/matching/greedy_matching.cc.o.d"
  "CMakeFiles/kjoin_matching.dir/matching/hungarian.cc.o"
  "CMakeFiles/kjoin_matching.dir/matching/hungarian.cc.o.d"
  "libkjoin_matching.a"
  "libkjoin_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kjoin_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
