# Empty dependencies file for kjoin_matching.
# This may be replaced when dependencies are built.
