
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/bigraph.cc" "src/CMakeFiles/kjoin_matching.dir/matching/bigraph.cc.o" "gcc" "src/CMakeFiles/kjoin_matching.dir/matching/bigraph.cc.o.d"
  "/root/repo/src/matching/bounds.cc" "src/CMakeFiles/kjoin_matching.dir/matching/bounds.cc.o" "gcc" "src/CMakeFiles/kjoin_matching.dir/matching/bounds.cc.o.d"
  "/root/repo/src/matching/greedy_matching.cc" "src/CMakeFiles/kjoin_matching.dir/matching/greedy_matching.cc.o" "gcc" "src/CMakeFiles/kjoin_matching.dir/matching/greedy_matching.cc.o.d"
  "/root/repo/src/matching/hungarian.cc" "src/CMakeFiles/kjoin_matching.dir/matching/hungarian.cc.o" "gcc" "src/CMakeFiles/kjoin_matching.dir/matching/hungarian.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
