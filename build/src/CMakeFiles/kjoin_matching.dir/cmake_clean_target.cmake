file(REMOVE_RECURSE
  "libkjoin_matching.a"
)
