
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/clustering.cc" "src/CMakeFiles/kjoin_core.dir/core/clustering.cc.o" "gcc" "src/CMakeFiles/kjoin_core.dir/core/clustering.cc.o.d"
  "/root/repo/src/core/element.cc" "src/CMakeFiles/kjoin_core.dir/core/element.cc.o" "gcc" "src/CMakeFiles/kjoin_core.dir/core/element.cc.o.d"
  "/root/repo/src/core/element_similarity.cc" "src/CMakeFiles/kjoin_core.dir/core/element_similarity.cc.o" "gcc" "src/CMakeFiles/kjoin_core.dir/core/element_similarity.cc.o.d"
  "/root/repo/src/core/kjoin.cc" "src/CMakeFiles/kjoin_core.dir/core/kjoin.cc.o" "gcc" "src/CMakeFiles/kjoin_core.dir/core/kjoin.cc.o.d"
  "/root/repo/src/core/kjoin_index.cc" "src/CMakeFiles/kjoin_core.dir/core/kjoin_index.cc.o" "gcc" "src/CMakeFiles/kjoin_core.dir/core/kjoin_index.cc.o.d"
  "/root/repo/src/core/object.cc" "src/CMakeFiles/kjoin_core.dir/core/object.cc.o" "gcc" "src/CMakeFiles/kjoin_core.dir/core/object.cc.o.d"
  "/root/repo/src/core/object_similarity.cc" "src/CMakeFiles/kjoin_core.dir/core/object_similarity.cc.o" "gcc" "src/CMakeFiles/kjoin_core.dir/core/object_similarity.cc.o.d"
  "/root/repo/src/core/prefix.cc" "src/CMakeFiles/kjoin_core.dir/core/prefix.cc.o" "gcc" "src/CMakeFiles/kjoin_core.dir/core/prefix.cc.o.d"
  "/root/repo/src/core/signature.cc" "src/CMakeFiles/kjoin_core.dir/core/signature.cc.o" "gcc" "src/CMakeFiles/kjoin_core.dir/core/signature.cc.o.d"
  "/root/repo/src/core/topk_join.cc" "src/CMakeFiles/kjoin_core.dir/core/topk_join.cc.o" "gcc" "src/CMakeFiles/kjoin_core.dir/core/topk_join.cc.o.d"
  "/root/repo/src/core/verifier.cc" "src/CMakeFiles/kjoin_core.dir/core/verifier.cc.o" "gcc" "src/CMakeFiles/kjoin_core.dir/core/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kjoin_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kjoin_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kjoin_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kjoin_matching.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
