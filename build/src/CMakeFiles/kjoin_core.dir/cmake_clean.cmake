file(REMOVE_RECURSE
  "CMakeFiles/kjoin_core.dir/core/clustering.cc.o"
  "CMakeFiles/kjoin_core.dir/core/clustering.cc.o.d"
  "CMakeFiles/kjoin_core.dir/core/element.cc.o"
  "CMakeFiles/kjoin_core.dir/core/element.cc.o.d"
  "CMakeFiles/kjoin_core.dir/core/element_similarity.cc.o"
  "CMakeFiles/kjoin_core.dir/core/element_similarity.cc.o.d"
  "CMakeFiles/kjoin_core.dir/core/kjoin.cc.o"
  "CMakeFiles/kjoin_core.dir/core/kjoin.cc.o.d"
  "CMakeFiles/kjoin_core.dir/core/kjoin_index.cc.o"
  "CMakeFiles/kjoin_core.dir/core/kjoin_index.cc.o.d"
  "CMakeFiles/kjoin_core.dir/core/object.cc.o"
  "CMakeFiles/kjoin_core.dir/core/object.cc.o.d"
  "CMakeFiles/kjoin_core.dir/core/object_similarity.cc.o"
  "CMakeFiles/kjoin_core.dir/core/object_similarity.cc.o.d"
  "CMakeFiles/kjoin_core.dir/core/prefix.cc.o"
  "CMakeFiles/kjoin_core.dir/core/prefix.cc.o.d"
  "CMakeFiles/kjoin_core.dir/core/signature.cc.o"
  "CMakeFiles/kjoin_core.dir/core/signature.cc.o.d"
  "CMakeFiles/kjoin_core.dir/core/topk_join.cc.o"
  "CMakeFiles/kjoin_core.dir/core/topk_join.cc.o.d"
  "CMakeFiles/kjoin_core.dir/core/verifier.cc.o"
  "CMakeFiles/kjoin_core.dir/core/verifier.cc.o.d"
  "libkjoin_core.a"
  "libkjoin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kjoin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
