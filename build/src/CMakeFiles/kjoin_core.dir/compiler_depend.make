# Empty compiler generated dependencies file for kjoin_core.
# This may be replaced when dependencies are built.
