file(REMOVE_RECURSE
  "libkjoin_core.a"
)
