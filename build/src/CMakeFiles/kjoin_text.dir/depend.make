# Empty dependencies file for kjoin_text.
# This may be replaced when dependencies are built.
