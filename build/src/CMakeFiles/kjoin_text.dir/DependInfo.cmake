
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/edit_distance.cc" "src/CMakeFiles/kjoin_text.dir/text/edit_distance.cc.o" "gcc" "src/CMakeFiles/kjoin_text.dir/text/edit_distance.cc.o.d"
  "/root/repo/src/text/entity_matcher.cc" "src/CMakeFiles/kjoin_text.dir/text/entity_matcher.cc.o" "gcc" "src/CMakeFiles/kjoin_text.dir/text/entity_matcher.cc.o.d"
  "/root/repo/src/text/qgram_index.cc" "src/CMakeFiles/kjoin_text.dir/text/qgram_index.cc.o" "gcc" "src/CMakeFiles/kjoin_text.dir/text/qgram_index.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/kjoin_text.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/kjoin_text.dir/text/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kjoin_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kjoin_hierarchy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
