file(REMOVE_RECURSE
  "libkjoin_text.a"
)
