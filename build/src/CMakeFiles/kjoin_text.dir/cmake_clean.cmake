file(REMOVE_RECURSE
  "CMakeFiles/kjoin_text.dir/text/edit_distance.cc.o"
  "CMakeFiles/kjoin_text.dir/text/edit_distance.cc.o.d"
  "CMakeFiles/kjoin_text.dir/text/entity_matcher.cc.o"
  "CMakeFiles/kjoin_text.dir/text/entity_matcher.cc.o.d"
  "CMakeFiles/kjoin_text.dir/text/qgram_index.cc.o"
  "CMakeFiles/kjoin_text.dir/text/qgram_index.cc.o.d"
  "CMakeFiles/kjoin_text.dir/text/tokenizer.cc.o"
  "CMakeFiles/kjoin_text.dir/text/tokenizer.cc.o.d"
  "libkjoin_text.a"
  "libkjoin_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kjoin_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
