file(REMOVE_RECURSE
  "libkjoin_baselines.a"
)
