# Empty compiler generated dependencies file for kjoin_baselines.
# This may be replaced when dependencies are built.
