file(REMOVE_RECURSE
  "CMakeFiles/kjoin_baselines.dir/baselines/crowd_join.cc.o"
  "CMakeFiles/kjoin_baselines.dir/baselines/crowd_join.cc.o.d"
  "CMakeFiles/kjoin_baselines.dir/baselines/fastjoin.cc.o"
  "CMakeFiles/kjoin_baselines.dir/baselines/fastjoin.cc.o.d"
  "CMakeFiles/kjoin_baselines.dir/baselines/naive_join.cc.o"
  "CMakeFiles/kjoin_baselines.dir/baselines/naive_join.cc.o.d"
  "CMakeFiles/kjoin_baselines.dir/baselines/ppjoin.cc.o"
  "CMakeFiles/kjoin_baselines.dir/baselines/ppjoin.cc.o.d"
  "CMakeFiles/kjoin_baselines.dir/baselines/synonym_join.cc.o"
  "CMakeFiles/kjoin_baselines.dir/baselines/synonym_join.cc.o.d"
  "libkjoin_baselines.a"
  "libkjoin_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kjoin_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
