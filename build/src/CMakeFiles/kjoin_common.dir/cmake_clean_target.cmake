file(REMOVE_RECURSE
  "libkjoin_common.a"
)
