file(REMOVE_RECURSE
  "CMakeFiles/kjoin_common.dir/common/flags.cc.o"
  "CMakeFiles/kjoin_common.dir/common/flags.cc.o.d"
  "CMakeFiles/kjoin_common.dir/common/logging.cc.o"
  "CMakeFiles/kjoin_common.dir/common/logging.cc.o.d"
  "CMakeFiles/kjoin_common.dir/common/rng.cc.o"
  "CMakeFiles/kjoin_common.dir/common/rng.cc.o.d"
  "CMakeFiles/kjoin_common.dir/common/string_util.cc.o"
  "CMakeFiles/kjoin_common.dir/common/string_util.cc.o.d"
  "libkjoin_common.a"
  "libkjoin_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kjoin_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
