# Empty dependencies file for kjoin_common.
# This may be replaced when dependencies are built.
