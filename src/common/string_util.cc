#include "common/string_util.h"

#include <cctype>

namespace kjoin {

std::string ToLowerAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char separator) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == separator) {
      pieces.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> pieces;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) pieces.emplace_back(text.substr(start, i - start));
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string FormatWithCommas(int64_t n) {
  const bool negative = n < 0;
  uint64_t magnitude = negative ? (0 - static_cast<uint64_t>(n)) : static_cast<uint64_t>(n);
  std::string digits = std::to_string(magnitude);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

bool IsValidUtf8(std::string_view text) {
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const unsigned char lead = static_cast<unsigned char>(text[i]);
    if (lead < 0x80) {
      ++i;
      continue;
    }
    int continuation = 0;
    uint32_t codepoint = 0;
    uint32_t min_codepoint = 0;
    if ((lead & 0xE0) == 0xC0) {
      continuation = 1;
      codepoint = lead & 0x1F;
      min_codepoint = 0x80;
    } else if ((lead & 0xF0) == 0xE0) {
      continuation = 2;
      codepoint = lead & 0x0F;
      min_codepoint = 0x800;
    } else if ((lead & 0xF8) == 0xF0) {
      continuation = 3;
      codepoint = lead & 0x07;
      min_codepoint = 0x10000;
    } else {
      return false;  // stray continuation byte or invalid lead (0xF8+)
    }
    if (i + continuation >= n) return false;  // truncated sequence
    for (int k = 1; k <= continuation; ++k) {
      const unsigned char byte = static_cast<unsigned char>(text[i + k]);
      if ((byte & 0xC0) != 0x80) return false;
      codepoint = (codepoint << 6) | (byte & 0x3F);
    }
    if (codepoint < min_codepoint) return false;                  // overlong
    if (codepoint >= 0xD800 && codepoint <= 0xDFFF) return false;  // surrogate
    if (codepoint > 0x10FFFF) return false;
    i += continuation + 1;
  }
  return true;
}

}  // namespace kjoin
