#include "common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/string_util.h"

namespace kjoin {

struct FlagSet::Flag {
  enum class Type { kInt, kDouble, kBool, kString };

  std::string name;
  std::string help;
  Type type;
  int64_t int_value = 0;
  double double_value = 0.0;
  bool bool_value = false;
  std::string string_value;

  std::string DefaultString() const {
    switch (type) {
      case Type::kInt:
        return std::to_string(int_value);
      case Type::kDouble: {
        std::ostringstream os;
        os << double_value;
        return os.str();
      }
      case Type::kBool:
        return bool_value ? "true" : "false";
      case Type::kString:
        return "\"" + string_value + "\"";
    }
    return "";
  }

  bool SetFromString(const std::string& text) {
    char* end = nullptr;
    switch (type) {
      case Type::kInt: {
        const long long v = std::strtoll(text.c_str(), &end, 10);
        if (end == text.c_str() || *end != '\0') return false;
        int_value = v;
        return true;
      }
      case Type::kDouble: {
        const double v = std::strtod(text.c_str(), &end);
        if (end == text.c_str() || *end != '\0') return false;
        double_value = v;
        return true;
      }
      case Type::kBool: {
        if (text == "true" || text == "1") {
          bool_value = true;
          return true;
        }
        if (text == "false" || text == "0") {
          bool_value = false;
          return true;
        }
        return false;
      }
      case Type::kString:
        string_value = text;
        return true;
    }
    return false;
  }
};

FlagSet::FlagSet(std::string program_name) : program_name_(std::move(program_name)) {}
FlagSet::~FlagSet() = default;

int64_t* FlagSet::Int(const std::string& name, int64_t default_value, const std::string& help) {
  auto flag = std::make_unique<Flag>();
  flag->name = name;
  flag->help = help;
  flag->type = Flag::Type::kInt;
  flag->int_value = default_value;
  flags_.push_back(std::move(flag));
  return &flags_.back()->int_value;
}

double* FlagSet::Double(const std::string& name, double default_value, const std::string& help) {
  auto flag = std::make_unique<Flag>();
  flag->name = name;
  flag->help = help;
  flag->type = Flag::Type::kDouble;
  flag->double_value = default_value;
  flags_.push_back(std::move(flag));
  return &flags_.back()->double_value;
}

bool* FlagSet::Bool(const std::string& name, bool default_value, const std::string& help) {
  auto flag = std::make_unique<Flag>();
  flag->name = name;
  flag->help = help;
  flag->type = Flag::Type::kBool;
  flag->bool_value = default_value;
  flags_.push_back(std::move(flag));
  return &flags_.back()->bool_value;
}

std::string* FlagSet::String(const std::string& name, const std::string& default_value,
                             const std::string& help) {
  auto flag = std::make_unique<Flag>();
  flag->name = name;
  flag->help = help;
  flag->type = Flag::Type::kString;
  flag->string_value = default_value;
  flags_.push_back(std::move(flag));
  return &flags_.back()->string_value;
}

FlagSet::Flag* FlagSet::Find(const std::string& name) {
  for (auto& flag : flags_) {
    if (flag->name == name) return flag.get();
  }
  return nullptr;
}

std::string FlagSet::Usage() const {
  std::ostringstream os;
  os << "Usage: " << program_name_ << " [flags]\n";
  for (const auto& flag : flags_) {
    os << "  --" << flag->name << "  (default " << flag->DefaultString() << ")  " << flag->help
       << "\n";
  }
  return os.str();
}

bool FlagSet::Parse(int argc, char** argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage().c_str(), stderr);
      return false;
    }
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    Flag* flag = Find(arg);
    if (flag == nullptr && StartsWith(arg, "no")) {
      Flag* negated = Find(arg.substr(2));
      if (negated != nullptr && negated->type == Flag::Type::kBool && !has_value) {
        negated->bool_value = false;
        continue;
      }
    }
    if (flag == nullptr) {
      std::fprintf(stderr, "Unknown flag --%s\n%s", arg.c_str(), Usage().c_str());
      return false;
    }
    if (!has_value) {
      if (flag->type == Flag::Type::kBool) {
        flag->bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "Flag --%s needs a value\n", arg.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!flag->SetFromString(value)) {
      std::fprintf(stderr, "Bad value '%s' for flag --%s\n", value.c_str(), arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace kjoin
