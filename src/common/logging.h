#ifndef KJOIN_COMMON_LOGGING_H_
#define KJOIN_COMMON_LOGGING_H_

// Minimal logging and invariant-checking facility.
//
// The library follows the Google style rule of not throwing exceptions;
// programming errors (broken invariants, out-of-range arguments) terminate
// the process through the CHECK family below, while recoverable conditions
// are reported through return values (std::optional and friends).
//
// Usage:
//   KJOIN_LOG(INFO) << "indexed " << n << " objects";
//   KJOIN_CHECK(depth >= 0) << "negative depth " << depth;
//   KJOIN_CHECK_LE(lo, hi);

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace kjoin {

enum class LogSeverity {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Messages below this severity are dropped. Defaults to kInfo.
LogSeverity MinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);

namespace internal_logging {

// Accumulates one log line and emits it (to stderr) on destruction.
// A kFatal message aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
  LogSeverity severity_;
};

// Swallows the streamed expression when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace kjoin

#define KJOIN_LOG_DEBUG \
  ::kjoin::internal_logging::LogMessage(__FILE__, __LINE__, ::kjoin::LogSeverity::kDebug).stream()
#define KJOIN_LOG_INFO \
  ::kjoin::internal_logging::LogMessage(__FILE__, __LINE__, ::kjoin::LogSeverity::kInfo).stream()
#define KJOIN_LOG_WARNING \
  ::kjoin::internal_logging::LogMessage(__FILE__, __LINE__, ::kjoin::LogSeverity::kWarning).stream()
#define KJOIN_LOG_ERROR \
  ::kjoin::internal_logging::LogMessage(__FILE__, __LINE__, ::kjoin::LogSeverity::kError).stream()
#define KJOIN_LOG_FATAL \
  ::kjoin::internal_logging::LogMessage(__FILE__, __LINE__, ::kjoin::LogSeverity::kFatal).stream()

#define KJOIN_LOG(severity) KJOIN_LOG_##severity

// CHECK: always-on invariant checks. The streamed text (if any) is appended
// to the failure message.
#define KJOIN_CHECK(condition)                                    \
  if (condition) {                                                \
  } else                                                          \
    ::kjoin::internal_logging::LogMessage(__FILE__, __LINE__,     \
                                          ::kjoin::LogSeverity::kFatal) \
            .stream()                                             \
        << "Check failed: " #condition " "

#define KJOIN_CHECK_OP(lhs, rhs, op) \
  KJOIN_CHECK((lhs)op(rhs)) << "(" << (lhs) << " vs " << (rhs) << ") "

#define KJOIN_CHECK_EQ(lhs, rhs) KJOIN_CHECK_OP(lhs, rhs, ==)
#define KJOIN_CHECK_NE(lhs, rhs) KJOIN_CHECK_OP(lhs, rhs, !=)
#define KJOIN_CHECK_LT(lhs, rhs) KJOIN_CHECK_OP(lhs, rhs, <)
#define KJOIN_CHECK_LE(lhs, rhs) KJOIN_CHECK_OP(lhs, rhs, <=)
#define KJOIN_CHECK_GT(lhs, rhs) KJOIN_CHECK_OP(lhs, rhs, >)
#define KJOIN_CHECK_GE(lhs, rhs) KJOIN_CHECK_OP(lhs, rhs, >=)

// DCHECK: compiled out in release builds (NDEBUG).
#ifdef NDEBUG
#define KJOIN_DCHECK(condition) \
  while (false) ::kjoin::internal_logging::NullStream()
#define KJOIN_DCHECK_EQ(lhs, rhs) KJOIN_DCHECK((lhs) == (rhs))
#define KJOIN_DCHECK_LE(lhs, rhs) KJOIN_DCHECK((lhs) <= (rhs))
#define KJOIN_DCHECK_LT(lhs, rhs) KJOIN_DCHECK((lhs) < (rhs))
#else
#define KJOIN_DCHECK(condition) KJOIN_CHECK(condition)
#define KJOIN_DCHECK_EQ(lhs, rhs) KJOIN_CHECK_EQ(lhs, rhs)
#define KJOIN_DCHECK_LE(lhs, rhs) KJOIN_CHECK_LE(lhs, rhs)
#define KJOIN_DCHECK_LT(lhs, rhs) KJOIN_CHECK_LT(lhs, rhs)
#endif

#endif  // KJOIN_COMMON_LOGGING_H_
