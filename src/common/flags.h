#ifndef KJOIN_COMMON_FLAGS_H_
#define KJOIN_COMMON_FLAGS_H_

// A tiny command-line flag parser for the example and benchmark binaries.
//
//   kjoin::FlagSet flags("bench_fig9");
//   int* n = flags.Int("n", 20000, "number of objects");
//   double* tau = flags.Double("tau", 0.85, "object threshold");
//   if (!flags.Parse(argc, argv)) return 1;   // prints usage on error/--help
//
// Accepted syntaxes: --name=value, --name value, --flag (bool true),
// --noflag (bool false).

#include <memory>
#include <string>
#include <vector>

namespace kjoin {

class FlagSet {
 public:
  explicit FlagSet(std::string program_name);
  ~FlagSet();

  FlagSet(const FlagSet&) = delete;
  FlagSet& operator=(const FlagSet&) = delete;

  // Registration. The returned pointer stays valid for the FlagSet's
  // lifetime and holds the default until Parse runs.
  int64_t* Int(const std::string& name, int64_t default_value, const std::string& help);
  double* Double(const std::string& name, double default_value, const std::string& help);
  bool* Bool(const std::string& name, bool default_value, const std::string& help);
  std::string* String(const std::string& name, const std::string& default_value,
                      const std::string& help);

  // Parses argv. Returns false (after printing usage) on unknown flags,
  // malformed values, or --help.
  bool Parse(int argc, char** argv);

  // Positional (non-flag) arguments seen during Parse.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string Usage() const;

 private:
  struct Flag;
  Flag* Find(const std::string& name);

  std::string program_name_;
  std::vector<std::unique_ptr<Flag>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace kjoin

#endif  // KJOIN_COMMON_FLAGS_H_
