#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace kjoin {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (int t = 0; t < num_threads_ - 1; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // A 1-lane pool has no workers; drain anything Schedule()d inline.
  while (RunOneTask()) {
  }
}

void ThreadPool::Schedule(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    KJOIN_CHECK(!stop_) << "Schedule on a stopping ThreadPool";
    queue_.push_back(std::move(fn));
  }
  task_ready_.notify_one();
}

void ThreadPool::RunTimed(const std::function<void()>& fn) {
  const int64_t start = NowNanos();
  fn();
  const int64_t elapsed = NowNanos() - start;
  std::lock_guard<std::mutex> lock(mu_);
  ++tasks_executed_;
  busy_nanos_ += elapsed;
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  RunTimed(task);
  return true;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: Schedule()d work is executed,
      // not dropped.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RunTimed(task);
  }
}

int ThreadPool::ParallelFor(int64_t n, int max_shards,
                            const std::function<void(int, int64_t, int64_t)>& fn) {
  if (n <= 0) return 0;
  const int shards = static_cast<int>(std::min<int64_t>(n, std::max(1, max_shards)));
  // Shard boundaries are a pure function of (n, shards): contiguous,
  // non-empty, sizes differing by at most one.
  const auto shard_begin = [n, shards](int s) { return n * s / shards; };

  if (shards == 1) {
    RunTimed([&] { fn(0, 0, n); });
    return 1;
  }

  struct Sync {
    std::mutex mu;
    std::condition_variable done;
    int pending;
  } sync{{}, {}, shards};

  const auto run_shard = [&fn, &sync, shard_begin](int s) {
    fn(s, shard_begin(s), shard_begin(s + 1));
    // Notify while holding the lock: Sync lives on the ParallelFor stack
    // frame, and the waiter may destroy it the moment it can observe
    // pending == 0 — which, with the lock held, is only after notify_all
    // has returned and the lock is released.
    std::lock_guard<std::mutex> lock(sync.mu);
    if (--sync.pending == 0) sync.done.notify_all();
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int s = 1; s < shards; ++s) {
      queue_.push_back([&run_shard, s] { run_shard(s); });
    }
  }
  task_ready_.notify_all();

  // The caller is a full lane: run shard 0, then help drain the queue
  // (our shards or anyone else's) until nothing is runnable.
  RunTimed([&] { run_shard(0); });
  while (true) {
    {
      std::lock_guard<std::mutex> lock(sync.mu);
      if (sync.pending == 0) break;
    }
    if (!RunOneTask()) break;  // queue empty: remaining shards are in flight
  }
  std::unique_lock<std::mutex> lock(sync.mu);
  sync.done.wait(lock, [&sync] { return sync.pending == 0; });
  return shards;
}

ThreadPoolStats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {tasks_executed_, static_cast<double>(busy_nanos_) * 1e-9};
}

}  // namespace kjoin
