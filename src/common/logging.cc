#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace kjoin {
namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kInfo};

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogSeverity MinLogSeverity() { return g_min_severity.load(std::memory_order_relaxed); }

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(severity, std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : severity_(severity) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << SeverityName(severity) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    stream_ << "\n";
    const std::string text = stream_.str();
    std::fwrite(text.data(), 1, text.size(), stderr);
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace kjoin
