#ifndef KJOIN_COMMON_TIMER_H_
#define KJOIN_COMMON_TIMER_H_

// Wall-clock timing helpers for the experiment harnesses.

#include <chrono>

namespace kjoin {

// Measures elapsed wall-clock time. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates time across several start/stop intervals, e.g. to separate
// filter time from verification time inside one join.
class StopWatch {
 public:
  void Start() { timer_.Restart(); }
  void Stop() { total_seconds_ += timer_.ElapsedSeconds(); }
  void Reset() { total_seconds_ = 0.0; }
  double TotalSeconds() const { return total_seconds_; }

 private:
  WallTimer timer_;
  double total_seconds_ = 0.0;
};

}  // namespace kjoin

#endif  // KJOIN_COMMON_TIMER_H_
