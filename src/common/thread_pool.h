#ifndef KJOIN_COMMON_THREAD_POOL_H_
#define KJOIN_COMMON_THREAD_POOL_H_

// A reusable worker pool for the join pipeline.
//
// A pool with `num_threads` lanes spawns `num_threads - 1` background
// workers; the thread calling ParallelFor always executes shards itself,
// so total parallelism is exactly `num_threads` and a pool of 1 runs
// everything inline without spawning anything. Workers park on a condition
// variable between joins, so one pool can serve many join calls without
// the per-call std::thread spawn/join cost the verifier used to pay.
//
// ParallelFor is the only primitive the pipeline needs: contiguous static
// shards, no empty tasks, caller participates and helps drain the queue
// while waiting. Schedule() exposes the raw fire-and-forget queue for
// other subsystems.
//
// Thread safety: all public methods may be called from any thread except
// ParallelFor from inside a pool task (the shard would wait on itself).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kjoin {

// Cumulative execution counters, for JoinStats' pool fields. Snapshot with
// ThreadPool::stats() before and after a region and subtract.
struct ThreadPoolStats {
  // Tasks run to completion (scheduled shards and Schedule() closures,
  // whether executed by a worker or by a helping caller).
  int64_t tasks_executed = 0;
  // Summed wall time spent inside tasks across all lanes.
  double busy_seconds = 0.0;
};

class ThreadPool {
 public:
  // `num_threads` >= 1 is the total parallelism (workers + caller).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Enqueues `fn` for asynchronous execution. Pending closures are drained
  // (executed, not dropped) before the destructor returns.
  void Schedule(std::function<void()> fn);

  // Splits [0, n) into at most `max_shards` contiguous, non-empty,
  // near-equal shards and runs fn(shard, begin, end) for each; shard ids
  // are dense in [0, shards). Blocks until every shard finished; the
  // calling thread executes shards (and any other queued tasks) while
  // waiting. Returns the number of shards run, 0 when n == 0. Shard
  // boundaries depend only on (n, max_shards), never on thread timing, so
  // per-shard outputs merged in shard order are deterministic.
  int ParallelFor(int64_t n, int max_shards,
                  const std::function<void(int shard, int64_t begin, int64_t end)>& fn);

  ThreadPoolStats stats() const;

 private:
  void WorkerLoop();
  // Pops and runs one queued task. Returns false if the queue was empty.
  bool RunOneTask();
  void RunTimed(const std::function<void()>& fn);

  const int num_threads_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable task_ready_;   // signalled on push and on stop
  std::deque<std::function<void()>> queue_;  // guarded by mu_
  bool stop_ = false;                        // guarded by mu_
  int64_t tasks_executed_ = 0;               // guarded by mu_
  int64_t busy_nanos_ = 0;                   // guarded by mu_
};

}  // namespace kjoin

#endif  // KJOIN_COMMON_THREAD_POOL_H_
