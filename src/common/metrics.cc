#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace kjoin {

std::vector<double> DefaultLatencyBuckets() {
  // 1 µs .. 100 s, four buckets per decade (10^(1/4) spacing covers the
  // p50/p95/p99 interpolation to within ~±30% anywhere in the range).
  std::vector<double> bounds;
  for (int exp = -6; exp <= 1; ++exp) {
    for (double mantissa : {1.0, 1.778, 3.162, 5.623}) {
      bounds.push_back(mantissa * std::pow(10.0, exp));
    }
  }
  bounds.push_back(100.0);
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  KJOIN_CHECK(!bounds_.empty()) << "a histogram needs at least one bucket bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    KJOIN_CHECK_LT(bounds_[i - 1], bounds_[i]) << "bucket bounds must increase";
  }
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<int64_t>(value * 1e9), std::memory_order_relaxed);
}

double Histogram::sum() const {
  return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-9;
}

double Histogram::Quantile(double q) const {
  const int64_t total = count();
  if (total <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based), then walk the buckets.
  const double rank = q * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const int64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i == bounds_.size()) return bounds_.back();  // overflow bucket
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double into = (rank - static_cast<double>(cumulative)) /
                          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(into, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return bounds_.back();
}

namespace {

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string Histogram::ToJson() const {
  std::string json = "{\"count\":" + std::to_string(count());
  json += ",\"sum\":" + FmtDouble(sum());
  json += ",\"p50\":" + FmtDouble(Quantile(0.50));
  json += ",\"p95\":" + FmtDouble(Quantile(0.95));
  json += ",\"p99\":" + FmtDouble(Quantile(0.99));
  json += "}";
  return json;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = DefaultLatencyBuckets();
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string json = "{";
  bool first = true;
  // std::map iterates in key order, so the export is stable.
  for (const auto& [name, counter] : counters_) {
    json += (first ? "" : ",");
    json += "\"" + JsonEscape(name) + "\":" + std::to_string(counter->value());
    first = false;
  }
  for (const auto& [name, gauge] : gauges_) {
    json += (first ? "" : ",");
    json += "\"" + JsonEscape(name) + "\":" + std::to_string(gauge->value());
    first = false;
  }
  for (const auto& [name, histogram] : histograms_) {
    json += (first ? "" : ",");
    json += "\"" + JsonEscape(name) + "\":" + histogram->ToJson();
    first = false;
  }
  json += "}";
  return json;
}

std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

double PercentileOfSorted(const std::vector<double>& sorted_ascending, double q) {
  if (sorted_ascending.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const size_t at =
      std::min(sorted_ascending.size() - 1,
               static_cast<size_t>(q * static_cast<double>(sorted_ascending.size() - 1) + 0.5));
  return sorted_ascending[at];
}

std::string ShardMetricName(std::string_view prefix, int shard, std::string_view name) {
  std::string full;
  full.reserve(prefix.size() + name.size() + 16);
  full.append(prefix);
  full.append(".shard");
  full.append(std::to_string(shard));
  full.push_back('.');
  full.append(name);
  return full;
}

}  // namespace kjoin
