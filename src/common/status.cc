#include "common/status.h"

namespace kjoin {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}

}  // namespace kjoin
