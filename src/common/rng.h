#ifndef KJOIN_COMMON_RNG_H_
#define KJOIN_COMMON_RNG_H_

// Deterministic pseudo-random number generation.
//
// All data generators and benchmarks in this repository use Rng rather than
// <random> engines so that every experiment is reproducible bit-for-bit from
// a seed, independent of the standard library implementation.

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace kjoin {

// xoshiro256** seeded through SplitMix64. Not cryptographic; fast and with
// good statistical behaviour for simulation workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform over the full 64-bit range.
  uint64_t NextUint64();

  // Uniform over [0, bound). `bound` must be positive. Uses rejection
  // sampling, so the distribution is exactly uniform.
  uint64_t NextUint64(uint64_t bound);

  // Uniform over [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability `p` (clamped to [0, 1]).
  bool NextBool(double p);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Requires a non-empty vector with a positive total weight.
  size_t NextWeighted(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextUint64(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  // Samples one element by reference. Requires a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& values) {
    KJOIN_CHECK(!values.empty());
    return values[static_cast<size_t>(NextUint64(values.size()))];
  }

 private:
  uint64_t state_[4];
};

}  // namespace kjoin

#endif  // KJOIN_COMMON_RNG_H_
