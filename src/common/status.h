#ifndef KJOIN_COMMON_STATUS_H_
#define KJOIN_COMMON_STATUS_H_

// Lightweight Status / StatusOr<T> error plumbing (Google style, no
// exceptions).
//
// The library distinguishes two failure regimes:
//   * programming errors (broken invariants) still terminate through the
//     KJOIN_CHECK family in logging.h;
//   * recoverable conditions — malformed untrusted input, exceeded
//     deadlines or budgets, cancellation — are reported through Status
//     returns so a server embedding the library fails per-request, never
//     per-process (see docs/robustness.md for the full taxonomy).
//
// Usage:
//   StatusOr<Hierarchy> tree = ParseHierarchy(text, "tree.txt");
//   if (!tree.ok()) return tree.status();
//
//   Status Load(...) {
//     KJOIN_ASSIGN_OR_RETURN(Hierarchy tree, ParseHierarchy(text));
//     KJOIN_RETURN_IF_ERROR(Validate(tree));
//     return OkStatus();
//   }

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "common/logging.h"

namespace kjoin {

// Canonical error codes (numeric values follow absl/gRPC so logs are
// comparable across systems; only the codes the library raises are listed).
enum class StatusCode : int {
  kOk = 0,
  kCancelled = 1,
  kInvalidArgument = 3,
  kDeadlineExceeded = 4,
  kNotFound = 5,
  kResourceExhausted = 8,
  kInternal = 13,
  kUnavailable = 14,
  kDataLoss = 15,
};

// "OK", "INVALID_ARGUMENT", ... (stable, screaming-snake-case).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  // Keeps the first error: overwrites *this with `other` only when *this
  // is OK and `other` is not. Lets sequential steps accumulate one status.
  void Update(const Status& other) {
    if (ok() && !other.ok()) *this = other;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }

Status CancelledError(std::string message);
Status InvalidArgumentError(std::string message);
Status DeadlineExceededError(std::string message);
Status NotFoundError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);
Status UnavailableError(std::string message);
Status DataLossError(std::string message);

inline bool IsCancelled(const Status& s) { return s.code() == StatusCode::kCancelled; }
inline bool IsInvalidArgument(const Status& s) {
  return s.code() == StatusCode::kInvalidArgument;
}
inline bool IsDeadlineExceeded(const Status& s) {
  return s.code() == StatusCode::kDeadlineExceeded;
}
inline bool IsNotFound(const Status& s) { return s.code() == StatusCode::kNotFound; }
inline bool IsResourceExhausted(const Status& s) {
  return s.code() == StatusCode::kResourceExhausted;
}
inline bool IsUnavailable(const Status& s) { return s.code() == StatusCode::kUnavailable; }
inline bool IsDataLoss(const Status& s) { return s.code() == StatusCode::kDataLoss; }

std::ostream& operator<<(std::ostream& os, const Status& status);

// A Status or a value. Mirrors std::optional's accessors (has_value,
// operator*, operator->) so optional-based call sites migrate without
// churn, but carries the error's code and message instead of dropping
// them.
template <typename T>
class StatusOr {
 public:
  // Implicit from a non-OK Status (constructing from OK is a programming
  // error: there would be no value).
  StatusOr(Status status) : status_(std::move(status)) {
    KJOIN_CHECK(!status_.ok()) << "StatusOr needs a value or a non-OK status";
  }
  // Implicit from a value.
  StatusOr(T value) : value_(std::move(value)) {}

  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;
  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;

  bool ok() const { return value_.has_value(); }
  bool has_value() const { return ok(); }

  // OkStatus() when a value is held.
  const Status& status() const& { return status_; }

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    KJOIN_CHECK(ok()) << "StatusOr has no value: " << status_.ToString();
  }

  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK Status to the caller.
#define KJOIN_RETURN_IF_ERROR(expr)                        \
  do {                                                     \
    ::kjoin::Status kjoin_status_macro_tmp = (expr);       \
    if (!kjoin_status_macro_tmp.ok()) return kjoin_status_macro_tmp; \
  } while (false)

// Evaluates a StatusOr expression; on success binds the value to `lhs`,
// on failure returns the status. `lhs` may declare a new variable.
#define KJOIN_ASSIGN_OR_RETURN(lhs, expr)                      \
  KJOIN_ASSIGN_OR_RETURN_IMPL_(                                \
      KJOIN_STATUS_CONCAT_(kjoin_statusor_, __LINE__), lhs, expr)
#define KJOIN_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, expr) \
  auto statusor = (expr);                                 \
  if (!statusor.ok()) return statusor.status();           \
  lhs = std::move(statusor).value()
#define KJOIN_STATUS_CONCAT_(a, b) KJOIN_STATUS_CONCAT_IMPL_(a, b)
#define KJOIN_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace kjoin

#endif  // KJOIN_COMMON_STATUS_H_
