#ifndef KJOIN_COMMON_METRICS_H_
#define KJOIN_COMMON_METRICS_H_

// Lightweight serving metrics: named counters and fixed-bucket latency
// histograms, exported as JSON.
//
// The serving layer (src/serve/) reports its health through one
// MetricsRegistry: the search service counts admitted/shed/deadline-
// exceeded queries and observes per-query latency, the index manager
// counts swaps and rebuild time, the snapshot loader records load time
// and bytes. A scrape renders the whole registry as one JSON object
// (ToJson), so an embedding server can expose it on a debug endpoint
// verbatim.
//
// Thread safety: all methods may be called concurrently. Counter and
// Histogram updates are single relaxed atomic RMWs — cheap enough for
// per-query paths. Counter/Histogram pointers returned by the registry
// are stable for the registry's lifetime (node-based storage), so hot
// paths resolve a metric once and keep the pointer.
//
// Histograms use fixed bucket upper bounds chosen at creation
// (DefaultLatencyBuckets spans 1 µs .. 100 s log-spaced) and derive
// quantiles by linear interpolation inside the owning bucket — the
// standard fixed-bucket estimate (what Prometheus' histogram_quantile
// computes), exact at bucket boundaries.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace kjoin {

class Counter {
 public:
  void Increment(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A settable level (health state, effective admission cap, queue depth):
// the last Set wins, unlike a Counter's monotone accumulation.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Strictly increasing bucket upper bounds; a final implicit +inf bucket
// catches everything above the last bound.
std::vector<double> DefaultLatencyBuckets();

class Histogram {
 public:
  // `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

  // Quantile estimate in [0, 1] (0.5 = p50). Returns 0 when empty.
  // Values in the overflow bucket report the last finite bound.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }

  // {"count":N,"sum":S,"p50":...,"p95":...,"p99":...}
  std::string ToJson() const;

 private:
  std::vector<double> bounds_;
  // bounds_.size() + 1 buckets; the last is the +inf overflow.
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> count_{0};
  // Sum accumulated in fixed-point nanounits to stay a single atomic add.
  std::atomic<int64_t> sum_nanos_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates. The returned pointer stays valid for the registry's
  // lifetime. Names are free-form; use "subsystem.metric" by convention.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  // On first use `bounds` fixes the histogram's buckets (empty = default
  // latency buckets); later calls with the same name ignore `bounds`.
  Histogram* histogram(std::string_view name, std::vector<double> bounds = {});

  // One JSON object: counters and gauges as integers, histograms as
  // {"count":...,"sum":...,"p50":...,"p95":...,"p99":...}. Keys sorted
  // within each kind (counters, then gauges, then histograms).
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// "<prefix>.shard<index>.<name>" — the naming convention for per-shard
// replicas of a subsystem metric (e.g. ShardMetricName("router", 2,
// "queue_depth") == "router.shard2.queue_depth"). Shard routers resolve
// these once per shard and keep the pointers (see the stability note
// above).
std::string ShardMetricName(std::string_view prefix, int shard, std::string_view name);

// JSON string-escapes `raw`: quotes and backslashes get a backslash,
// control characters become \uXXXX. Metric names are free-form
// (ToJson uses this so a name with a quote can never corrupt the
// export), and the network METRICS reply embeds the export verbatim.
std::string JsonEscape(std::string_view raw);

// Sample-exact percentile over an ascending-sorted latency vector
// (nearest-rank with midpoint rounding; q in [0, 1], 0.5 = p50). The
// benches and the loopback serving harness share this instead of each
// interpolating their own — Histogram::Quantile stays the estimate for
// streaming fixed-bucket data.
double PercentileOfSorted(const std::vector<double>& sorted_ascending, double q);

}  // namespace kjoin

#endif  // KJOIN_COMMON_METRICS_H_
