#include "common/rng.h"

namespace kjoin {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  KJOIN_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of bound that fits.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  KJOIN_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const uint64_t r = (span == 0) ? NextUint64() : NextUint64(span);
  return lo + static_cast<int64_t>(r);
}

double Rng::NextDouble() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  KJOIN_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    KJOIN_CHECK_GE(w, 0.0);
    total += w;
  }
  KJOIN_CHECK_GT(total, 0.0);
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slop lands on the last bucket.
}

}  // namespace kjoin
