#ifndef KJOIN_COMMON_FAULT_INJECTION_H_
#define KJOIN_COMMON_FAULT_INJECTION_H_

// Seeded, flag-controlled fault-point registry for resilience testing.
//
// Library code marks recoverable failure sites with
//
//   if (KJOIN_FAULT_POINT("hierarchy_io/short_read")) {
//     return DataLossError("injected short read");
//   }
//
// and tests arm them:
//
//   fault::Scope scope;                       // disarms everything on exit
//   fault::Enable("hierarchy_io/short_read"); // fire on every hit
//   EXPECT_FALSE(ReadHierarchyFile(path).ok());
//
// Compiled out in release: when KJOIN_FAULT_INJECTION is 0 (the Release
// preset; see CMakeLists.txt) KJOIN_FAULT_POINT expands to `false` and the
// site costs nothing. The asan/tsan presets build with injection enabled
// so tests/resilience_test.cc can prove every fault surfaces as a clean
// Status with the pool quiescent and no leaks. The registry itself always
// compiles, so tests can probe fault::Enabled() and skip.
//
// Faults fire with a configurable probability drawn from one global
// seeded PRNG (SetSeed), so probabilistic fault schedules are
// reproducible. Enable specs can also come from a flag or environment
// string via EnableFromSpec("a/b,c/d=0.5,e/f=1x3"), and whole processes
// can be armed from the outside through KJOIN_FAULT_SCHEDULE /
// KJOIN_FAULT_SEED (EnableFromEnv) — the chaos harness and
// wal_kill_replay use this to sustain failures across a child process's
// lifetime instead of tripping once.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

#ifndef KJOIN_FAULT_INJECTION
#define KJOIN_FAULT_INJECTION 0
#endif

#if KJOIN_FAULT_INJECTION
#define KJOIN_FAULT_POINT(name) (::kjoin::fault::ShouldFail(name))
#else
#define KJOIN_FAULT_POINT(name) (false)
#endif

namespace kjoin::fault {

// True when fault points are compiled in (KJOIN_FAULT_INJECTION=1).
constexpr bool Enabled() { return KJOIN_FAULT_INJECTION != 0; }

struct FaultPointStats {
  std::string name;
  int64_t hits = 0;   // times the point was evaluated while armed
  int64_t fires = 0;  // times it returned true
};

// Arms `point`. Each hit fires with `probability`; `max_fires` >= 0 caps
// the total number of fires (-1 = unlimited). Re-enabling resets the
// point's counters.
void Enable(std::string_view point, double probability = 1.0, int64_t max_fires = -1);
void Disable(std::string_view point);

// Disarms every point and clears counters (the seed is kept).
void DisarmAll();

// Seeds the PRNG behind probabilistic points; same seed + same hit
// sequence => same fire pattern.
void SetSeed(uint64_t seed);

// Parses "point[=probability[xmax_fires]]" entries separated by ','
// (e.g. "hierarchy_io/short_read,dag/unfold=0.5,verifier/alloc=1x2") and
// arms each. ':' is accepted in place of '=' ("point:rate"), so specs can
// live in environments where '=' is awkward (env var values, CLI tools
// that split on '='). Returns kInvalidArgument on malformed entries.
Status EnableFromSpec(std::string_view spec);

// Arms the schedule in the KJOIN_FAULT_SCHEDULE environment variable
// ("point:rate,point2:rate2x3,..."), seeding the PRNG from
// KJOIN_FAULT_SEED first when set (decimal). Unset variables are a
// no-op; a malformed schedule is kInvalidArgument with nothing armed
// beyond the entries parsed before the error. Call early in main() of a
// binary that should accept externally driven fault schedules.
Status EnableFromEnv();

// True iff `point` is armed and this hit fires. Called via
// KJOIN_FAULT_POINT; thread-safe.
bool ShouldFail(std::string_view point);

// Counters of every armed point (armed-but-never-hit points included).
std::vector<FaultPointStats> ArmedPoints();

// RAII: disarms all points (and restores the default seed) on scope exit,
// so one test's faults never leak into the next.
class Scope {
 public:
  Scope() { DisarmAll(); }
  ~Scope() {
    DisarmAll();
    SetSeed(0);
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
};

}  // namespace kjoin::fault

#endif  // KJOIN_COMMON_FAULT_INJECTION_H_
