#ifndef KJOIN_COMMON_STRING_UTIL_H_
#define KJOIN_COMMON_STRING_UTIL_H_

// Small string helpers shared by the tokenizer, data generators and the
// experiment harnesses.

#include <string>
#include <string_view>
#include <vector>

namespace kjoin {

// ASCII lower-casing (the datasets in this repository are ASCII).
std::string ToLowerAscii(std::string_view text);

// Splits on a single separator character; empty pieces are kept.
std::vector<std::string> Split(std::string_view text, char separator);

// Splits on runs of whitespace; empty pieces are dropped.
std::vector<std::string> SplitWhitespace(std::string_view text);

// Joins pieces with the separator.
std::string Join(const std::vector<std::string>& pieces, std::string_view separator);

// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Formats n with thousands separators, e.g. 1234567 -> "1,234,567".
std::string FormatWithCommas(int64_t n);

// True iff `text` is well-formed UTF-8 (ASCII included). Rejects overlong
// encodings, surrogates, codepoints above U+10FFFF, and truncated
// sequences — the checks the untrusted-input parsers rely on.
bool IsValidUtf8(std::string_view text);

}  // namespace kjoin

#endif  // KJOIN_COMMON_STRING_UTIL_H_
