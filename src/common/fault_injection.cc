#include "common/fault_injection.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "common/string_util.h"

namespace kjoin::fault {
namespace {

struct Point {
  double probability = 1.0;
  int64_t max_fires = -1;
  int64_t hits = 0;
  int64_t fires = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Point> points;
  uint64_t rng_state = 0x9e3779b97f4a7c15ULL;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// splitmix64: small, seedable, and good enough for fire/no-fire draws.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Enable(std::string_view point, double probability, int64_t max_fires) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.points[std::string(point)] =
      Point{std::clamp(probability, 0.0, 1.0), max_fires, 0, 0};
}

void Disable(std::string_view point) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.points.erase(std::string(point));
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.points.clear();
}

void SetSeed(uint64_t seed) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.rng_state = seed + 0x9e3779b97f4a7c15ULL;
}

Status EnableFromSpec(std::string_view spec) {
  for (const std::string& raw_entry : Split(spec, ',')) {
    const std::string_view entry = StripAsciiWhitespace(raw_entry);
    if (entry.empty()) continue;
    std::string_view name = entry;
    double probability = 1.0;
    int64_t max_fires = -1;
    // '=' and ':' both separate point from rate; ':' never appears in a
    // point name (they are "area/site"), so the first of either wins.
    size_t eq = entry.find('=');
    if (const size_t colon = entry.find(':'); colon < eq) eq = colon;
    if (eq != std::string_view::npos) {
      name = entry.substr(0, eq);
      std::string_view rest = entry.substr(eq + 1);
      std::string prob_text(rest);
      if (const size_t x = rest.find('x'); x != std::string_view::npos) {
        prob_text = std::string(rest.substr(0, x));
        char* end = nullptr;
        const std::string fires_text(rest.substr(x + 1));
        max_fires = std::strtol(fires_text.c_str(), &end, 10);
        if (end == fires_text.c_str() || *end != '\0' || max_fires < 0) {
          return InvalidArgumentError("fault spec entry '" + std::string(entry) +
                                      "': bad max_fires");
        }
      }
      char* end = nullptr;
      probability = std::strtod(prob_text.c_str(), &end);
      if (end == prob_text.c_str() || *end != '\0' || probability < 0.0 ||
          probability > 1.0) {
        return InvalidArgumentError("fault spec entry '" + std::string(entry) +
                                    "': bad probability");
      }
    }
    if (name.empty()) {
      return InvalidArgumentError("fault spec entry '" + std::string(entry) +
                                  "': empty point name");
    }
    Enable(name, probability, max_fires);
  }
  return OkStatus();
}

Status EnableFromEnv() {
  if (const char* seed = std::getenv("KJOIN_FAULT_SEED"); seed != nullptr && *seed != '\0') {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(seed, &end, 10);
    if (end == seed || *end != '\0') {
      return InvalidArgumentError(std::string("KJOIN_FAULT_SEED: not a decimal seed: ") +
                                  seed);
    }
    SetSeed(static_cast<uint64_t>(parsed));
  }
  const char* schedule = std::getenv("KJOIN_FAULT_SCHEDULE");
  if (schedule == nullptr || *schedule == '\0') return OkStatus();
  return EnableFromSpec(schedule);
}

bool ShouldFail(std::string_view point) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.points.empty()) return false;  // common case: nothing armed
  auto it = registry.points.find(std::string(point));
  if (it == registry.points.end()) return false;
  Point& armed = it->second;
  ++armed.hits;
  if (armed.max_fires >= 0 && armed.fires >= armed.max_fires) return false;
  bool fire = true;
  if (armed.probability < 1.0) {
    const double draw = static_cast<double>(NextRandom(&registry.rng_state) >> 11) *
                        0x1.0p-53;  // uniform in [0, 1)
    fire = draw < armed.probability;
  }
  if (fire) ++armed.fires;
  return fire;
}

std::vector<FaultPointStats> ArmedPoints() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<FaultPointStats> out;
  out.reserve(registry.points.size());
  for (const auto& [name, point] : registry.points) {
    out.push_back({name, point.hits, point.fires});
  }
  std::sort(out.begin(), out.end(),
            [](const FaultPointStats& a, const FaultPointStats& b) { return a.name < b.name; });
  return out;
}

}  // namespace kjoin::fault
