#include "serve/index_manager.h"

#include "common/logging.h"
#include "common/timer.h"

namespace kjoin::serve {

IndexManager::IndexManager(LoadedIndex initial, ThreadPool* pool, MetricsRegistry* metrics)
    : pool_(pool), metrics_(metrics) {
  KJOIN_CHECK(initial.index != nullptr) << "IndexManager needs a loaded index";
  auto epoch = std::make_shared<IndexEpoch>();
  epoch->version = 1;
  epoch->hierarchy = std::move(initial.hierarchy);
  epoch->tokens = std::move(initial.tokens);
  epoch->synonyms = std::move(initial.synonyms);
  epoch->index = std::shared_ptr<const KJoinIndex>(std::move(initial.index));
  PublishInitial(std::move(epoch));
}

IndexManager::IndexManager(std::shared_ptr<const Hierarchy> hierarchy, KJoinOptions options,
                           std::vector<Object> objects, std::vector<std::string> tokens,
                           std::vector<std::pair<std::string, std::string>> synonyms,
                           ThreadPool* pool, MetricsRegistry* metrics)
    : pool_(pool), metrics_(metrics) {
  KJOIN_CHECK(hierarchy != nullptr) << "IndexManager needs a hierarchy";
  auto epoch = std::make_shared<IndexEpoch>();
  epoch->version = 1;
  epoch->index =
      std::make_shared<const KJoinIndex>(*hierarchy, options, std::move(objects));
  epoch->hierarchy = std::move(hierarchy);
  epoch->tokens = std::move(tokens);
  epoch->synonyms = std::move(synonyms);
  PublishInitial(std::move(epoch));
}

IndexManager::~IndexManager() {
  // A rebuild scheduled on the shared pool captures `this`; wait it out.
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [&] { return !rebuild_in_flight_; });
}

void IndexManager::PublishInitial(std::shared_ptr<const IndexEpoch> epoch) {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  epoch_ = std::move(epoch);
}

std::shared_ptr<const IndexEpoch> IndexManager::Acquire() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return epoch_;
}

void IndexManager::InsertBatch(std::vector<Object> objects, std::vector<std::string> tokens) {
  if (objects.empty() && tokens.empty()) return;
  bool start_rebuild = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.insert(pending_.end(), std::make_move_iterator(objects.begin()),
                    std::make_move_iterator(objects.end()));
    if (!tokens.empty()) pending_tokens_ = std::move(tokens);
    if (!rebuild_in_flight_) {
      rebuild_in_flight_ = true;
      start_rebuild = true;
    }
  }
  if (!start_rebuild) return;  // the in-flight rebuild loop will pick the batch up
  if (pool_ != nullptr && pool_->num_threads() > 1) {
    pool_->Schedule([this] { RebuildLoop(); });
  } else {
    // No background lane exists to drain a scheduled task, so apply
    // synchronously rather than parking the batch in a dead queue.
    RebuildLoop();
  }
}

void IndexManager::RebuildLoop() {
  for (;;) {
    std::vector<Object> batch;
    std::vector<std::string> tokens_update;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.empty() && pending_tokens_.empty()) {
        rebuild_in_flight_ = false;
        idle_.notify_all();
        return;
      }
      batch = std::move(pending_);
      pending_.clear();
      tokens_update = std::move(pending_tokens_);
      pending_tokens_.clear();
    }

    WallTimer timer;
    const std::shared_ptr<const IndexEpoch> current = Acquire();
    // Shadow copy: objects and posting lists are copied, the LCA tables
    // (the expensive immutable half) are shared between epochs.
    KJoinIndex::RestoredParts parts;
    parts.lca = current->index->shared_lca();
    parts.postings = current->index->postings();
    auto next_index = std::make_shared<KJoinIndex>(
        *current->hierarchy, current->index->options(), current->index->objects(),
        std::move(parts));
    for (const Object& object : batch) next_index->Insert(object);

    auto next = std::make_shared<IndexEpoch>();
    next->version = current->version + 1;
    next->hierarchy = current->hierarchy;
    next->tokens = tokens_update.empty() ? current->tokens : std::move(tokens_update);
    next->synonyms = current->synonyms;
    next->index = std::move(next_index);
    {
      std::lock_guard<std::mutex> lock(epoch_mu_);
      epoch_ = std::move(next);
    }

    if (metrics_ != nullptr) {
      metrics_->counter("manager.swaps")->Increment();
      metrics_->counter("manager.inserts")->Increment(static_cast<int64_t>(batch.size()));
      metrics_->histogram("manager.rebuild_seconds")->Observe(timer.ElapsedSeconds());
    }
  }
}

void IndexManager::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [&] { return pending_.empty() && !rebuild_in_flight_; });
}

int64_t IndexManager::pending_inserts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(pending_.size());
}

Status IndexManager::SaveSnapshot(const std::string& path) const {
  const std::shared_ptr<const IndexEpoch> epoch = Acquire();
  SnapshotInput input;
  input.index = epoch->index.get();
  input.tokens = epoch->tokens;
  input.synonyms = epoch->synonyms;
  return SaveIndexSnapshot(input, path);
}

StatusOr<std::unique_ptr<IndexManager>> IndexManager::LoadFrom(const std::string& path,
                                                               ThreadPool* pool,
                                                               MetricsRegistry* metrics) {
  KJOIN_ASSIGN_OR_RETURN(LoadedIndex loaded, LoadIndexSnapshot(path, metrics));
  return std::make_unique<IndexManager>(std::move(loaded), pool, metrics);
}

}  // namespace kjoin::serve
