#include "serve/index_manager.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "serve/status_detail.h"
#include "serve/wire_format.h"

namespace kjoin::serve {
namespace {

// Posting entries a layer holds (its own lists only) — the payload a
// publish actually materialized, reported as manager.rebuild_bytes.
int64_t PostingBytes(const KJoinIndex& index) {
  return index.posting_entries() * static_cast<int64_t>(sizeof(int32_t));
}

// Retry hint for writes rejected while degraded: one probe interval —
// the soonest the state can possibly have changed.
int64_t RetryHintMs(const IndexManagerOptions& options) {
  return std::max<int64_t>(1, static_cast<int64_t>(options.wal_probe_interval_seconds * 1e3));
}

}  // namespace

IndexManager::IndexManager(LoadedIndex initial, ThreadPool* pool, MetricsRegistry* metrics,
                           IndexManagerOptions options)
    : pool_(pool), metrics_(metrics), manager_options_(options) {
  KJOIN_CHECK(initial.index != nullptr) << "IndexManager needs a loaded index";
  KJOIN_CHECK(manager_options_.max_delta_layers >= 0)
      << "max_delta_layers must be non-negative";
  auto epoch = std::make_shared<IndexEpoch>();
  epoch->version = 1;
  epoch->durable_seq = initial.durable_seq;
  epoch->hierarchy = std::move(initial.hierarchy);
  epoch->tokens = std::move(initial.tokens);
  epoch->synonyms = std::move(initial.synonyms);
  epoch->index = std::shared_ptr<const KJoinIndex>(std::move(initial.index));
  latest_tokens_ = epoch->tokens;
  logical_size_ = epoch->index->num_indexed();
  last_acked_seq_ = epoch->durable_seq;
  PublishInitial(std::move(epoch));
}

IndexManager::IndexManager(std::shared_ptr<const Hierarchy> hierarchy, KJoinOptions options,
                           std::vector<Object> objects, std::vector<std::string> tokens,
                           std::vector<std::pair<std::string, std::string>> synonyms,
                           ThreadPool* pool, MetricsRegistry* metrics,
                           IndexManagerOptions manager_options)
    : pool_(pool), metrics_(metrics), manager_options_(manager_options) {
  KJOIN_CHECK(hierarchy != nullptr) << "IndexManager needs a hierarchy";
  KJOIN_CHECK(manager_options_.max_delta_layers >= 0)
      << "max_delta_layers must be non-negative";
  auto epoch = std::make_shared<IndexEpoch>();
  epoch->version = 1;
  epoch->index =
      std::make_shared<const KJoinIndex>(*hierarchy, options, std::move(objects));
  epoch->hierarchy = std::move(hierarchy);
  epoch->tokens = std::move(tokens);
  epoch->synonyms = std::move(synonyms);
  latest_tokens_ = epoch->tokens;
  logical_size_ = epoch->index->num_indexed();
  PublishInitial(std::move(epoch));
}

IndexManager::~IndexManager() {
  {
    // A rebuild scheduled on the shared pool captures `this`; wait it out.
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [&] { return !rebuild_in_flight_; });
    shutdown_ = true;
  }
  probe_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
}

void IndexManager::PublishInitial(std::shared_ptr<const IndexEpoch> epoch) {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  epoch_ = std::move(epoch);
}

std::shared_ptr<const IndexEpoch> IndexManager::Acquire() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return epoch_;
}

Status IndexManager::AttachWal(const std::string& path, bool fsync) {
  // Settle in-flight work so replay extends a quiescent epoch.
  Flush();
  {
    std::lock_guard<std::mutex> lock(mu_);
    KJOIN_CHECK(wal_ == nullptr) << "AttachWal called twice";
  }
  const std::shared_ptr<const IndexEpoch> epoch = Acquire();

  WalReplayInput input;
  input.tokens = epoch->tokens;
  input.num_nodes = epoch->hierarchy->num_nodes();
  input.num_objects = epoch->index->num_indexed();
  input.min_sequence_exclusive = epoch->durable_seq;
  KJOIN_ASSIGN_OR_RETURN(WalReplayResult replay, WriteAheadLog::Replay(path, input));

  if (!replay.records.empty()) {
    // Running full token table across replayed records (records carry
    // only the suffix they interned).
    std::vector<std::string> running = epoch->tokens;
    for (WalRecord& record : replay.records) {
      MutationBatch batch;
      batch.sequence = record.sequence;
      batch.deletes = std::move(record.deletes);
      batch.objects = std::move(record.objects);
      if (!record.token_suffix.empty()) {
        running.insert(running.end(), std::make_move_iterator(record.token_suffix.begin()),
                       std::make_move_iterator(record.token_suffix.end()));
        batch.tokens = running;
      }
      // One delta publish per record reproduces the pre-crash epoch
      // cadence (and exercises compaction exactly as live traffic did).
      std::vector<MutationBatch> one;
      one.push_back(std::move(batch));
      ApplyBatches(std::move(one));
      MaybeCompact();
    }
    const std::shared_ptr<const IndexEpoch> replayed = Acquire();
    std::lock_guard<std::mutex> lock(mu_);
    last_acked_seq_ = replayed->durable_seq;
    latest_tokens_ = replayed->tokens;
    logical_size_ = replayed->index->num_indexed();
    KJOIN_LOG(INFO) << "WAL replay applied " << replay.records.size()
                    << " record(s) from " << path << ", durable_seq now "
                    << replayed->durable_seq;
  }
  if (replay.torn_tail) {
    KJOIN_LOG(WARNING) << "WAL " << path << " had a torn tail past byte "
                       << replay.valid_bytes << "; unacked partial record dropped";
    if (metrics_ != nullptr) metrics_->counter("manager.wal_torn_tail")->Increment();
  }

  // Open truncates any torn tail, so future appends extend intact bytes.
  WriteAheadLog::Options wal_options;
  wal_options.fsync = fsync;
  KJOIN_ASSIGN_OR_RETURN(std::unique_ptr<WriteAheadLog> wal,
                         WriteAheadLog::Open(path, wal_options));
  std::lock_guard<std::mutex> lock(mu_);
  wal_ = std::move(wal);
  return OkStatus();
}

StatusOr<std::unique_ptr<IndexManager>> IndexManager::Recover(const std::string& snapshot_path,
                                                              const std::string& wal_path,
                                                              ThreadPool* pool,
                                                              MetricsRegistry* metrics,
                                                              IndexManagerOptions options) {
  KJOIN_ASSIGN_OR_RETURN(LoadedIndex loaded, LoadIndexSnapshot(snapshot_path, metrics));
  auto manager = std::make_unique<IndexManager>(std::move(loaded), pool, metrics, options);
  KJOIN_RETURN_IF_ERROR(manager->AttachWal(wal_path));
  return manager;
}

StatusOr<std::unique_ptr<IndexManager>> IndexManager::RecoverFromStore(
    SnapshotStore* store, const std::string& wal_path, ThreadPool* pool,
    MetricsRegistry* metrics, IndexManagerOptions options) {
  KJOIN_ASSIGN_OR_RETURN(RecoverResult recovered, store->Recover());
  if (recovered.quarantined > 0) {
    KJOIN_LOG(WARNING) << "recovery failed over to generation " << recovered.generation
                       << " after quarantining " << recovered.quarantined
                       << " corrupt newer generation(s)";
  }
  auto manager =
      std::make_unique<IndexManager>(std::move(recovered.loaded), pool, metrics, options);
  // Replay starts at the recovered generation's durable sequence; the
  // WAL still holds those records because truncation respects the
  // store's oldest-retained floor (SaveSnapshot(SnapshotStore*)).
  KJOIN_RETURN_IF_ERROR(manager->AttachWal(wal_path));
  return manager;
}

Status IndexManager::InsertBatch(std::vector<Object> objects, std::vector<std::string> tokens) {
  MutationBatch batch;
  batch.objects = std::move(objects);
  batch.tokens = std::move(tokens);
  return ApplyMutation(std::move(batch));
}

Status IndexManager::DeleteObjects(std::vector<int32_t> indexes) {
  MutationBatch batch;
  batch.deletes = std::move(indexes);
  return ApplyMutation(std::move(batch));
}

Status IndexManager::UpdateObject(int32_t index, Object replacement,
                                  std::vector<std::string> tokens) {
  MutationBatch batch;
  batch.deletes.push_back(index);
  batch.objects.push_back(std::move(replacement));
  batch.tokens = std::move(tokens);
  return ApplyMutation(std::move(batch));
}

Status IndexManager::ApplyMutation(MutationBatch batch) {
  if (batch.objects.empty() && batch.deletes.empty() && batch.tokens.empty()) {
    return OkStatus();
  }
  bool start_rebuild = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (health_ == HealthState::kDegradedReadOnly) {
      // Reject before touching the sick log: the probe loop owns the
      // only writes to it until it heals (see HealthState).
      if (metrics_ != nullptr) metrics_->counter("manager.writes_rejected")->Increment();
      return UnavailableError(
          "index is read-only after " + std::to_string(consecutive_wal_failures_) +
          " consecutive WAL failure(s); " + RetryAfterField(RetryHintMs(manager_options_)));
    }
    // Validate against the last *acked* state, not the published epoch —
    // a racing batch's tokens may be acked but not yet swapped in.
    if (!batch.tokens.empty()) {
      KJOIN_RETURN_IF_ERROR(
          ValidateTokenExtension(latest_tokens_, batch.tokens, "IndexManager"));
    }
    for (int32_t index : batch.deletes) {
      if (index < 0 || index >= logical_size_) {
        return InvalidArgumentError("delete of object " + std::to_string(index) +
                                    " outside the indexed collection of " +
                                    std::to_string(logical_size_));
      }
    }
    if (wal_ != nullptr) {
      // The durability ack point: the record is framed, appended and
      // fsynced before the batch is queued. Failure means nothing was
      // acked — the caller may retry, recovery shows no trace.
      WalRecord record;
      record.sequence = last_acked_seq_ + 1;
      record.deletes = std::move(batch.deletes);
      record.objects = std::move(batch.objects);
      if (batch.tokens.size() > latest_tokens_.size()) {
        record.token_base = static_cast<int64_t>(latest_tokens_.size());
        record.token_suffix.assign(batch.tokens.begin() + latest_tokens_.size(),
                                   batch.tokens.end());
      }
      const int64_t before = wal_->size_bytes();
      const Status appended = wal_->Append(record);
      batch.deletes = std::move(record.deletes);
      batch.objects = std::move(record.objects);
      if (!appended.ok()) {
        if (++consecutive_wal_failures_ >= manager_options_.wal_failure_trip_threshold) {
          TripReadOnlyLocked();
        }
        return appended;
      }
      consecutive_wal_failures_ = 0;
      if (health_ == HealthState::kRecovering) {
        // A real durable append is the proof the probe only hinted at.
        SetHealthLocked(HealthState::kServing);
        KJOIN_LOG(INFO) << "WAL append succeeded after recovery probe; write service restored";
      }
      if (metrics_ != nullptr) {
        metrics_->counter("manager.wal_appends")->Increment();
        metrics_->counter("manager.wal_bytes")->Increment(wal_->size_bytes() - before);
      }
    }
    batch.sequence = ++last_acked_seq_;
    if (!batch.tokens.empty()) latest_tokens_ = batch.tokens;
    logical_size_ += static_cast<int64_t>(batch.objects.size());
    pending_.push_back(std::move(batch));
    if (!rebuild_in_flight_) {
      rebuild_in_flight_ = true;
      start_rebuild = true;
    }
  }
  if (!start_rebuild) return OkStatus();  // the in-flight rebuild loop picks it up
  if (pool_ != nullptr && pool_->num_threads() > 1) {
    pool_->Schedule([this] { RebuildLoop(); });
  } else {
    // No background lane exists to drain a scheduled task, so apply
    // synchronously rather than parking the batch in a dead queue.
    RebuildLoop();
  }
  return OkStatus();
}

void IndexManager::RebuildLoop() {
  for (;;) {
    std::vector<MutationBatch> drained;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.empty()) {
        rebuild_in_flight_ = false;
        idle_.notify_all();
        return;
      }
      drained = std::move(pending_);
      pending_.clear();
    }
    ApplyBatches(std::move(drained));
    MaybeCompact();
  }
}

void IndexManager::ApplyBatches(std::vector<MutationBatch> batches) {
  KJOIN_CHECK(!batches.empty());
  WallTimer timer;
  const std::shared_ptr<const IndexEpoch> current = Acquire();

  int64_t inserted = 0;
  int64_t deleted = 0;
  bool structural = false;
  for (const MutationBatch& batch : batches) {
    if (!batch.objects.empty() || !batch.deletes.empty()) structural = true;
  }

  std::shared_ptr<const KJoinIndex> next_index;
  int64_t published_bytes = 0;
  if (structural) {
    // Delta layer over the published index: the base's objects and
    // postings are shared, not copied, so this costs O(drained batches).
    auto delta = std::make_shared<KJoinIndex>(current->index);
    for (MutationBatch& batch : batches) {
      for (int32_t index : batch.deletes) {
        if (delta->DeleteObject(index)) ++deleted;
      }
      for (const Object& object : batch.objects) delta->Insert(object);
      inserted += static_cast<int64_t>(batch.objects.size());
    }
    published_bytes = PostingBytes(*delta);
    next_index = std::move(delta);
  } else {
    // Tokens-only update: share the index outright, no layer needed.
    next_index = current->index;
  }

  std::vector<std::string> tokens_update;
  for (MutationBatch& batch : batches) {
    if (!batch.tokens.empty()) tokens_update = std::move(batch.tokens);
  }

  auto next = std::make_shared<IndexEpoch>();
  next->version = current->version + 1;
  next->durable_seq = batches.back().sequence;
  next->hierarchy = current->hierarchy;
  next->tokens = tokens_update.empty() ? current->tokens : std::move(tokens_update);
  next->synonyms = current->synonyms;
  next->index = std::move(next_index);
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    epoch_ = std::move(next);
  }

  if (metrics_ != nullptr) {
    metrics_->counter("manager.swaps")->Increment();
    metrics_->counter("manager.inserts")->Increment(inserted);
    metrics_->counter("manager.deletes")->Increment(deleted);
    metrics_->counter("manager.delta_publishes")->Increment();
    metrics_->counter("manager.rebuild_bytes")->Increment(published_bytes);
    metrics_->histogram("manager.rebuild_seconds")->Observe(timer.ElapsedSeconds());
  }
}

void IndexManager::MaybeCompact() {
  const std::shared_ptr<const IndexEpoch> current = Acquire();
  if (current->index->delta_depth() <= manager_options_.max_delta_layers) return;

  WallTimer timer;
  // Flatten is read-only on the published chain, so concurrent searches
  // keep running against it while the flat replacement is built.
  std::vector<Object> objects;
  KJoinIndex::RestoredParts parts;
  current->index->Flatten(&objects, &parts);
  auto flat = std::make_shared<KJoinIndex>(*current->hierarchy, current->index->options(),
                                           std::move(objects), std::move(parts));
  const int64_t folded_bytes = PostingBytes(*flat);

  auto next = std::make_shared<IndexEpoch>();
  next->version = current->version + 1;
  next->durable_seq = current->durable_seq;
  next->hierarchy = current->hierarchy;
  next->tokens = current->tokens;
  next->synonyms = current->synonyms;
  next->index = std::move(flat);
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    epoch_ = std::move(next);
  }

  if (metrics_ != nullptr) {
    metrics_->counter("manager.swaps")->Increment();
    metrics_->counter("manager.compactions")->Increment();
    metrics_->counter("manager.rebuild_bytes")->Increment(folded_bytes);
    metrics_->histogram("manager.compaction_seconds")->Observe(timer.ElapsedSeconds());
  }
}

void IndexManager::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [&] { return pending_.empty() && !rebuild_in_flight_; });
}

int64_t IndexManager::pending_inserts() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const MutationBatch& batch : pending_) {
    total += static_cast<int64_t>(batch.objects.size());
  }
  return total;
}

int64_t IndexManager::wal_size_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_ != nullptr ? wal_->size_bytes() : 0;
}

ManagerHealth IndexManager::HealthSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ManagerHealth health;
  health.state = health_;
  health.consecutive_wal_failures = consecutive_wal_failures_;
  health.read_only_trips = read_only_trips_;
  health.recoveries = health_recoveries_;
  return health;
}

void IndexManager::SetHealthLocked(HealthState next) {
  health_ = next;
  if (metrics_ != nullptr) {
    metrics_->gauge("manager.health_state")->Set(static_cast<int64_t>(next));
  }
}

void IndexManager::TripReadOnlyLocked() {
  if (health_ == HealthState::kDegradedReadOnly) return;
  SetHealthLocked(HealthState::kDegradedReadOnly);
  ++read_only_trips_;
  if (metrics_ != nullptr) metrics_->counter("manager.read_only_trips")->Increment();
  KJOIN_LOG(ERROR) << "tripping degraded read-only mode after "
                   << consecutive_wal_failures_
                   << " consecutive WAL failure(s); reads keep serving, a "
                   << "background probe watches the log";
  if (!probe_thread_.joinable()) {
    probe_thread_ = std::thread([this] { ProbeLoop(); });
  }
  probe_cv_.notify_all();
}

void IndexManager::ProbeLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto interval = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(manager_options_.wal_probe_interval_seconds));
  for (;;) {
    probe_cv_.wait(lock, [&] {
      return shutdown_ || health_ == HealthState::kDegradedReadOnly;
    });
    if (shutdown_) return;
    // Degraded: re-test the log until it heals. Probing under mu_ is
    // deliberate — writes are rejected fast while degraded, so the lock
    // is uncontended, and it keeps the probe's fd use serialized with
    // Truncate's fd swap.
    while (!shutdown_ && health_ == HealthState::kDegradedReadOnly) {
      const Status probed = wal_->Probe();
      if (metrics_ != nullptr) metrics_->counter("manager.wal_probes")->Increment();
      if (probed.ok()) {
        consecutive_wal_failures_ = 0;
        ++health_recoveries_;
        SetHealthLocked(HealthState::kRecovering);
        if (metrics_ != nullptr) metrics_->counter("manager.recoveries")->Increment();
        KJOIN_LOG(INFO) << "WAL probe succeeded; accepting writes again (recovering)";
        break;
      }
      if (metrics_ != nullptr) metrics_->counter("manager.wal_probe_failures")->Increment();
      probe_cv_.wait_for(lock, interval, [&] { return shutdown_; });
    }
    if (shutdown_) return;
  }
}

void IndexManager::TruncateWalAfterSnapshot(int64_t up_to_sequence) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr || up_to_sequence <= 0) return;
  // Records the snapshot covers are dead weight; dropping them bounds
  // replay time. Failure is benign — replay skips covered sequences.
  const Status truncated = wal_->Truncate(up_to_sequence);
  if (!truncated.ok()) {
    KJOIN_LOG(WARNING) << "WAL truncation after snapshot failed (non-fatal): "
                       << truncated;
  } else if (metrics_ != nullptr) {
    metrics_->counter("manager.wal_truncations")->Increment();
  }
}

Status IndexManager::SaveSnapshot(const std::string& path) {
  const std::shared_ptr<const IndexEpoch> epoch = Acquire();
  SnapshotInput input;
  input.index = epoch->index.get();
  input.tokens = epoch->tokens;
  input.synonyms = epoch->synonyms;
  input.durable_seq = epoch->durable_seq;
  KJOIN_RETURN_IF_ERROR(SaveIndexSnapshot(input, path));
  TruncateWalAfterSnapshot(epoch->durable_seq);
  return OkStatus();
}

Status IndexManager::SaveSnapshot(SnapshotStore* store) {
  const std::shared_ptr<const IndexEpoch> epoch = Acquire();
  SnapshotInput input;
  input.index = epoch->index.get();
  input.tokens = epoch->tokens;
  input.synonyms = epoch->synonyms;
  input.durable_seq = epoch->durable_seq;
  KJOIN_ASSIGN_OR_RETURN(const PublishResult published, store->Publish(input));
  // The store's floor, not this epoch's durable_seq: an older retained
  // generation must still find its replay records after a failover.
  TruncateWalAfterSnapshot(published.wal_truncate_floor);
  return OkStatus();
}

StatusOr<std::unique_ptr<IndexManager>> IndexManager::LoadFrom(const std::string& path,
                                                               ThreadPool* pool,
                                                               MetricsRegistry* metrics) {
  KJOIN_ASSIGN_OR_RETURN(LoadedIndex loaded, LoadIndexSnapshot(path, metrics));
  return std::make_unique<IndexManager>(std::move(loaded), pool, metrics);
}

}  // namespace kjoin::serve
