#include "serve/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "serve/fs_util.h"
#include "serve/wire_format.h"

namespace kjoin::serve {
namespace {

constexpr uint32_t kWalMagic = static_cast<uint32_t>('K') | static_cast<uint32_t>('J') << 8 |
                               static_cast<uint32_t>('W') << 16 |
                               static_cast<uint32_t>('L') << 24;

uint32_t LoadU32(std::string_view bytes, uint64_t at) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[at + i])) << (8 * i);
  }
  return v;
}

uint64_t LoadU64(std::string_view bytes, uint64_t at) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[at + i])) << (8 * i);
  }
  return v;
}

std::string HeaderBytes() {
  wire::ByteWriter w;
  w.U32(kWalMagic);
  w.U32(kWalFormatVersion);
  return w.Take();
}

Status CheckHeader(std::string_view bytes, const std::string& path) {
  const uint32_t magic = LoadU32(bytes, 0);
  const uint32_t version = LoadU32(bytes, 4);
  if (magic != kWalMagic) {
    return InvalidArgumentError(path + ": not a K-Join write-ahead log (bad magic)");
  }
  if (version != kWalFormatVersion) {
    return InvalidArgumentError(path + ": WAL format version " + std::to_string(version) +
                                "; this build reads version " +
                                std::to_string(kWalFormatVersion));
  }
  return OkStatus();
}

// The intact frame prefix of a log file: everything up to the first
// frame that is truncated, oversized or fails its CRC.
struct FrameScan {
  std::vector<std::string_view> payloads;  // views into the scanned bytes
  std::vector<uint64_t> frame_offsets;     // where each frame starts
  uint64_t valid_bytes = kWalHeaderBytes;
  bool torn = false;
};

FrameScan ScanFrames(std::string_view bytes) {
  FrameScan scan;
  uint64_t pos = kWalHeaderBytes;
  while (bytes.size() - pos >= kWalFrameBytes) {
    const uint32_t crc = LoadU32(bytes, pos);
    const uint64_t size = LoadU64(bytes, pos + 4);
    if (size > bytes.size() - pos - kWalFrameBytes) break;
    const std::string_view payload = bytes.substr(pos + kWalFrameBytes, size);
    if (Crc32(payload) != crc) break;
    scan.payloads.push_back(payload);
    scan.frame_offsets.push_back(pos);
    pos += kWalFrameBytes + size;
    scan.valid_bytes = pos;
  }
  scan.torn = scan.valid_bytes < bytes.size();
  return scan;
}

StatusOr<std::string> ReadAll(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    const int err = errno;
    return NotFoundError("cannot open WAL: " + path + ": " + std::strerror(err));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return DataLossError("read failed: " + path + ": " + std::strerror(err));
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

bool WriteFull(int fd, uint64_t offset, std::string_view bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n =
        ::pwrite(fd, bytes.data() + done, bytes.size() - done, static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

std::string SerializeRecord(const WalRecord& record) {
  wire::ByteWriter payload;
  payload.I64(record.sequence);
  if (record.token_suffix.empty()) {
    payload.U8(0);
  } else {
    payload.U8(1);
    payload.U64(static_cast<uint64_t>(record.token_base));
    wire::WriteStringList(record.token_suffix, &payload);
  }
  payload.RawVec(record.deletes);
  wire::WriteObjectList(record.objects, &payload);
  const std::string payload_bytes = payload.Take();

  wire::ByteWriter frame;
  frame.U32(Crc32(payload_bytes));
  frame.U64(payload_bytes.size());
  std::string out = frame.Take();
  out += payload_bytes;
  return out;
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string path, Options options, int fd, uint64_t end_offset)
    : path_(std::move(path)), options_(options), fd_(fd), end_offset_(end_offset) {}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(const std::string& path,
                                                             Options options) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    const int err = errno;
    return NotFoundError("cannot open WAL for appending: " + path + ": " +
                         std::strerror(err));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return DataLossError("cannot stat WAL: " + path + ": " + std::strerror(err));
  }
  uint64_t end = static_cast<uint64_t>(st.st_size);
  if (end < kWalHeaderBytes) {
    // New, empty, or a header torn by a crash during creation: start over.
    const std::string header = HeaderBytes();
    if (!WriteFull(fd, 0, header) || ::ftruncate(fd, kWalHeaderBytes) != 0 ||
        ::fsync(fd) != 0) {
      ::close(fd);
      return DataLossError("cannot initialize WAL: " + path);
    }
    end = kWalHeaderBytes;
  } else {
    StatusOr<std::string> bytes = ReadAll(path);
    if (!bytes.ok()) {
      ::close(fd);
      return bytes.status();
    }
    const Status header_ok = CheckHeader(*bytes, path);
    if (!header_ok.ok()) {
      ::close(fd);
      return header_ok;
    }
    const FrameScan scan = ScanFrames(*bytes);
    if (scan.torn) {
      // Drop the torn tail so new records extend the intact prefix.
      if (::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) != 0 || ::fsync(fd) != 0) {
        ::close(fd);
        return DataLossError("cannot truncate torn WAL tail: " + path);
      }
      KJOIN_LOG(WARNING) << "WAL " << path << " had a torn tail; truncated "
                         << (end - scan.valid_bytes) << " bytes";
      end = scan.valid_bytes;
    }
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, options, fd, end));
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(const std::string& path) {
  return Open(path, Options());
}

Status WriteAheadLog::EnsureOpen() {
  if (fd_ >= 0) return OkStatus();
  const int fd = ::open(path_.c_str(), O_RDWR);
  if (fd < 0) {
    return DataLossError("cannot reopen WAL: " + path_ + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return DataLossError("cannot stat reopened WAL: " + path_ + ": " +
                         std::strerror(err));
  }
  // The handle is only ever dropped right after Truncate fully rewrote
  // the file, so its size is an intact frame boundary.
  fd_ = fd;
  end_offset_ = static_cast<uint64_t>(st.st_size);
  return OkStatus();
}

Status WriteAheadLog::Append(const WalRecord& record) {
  if (KJOIN_FAULT_POINT("serve/wal_append")) {
    return DataLossError("injected WAL append failure: " + path_);
  }
  KJOIN_RETURN_IF_ERROR(EnsureOpen());
  const std::string frame = SerializeRecord(record);
  std::string error;
  if (!WriteFull(fd_, end_offset_, frame)) {
    error = "WAL append write failed: " + path_ + ": " + std::strerror(errno);
  } else if (KJOIN_FAULT_POINT("serve/wal_fsync")) {
    error = "injected WAL fsync failure: " + path_;
  } else if (options_.fsync && ::fsync(fd_) != 0) {
    error = "WAL fsync failed: " + path_ + ": " + std::strerror(errno);
  } else if (dir_sync_pending_) {
    // A Truncate rename is still not directory-durable: a crash could
    // roll the log (and this record with it) back, so the record may not
    // be acked until the entry is pinned down.
    const Status dir_synced = FsyncDir(DirName(path_));
    if (dir_synced.ok()) {
      dir_sync_pending_ = false;
    } else {
      error = "WAL directory entry still not durable: " + path_ + ": " +
              dir_synced.message();
    }
  }
  if (!error.empty()) {
    // Roll back so the record is never half-durable: a later replay must
    // not resurrect a batch the caller was told failed.
    if (::ftruncate(fd_, static_cast<off_t>(end_offset_)) != 0) {
      KJOIN_LOG(ERROR) << "WAL rollback ftruncate failed for " << path_
                       << "; next Open() will drop the torn tail";
    } else if (options_.fsync) {
      ::fsync(fd_);
    }
    return DataLossError(error);
  }
  end_offset_ += frame.size();
  return OkStatus();
}

Status WriteAheadLog::Probe() {
  if (KJOIN_FAULT_POINT("serve/wal_append")) {
    return DataLossError("injected WAL append failure (probe): " + path_);
  }
  KJOIN_RETURN_IF_ERROR(EnsureOpen());
  const char byte = 0;
  std::string error;
  if (!WriteFull(fd_, end_offset_, std::string_view(&byte, 1))) {
    error = "WAL probe write failed: " + path_ + ": " + std::strerror(errno);
  } else if (KJOIN_FAULT_POINT("serve/wal_fsync")) {
    error = "injected WAL fsync failure (probe): " + path_;
  } else if (options_.fsync && ::fsync(fd_) != 0) {
    error = "WAL probe fsync failed: " + path_ + ": " + std::strerror(errno);
  }
  // Take the probe byte back off whether or not it made it to disk; a
  // leftover byte is just a torn tail the next Open()/Replay drops.
  if (::ftruncate(fd_, static_cast<off_t>(end_offset_)) != 0) {
    if (error.empty()) {
      error = "WAL probe truncate failed: " + path_ + ": " + std::strerror(errno);
    }
  } else if (options_.fsync && error.empty() && ::fsync(fd_) != 0) {
    error = "WAL probe fsync failed: " + path_ + ": " + std::strerror(errno);
  }
  if (error.empty() && dir_sync_pending_) {
    // Appends cannot ack until the truncate rename is directory-durable,
    // so the log is not healthy until this succeeds either.
    const Status dir_synced = FsyncDir(DirName(path_));
    if (dir_synced.ok()) {
      dir_sync_pending_ = false;
    } else {
      error = "WAL directory entry still not durable: " + path_ + ": " +
              dir_synced.message();
    }
  }
  if (!error.empty()) return DataLossError(error);
  return OkStatus();
}

Status WriteAheadLog::Truncate(int64_t up_to_sequence) {
  KJOIN_ASSIGN_OR_RETURN(std::string bytes, ReadAll(path_));
  KJOIN_RETURN_IF_ERROR(CheckHeader(bytes, path_));
  const FrameScan scan = ScanFrames(bytes);
  std::string kept = HeaderBytes();
  size_t dropped = 0;
  for (size_t i = 0; i < scan.payloads.size(); ++i) {
    if (scan.payloads[i].size() < 8) {
      return DataLossError(path_ + ": record " + std::to_string(i) + " too short");
    }
    const int64_t sequence = static_cast<int64_t>(LoadU64(scan.payloads[i], 0));
    if (sequence <= up_to_sequence) {
      ++dropped;
      continue;
    }
    // Copy the whole frame (header + payload) verbatim.
    const uint64_t begin = scan.frame_offsets[i];
    const uint64_t size = kWalFrameBytes + scan.payloads[i].size();
    kept.append(bytes, begin, size);
  }
  if (dropped == 0) return OkStatus();

  const std::string tmp = path_ + ".tmp";
  const int tmp_fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) {
    return DataLossError("cannot open " + tmp + ": " + std::strerror(errno));
  }
  const bool written = WriteFull(tmp_fd, 0, kept) && ::fsync(tmp_fd) == 0;
  ::close(tmp_fd);
  if (!written || std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return DataLossError("cannot rewrite WAL: " + path_);
  }
  // The rename happened: the directory entry now points at the rewritten
  // log, so the handle MUST follow it no matter what fails below. Keeping
  // the old fd would send every later append into the old, unlinked inode
  // — acked, fsynced, and gone at the next open.
  const int new_fd = ::open(path_.c_str(), O_RDWR);
  if (fd_ >= 0) ::close(fd_);
  fd_ = new_fd;  // -1 on failure: EnsureOpen() retries at the next append
  if (new_fd < 0) {
    return DataLossError("cannot reopen truncated WAL: " + path_ + ": " +
                         std::strerror(errno));
  }
  end_offset_ = kept.size();
  // The rename is not durable until the parent directory entry is: a
  // crash could otherwise roll the log back to its pre-truncate contents
  // while the caller believes the rewrite landed. On failure the pending
  // flag makes Append/Probe re-sync the directory before acking anything
  // written on top of the rewrite.
  const Status dir_synced = FsyncDir(DirName(path_));
  dir_sync_pending_ = !dir_synced.ok();
  return dir_synced;
}

StatusOr<WalReplayResult> WriteAheadLog::Replay(const std::string& path,
                                                const WalReplayInput& input) {
  StatusOr<WalReplayResult> out = WalReplayResult{};
  StatusOr<std::string> bytes = ReadAll(path);
  if (!bytes.ok()) {
    // A log that never existed is an empty log; anything else is real.
    if (IsNotFound(bytes.status())) return out;
    return bytes.status();
  }
  if (bytes->size() < kWalHeaderBytes) {
    // A header torn by a crash during creation: no records were ever
    // durable, so the log is empty (Open() rewrites the header).
    out->torn_tail = !bytes->empty();
    out->valid_bytes = 0;
    return out;
  }
  KJOIN_RETURN_IF_ERROR(CheckHeader(*bytes, path));
  const FrameScan scan = ScanFrames(*bytes);
  out->valid_bytes = scan.valid_bytes;
  out->torn_tail = scan.torn;

  std::vector<std::string> running_tokens = input.tokens;
  std::unordered_set<std::string> token_set(running_tokens.begin(), running_tokens.end());
  int64_t running_objects = input.num_objects;
  int64_t previous_sequence = 0;
  bool have_previous = false;

  for (size_t i = 0; i < scan.payloads.size(); ++i) {
    const std::string label = path + " record " + std::to_string(i);
    wire::ByteReader r(scan.payloads[i], label);
    int64_t sequence;
    KJOIN_RETURN_IF_ERROR(r.I64(&sequence));
    if (have_previous && sequence != previous_sequence + 1) {
      return DataLossError(label + ": sequence " + std::to_string(sequence) +
                           " does not follow " + std::to_string(previous_sequence));
    }
    previous_sequence = sequence;
    have_previous = true;
    if (sequence <= input.min_sequence_exclusive) {
      // Already folded into the snapshot; its token update is part of
      // input.tokens, so skip the payload entirely.
      continue;
    }
    if (out->records.empty() && sequence != input.min_sequence_exclusive + 1) {
      return DataLossError(label + ": first record past the snapshot has sequence " +
                           std::to_string(sequence) + ", expected " +
                           std::to_string(input.min_sequence_exclusive + 1) +
                           " (log truncated beyond the snapshot?)");
    }

    WalRecord record;
    record.sequence = sequence;
    uint8_t has_tokens;
    KJOIN_RETURN_IF_ERROR(r.U8(&has_tokens));
    if (has_tokens != 0) {
      uint64_t base;
      KJOIN_RETURN_IF_ERROR(r.U64(&base));
      if (base != running_tokens.size()) {
        return DataLossError(label + ": token update extends a table of " +
                             std::to_string(base) + " entries, but the replayed table has " +
                             std::to_string(running_tokens.size()));
      }
      record.token_base = static_cast<int64_t>(base);
      KJOIN_RETURN_IF_ERROR(
          wire::ParseStringList(r, /*reject_duplicates=*/true, &record.token_suffix));
      for (const std::string& token : record.token_suffix) {
        if (!token_set.insert(token).second) {
          return InvalidArgumentError(label + ": token '" + token +
                                      "' already interned in the table being extended");
        }
        running_tokens.push_back(token);
      }
    }
    KJOIN_RETURN_IF_ERROR(r.RawVec(&record.deletes));
    for (const int32_t index : record.deletes) {
      if (index < 0 || index >= running_objects) {
        return InvalidArgumentError(label + ": delete of object " + std::to_string(index) +
                                    " outside the collection of " +
                                    std::to_string(running_objects) + " objects");
      }
    }
    KJOIN_RETURN_IF_ERROR(
        wire::ParseObjectList(r, running_tokens, input.num_nodes, &record.objects));
    KJOIN_RETURN_IF_ERROR(r.ExpectEnd());
    running_objects += static_cast<int64_t>(record.objects.size());
    out->records.push_back(std::move(record));
  }
  return out;
}

}  // namespace kjoin::serve
