#ifndef KJOIN_SERVE_ADMISSION_H_
#define KJOIN_SERVE_ADMISSION_H_

// Adaptive admission control, factored out of SearchService so every
// serving front end (the single-index SearchService, the sharded
// ShardRouter) sheds load the same way.
//
// The controller bounds the number of queries admitted (queued +
// executing) at once and, when adaptive, sheds *early* on two load
// signals instead of burning pool time on queries that will miss their
// deadlines anyway:
//
//  - a queue-delay EWMA (admit -> execute latency, which for a batching
//    front end includes the accumulation-window wait): a request whose
//    effective deadline is already below the estimated wait is shed up
//    front as deadline-infeasible, before it queues;
//  - the recent deadline-miss fraction, fed to an AIMD controller that
//    walks an effective in-flight cap between min_in_flight and
//    max_in_flight — halved when a window of queries misses too often,
//    +1 per clean window.
//
// Metrics are published under "<prefix>." ("service" keeps the
// historical service.* names): <prefix>.shed (legacy total),
// <prefix>.shed_total, <prefix>.shed_cap,
// <prefix>.shed_deadline_infeasible, <prefix>.effective_cap (gauge),
// <prefix>.queue_delay_seconds (histogram). Shed statuses carry the load
// picture and a machine-readable retry_after_ms= hint
// (docs/robustness.md, "Failure modes and degraded operation").

#include <atomic>
#include <cstdint>
#include <string>

#include "common/metrics.h"
#include "common/status.h"

namespace kjoin::serve {

struct AdmissionOptions {
  // Queries admitted at once; above the cap TryAdmit sheds. <= 0 means
  // unbounded (and disables the adaptive controller — there is no cap to
  // adapt).
  int max_in_flight = 64;
  // Adaptive admission (see the header comment). Off = the fixed
  // max_in_flight cap and no early deadline-infeasible shedding.
  bool adaptive = true;
  // AIMD floor: the effective cap never drops below this, so a miss
  // storm cannot shed the service to zero.
  int min_in_flight = 4;
  // Weight of the newest queue-delay sample in the EWMA (0..1].
  double queue_delay_ewma_alpha = 0.2;
  // Queries per AIMD adjustment window.
  int aimd_window = 32;
  // Window deadline-miss fraction at or above which the cap is halved.
  double aimd_miss_threshold = 0.5;
};

class AdmissionController {
 public:
  enum class Outcome { kAdmitted, kShedCap, kShedDeadlineInfeasible };

  // `metrics` may be null. `metric_prefix` names this controller's
  // metrics ("service", "router", ...).
  AdmissionController(AdmissionOptions options, std::string metric_prefix,
                      MetricsRegistry* metrics);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Reserves one slot. kShedDeadlineInfeasible when the queue-delay
  // estimate already exceeds `deadline_seconds` (> 0; adaptive only);
  // kShedCap when the effective cap is full. On kAdmitted the caller
  // owns the slot and must Release() it exactly once.
  Outcome TryAdmit(double deadline_seconds);
  void Release();

  // Folds one admit -> execute wait into the EWMA (and the
  // <prefix>.queue_delay_seconds histogram).
  void RecordQueueDelay(double seconds);

  // Feeds the AIMD controller one finished query's outcome.
  void NoteOutcome(bool deadline_missed);

  // Builds the kResourceExhausted status for a shed outcome and counts
  // it in the metrics. `outcome` must be one of the shed outcomes.
  Status ShedStatus(Outcome outcome, double deadline_seconds);

  int64_t in_flight() const { return in_flight_.load(std::memory_order_relaxed); }
  // The AIMD controller's current cap (== max_in_flight when adaptive is
  // off or the controller has not yet backed off).
  int64_t effective_cap() const { return effective_cap_.load(std::memory_order_relaxed); }
  // Estimated admit -> execute wait, the deadline-infeasible signal.
  double queue_delay_ewma_seconds() const {
    return static_cast<double>(queue_delay_ewma_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  // Test hook: plants the queue-delay estimate so deadline-infeasible
  // shedding is exercisable without real queue pressure.
  void SetQueueDelayEwmaForTest(double seconds) {
    queue_delay_ewma_ns_.store(static_cast<int64_t>(seconds * 1e9),
                               std::memory_order_relaxed);
  }
  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  std::string prefix_;
  MetricsRegistry* metrics_;
  std::atomic<int64_t> in_flight_{0};

  // Adaptive admission state. All updates are relaxed: the controller is
  // a heuristic and the occasional lost update only delays an adjustment
  // by one sample, never corrupts anything.
  std::atomic<int64_t> effective_cap_{0};  // set from options in ctor
  std::atomic<int64_t> queue_delay_ewma_ns_{0};
  std::atomic<int64_t> window_queries_{0};
  std::atomic<int64_t> window_misses_{0};
};

}  // namespace kjoin::serve

#endif  // KJOIN_SERVE_ADMISSION_H_
