#ifndef KJOIN_SERVE_SHARD_ROUTER_H_
#define KJOIN_SERVE_SHARD_ROUTER_H_

// Scatter-gather query execution over a set of shards, with progressive
// top-k pruning and request batching.
//
// The router fans each query out to every shard, gathers the per-shard
// hits (already in global numbering, see ShardBackend), merges them
// under the documented total order (HitBefore: similarity desc, object
// index asc), and truncates to the global top-k. Results are
// byte-identical to a single unsharded index at any shard count — the
// determinism contract tests/shard_test.cc locks in.
//
// Progressive pruning: for a top-k query the router allocates one
// SearchBound (core/kjoin_index.h) seeded at the query's similarity
// floor and hands it to every shard probe. Each probe publishes its
// running k-th-best similarity into the bound and polls it between
// candidates, so a shard that starts (or is still running) after another
// shard found strong hits skips the prefix lists, posting blocks, and
// verifications that can no longer reach the global top-k. The bound
// only ever *helps*: pruning stays kSearchBoundSlack below it, so the
// final top-k (ties included) is unchanged — only the work to find it
// shrinks. On a single-lane pool the scatter degenerates to a sequential
// cascade, which maximizes the effect: shard 0 completes and tightens
// the bound before shard 1 starts.
//
// Batching: Submit() enqueues and a dedicated dispatcher thread drains
// the queue in batches of up to max_batch, probing each shard ONCE per
// batch (one epoch acquisition, one scratch warmup per shard instead of
// per query). The dispatcher takes whatever accumulated while it was
// busy — under load batches form naturally with no added latency; an
// optional batch_window_seconds adds a bounded extra wait to coalesce
// harder. Admission (serve/admission.h, "router.*" metrics) sees the
// full admit -> execute wait including the window, so deadline-
// infeasible shedding accounts for queue + batch latency.
//
// The ShardBackend interface is deliberately address-space-agnostic:
// the router only ever sends it value-typed ShardQuery/ShardReply
// batches. LocalShard adapts an in-process ShardedIndexManager shard; a
// remote transport would marshal the same structs (the SearchBound
// pointer degrades to "poll your own local bound", which is still
// correct — the bound is a hint, never a correctness input).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/kjoin_index.h"
#include "serve/admission.h"
#include "serve/search_service.h"
#include "serve/sharded_index_manager.h"

namespace kjoin::serve {

// One query as a shard sees it: the floor is already resolved (no
// sentinel), indexes in the reply are global.
struct ShardQuery {
  const Object* query = nullptr;
  int32_t top_k = 0;          // > 0 top-k, 0 = all above min_similarity
  double min_similarity = 0.0;
  double deadline_seconds = 0.0;  // remaining budget; <= 0 = none
  const CancelToken* cancel_token = nullptr;
  // Shared progressive bound for this query (null for threshold
  // searches); probes both tighten and poll it.
  SearchBound* bound = nullptr;
};

struct ShardHit {
  int32_t global_index = 0;
  double similarity = 0.0;
};

struct ShardReply {
  Status status;
  // In HitBefore order under *global* indexes (the backend translates
  // before returning, and the local -> global map is strictly
  // increasing, so local order is global order).
  std::vector<ShardHit> hits;
  SearchStats stats;
  int64_t epoch_version = 0;
};

class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  // Probes `count` queries against this shard, filling `replies[i]` for
  // `queries[i]`. The batch runs under one index snapshot acquisition —
  // the amortization Submit batching exists for.
  virtual void ProbeBatch(const ShardQuery* queries, ShardReply* replies, int count) = 0;

  // The shard's configured similarity threshold, used to resolve the
  // QueryRequest min_similarity sentinel (all shards of one collection
  // share it).
  virtual double tau() const = 0;
};

// In-process backend over one ShardedIndexManager shard.
class LocalShard : public ShardBackend {
 public:
  LocalShard(const ShardedIndexManager* manager, int shard);

  void ProbeBatch(const ShardQuery* queries, ShardReply* replies, int count) override;
  double tau() const override { return tau_; }

 private:
  const ShardedIndexManager* manager_;
  int shard_;
  double tau_;
};

struct ShardRouterOptions {
  // Deadline applied when a request does not set its own; <= 0 = none.
  double default_deadline_seconds = 0.0;
  // Queries per dispatcher batch.
  int max_batch = 64;
  // Extra time the dispatcher waits for more queries after finding the
  // queue non-empty (it always takes everything already queued). 0 =
  // dispatch as soon as the dispatcher is free; batches still form
  // naturally while it is busy.
  double batch_window_seconds = 0.0;
  // Admission control, published under "router.*".
  AdmissionOptions admission;
};

class ShardRouter {
 public:
  // `shards` (non-empty), `pool` and `metrics` are borrowed and must
  // outlive the router; `metrics` may be null. Router-level metrics:
  // router.queries, router.hits, router.latency_seconds,
  // router.deadline_exceeded, router.cancelled, router.errors,
  // router.batches, router.batch_size (histogram), router.queue_depth
  // (gauge), plus the admission controller's router.shed* family and
  // per-shard counters under ShardMetricName("router", s, ...): probes,
  // hits, bound_tightenings, bound_pruned_lists, bound_pruned_entries,
  // bound_pruned_blocks.
  ShardRouter(std::vector<ShardBackend*> shards, ThreadPool* pool,
              ShardRouterOptions options = {}, MetricsRegistry* metrics = nullptr);

  // Drains every Submit()ted query (callbacks fire), then stops the
  // dispatcher.
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Synchronous scatter-gather on the calling thread. Shards are probed
  // sequentially (the progressive-bound cascade), each with the
  // remaining deadline budget; a mid-scatter deadline trip returns the
  // hits gathered so far with kDeadlineExceeded.
  QueryResponse Search(const QueryRequest& request);

  // Asynchronous batched path: admits, enqueues, and returns; `done`
  // runs on the dispatcher thread. Shed queries invoke `done` inline
  // with kResourceExhausted. Same callback contract as
  // SearchService::Submit (exceptions are caught and counted).
  void Submit(QueryRequest request, std::function<void(QueryResponse)> done);

  // Convenience: Submit()s every request and waits; responses in request
  // order.
  std::vector<QueryResponse> SearchBatch(const std::vector<QueryRequest>& requests);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int64_t in_flight() const { return admission_.in_flight(); }
  int64_t effective_cap() const { return admission_.effective_cap(); }
  double queue_delay_ewma_seconds() const { return admission_.queue_delay_ewma_seconds(); }
  void SetQueueDelayEwmaForTest(double seconds) {
    admission_.SetQueueDelayEwmaForTest(seconds);
  }
  // Queries enqueued but not yet picked up by the dispatcher.
  int64_t queue_depth() const;

 private:
  struct Pending {
    QueryRequest request;
    std::function<void(QueryResponse)> done;
    std::chrono::steady_clock::time_point admitted_at;
  };

  double EffectiveDeadline(const QueryRequest& request) const;
  QueryResponse Shed(AdmissionController::Outcome outcome, double deadline_seconds);
  void DispatcherLoop();
  // Scatters the batch to every shard (ParallelFor when the pool has
  // lanes), gathers, and fills `responses`. `remaining[i]` is query i's
  // already-clamped deadline budget (0 = none).
  void ExecuteBatch(const std::vector<const QueryRequest*>& requests,
                    const std::vector<double>& remaining,
                    std::vector<QueryResponse*>& responses);
  // Merges one query's per-shard replies (one pointer per shard) into
  // its response and records per-shard metrics.
  void Gather(const ShardReply* const* replies, int32_t top_k, QueryResponse* response);
  void RecordResponseMetrics(const QueryResponse& response);

  std::vector<ShardBackend*> shards_;
  ThreadPool* pool_;
  ShardRouterOptions options_;
  MetricsRegistry* metrics_;
  AdmissionController admission_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;  // guarded by queue_mu_
  bool shutdown_ = false;      // guarded by queue_mu_
  std::thread dispatcher_;
};

}  // namespace kjoin::serve

#endif  // KJOIN_SERVE_SHARD_ROUTER_H_
