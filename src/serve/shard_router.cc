#include "serve/shard_router.h"

#include <algorithm>
#include <optional>
#include <queue>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"

namespace kjoin::serve {
namespace {

void AddStats(SearchStats* into, const SearchStats& other) {
  into->candidates += other.candidates;
  into->bound_tightenings += other.bound_tightenings;
  into->bound_pruned_lists += other.bound_pruned_lists;
  into->bound_pruned_entries += other.bound_pruned_entries;
  into->bound_pruned_blocks += other.bound_pruned_blocks;
  into->bound_raised_verifies += other.bound_raised_verifies;
  into->bound_skipped_verifies += other.bound_skipped_verifies;
  into->verify.Add(other.verify);
}

// Router-side progressive tightening. A single shard's probe only
// offers its k-th best once IT holds k hits — with many shards no one
// shard may ever get there. The router therefore merges the similarity
// of every gathered hit into one per-query top-k tracker as each shard
// finishes, and offers the *combined* k-th best to the shared bound.
// Sound for the same reason as the in-probe offer: the tracked hits are
// a subset of all verified hits, so their k-th best is <= the global
// k-th best, and Tighten is a monotone fetch-max.
struct TopKTracker {
  explicit TopKTracker(int32_t top_k) : k(top_k) {}

  // Folds one shard reply in; returns the number of bound advances (0/1).
  int64_t Offer(const std::vector<ShardHit>& hits, SearchBound* bound) {
    std::lock_guard<std::mutex> lock(mu);
    for (const ShardHit& hit : hits) {
      if (static_cast<int32_t>(heap.size()) < k) {
        heap.push(hit.similarity);
      } else if (hit.similarity > heap.top()) {
        heap.pop();
        heap.push(hit.similarity);
      }
    }
    if (static_cast<int32_t>(heap.size()) < k) return 0;
    if (!bound->Tighten(heap.top())) return 0;
    ++tightenings;
    return 1;
  }

  std::mutex mu;
  int32_t k;
  // Min-heap of the k best similarities seen across shards so far; its
  // top is the running global k-th best.
  std::priority_queue<double, std::vector<double>, std::greater<double>> heap;
  int64_t tightenings = 0;  // guarded by mu
};

// Gather status precedence: a cancel is the caller's own signal, a
// deadline trip means partial results, any other error outranks OK.
int StatusRank(const Status& status) {
  if (IsCancelled(status)) return 3;
  if (IsDeadlineExceeded(status)) return 2;
  if (!status.ok()) return 1;
  return 0;
}

}  // namespace

LocalShard::LocalShard(const ShardedIndexManager* manager, int shard)
    : manager_(manager), shard_(shard) {
  KJOIN_CHECK(manager_ != nullptr) << "LocalShard needs a ShardedIndexManager";
  tau_ = manager_->shard(shard_)->Acquire()->index->options().tau;
}

void LocalShard::ProbeBatch(const ShardQuery* queries, ShardReply* replies, int count) {
  // One snapshot + one mapping per batch: every query in the batch sees
  // the same shard state. Epoch first, mapping second — the mapping is
  // updated before a batch is handed to the shard, so reading in this
  // order guarantees the mapping covers every index the epoch can emit.
  const std::shared_ptr<const IndexEpoch> epoch = manager_->shard(shard_)->Acquire();
  const std::shared_ptr<const std::vector<int32_t>> to_global =
      manager_->GlobalIndexes(shard_);
  const KJoinIndex& index = *epoch->index;
  std::vector<SearchHit> hits;
  for (int i = 0; i < count; ++i) {
    const ShardQuery& q = queries[i];
    ShardReply& reply = replies[i];
    reply.epoch_version = epoch->version;
    JoinControl control;
    control.deadline_seconds = q.deadline_seconds;
    control.cancel_token = q.cancel_token;
    hits.clear();
    if (q.top_k > 0) {
      reply.status = index.SearchTopK(*q.query, q.top_k, q.min_similarity, control, q.bound,
                                      &hits, &reply.stats);
    } else {
      reply.status = index.Search(*q.query, control, &hits, &reply.stats);
    }
    reply.hits.clear();
    reply.hits.reserve(hits.size());
    for (const SearchHit& hit : hits) {
      reply.hits.push_back(
          {(*to_global)[static_cast<size_t>(hit.object_index)], hit.similarity});
    }
  }
}

ShardRouter::ShardRouter(std::vector<ShardBackend*> shards, ThreadPool* pool,
                         ShardRouterOptions options, MetricsRegistry* metrics)
    : shards_(std::move(shards)),
      pool_(pool),
      options_(options),
      metrics_(metrics),
      admission_(options.admission, "router", metrics) {
  KJOIN_CHECK(!shards_.empty()) << "ShardRouter needs at least one shard";
  KJOIN_CHECK(pool_ != nullptr) << "ShardRouter needs a ThreadPool";
  KJOIN_CHECK(options_.max_batch >= 1) << "max_batch must be >= 1";
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

ShardRouter::~ShardRouter() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();
}

double ShardRouter::EffectiveDeadline(const QueryRequest& request) const {
  return request.deadline_seconds < 0.0 ? options_.default_deadline_seconds
                                        : request.deadline_seconds;
}

QueryResponse ShardRouter::Shed(AdmissionController::Outcome outcome,
                                double deadline_seconds) {
  QueryResponse response;
  response.status = admission_.ShedStatus(outcome, deadline_seconds);
  return response;
}

int64_t ShardRouter::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return static_cast<int64_t>(queue_.size());
}

void ShardRouter::Gather(const ShardReply* const* replies, int32_t top_k,
                         QueryResponse* response) {
  const int ns = num_shards();
  size_t total = 0;
  for (int s = 0; s < ns; ++s) total += replies[s]->hits.size();
  response->hits.clear();
  response->hits.reserve(total);
  int best_rank = 0;
  for (int s = 0; s < ns; ++s) {
    const ShardReply& reply = *replies[s];
    for (const ShardHit& hit : reply.hits) {
      response->hits.push_back({hit.global_index, hit.similarity});
    }
    const int rank = StatusRank(reply.status);
    if (rank > best_rank) {
      best_rank = rank;
      response->status = reply.status;
    }
    response->epoch_version = std::max(response->epoch_version, reply.epoch_version);
    AddStats(&response->stats, reply.stats);
    if (metrics_ != nullptr) {
      metrics_->counter(ShardMetricName("router", s, "probes"))->Increment();
      metrics_->counter(ShardMetricName("router", s, "hits"))
          ->Increment(static_cast<int64_t>(reply.hits.size()));
      metrics_->counter(ShardMetricName("router", s, "bound_tightenings"))
          ->Increment(reply.stats.bound_tightenings);
      metrics_->counter(ShardMetricName("router", s, "bound_pruned_lists"))
          ->Increment(reply.stats.bound_pruned_lists);
      metrics_->counter(ShardMetricName("router", s, "bound_pruned_entries"))
          ->Increment(reply.stats.bound_pruned_entries);
      metrics_->counter(ShardMetricName("router", s, "bound_pruned_blocks"))
          ->Increment(reply.stats.bound_pruned_blocks);
    }
  }
  if (best_rank == 0) response->status = OkStatus();
  // Disjoint id sets under a strict total order: the merged order is
  // unique, hence identical to the single-index order.
  std::sort(response->hits.begin(), response->hits.end(), HitBefore);
  if (top_k > 0 && response->hits.size() > static_cast<size_t>(top_k)) {
    response->hits.resize(static_cast<size_t>(top_k));
  }
}

void ShardRouter::RecordResponseMetrics(const QueryResponse& response) {
  if (metrics_ == nullptr) return;
  metrics_->counter("router.queries")->Increment();
  metrics_->counter("router.hits")->Increment(static_cast<int64_t>(response.hits.size()));
  metrics_->histogram("router.latency_seconds")->Observe(response.seconds);
  if (IsDeadlineExceeded(response.status)) {
    metrics_->counter("router.deadline_exceeded")->Increment();
  } else if (IsCancelled(response.status)) {
    metrics_->counter("router.cancelled")->Increment();
  } else if (!response.status.ok()) {
    metrics_->counter("router.errors")->Increment();
  }
}

QueryResponse ShardRouter::Search(const QueryRequest& request) {
  const double deadline = EffectiveDeadline(request);
  const AdmissionController::Outcome outcome = admission_.TryAdmit(deadline);
  if (outcome != AdmissionController::Outcome::kAdmitted) return Shed(outcome, deadline);
  // Synchronous callers never queue (mirrors SearchService::Search).
  admission_.RecordQueueDelay(0.0);
  WallTimer timer;
  QueryResponse response;
  const double floor =
      request.min_similarity < 0.0 ? shards_[0]->tau() : request.min_similarity;
  SearchBound bound(floor);
  ShardQuery shard_query;
  shard_query.query = &request.query;
  shard_query.top_k = request.top_k;
  shard_query.min_similarity = floor;
  shard_query.cancel_token = request.cancel_token;
  shard_query.bound = request.top_k > 0 ? &bound : nullptr;
  const int ns = num_shards();
  std::vector<ShardReply> replies(static_cast<size_t>(ns));
  std::optional<TopKTracker> tracker;
  if (request.top_k > 0) tracker.emplace(request.top_k);
  for (int s = 0; s < ns; ++s) {
    if (deadline > 0.0) {
      const double remaining = deadline - timer.ElapsedSeconds();
      if (remaining <= 0.0) {
        replies[static_cast<size_t>(s)].status = DeadlineExceededError(
            "deadline exhausted before shard " + std::to_string(s) + " was probed");
        continue;
      }
      shard_query.deadline_seconds = remaining;
    }
    shards_[static_cast<size_t>(s)]->ProbeBatch(&shard_query,
                                                &replies[static_cast<size_t>(s)], 1);
    // The cascade step: this shard's hits tighten the bound for every
    // shard still to be probed.
    if (tracker) tracker->Offer(replies[static_cast<size_t>(s)].hits, &bound);
  }
  std::vector<const ShardReply*> per_shard(static_cast<size_t>(ns));
  for (int s = 0; s < ns; ++s) per_shard[static_cast<size_t>(s)] = &replies[static_cast<size_t>(s)];
  Gather(per_shard.data(), request.top_k, &response);
  if (tracker) response.stats.bound_tightenings += tracker->tightenings;
  response.seconds = timer.ElapsedSeconds();
  admission_.NoteOutcome(IsDeadlineExceeded(response.status));
  RecordResponseMetrics(response);
  admission_.Release();
  return response;
}

void ShardRouter::Submit(QueryRequest request, std::function<void(QueryResponse)> done) {
  const double deadline = EffectiveDeadline(request);
  const AdmissionController::Outcome outcome = admission_.TryAdmit(deadline);
  if (outcome != AdmissionController::Outcome::kAdmitted) {
    done(Shed(outcome, deadline));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(Pending{std::move(request), std::move(done),
                             std::chrono::steady_clock::now()});
    if (metrics_ != nullptr) {
      metrics_->gauge("router.queue_depth")->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  queue_cv_.notify_one();
}

std::vector<QueryResponse> ShardRouter::SearchBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<QueryResponse> responses(requests.size());
  std::mutex mu;
  std::condition_variable all_done;
  size_t finished = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    Submit(requests[i], [&, i](QueryResponse response) {
      // Notify while holding the lock: the waiter owns these stack
      // locals and may destroy them the moment the predicate holds, so
      // the signal must complete before the mutex is released.
      std::lock_guard<std::mutex> lock(mu);
      responses[i] = std::move(response);
      ++finished;
      all_done.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  all_done.wait(lock, [&] { return finished == requests.size(); });
  return responses;
}

void ShardRouter::ExecuteBatch(const std::vector<const QueryRequest*>& requests,
                               const std::vector<double>& remaining,
                               std::vector<QueryResponse*>& responses) {
  const int count = static_cast<int>(requests.size());
  WallTimer timer;
  std::vector<ShardQuery> queries(static_cast<size_t>(count));
  std::vector<std::unique_ptr<SearchBound>> bounds(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const QueryRequest& request = *requests[static_cast<size_t>(i)];
    ShardQuery& q = queries[static_cast<size_t>(i)];
    q.query = &request.query;
    q.top_k = request.top_k;
    q.min_similarity =
        request.min_similarity < 0.0 ? shards_[0]->tau() : request.min_similarity;
    q.deadline_seconds = remaining[static_cast<size_t>(i)];
    q.cancel_token = request.cancel_token;
    if (request.top_k > 0) {
      bounds[static_cast<size_t>(i)] = std::make_unique<SearchBound>(q.min_similarity);
      q.bound = bounds[static_cast<size_t>(i)].get();
    }
  }
  const int ns = num_shards();
  std::vector<std::vector<ShardReply>> replies(
      static_cast<size_t>(ns), std::vector<ShardReply>(static_cast<size_t>(count)));
  std::vector<std::unique_ptr<TopKTracker>> trackers(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    if (queries[static_cast<size_t>(i)].bound != nullptr) {
      trackers[static_cast<size_t>(i)] =
          std::make_unique<TopKTracker>(queries[static_cast<size_t>(i)].top_k);
    }
  }
  // The dispatcher is a dedicated thread (never a pool worker), so it may
  // fan out with ParallelFor; on a single-lane pool this runs the shards
  // sequentially right here — the progressive-bound cascade.
  pool_->ParallelFor(ns, ns, [&](int /*shard*/, int64_t begin, int64_t end) {
    for (int64_t s = begin; s < end; ++s) {
      shards_[static_cast<size_t>(s)]->ProbeBatch(
          queries.data(), replies[static_cast<size_t>(s)].data(), count);
      // Each finished shard tightens every query's shared bound for the
      // shards that are still probing (or not yet started).
      for (int i = 0; i < count; ++i) {
        if (trackers[static_cast<size_t>(i)] != nullptr) {
          trackers[static_cast<size_t>(i)]->Offer(
              replies[static_cast<size_t>(s)][static_cast<size_t>(i)].hits,
              queries[static_cast<size_t>(i)].bound);
        }
      }
    }
  });
  std::vector<const ShardReply*> per_shard(static_cast<size_t>(ns));
  for (int i = 0; i < count; ++i) {
    for (int s = 0; s < ns; ++s) {
      per_shard[static_cast<size_t>(s)] = &replies[static_cast<size_t>(s)][static_cast<size_t>(i)];
    }
    QueryResponse* response = responses[static_cast<size_t>(i)];
    Gather(per_shard.data(), requests[static_cast<size_t>(i)]->top_k, response);
    if (trackers[static_cast<size_t>(i)] != nullptr) {
      response->stats.bound_tightenings += trackers[static_cast<size_t>(i)]->tightenings;
    }
    response->seconds = timer.ElapsedSeconds();
    admission_.NoteOutcome(IsDeadlineExceeded(response->status));
    RecordResponseMetrics(*response);
  }
}

void ShardRouter::DispatcherLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and fully drained
      if (options_.batch_window_seconds > 0.0 && !shutdown_ &&
          static_cast<int>(queue_.size()) < options_.max_batch) {
        // Bounded coalescing wait; everything already queued is taken
        // regardless.
        queue_cv_.wait_for(
            lock, std::chrono::duration<double>(options_.batch_window_seconds), [&] {
              return shutdown_ || static_cast<int>(queue_.size()) >= options_.max_batch;
            });
      }
      const int take =
          std::min<int>(options_.max_batch, static_cast<int>(queue_.size()));
      batch.reserve(static_cast<size_t>(take));
      for (int i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (metrics_ != nullptr) {
        metrics_->gauge("router.queue_depth")->Set(static_cast<int64_t>(queue_.size()));
      }
    }
    if (metrics_ != nullptr) {
      metrics_->counter("router.batches")->Increment();
      metrics_->histogram("router.batch_size")
          ->Observe(static_cast<double>(batch.size()));
    }
    const auto now = std::chrono::steady_clock::now();
    std::vector<QueryResponse> responses(batch.size());
    std::vector<const QueryRequest*> live_requests;
    std::vector<double> live_remaining;
    std::vector<QueryResponse*> live_responses;
    for (size_t i = 0; i < batch.size(); ++i) {
      const double queue_delay =
          std::chrono::duration<double>(now - batch[i].admitted_at).count();
      admission_.RecordQueueDelay(queue_delay);
      const double deadline = EffectiveDeadline(batch[i].request);
      if (deadline > 0.0 && deadline - queue_delay <= 0.0) {
        // The budget went to queue + window wait; answer without burning
        // a scatter. The wait is already in the EWMA, so the next such
        // request is shed before it queues.
        responses[i].status = DeadlineExceededError(
            "deadline expired while the query was queued for dispatch");
        admission_.NoteOutcome(true);
        RecordResponseMetrics(responses[i]);
        continue;
      }
      live_requests.push_back(&batch[i].request);
      live_remaining.push_back(deadline > 0.0 ? deadline - queue_delay : 0.0);
      live_responses.push_back(&responses[i]);
    }
    if (!live_requests.empty()) {
      ExecuteBatch(live_requests, live_remaining, live_responses);
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      try {
        batch[i].done(std::move(responses[i]));
      } catch (...) {
        KJOIN_LOG(ERROR) << "Submit() completion callback threw; see the "
                            "callback contract in search_service.h";
        if (metrics_ != nullptr) {
          metrics_->counter("router.callback_exceptions")->Increment();
        }
      }
      admission_.Release();
    }
  }
}

}  // namespace kjoin::serve
