#include "serve/snapshot_store.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "serve/fs_util.h"

namespace kjoin::serve {
namespace {

constexpr char kGenPrefix[] = "gen-";
constexpr char kGenSuffix[] = ".kjsn";
constexpr char kQuarantineSuffix[] = ".quarantine";
constexpr int kGenDigits = 12;

std::string GenName(int64_t generation) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%0*" PRId64 "%s", kGenPrefix, kGenDigits,
                generation, kGenSuffix);
  return name;
}

// gen-000000000042.kjsn -> 42; -1 for anything else (quarantined files,
// tmp files, MANIFEST, strays).
int64_t ParseGenName(const std::string& name) {
  const size_t prefix = sizeof(kGenPrefix) - 1;
  const size_t suffix = sizeof(kGenSuffix) - 1;
  if (name.size() != prefix + kGenDigits + suffix) return -1;
  if (name.compare(0, prefix, kGenPrefix) != 0) return -1;
  if (name.compare(prefix + kGenDigits, suffix, kGenSuffix) != 0) return -1;
  int64_t generation = 0;
  for (int i = 0; i < kGenDigits; ++i) {
    const char c = name[prefix + static_cast<size_t>(i)];
    if (c < '0' || c > '9') return -1;
    generation = generation * 10 + (c - '0');
  }
  return generation;
}

}  // namespace

SnapshotStore::SnapshotStore(std::string dir, SnapshotStoreOptions options,
                             MetricsRegistry* metrics)
    : dir_(std::move(dir)), options_(options), metrics_(metrics) {}

StatusOr<std::unique_ptr<SnapshotStore>> SnapshotStore::Open(const std::string& dir,
                                                             SnapshotStoreOptions options,
                                                             MetricsRegistry* metrics) {
  if (options.retain < 1) {
    return InvalidArgumentError("SnapshotStore retain must be >= 1, got " +
                                std::to_string(options.retain));
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return NotFoundError("cannot create snapshot store directory " + dir + ": " +
                         std::strerror(errno));
  }
  std::unique_ptr<SnapshotStore> store(new SnapshotStore(dir, options, metrics));
  // Never reuse a generation number, including one whose file was
  // quarantined — a fresh publish under a quarantined number would make
  // the forensic copy ambiguous.
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return NotFoundError("cannot open snapshot store directory " + dir + ": " +
                         std::strerror(errno));
  }
  int64_t max_gen = 0;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    const size_t q = name.rfind(kQuarantineSuffix);
    if (q != std::string::npos && q + sizeof(kQuarantineSuffix) - 1 == name.size()) {
      name.resize(q);
    }
    max_gen = std::max(max_gen, ParseGenName(name));
  }
  ::closedir(d);
  store->next_generation_ = max_gen + 1;
  return store;
}

std::vector<SnapshotGeneration> SnapshotStore::ListLocked() const {
  std::vector<SnapshotGeneration> out;
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return out;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    const int64_t generation = ParseGenName(name);
    if (generation < 0) continue;
    out.push_back({generation, dir_ + "/" + name});
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const SnapshotGeneration& a, const SnapshotGeneration& b) {
              return a.generation < b.generation;
            });
  return out;
}

std::vector<SnapshotGeneration> SnapshotStore::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ListLocked();
}

int64_t SnapshotStore::TruncateFloorLocked(
    const std::vector<SnapshotGeneration>& retained) const {
  int64_t floor = -1;
  for (const SnapshotGeneration& gen : retained) {
    const auto it = known_.find(gen.generation);
    if (it == known_.end()) return 0;  // unknown seq: keep the whole WAL
    floor = floor < 0 ? it->second.durable_seq : std::min(floor, it->second.durable_seq);
  }
  return floor < 0 ? 0 : floor;
}

void SnapshotStore::WriteManifestLocked(
    const std::vector<SnapshotGeneration>& retained) const {
  std::string text = "# kjoin snapshot store manifest (advisory; the files' own\n";
  text += "# checksums are authoritative — see serve/snapshot_store.h)\n";
  for (const SnapshotGeneration& gen : retained) {
    const auto it = known_.find(gen.generation);
    char line[160];
    if (it != known_.end()) {
      std::snprintf(line, sizeof(line),
                    "%s durable_seq=%" PRId64 " crc32=%08x bytes=%" PRIu64 "\n",
                    GenName(gen.generation).c_str(), it->second.durable_seq,
                    it->second.crc32, it->second.bytes);
    } else {
      std::snprintf(line, sizeof(line), "%s durable_seq=? crc32=? bytes=?\n",
                    GenName(gen.generation).c_str());
    }
    text += line;
  }
  const Status written = AtomicWriteFile(dir_ + "/MANIFEST", text);
  if (!written.ok()) {
    KJOIN_LOG(WARNING) << "snapshot store manifest write failed (advisory): " << written;
  }
}

StatusOr<PublishResult> SnapshotStore::Publish(const SnapshotInput& input) {
  const std::string bytes = SerializeIndexSnapshot(input);
  std::lock_guard<std::mutex> lock(mu_);
  PublishResult result;
  result.generation = next_generation_++;
  result.path = dir_ + "/" + GenName(result.generation);
  // Atomic publish: on any failure no file appears under the final name
  // and the store's existing generations are untouched (the skipped
  // generation number is simply never reused).
  KJOIN_RETURN_IF_ERROR(AtomicWriteFile(result.path, bytes));
  known_[result.generation] = {input.durable_seq, Crc32(bytes),
                               static_cast<uint64_t>(bytes.size())};
  if (metrics_ != nullptr) metrics_->counter("store.publishes")->Increment();

  std::vector<SnapshotGeneration> retained = ListLocked();
  size_t keep_from = 0;
  while (retained.size() - keep_from > static_cast<size_t>(options_.retain)) {
    const SnapshotGeneration& oldest = retained[keep_from];
    const Status removed = RemoveFileDurably(oldest.path);
    if (!removed.ok()) {
      // An unremovable generation is extra safety, not an error worth
      // failing the publish over.
      KJOIN_LOG(WARNING) << "snapshot store prune of " << oldest.path
                         << " failed (non-fatal): " << removed;
    } else {
      known_.erase(oldest.generation);
      if (metrics_ != nullptr) metrics_->counter("store.pruned")->Increment();
    }
    ++keep_from;
  }
  retained.erase(retained.begin(), retained.begin() + static_cast<ptrdiff_t>(keep_from));

  result.wal_truncate_floor = TruncateFloorLocked(retained);
  WriteManifestLocked(retained);
  return result;
}

StatusOr<RecoverResult> SnapshotStore::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SnapshotGeneration> retained = ListLocked();
  RecoverResult result;
  while (!retained.empty()) {
    const SnapshotGeneration candidate = retained.back();
    StatusOr<LoadedIndex> loaded = LoadIndexSnapshot(candidate.path, metrics_);
    if (loaded.ok()) {
      result.loaded = std::move(*loaded);
      result.generation = candidate.generation;
      result.path = candidate.path;
      auto& known = known_[candidate.generation];
      known.durable_seq = result.loaded.durable_seq;
      known.bytes = result.loaded.file_bytes;
      if (metrics_ != nullptr) metrics_->counter("store.recoveries")->Increment();
      if (result.quarantined > 0) WriteManifestLocked(retained);
      return result;
    }
    // Corrupt, truncated, or version-skewed: set it aside under a name
    // recovery never scans and fail over to the next-newest generation.
    KJOIN_LOG(WARNING) << "snapshot generation " << candidate.path
                       << " failed validation, quarantining: " << loaded.status();
    const Status moved = RenameFileDurably(candidate.path, candidate.path + kQuarantineSuffix);
    if (!moved.ok()) {
      // Leave it in place; the next recovery retries (and re-fails past)
      // it. Still fail over now — the load verdict stands.
      KJOIN_LOG(ERROR) << "cannot quarantine " << candidate.path << ": " << moved;
    }
    known_.erase(candidate.generation);
    if (metrics_ != nullptr) metrics_->counter("store.quarantined")->Increment();
    ++result.quarantined;
    retained.pop_back();
  }
  return NotFoundError("snapshot store " + dir_ + " holds no loadable generation" +
                       (result.quarantined > 0
                            ? " (" + std::to_string(result.quarantined) + " quarantined)"
                            : ""));
}

}  // namespace kjoin::serve
