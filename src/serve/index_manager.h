#ifndef KJOIN_SERVE_INDEX_MANAGER_H_
#define KJOIN_SERVE_INDEX_MANAGER_H_

// The live index behind a serving process: RCU-style epoch swapping.
//
// Readers call Acquire() — a pointer copy under a micro critical
// section — and search the returned epoch for as long as they hold the
// shared_ptr; they never wait on an update being applied. Writers batch inserts
// through InsertBatch: the manager applies them to a *shadow copy* of the
// current index on the background pool (sharing the immutable LCA tables,
// copying the object collection and posting lists) and atomically swaps
// the finished epoch in. A reader therefore always sees a fully built
// index — either the old epoch or the new one, never a half-updated
// structure — and stale epochs are freed by the last shared_ptr that
// drops them (see docs/serving.md for the full semantics).
//
//   IndexManager manager(std::move(loaded), &pool, &metrics);
//   auto epoch = manager.Acquire();            // reader, never blocks
//   epoch->index->Search(query);
//   manager.InsertBatch(std::move(objects));   // writer, async rebuild
//   manager.Flush();                           // barrier: all applied

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/kjoin_index.h"
#include "serve/snapshot.h"

namespace kjoin::serve {

// One immutable published generation of the serving stack. Everything a
// query needs travels together so a reader's view is consistent even
// while newer epochs are published.
struct IndexEpoch {
  int64_t version = 0;
  std::shared_ptr<const Hierarchy> hierarchy;
  std::vector<std::string> tokens;
  std::vector<std::pair<std::string, std::string>> synonyms;
  std::shared_ptr<const KJoinIndex> index;
};

class IndexManager {
 public:
  // Adopts a snapshot-loaded stack as epoch 1. `pool` (not owned, may be
  // null) runs background rebuilds; with a null or single-lane pool the
  // rebuild runs inline on the InsertBatch caller instead — same results,
  // no hidden queue that nothing drains. `metrics` (not owned, may be
  // null) receives manager.swaps / manager.inserts / manager.rebuild_seconds.
  IndexManager(LoadedIndex initial, ThreadPool* pool, MetricsRegistry* metrics = nullptr);

  // Builds epoch 1 from parts (the from-text cold-start path).
  IndexManager(std::shared_ptr<const Hierarchy> hierarchy, KJoinOptions options,
               std::vector<Object> objects, std::vector<std::string> tokens,
               std::vector<std::pair<std::string, std::string>> synonyms, ThreadPool* pool,
               MetricsRegistry* metrics = nullptr);

  // Blocks until no rebuild is in flight (pending inserts are applied
  // first), so a scheduled task never outlives the manager.
  ~IndexManager();

  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  // The current epoch: a shared_ptr copy under epoch_mu_ (held for a
  // handful of instructions — rebuilds happen entirely outside it). The
  // epoch stays valid while the returned pointer is held, regardless of
  // how many swaps happen meanwhile.
  std::shared_ptr<const IndexEpoch> Acquire() const;

  // Queues `objects` for insertion and kicks a background rebuild; they
  // become searchable when the next epoch is published (Flush() to wait).
  // Objects must be token-id-compatible with the current epoch; when the
  // batch introduced new interned tokens, pass the builder's full updated
  // TokenTable() so the published epoch (and snapshots saved from it)
  // stays self-describing.
  void InsertBatch(std::vector<Object> objects, std::vector<std::string> tokens = {});

  // Barrier: returns once every insert enqueued before the call is
  // searchable via Acquire().
  void Flush();

  int64_t version() const { return Acquire()->version; }
  // Inserts queued but not yet picked up by a rebuild (approximate — a
  // batch being applied no longer counts).
  int64_t pending_inserts() const;

  // Serializes the current epoch (snapshot.h format).
  Status SaveSnapshot(const std::string& path) const;

  // Loads `path` and wraps it in a manager.
  static StatusOr<std::unique_ptr<IndexManager>> LoadFrom(const std::string& path,
                                                          ThreadPool* pool,
                                                          MetricsRegistry* metrics = nullptr);

 private:
  void PublishInitial(std::shared_ptr<const IndexEpoch> epoch);
  // Drains pending batches, one shadow rebuild + swap per batch, until
  // none remain; then clears rebuild_in_flight_.
  void RebuildLoop();

  ThreadPool* pool_;
  MetricsRegistry* metrics_;
  // Not std::atomic<shared_ptr>: libstdc++ implements that as an
  // embedded spinlock whose load() path unlocks with relaxed ordering,
  // which ThreadSanitizer rejects as a data race on the stored pointer.
  // A plain mutex costs the same handful of instructions and is provably
  // race-free; the mutex only ever guards the pointer copy/swap, never a
  // rebuild, so readers still never wait on writers' real work.
  mutable std::mutex epoch_mu_;
  std::shared_ptr<const IndexEpoch> epoch_;     // guarded by epoch_mu_

  mutable std::mutex mu_;
  std::condition_variable idle_;                // signalled when a rebuild finishes
  std::vector<Object> pending_;                 // guarded by mu_
  std::vector<std::string> pending_tokens_;     // guarded by mu_; empty = unchanged
  bool rebuild_in_flight_ = false;              // guarded by mu_
};

}  // namespace kjoin::serve

#endif  // KJOIN_SERVE_INDEX_MANAGER_H_
