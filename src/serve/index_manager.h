#ifndef KJOIN_SERVE_INDEX_MANAGER_H_
#define KJOIN_SERVE_INDEX_MANAGER_H_

// The live index behind a serving process: RCU-style epoch swapping,
// delta-epoch publication, and WAL-backed durability.
//
// Readers call Acquire() — a pointer copy under a micro critical
// section — and search the returned epoch for as long as they hold the
// shared_ptr; they never wait on an update being applied. Writers batch
// mutations through InsertBatch / DeleteObjects / UpdateObject: the
// manager layers them into a *delta index* over the current epoch on the
// background pool (the base's objects and postings are shared, not
// copied — publishing costs O(batch), see core/kjoin_index.h) and
// atomically swaps the finished epoch in. A reader therefore always sees
// a fully built index — either the old epoch or the new one, never a
// half-updated structure — and stale epochs are freed by the last
// shared_ptr that drops them. Once the delta chain grows past
// IndexManagerOptions::max_delta_layers, the rebuild loop folds it into
// a new flat base and publishes that the same way — compaction never
// blocks Acquire() (see docs/serving.md for the full semantics).
//
// Durability: with AttachWal() (or Recover()), every mutation batch is
// appended to a CRC-framed write-ahead log and fsynced *before* the call
// returns OK — an acked batch survives a crash. Recovery = load the last
// snapshot + replay the WAL records past its durable sequence;
// SaveSnapshot() drops the records a new snapshot covers (serve/wal.h).
// The store-backed variants (SaveSnapshot(SnapshotStore*),
// RecoverFromStore) keep the last N generations and fail over past a
// corrupt one (serve/snapshot_store.h).
//
// Self-healing: when the log itself goes bad (sustained append/fsync
// failures — full disk, dying device), the manager trips into degraded
// read-only mode instead of failing every caller into the broken write
// path: reads keep serving the last published epoch untouched, writes
// return kUnavailable with a retry-after hint, and a background probe
// re-tests the log and restores write service automatically (see
// HealthState below and docs/robustness.md).
//
//   IndexManager manager(std::move(loaded), &pool, &metrics);
//   KJOIN_RETURN_IF_ERROR(manager.AttachWal("/data/kjoin.wal"));
//   auto epoch = manager.Acquire();            // reader, never blocks
//   epoch->index->Search(query);
//   manager.InsertBatch(std::move(objects));   // writer, durable + async
//   manager.Flush();                           // barrier: all applied

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/kjoin_index.h"
#include "serve/snapshot.h"
#include "serve/snapshot_store.h"
#include "serve/wal.h"

namespace kjoin::serve {

// One immutable published generation of the serving stack. Everything a
// query needs travels together so a reader's view is consistent even
// while newer epochs are published.
struct IndexEpoch {
  int64_t version = 0;
  // Sequence of the last acked mutation folded into this epoch (0 when
  // the stack never had mutations). Snapshots saved from the epoch carry
  // it so recovery knows where WAL replay starts.
  int64_t durable_seq = 0;
  std::shared_ptr<const Hierarchy> hierarchy;
  std::vector<std::string> tokens;
  std::vector<std::pair<std::string, std::string>> synonyms;
  std::shared_ptr<const KJoinIndex> index;
};

struct IndexManagerOptions {
  // Delta chain depth past which the rebuild loop folds the chain into a
  // new flat base epoch. Deeper chains make probes touch more posting
  // maps; shallower ones compact (O(index)) more often.
  int max_delta_layers = 4;
  // Consecutive WAL append/fsync failures that trip degraded read-only
  // mode (see HealthState below). 1 trips on the first failure; higher
  // values ride out isolated transients without degrading.
  int wal_failure_trip_threshold = 3;
  // How often the background probe re-tests a failed log while degraded.
  double wal_probe_interval_seconds = 0.25;
};

// The manager's write-availability state machine. Reads are unaffected
// by every state: Acquire() keeps returning the last published epoch.
//
//   kServing --[trip_threshold consecutive WAL failures]--> kDegradedReadOnly
//   kDegradedReadOnly --[background WriteAheadLog::Probe() succeeds]--> kRecovering
//   kRecovering --[first real append succeeds]--> kServing
//   kRecovering --[failures reach the threshold again]--> kDegradedReadOnly
//
// While degraded, mutations are rejected *before* touching the log with
// kUnavailable (message carries a machine-readable retry_after_ms=
// hint); the probe loop owns the only writes to the sick log, so a
// flapping disk cannot ack a batch it then loses.
enum class HealthState {
  kServing = 0,
  kDegradedReadOnly = 1,
  kRecovering = 2,
};

// Point-in-time health (IndexManager::HealthSnapshot()); the same
// transitions are published as metrics (manager.health_state gauge,
// manager.read_only_trips / manager.recoveries counters).
struct ManagerHealth {
  HealthState state = HealthState::kServing;
  int consecutive_wal_failures = 0;
  int64_t read_only_trips = 0;
  int64_t recoveries = 0;
};

class IndexManager {
 public:
  // Adopts a snapshot-loaded stack as epoch 1. `pool` (not owned, may be
  // null) runs background rebuilds; with a null or single-lane pool the
  // rebuild runs inline on the mutating caller instead — same results,
  // no hidden queue that nothing drains. `metrics` (not owned, may be
  // null) receives the manager.* counters and histograms listed in
  // docs/serving.md.
  IndexManager(LoadedIndex initial, ThreadPool* pool, MetricsRegistry* metrics = nullptr,
               IndexManagerOptions options = {});

  // Builds epoch 1 from parts (the from-text cold-start path).
  IndexManager(std::shared_ptr<const Hierarchy> hierarchy, KJoinOptions options,
               std::vector<Object> objects, std::vector<std::string> tokens,
               std::vector<std::pair<std::string, std::string>> synonyms, ThreadPool* pool,
               MetricsRegistry* metrics = nullptr, IndexManagerOptions manager_options = {});

  // Blocks until no rebuild is in flight (pending mutations are applied
  // first), so a scheduled task never outlives the manager.
  ~IndexManager();

  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  // Replays `path` (records newer than the current epoch's durable_seq;
  // a missing file is an empty log) and then appends every future
  // mutation there before acking it. Call once, before concurrent
  // traffic — replay publishes epochs synchronously on the calling
  // thread. `fsync` off trades durability for append speed (benches).
  // Fails with kDataLoss/kInvalidArgument when the log cannot extend the
  // current state (sequence gap, token-table divergence); the manager
  // keeps serving its pre-call state in that case.
  Status AttachWal(const std::string& path, bool fsync = true);

  // LoadFrom + AttachWal: the standard crash-recovery entry point.
  static StatusOr<std::unique_ptr<IndexManager>> Recover(const std::string& snapshot_path,
                                                         const std::string& wal_path,
                                                         ThreadPool* pool,
                                                         MetricsRegistry* metrics = nullptr,
                                                         IndexManagerOptions options = {});

  // Store-backed recovery with automatic failover: loads the newest
  // generation that validates (corrupt newer ones are quarantined, see
  // serve/snapshot_store.h) and replays the WAL past its durable
  // sequence. Fails only when no generation is loadable or the log
  // semantically diverges from every loadable one.
  static StatusOr<std::unique_ptr<IndexManager>> RecoverFromStore(
      SnapshotStore* store, const std::string& wal_path, ThreadPool* pool,
      MetricsRegistry* metrics = nullptr, IndexManagerOptions options = {});

  // The current epoch: a shared_ptr copy under epoch_mu_ (held for a
  // handful of instructions — rebuilds happen entirely outside it). The
  // epoch stays valid while the returned pointer is held, regardless of
  // how many swaps happen meanwhile.
  std::shared_ptr<const IndexEpoch> Acquire() const;

  // Queues `objects` for insertion and kicks a background rebuild; they
  // become searchable when the next epoch is published (Flush() to
  // wait). Objects must be token-id-compatible with the current epoch;
  // when the batch introduced new interned tokens, pass the builder's
  // full updated TokenTable() so the published epoch (and snapshots
  // saved from it) stays self-describing. The table is validated as an
  // append-only extension: a table that shrinks or rewrites an existing
  // id is rejected with kInvalidArgument and nothing is queued. With a
  // WAL attached, OK means the batch is durable (appended + fsynced).
  Status InsertBatch(std::vector<Object> objects, std::vector<std::string> tokens = {});

  // Tombstones the given chain-global object indexes (the values Search
  // hits report). Out-of-range indexes reject the whole batch with
  // kInvalidArgument; deleting an already-deleted object is a no-op.
  Status DeleteObjects(std::vector<int32_t> indexes);

  // Atomically (within one published epoch) tombstones `index` and
  // inserts `replacement`, which receives a fresh object index. `tokens`
  // as for InsertBatch.
  Status UpdateObject(int32_t index, Object replacement,
                      std::vector<std::string> tokens = {});

  // Barrier: returns once every mutation acked before the call is
  // searchable via Acquire().
  void Flush();

  int64_t version() const { return Acquire()->version; }
  // Inserts acked but not yet picked up by a rebuild (approximate — a
  // batch being applied no longer counts).
  int64_t pending_inserts() const;
  // Bytes in the attached WAL (0 when none): header + intact records.
  int64_t wal_size_bytes() const;

  // Current write-availability state; reads never degrade (see
  // HealthState). Writes while degraded return kUnavailable.
  ManagerHealth HealthSnapshot() const;

  // Serializes the current epoch (snapshot.h format, flattened) and then
  // drops the WAL records the snapshot now covers. A failed WAL
  // truncation is logged, not fatal — replay skips covered records.
  Status SaveSnapshot(const std::string& path);

  // Publishes the current epoch as the store's next generation, then
  // truncates the WAL only up to the store's reported floor (the oldest
  // *retained* generation's durable sequence), so failover to an older
  // generation still finds the records it needs to replay.
  Status SaveSnapshot(SnapshotStore* store);

  // Loads `path` and wraps it in a manager (no WAL; see Recover).
  static StatusOr<std::unique_ptr<IndexManager>> LoadFrom(const std::string& path,
                                                          ThreadPool* pool,
                                                          MetricsRegistry* metrics = nullptr);

 private:
  // One acked mutation batch queued for the rebuild loop. Deletes apply
  // before inserts; `tokens` (when non-empty) is the full validated
  // table after the batch.
  struct MutationBatch {
    int64_t sequence = 0;
    std::vector<int32_t> deletes;
    std::vector<Object> objects;
    std::vector<std::string> tokens;
  };

  void PublishInitial(std::shared_ptr<const IndexEpoch> epoch);
  // Validates, WAL-appends (the ack point), queues, and kicks the
  // rebuild loop.
  Status ApplyMutation(MutationBatch batch);
  // Drains acked batches, one delta-epoch publish per drain (plus a
  // compaction epoch when the chain got deep), until none remain; then
  // clears rebuild_in_flight_.
  void RebuildLoop();
  // Layers `batches` into one delta over the current epoch and publishes
  // it. Single-writer: only RebuildLoop and pre-concurrency recovery
  // call this.
  void ApplyBatches(std::vector<MutationBatch> batches);
  // Publishes a flattened epoch when the delta chain is past
  // max_delta_layers.
  void MaybeCompact();
  // Logged-but-non-fatal WAL truncation after a snapshot landed.
  void TruncateWalAfterSnapshot(int64_t up_to_sequence);
  // State transitions, all under mu_. TripReadOnlyLocked also lazily
  // starts the probe thread.
  void TripReadOnlyLocked();
  void SetHealthLocked(HealthState next);
  // Long-lived while degraded episodes exist: waits on probe_cv_ until
  // degraded (or shutdown), then re-tests the log every
  // wal_probe_interval_seconds until it heals.
  void ProbeLoop();

  ThreadPool* pool_;
  MetricsRegistry* metrics_;
  IndexManagerOptions manager_options_;
  // Not std::atomic<shared_ptr>: libstdc++ implements that as an
  // embedded spinlock whose load() path unlocks with relaxed ordering,
  // which ThreadSanitizer rejects as a data race on the stored pointer.
  // A plain mutex costs the same handful of instructions and is provably
  // race-free; the mutex only ever guards the pointer copy/swap, never a
  // rebuild, so readers still never wait on writers' real work.
  mutable std::mutex epoch_mu_;
  std::shared_ptr<const IndexEpoch> epoch_;     // guarded by epoch_mu_

  mutable std::mutex mu_;
  std::condition_variable idle_;                // signalled when a rebuild finishes
  std::vector<MutationBatch> pending_;          // guarded by mu_; acked, not yet applied
  bool rebuild_in_flight_ = false;              // guarded by mu_
  // Write-path bookkeeping, all guarded by mu_. latest_tokens_ is the
  // table after the last *acked* batch (the epoch may lag it while a
  // rebuild is in flight) — incoming tables are validated against it so
  // two racing token-carrying batches cannot silently shrink the table.
  std::vector<std::string> latest_tokens_;
  int64_t logical_size_ = 0;                    // num_indexed() incl. acked pending inserts
  int64_t last_acked_seq_ = 0;
  std::unique_ptr<WriteAheadLog> wal_;          // null until AttachWal

  // Degraded-mode state machine, all guarded by mu_. The probe thread
  // starts lazily on the first trip and lives until the destructor.
  HealthState health_ = HealthState::kServing;
  int consecutive_wal_failures_ = 0;
  int64_t read_only_trips_ = 0;
  int64_t health_recoveries_ = 0;
  bool shutdown_ = false;
  std::condition_variable probe_cv_;            // degraded-or-shutdown signal
  std::thread probe_thread_;
};

}  // namespace kjoin::serve

#endif  // KJOIN_SERVE_INDEX_MANAGER_H_
