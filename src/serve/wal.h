#ifndef KJOIN_SERVE_WAL_H_
#define KJOIN_SERVE_WAL_H_

// Append-only, CRC-framed write-ahead log for the serving index.
//
// IndexManager appends every mutation batch here *before* acking it, so
// writes accepted between snapshots survive a crash: recovery loads the
// last snapshot and replays the records newer than its durable sequence
// number, reaching a state byte-identical to re-applying the acked
// batches in order (docs/serving.md, "Durability").
//
// File layout (all integers little-endian, see serve/wire_format.h):
//
//   FileHeader { magic "KJWL", format version }                  8 bytes
//   Record frame × N { payload CRC32, payload size (u64) }      12 bytes
//     payload  { sequence (i64),
//                token update: u8 flag [, base size (u64),
//                                        new-token string list],
//                deletes (i32 array),
//                object list }
//
// Sequence numbers are the manager's acked-batch counter: strictly
// increasing by one across the log. Records at or below a snapshot's
// durable sequence are dropped by Truncate() after the snapshot lands.
//
// Torn tails are tolerated, corruption is not forgiven: replay stops at
// the first frame that is truncated or fails its CRC and keeps the
// intact prefix (a crash mid-append can only tear the final, un-acked
// record — Append rolls the file back on any write/fsync failure, so a
// record is either fully durable and acked or absent). A CRC-valid
// record that fails semantic validation (sequence gap, token-table
// divergence, out-of-range delete) is a hard kDataLoss /
// kInvalidArgument: the log disagrees with the snapshot it extends.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/object.h"

namespace kjoin::serve {

// Bumped whenever the record payload layout changes; replay rejects
// other versions with kInvalidArgument (no migration — snapshot and
// delete the log).
inline constexpr uint32_t kWalFormatVersion = 1;
// magic + version; record frames start here.
inline constexpr size_t kWalHeaderBytes = 8;
// CRC + payload size; the payload follows.
inline constexpr size_t kWalFrameBytes = 12;

// One acked mutation batch. Deletes apply before inserts: they name
// global object indexes that existed before the batch.
struct WalRecord {
  int64_t sequence = 0;
  std::vector<int32_t> deletes;
  std::vector<Object> objects;
  // Token-table update: the append-only interner grew from `token_base`
  // entries by `token_suffix`. An empty suffix means the table did not
  // change (token_base is then 0 and unused).
  int64_t token_base = 0;
  std::vector<std::string> token_suffix;
};

// What Replay needs to interpret a log semantically: the state of the
// snapshot the log extends.
struct WalReplayInput {
  std::vector<std::string> tokens;   // snapshot's token table
  int64_t num_nodes = 0;             // hierarchy size, bounds mapping nodes
  int64_t num_objects = 0;           // snapshot's collection size
  int64_t min_sequence_exclusive = 0;  // snapshot's durable sequence
};

struct WalReplayResult {
  // Intact records with sequence > min_sequence_exclusive, in order.
  // Records already covered by the snapshot are CRC-checked and skipped.
  std::vector<WalRecord> records;
  // Byte offset of the end of the intact prefix; Open() truncates the
  // file here before appending again.
  uint64_t valid_bytes = 0;
  // The file had a torn or corrupt tail past valid_bytes.
  bool torn_tail = false;
};

class WriteAheadLog {
 public:
  struct Options {
    // fsync after every append (the durability point). Off only for
    // benchmarks that want to isolate serialization cost.
    bool fsync = true;
  };

  // Opens `path` for appending, creating it (with a fresh header) when
  // absent or empty. An existing file is frame-scanned and any torn tail
  // is truncated away, so new records always extend the intact prefix.
  // A file that is not a K-Join WAL returns kInvalidArgument untouched.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(const std::string& path,
                                                       Options options);
  // Default options (fsync on). A separate overload because a nested
  // class' member initializers are not usable in a default argument.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Serializes `record`, writes the frame and fsyncs (the commit point).
  // On any write or fsync failure the file is rolled back to its
  // pre-append size and kDataLoss is returned: the record is either
  // fully durable or absent, never half-written-and-acked. Fault points
  // serve/wal_append (before the write) and serve/wal_fsync (at the
  // commit) exercise both failure arms.
  Status Append(const WalRecord& record);

  // Drops records with sequence <= up_to (the snapshot's durable
  // sequence): rewrites the kept suffix to a temp file, renames it
  // over the log, and fsyncs the parent directory so the rewrite
  // survives a crash. Once the rename lands the handle follows the new
  // file even when a later step fails — an error return can still leave
  // the log truncated (and usable), never appending to the old inode.
  Status Truncate(int64_t up_to_sequence);

  // Tests the append path without committing a record: writes one probe
  // byte past the intact prefix, fsyncs, and truncates it back off. OK
  // means the log can take real appends again — IndexManager's degraded
  // read-only mode uses this to decide when to exit (index_manager.h).
  // Exercises the same fault points as Append (serve/wal_append,
  // serve/wal_fsync), so a sustained injected failure holds the probe
  // down exactly as a sick disk would.
  Status Probe();

  const std::string& path() const { return path_; }
  // Current log size (header + intact frames), for observability.
  int64_t size_bytes() const { return static_cast<int64_t>(end_offset_); }

  // Reads `path` and semantically validates the records extending the
  // snapshot described by `input`. A missing file is an empty log, not
  // an error. Kept records must start at min_sequence_exclusive + 1 and
  // increase by one — a gap means the log and snapshot diverged
  // (kDataLoss). Object token ids are resolved against the running token
  // table (snapshot table + replayed suffixes); deletes are bounds-
  // checked against the running collection size.
  static StatusOr<WalReplayResult> Replay(const std::string& path,
                                          const WalReplayInput& input);

 private:
  WriteAheadLog(std::string path, Options options, int fd, uint64_t end_offset);

  // Reopens path_ after the handle was dropped (a Truncate whose reopen
  // failed). No-op while a handle is live.
  Status EnsureOpen();

  std::string path_;
  Options options_;
  int fd_ = -1;
  uint64_t end_offset_ = 0;
  // Set when a Truncate rename landed but the parent-directory fsync did
  // not: the rewrite could still roll back in a crash, so Append/Probe
  // must re-sync the directory before acking anything on top of it.
  bool dir_sync_pending_ = false;
};

}  // namespace kjoin::serve

#endif  // KJOIN_SERVE_WAL_H_
