#ifndef KJOIN_SERVE_SHARDED_INDEX_MANAGER_H_
#define KJOIN_SERVE_SHARDED_INDEX_MANAGER_H_

// Shard-per-core serving: hash-partitions the object collection across N
// independent IndexManager epoch chains so probes, rebuilds, and WAL
// appends on different shards never contend on one epoch swap lock.
//
// Numbering contract (the reason sharded and single-index results can be
// byte-identical, tested in tests/shard_test.cc): every object keeps the
// *global* arrival index it would have had in a single index. An object's
// shard is a pure function of that global index — ShardOf(g) =
// splitmix64(g) % N — so placement is reproducible from the count alone,
// with no mapping table to persist. Each shard numbers its objects
// locally (0.. in arrival order); `GlobalIndexes(s)` returns the
// strictly-increasing local -> global table a gatherer uses to translate
// hits. Strict monotonicity means per-shard HitBefore order (similarity
// desc, object index asc) survives translation unchanged — the global
// merge never re-ranks ties differently than a single index would.
//
// Durability: AttachWal(prefix) attaches "<prefix>.shard-<i>" to shard i
// and, after replay, *reconstructs* the mapping by re-running ShardOf
// over g = 0..M-1 (M = sum of shard sizes) and checking each shard got
// exactly its recovered count — a mismatch means the WAL set is not the
// product of this placement function (e.g. a partially-failed insert)
// and fails with kDataLoss rather than serving misnumbered hits.
// InsertBatch gates on every shard being healthy up front to make such
// partial failures rare, but a crash mid-batch can still produce them;
// recover from a snapshot in that case (docs/serving.md, "Sharded
// serving").
//
// Writes fan out per batch: objects are assigned global indexes in
// arrival order, partitioned, and appended to each owning shard (token
// table extensions go to every shard so none lags). Reads go through
// ShardRouter (serve/shard_router.h), which scatters a query to all
// shards and gathers the global top-k under a shared progressive bound.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/kjoin_index.h"
#include "serve/index_manager.h"

namespace kjoin::serve {

// Deterministic shard placement for global object index `g`. splitmix64
// finalizer: sequential indexes land on uncorrelated shards, so hot
// insertion ranges spread instead of striping.
inline int ShardOf(int64_t g, int num_shards) {
  uint64_t x = static_cast<uint64_t>(g) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<int>(x % static_cast<uint64_t>(num_shards));
}

class ShardedIndexManager {
 public:
  // Cold-start: partitions `objects` (global indexes 0..n-1 in the given
  // order) across `num_shards` managers sharing `hierarchy` and `pool`.
  // Per-shard manager.* metrics would collide in one registry, so shards
  // run without one; `metrics` (may be null) receives the sharded-level
  // counters and the router publishes per-shard serving metrics under
  // ShardMetricName("router", s, ...).
  ShardedIndexManager(std::shared_ptr<const Hierarchy> hierarchy, KJoinOptions options,
                      std::vector<Object> objects, std::vector<std::string> tokens,
                      std::vector<std::pair<std::string, std::string>> synonyms,
                      int num_shards, ThreadPool* pool, MetricsRegistry* metrics = nullptr,
                      IndexManagerOptions manager_options = {});

  ShardedIndexManager(const ShardedIndexManager&) = delete;
  ShardedIndexManager& operator=(const ShardedIndexManager&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  IndexManager* shard(int s) { return shards_[static_cast<size_t>(s)].get(); }
  const IndexManager* shard(int s) const { return shards_[static_cast<size_t>(s)].get(); }

  // Shard s's strictly-increasing local -> global index table, as of the
  // last completed mutation. RCU snapshot: stays valid while held even
  // across concurrent inserts.
  std::shared_ptr<const std::vector<int32_t>> GlobalIndexes(int s) const;

  // Attaches "<path_prefix>.shard-<i>" to shard i (replaying records past
  // each shard's durable state), then reconstructs and verifies the
  // global numbering (see the header comment). Call once, before
  // concurrent traffic.
  Status AttachWal(const std::string& path_prefix, bool fsync = true);

  // Assigns the batch global indexes in order, partitions by ShardOf,
  // and appends each part to its shard (the full `tokens` table, when
  // given, goes to every shard). Gated up front on no shard being
  // degraded read-only: such a shard fails the whole batch with
  // kUnavailable before anything is assigned, keeping the numbering
  // reconstruction invariant intact. A kRecovering shard stays
  // writable — its first acked append (which must flow through here)
  // is what completes the recovery.
  Status InsertBatch(std::vector<Object> objects, std::vector<std::string> tokens = {});

  // Tombstones the given *global* indexes, routed to their owning
  // shards. Unknown indexes reject the batch with kInvalidArgument.
  Status DeleteObjects(std::vector<int32_t> global_indexes);

  // Barrier over every shard.
  void Flush();

  // Global object count (including tombstoned), == the next assigned
  // global index.
  int64_t num_objects() const;

  // Worst-of over the shards: degraded dominates recovering dominates
  // serving; failure/trip/recovery counters are summed.
  ManagerHealth HealthSnapshot() const;

 private:
  Status InsertPartitioned(std::vector<std::vector<Object>> parts,
                           std::vector<std::string> tokens);

  std::vector<std::unique_ptr<IndexManager>> shards_;
  MetricsRegistry* metrics_;

  // Write-path state. to_global_ is copy-on-write (readers copy the
  // shared_ptr under mu_, writers publish a new vector), so gatherers
  // translating hits never block an insert.
  mutable std::mutex mu_;
  int64_t next_global_ = 0;  // guarded by mu_
  std::vector<std::shared_ptr<const std::vector<int32_t>>> to_global_;  // guarded by mu_
};

}  // namespace kjoin::serve

#endif  // KJOIN_SERVE_SHARDED_INDEX_MANAGER_H_
