#ifndef KJOIN_SERVE_FS_UTIL_H_
#define KJOIN_SERVE_FS_UTIL_H_

// Crash-safe filesystem primitives shared by the serving tier's durable
// artifacts (snapshots, snapshot generations, the WAL's truncate path).
//
// The rule they encode: a rename only survives a crash once the *parent
// directory* has been fsynced — fsyncing the file alone persists its
// bytes but not the directory entry pointing at them. Every publish
// therefore goes tmp-write → fsync(file) → rename → fsync(parent dir),
// and readers can treat the presence of a final-named file as proof it
// is complete (docs/robustness.md, "Failure modes and degraded
// operation").
//
// Fault points: serve/write (torn tmp write), serve/dir_fsync (the
// directory fsync after a rename fails) — both surface as kDataLoss.

#include <string>
#include <string_view>

#include "common/status.h"

namespace kjoin::serve {

// Everything before the final '/' ("." when `path` has no directory
// component), for fsyncing the parent of a freshly renamed file.
std::string DirName(const std::string& path);

// fsyncs the directory itself so renames/unlinks inside it are durable.
// Fault point serve/dir_fsync.
Status FsyncDir(const std::string& dir);

// Atomically publishes `bytes` at `path`: writes `path`.tmp, fsyncs it,
// renames over `path`, and fsyncs the parent directory. On any failure
// the tmp file is removed and `path` is untouched — a crash or error can
// never leave a torn file under the final name. Fault points serve/write
// and serve/dir_fsync.
Status AtomicWriteFile(const std::string& path, std::string_view bytes);

// Removes `path` and fsyncs the parent directory, so retention deletes
// are as durable as the publishes they undo. Missing files are OK.
Status RemoveFileDurably(const std::string& path);

// Renames `from` to `to` (same directory) and fsyncs the parent.
Status RenameFileDurably(const std::string& from, const std::string& to);

}  // namespace kjoin::serve

#endif  // KJOIN_SERVE_FS_UTIL_H_
