#include "serve/fs_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/fault_injection.h"

namespace kjoin::serve {

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncDir(const std::string& dir) {
  if (KJOIN_FAULT_POINT("serve/dir_fsync")) {
    return DataLossError("injected directory fsync failure: " + dir);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return DataLossError("cannot open directory for fsync: " + dir + ": " +
                         std::strerror(errno));
  }
  const bool synced = ::fsync(fd) == 0;
  const int err = errno;
  ::close(fd);
  if (!synced) {
    return DataLossError("directory fsync failed: " + dir + ": " + std::strerror(err));
  }
  return OkStatus();
}

namespace {

bool WriteFully(int fd, std::string_view bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return NotFoundError("cannot open " + tmp + " for writing: " + std::strerror(errno));
  }
  std::string error;
  if (KJOIN_FAULT_POINT("serve/write") || !WriteFully(fd, bytes)) {
    error = "short write: " + tmp;
  } else if (::fsync(fd) != 0) {
    error = "fsync failed: " + tmp + ": " + std::strerror(errno);
  }
  ::close(fd);
  if (error.empty() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    error = "rename " + tmp + " -> " + path + " failed: " + std::strerror(errno);
  }
  if (error.empty()) {
    // The rename is not durable until the directory entry is. On failure
    // the final file may exist but could vanish on crash — treat it as a
    // failed publish and take it back out.
    const Status dir_synced = FsyncDir(DirName(path));
    if (!dir_synced.ok()) {
      std::remove(path.c_str());
      return dir_synced;
    }
    return OkStatus();
  }
  std::remove(tmp.c_str());
  return DataLossError(error);
}

Status RemoveFileDurably(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return DataLossError("cannot remove " + path + ": " + std::strerror(errno));
  }
  return FsyncDir(DirName(path));
}

Status RenameFileDurably(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return DataLossError("rename " + from + " -> " + to + " failed: " +
                         std::strerror(errno));
  }
  return FsyncDir(DirName(to));
}

}  // namespace kjoin::serve
