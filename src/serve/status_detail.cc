#include "serve/status_detail.h"

#include <cctype>
#include <limits>

namespace kjoin::serve {

namespace {
constexpr std::string_view kRetryAfterKey = "retry_after_ms=";
}  // namespace

std::string RetryAfterField(int64_t ms) {
  return std::string(kRetryAfterKey) + std::to_string(ms);
}

std::optional<int64_t> RetryAfterMs(const Status& status) {
  const std::string& message = status.message();
  const size_t key = message.find(kRetryAfterKey);
  if (key == std::string::npos) return std::nullopt;
  size_t pos = key + kRetryAfterKey.size();
  if (pos >= message.size() || !std::isdigit(static_cast<unsigned char>(message[pos]))) {
    return std::nullopt;
  }
  int64_t value = 0;
  for (; pos < message.size() && std::isdigit(static_cast<unsigned char>(message[pos]));
       ++pos) {
    const int digit = message[pos] - '0';
    if (value > (std::numeric_limits<int64_t>::max() - digit) / 10) {
      return std::nullopt;  // overflow: treat a forged hint as absent
    }
    value = value * 10 + digit;
  }
  return value;
}

bool IsRetryable(const Status& status) {
  return IsResourceExhausted(status) || IsUnavailable(status);
}

}  // namespace kjoin::serve
