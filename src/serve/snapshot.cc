#include "serve/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <limits>
#include <cstring>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/timer.h"
#include "hierarchy/lca.h"
#include "serve/fs_util.h"
#include "serve/wire_format.h"

namespace kjoin::serve {
namespace {

// Byte-level encoding lives in serve/wire_format.h (shared with the
// write-ahead log); this file owns the section framing and the
// section-payload layouts.
using wire::ByteReader;
using wire::ByteWriter;

constexpr uint32_t FourCc(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<uint8_t>(a)) |
         static_cast<uint32_t>(static_cast<uint8_t>(b)) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(c)) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(d)) << 24;
}

// Bytes on disk spell the names out: "KJSN", then one tag per section.
constexpr uint32_t kMagic = FourCc('K', 'J', 'S', 'N');
constexpr uint32_t kTagOptions = FourCc('O', 'P', 'T', 'S');
constexpr uint32_t kTagHierarchy = FourCc('H', 'I', 'E', 'R');
constexpr uint32_t kTagLca = FourCc('L', 'C', 'A', ' ');
constexpr uint32_t kTagTokens = FourCc('T', 'O', 'K', 'S');
constexpr uint32_t kTagSynonyms = FourCc('S', 'Y', 'N', 'S');
constexpr uint32_t kTagObjects = FourCc('O', 'B', 'J', 'S');
constexpr uint32_t kTagPostings = FourCc('P', 'O', 'S', 'T');
constexpr uint32_t kTagDurability = FourCc('D', 'U', 'R', 'A');

constexpr uint32_t kKnownTags[] = {kTagOptions,  kTagHierarchy, kTagLca,      kTagTokens,
                                   kTagSynonyms, kTagObjects,   kTagPostings, kTagDurability};
constexpr size_t kNumSections = std::size(kKnownTags);

constexpr size_t kHeaderBytes = 16;        // magic, version, count, table CRC
constexpr size_t kSectionEntryBytes = 24;  // tag, CRC, offset, size

std::string TagName(uint32_t tag) {
  std::string name(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xff);
    name[i] = (c >= 0x20 && c < 0x7f) ? c : '?';
  }
  return name;
}

// ---------------------------------------------------------------------------
// Section writers.

void WriteOptions(const KJoinOptions& o, ByteWriter* w) {
  w->F64(o.delta);
  w->F64(o.tau);
  w->U32(static_cast<uint32_t>(o.scheme));
  w->U8(o.weighted_prefix ? 1 : 0);
  w->U32(static_cast<uint32_t>(o.verify_mode));
  w->U32(static_cast<uint32_t>(o.element_metric));
  w->U32(static_cast<uint32_t>(o.set_metric));
  w->U8(o.count_pruning ? 1 : 0);
  w->U8(o.weighted_count_pruning ? 1 : 0);
  w->U8(o.plus_mode ? 1 : 0);
  w->U8(o.sim_cache ? 1 : 0);
  w->I64(o.sim_cache_capacity);
  w->I32(o.num_threads);
}

void WriteHierarchy(const Hierarchy& h, ByteWriter* w) {
  w->RawVec(h.parents());
  w->RawVec(h.depths());
  w->RawVec(h.child_offsets());
  w->RawVec(h.child_nodes());
  w->RawVec(h.leaves());
  w->I32(h.height());
  for (NodeId v = 0; v < h.num_nodes(); ++v) w->Str(h.label(v));
}

void WriteLca(const LcaIndex& lca, ByteWriter* w) {
  const LcaTables t = lca.tables();
  w->RawVec(t.first_visit);
  w->RawVec(t.row_offset);
  w->RawVec(t.log2_floor);
  w->RawVec(t.sparse);
}

void WriteSynonyms(const std::vector<std::pair<std::string, std::string>>& synonyms,
                   ByteWriter* w) {
  w->U64(synonyms.size());
  for (const auto& [alias, label] : synonyms) {
    w->Str(alias);
    w->Str(label);
  }
}

// Version-3 POST payload: the CSR form, three raw arrays. `traverse`
// must call its callback once per list in ascending SigId order (both
// posting sources — KJoinIndex::ForEachPosting and PostingStore::ForEach
// — already traverse that way, so nothing is sorted here and identical
// indexes serialize to identical bytes).
template <typename Traverse>
void WritePostings(const Traverse& traverse, ByteWriter* w) {
  std::vector<SigId> keys;
  std::vector<int64_t> list_offsets{0};
  std::vector<int32_t> docs;
  traverse([&](SigId id, const int32_t* list, int32_t count) {
    keys.push_back(id);
    docs.insert(docs.end(), list, list + count);
    list_offsets.push_back(static_cast<int64_t>(docs.size()));
  });
  w->RawVec(keys);
  w->RawVec(list_offsets);
  w->RawVec(docs);
}

void WriteDurability(int64_t durable_seq, const std::vector<int32_t>& tombstones,
                     ByteWriter* w) {
  w->I64(durable_seq);
  w->RawVec(tombstones);  // sorted ascending by the caller
}

// ---------------------------------------------------------------------------
// Section parsers. Checksums only prove the bytes match what was written;
// every structural invariant (enum ranges, id bounds, monotonicity) is
// re-validated here so even a forged-CRC file cannot index out of bounds.

StatusOr<KJoinOptions> ParseOptions(std::string_view payload, const std::string& label) {
  ByteReader r(payload, label);
  KJoinOptions o;
  uint32_t scheme, verify_mode, element_metric, set_metric;
  uint8_t weighted_prefix, count_pruning, weighted_count_pruning, plus_mode, sim_cache;
  int32_t num_threads;
  KJOIN_RETURN_IF_ERROR(r.F64(&o.delta));
  KJOIN_RETURN_IF_ERROR(r.F64(&o.tau));
  KJOIN_RETURN_IF_ERROR(r.U32(&scheme));
  KJOIN_RETURN_IF_ERROR(r.U8(&weighted_prefix));
  KJOIN_RETURN_IF_ERROR(r.U32(&verify_mode));
  KJOIN_RETURN_IF_ERROR(r.U32(&element_metric));
  KJOIN_RETURN_IF_ERROR(r.U32(&set_metric));
  KJOIN_RETURN_IF_ERROR(r.U8(&count_pruning));
  KJOIN_RETURN_IF_ERROR(r.U8(&weighted_count_pruning));
  KJOIN_RETURN_IF_ERROR(r.U8(&plus_mode));
  KJOIN_RETURN_IF_ERROR(r.U8(&sim_cache));
  KJOIN_RETURN_IF_ERROR(r.I64(&o.sim_cache_capacity));
  KJOIN_RETURN_IF_ERROR(r.I32(&num_threads));
  KJOIN_RETURN_IF_ERROR(r.ExpectEnd());

  if (!std::isfinite(o.delta) || o.delta <= 0.0 || o.delta > 1.0) {
    return InvalidArgumentError(label + ": delta out of (0, 1]");
  }
  if (!std::isfinite(o.tau) || o.tau <= 0.0 || o.tau > 1.0) {
    return InvalidArgumentError(label + ": tau out of (0, 1]");
  }
  if (scheme > static_cast<uint32_t>(SignatureScheme::kDeepPath)) {
    return InvalidArgumentError(label + ": unknown signature scheme " + std::to_string(scheme));
  }
  if (verify_mode > static_cast<uint32_t>(VerifyMode::kAdaptive)) {
    return InvalidArgumentError(label + ": unknown verify mode " + std::to_string(verify_mode));
  }
  if (element_metric > static_cast<uint32_t>(ElementMetric::kWuPalmer)) {
    return InvalidArgumentError(label + ": unknown element metric " +
                                std::to_string(element_metric));
  }
  if (set_metric > static_cast<uint32_t>(SetMetric::kCosine)) {
    return InvalidArgumentError(label + ": unknown set metric " + std::to_string(set_metric));
  }
  if (o.sim_cache_capacity < 0 || o.sim_cache_capacity > (int64_t{1} << 34)) {
    return InvalidArgumentError(label + ": sim_cache_capacity out of range");
  }
  if (num_threads < 1 || num_threads > 65536) {
    return InvalidArgumentError(label + ": num_threads out of range");
  }
  o.scheme = static_cast<SignatureScheme>(scheme);
  o.weighted_prefix = weighted_prefix != 0;
  o.verify_mode = static_cast<VerifyMode>(verify_mode);
  o.element_metric = static_cast<ElementMetric>(element_metric);
  o.set_metric = static_cast<SetMetric>(set_metric);
  o.count_pruning = count_pruning != 0;
  o.weighted_count_pruning = weighted_count_pruning != 0;
  o.plus_mode = plus_mode != 0;
  o.sim_cache = sim_cache != 0;
  o.num_threads = num_threads;
  return o;
}

StatusOr<HierarchyParts> ParseHierarchySection(std::string_view payload,
                                               const std::string& label) {
  ByteReader r(payload, label);
  HierarchyParts parts;
  KJOIN_RETURN_IF_ERROR(r.RawVec(&parts.parents));
  const uint64_t n = parts.parents.size();
  if (n == 0 || n > static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
    return InvalidArgumentError(label + ": node count " + std::to_string(n) +
                                " out of range");
  }
  KJOIN_RETURN_IF_ERROR(r.RawVec(&parts.depths));
  KJOIN_RETURN_IF_ERROR(r.RawVec(&parts.child_offsets));
  KJOIN_RETURN_IF_ERROR(r.RawVec(&parts.child_nodes));
  KJOIN_RETURN_IF_ERROR(r.RawVec(&parts.leaves));
  int32_t height;
  KJOIN_RETURN_IF_ERROR(r.I32(&height));
  parts.height = height;
  parts.labels.resize(n);
  for (uint64_t v = 0; v < n; ++v) KJOIN_RETURN_IF_ERROR(r.Str(&parts.labels[v]));
  KJOIN_RETURN_IF_ERROR(r.ExpectEnd());
  // Array-shape and tree-structure consistency is Hierarchy::FromParts's
  // job; this parser only guarantees well-formed bytes.
  return parts;
}

StatusOr<LcaTables> ParseLcaSection(std::string_view payload, const std::string& label) {
  ByteReader r(payload, label);
  LcaTables tables;
  KJOIN_RETURN_IF_ERROR(r.RawVec(&tables.first_visit));
  KJOIN_RETURN_IF_ERROR(r.RawVec(&tables.row_offset));
  KJOIN_RETURN_IF_ERROR(r.RawVec(&tables.log2_floor));
  KJOIN_RETURN_IF_ERROR(r.RawVec(&tables.sparse));
  KJOIN_RETURN_IF_ERROR(r.ExpectEnd());
  return tables;
}

StatusOr<std::vector<std::string>> ParseTokenTable(std::string_view payload,
                                                   const std::string& label) {
  ByteReader r(payload, label);
  std::vector<std::string> strings;
  // The table feeds ObjectBuilder::PreloadTokens, whose intern map
  // CHECK-fails on a repeat — reject forged duplicates at parse time.
  KJOIN_RETURN_IF_ERROR(wire::ParseStringList(r, /*reject_duplicates=*/true, &strings));
  KJOIN_RETURN_IF_ERROR(r.ExpectEnd());
  return strings;
}

StatusOr<std::vector<std::pair<std::string, std::string>>> ParseSynonyms(
    std::string_view payload, const std::string& label) {
  ByteReader r(payload, label);
  uint64_t count;
  KJOIN_RETURN_IF_ERROR(r.U64(&count));
  if (count > r.remaining() / 8) {
    return DataLossError(label + ": synonym count " + std::to_string(count) +
                         " exceeds payload size");
  }
  std::vector<std::pair<std::string, std::string>> synonyms(count);
  for (uint64_t i = 0; i < count; ++i) {
    KJOIN_RETURN_IF_ERROR(r.Str(&synonyms[i].first));
    KJOIN_RETURN_IF_ERROR(r.Str(&synonyms[i].second));
  }
  KJOIN_RETURN_IF_ERROR(r.ExpectEnd());
  return synonyms;
}

StatusOr<std::vector<Object>> ParseObjects(std::string_view payload, const std::string& label,
                                           const std::vector<std::string>& tokens,
                                           int64_t num_nodes) {
  ByteReader r(payload, label);
  std::vector<Object> objects;
  KJOIN_RETURN_IF_ERROR(wire::ParseObjectList(r, tokens, num_nodes, &objects));
  KJOIN_RETURN_IF_ERROR(r.ExpectEnd());
  return objects;
}

StatusOr<PostingStore> ParsePostings(std::string_view payload, const std::string& label,
                                     int64_t num_objects) {
  ByteReader r(payload, label);
  std::vector<SigId> keys;
  std::vector<int64_t> list_offsets;
  std::vector<int32_t> docs;
  KJOIN_RETURN_IF_ERROR(r.RawVec(&keys));
  KJOIN_RETURN_IF_ERROR(r.RawVec(&list_offsets));
  KJOIN_RETURN_IF_ERROR(r.RawVec(&docs));
  KJOIN_RETURN_IF_ERROR(r.ExpectEnd());
  if (list_offsets.size() != keys.size() + 1 || list_offsets.front() != 0 ||
      list_offsets.back() != static_cast<int64_t>(docs.size())) {
    return InvalidArgumentError(label + ": posting offset table shape mismatch");
  }
  // A linear repack: each validated list feeds the CSR builder directly,
  // no map and no re-sort — the on-disk order IS the index order.
  PostingStore::Builder builder;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0 && keys[i] <= keys[i - 1]) {
      return InvalidArgumentError(label + ": signature ids not strictly increasing");
    }
    const int64_t begin = list_offsets[i];
    const int64_t end = list_offsets[i + 1];
    // begin >= 0 by induction: offsets start at 0 and each list adds a
    // positive length.
    if (end <= begin) {
      return InvalidArgumentError(label + ": empty posting list for signature " +
                                  std::to_string(keys[i]));
    }
    int32_t last = -1;
    for (int64_t j = begin; j < end; ++j) {
      // Lists are strictly ascending object indexes by construction
      // (IndexObject appends in insertion order); anything else is a
      // corrupt or foreign file.
      if (docs[j] <= last || static_cast<int64_t>(docs[j]) >= num_objects) {
        return InvalidArgumentError(label + ": posting list for signature " +
                                    std::to_string(keys[i]) +
                                    " is not an ascending list of ids < " +
                                    std::to_string(num_objects));
      }
      last = docs[j];
    }
    builder.Add(keys[i], docs.data() + begin, static_cast<int32_t>(end - begin));
  }
  return builder.Finish();
}

struct Durability {
  int64_t durable_seq = 0;
  std::vector<int32_t> tombstones;
};

StatusOr<Durability> ParseDurability(std::string_view payload, const std::string& label,
                                     int64_t num_objects) {
  ByteReader r(payload, label);
  Durability dura;
  KJOIN_RETURN_IF_ERROR(r.I64(&dura.durable_seq));
  if (dura.durable_seq < 0) {
    return InvalidArgumentError(label + ": negative durable sequence " +
                                std::to_string(dura.durable_seq));
  }
  KJOIN_RETURN_IF_ERROR(r.RawVec(&dura.tombstones));
  int32_t last = -1;
  for (const int32_t index : dura.tombstones) {
    if (index <= last || static_cast<int64_t>(index) >= num_objects) {
      return InvalidArgumentError(label +
                                  ": tombstones are not an ascending list of ids < " +
                                  std::to_string(num_objects));
    }
    last = index;
  }
  KJOIN_RETURN_IF_ERROR(r.ExpectEnd());
  return dura;
}

// ---------------------------------------------------------------------------
// File assembly and the top-level parser.

struct Section {
  uint32_t tag = 0;
  std::string payload;
};

std::string AssembleFile(std::vector<Section> sections) {
  ByteWriter table;
  uint64_t offset = kHeaderBytes + kSectionEntryBytes * sections.size();
  for (const Section& s : sections) {
    table.U32(s.tag);
    table.U32(Crc32(s.payload));
    table.U64(offset);
    table.U64(s.payload.size());
    offset += s.payload.size();
  }
  const std::string table_bytes = table.Take();

  ByteWriter header;
  header.U32(kMagic);
  header.U32(kSnapshotFormatVersion);
  header.U32(static_cast<uint32_t>(sections.size()));
  header.U32(Crc32(table_bytes));

  std::string out = header.Take();
  out.reserve(offset);
  out += table_bytes;
  for (Section& s : sections) out += s.payload;
  return out;
}

StatusOr<LoadedIndex> ParseSnapshot(std::string_view bytes, std::string_view source_name) {
  const std::string name(source_name);
  if (bytes.size() < kHeaderBytes) {
    return DataLossError(name + ": truncated header (" + std::to_string(bytes.size()) +
                         " bytes)");
  }
  ByteReader header(bytes.substr(0, kHeaderBytes), name + " header");
  uint32_t magic, version, section_count, table_crc;
  KJOIN_RETURN_IF_ERROR(header.U32(&magic));
  KJOIN_RETURN_IF_ERROR(header.U32(&version));
  KJOIN_RETURN_IF_ERROR(header.U32(&section_count));
  KJOIN_RETURN_IF_ERROR(header.U32(&table_crc));
  if (magic != kMagic) {
    return InvalidArgumentError(name + ": not a K-Join index snapshot (bad magic)");
  }
  if (version != kSnapshotFormatVersion) {
    return InvalidArgumentError(name + ": snapshot format version " + std::to_string(version) +
                                "; this build reads version " +
                                std::to_string(kSnapshotFormatVersion));
  }
  if (section_count != kNumSections) {
    return InvalidArgumentError(name + ": expected " + std::to_string(kNumSections) +
                                " sections, header says " + std::to_string(section_count));
  }
  const uint64_t table_size = kSectionEntryBytes * static_cast<uint64_t>(section_count);
  if (bytes.size() - kHeaderBytes < table_size) {
    return DataLossError(name + ": truncated section table");
  }
  const std::string_view table_bytes = bytes.substr(kHeaderBytes, table_size);
  if (Crc32(table_bytes) != table_crc) {
    return DataLossError(name + ": section table checksum mismatch");
  }

  struct Entry {
    uint32_t crc = 0;
    std::string_view payload;
    bool present = false;
  };
  Entry entries[kNumSections];
  ByteReader table(table_bytes, name + " section table");
  for (uint32_t i = 0; i < section_count; ++i) {
    uint32_t tag, crc;
    uint64_t offset, size;
    KJOIN_RETURN_IF_ERROR(table.U32(&tag));
    KJOIN_RETURN_IF_ERROR(table.U32(&crc));
    KJOIN_RETURN_IF_ERROR(table.U64(&offset));
    KJOIN_RETURN_IF_ERROR(table.U64(&size));
    size_t slot = kNumSections;
    for (size_t k = 0; k < kNumSections; ++k) {
      if (kKnownTags[k] == tag) slot = k;
    }
    if (slot == kNumSections) {
      return InvalidArgumentError(name + ": unknown section '" + TagName(tag) + "'");
    }
    if (entries[slot].present) {
      return InvalidArgumentError(name + ": duplicate section '" + TagName(tag) + "'");
    }
    if (offset < kHeaderBytes + table_size || offset > bytes.size() ||
        size > bytes.size() - offset) {
      return DataLossError(name + ": section '" + TagName(tag) + "' out of bounds (offset " +
                           std::to_string(offset) + ", size " + std::to_string(size) + ", file " +
                           std::to_string(bytes.size()) + " bytes)");
    }
    entries[slot] = {crc, bytes.substr(offset, size), true};
  }
  for (size_t k = 0; k < kNumSections; ++k) {
    if (KJOIN_FAULT_POINT("serve/section_crc")) {
      return DataLossError(name + ": injected checksum mismatch in section '" +
                           TagName(kKnownTags[k]) + "'");
    }
    if (Crc32(entries[k].payload) != entries[k].crc) {
      return DataLossError(name + ": section '" + TagName(kKnownTags[k]) +
                           "' checksum mismatch");
    }
  }
  const auto payload = [&](uint32_t tag) {
    for (size_t k = 0; k < kNumSections; ++k) {
      if (kKnownTags[k] == tag) return entries[k].payload;
    }
    return std::string_view();
  };
  const auto label = [&](uint32_t tag) { return name + " section " + TagName(tag); };

  KJOIN_ASSIGN_OR_RETURN(KJoinOptions options,
                         ParseOptions(payload(kTagOptions), label(kTagOptions)));
  KJOIN_ASSIGN_OR_RETURN(HierarchyParts hierarchy_parts,
                         ParseHierarchySection(payload(kTagHierarchy), label(kTagHierarchy)));
  KJOIN_ASSIGN_OR_RETURN(Hierarchy restored, Hierarchy::FromParts(std::move(hierarchy_parts)));
  auto hierarchy = std::make_shared<const Hierarchy>(std::move(restored));
  const int64_t num_nodes = hierarchy->num_nodes();

  KJOIN_ASSIGN_OR_RETURN(LcaTables lca_tables, ParseLcaSection(payload(kTagLca), label(kTagLca)));
  KJOIN_ASSIGN_OR_RETURN(LcaIndex lca_restored,
                         LcaIndex::FromTables(*hierarchy, std::move(lca_tables)));
  auto lca = std::make_shared<const LcaIndex>(std::move(lca_restored));

  KJOIN_ASSIGN_OR_RETURN(std::vector<std::string> tokens,
                         ParseTokenTable(payload(kTagTokens), label(kTagTokens)));
  KJOIN_ASSIGN_OR_RETURN(auto synonyms,
                         ParseSynonyms(payload(kTagSynonyms), label(kTagSynonyms)));
  KJOIN_ASSIGN_OR_RETURN(std::vector<Object> objects,
                         ParseObjects(payload(kTagObjects), label(kTagObjects), tokens, num_nodes));
  KJOIN_ASSIGN_OR_RETURN(auto postings,
                         ParsePostings(payload(kTagPostings), label(kTagPostings),
                                       static_cast<int64_t>(objects.size())));
  KJOIN_ASSIGN_OR_RETURN(Durability dura,
                         ParseDurability(payload(kTagDurability), label(kTagDurability),
                                         static_cast<int64_t>(objects.size())));

  LoadedIndex loaded;
  loaded.hierarchy = hierarchy;
  loaded.tokens = std::move(tokens);
  loaded.synonyms = std::move(synonyms);
  KJoinIndex::RestoredParts parts;
  parts.lca = std::move(lca);
  parts.postings = std::move(postings);
  parts.tombstones = std::move(dura.tombstones);
  loaded.index = std::make_unique<KJoinIndex>(*hierarchy, options, std::move(objects),
                                              std::move(parts));
  loaded.file_bytes = bytes.size();
  loaded.durable_seq = dura.durable_seq;
  return loaded;
}

void RecordLoad(MetricsRegistry* metrics, const WallTimer& timer,
                const StatusOr<LoadedIndex>& result) {
  if (metrics == nullptr) return;
  if (result.ok()) {
    metrics->counter("snapshot.loads")->Increment();
    metrics->counter("snapshot.load_bytes")->Increment(
        static_cast<int64_t>(result->file_bytes));
    metrics->histogram("snapshot.load_seconds")->Observe(timer.ElapsedSeconds());
  } else {
    metrics->counter("snapshot.load_failures")->Increment();
  }
}

struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

struct MmapGuard {
  void* addr = MAP_FAILED;
  size_t size = 0;
  ~MmapGuard() {
    if (addr != MAP_FAILED) ::munmap(addr, size);
  }
};

}  // namespace

std::string SerializeIndexSnapshot(const SnapshotInput& input) {
  KJOIN_CHECK(input.index != nullptr) << "SnapshotInput needs an index";
  const KJoinIndex& index = *input.index;
  const Hierarchy& hierarchy = index.hierarchy();

  // A snapshot is always one flat layer: collapse a delta chain (or a
  // flat index carrying tombstones, whose postings still hold the dead
  // entries) first. The collapse is O(objects + postings) — no
  // signature regeneration.
  std::vector<Object> flat_objects;
  KJoinIndex::RestoredParts flat_parts;
  const bool collapse = index.delta_depth() > 0 || index.num_live() != index.num_indexed();
  if (collapse) index.Flatten(&flat_objects, &flat_parts);
  const std::vector<Object>& all_objects = collapse ? flat_objects : index.objects();
  const std::vector<int32_t>& tombstones = flat_parts.tombstones;  // empty when !collapse

  // The token table must assign every indexed element's id to its surface
  // form. Start from the caller's table (which may also carry query-only
  // tokens) and fill gaps from the objects; ids interned but used by no
  // object get unique placeholders so PreloadTokens can replay the table.
  std::vector<std::string> tokens = input.tokens;
  for (const Object& o : all_objects) {
    for (const Element& e : o.elements) {
      if (e.token_id < 0) continue;
      if (static_cast<size_t>(e.token_id) >= tokens.size()) tokens.resize(e.token_id + 1);
      if (tokens[e.token_id].empty()) {
        tokens[e.token_id] = e.token;
      } else {
        KJOIN_CHECK(tokens[e.token_id] == e.token)
            << "token table disagrees with indexed objects at id " << e.token_id;
      }
    }
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    // '\x01' cannot appear in normalized tokens, so placeholders never
    // collide with real entries (duplicates would break PreloadTokens).
    if (tokens[i].empty()) tokens[i] = std::string("\x01gap") + std::to_string(i);
  }

  std::vector<Section> sections(kNumSections);
  {
    ByteWriter w;
    WriteOptions(index.options(), &w);
    sections[0] = {kTagOptions, w.Take()};
  }
  {
    ByteWriter w;
    WriteHierarchy(hierarchy, &w);
    sections[1] = {kTagHierarchy, w.Take()};
  }
  {
    ByteWriter w;
    WriteLca(*index.shared_lca(), &w);
    sections[2] = {kTagLca, w.Take()};
  }
  {
    ByteWriter w;
    wire::WriteStringList(tokens, &w);
    sections[3] = {kTagTokens, w.Take()};
  }
  {
    ByteWriter w;
    WriteSynonyms(input.synonyms, &w);
    sections[4] = {kTagSynonyms, w.Take()};
  }
  {
    ByteWriter w;
    wire::WriteObjectList(all_objects, &w);
    sections[5] = {kTagObjects, w.Take()};
  }
  {
    ByteWriter w;
    // Both sources traverse ascending SigIds: the flattened chain through
    // its freshly built CSR store, a flat live index through its frozen
    // store merged with any post-freeze tail inserts.
    if (collapse) {
      WritePostings([&](auto&& fn) { flat_parts.postings.ForEach(fn); }, &w);
    } else {
      WritePostings([&](auto&& fn) { index.ForEachPosting(fn); }, &w);
    }
    sections[6] = {kTagPostings, w.Take()};
  }
  {
    ByteWriter w;
    WriteDurability(input.durable_seq, tombstones, &w);
    sections[7] = {kTagDurability, w.Take()};
  }
  return AssembleFile(std::move(sections));
}

Status SaveIndexSnapshot(const SnapshotInput& input, const std::string& path) {
  // tmp + fsync + rename + parent-dir fsync: a file under the final name
  // is always a complete snapshot, even across a crash mid-save
  // (serve/fs_util.h). Failures leave any previous snapshot at `path`
  // untouched.
  return AtomicWriteFile(path, SerializeIndexSnapshot(input));
}

StatusOr<LoadedIndex> LoadIndexSnapshot(const std::string& path, MetricsRegistry* metrics) {
  WallTimer timer;
  const auto finish = [&](StatusOr<LoadedIndex> result) {
    RecordLoad(metrics, timer, result);
    return result;
  };

  if (KJOIN_FAULT_POINT("serve/open")) {
    return finish(NotFoundError("injected open failure: " + path));
  }
  FdCloser fd{::open(path.c_str(), O_RDONLY)};
  if (fd.fd < 0) {
    return finish(NotFoundError("cannot open snapshot: " + path + ": " + std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd.fd, &st) != 0) {
    return finish(DataLossError("cannot stat snapshot: " + path + ": " + std::strerror(errno)));
  }
  const size_t size = static_cast<size_t>(st.st_size);

  // Map read-only when the kernel lets us; otherwise (or under the mmap
  // fault) fall back to a plain read into memory. Parsing copies all
  // payloads into owned structures, so the mapping is released on return.
  MmapGuard map;
  std::string buffer;
  std::string_view bytes;
  if (size > 0 && !KJOIN_FAULT_POINT("serve/mmap")) {
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd.fd, 0);
    if (addr != MAP_FAILED) {
      map.addr = addr;
      map.size = size;
      bytes = {static_cast<const char*>(addr), size};
    }
  }
  if (map.addr == MAP_FAILED) {
    buffer.resize(size);
    size_t off = 0;
    while (off < size) {
      ssize_t n = ::read(fd.fd, buffer.data() + off, size - off);
      if (KJOIN_FAULT_POINT("serve/short_read")) n = 0;
      if (n < 0) {
        if (errno == EINTR) continue;
        return finish(
            DataLossError("read failed: " + path + ": " + std::strerror(errno)));
      }
      if (n == 0) {
        return finish(DataLossError("short read: " + path + " (got " + std::to_string(off) +
                                    " of " + std::to_string(size) + " bytes)"));
      }
      off += static_cast<size_t>(n);
    }
    bytes = buffer;
  }
  return finish(ParseSnapshot(bytes, path));
}

StatusOr<LoadedIndex> LoadIndexSnapshotFromBytes(std::string_view bytes,
                                                 std::string_view source_name,
                                                 MetricsRegistry* metrics) {
  WallTimer timer;
  StatusOr<LoadedIndex> result = ParseSnapshot(bytes, source_name);
  RecordLoad(metrics, timer, result);
  return result;
}

QueryPipeline MakeQueryPipeline(const LoadedIndex& loaded, double min_phi) {
  KJOIN_CHECK(loaded.index != nullptr) << "MakeQueryPipeline needs a loaded index";
  const KJoinOptions& options = loaded.index->options();
  EntityMatcherOptions matcher_options;
  matcher_options.min_phi = min_phi > 0.0 ? min_phi : options.delta;
  QueryPipeline pipeline;
  pipeline.matcher = std::make_unique<EntityMatcher>(*loaded.hierarchy, matcher_options);
  for (const auto& [alias, node_label] : loaded.synonyms) {
    pipeline.matcher->AddSynonym(alias, node_label);
  }
  pipeline.builder =
      std::make_unique<ObjectBuilder>(*pipeline.matcher, options.plus_mode);
  pipeline.builder->PreloadTokens(loaded.tokens);
  return pipeline;
}

}  // namespace kjoin::serve
