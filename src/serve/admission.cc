#include "serve/admission.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "serve/status_detail.h"

namespace kjoin::serve {
namespace {

// Retry hint for shed responses: the estimated wait for load to move —
// one queue-delay EWMA, floored at 1ms so the hint is never "now".
int64_t RetryHintMs(double queue_delay_seconds) {
  return std::max<int64_t>(1, static_cast<int64_t>(queue_delay_seconds * 1e3));
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options, std::string metric_prefix,
                                         MetricsRegistry* metrics)
    : options_(options), prefix_(std::move(metric_prefix)), metrics_(metrics) {
  KJOIN_CHECK(options_.min_in_flight >= 1) << "min_in_flight must be >= 1";
  KJOIN_CHECK(options_.aimd_window >= 1) << "aimd_window must be >= 1";
  options_.min_in_flight =
      std::min(options_.min_in_flight, std::max(1, options_.max_in_flight));
  effective_cap_.store(options_.max_in_flight, std::memory_order_relaxed);
  if (metrics_ != nullptr && options_.max_in_flight > 0) {
    metrics_->gauge(prefix_ + ".effective_cap")->Set(options_.max_in_flight);
  }
}

AdmissionController::Outcome AdmissionController::TryAdmit(double deadline_seconds) {
  if (options_.adaptive && deadline_seconds > 0.0 &&
      queue_delay_ewma_seconds() >= deadline_seconds) {
    // The query would spend its whole budget waiting: shed before it
    // queues instead of after it has cost pool time.
    return Outcome::kShedDeadlineInfeasible;
  }
  if (options_.max_in_flight <= 0) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    return Outcome::kAdmitted;
  }
  const int64_t cap = options_.adaptive ? effective_cap_.load(std::memory_order_relaxed)
                                        : options_.max_in_flight;
  const int64_t now = in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (now > cap) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    return Outcome::kShedCap;
  }
  return Outcome::kAdmitted;
}

void AdmissionController::Release() { in_flight_.fetch_sub(1, std::memory_order_relaxed); }

void AdmissionController::RecordQueueDelay(double seconds) {
  const int64_t sample = static_cast<int64_t>(seconds * 1e9);
  const int64_t prev = queue_delay_ewma_ns_.load(std::memory_order_relaxed);
  const int64_t next =
      prev + static_cast<int64_t>(options_.queue_delay_ewma_alpha *
                                  static_cast<double>(sample - prev));
  queue_delay_ewma_ns_.store(next, std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    metrics_->histogram(prefix_ + ".queue_delay_seconds")->Observe(seconds);
  }
}

void AdmissionController::NoteOutcome(bool deadline_missed) {
  if (!options_.adaptive || options_.max_in_flight <= 0) return;
  if (deadline_missed) window_misses_.fetch_add(1, std::memory_order_relaxed);
  const int64_t done = window_queries_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (done % options_.aimd_window != 0) return;
  // End of a window: AIMD. Multiplicative decrease when the window
  // missed too often, +1 additive recovery on a clean window. Counter
  // races can at worst attribute a miss to the neighboring window.
  const int64_t misses = window_misses_.exchange(0, std::memory_order_relaxed);
  const double miss_fraction =
      static_cast<double>(misses) / static_cast<double>(options_.aimd_window);
  const int64_t cap = effective_cap_.load(std::memory_order_relaxed);
  int64_t next = cap;
  if (miss_fraction >= options_.aimd_miss_threshold) {
    next = std::max<int64_t>(options_.min_in_flight, cap / 2);
  } else if (cap < options_.max_in_flight) {
    next = cap + 1;
  }
  if (next != cap) {
    effective_cap_.store(next, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->gauge(prefix_ + ".effective_cap")->Set(next);
  }
}

Status AdmissionController::ShedStatus(Outcome outcome, double deadline_seconds) {
  const double queue_delay = queue_delay_ewma_seconds();
  if (metrics_ != nullptr) {
    metrics_->counter(prefix_ + ".shed")->Increment();  // legacy total
    metrics_->counter(prefix_ + ".shed_total")->Increment();
    metrics_->counter(outcome == Outcome::kShedCap
                          ? prefix_ + ".shed_cap"
                          : prefix_ + ".shed_deadline_infeasible")
        ->Increment();
  }
  // The hint field uses the one shared formatter (serve/status_detail.h)
  // so every consumer — in-process or the network front end — parses one
  // grammar.
  char message[256];
  if (outcome == Outcome::kShedCap) {
    std::snprintf(message, sizeof(message),
                  "query shed (cap): in_flight=%lld effective_cap=%lld "
                  "max_in_flight=%d %s",
                  static_cast<long long>(in_flight()),
                  static_cast<long long>(effective_cap()), options_.max_in_flight,
                  RetryAfterField(RetryHintMs(queue_delay)).c_str());
  } else {
    std::snprintf(message, sizeof(message),
                  "query shed (deadline-infeasible): queue_delay_ewma_ms=%.3f "
                  "deadline_ms=%.3f in_flight=%lld effective_cap=%lld %s",
                  queue_delay * 1e3, deadline_seconds * 1e3,
                  static_cast<long long>(in_flight()),
                  static_cast<long long>(effective_cap()),
                  RetryAfterField(RetryHintMs(queue_delay)).c_str());
  }
  return ResourceExhaustedError(message);
}

}  // namespace kjoin::serve
