#include "serve/sharded_index_manager.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace kjoin::serve {

ShardedIndexManager::ShardedIndexManager(
    std::shared_ptr<const Hierarchy> hierarchy, KJoinOptions options,
    std::vector<Object> objects, std::vector<std::string> tokens,
    std::vector<std::pair<std::string, std::string>> synonyms, int num_shards,
    ThreadPool* pool, MetricsRegistry* metrics, IndexManagerOptions manager_options)
    : metrics_(metrics) {
  KJOIN_CHECK(num_shards >= 1) << "ShardedIndexManager needs at least one shard";
  const int64_t n = static_cast<int64_t>(objects.size());
  std::vector<std::vector<Object>> parts(static_cast<size_t>(num_shards));
  std::vector<std::vector<int32_t>> globals(static_cast<size_t>(num_shards));
  for (int64_t g = 0; g < n; ++g) {
    const auto s = static_cast<size_t>(ShardOf(g, num_shards));
    parts[s].push_back(std::move(objects[static_cast<size_t>(g)]));
    globals[s].push_back(static_cast<int32_t>(g));
  }
  shards_.reserve(static_cast<size_t>(num_shards));
  to_global_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<IndexManager>(
        hierarchy, options, std::move(parts[static_cast<size_t>(s)]), tokens, synonyms,
        pool, /*metrics=*/nullptr, manager_options));
    to_global_.push_back(
        std::make_shared<const std::vector<int32_t>>(std::move(globals[static_cast<size_t>(s)])));
  }
  next_global_ = n;
  if (metrics_ != nullptr) {
    metrics_->gauge("sharded.num_shards")->Set(num_shards);
    metrics_->gauge("sharded.num_objects")->Set(n);
  }
}

std::shared_ptr<const std::vector<int32_t>> ShardedIndexManager::GlobalIndexes(int s) const {
  std::lock_guard<std::mutex> lock(mu_);
  return to_global_[static_cast<size_t>(s)];
}

Status ShardedIndexManager::AttachWal(const std::string& path_prefix, bool fsync) {
  for (int s = 0; s < num_shards(); ++s) {
    KJOIN_RETURN_IF_ERROR(
        shards_[static_cast<size_t>(s)]->AttachWal(
            path_prefix + ".shard-" + std::to_string(s), fsync));
  }
  // Replay may have grown the shards past what the constructor placed.
  // Reconstruct the global numbering from the counts alone: re-run the
  // placement function over g = 0..M-1 and require it to land exactly
  // the recovered count on every shard.
  std::vector<int64_t> sizes(static_cast<size_t>(num_shards()));
  int64_t total = 0;
  for (int s = 0; s < num_shards(); ++s) {
    shards_[static_cast<size_t>(s)]->Flush();
    sizes[static_cast<size_t>(s)] =
        shards_[static_cast<size_t>(s)]->Acquire()->index->num_indexed();
    total += sizes[static_cast<size_t>(s)];
  }
  std::vector<std::vector<int32_t>> globals(static_cast<size_t>(num_shards()));
  for (int s = 0; s < num_shards(); ++s) {
    globals[static_cast<size_t>(s)].reserve(static_cast<size_t>(sizes[static_cast<size_t>(s)]));
  }
  for (int64_t g = 0; g < total; ++g) {
    globals[static_cast<size_t>(ShardOf(g, num_shards()))].push_back(static_cast<int32_t>(g));
  }
  for (int s = 0; s < num_shards(); ++s) {
    if (static_cast<int64_t>(globals[static_cast<size_t>(s)].size()) !=
        sizes[static_cast<size_t>(s)]) {
      return DataLossError(
          "sharded WAL set is not reconstructible: shard " + std::to_string(s) + " holds " +
          std::to_string(sizes[static_cast<size_t>(s)]) + " objects but the placement " +
          "function assigns it " + std::to_string(globals[static_cast<size_t>(s)].size()) +
          " of " + std::to_string(total) + " — a mutation batch landed on only part of " +
          "the shard set (see docs/serving.md); recover from a snapshot");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (int s = 0; s < num_shards(); ++s) {
    to_global_[static_cast<size_t>(s)] = std::make_shared<const std::vector<int32_t>>(
        std::move(globals[static_cast<size_t>(s)]));
  }
  next_global_ = total;
  if (metrics_ != nullptr) metrics_->gauge("sharded.num_objects")->Set(total);
  return OkStatus();
}

Status ShardedIndexManager::InsertBatch(std::vector<Object> objects,
                                        std::vector<std::string> tokens) {
  // Up-front health gate: a batch that lands on only some shards breaks
  // the count-based numbering reconstruction (see AttachWal), so refuse
  // the whole batch while any shard is degraded read-only. A kRecovering
  // shard is writable on purpose — its manager only returns to kServing
  // once a real append is acked, and that append has to come through
  // here.
  for (int s = 0; s < num_shards(); ++s) {
    const ManagerHealth health = shards_[static_cast<size_t>(s)]->HealthSnapshot();
    if (health.state == HealthState::kDegradedReadOnly) {
      return UnavailableError("sharded insert rejected: shard " + std::to_string(s) +
                              " is degraded read-only; retry after it heals");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t n = static_cast<int64_t>(objects.size());
  std::vector<std::vector<Object>> parts(static_cast<size_t>(num_shards()));
  std::vector<std::vector<int32_t>> added(static_cast<size_t>(num_shards()));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t g = next_global_ + i;
    const auto s = static_cast<size_t>(ShardOf(g, num_shards()));
    parts[s].push_back(std::move(objects[static_cast<size_t>(i)]));
    added[s].push_back(static_cast<int32_t>(g));
  }
  // Extend the mappings BEFORE handing anything to a shard: with an
  // inline rebuild (null / single-lane pool) the shard publishes the new
  // epoch inside InsertBatch, and a concurrent gatherer that acquires
  // that epoch must already find the mapping covering it. The mapping
  // being a superset of the published state is always safe — a local
  // index the shard never accepted simply never appears in a hit.
  for (int s = 0; s < num_shards(); ++s) {
    if (added[static_cast<size_t>(s)].empty()) continue;
    const std::vector<int32_t>& old = *to_global_[static_cast<size_t>(s)];
    auto next = std::make_shared<std::vector<int32_t>>();
    next->reserve(old.size() + added[static_cast<size_t>(s)].size());
    next->insert(next->end(), old.begin(), old.end());
    next->insert(next->end(), added[static_cast<size_t>(s)].begin(),
                 added[static_cast<size_t>(s)].end());
    to_global_[static_cast<size_t>(s)] = std::move(next);
  }
  Status result = OkStatus();
  for (int s = 0; s < num_shards(); ++s) {
    // Token extensions go to every shard — a shard skipped here would
    // reject a later batch that references the new ids.
    Status status = shards_[static_cast<size_t>(s)]->InsertBatch(
        std::move(parts[static_cast<size_t>(s)]), tokens);
    // On failure keep the first error but finish the fan-out: shards
    // that do accept their part stay consistent with their own WALs.
    // Reads stay correct (see above), but the WAL set as a whole may now
    // fail reconstruction on recovery (documented limitation).
    if (result.ok() && !status.ok()) result = status;
  }
  next_global_ += n;
  if (metrics_ != nullptr) {
    metrics_->gauge("sharded.num_objects")->Set(next_global_);
    if (!result.ok()) metrics_->counter("sharded.partial_insert_failures")->Increment();
  }
  return result;
}

Status ShardedIndexManager::DeleteObjects(std::vector<int32_t> global_indexes) {
  std::vector<std::vector<int32_t>> per_shard(static_cast<size_t>(num_shards()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int32_t g : global_indexes) {
      if (g < 0 || g >= next_global_) {
        return InvalidArgumentError("DeleteObjects: global index " + std::to_string(g) +
                                    " out of range [0, " + std::to_string(next_global_) + ")");
      }
      const int s = ShardOf(g, num_shards());
      const std::vector<int32_t>& table = *to_global_[static_cast<size_t>(s)];
      const auto it = std::lower_bound(table.begin(), table.end(), g);
      if (it == table.end() || *it != g) {
        // Assigned to the shard by the placement function but never
        // accepted by it (a past partial insert failure).
        return InvalidArgumentError("DeleteObjects: global index " + std::to_string(g) +
                                    " is not present on its shard " + std::to_string(s));
      }
      per_shard[static_cast<size_t>(s)].push_back(
          static_cast<int32_t>(it - table.begin()));
    }
  }
  Status result = OkStatus();
  for (int s = 0; s < num_shards(); ++s) {
    if (per_shard[static_cast<size_t>(s)].empty()) continue;
    Status status = shards_[static_cast<size_t>(s)]->DeleteObjects(
        std::move(per_shard[static_cast<size_t>(s)]));
    if (result.ok() && !status.ok()) result = status;
  }
  return result;
}

void ShardedIndexManager::Flush() {
  for (auto& shard : shards_) shard->Flush();
}

int64_t ShardedIndexManager::num_objects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_global_;
}

ManagerHealth ShardedIndexManager::HealthSnapshot() const {
  ManagerHealth worst;
  for (const auto& shard : shards_) {
    const ManagerHealth health = shard->HealthSnapshot();
    // Degraded dominates recovering dominates serving.
    if (health.state == HealthState::kDegradedReadOnly ||
        (health.state == HealthState::kRecovering &&
         worst.state == HealthState::kServing)) {
      worst.state = health.state;
    }
    worst.consecutive_wal_failures =
        std::max(worst.consecutive_wal_failures, health.consecutive_wal_failures);
    worst.read_only_trips += health.read_only_trips;
    worst.recoveries += health.recoveries;
  }
  return worst;
}

}  // namespace kjoin::serve
