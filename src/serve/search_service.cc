#include "serve/search_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"

namespace kjoin::serve {
namespace {

// Retry hint for shed responses: the estimated wait for load to move —
// one queue-delay EWMA, floored at 1ms so the hint is never "now".
int64_t RetryAfterMs(double queue_delay_seconds) {
  return std::max<int64_t>(1, static_cast<int64_t>(queue_delay_seconds * 1e3));
}

}  // namespace

SearchService::SearchService(IndexManager* manager, ThreadPool* pool,
                             SearchServiceOptions options, MetricsRegistry* metrics)
    : manager_(manager), pool_(pool), options_(options), metrics_(metrics) {
  KJOIN_CHECK(manager_ != nullptr) << "SearchService needs an IndexManager";
  KJOIN_CHECK(pool_ != nullptr) << "SearchService needs a ThreadPool";
  KJOIN_CHECK(options_.min_in_flight >= 1) << "min_in_flight must be >= 1";
  KJOIN_CHECK(options_.aimd_window >= 1) << "aimd_window must be >= 1";
  options_.min_in_flight = std::min(options_.min_in_flight,
                                    std::max(1, options_.max_in_flight));
  effective_cap_.store(options_.max_in_flight, std::memory_order_relaxed);
  if (metrics_ != nullptr && options_.max_in_flight > 0) {
    metrics_->gauge("service.effective_cap")->Set(options_.max_in_flight);
  }
}

SearchService::~SearchService() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [&] { return async_outstanding_ == 0; });
}

bool SearchService::Admit() {
  if (options_.max_in_flight <= 0) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  const int64_t cap = options_.adaptive ? effective_cap_.load(std::memory_order_relaxed)
                                        : options_.max_in_flight;
  const int64_t now = in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (now > cap) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void SearchService::Release() { in_flight_.fetch_sub(1, std::memory_order_relaxed); }

double SearchService::EffectiveDeadline(const QueryRequest& request) const {
  return request.deadline_seconds < 0.0 ? options_.default_deadline_seconds
                                        : request.deadline_seconds;
}

bool SearchService::DeadlineInfeasible(double deadline_seconds) const {
  if (!options_.adaptive || deadline_seconds <= 0.0) return false;
  // The query would spend its whole budget waiting: shed before it
  // queues instead of after it has cost pool time.
  return queue_delay_ewma_seconds() >= deadline_seconds;
}

QueryResponse SearchService::Shed(ShedReason reason, double deadline_seconds) {
  const double queue_delay = queue_delay_ewma_seconds();
  if (metrics_ != nullptr) {
    metrics_->counter("service.shed")->Increment();  // legacy total
    metrics_->counter("service.shed_total")->Increment();
    metrics_->counter(reason == ShedReason::kCap ? "service.shed_cap"
                                                 : "service.shed_deadline_infeasible")
        ->Increment();
  }
  char message[256];
  if (reason == ShedReason::kCap) {
    std::snprintf(message, sizeof(message),
                  "query shed (cap): in_flight=%lld effective_cap=%lld "
                  "max_in_flight=%d retry_after_ms=%lld",
                  static_cast<long long>(in_flight()),
                  static_cast<long long>(effective_cap()), options_.max_in_flight,
                  static_cast<long long>(RetryAfterMs(queue_delay)));
  } else {
    std::snprintf(message, sizeof(message),
                  "query shed (deadline-infeasible): queue_delay_ewma_ms=%.3f "
                  "deadline_ms=%.3f in_flight=%lld effective_cap=%lld "
                  "retry_after_ms=%lld",
                  queue_delay * 1e3, deadline_seconds * 1e3,
                  static_cast<long long>(in_flight()),
                  static_cast<long long>(effective_cap()),
                  static_cast<long long>(RetryAfterMs(queue_delay)));
  }
  QueryResponse response;
  response.status = ResourceExhaustedError(message);
  return response;
}

void SearchService::UpdateQueueDelay(double seconds) {
  const int64_t sample = static_cast<int64_t>(seconds * 1e9);
  const int64_t prev = queue_delay_ewma_ns_.load(std::memory_order_relaxed);
  const int64_t next =
      prev + static_cast<int64_t>(options_.queue_delay_ewma_alpha *
                                  static_cast<double>(sample - prev));
  queue_delay_ewma_ns_.store(next, std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    metrics_->histogram("service.queue_delay_seconds")->Observe(seconds);
  }
}

void SearchService::NoteOutcome(bool deadline_missed) {
  if (!options_.adaptive || options_.max_in_flight <= 0) return;
  if (deadline_missed) window_misses_.fetch_add(1, std::memory_order_relaxed);
  const int64_t done = window_queries_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (done % options_.aimd_window != 0) return;
  // End of a window: AIMD. Multiplicative decrease when the window
  // missed too often, +1 additive recovery on a clean window. Counter
  // races can at worst attribute a miss to the neighboring window.
  const int64_t misses = window_misses_.exchange(0, std::memory_order_relaxed);
  const double miss_fraction =
      static_cast<double>(misses) / static_cast<double>(options_.aimd_window);
  const int64_t cap = effective_cap_.load(std::memory_order_relaxed);
  int64_t next = cap;
  if (miss_fraction >= options_.aimd_miss_threshold) {
    next = std::max<int64_t>(options_.min_in_flight, cap / 2);
  } else if (cap < options_.max_in_flight) {
    next = cap + 1;
  }
  if (next != cap) {
    effective_cap_.store(next, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->gauge("service.effective_cap")->Set(next);
  }
}

QueryResponse SearchService::Execute(const QueryRequest& request,
                                     double queue_delay_seconds) {
  UpdateQueueDelay(queue_delay_seconds);
  WallTimer timer;
  QueryResponse response;
  const std::shared_ptr<const IndexEpoch> epoch = manager_->Acquire();
  response.epoch_version = epoch->version;
  const KJoinIndex& index = *epoch->index;

  JoinControl control;
  control.deadline_seconds = EffectiveDeadline(request);
  control.cancel_token = request.cancel_token;

  if (request.top_k > 0) {
    // < 0 is the "unset" sentinel; an explicit 0.0 must reach the index
    // (which rejects floors below tau) instead of silently becoming tau.
    const double min_similarity =
        request.min_similarity < 0.0 ? index.options().tau : request.min_similarity;
    response.status = index.SearchTopK(request.query, request.top_k, min_similarity, control,
                                       &response.hits, &response.stats);
  } else {
    response.status = index.Search(request.query, control, &response.hits, &response.stats);
  }
  response.seconds = timer.ElapsedSeconds();
  NoteOutcome(IsDeadlineExceeded(response.status));

  if (metrics_ != nullptr) {
    metrics_->counter("service.queries")->Increment();
    metrics_->counter("service.hits")->Increment(static_cast<int64_t>(response.hits.size()));
    metrics_->histogram("service.latency_seconds")->Observe(response.seconds);
    if (IsDeadlineExceeded(response.status)) {
      metrics_->counter("service.deadline_exceeded")->Increment();
    } else if (IsCancelled(response.status)) {
      metrics_->counter("service.cancelled")->Increment();
    } else if (!response.status.ok()) {
      metrics_->counter("service.errors")->Increment();
    }
  }
  return response;
}

void SearchService::Submit(QueryRequest request, std::function<void(QueryResponse)> done) {
  const double deadline = EffectiveDeadline(request);
  if (DeadlineInfeasible(deadline)) {
    done(Shed(ShedReason::kDeadlineInfeasible, deadline));
    return;
  }
  if (!Admit()) {
    done(Shed(ShedReason::kCap, deadline));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++async_outstanding_;
  }
  const auto admitted_at = std::chrono::steady_clock::now();
  auto task = [this, admitted_at, request = std::move(request),
               done = std::move(done)]() mutable {
    // Scope-guard the bookkeeping so it runs on every exit path — in
    // particular when `done` throws. Without it, a throwing callback
    // would skip the decrement and ~SearchService would wait forever.
    struct Finisher {
      SearchService* service;
      ~Finisher() {
        service->Release();
        std::lock_guard<std::mutex> lock(service->mu_);
        if (--service->async_outstanding_ == 0) service->drained_.notify_all();
      }
    } finisher{this};
    const double queue_delay =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - admitted_at)
            .count();
    QueryResponse response = Execute(request, queue_delay);
    try {
      done(std::move(response));
    } catch (...) {
      KJOIN_LOG(ERROR) << "Submit() completion callback threw; see the "
                          "callback contract in search_service.h";
      if (metrics_ != nullptr) metrics_->counter("service.callback_exceptions")->Increment();
    }
  };
  if (pool_->num_threads() > 1) {
    pool_->Schedule(std::move(task));
  } else {
    // A pool of 1 spawns no workers, so a scheduled task would sit in a
    // queue nothing drains and the destructor would wait forever. Run
    // inline instead, mirroring IndexManager::InsertBatch.
    task();
  }
}

QueryResponse SearchService::Search(const QueryRequest& request) {
  const double deadline = EffectiveDeadline(request);
  if (DeadlineInfeasible(deadline)) return Shed(ShedReason::kDeadlineInfeasible, deadline);
  if (!Admit()) return Shed(ShedReason::kCap, deadline);
  // Synchronous callers never queue; their zero wait pulls the EWMA back
  // down as load drains.
  QueryResponse response = Execute(request, 0.0);
  Release();
  return response;
}

std::vector<QueryResponse> SearchService::SearchBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<QueryResponse> responses(requests.size());
  pool_->ParallelFor(static_cast<int64_t>(requests.size()),
                     static_cast<int>(requests.size()),
                     [&](int /*shard*/, int64_t begin, int64_t end) {
                       for (int64_t i = begin; i < end; ++i) {
                         const double deadline = EffectiveDeadline(requests[i]);
                         if (DeadlineInfeasible(deadline)) {
                           responses[i] = Shed(ShedReason::kDeadlineInfeasible, deadline);
                           continue;
                         }
                         if (!Admit()) {
                           responses[i] = Shed(ShedReason::kCap, deadline);
                           continue;
                         }
                         responses[i] = Execute(requests[i], 0.0);
                         Release();
                       }
                     });
  return responses;
}

}  // namespace kjoin::serve
