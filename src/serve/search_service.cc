#include "serve/search_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"

namespace kjoin::serve {
namespace {

AdmissionOptions ToAdmissionOptions(const SearchServiceOptions& options) {
  AdmissionOptions admission;
  admission.max_in_flight = options.max_in_flight;
  admission.adaptive = options.adaptive;
  admission.min_in_flight = options.min_in_flight;
  admission.queue_delay_ewma_alpha = options.queue_delay_ewma_alpha;
  admission.aimd_window = options.aimd_window;
  admission.aimd_miss_threshold = options.aimd_miss_threshold;
  return admission;
}

}  // namespace

SearchService::SearchService(IndexManager* manager, ThreadPool* pool,
                             SearchServiceOptions options, MetricsRegistry* metrics)
    : manager_(manager),
      pool_(pool),
      options_(options),
      metrics_(metrics),
      admission_(ToAdmissionOptions(options), "service", metrics) {
  KJOIN_CHECK(manager_ != nullptr) << "SearchService needs an IndexManager";
  KJOIN_CHECK(pool_ != nullptr) << "SearchService needs a ThreadPool";
}

SearchService::~SearchService() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [&] { return async_outstanding_ == 0; });
}

double SearchService::EffectiveDeadline(const QueryRequest& request) const {
  return request.deadline_seconds < 0.0 ? options_.default_deadline_seconds
                                        : request.deadline_seconds;
}

QueryResponse SearchService::Shed(AdmissionController::Outcome outcome,
                                  double deadline_seconds) {
  QueryResponse response;
  response.status = admission_.ShedStatus(outcome, deadline_seconds);
  return response;
}

QueryResponse SearchService::Execute(const QueryRequest& request,
                                     double queue_delay_seconds) {
  admission_.RecordQueueDelay(queue_delay_seconds);
  WallTimer timer;
  QueryResponse response;
  const std::shared_ptr<const IndexEpoch> epoch = manager_->Acquire();
  response.epoch_version = epoch->version;
  const KJoinIndex& index = *epoch->index;

  JoinControl control;
  control.deadline_seconds = EffectiveDeadline(request);
  control.cancel_token = request.cancel_token;

  if (request.top_k > 0) {
    // < 0 is the "unset" sentinel; an explicit 0.0 must reach the index
    // (which rejects floors below tau) instead of silently becoming tau.
    const double min_similarity =
        request.min_similarity < 0.0 ? index.options().tau : request.min_similarity;
    response.status = index.SearchTopK(request.query, request.top_k, min_similarity, control,
                                       &response.hits, &response.stats);
  } else {
    response.status = index.Search(request.query, control, &response.hits, &response.stats);
  }
  response.seconds = timer.ElapsedSeconds();
  admission_.NoteOutcome(IsDeadlineExceeded(response.status));

  if (metrics_ != nullptr) {
    metrics_->counter("service.queries")->Increment();
    metrics_->counter("service.hits")->Increment(static_cast<int64_t>(response.hits.size()));
    metrics_->histogram("service.latency_seconds")->Observe(response.seconds);
    if (IsDeadlineExceeded(response.status)) {
      metrics_->counter("service.deadline_exceeded")->Increment();
    } else if (IsCancelled(response.status)) {
      metrics_->counter("service.cancelled")->Increment();
    } else if (!response.status.ok()) {
      metrics_->counter("service.errors")->Increment();
    }
  }
  return response;
}

void SearchService::Submit(QueryRequest request, std::function<void(QueryResponse)> done) {
  const double deadline = EffectiveDeadline(request);
  const AdmissionController::Outcome outcome = admission_.TryAdmit(deadline);
  if (outcome != AdmissionController::Outcome::kAdmitted) {
    done(Shed(outcome, deadline));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++async_outstanding_;
  }
  const auto admitted_at = std::chrono::steady_clock::now();
  auto task = [this, admitted_at, request = std::move(request),
               done = std::move(done)]() mutable {
    // Scope-guard the bookkeeping so it runs on every exit path — in
    // particular when `done` throws. Without it, a throwing callback
    // would skip the decrement and ~SearchService would wait forever.
    struct Finisher {
      SearchService* service;
      ~Finisher() {
        service->admission_.Release();
        std::lock_guard<std::mutex> lock(service->mu_);
        if (--service->async_outstanding_ == 0) service->drained_.notify_all();
      }
    } finisher{this};
    const double queue_delay =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - admitted_at)
            .count();
    QueryResponse response = Execute(request, queue_delay);
    try {
      done(std::move(response));
    } catch (...) {
      KJOIN_LOG(ERROR) << "Submit() completion callback threw; see the "
                          "callback contract in search_service.h";
      if (metrics_ != nullptr) metrics_->counter("service.callback_exceptions")->Increment();
    }
  };
  if (pool_->num_threads() > 1) {
    pool_->Schedule(std::move(task));
  } else {
    // A pool of 1 spawns no workers, so a scheduled task would sit in a
    // queue nothing drains and the destructor would wait forever. Run
    // inline instead, mirroring IndexManager::InsertBatch.
    task();
  }
}

QueryResponse SearchService::Search(const QueryRequest& request) {
  const double deadline = EffectiveDeadline(request);
  const AdmissionController::Outcome outcome = admission_.TryAdmit(deadline);
  if (outcome != AdmissionController::Outcome::kAdmitted) return Shed(outcome, deadline);
  // Synchronous callers never queue; their zero wait pulls the EWMA back
  // down as load drains.
  QueryResponse response = Execute(request, 0.0);
  admission_.Release();
  return response;
}

std::vector<QueryResponse> SearchService::SearchBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<QueryResponse> responses(requests.size());
  pool_->ParallelFor(static_cast<int64_t>(requests.size()),
                     static_cast<int>(requests.size()),
                     [&](int /*shard*/, int64_t begin, int64_t end) {
                       for (int64_t i = begin; i < end; ++i) {
                         const double deadline = EffectiveDeadline(requests[i]);
                         const AdmissionController::Outcome outcome =
                             admission_.TryAdmit(deadline);
                         if (outcome != AdmissionController::Outcome::kAdmitted) {
                           responses[i] = Shed(outcome, deadline);
                           continue;
                         }
                         responses[i] = Execute(requests[i], 0.0);
                         admission_.Release();
                       }
                     });
  return responses;
}

}  // namespace kjoin::serve
