#ifndef KJOIN_SERVE_WIRE_FORMAT_H_
#define KJOIN_SERVE_WIRE_FORMAT_H_

// Byte-level encoding shared by the serving-layer binary formats: the
// index snapshot (serve/snapshot.h) and the write-ahead log
// (serve/wal.h). Scalars are written little-endian by explicit shifts;
// bulk arrays go through memcpy in host layout (both formats are
// same-architecture serving artifacts, not interchange formats).
//
// Readers are bounds-checked: every overrun is reported as kDataLoss
// with the reader's label and byte offset; no read ever touches memory
// past the payload. Parsers validate all structural invariants (id
// ranges, monotonicity) so even a forged-CRC payload cannot index out
// of bounds.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/object.h"

namespace kjoin::serve {

// CRC32 (IEEE 802.3, the zlib polynomial) of `bytes`. Exposed so tests
// can forge and break checksums deliberately.
uint32_t Crc32(std::string_view bytes);

// Token ids are append-only interned (ObjectBuilder::InternToken), so a
// valid updated table must contain `current` as an exact prefix. Returns
// kInvalidArgument naming the first divergence — a shrinking table or a
// rewritten entry would silently re-map ids already baked into indexed
// objects. `context` labels the error message.
Status ValidateTokenExtension(const std::vector<std::string>& current,
                              const std::vector<std::string>& incoming,
                              std::string_view context);

namespace wire {

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Little(v, 4); }
  void U64(uint64_t v) { Little(v, 8); }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  // Tolerates data == nullptr when n == 0 (an empty vector's data()).
  void Raw(const void* data, size_t n) {
    if (n > 0) out_.append(static_cast<const char*>(data), n);
  }
  template <typename T>
  void RawVec(const std::vector<T>& v) {
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(T));
  }

  std::string Take() { return std::move(out_); }

 private:
  void Little(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }

  std::string out_;
};

// Bounds-checked reads over one payload. Every overrun is reported as
// kDataLoss with the label and byte offset.
class ByteReader {
 public:
  ByteReader(std::string_view data, std::string label)
      : data_(data), label_(std::move(label)) {}

  uint64_t offset() const { return pos_; }
  uint64_t remaining() const { return data_.size() - pos_; }
  const std::string& label() const { return label_; }

  Status U8(uint8_t* v) {
    KJOIN_RETURN_IF_ERROR(Need(1));
    *v = static_cast<uint8_t>(data_[pos_++]);
    return OkStatus();
  }
  Status U32(uint32_t* v) {
    uint64_t wide;
    KJOIN_RETURN_IF_ERROR(Little(4, &wide));
    *v = static_cast<uint32_t>(wide);
    return OkStatus();
  }
  Status U64(uint64_t* v) { return Little(8, v); }
  Status I32(int32_t* v) {
    uint32_t u;
    KJOIN_RETURN_IF_ERROR(U32(&u));
    *v = static_cast<int32_t>(u);
    return OkStatus();
  }
  Status I64(int64_t* v) {
    uint64_t u;
    KJOIN_RETURN_IF_ERROR(U64(&u));
    *v = static_cast<int64_t>(u);
    return OkStatus();
  }
  Status F64(double* v) {
    uint64_t bits;
    KJOIN_RETURN_IF_ERROR(U64(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return OkStatus();
  }
  Status Str(std::string* out) {
    uint32_t len;
    KJOIN_RETURN_IF_ERROR(U32(&len));
    KJOIN_RETURN_IF_ERROR(Need(len));
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return OkStatus();
  }
  Status Bytes(void* dst, uint64_t n) {
    KJOIN_RETURN_IF_ERROR(Need(n));
    // n == 0 arrives with dst == nullptr from an empty RawVec; memcpy's
    // contract (and UBSan) forbids the null even for zero bytes.
    if (n > 0) std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return OkStatus();
  }
  // Length-prefixed bulk array. The count is checked against the bytes
  // actually left before the resize, so a corrupt length can never drive
  // a multi-gigabyte allocation.
  template <typename T>
  Status RawVec(std::vector<T>* out) {
    uint64_t count;
    KJOIN_RETURN_IF_ERROR(U64(&count));
    if (count > remaining() / sizeof(T)) {
      return DataLossError(label_ + ": array of " + std::to_string(count) +
                           " elements does not fit in the " + std::to_string(remaining()) +
                           " bytes left at offset " + std::to_string(pos_));
    }
    out->resize(count);
    return Bytes(out->data(), count * sizeof(T));
  }

  // Remaining payload must be fully consumed — trailing garbage means the
  // writer and reader disagree about the layout.
  Status ExpectEnd() const {
    if (remaining() != 0) {
      return DataLossError(label_ + ": " + std::to_string(remaining()) +
                           " unexpected trailing bytes");
    }
    return OkStatus();
  }

 private:
  Status Little(int bytes, uint64_t* v) {
    KJOIN_RETURN_IF_ERROR(Need(bytes));
    uint64_t out = 0;
    for (int i = 0; i < bytes; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += bytes;
    *v = out;
    return OkStatus();
  }

  Status Need(uint64_t n) {
    if (remaining() < n) {
      return DataLossError(label_ + ": truncated at offset " + std::to_string(pos_) +
                           " (need " + std::to_string(n) + " bytes, have " +
                           std::to_string(remaining()) + ")");
    }
    return OkStatus();
  }

  std::string_view data_;
  uint64_t pos_ = 0;
  std::string label_;
};

// Length-prefixed list of length-prefixed strings.
void WriteStringList(const std::vector<std::string>& strings, ByteWriter* w);
// Reads what WriteStringList wrote. With `reject_duplicates`, a repeated
// string returns kInvalidArgument — interner tables feed
// ObjectBuilder::PreloadTokens, whose intern map CHECK-fails on a repeat.
Status ParseStringList(ByteReader& r, bool reject_duplicates,
                       std::vector<std::string>* out);

// Object collections (snapshot OBJS section, WAL insert batches).
// Interned tokens are stored as ids and restored from `tokens`; the rare
// hand-built element without an id carries its surface form inline.
void WriteObjectList(const std::vector<Object>& objects, ByteWriter* w);
// Structural validation while copying: token ids resolved against
// `tokens`, mapping nodes bounded by `num_nodes`, phi finite in [0, 1]
// and sorted descending.
Status ParseObjectList(ByteReader& r, const std::vector<std::string>& tokens,
                       int64_t num_nodes, std::vector<Object>* out);

}  // namespace wire
}  // namespace kjoin::serve

#endif  // KJOIN_SERVE_WIRE_FORMAT_H_
