#include "serve/wire_format.h"

#include <cmath>
#include <unordered_set>

namespace kjoin::serve {

// Derived arrays are serialized by memcpy, so their element widths are
// part of the formats built on this layer.
static_assert(sizeof(int) == 4, "wire format assumes 32-bit int");
static_assert(sizeof(double) == 8, "wire format assumes 64-bit double");

uint32_t Crc32(std::string_view bytes) {
  static const uint32_t* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status ValidateTokenExtension(const std::vector<std::string>& current,
                              const std::vector<std::string>& incoming,
                              std::string_view context) {
  const std::string where(context);
  if (incoming.size() < current.size()) {
    return InvalidArgumentError(
        where + ": token table shrank from " + std::to_string(current.size()) + " to " +
        std::to_string(incoming.size()) +
        " entries; token ids are append-only interned, pass the full updated table");
  }
  for (size_t i = 0; i < current.size(); ++i) {
    if (incoming[i] != current[i]) {
      return InvalidArgumentError(where + ": token table rewrites id " + std::to_string(i) +
                                  " ('" + current[i] + "' -> '" + incoming[i] +
                                  "'); interned ids are immutable");
    }
  }
  return OkStatus();
}

namespace wire {

void WriteStringList(const std::vector<std::string>& strings, ByteWriter* w) {
  w->U64(strings.size());
  for (const std::string& s : strings) w->Str(s);
}

Status ParseStringList(ByteReader& r, bool reject_duplicates,
                       std::vector<std::string>* out) {
  uint64_t count;
  KJOIN_RETURN_IF_ERROR(r.U64(&count));
  // Each entry costs at least its 4-byte length prefix.
  if (count > r.remaining() / 4) {
    return DataLossError(r.label() + ": string count " + std::to_string(count) +
                         " exceeds payload size");
  }
  out->assign(count, std::string());
  std::unordered_set<std::string_view> seen;
  if (reject_duplicates) seen.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    KJOIN_RETURN_IF_ERROR(r.Str(&(*out)[i]));
    if (reject_duplicates && !seen.insert((*out)[i]).second) {
      return InvalidArgumentError(r.label() + ": duplicate string '" + (*out)[i] +
                                  "' at entry " + std::to_string(i));
    }
  }
  return OkStatus();
}

void WriteObjectList(const std::vector<Object>& objects, ByteWriter* w) {
  w->U64(objects.size());
  for (const Object& o : objects) {
    w->I32(o.id);
    w->U32(static_cast<uint32_t>(o.elements.size()));
    for (const Element& e : o.elements) {
      w->I32(e.token_id);
      if (e.token_id < 0) w->Str(e.token);
      w->U32(static_cast<uint32_t>(e.mappings.size()));
      for (const ElementMapping& m : e.mappings) {
        w->I32(m.node);
        w->F64(m.phi);
      }
    }
  }
}

Status ParseObjectList(ByteReader& r, const std::vector<std::string>& tokens,
                       int64_t num_nodes, std::vector<Object>* out) {
  const std::string& label = r.label();
  uint64_t count;
  KJOIN_RETURN_IF_ERROR(r.U64(&count));
  if (count > r.remaining() / 8) {  // id + element count minimum
    return DataLossError(label + ": object count " + std::to_string(count) +
                         " exceeds payload size");
  }
  out->assign(count, Object());
  for (uint64_t i = 0; i < count; ++i) {
    Object& o = (*out)[i];
    uint32_t num_elements;
    KJOIN_RETURN_IF_ERROR(r.I32(&o.id));
    KJOIN_RETURN_IF_ERROR(r.U32(&num_elements));
    if (num_elements > r.remaining() / 8) {  // token id + mapping count minimum
      return DataLossError(label + ": object " + std::to_string(i) + " claims " +
                           std::to_string(num_elements) + " elements, payload too small");
    }
    o.elements.resize(num_elements);
    for (uint32_t j = 0; j < num_elements; ++j) {
      Element& e = o.elements[j];
      KJOIN_RETURN_IF_ERROR(r.I32(&e.token_id));
      if (e.token_id < 0) {
        if (e.token_id != -1) {
          return InvalidArgumentError(label + ": object " + std::to_string(i) +
                                      " has invalid token id " + std::to_string(e.token_id));
        }
        KJOIN_RETURN_IF_ERROR(r.Str(&e.token));
      } else if (static_cast<size_t>(e.token_id) >= tokens.size()) {
        return InvalidArgumentError(label + ": object " + std::to_string(i) + " token id " +
                                    std::to_string(e.token_id) + " outside the table of " +
                                    std::to_string(tokens.size()) + " tokens");
      } else {
        e.token = tokens[e.token_id];
      }
      uint32_t num_mappings;
      KJOIN_RETURN_IF_ERROR(r.U32(&num_mappings));
      if (num_mappings > r.remaining() / 12) {  // node + phi per mapping
        return DataLossError(label + ": element claims " + std::to_string(num_mappings) +
                             " mappings, payload too small");
      }
      e.mappings.resize(num_mappings);
      double previous_phi = 2.0;
      for (uint32_t k = 0; k < num_mappings; ++k) {
        ElementMapping& m = e.mappings[k];
        KJOIN_RETURN_IF_ERROR(r.I32(&m.node));
        KJOIN_RETURN_IF_ERROR(r.F64(&m.phi));
        if (m.node < 0 || m.node >= num_nodes) {
          return InvalidArgumentError(label + ": mapping node " + std::to_string(m.node) +
                                      " outside hierarchy of " + std::to_string(num_nodes) +
                                      " nodes");
        }
        if (!std::isfinite(m.phi) || m.phi < 0.0 || m.phi > 1.0) {
          return InvalidArgumentError(label + ": mapping confidence out of [0, 1]");
        }
        if (m.phi > previous_phi) {
          return InvalidArgumentError(label + ": element mappings not sorted by phi");
        }
        previous_phi = m.phi;
      }
    }
  }
  return OkStatus();
}

}  // namespace wire
}  // namespace kjoin::serve
