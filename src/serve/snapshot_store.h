#ifndef KJOIN_SERVE_SNAPSHOT_STORE_H_
#define KJOIN_SERVE_SNAPSHOT_STORE_H_

// Versioned snapshot *generations* with automatic failover on recovery.
//
// A single snapshot file is a single point of failure: one torn sector
// and the process cannot cold-start. The store keeps the last N
// published generations in one directory —
//
//   store/
//     gen-000000000041.kjsn
//     gen-000000000042.kjsn
//     gen-000000000043.kjsn            <- newest
//     gen-000000000040.kjsn.quarantine <- corrupt, set aside by recovery
//     MANIFEST                         <- advisory, see below
//
// — so recovery can fall back: it scans newest-first, fully validates
// each candidate (header, section CRCs, structural invariants — the
// snapshot loader's normal paranoia), renames any corrupt or truncated
// generation to `<name>.quarantine` (kept for forensics, never loaded
// again), and serves from the newest generation that passes. Startup
// fails only when *no* generation is loadable (kNotFound).
//
// Publishes are crash-atomic (tmp + fsync + rename + parent-dir fsync,
// serve/fs_util.h): a file under a gen-*.kjsn name is always a complete
// snapshot, so the failure model recovery handles is bit rot and torn
// hardware writes, not half-finished publishes. After each publish the
// store prunes to the newest `retain` generations (durable removes).
//
// WAL interplay: a fallback generation is older than the newest, so the
// WAL must retain every record past the *oldest retained* generation's
// durable sequence, not the newest's. Publish() reports that floor as
// `wal_truncate_floor` (0 = unknown, keep everything); IndexManager's
// store-backed SaveSnapshot truncates to it, and replay skips records a
// given generation already covers (serve/wal.h).
//
// MANIFEST is advisory observability (one line per retained generation:
// name, durable sequence, payload CRC32, byte size), rewritten
// atomically after each publish. Recovery never trusts it — the files'
// own checksums are the source of truth — so a stale or missing
// manifest is harmless.
//
// Metrics (when a registry is given): store.publishes, store.pruned,
// store.quarantined, store.recoveries.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "serve/snapshot.h"

namespace kjoin::serve {

struct SnapshotStoreOptions {
  // Generations kept after each publish (>= 1). More survives more
  // independent corruption events; each costs a full snapshot's disk.
  int retain = 3;
};

// One on-disk generation, newest = highest number.
struct SnapshotGeneration {
  int64_t generation = 0;
  std::string path;
};

struct PublishResult {
  int64_t generation = 0;
  std::string path;
  // Highest WAL sequence droppable without stranding any retained
  // generation: the minimum durable sequence across retained
  // generations when all are known, 0 (drop nothing) otherwise — the
  // store only learns a pre-existing generation's sequence by loading
  // it, so the floor stays conservative until the retained window is
  // entirely generations this process published or recovered.
  int64_t wal_truncate_floor = 0;
};

struct RecoverResult {
  LoadedIndex loaded;
  int64_t generation = 0;
  std::string path;
  // Corrupt newer generations set aside before one loaded.
  int quarantined = 0;
};

class SnapshotStore {
 public:
  // Opens (creating if absent) the store directory and indexes the
  // generations already in it. `metrics` (not owned, may be null)
  // receives the store.* counters.
  static StatusOr<std::unique_ptr<SnapshotStore>> Open(
      const std::string& dir, SnapshotStoreOptions options = {},
      MetricsRegistry* metrics = nullptr);

  // Serializes `input` and publishes it as the next generation, then
  // prunes to the newest `retain` generations. On failure (including
  // injected serve/write and serve/dir_fsync faults) no new generation
  // is visible — a partially written publish can never be loaded.
  StatusOr<PublishResult> Publish(const SnapshotInput& input);

  // Newest-first failover recovery, as described above. kNotFound when
  // the store holds no loadable generation.
  StatusOr<RecoverResult> Recover();

  // Retained generations, ascending (quarantined files excluded).
  std::vector<SnapshotGeneration> List() const;

  const std::string& dir() const { return dir_; }

 private:
  SnapshotStore(std::string dir, SnapshotStoreOptions options, MetricsRegistry* metrics);

  // Scans dir_ for gen-*.kjsn files (requires mu_).
  std::vector<SnapshotGeneration> ListLocked() const;
  // min durable_seq across `retained` when every one is known, else 0.
  int64_t TruncateFloorLocked(const std::vector<SnapshotGeneration>& retained) const;
  // Rewrites MANIFEST from what the store knows (requires mu_;
  // advisory — failure is logged, never propagated).
  void WriteManifestLocked(const std::vector<SnapshotGeneration>& retained) const;

  const std::string dir_;
  const SnapshotStoreOptions options_;
  MetricsRegistry* const metrics_;

  mutable std::mutex mu_;
  int64_t next_generation_ = 1;  // guarded by mu_
  // Durable sequence (and payload CRC, for the manifest) of generations
  // this process published or successfully recovered; pre-existing
  // generations are absent until loaded. Guarded by mu_.
  struct KnownGeneration {
    int64_t durable_seq = 0;
    uint32_t crc32 = 0;
    uint64_t bytes = 0;
  };
  std::map<int64_t, KnownGeneration> known_;
};

}  // namespace kjoin::serve

#endif  // KJOIN_SERVE_SNAPSHOT_STORE_H_
