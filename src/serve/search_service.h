#ifndef KJOIN_SERVE_SEARCH_SERVICE_H_
#define KJOIN_SERVE_SEARCH_SERVICE_H_

// Concurrent query execution over the live index, with the server-side
// guard rails: per-query deadlines, cooperative cancellation, admission
// control, and latency/outcome metrics.
//
// Every query acquires the IndexManager's current epoch once and runs
// against that consistent view — a swap mid-query is invisible. Admission
// control bounds the number of queries admitted at once; beyond the cap,
// Submit sheds immediately with kResourceExhausted instead of building an
// unbounded queue (the caller retries or degrades). Deadlines ride the
// index's controlled search path: a tripped query returns the hits proven
// so far with kDeadlineExceeded.
//
// Admission is *adaptive* by default and lives in the shared
// AdmissionController (serve/admission.h, also behind the sharded
// ShardRouter): a queue-delay EWMA sheds deadline-infeasible requests
// before they queue, and an AIMD controller walks an effective in-flight
// cap between min_in_flight and max_in_flight. Shed responses carry the
// load picture (in-flight, effective cap) and a machine-readable
// retry_after_ms= hint; service.shed_total breaks out by reason
// (service.shed_cap / service.shed_deadline_infeasible), and the
// service.effective_cap gauge tracks the controller
// (docs/robustness.md, "Failure modes and degraded operation").
//
//   SearchService service(&manager, &pool, {.max_in_flight = 64,
//                                           .default_deadline_seconds = 0.1},
//                         &metrics);
//   service.Submit(std::move(request), [](QueryResponse r) { ... });
//   auto responses = service.SearchBatch(std::move(requests));  // sync

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/kjoin_index.h"
#include "serve/admission.h"
#include "serve/index_manager.h"

namespace kjoin::serve {

struct SearchServiceOptions {
  // Queries admitted (queued + executing) at once; above the cap Submit /
  // SearchBatch shed with kResourceExhausted. <= 0 means unbounded (and
  // disables the adaptive controller — there is no cap to adapt).
  int max_in_flight = 64;
  // Deadline applied when a request does not set its own; <= 0 = none.
  double default_deadline_seconds = 0.0;
  // Adaptive admission (see the header comment). Off = the fixed
  // max_in_flight cap and no early deadline-infeasible shedding.
  bool adaptive = true;
  // AIMD floor: the effective cap never drops below this, so a miss
  // storm cannot shed the service to zero.
  int min_in_flight = 4;
  // Weight of the newest queue-delay sample in the EWMA (0..1].
  double queue_delay_ewma_alpha = 0.2;
  // Queries per AIMD adjustment window.
  int aimd_window = 32;
  // Window deadline-miss fraction at or above which the cap is halved.
  double aimd_miss_threshold = 0.5;
};

struct QueryRequest {
  // Must be built by a builder token-id-compatible with the indexed
  // collection (MakeQueryPipeline for snapshot-loaded stacks).
  Object query;
  // > 0 = top-k search; 0 = all objects above the index's threshold.
  int32_t top_k = 0;
  // Top-k similarity floor; < 0 (the default) uses the index's
  // configured tau. An explicit value — including 0.0 — is forwarded to
  // the index, which validates it (values below tau return
  // kInvalidArgument). The sentinel mirrors deadline_seconds below.
  double min_similarity = -1.0;
  // Per-request deadline; < 0 = service default, 0 = explicitly none.
  double deadline_seconds = -1.0;
  // Optional external cancel signal; not owned, must outlive the query.
  const CancelToken* cancel_token = nullptr;
};

struct QueryResponse {
  // OK, or why the query stopped (kResourceExhausted = shed before
  // execution, kDeadlineExceeded / kCancelled = partial hits inside).
  Status status;
  std::vector<SearchHit> hits;
  SearchStats stats;
  // Epoch the query ran against (0 when shed).
  int64_t epoch_version = 0;
  double seconds = 0.0;
};

class SearchService {
 public:
  // `manager`, `pool` and `metrics` are borrowed and must outlive the
  // service; `metrics` may be null. Metrics reported: service.queries,
  // service.shed (legacy total, kept for dashboards), service.shed_total
  // and its per-reason breakdown service.shed_cap /
  // service.shed_deadline_infeasible, service.deadline_exceeded,
  // service.cancelled, service.errors, service.hits (counters),
  // service.effective_cap (gauge), service.latency_seconds and
  // service.queue_delay_seconds (histograms).
  SearchService(IndexManager* manager, ThreadPool* pool, SearchServiceOptions options = {},
                MetricsRegistry* metrics = nullptr);

  // Waits for every Submit()ted query to finish.
  ~SearchService();

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  // Asynchronous: runs the query on the pool and invokes `done` with the
  // response from a pool thread. A shed query invokes `done` inline with
  // kResourceExhausted. On a pool with no background lane (num_threads
  // == 1) the query runs inline on the calling thread instead.
  //
  // Callback contract: `done` should not throw. If it does anyway, the
  // exception is caught and logged (service.callback_exceptions counts
  // them) — the admission slot and the destructor's outstanding count
  // are released regardless, so one bad callback can neither leak
  // capacity nor hang ~SearchService.
  void Submit(QueryRequest request, std::function<void(QueryResponse)> done);

  // Synchronous single query on the calling thread (still admission-
  // counted, so a caller storm sheds the same way).
  QueryResponse Search(const QueryRequest& request);

  // Synchronous batch: fans the requests out across the pool with the
  // caller participating, and returns responses in request order.
  std::vector<QueryResponse> SearchBatch(const std::vector<QueryRequest>& requests);

  // Queries currently admitted (approximate, for monitoring).
  int64_t in_flight() const { return admission_.in_flight(); }
  // The AIMD controller's current cap (== max_in_flight when adaptive is
  // off or the controller has not yet backed off).
  int64_t effective_cap() const { return admission_.effective_cap(); }
  // Estimated admit -> execute wait, the deadline-infeasible signal.
  double queue_delay_ewma_seconds() const { return admission_.queue_delay_ewma_seconds(); }
  // Test hook: plants the queue-delay estimate so deadline-infeasible
  // shedding is exercisable without real queue pressure.
  void SetQueueDelayEwmaForTest(double seconds) {
    admission_.SetQueueDelayEwmaForTest(seconds);
  }

 private:
  // The request's effective deadline (service default applied); <= 0 =
  // none.
  double EffectiveDeadline(const QueryRequest& request) const;
  QueryResponse Shed(AdmissionController::Outcome outcome, double deadline_seconds);
  QueryResponse Execute(const QueryRequest& request, double queue_delay_seconds);

  IndexManager* manager_;
  ThreadPool* pool_;
  SearchServiceOptions options_;
  MetricsRegistry* metrics_;
  AdmissionController admission_;

  mutable std::mutex mu_;
  std::condition_variable drained_;  // signalled when an async query finishes
  int64_t async_outstanding_ = 0;    // guarded by mu_
};

}  // namespace kjoin::serve

#endif  // KJOIN_SERVE_SEARCH_SERVICE_H_
