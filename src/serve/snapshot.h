#ifndef KJOIN_SERVE_SNAPSHOT_H_
#define KJOIN_SERVE_SNAPSHOT_H_

// Versioned, checksummed binary snapshots of a prepared search stack.
//
// Building a KJoinIndex from text is the expensive half of cold start:
// parse the hierarchy, tokenize and entity-match every record, generate
// full signature sets, sort them by document frequency, build the LCA
// sparse table. A snapshot persists the *prepared* stack — hierarchy CSR
// arrays, LCA tables, the token interner, the built object collection and
// the full-signature inverted index — so a serving process reconstructs
// the index in O(file size): no tokenize, no DF sort, no RMQ build
// (docs/serving.md has the format layout and the measured speedup).
//
// File layout (all integers little-endian, fixed width):
//
//   FileHeader   { magic "KJSN", format version, section count,
//                  CRC32 of the section table }
//   SectionEntry × count   { tag, payload CRC32, offset, size }
//   payloads...
//
// Format version 2 adds the DURA section: the epoch's durable sequence
// number (the last WAL record folded into the snapshot, see serve/wal.h)
// and the tombstoned object indexes. A delta-layered index (see
// core/kjoin_index.h) is flattened before serializing, so a snapshot is
// always a single flat layer.
//
// Format version 3 re-lays the POST section as the CSR postings form
// (core/posting_store.h): one SigId key array (ascending), one
// list-offset array, one flat doc array — written straight off the frozen
// store, loaded by a linear repack into a PostingStore. No map is built
// on either side.
//
// Every section payload carries its own CRC32; the loader verifies the
// header, the table checksum and each section checksum before parsing,
// then validates all structural invariants (id ranges, array shapes)
// while copying — corrupt, truncated or version-skewed files return
// kDataLoss / kInvalidArgument with byte-offset context, never crash.
// Endianness is not converted: snapshots are a same-architecture serving
// format (like a trained-model checkpoint), not an interchange format.
//
//   KJOIN_RETURN_IF_ERROR(SaveIndexSnapshot({&index, builder.TokenTable(),
//                                            dataset.synonyms}, path));
//   KJOIN_ASSIGN_OR_RETURN(LoadedIndex loaded, LoadIndexSnapshot(path));
//   loaded.index->Search(query);

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "core/kjoin_index.h"
#include "core/object.h"
#include "text/entity_matcher.h"

namespace kjoin::serve {

// Bumped whenever the payload layout changes; the loader rejects other
// versions with kInvalidArgument (no cross-version migration — re-save).
inline constexpr uint32_t kSnapshotFormatVersion = 3;

// CRC32 (IEEE 802.3, the zlib polynomial) of `bytes`. Exposed so tests
// can forge and break section checksums deliberately (defined in
// serve/wire_format.cc, shared with the WAL).
uint32_t Crc32(std::string_view bytes);

// What a snapshot serializes. `index` is required. `tokens` is the
// ObjectBuilder's table (ObjectBuilder::TokenTable()); when empty it is
// reconstructed from the indexed objects, which is sufficient for search
// correctness (tokens interned but absent from every indexed object
// cannot produce a match). `synonyms` feed the restored EntityMatcher.
struct SnapshotInput {
  const KJoinIndex* index = nullptr;
  std::vector<std::string> tokens;
  std::vector<std::pair<std::string, std::string>> synonyms;
  // Sequence number of the last WAL record this state includes; WAL
  // records above it are replayed on recovery (serve/wal.h). 0 for a
  // stack that never had a WAL.
  int64_t durable_seq = 0;
};

// A fully reconstructed serving stack. The index holds raw references to
// the hierarchy (and shares the LCA tables), so keep the bundle intact —
// members are ordered so the index is destroyed before what it points at.
struct LoadedIndex {
  std::shared_ptr<const Hierarchy> hierarchy;
  std::vector<std::string> tokens;
  std::vector<std::pair<std::string, std::string>> synonyms;
  std::unique_ptr<KJoinIndex> index;
  uint64_t file_bytes = 0;
  // The snapshot's DURA sequence (see SnapshotInput::durable_seq).
  int64_t durable_seq = 0;
};

// Renders the snapshot bytes in memory (the file format, exactly).
std::string SerializeIndexSnapshot(const SnapshotInput& input);

// Serializes and publishes atomically: tmp write, fsync, rename, parent
// directory fsync (serve/fs_util.h). On failure — including injected
// serve/write and serve/dir_fsync faults — any previous snapshot at
// `path` is untouched and no torn file appears under the final name.
Status SaveIndexSnapshot(const SnapshotInput& input, const std::string& path);

// Memory-maps `path` and reconstructs the stack. When `metrics` is given,
// records snapshot.load_seconds (histogram), snapshot.loads and
// snapshot.load_bytes (counters).
StatusOr<LoadedIndex> LoadIndexSnapshot(const std::string& path,
                                        MetricsRegistry* metrics = nullptr);

// Same loader over an in-memory buffer (tests and the fuzz harness).
// `source_name` labels error messages.
StatusOr<LoadedIndex> LoadIndexSnapshotFromBytes(std::string_view bytes,
                                                 std::string_view source_name = "<bytes>",
                                                 MetricsRegistry* metrics = nullptr);

// Query-side companions for a loaded collection: an EntityMatcher over
// the loaded hierarchy (with the snapshot's synonyms registered) and an
// ObjectBuilder pre-seeded with the snapshot's token table, so queries it
// builds are token-id-compatible with the indexed objects. Mapping mode
// follows the index's plus_mode; min_phi <= 0 defaults to the index's δ.
struct QueryPipeline {
  std::unique_ptr<EntityMatcher> matcher;
  std::unique_ptr<ObjectBuilder> builder;
};
QueryPipeline MakeQueryPipeline(const LoadedIndex& loaded, double min_phi = 0.0);

}  // namespace kjoin::serve

#endif  // KJOIN_SERVE_SNAPSHOT_H_
