#ifndef KJOIN_SERVE_STATUS_DETAIL_H_
#define KJOIN_SERVE_STATUS_DETAIL_H_

// Structured details carried inside Status messages.
//
// A Status is a code plus a human-readable message, but some serving
// responses also carry machine-readable load hints — most importantly
// retry_after_ms, attached by the admission controller's sheds
// (kResourceExhausted) and the degraded read-only write rejections
// (kUnavailable). Before this header, every producer formatted the hint
// by hand and every consumer re-parsed the message with its own string
// search; now both sides go through one place:
//
//   return UnavailableError("index is read-only; " + RetryAfterField(42));
//   ...
//   if (std::optional<int64_t> ms = RetryAfterMs(status)) Backoff(*ms);
//
// The field grammar is "retry_after_ms=<decimal>" anywhere in the
// message, which keeps the hint readable in logs while staying parseable
// — the network protocol (net/protocol.h) lifts it into its own wire
// field so remote clients never see the string form at all.

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"

namespace kjoin::serve {

// "retry_after_ms=<ms>" — the one formatter every producer embeds.
std::string RetryAfterField(int64_t ms);

// Extracts the retry_after_ms hint from `status`'s message. nullopt when
// the field is absent or malformed (non-decimal, overflow) — callers
// fall back to their own backoff policy.
std::optional<int64_t> RetryAfterMs(const Status& status);

// True for the codes whose responses are worth retrying after a backoff:
// admission sheds (kResourceExhausted) and degraded read-only /
// draining-server rejections (kUnavailable). Deadline trips and caller
// cancellations are not retryable — the caller chose the budget.
bool IsRetryable(const Status& status);

}  // namespace kjoin::serve

#endif  // KJOIN_SERVE_STATUS_DETAIL_H_
