#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.h"

namespace kjoin::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  KJOIN_CHECK(epoll_fd_ >= 0) << "epoll_create1 failed: " << std::strerror(errno);
  // Non-blocking so a spurious wakeup's read never hangs the loop.
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  KJOIN_CHECK(wake_fd_ >= 0) << "eventfd failed: " << std::strerror(errno);
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  KJOIN_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0)
      << "epoll_ctl(wake) failed: " << std::strerror(errno);
}

EventLoop::~EventLoop() {
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

Status EventLoop::Add(int fd, uint32_t events, EventHandler* handler) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return InternalError(std::string("epoll_ctl(ADD) failed: ") + std::strerror(errno));
  }
  handlers_[fd] = handler;
  return OkStatus();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return InternalError(std::string("epoll_ctl(MOD) failed: ") + std::strerror(errno));
  }
  return OkStatus();
}

void EventLoop::Remove(int fd) {
  // The fd may already be gone (closed elsewhere); epoll cleans up on
  // close anyway, so a failed DEL is not an error worth surfacing.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::Wake() {
  const uint64_t one = 1;
  // write(2) is async-signal-safe; a full counter (EAGAIN) already
  // guarantees a pending wakeup, so the result is ignorable.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::DrainWake() {
  uint64_t count;
  while (::read(wake_fd_, &count, sizeof(count)) > 0) {
  }
}

void EventLoop::RunQueuedTasks() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks.swap(tasks_);
  }
  for (std::function<void()>& task : tasks) task();
}

void EventLoop::Stop() {
  running_.store(false, std::memory_order_release);
  Wake();
}

void EventLoop::RunInLoop(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks_.push_back(std::move(task));
  }
  Wake();
}

void EventLoop::SetTicker(double interval_seconds, std::function<void()> tick) {
  tick_interval_seconds_ = interval_seconds;
  tick_ = std::move(tick);
}

void EventLoop::Run() {
  using Clock = std::chrono::steady_clock;
  loop_thread_id_.store(std::this_thread::get_id(), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  const bool has_ticker = tick_ && tick_interval_seconds_ > 0.0;
  const int tick_ms =
      has_ticker ? std::max(1, static_cast<int>(tick_interval_seconds_ * 1e3)) : -1;
  Clock::time_point last_tick = Clock::now();

  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, tick_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      KJOIN_LOG(ERROR) << "epoll_wait failed: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        DrainWake();
        continue;
      }
      // Resolve through the map at dispatch time: a handler earlier in
      // this batch may have removed this fd.
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      it->second->OnEvent(events[i].events);
    }
    RunQueuedTasks();
    if (has_ticker) {
      const Clock::time_point now = Clock::now();
      if (std::chrono::duration<double>(now - last_tick).count() >=
          tick_interval_seconds_) {
        last_tick = now;
        tick_();
      }
    }
  }
  // Tasks handed over concurrently with Stop() must still run — the
  // server's drain path queues its final flushes this way.
  RunQueuedTasks();
}

}  // namespace kjoin::net
