#include "net/protocol.h"

#include <cstring>

#include "serve/status_detail.h"
#include "serve/wire_format.h"

namespace kjoin::net {

using serve::wire::ByteReader;
using serve::wire::ByteWriter;

bool IsValidRequestKind(uint8_t raw) {
  return raw >= static_cast<uint8_t>(RequestKind::kSearch) &&
         raw <= static_cast<uint8_t>(RequestKind::kMetrics);
}

std::string_view RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kSearch:
      return "SEARCH";
    case RequestKind::kTopK:
      return "TOPK";
    case RequestKind::kInsert:
      return "INSERT";
    case RequestKind::kDelete:
      return "DELETE";
    case RequestKind::kHealth:
      return "HEALTH";
    case RequestKind::kMetrics:
      return "METRICS";
  }
  return "UNKNOWN";
}

std::string EncodeRequestPayload(const NetRequest& request) {
  ByteWriter w;
  w.U64(request.id);
  w.U8(static_cast<uint8_t>(request.kind));
  w.U64(request.deadline_ms);
  switch (request.kind) {
    case RequestKind::kSearch:
      w.F64(request.min_similarity);
      serve::wire::WriteStringList(request.query_tokens, &w);
      break;
    case RequestKind::kTopK:
      w.F64(request.min_similarity);
      w.I32(request.top_k);
      serve::wire::WriteStringList(request.query_tokens, &w);
      break;
    case RequestKind::kInsert:
      w.U64(request.inserts.size());
      for (const InsertRecord& record : request.inserts) {
        w.I32(record.external_id);
        serve::wire::WriteStringList(record.tokens, &w);
      }
      break;
    case RequestKind::kDelete:
      w.RawVec(request.delete_indexes);
      break;
    case RequestKind::kHealth:
    case RequestKind::kMetrics:
      break;
  }
  return w.Take();
}

Status DecodeRequestPayload(std::string_view payload, NetRequest* out) {
  ByteReader r(payload, "net request");
  *out = NetRequest();
  KJOIN_RETURN_IF_ERROR(r.U64(&out->id));
  uint8_t raw_kind;
  KJOIN_RETURN_IF_ERROR(r.U8(&raw_kind));
  if (!IsValidRequestKind(raw_kind)) {
    return InvalidArgumentError("net request: unknown request kind " +
                                std::to_string(raw_kind));
  }
  out->kind = static_cast<RequestKind>(raw_kind);
  KJOIN_RETURN_IF_ERROR(r.U64(&out->deadline_ms));
  switch (out->kind) {
    case RequestKind::kSearch:
      KJOIN_RETURN_IF_ERROR(r.F64(&out->min_similarity));
      KJOIN_RETURN_IF_ERROR(
          serve::wire::ParseStringList(r, /*reject_duplicates=*/false, &out->query_tokens));
      break;
    case RequestKind::kTopK:
      KJOIN_RETURN_IF_ERROR(r.F64(&out->min_similarity));
      KJOIN_RETURN_IF_ERROR(r.I32(&out->top_k));
      if (out->top_k < 1) {
        return InvalidArgumentError("net request: TOPK needs top_k >= 1, got " +
                                    std::to_string(out->top_k));
      }
      KJOIN_RETURN_IF_ERROR(
          serve::wire::ParseStringList(r, /*reject_duplicates=*/false, &out->query_tokens));
      break;
    case RequestKind::kInsert: {
      uint64_t count;
      KJOIN_RETURN_IF_ERROR(r.U64(&count));
      // Each record costs at least its 4-byte id plus the token list's
      // 8-byte count, so a forged count cannot drive a giant resize.
      if (count > r.remaining() / 12) {
        return DataLossError("net request: insert count " + std::to_string(count) +
                             " exceeds payload size");
      }
      out->inserts.resize(count);
      for (uint64_t i = 0; i < count; ++i) {
        KJOIN_RETURN_IF_ERROR(r.I32(&out->inserts[i].external_id));
        KJOIN_RETURN_IF_ERROR(serve::wire::ParseStringList(r, /*reject_duplicates=*/false,
                                                           &out->inserts[i].tokens));
      }
      break;
    }
    case RequestKind::kDelete:
      KJOIN_RETURN_IF_ERROR(r.RawVec(&out->delete_indexes));
      break;
    case RequestKind::kHealth:
    case RequestKind::kMetrics:
      break;
  }
  return r.ExpectEnd();
}

std::string EncodeResponsePayload(const NetResponse& response) {
  ByteWriter w;
  w.U64(response.id);
  w.U32(response.code);
  w.I64(response.retry_after_ms);
  w.Str(response.message);
  w.U64(response.hits.size());
  for (const SearchHit& hit : response.hits) {
    w.I32(hit.object_index);
    w.F64(hit.similarity);
  }
  w.I64(response.epoch_version);
  w.I64(response.objects_after_insert);
  w.Str(response.text);
  return w.Take();
}

Status DecodeResponsePayload(std::string_view payload, NetResponse* out) {
  ByteReader r(payload, "net response");
  *out = NetResponse();
  KJOIN_RETURN_IF_ERROR(r.U64(&out->id));
  KJOIN_RETURN_IF_ERROR(r.U32(&out->code));
  KJOIN_RETURN_IF_ERROR(r.I64(&out->retry_after_ms));
  KJOIN_RETURN_IF_ERROR(r.Str(&out->message));
  uint64_t hit_count;
  KJOIN_RETURN_IF_ERROR(r.U64(&hit_count));
  // Each hit is 12 payload bytes (i32 + f64).
  if (hit_count > r.remaining() / 12) {
    return DataLossError("net response: hit count " + std::to_string(hit_count) +
                         " exceeds payload size");
  }
  out->hits.resize(hit_count);
  for (uint64_t i = 0; i < hit_count; ++i) {
    KJOIN_RETURN_IF_ERROR(r.I32(&out->hits[i].object_index));
    KJOIN_RETURN_IF_ERROR(r.F64(&out->hits[i].similarity));
  }
  KJOIN_RETURN_IF_ERROR(r.I64(&out->epoch_version));
  KJOIN_RETURN_IF_ERROR(r.I64(&out->objects_after_insert));
  KJOIN_RETURN_IF_ERROR(r.Str(&out->text));
  return r.ExpectEnd();
}

std::string WrapFrame(std::string_view payload) {
  ByteWriter w;
  w.Raw(kFrameMagic, sizeof(kFrameMagic));
  w.U32(serve::Crc32(payload));
  w.U64(payload.size());
  w.Raw(payload.data(), payload.size());
  return w.Take();
}

NetResponse ResponseFromStatus(uint64_t id, const Status& status) {
  NetResponse response;
  response.id = id;
  response.code = static_cast<uint32_t>(status.code());
  response.message = status.message();
  if (std::optional<int64_t> hint = serve::RetryAfterMs(status)) {
    response.retry_after_ms = *hint;
  }
  return response;
}

void FrameDecoder::Append(const char* data, size_t n) {
  if (!error_.ok()) return;
  // Drop the already-consumed prefix before growing, so a long-lived
  // connection's buffer stays bounded by one frame plus readahead.
  if (consumed_ > 0 && (consumed_ >= buffer_.size() || consumed_ > (64u << 10))) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

StatusOr<bool> FrameDecoder::Next(std::string* payload) {
  if (!error_.ok()) return error_;
  const std::string_view pending =
      std::string_view(buffer_).substr(consumed_);
  if (pending.size() < kFrameHeaderBytes) return false;
  if (std::memcmp(pending.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    error_ = DataLossError("net frame: bad magic (not a KJNP stream)");
    return error_;
  }
  uint32_t expected_crc = 0;
  uint64_t size = 0;
  for (int i = 0; i < 4; ++i) {
    expected_crc |= static_cast<uint32_t>(static_cast<uint8_t>(pending[4 + i])) << (8 * i);
  }
  for (int i = 0; i < 8; ++i) {
    size |= static_cast<uint64_t>(static_cast<uint8_t>(pending[8 + i])) << (8 * i);
  }
  if (size > max_frame_bytes_) {
    error_ = DataLossError("net frame: payload of " + std::to_string(size) +
                           " bytes exceeds the " + std::to_string(max_frame_bytes_) +
                           "-byte frame cap");
    return error_;
  }
  if (pending.size() < kFrameHeaderBytes + size) return false;
  const std::string_view body = pending.substr(kFrameHeaderBytes, size);
  const uint32_t actual_crc = serve::Crc32(body);
  if (actual_crc != expected_crc) {
    error_ = DataLossError("net frame: payload CRC mismatch (wire says " +
                           std::to_string(expected_crc) + ", computed " +
                           std::to_string(actual_crc) + ")");
    return error_;
  }
  payload->assign(body.data(), body.size());
  consumed_ += kFrameHeaderBytes + size;
  return true;
}

}  // namespace kjoin::net
