#ifndef KJOIN_NET_PROTOCOL_H_
#define KJOIN_NET_PROTOCOL_H_

// KJNP — the K-Join network protocol: a CRC-framed binary request/
// response format for the epoll serving tier (net/server.h).
//
// Frame layout (all integers little-endian, same ByteWriter/ByteReader
// primitives as the snapshot and WAL formats in serve/wire_format.h):
//
//   offset  size  field
//   0       4     magic "KJNP"
//   4       4     u32 CRC32 of the payload bytes (IEEE 802.3)
//   8       8     u64 payload size in bytes
//   16      n     payload
//
// A frame carries either a request or a response payload; direction
// decides which (clients write requests, servers write responses).
//
// Request payload:
//   u64 id            — caller-chosen, echoed verbatim in the response;
//                       lets clients pipeline and match out of order
//   u8  kind          — RequestKind
//   u64 deadline_ms   — query budget in milliseconds; 0 = no deadline
//   ... kind-specific body (see NetRequest)
//
// Response payload:
//   u64 id            — echo of the request id
//   u32 code          — StatusCode numeric value (kOk = 0)
//   i64 retry_after_ms— backoff hint for shed/read-only rejections
//                       (lifted from the Status message by
//                       serve::RetryAfterMs); 0 = no hint
//   str message       — human-readable status message ("" when ok)
//   ... kind-specific body (see NetResponse)
//
// Corruption handling: a frame whose magic, size, or CRC is wrong is a
// stream-level error — the connection is poisoned and must be closed
// (FrameDecoder returns kDataLoss and refuses further input). A frame
// that passes the CRC but whose payload fails structural decode is a
// request-level error — the server answers kInvalidArgument if it
// recovered the id, else closes.
//
// Queries travel as token strings, not interned token ids: the server
// and client intern independently, and similarity depends only on the
// string identity of tokens within one builder, so results are
// byte-identical to an in-process call on the same index.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/kjoin_index.h"

namespace kjoin::net {

inline constexpr char kFrameMagic[4] = {'K', 'J', 'N', 'P'};
inline constexpr size_t kFrameHeaderBytes = 16;
// Frames above this are rejected before buffering the payload, so a
// corrupt or hostile size field can never drive a giant allocation.
inline constexpr uint64_t kDefaultMaxFrameBytes = 16ull << 20;

enum class RequestKind : uint8_t {
  kSearch = 1,   // threshold search: min_similarity + query tokens
  kTopK = 2,     // top-k search: adds i32 k
  kInsert = 3,   // batch insert: records of {external id, tokens}
  kDelete = 4,   // delete by global object index
  kHealth = 5,   // manager health snapshot (text body)
  kMetrics = 6,  // metrics registry JSON export (text body)
};

bool IsValidRequestKind(uint8_t raw);
std::string_view RequestKindName(RequestKind kind);

struct InsertRecord {
  int32_t external_id = 0;
  std::vector<std::string> tokens;
};

struct NetRequest {
  uint64_t id = 0;
  RequestKind kind = RequestKind::kHealth;
  uint64_t deadline_ms = 0;  // 0 = no deadline

  // kSearch / kTopK
  double min_similarity = -1.0;
  int32_t top_k = 0;  // kTopK only
  std::vector<std::string> query_tokens;

  // kInsert
  std::vector<InsertRecord> inserts;

  // kDelete
  std::vector<int32_t> delete_indexes;
};

struct NetResponse {
  uint64_t id = 0;
  uint32_t code = 0;  // StatusCode numeric value
  int64_t retry_after_ms = 0;
  std::string message;

  // kSearch / kTopK
  std::vector<SearchHit> hits;
  int64_t epoch_version = 0;

  // kInsert
  int64_t objects_after_insert = 0;

  // kHealth / kMetrics
  std::string text;
};

// Payload encode/decode (no frame header; see WrapFrame). Decoders
// validate structure and counts; a failure is kDataLoss (truncation /
// layout mismatch) or kInvalidArgument (bad kind, bad counts).
std::string EncodeRequestPayload(const NetRequest& request);
Status DecodeRequestPayload(std::string_view payload, NetRequest* out);

std::string EncodeResponsePayload(const NetResponse& response);
Status DecodeResponsePayload(std::string_view payload, NetResponse* out);

// Prepends the 16-byte frame header (magic, CRC, size) to `payload`.
std::string WrapFrame(std::string_view payload);

// Convenience: build a response carrying `status` (code, message, and
// the retry_after_ms hint lifted out of the message) echoing `id`.
NetResponse ResponseFromStatus(uint64_t id, const Status& status);

// Incremental frame assembly over an arbitrary byte stream. Feed
// whatever the socket produced; completed payloads come out in order.
//
//   decoder.Append(data, n);
//   while (true) {
//     std::string payload;
//     StatusOr<bool> got = decoder.Next(&payload);   // false = need more
//     ...
//   }
//
// Any framing violation (bad magic, oversized frame, CRC mismatch)
// poisons the decoder: Next returns the same error forever and Append
// becomes a no-op. The transport must close the connection — after a
// framing error the stream offset is untrustworthy, so there is no
// resynchronization.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint64_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(const char* data, size_t n);

  // True and fills `*payload` when a complete, CRC-verified frame was
  // buffered; false when more bytes are needed. Errors are permanent.
  StatusOr<bool> Next(std::string* payload);

  bool poisoned() const { return !error_.ok(); }
  // Bytes buffered but not yet returned (partial frame).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  uint64_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out
  Status error_;
};

}  // namespace kjoin::net

#endif  // KJOIN_NET_PROTOCOL_H_
