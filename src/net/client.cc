#include "net/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <cstring>
#include <future>
#include <utility>

#include "common/logging.h"

namespace kjoin::net {

KJoinClient::KJoinClient(ClientOptions options) : options_(options) {}

KJoinClient::~KJoinClient() { Disconnect(); }

bool KJoinClient::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0;
}

Status KJoinClient::Connect(const std::string& address, int port) {
  std::thread stale;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ >= 0) return InternalError("client already connected");
    // A dead connection's reader has exited (or is failing pending
    // calls right now); reclaim the handle outside the lock — its final
    // cleanup takes mu_ itself.
    stale = std::move(reader_);
  }
  if (stale.joinable()) stale.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_fd_ >= 0) {
      ::close(dead_fd_);
      dead_fd_ = -1;
    }
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return InternalError(std::string("socket failed: ") + std::strerror(errno));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("bad address: " + address);
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return UnavailableError("connect(" + address + ":" + std::to_string(port) +
                            ") failed: " + err);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {  // lost a concurrent Connect race
    ::close(fd);
    return InternalError("client already connected");
  }
  fd_ = fd;
  reader_ = std::thread([this, fd]() { ReaderLoop(fd); });
  return OkStatus();
}

void KJoinClient::Disconnect() {
  std::thread reader;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ >= 0) {
      // Wakes the blocked reader; it parks the fd in dead_fd_ and fails
      // pending calls.
      ::shutdown(fd_, SHUT_RDWR);
      fd_ = -1;
    }
    reader = std::move(reader_);
  }
  if (reader.joinable()) reader.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_fd_ >= 0) {
    ::close(dead_fd_);
    dead_fd_ = -1;
  }
}

void KJoinClient::FailAllPending(const Status& status) {
  std::map<uint64_t, std::function<void(StatusOr<NetResponse>)>> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending.swap(pending_);
  }
  for (auto& [id, done] : pending) done(status);
}

void KJoinClient::ReaderLoop(int fd) {
  FrameDecoder decoder(options_.max_frame_bytes);
  Status failure = UnavailableError("connection closed by server");
  char buf[64 << 10];
  bool running = true;
  while (running) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      failure = UnavailableError(std::string("connection read failed: ") +
                                 std::strerror(errno));
      break;
    }
    decoder.Append(buf, static_cast<size_t>(n));
    while (true) {
      std::string payload;
      StatusOr<bool> got = decoder.Next(&payload);
      if (!got.ok()) {
        failure = got.status();
        running = false;
        break;
      }
      if (!*got) break;
      NetResponse response;
      const Status decoded = DecodeResponsePayload(payload, &response);
      if (!decoded.ok()) {
        failure = decoded;
        running = false;
        break;
      }
      std::function<void(StatusOr<NetResponse>)> done;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = pending_.find(response.id);
        if (it != pending_.end()) {
          done = std::move(it->second);
          pending_.erase(it);
        }
      }
      if (done) {
        done(std::move(response));
      } else {
        KJOIN_LOG(WARNING) << "response for unknown request id " << response.id;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ == fd) fd_ = -1;  // connection is dead, allow reconnect
    // Not closed here: a sender may still hold the descriptor. Parked
    // until the next Connect/Disconnect joins this thread.
    dead_fd_ = fd;
  }
  FailAllPending(failure);
}

Status KJoinClient::SendFrame(const std::string& frame) {
  int fd;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fd = fd_;
  }
  if (fd < 0) return UnavailableError("client is not connected");
  std::lock_guard<std::mutex> lock(write_mu_);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return UnavailableError(std::string("connection write failed: ") +
                              std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return OkStatus();
}

void KJoinClient::CallAsync(NetRequest request,
                            std::function<void(StatusOr<NetResponse>)> done) {
  uint64_t id = 0;
  bool registered = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ >= 0) {
      id = next_id_++;
      pending_.emplace(id, std::move(done));
      registered = true;
    }
  }
  if (!registered) {
    done(UnavailableError("client is not connected"));
    return;
  }
  request.id = id;
  const std::string frame = WrapFrame(EncodeRequestPayload(request));
  const Status sent = SendFrame(frame);
  if (!sent.ok()) {
    std::function<void(StatusOr<NetResponse>)> callback;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pending_.find(id);
      if (it != pending_.end()) {
        callback = std::move(it->second);
        pending_.erase(it);
      }
    }
    // The reader may have raced us and already failed it.
    if (callback) callback(sent);
  }
}

StatusOr<NetResponse> KJoinClient::Call(NetRequest request) {
  std::promise<StatusOr<NetResponse>> promise;
  std::future<StatusOr<NetResponse>> future = promise.get_future();
  CallAsync(std::move(request),
            [&promise](StatusOr<NetResponse> result) { promise.set_value(std::move(result)); });
  return future.get();
}

StatusOr<NetResponse> KJoinClient::Search(std::vector<std::string> tokens,
                                          double min_similarity, uint64_t deadline_ms) {
  NetRequest request;
  request.kind = RequestKind::kSearch;
  request.min_similarity = min_similarity;
  request.deadline_ms = deadline_ms;
  request.query_tokens = std::move(tokens);
  return Call(std::move(request));
}

StatusOr<NetResponse> KJoinClient::TopK(std::vector<std::string> tokens, int32_t k,
                                        double min_similarity, uint64_t deadline_ms) {
  NetRequest request;
  request.kind = RequestKind::kTopK;
  request.top_k = k;
  request.min_similarity = min_similarity;
  request.deadline_ms = deadline_ms;
  request.query_tokens = std::move(tokens);
  return Call(std::move(request));
}

StatusOr<NetResponse> KJoinClient::Insert(std::vector<InsertRecord> records) {
  NetRequest request;
  request.kind = RequestKind::kInsert;
  request.inserts = std::move(records);
  return Call(std::move(request));
}

StatusOr<NetResponse> KJoinClient::Delete(std::vector<int32_t> global_indexes) {
  NetRequest request;
  request.kind = RequestKind::kDelete;
  request.delete_indexes = std::move(global_indexes);
  return Call(std::move(request));
}

StatusOr<NetResponse> KJoinClient::Health() {
  NetRequest request;
  request.kind = RequestKind::kHealth;
  return Call(std::move(request));
}

StatusOr<NetResponse> KJoinClient::Metrics() {
  NetRequest request;
  request.kind = RequestKind::kMetrics;
  return Call(std::move(request));
}

}  // namespace kjoin::net
