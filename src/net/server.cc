#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "serve/index_manager.h"

namespace kjoin::net {
namespace {

void Inc(Counter* counter, int64_t n = 1) {
  if (counter != nullptr) counter->Increment(n);
}

std::string_view HealthStateName(serve::HealthState state) {
  switch (state) {
    case serve::HealthState::kServing:
      return "SERVING";
    case serve::HealthState::kDegradedReadOnly:
      return "DEGRADED_READ_ONLY";
    case serve::HealthState::kRecovering:
      return "RECOVERING";
  }
  return "UNKNOWN";
}

// Little-endian u64 at the front of a payload — the request id, salvaged
// so a structurally bad payload can still get an error response.
uint64_t PeekRequestId(std::string_view payload) {
  uint64_t id = 0;
  for (int i = 0; i < 8; ++i) {
    id |= static_cast<uint64_t>(static_cast<uint8_t>(payload[i])) << (8 * i);
  }
  return id;
}

}  // namespace

// One event loop plus everything it owns. `connections` is touched only
// on the loop thread (the accept handler, connection callbacks, and
// drain tasks all run there).
struct LoopContext {
  explicit LoopContext(KJoinServer* s) : server(s) {}
  KJoinServer* server;
  EventLoop loop;
  std::thread thread;
  int listen_fd = -1;
  std::unique_ptr<EventHandler> listener;
  std::map<int, std::shared_ptr<Connection>> connections;
};

// A client connection, confined to its accepting loop's thread.
class Connection : public EventHandler, public std::enable_shared_from_this<Connection> {
 public:
  Connection(KJoinServer* server, LoopContext* context, int fd)
      : server_(server),
        context_(context),
        fd_(fd),
        decoder_(server->options_.max_frame_bytes),
        last_activity_(std::chrono::steady_clock::now()) {}

  int fd() const { return fd_; }
  bool closed() const { return closed_; }
  EventLoop* loop() { return &context_->loop; }

  void OnEvent(uint32_t events) override {
    // The first thing a handler does is pin itself: Close() erases the
    // map entry that owns us, and the rest of this frame still runs.
    std::shared_ptr<Connection> self = shared_from_this();
    if (closed_) return;
    if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
      Close();
      return;
    }
    if ((events & EPOLLIN) != 0) HandleReadable();
    if (!closed_ && (events & EPOLLOUT) != 0) FlushWrites();
  }

  // Loop thread. Counts an in-flight request whose response will arrive
  // via CompleteResponse.
  void BeginPending() { ++pending_; }

  // Loop thread (via RunInLoop from the router dispatcher or the writer
  // thread). Always balances BeginPending, even on a closed connection.
  void CompleteResponse(std::string frame) {
    --pending_;
    if (closed_) return;
    QueueFrame(std::move(frame));
  }

  // Loop thread: encode-and-send for responses produced inline.
  void SendResponse(const NetResponse& response) {
    if (closed_) return;
    QueueFrame(WrapFrame(EncodeResponsePayload(response)));
  }

  // Drain: stop reading; close as soon as nothing is owed.
  void StartDrain() {
    if (closed_) return;
    want_read_ = false;
    UpdateInterest();
    MaybeCloseAfterDrain();
  }

  double idle_seconds(std::chrono::steady_clock::time_point now) const {
    return std::chrono::duration<double>(now - last_activity_).count();
  }
  int pending() const { return pending_; }
  bool write_buffer_empty() const { return write_offset_ >= write_buffer_.size(); }

  void Close() {
    if (closed_) return;
    closed_ = true;
    context_->loop.Remove(fd_);
    ::close(fd_);
    server_->active_connections_.fetch_sub(1, std::memory_order_relaxed);
    if (server_->active_connections_gauge_ != nullptr) {
      server_->active_connections_gauge_->Set(server_->active_connections());
    }
    context_->connections.erase(fd_);  // may destroy *this — must be last
  }

 private:
  void HandleReadable() {
    last_activity_ = std::chrono::steady_clock::now();
    char buf[64 << 10];
    while (true) {
      if (KJOIN_FAULT_POINT("net/read")) {
        Close();
        return;
      }
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        Inc(server_->bytes_read_, n);
        decoder_.Append(buf, static_cast<size_t>(n));
        if (!DrainFrames()) return;
        if (static_cast<size_t>(n) < sizeof(buf)) break;  // short read: drained
        if (!want_read_ || read_stalled_) break;          // backpressure tripped
        continue;
      }
      if (n == 0) {  // peer closed
        Close();
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      Close();
      return;
    }
  }

  // Hands every completed frame to the server. False when the
  // connection died (framing violation or dispatch closed it).
  bool DrainFrames() {
    while (true) {
      std::string payload;
      StatusOr<bool> got = decoder_.Next(&payload);
      if (!got.ok()) {
        Inc(server_->protocol_errors_);
        KJOIN_LOG(WARNING) << "closing connection fd=" << fd_ << ": "
                           << got.status().ToString();
        Close();
        return false;
      }
      if (!*got) return true;
      Inc(server_->frames_read_);
      NetRequest request;
      Status status = DecodeRequestPayload(payload, &request);
      if (!status.ok()) {
        if (payload.size() < 8) {  // not even an id to echo
          Inc(server_->protocol_errors_);
          Close();
          return false;
        }
        SendResponse(ResponseFromStatus(PeekRequestId(payload),
                                        InvalidArgumentError(status.message())));
        continue;
      }
      server_->HandleRequest(shared_from_this(), std::move(request));
      if (closed_) return false;
    }
  }

  void QueueFrame(std::string frame) {
    Inc(server_->frames_written_);
    if (write_buffer_empty()) {
      write_buffer_.clear();
      write_offset_ = 0;
    }
    write_buffer_ += frame;
    FlushWrites();
    if (closed_) return;
    if (!read_stalled_ &&
        write_buffer_.size() - write_offset_ > server_->options_.write_buffer_cap_bytes) {
      read_stalled_ = true;
      Inc(server_->backpressure_stalls_);
      UpdateInterest();
    }
  }

  void FlushWrites() {
    last_activity_ = std::chrono::steady_clock::now();
    while (write_offset_ < write_buffer_.size()) {
      if (KJOIN_FAULT_POINT("net/write")) {
        Close();
        return;
      }
      const ssize_t n = ::send(fd_, write_buffer_.data() + write_offset_,
                               write_buffer_.size() - write_offset_, MSG_NOSIGNAL);
      if (n > 0) {
        Inc(server_->bytes_written_, n);
        write_offset_ += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        UpdateInterest();  // need EPOLLOUT to continue
        return;
      }
      if (n < 0 && errno == EINTR) continue;
      Close();  // EPIPE / ECONNRESET / real error
      return;
    }
    // Fully flushed: compact, unstall the reader, drop EPOLLOUT.
    write_buffer_.clear();
    write_offset_ = 0;
    if (read_stalled_) {
      read_stalled_ = false;
      UpdateInterest();
    } else {
      UpdateInterest();
    }
    MaybeCloseAfterDrain();
  }

  void MaybeCloseAfterDrain() {
    if (closed_) return;
    if (!want_read_ && pending_ == 0 && write_buffer_empty()) Close();
  }

  void UpdateInterest() {
    if (closed_) return;
    uint32_t events = 0;
    if (want_read_ && !read_stalled_) events |= EPOLLIN;
    if (!write_buffer_empty()) events |= EPOLLOUT;
    if (events == interest_) return;
    interest_ = events;
    context_->loop.Modify(fd_, events);
  }

  KJoinServer* server_;
  LoopContext* context_;
  int fd_;
  FrameDecoder decoder_;
  std::string write_buffer_;
  size_t write_offset_ = 0;
  uint32_t interest_ = EPOLLIN;
  bool want_read_ = true;
  bool read_stalled_ = false;  // backpressure: EPOLLIN dropped
  bool closed_ = false;
  int pending_ = 0;  // dispatched requests whose responses are owed
  std::chrono::steady_clock::time_point last_activity_;
};

// Accepts until EAGAIN; one per loop, each on its own SO_REUSEPORT
// listener so the kernel load-balances incoming connections.
class Listener : public EventHandler {
 public:
  explicit Listener(LoopContext* context) : context_(context) {}

  void OnEvent(uint32_t events) override {
    if ((events & EPOLLIN) == 0) return;
    KJoinServer* server = context_->server;
    while (true) {
      const int fd =
          ::accept4(context_->listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        // EMFILE & friends: drop this readiness round; level triggering
        // re-delivers while the backlog persists.
        return;
      }
      if (KJOIN_FAULT_POINT("net/accept")) {
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto connection = std::make_shared<Connection>(server, context_, fd);
      Status added = context_->loop.Add(fd, EPOLLIN, connection.get());
      if (!added.ok()) {
        ::close(fd);
        continue;
      }
      context_->connections[fd] = connection;
      server->active_connections_.fetch_add(1, std::memory_order_relaxed);
      Inc(server->connections_total_);
      if (server->active_connections_gauge_ != nullptr) {
        server->active_connections_gauge_->Set(server->active_connections());
      }
    }
  }

 private:
  LoopContext* context_;
};

KJoinServer::KJoinServer(serve::ShardRouter* router, serve::ShardedIndexManager* manager,
                         ObjectBuilder* builder, MetricsRegistry* metrics,
                         ServerOptions options)
    : router_(router),
      manager_(manager),
      builder_(builder),
      metrics_(metrics),
      options_(std::move(options)) {
  KJOIN_CHECK(router_ != nullptr) << "KJoinServer needs a router";
  KJOIN_CHECK(builder_ != nullptr) << "KJoinServer needs an object builder";
  KJOIN_CHECK(options_.num_loops >= 1) << "num_loops must be >= 1";
  if (metrics_ != nullptr) {
    connections_total_ = metrics_->counter("net.connections");
    active_connections_gauge_ = metrics_->gauge("net.active_connections");
    bytes_read_ = metrics_->counter("net.bytes_read");
    bytes_written_ = metrics_->counter("net.bytes_written");
    frames_read_ = metrics_->counter("net.frames_read");
    frames_written_ = metrics_->counter("net.frames_written");
    protocol_errors_ = metrics_->counter("net.protocol_errors");
    backpressure_stalls_ = metrics_->counter("net.backpressure_stalls");
    idle_closed_ = metrics_->counter("net.idle_closed");
    requests_ = metrics_->counter("net.requests");
  }
}

KJoinServer::~KJoinServer() {
  if (started_.load() && !stopped_.load()) Shutdown();
  if (shutdown_fd_ >= 0) ::close(shutdown_fd_);
}

Status KJoinServer::StartListener(LoopContext* context, bool first) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return InternalError(std::string("socket failed: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // Every loop binds its own listener to the same port; the kernel
  // spreads accepts across them.
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(first ? options_.port : port_));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("bad bind address: " + options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return InternalError("bind(" + options_.bind_address + ":" +
                         std::to_string(first ? options_.port : port_) +
                         ") failed: " + err);
  }
  if (first) {
    // Resolve the ephemeral port so the remaining loops bind to it too.
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return InternalError("getsockname failed: " + err);
    }
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(fd, 512) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return InternalError("listen failed: " + err);
  }
  context->listen_fd = fd;
  context->listener = std::make_unique<Listener>(context);
  return context->loop.Add(fd, EPOLLIN, context->listener.get());
}

Status KJoinServer::Start() {
  KJOIN_CHECK(!started_.load()) << "KJoinServer::Start called twice";
  shutdown_fd_ = ::eventfd(0, EFD_CLOEXEC);  // blocking: Wait() reads it
  if (shutdown_fd_ < 0) {
    return InternalError(std::string("eventfd failed: ") + std::strerror(errno));
  }
  loops_.reserve(static_cast<size_t>(options_.num_loops));
  for (int i = 0; i < options_.num_loops; ++i) {
    loops_.push_back(std::make_unique<LoopContext>(this));
    LoopContext* context = loops_.back().get();
    Status status = StartListener(context, /*first=*/i == 0);
    if (!status.ok()) {
      for (auto& ctx : loops_) {
        if (ctx->listen_fd >= 0) ::close(ctx->listen_fd);
      }
      loops_.clear();
      return status;
    }
    if (options_.idle_timeout_seconds > 0.0) {
      context->loop.SetTicker(
          std::min(1.0, options_.idle_timeout_seconds / 2.0), [this, context]() {
            const auto now = std::chrono::steady_clock::now();
            std::vector<std::shared_ptr<Connection>> idle;
            for (const auto& [fd, connection] : context->connections) {
              // In-flight work resets the clock when its response
              // flushes; only truly idle (or stuck mid-frame) peers go.
              if (connection->pending() == 0 &&
                  connection->idle_seconds(now) > options_.idle_timeout_seconds) {
                idle.push_back(connection);
              }
            }
            for (const auto& connection : idle) {
              Inc(idle_closed_);
              connection->Close();
            }
          });
    }
  }
  for (auto& context : loops_) {
    context->thread = std::thread([loop = &context->loop]() { loop->Run(); });
  }
  writer_ = std::thread([this]() { WriterLoop(); });
  started_.store(true);
  return OkStatus();
}

void KJoinServer::RequestShutdown() {
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(shutdown_fd_, &one, sizeof(one));
}

void KJoinServer::Wait() {
  if (!started_.load() || stopped_.load()) return;
  uint64_t count;
  while (::read(shutdown_fd_, &count, sizeof(count)) < 0 && errno == EINTR) {
  }
  Drain();
}

void KJoinServer::Shutdown() {
  RequestShutdown();
  Wait();
}

void KJoinServer::Drain() {
  if (stopped_.exchange(true)) return;
  draining_.store(true);
  // Stop accepting and stop reading; everything already read stays in
  // flight and gets its response.
  for (auto& context : loops_) {
    LoopContext* ctx = context.get();
    ctx->loop.RunInLoop([ctx]() {
      if (ctx->listen_fd >= 0) {
        ctx->loop.Remove(ctx->listen_fd);
        ::close(ctx->listen_fd);
        ctx->listen_fd = -1;
      }
      // StartDrain can Close (erasing from the map): snapshot first.
      std::vector<std::shared_ptr<Connection>> connections;
      connections.reserve(ctx->connections.size());
      for (const auto& [fd, connection] : ctx->connections) {
        connections.push_back(connection);
      }
      for (const auto& connection : connections) connection->StartDrain();
    });
  }
  // In-flight requests finish on the router dispatcher / writer thread
  // and flush back through the loops; connections self-close when owed
  // nothing. Bounded wait, then force-close the stragglers.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                std::max(0.0, options_.drain_deadline_seconds)));
  while (active_connections() > 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (active_connections() > 0) {
    KJOIN_LOG(WARNING) << "drain deadline: force-closing " << active_connections()
                       << " connection(s)";
    for (auto& context : loops_) {
      LoopContext* ctx = context.get();
      ctx->loop.RunInLoop([ctx]() {
        std::vector<std::shared_ptr<Connection>> connections;
        connections.reserve(ctx->connections.size());
        for (const auto& [fd, connection] : ctx->connections) {
          connections.push_back(connection);
        }
        for (const auto& connection : connections) connection->Close();
      });
    }
    const auto force_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(1);
    while (active_connections() > 0 && std::chrono::steady_clock::now() < force_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    writer_shutdown_ = true;
  }
  writer_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  for (auto& context : loops_) {
    context->loop.Stop();
    if (context->thread.joinable()) context->thread.join();
  }
}

void KJoinServer::HandleRequest(const std::shared_ptr<Connection>& connection,
                                NetRequest request) {
  Inc(requests_);
  switch (request.kind) {
    case RequestKind::kSearch:
    case RequestKind::kTopK:
      SubmitSearch(connection, std::move(request));
      return;
    case RequestKind::kInsert:
    case RequestKind::kDelete: {
      if (manager_ == nullptr) {
        connection->SendResponse(ResponseFromStatus(
            request.id, UnavailableError("server has no index manager (search-only)")));
        return;
      }
      connection->BeginPending();
      {
        std::lock_guard<std::mutex> lock(writer_mu_);
        writer_queue_.push_back(Mutation{std::move(request), connection});
      }
      writer_cv_.notify_one();
      return;
    }
    case RequestKind::kHealth:
      connection->SendResponse(HandleHealth(request));
      return;
    case RequestKind::kMetrics:
      connection->SendResponse(HandleMetrics(request));
      return;
  }
}

void KJoinServer::SubmitSearch(const std::shared_ptr<Connection>& connection,
                               NetRequest request) {
  serve::QueryRequest query;
  {
    // Build() interns unseen tokens — every builder access serializes.
    std::lock_guard<std::mutex> lock(builder_mu_);
    query.query = builder_->Build(0, request.query_tokens);
  }
  query.top_k = request.kind == RequestKind::kTopK ? request.top_k : 0;
  query.min_similarity = request.min_similarity;
  // Wire deadline 0 = none; the router treats < 0 as "apply default",
  // and its default is none unless configured.
  query.deadline_seconds =
      request.deadline_ms == 0 ? -1.0 : static_cast<double>(request.deadline_ms) / 1e3;

  connection->BeginPending();
  const uint64_t id = request.id;
  EventLoop* loop = connection->loop();
  std::weak_ptr<Connection> weak = connection;
  router_->Submit(std::move(query), [id, loop, weak](serve::QueryResponse response) {
    // Router dispatcher thread: encode here (off the event loop), then
    // hop the finished frame to the connection's loop.
    NetResponse net_response = ResponseFromStatus(id, response.status);
    net_response.hits = std::move(response.hits);
    net_response.epoch_version = response.epoch_version;
    std::string frame = WrapFrame(EncodeResponsePayload(net_response));
    loop->RunInLoop([weak, frame = std::move(frame)]() mutable {
      if (std::shared_ptr<Connection> connection = weak.lock()) {
        connection->CompleteResponse(std::move(frame));
      }
    });
  });
}

void KJoinServer::WriterLoop() {
  while (true) {
    Mutation mutation;
    {
      std::unique_lock<std::mutex> lock(writer_mu_);
      writer_cv_.wait(lock,
                      [this]() { return writer_shutdown_ || !writer_queue_.empty(); });
      if (writer_queue_.empty()) return;  // shutdown with a drained queue
      mutation = std::move(writer_queue_.front());
      writer_queue_.pop_front();
    }
    const NetResponse response = mutation.request.kind == RequestKind::kInsert
                                     ? HandleInsert(mutation.request)
                                     : HandleDelete(mutation.request);
    std::shared_ptr<Connection> connection = mutation.connection.lock();
    if (connection == nullptr) continue;
    std::string frame = WrapFrame(EncodeResponsePayload(response));
    std::weak_ptr<Connection> weak = mutation.connection;
    connection->loop()->RunInLoop([weak, frame = std::move(frame)]() mutable {
      if (std::shared_ptr<Connection> conn = weak.lock()) {
        conn->CompleteResponse(std::move(frame));
      }
    });
  }
}

NetResponse KJoinServer::HandleInsert(const NetRequest& request) {
  std::vector<Object> objects;
  std::vector<std::string> tokens;
  {
    // One lock hold across the builds and the table snapshot, so the
    // snapshot covers every token id the batch uses.
    std::lock_guard<std::mutex> lock(builder_mu_);
    objects.reserve(request.inserts.size());
    for (const InsertRecord& record : request.inserts) {
      objects.push_back(builder_->Build(record.external_id, record.tokens));
    }
    tokens = builder_->TokenTable();
  }
  const Status status = manager_->InsertBatch(std::move(objects), std::move(tokens));
  NetResponse response = ResponseFromStatus(request.id, status);
  if (status.ok()) response.objects_after_insert = manager_->num_objects();
  return response;
}

NetResponse KJoinServer::HandleDelete(const NetRequest& request) {
  const Status status = manager_->DeleteObjects(request.delete_indexes);
  NetResponse response = ResponseFromStatus(request.id, status);
  if (status.ok()) response.objects_after_insert = manager_->num_objects();
  return response;
}

NetResponse KJoinServer::HandleHealth(const NetRequest& request) {
  NetResponse response = ResponseFromStatus(request.id, OkStatus());
  serve::ManagerHealth health;
  int64_t objects = 0;
  if (manager_ != nullptr) {
    health = manager_->HealthSnapshot();
    objects = manager_->num_objects();
  }
  response.text = std::string("state=") + std::string(HealthStateName(health.state)) +
                  " consecutive_wal_failures=" +
                  std::to_string(health.consecutive_wal_failures) +
                  " read_only_trips=" + std::to_string(health.read_only_trips) +
                  " recoveries=" + std::to_string(health.recoveries) +
                  " objects=" + std::to_string(objects) +
                  " active_connections=" + std::to_string(active_connections());
  return response;
}

NetResponse KJoinServer::HandleMetrics(const NetRequest& request) {
  NetResponse response = ResponseFromStatus(request.id, OkStatus());
  response.text = metrics_ != nullptr ? metrics_->ToJson() : "{}";
  return response;
}

}  // namespace kjoin::net
