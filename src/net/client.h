#ifndef KJOIN_NET_CLIENT_H_
#define KJOIN_NET_CLIENT_H_

// KJoinClient — a blocking-socket KJNP client with a reader thread, so
// one connection supports both synchronous Call() and pipelined
// CallAsync() (many requests in flight, responses matched by id).
//
// Thread safety: all public methods may be called concurrently. Writes
// serialize on a mutex (a frame is written atomically); the reader
// thread dispatches responses by id. When the connection drops — peer
// close, read error, or a framing violation — every in-flight call
// fails with kUnavailable and the client can Connect() again (fresh
// socket, fresh decoder; ids keep increasing so late responses from a
// previous connection can never match a new call).
//
// A Call's StatusOr layering: the outer Status is transport health
// (send failed, connection lost, frame corrupt); the inner
// NetResponse::code is the server's verdict (shed, read-only, deadline,
// ...). A shed query is a *successful* Call carrying a non-OK code plus
// its retry_after_ms hint.

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"

namespace kjoin::net {

struct ClientOptions {
  uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class KJoinClient {
 public:
  explicit KJoinClient(ClientOptions options = {});
  ~KJoinClient();

  KJoinClient(const KJoinClient&) = delete;
  KJoinClient& operator=(const KJoinClient&) = delete;

  // Connects to `address:port`. Fails if already connected.
  Status Connect(const std::string& address, int port);
  // Severs the connection; in-flight calls fail with kUnavailable.
  // Idempotent. Connect() may be called again afterwards.
  void Disconnect();
  bool connected() const;

  // Synchronous round trip. The request's id is overwritten with a
  // client-assigned one (unique across reconnects).
  StatusOr<NetResponse> Call(NetRequest request);

  // Pipelined: returns once the frame is written; `done` fires on the
  // reader thread when the response arrives, or with kUnavailable if
  // the connection drops first. A send failure invokes `done` inline.
  void CallAsync(NetRequest request, std::function<void(StatusOr<NetResponse>)> done);

  // Convenience wrappers over Call().
  StatusOr<NetResponse> Search(std::vector<std::string> tokens,
                               double min_similarity = -1.0, uint64_t deadline_ms = 0);
  StatusOr<NetResponse> TopK(std::vector<std::string> tokens, int32_t k,
                             double min_similarity = -1.0, uint64_t deadline_ms = 0);
  StatusOr<NetResponse> Insert(std::vector<InsertRecord> records);
  StatusOr<NetResponse> Delete(std::vector<int32_t> global_indexes);
  StatusOr<NetResponse> Health();
  StatusOr<NetResponse> Metrics();

 private:
  void ReaderLoop(int fd);
  // Fails every pending call with `status` and forgets them.
  void FailAllPending(const Status& status);
  Status SendFrame(const std::string& frame);

  ClientOptions options_;

  mutable std::mutex mu_;
  int fd_ = -1;                 // guarded by mu_ (reader holds its own copy)
  // A dead connection's fd, closed only after its reader is joined —
  // senders may still hold the descriptor, and closing early would let
  // the kernel reuse the number under them.
  int dead_fd_ = -1;            // guarded by mu_
  uint64_t next_id_ = 1;        // guarded by mu_
  std::map<uint64_t, std::function<void(StatusOr<NetResponse>)>> pending_;  // guarded by mu_
  std::thread reader_;          // guarded by mu_ for start/join

  std::mutex write_mu_;  // serializes whole-frame writes
};

}  // namespace kjoin::net

#endif  // KJOIN_NET_CLIENT_H_
