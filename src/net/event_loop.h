#ifndef KJOIN_NET_EVENT_LOOP_H_
#define KJOIN_NET_EVENT_LOOP_H_

// A single-threaded, level-triggered epoll event loop.
//
// One EventLoop owns one epoll instance and runs on one thread (Run()
// blocks until Stop()). Everything that touches a handler — Add,
// Modify, Remove, and the handler callbacks themselves — happens on
// that thread; the only cross-thread entry points are Stop() and
// RunInLoop(), which hand work over via an eventfd wakeup. The server
// (net/server.h) runs N loops on N threads with SO_REUSEPORT listeners,
// so connections are loop-confined and need no per-connection locks.
//
// Level-triggered was chosen over edge-triggered deliberately: handlers
// may read less than everything available (e.g. a connection under
// write backpressure stops reading), and with level triggering the
// leftover readiness re-arms itself — no starvation bookkeeping.
//
// Dispatch resolves fds through a per-loop map at event-delivery time,
// so a handler that closes *another* connection mid-batch (e.g. the
// drain path force-closing stragglers) leaves dangling epoll events
// pointing at erased fds, which are simply skipped.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace kjoin::net {

class EventHandler {
 public:
  virtual ~EventHandler() = default;
  // `events` is the epoll readiness mask (EPOLLIN | EPOLLOUT | ...).
  // Called only on the loop thread.
  virtual void OnEvent(uint32_t events) = 0;
};

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registration (loop thread only; before Run() counts as loop thread).
  // The loop does not own `fd` or `handler` — the caller closes the fd
  // after Remove().
  Status Add(int fd, uint32_t events, EventHandler* handler);
  Status Modify(int fd, uint32_t events);
  void Remove(int fd);

  // Blocks servicing events until Stop(). Drains the RunInLoop queue
  // once more after the last epoll_wait so no handed-over task is lost.
  void Run();

  // Thread-safe and async-signal-safe (one atomic store + one eventfd
  // write): usable straight from a SIGTERM handler.
  void Stop();

  // Runs `task` on the loop thread. From the loop thread itself the
  // task still queues (never runs inline), which keeps callback
  // re-entrancy impossible. Tasks queued after the loop exits run in
  // the final drain or are dropped with the loop.
  void RunInLoop(std::function<void()> task);

  // Called roughly every `interval_seconds` on the loop thread while the
  // loop runs (connection idle sweeps). One ticker per loop; set before
  // Run().
  void SetTicker(double interval_seconds, std::function<void()> tick);

  bool IsInLoopThread() const {
    return std::this_thread::get_id() == loop_thread_id_.load(std::memory_order_acquire);
  }

 private:
  void Wake();
  void DrainWake();
  void RunQueuedTasks();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::map<int, EventHandler*> handlers_;
  std::atomic<bool> running_{false};
  std::atomic<std::thread::id> loop_thread_id_{};

  std::mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_;

  double tick_interval_seconds_ = 0.0;
  std::function<void()> tick_;
};

}  // namespace kjoin::net

#endif  // KJOIN_NET_EVENT_LOOP_H_
