#ifndef KJOIN_NET_SERVER_H_
#define KJOIN_NET_SERVER_H_

// KJoinServer — the network front end: N epoll event loops (net/
// event_loop.h) accepting KJNP-framed requests (net/protocol.h) and
// dispatching them into the existing serving stack — searches through
// ShardRouter::Submit's batching path, mutations through a dedicated
// writer thread into ShardedIndexManager, health and metrics inline.
//
// Threading model:
//   * Each loop thread owns its listener (SO_REUSEPORT, so the kernel
//     spreads accepts) and every connection accepted on it. Connection
//     state is loop-confined — no per-connection locks.
//   * Search responses are produced on the router's dispatcher thread;
//     the encoded frame hops back to the owning loop via RunInLoop.
//   * Inserts and deletes run on one writer thread, which serializes
//     them (ObjectBuilder interning + the manager's numbering contract
//     both want ordered mutations) and keeps WAL fsyncs off the event
//     loops.
//   * Every ObjectBuilder access — query decode on loop threads, insert
//     builds on the writer — holds builder_mu_: Build() interns new
//     tokens, and the token table snapshot passed to InsertBatch must
//     cover every id the batch uses.
//
// Backpressure: when a connection's write buffer exceeds
// write_buffer_cap_bytes the server stops reading from it (drops
// EPOLLIN interest) until the buffer drains below half the cap. A
// client that stops reading its responses therefore stalls itself, not
// the server (net.backpressure_stalls counts the transitions).
//
// Graceful drain: RequestShutdown() is async-signal-safe (one eventfd
// write — call it straight from a SIGTERM handler). Wait() then stops
// accepting, stops reading from every connection, lets in-flight
// requests finish and their responses flush, and force-closes whatever
// remains at drain_deadline_seconds. Every request that was fully read
// before the drain began gets its response — the "zero dropped acked
// requests" contract tests/net_test.cc locks in.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "core/object.h"
#include "net/event_loop.h"
#include "net/protocol.h"
#include "serve/shard_router.h"
#include "serve/sharded_index_manager.h"

namespace kjoin::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  // 0 = pick an ephemeral port (read it back with port()).
  int port = 0;
  // Event loops == acceptor threads (SO_REUSEPORT).
  int num_loops = 1;
  uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Write-buffer level above which the server stops reading from the
  // connection (resumes below half of it).
  size_t write_buffer_cap_bytes = 4u << 20;
  // Connections with no traffic for this long are closed (slow-loris
  // defense); <= 0 disables the sweep.
  double idle_timeout_seconds = 0.0;
  // Wait() force-closes connections still busy this long after the
  // drain began.
  double drain_deadline_seconds = 5.0;
};

class Connection;
class Listener;
struct LoopContext;

class KJoinServer {
 public:
  // All pointers are borrowed and must outlive the server. `manager`
  // may be null (a search-only server: INSERT/DELETE answer
  // kUnavailable); `metrics` may be null. `builder` is the server's
  // token authority — queries and inserts intern through it under the
  // server's lock, so the caller must not use it concurrently while the
  // server runs.
  KJoinServer(serve::ShardRouter* router, serve::ShardedIndexManager* manager,
              ObjectBuilder* builder, MetricsRegistry* metrics, ServerOptions options = {});
  ~KJoinServer();

  KJoinServer(const KJoinServer&) = delete;
  KJoinServer& operator=(const KJoinServer&) = delete;

  // Binds, listens, and starts the loop + writer threads. The listening
  // port is final (port()) when Start returns OK.
  Status Start();

  // Async-signal-safe shutdown trigger (eventfd write).
  void RequestShutdown();

  // Blocks until RequestShutdown(), then drains (see header comment)
  // and joins every thread. Returns once the server is fully stopped.
  void Wait();

  // RequestShutdown() + Wait() for callers not driving from a signal.
  void Shutdown();

  int port() const { return port_; }
  int64_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

 private:
  friend class Connection;
  friend class Listener;

  Status StartListener(LoopContext* context, bool first);
  void Drain();

  // Request dispatch (called from loop threads via Connection).
  void HandleRequest(const std::shared_ptr<Connection>& connection, NetRequest request);
  void SubmitSearch(const std::shared_ptr<Connection>& connection, NetRequest request);
  void WriterLoop();

  NetResponse HandleInsert(const NetRequest& request);
  NetResponse HandleDelete(const NetRequest& request);
  NetResponse HandleHealth(const NetRequest& request);
  NetResponse HandleMetrics(const NetRequest& request);

  serve::ShardRouter* router_;
  serve::ShardedIndexManager* manager_;
  ObjectBuilder* builder_;
  MetricsRegistry* metrics_;
  ServerOptions options_;

  // Guards every ObjectBuilder access (see the header comment).
  std::mutex builder_mu_;

  std::vector<std::unique_ptr<LoopContext>> loops_;
  int port_ = 0;
  int shutdown_fd_ = -1;  // eventfd: RequestShutdown -> Wait
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int64_t> active_connections_{0};

  // Writer thread: serialized mutations (INSERT / DELETE).
  struct Mutation {
    NetRequest request;
    std::weak_ptr<Connection> connection;
  };
  std::mutex writer_mu_;
  std::condition_variable writer_cv_;
  std::deque<Mutation> writer_queue_;  // guarded by writer_mu_
  bool writer_shutdown_ = false;       // guarded by writer_mu_
  std::thread writer_;

  // net.* metrics, resolved once (null registry => all null).
  Counter* connections_total_ = nullptr;
  Gauge* active_connections_gauge_ = nullptr;
  Counter* bytes_read_ = nullptr;
  Counter* bytes_written_ = nullptr;
  Counter* frames_read_ = nullptr;
  Counter* frames_written_ = nullptr;
  Counter* protocol_errors_ = nullptr;
  Counter* backpressure_stalls_ = nullptr;
  Counter* idle_closed_ = nullptr;
  Counter* requests_ = nullptr;
};

}  // namespace kjoin::net

#endif  // KJOIN_NET_SERVER_H_
