#ifndef KJOIN_CORE_SIGNATURE_H_
#define KJOIN_CORE_SIGNATURE_H_

// Signature schemes (paper §3.1 node signatures, §4.1 path signatures).
//
// A signature is a hierarchy node (or a raw token for unmapped elements)
// such that two δ-similar elements are guaranteed to share at least one
// signature. Three schemes:
//   kNode        — the ancestor at the global depth d_δ = ⌈δ/(1−δ)⌉
//                  (Definition 4); one signature per mapping.
//   kShallowPath — ancestors at depths [⌈δ⌈δd⌉⌉, ⌈δd⌉] (Definition 6).
//   kDeepPath    — ancestors at depths [⌈δd⌉, d]        (Definition 7);
//                  finer-grained, the paper's best performer.
// Signatures carry weights (the maximum element similarity realizable
// through them) for the weighted path prefix (Definition 9) — only deep
// path signatures have informative weights.

#include <cstdint>
#include <vector>

#include "core/element.h"
#include "core/element_similarity.h"
#include "core/object.h"

namespace kjoin {

// A signature value. Hierarchy nodes use their NodeId; elements with no
// node mapping use `token_signature_base + token_id` (two unmapped tokens
// can only be similar when identical, so the token itself is a sound
// signature).
using SigId = int64_t;

enum class SignatureScheme {
  kNode,
  kShallowPath,
  kDeepPath,
};

struct Signature {
  SigId id = 0;
  // Index of the generating element within its object (prefix rules count
  // distinct elements, Definition 8).
  int32_t element = 0;
  // Max element-pair similarity realizable through this signature; 1 for
  // node/shallow/token signatures (see header comment).
  float weight = 1.0f;
};

class SignatureGenerator {
 public:
  // The hierarchy must outlive the generator. Requires 0 < delta <= 1.
  SignatureGenerator(const Hierarchy& hierarchy, ElementMetric metric, SignatureScheme scheme,
                     double delta);

  // All signatures of the object, one entry per (element, distinct sig),
  // deduplicated per element keeping the maximal weight.
  std::vector<Signature> Generate(const Object& object) const;

  // The node signatures of one element (Definition 4), used for the
  // verification-side grouping (Lemma 8) regardless of the filter scheme.
  // One per mapping (deduplicated); the token signature when unmapped.
  void AppendNodeSignatures(const Element& element, std::vector<SigId>* out) const;

  SigId TokenSignature(int32_t token_id) const {
    return token_base_ + static_cast<SigId>(token_id);
  }

  SignatureScheme scheme() const { return scheme_; }
  double delta() const { return delta_; }
  // d_δ (meaningful for the node scheme; INT_MAX/2 when delta == 1).
  int node_signature_depth() const { return d_delta_; }

 private:
  void AppendForMapping(const ElementMapping& mapping, int32_t element_index,
                        std::vector<Signature>* out) const;

  const Hierarchy* hierarchy_;
  ElementMetric metric_;
  SignatureScheme scheme_;
  double delta_;
  int d_delta_;
  SigId token_base_;
};

}  // namespace kjoin

#endif  // KJOIN_CORE_SIGNATURE_H_
