#include "core/sim_cache.h"

#include <bit>
#include <vector>

#include "common/logging.h"

namespace kjoin {
namespace {

// All-ones never collides with a real key: packed keys have node ids below
// 2^31, so bit 63 is always clear.
constexpr uint64_t kEmptyKey = ~uint64_t{0};

constexpr int kNumStripes = 64;      // power of two
constexpr int kProbeWindow = 8;      // bounded linear probe per stripe
constexpr int kL1CounterSlots = 256; // per-cache L1 hit counters (see Claim)

// Process-unique cache ids. Comparing ids instead of `this` pointers keeps
// a thread's stale L1 from being revived by a new cache allocated at a
// dead cache's address.
std::atomic<uint64_t> next_cache_id{1};

// splitmix64 finalizer: the L2 slow path can afford a full mix, which
// keeps stripe and slot choice well distributed even for structured keys.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct alignas(64) PaddedCounter {
  std::atomic<int64_t> value{0};
};

}  // namespace

// Readers never take the stripe mutex: a lookup is plain atomic loads
// with a key re-validation (below). Only inserts serialize on write_mu,
// and inserts happen once per distinct pair. Key and value interleave in
// one array ([2j] = key, [2j+1] = bit_cast'ed double) so a probe touches
// a single cache line; the table is far bigger than any CPU cache, making
// that line fetch the entire cost of an L2 hit.
struct SimCache::Stripe {
  std::mutex write_mu;
  std::unique_ptr<std::atomic<uint64_t>[]> slots;  // key kEmptyKey when vacant
  alignas(64) std::atomic<int64_t> hits{0};
  alignas(64) std::atomic<int64_t> misses{0};
};

struct SimCache::Impl {
  uint64_t id = 0;
  size_t stripe_mask = 0;  // slots per stripe - 1
  std::unique_ptr<Stripe[]> stripes;
  // L1 hit counters. Threads grab slots round-robin; two threads sharing a
  // slot after many claims is harmless (atomic adds).
  std::unique_ptr<PaddedCounter[]> l1_hits;
  std::atomic<uint32_t> next_l1_slot{0};
};

SimCache::SimCache(int64_t capacity) : impl_(std::make_unique<Impl>()) {
  KJOIN_CHECK_GE(capacity, 1) << "SimCache capacity must be positive";
  size_t per_stripe = 64;
  while (per_stripe * kNumStripes < static_cast<uint64_t>(capacity)) per_stripe <<= 1;
  impl_->id = next_cache_id.fetch_add(1, std::memory_order_relaxed);
  id_ = impl_->id;
  impl_->stripe_mask = per_stripe - 1;
  impl_->stripes = std::make_unique<Stripe[]>(kNumStripes);
  for (int s = 0; s < kNumStripes; ++s) {
    Stripe& stripe = impl_->stripes[s];
    stripe.slots = std::make_unique<std::atomic<uint64_t>[]>(2 * per_stripe);
    for (size_t i = 0; i < per_stripe; ++i) {
      stripe.slots[2 * i].store(kEmptyKey, std::memory_order_relaxed);
      stripe.slots[2 * i + 1].store(0, std::memory_order_relaxed);
    }
  }
  impl_->l1_hits = std::make_unique<PaddedCounter[]>(kL1CounterSlots);
}

SimCache::~SimCache() = default;

int64_t SimCache::capacity() const {
  return static_cast<int64_t>((impl_->stripe_mask + 1) * kNumStripes);
}

void SimCache::Claim(L1Block* block) const {
  // The previous owner (if any) is never dereferenced — it may be long
  // destroyed. Its hit counts were accumulated inside it as they happened,
  // so dropping this block loses nothing but cached entries.
  for (size_t i = 0; i < kL1Slots; ++i) block->entries[i].key = kEmptyKey;
  const uint32_t slot = impl_->next_l1_slot.fetch_add(1, std::memory_order_relaxed);
  block->hit_counter = &impl_->l1_hits[slot % kL1CounterSlots].value;
  block->owner_id = id_;
}

// Lock-free read protocol. A writer replacing a slot's key K with K'
// stores: keys[s] = kEmptyKey (relaxed), values[s] = V' (RELEASE),
// keys[s] = K' (release). A reader loads keys[s] (acquire), the value
// (acquire), then keys[s] again (relaxed) and only trusts the value if
// both key loads returned the key it wants. If the reader's value load
// observed V', the release on the value store makes the preceding
// kEmptyKey store visible, so the second key load cannot still return K —
// the stale hit is rejected. A same-key overwrite needs no such care:
// values are pure functions of keys, so V' is bit-identical to V anyway.
bool SimCache::LookupL2(uint64_t key, double* value) const {
  const uint64_t hash = Mix(key);
  Stripe& stripe = impl_->stripes[(hash >> 58) & (kNumStripes - 1)];
  const size_t base = (hash >> 16) & impl_->stripe_mask;
  for (int p = 0; p < kProbeWindow; ++p) {
    const size_t slot = 2 * ((base + p) & impl_->stripe_mask);
    const uint64_t seen = stripe.slots[slot].load(std::memory_order_acquire);
    if (seen == key) {
      const uint64_t bits = stripe.slots[slot + 1].load(std::memory_order_acquire);
      if (stripe.slots[slot].load(std::memory_order_relaxed) == key) {
        stripe.hits.fetch_add(1, std::memory_order_relaxed);
        *value = std::bit_cast<double>(bits);
        return true;
      }
      break;  // slot is being replaced: recompute
    }
    if (seen == kEmptyKey) break;
  }
  stripe.misses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void SimCache::InsertL2(uint64_t key, double value) const {
  const uint64_t hash = Mix(key);
  Stripe& stripe = impl_->stripes[(hash >> 58) & (kNumStripes - 1)];
  const size_t base = (hash >> 16) & impl_->stripe_mask;
  std::lock_guard<std::mutex> lock(stripe.write_mu);
  size_t victim = 2 * base;  // full neighborhood: overwrite the home slot
  uint64_t victim_key = stripe.slots[victim].load(std::memory_order_relaxed);
  for (int p = 0; p < kProbeWindow; ++p) {
    const size_t slot = 2 * ((base + p) & impl_->stripe_mask);
    const uint64_t seen = stripe.slots[slot].load(std::memory_order_relaxed);
    if (seen == key || seen == kEmptyKey) {
      victim = slot;
      victim_key = seen;
      break;
    }
  }
  // Hide the slot from readers while its value changes (see LookupL2).
  if (victim_key != key && victim_key != kEmptyKey) {
    stripe.slots[victim].store(kEmptyKey, std::memory_order_relaxed);
  }
  stripe.slots[victim + 1].store(std::bit_cast<uint64_t>(value), std::memory_order_release);
  stripe.slots[victim].store(key, std::memory_order_release);
}

SimCacheStats SimCache::stats() const {
  SimCacheStats stats;
  for (int i = 0; i < kL1CounterSlots; ++i) {
    stats.l1_hits += impl_->l1_hits[i].value.load(std::memory_order_relaxed);
  }
  for (int s = 0; s < kNumStripes; ++s) {
    const Stripe& stripe = impl_->stripes[s];
    stats.l2_hits += stripe.hits.load(std::memory_order_relaxed);
    stats.misses += stripe.misses.load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace kjoin
