#ifndef KJOIN_CORE_SIMD_H_
#define KJOIN_CORE_SIMD_H_

// Runtime-dispatched vector kernels for the filter hot path
// (docs/performance.md, "Filter engine").
//
// Three kernel families, each with scalar / SSE4.2 / AVX2 variants:
//
//   * block decode — bit-unpack a delta-compressed posting block back to
//     absolute doc ids (core/posting_store.h owns the block format);
//   * sorted-set intersection — a merge kernel that compares one vector
//     of the left list against rotations of the right, and a galloping
//     variant (binary-search skips driven by the rarer list, vector
//     probes for the landing window) for skewed length ratios;
//   * count-pruning accumulator — ScanCount-style candidate generation:
//     posting lists bump a dense per-probe uint8 counter array (scalar
//     stores; gathers/scatters lose to the store buffer here) and the
//     survivors are extracted by thresholding 256-bit strides of
//     counters and reading the compare mask, clearing as it goes.
//
// Dispatch: every public entry point takes the kernels from
// ActiveLevel(), resolved once from CPUID — overridable by the
// KJOIN_FORCE_SCALAR=1 environment variable (scripts/check.sh --no-simd)
// and per-process by SetActiveLevelForTest, which the kernel-equivalence
// property suite uses to sweep all three paths in one binary. Every
// variant of a kernel returns bit-identical output for identical input;
// the dispatch level can never change join or search results.

#include <cstdint>

namespace kjoin::simd {

// Instruction-set tiers, ordered. Values are stable (used in test sweeps).
enum class IsaLevel : int {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

const char* IsaLevelName(IsaLevel level);

// Best tier this CPU supports (ignores overrides).
IsaLevel MaxSupportedLevel();

// Tier the dispatched wrappers use: MaxSupportedLevel() capped by
// KJOIN_FORCE_SCALAR=1 (read once) and by SetActiveLevelForTest.
IsaLevel ActiveLevel();

// Test hook: force dispatch to `level` (clamped to MaxSupportedLevel so a
// sweep written for AVX2 machines degrades gracefully). Affects every
// thread; only call from single-threaded test setup.
void SetActiveLevelForTest(IsaLevel level);
// Restores CPUID + environment dispatch.
void ResetActiveLevelForTest();

// ---------------------------------------------------------------------------
// Bit-unpack + prefix-sum: decode one delta block.
//
// `words` holds `count` values packed at `bits` bits each (LSB-first,
// little-endian, starting at bit 0 of words[0]); each packed value is
// (delta - 1) against the previous doc id. Writes the absolute ids
// out[0..count): out[i] = first + sum_{j<=i} (packed[j] + 1) for i >= 0
// where out[-1] is `first`... concretely out[0] = first + packed[0] + 1.
// bits == 0 encodes a run of consecutive ids (every delta is 1).
// `count` may be 0. Safe to over-read words up to the last partial word
// only; callers (PostingStore) pad the word array.

void DecodeDeltaBlock(const uint64_t* words, int bits, int32_t count, int32_t first,
                      int32_t* out);
void DecodeDeltaBlockAt(IsaLevel level, const uint64_t* words, int bits, int32_t count,
                        int32_t first, int32_t* out);

// ---------------------------------------------------------------------------
// Sorted-set intersection. Inputs strictly ascending; output (strictly
// ascending, the common elements) must have room for min(an, bn).
// Returns the intersection size.

int32_t IntersectSorted(const int32_t* a, int32_t an, const int32_t* b, int32_t bn,
                        int32_t* out);
int32_t IntersectSortedAt(IsaLevel level, const int32_t* a, int32_t an, const int32_t* b,
                          int32_t bn, int32_t* out);

// Merge-style kernel regardless of skew (bench/bench_micro_intersect.cc
// measures the crossover against the galloping variant).
int32_t IntersectLinearAt(IsaLevel level, const int32_t* a, int32_t an, const int32_t* b,
                          int32_t bn, int32_t* out);

// Galloping: for each element of the shorter list, exponential search in
// the longer one, finished by a vector probe of the landing window.
int32_t IntersectGallopAt(IsaLevel level, const int32_t* a, int32_t an, const int32_t* b,
                          int32_t bn, int32_t* out);

// Length ratio at which IntersectSorted switches from linear to gallop.
inline constexpr int32_t kGallopRatio = 32;

// ---------------------------------------------------------------------------
// Count-pruning accumulator (ScanCount candidate generation).
//
// Counters are a dense uint8 array indexed by doc id, grouped in blocks
// of kCounterBlock; `touched` is a bitmap with one bit per block
// (bit i of touched[i / 64] covers counters [i * kCounterBlock,
// (i + 1) * kCounterBlock)). AccumulateCounts bumps counters (saturating
// at 255 — the filter only ever asks "reached threshold?") and marks
// blocks; ExtractAndClearBlock reads one block back.

inline constexpr int32_t kCounterBlock = 128;

void AccumulateCounts(const int32_t* docs, int32_t n, uint8_t* counts, uint64_t* touched);

// Appends to `out` every id in [block_begin, block_begin + len) whose
// counter >= threshold (ascending), zeroing the whole counter range.
// Returns the number of ids written. `counts` points at the counter for
// block_begin; len <= kCounterBlock; threshold in [1, 255].
int32_t ExtractAndClearBlock(uint8_t* counts, int32_t block_begin, int32_t len, int threshold,
                             int32_t* out);
int32_t ExtractAndClearBlockAt(IsaLevel level, uint8_t* counts, int32_t block_begin,
                               int32_t len, int threshold, int32_t* out);

}  // namespace kjoin::simd

#endif  // KJOIN_CORE_SIMD_H_
