#include "core/element.h"

#include <algorithm>

namespace kjoin {

double Element::max_phi() const {
  double best = 0.0;
  for (const ElementMapping& mapping : mappings) best = std::max(best, mapping.phi);
  return best;
}

}  // namespace kjoin
