#include "core/prefix.h"

#include <algorithm>

#include "common/logging.h"

namespace kjoin {

void GlobalSignatureOrder::CountObject(const std::vector<Signature>& sigs) {
  KJOIN_CHECK(!finalized_);
  CountDistinct(sigs, &df_);
}

void GlobalSignatureOrder::CountDistinct(const std::vector<Signature>& sigs,
                                         std::unordered_map<SigId, int32_t>* df) {
  // Dedupe within the object: df counts objects, not occurrences.
  // Signature lists are short; a sorted scratch of ids is cheap.
  static thread_local std::vector<SigId> scratch;
  scratch.clear();
  for (const Signature& sig : sigs) scratch.push_back(sig.id);
  std::sort(scratch.begin(), scratch.end());
  scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
  for (SigId id : scratch) ++(*df)[id];
}

void GlobalSignatureOrder::MergeCounts(const std::unordered_map<SigId, int32_t>& df) {
  KJOIN_CHECK(!finalized_);
  for (const auto& [id, count] : df) df_[id] += count;
}

void GlobalSignatureOrder::Finalize() {
  KJOIN_CHECK(!finalized_);
  finalized_ = true;
  by_rank_.reserve(df_.size());
  for (const auto& [id, df] : df_) by_rank_.push_back(id);
  std::sort(by_rank_.begin(), by_rank_.end(), [this](SigId a, SigId b) {
    const int32_t dfa = df_.at(a);
    const int32_t dfb = df_.at(b);
    if (dfa != dfb) return dfa < dfb;
    return a < b;
  });
  rank_.reserve(by_rank_.size());
  for (int32_t r = 0; r < static_cast<int32_t>(by_rank_.size()); ++r) {
    rank_.emplace(by_rank_[r], r);
  }
}

int32_t GlobalSignatureOrder::Rank(SigId id) const {
  KJOIN_CHECK(finalized_);
  auto it = rank_.find(id);
  KJOIN_CHECK(it != rank_.end()) << "signature " << id << " was never counted";
  return it->second;
}

int32_t GlobalSignatureOrder::RankOr(SigId id, int32_t fallback) const {
  KJOIN_CHECK(finalized_);
  auto it = rank_.find(id);
  return it == rank_.end() ? fallback : it->second;
}

int32_t GlobalSignatureOrder::DocumentFrequency(SigId id) const {
  KJOIN_CHECK(finalized_) << "DocumentFrequency before Finalize";
  auto it = df_.find(id);
  return it == df_.end() ? 0 : it->second;
}

void SortByGlobalOrder(const GlobalSignatureOrder& order, std::vector<Signature>* sigs) {
  // Precompute ranks once, then sort by them.
  std::vector<std::pair<int32_t, Signature>> keyed;
  keyed.reserve(sigs->size());
  for (const Signature& sig : *sigs) keyed.emplace_back(order.Rank(sig.id), sig);
  std::sort(keyed.begin(), keyed.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second.element < b.second.element;
  });
  for (size_t i = 0; i < keyed.size(); ++i) (*sigs)[i] = keyed[i].second;
}

void SortByGlobalOrderWithRanks(const GlobalSignatureOrder& order,
                                std::vector<Signature>* sigs, std::vector<int32_t>* ranks) {
  std::vector<std::pair<int32_t, Signature>> keyed;
  keyed.reserve(sigs->size());
  for (const Signature& sig : *sigs) keyed.emplace_back(order.Rank(sig.id), sig);
  std::sort(keyed.begin(), keyed.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second.element < b.second.element;
  });
  ranks->resize(keyed.size());
  for (size_t i = 0; i < keyed.size(); ++i) {
    (*sigs)[i] = keyed[i].second;
    (*ranks)[i] = keyed[i].first;
  }
}

int32_t PrefixLengthDistinct(const std::vector<Signature>& sigs,
                             int32_t min_similar_elements) {
  if (sigs.empty()) return 0;
  if (min_similar_elements <= 0) return static_cast<int32_t>(sigs.size());
  // Walk from the tail, removing signatures while the removed set touches
  // at most τ_S − 1 distinct elements.
  std::unordered_map<int32_t, int32_t> removed_of_element;
  int32_t prefix = static_cast<int32_t>(sigs.size());
  while (prefix > 1) {
    const Signature& sig = sigs[prefix - 1];
    auto it = removed_of_element.find(sig.element);
    const bool new_element = (it == removed_of_element.end());
    if (new_element &&
        static_cast<int32_t>(removed_of_element.size()) + 1 > min_similar_elements - 1) {
      break;  // removing this signature would let the suffix cover τ_S elements
    }
    if (new_element) {
      removed_of_element.emplace(sig.element, 1);
    } else {
      ++it->second;
    }
    --prefix;
  }
  return prefix;
}

int32_t PrefixLengthWeighted(const std::vector<Signature>& sigs, double overlap_budget) {
  if (sigs.empty()) return 0;
  if (overlap_budget <= 0.0) return static_cast<int32_t>(sigs.size());

  // Total signature count per element, to detect full removal.
  std::unordered_map<int32_t, int32_t> total_of_element;
  for (const Signature& sig : sigs) ++total_of_element[sig.element];

  struct Removed {
    int32_t count = 0;
    double max_weight = 0.0;
  };
  std::unordered_map<int32_t, Removed> removed;
  double mass = 0.0;

  auto contribution = [&](const Removed& r, int32_t total) {
    if (r.count == 0) return 0.0;
    // A fully removed element can still be matched (similarity 1) by an
    // identical token whose own prefix survived, so it costs at least 1.
    return r.count >= total ? std::max(1.0, r.max_weight) : r.max_weight;
  };

  int32_t prefix = static_cast<int32_t>(sigs.size());
  while (prefix > 1) {
    const Signature& sig = sigs[prefix - 1];
    Removed& r = removed[sig.element];
    const int32_t total = total_of_element.at(sig.element);
    const double before = contribution(r, total);
    Removed after = r;
    ++after.count;
    after.max_weight = std::max(after.max_weight, static_cast<double>(sig.weight));
    const double new_mass = mass - before + contribution(after, total);
    if (new_mass >= overlap_budget - 1e-9) break;  // Definition 9's stop condition
    r = after;
    mass = new_mass;
    --prefix;
  }
  return prefix;
}

}  // namespace kjoin
