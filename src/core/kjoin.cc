#include "core/kjoin.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <new>
#include <string>
#include <unordered_map>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/prefix.h"
#include "core/simd.h"

namespace kjoin {

namespace {

// Minimum work per pool shard, per phase (docs/threading.md). An extra
// shard is only worth scheduling once it carries enough items to amortize
// waking a worker lane and warming that lane's per-thread state — the
// verification arena, the Hungarian scratch, and the SimCache L1 are all
// thread-local, so every additional shard starts them cold. Below the
// threshold the work collapses into fewer shards; a single shard runs
// inline on the calling thread with zero pool overhead, which keeps small
// joins monotone in num_threads instead of paying for parallelism they
// cannot use.
constexpr int64_t kMinPrepareObjectsPerShard = 8192;
constexpr int64_t kMinProbesPerShard = 8192;
constexpr int64_t kMinVerifyPairsPerShard = int64_t{1} << 18;

// Shard count for `items` units of work: at most one shard per
// min_per_shard items, never more than the pool's lanes, never less
// than one.
int ShardsForWork(int64_t items, int64_t min_per_shard, int lanes) {
  if (lanes <= 1 || items <= min_per_shard) return 1;
  return static_cast<int>(std::min<int64_t>(lanes, items / min_per_shard));
}

// Control-poll strides (see docs/robustness.md). Polls are one relaxed
// atomic bump plus an acquire load — and a steady_clock read only when a
// deadline is armed — so the strides just keep the clock reads off the
// innermost loops.
constexpr int64_t kPreparePollStride = 64;   // objects between polls
constexpr int64_t kProbePollStride = 16;     // probes between polls
constexpr int64_t kVerifyPollStride = 16;    // candidate pairs between polls
constexpr int64_t kIndexPollStride = 4096;   // indexed objects between polls

// First adaptive chunk (in probes) when a candidate byte budget is set;
// later chunks are sized from the observed emission rate.
constexpr int64_t kInitialBudgetChunk = 16;

}  // namespace

const char* JoinPhaseName(JoinPhase phase) {
  switch (phase) {
    case JoinPhase::kNone:
      return "none";
    case JoinPhase::kPrepare:
      return "prepare";
    case JoinPhase::kFilter:
      return "filter";
    case JoinPhase::kVerify:
      return "verify";
  }
  return "unknown";
}

// Shared deadline/cancel/guard state for one controlled run. Shards poll
// it concurrently; the first trip wins and pins the phase + Status, after
// which every poll answers "stop" and shards drain at their next boundary.
class KJoin::JoinController {
 public:
  explicit JoinController(const JoinControl& control)
      : cancel_(control.cancel_token), has_deadline_(control.deadline_seconds > 0.0) {
    if (has_deadline_) {
      deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(control.deadline_seconds));
    }
  }

  // True when a poll can trip the run; unbounded runs skip polling
  // entirely so the legacy path stays overhead-free.
  bool active() const { return cancel_ != nullptr || has_deadline_; }

  // Cooperative check; false once the run is tripped. The first failing
  // poll records the phase it happened in.
  bool Poll(JoinPhase phase) {
    polls_.fetch_add(1, std::memory_order_relaxed);
    if (tripped()) return false;
    if (cancel_ != nullptr && cancel_->cancelled()) {
      Trip(phase, CancelledError("join cancelled via CancelToken"));
      return false;
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      Trip(phase, DeadlineExceededError("join deadline exceeded"));
      return false;
    }
    return true;
  }

  // Records a failure (deadline, cancel, resource guard, allocation);
  // only the first trip's status and phase are kept.
  void Trip(JoinPhase phase, Status status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (status_.ok()) {
      status_ = std::move(status);
      phase_ = phase;
      tripped_.store(true, std::memory_order_release);
    }
  }

  bool tripped() const { return tripped_.load(std::memory_order_acquire); }
  int64_t polls() const { return polls_.load(std::memory_order_relaxed); }

  Status status() const {
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }
  JoinPhase phase() const {
    std::lock_guard<std::mutex> lock(mu_);
    return phase_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  const CancelToken* cancel_;
  const bool has_deadline_;
  Clock::time_point deadline_{};
  std::atomic<bool> tripped_{false};
  std::atomic<int64_t> polls_{0};
  mutable std::mutex mu_;
  Status status_;  // guarded by mu_, set once
  JoinPhase phase_ = JoinPhase::kNone;
};

KJoin::KJoin(const Hierarchy& hierarchy, KJoinOptions options)
    : hierarchy_(&hierarchy),
      options_(options),
      lca_(hierarchy),
      sim_cache_(options.sim_cache ? std::make_unique<SimCache>(options.sim_cache_capacity)
                                   : nullptr),
      element_sim_(lca_, options.element_metric, sim_cache_.get()),
      signatures_(hierarchy, options.element_metric, options.scheme, options.delta),
      verifier_(element_sim_, signatures_,
                VerifierOptions{options.delta, options.tau, options.verify_mode,
                                options.set_metric, options.count_pruning,
                                options.weighted_count_pruning, options.plus_mode}),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {
  KJOIN_CHECK(options.delta > 0.0 && options.delta <= 1.0);
  KJOIN_CHECK(options.tau >= 0.0 && options.tau <= 1.0);
  KJOIN_CHECK_GE(options.num_threads, 1);
  if (options.weighted_prefix) {
    KJOIN_CHECK(options.scheme == SignatureScheme::kDeepPath)
        << "the weighted prefix (Definition 9) is defined on deep path signatures";
  }
}

int32_t KJoin::PrefixLengthFor(const std::vector<Signature>& sigs, int32_t object_size) const {
  if (options_.weighted_prefix) {
    return PrefixLengthWeighted(
        sigs, MinOverlapWithAnyPartner(object_size, options_.tau, options_.set_metric));
  }
  return PrefixLengthDistinct(
      sigs, MinSimilarElements(object_size, options_.tau, options_.set_metric));
}

KJoin::Prepared KJoin::Prepare(const std::vector<const std::vector<Object>*>& collections,
                               GlobalSignatureOrder* order, JoinStats* stats,
                               JoinController* controller) const {
  std::vector<const Object*> objects;
  for (const auto* collection : collections) {
    for (const Object& object : *collection) objects.push_back(&object);
  }
  const int64_t n = static_cast<int64_t>(objects.size());
  const bool polled = controller->active();

  Prepared prepared;
  prepared.sigs.resize(n);
  prepared.prefix_len.assign(n, 0);
  prepared.prefix_ranks.resize(n);
  const int lanes = ShardsForWork(n, kMinPrepareObjectsPerShard, pool_->num_threads());

  // Pass 1: per-shard signature generation with shard-local df maps; the
  // maps merge into the order afterwards (order-insensitive sums), so the
  // final global order is independent of num_threads.
  std::vector<std::unordered_map<SigId, int32_t>> shard_df(lanes);
  std::vector<int64_t> shard_total(lanes, 0);
  stats->prepare_tasks +=
      pool_->ParallelFor(n, lanes, [&](int shard, int64_t begin, int64_t end) {
        int64_t since_poll = 0;
        for (int64_t i = begin; i < end; ++i) {
          if (polled && (since_poll++ % kPreparePollStride) == 0 &&
              !controller->Poll(JoinPhase::kPrepare)) {
            return;
          }
          prepared.sigs[i] = signatures_.Generate(*objects[i]);
          GlobalSignatureOrder::CountDistinct(prepared.sigs[i], &shard_df[shard]);
          shard_total[shard] += static_cast<int64_t>(prepared.sigs[i].size());
        }
      });
  if (controller->tripped()) return prepared;
  for (int s = 0; s < lanes; ++s) {
    order->MergeCounts(shard_df[s]);
    stats->total_signatures += shard_total[s];
  }
  order->Finalize();

  // Pass 2: global-order sort and prefix lengths, embarrassingly parallel
  // per object.
  std::vector<int64_t> shard_prefix(lanes, 0);
  stats->prepare_tasks +=
      pool_->ParallelFor(n, lanes, [&](int shard, int64_t begin, int64_t end) {
        int64_t since_poll = 0;
        static thread_local std::vector<int32_t> ranks;
        for (int64_t i = begin; i < end; ++i) {
          if (polled && (since_poll++ % kPreparePollStride) == 0 &&
              !controller->Poll(JoinPhase::kPrepare)) {
            return;
          }
          SortByGlobalOrderWithRanks(*order, &prepared.sigs[i], &ranks);
          const int32_t prefix = PrefixLengthFor(prepared.sigs[i], objects[i]->size());
          prepared.prefix_len[i] = prefix;
          shard_prefix[shard] += prefix;
          // The prefix as deduplicated ranks: sorted ascending, so equal
          // ranks (one signature reached through several elements) are
          // adjacent.
          std::vector<int32_t>& out = prepared.prefix_ranks[i];
          out.reserve(prefix);
          int32_t previous_rank = -1;
          for (int32_t k = 0; k < prefix; ++k) {
            if (ranks[k] == previous_rank) continue;
            previous_rank = ranks[k];
            out.push_back(previous_rank);
          }
        }
      });
  for (int s = 0; s < lanes; ++s) stats->prefix_signatures += shard_prefix[s];
  return prepared;
}

void KJoin::GenerateCandidates(
    int64_t num_probes,
    const std::function<void(int, int32_t, int32_t,
                             std::vector<std::pair<int32_t, int32_t>>*)>& probe,
    std::vector<std::pair<int32_t, int32_t>>* candidates, JoinStats* stats) const {
  const int lanes = ShardsForWork(num_probes, kMinProbesPerShard, pool_->num_threads());
  if (lanes == 1) {
    // One lane: probe straight into the output, skipping the merge copy.
    const size_t before = candidates->size();
    stats->filter_tasks +=
        pool_->ParallelFor(num_probes, 1, [&](int shard, int64_t begin, int64_t end) {
          probe(shard, static_cast<int32_t>(begin), static_cast<int32_t>(end), candidates);
        });
    if (num_probes > 0) {
      stats->shard_candidates.push_back(static_cast<int64_t>(candidates->size() - before));
    }
    return;
  }

  std::vector<std::vector<std::pair<int32_t, int32_t>>> found(lanes);
  const int tasks =
      pool_->ParallelFor(num_probes, lanes, [&](int shard, int64_t begin, int64_t end) {
        probe(shard, static_cast<int32_t>(begin), static_cast<int32_t>(end), &found[shard]);
      });
  stats->filter_tasks += tasks;
  size_t total = candidates->size();
  for (int s = 0; s < tasks; ++s) total += found[s].size();
  candidates->reserve(total);
  // Shards cover probes in ascending contiguous ranges, so a shard-order
  // merge reproduces the global probe order exactly.
  for (int s = 0; s < tasks; ++s) {
    stats->shard_candidates.push_back(static_cast<int64_t>(found[s].size()));
    candidates->insert(candidates->end(), found[s].begin(), found[s].end());
  }
}

void KJoin::VerifyCandidates(const std::vector<Object>& left,
                             const std::vector<Object>& right,
                             const std::vector<std::pair<int32_t, int32_t>>& candidates,
                             JoinResult* result, JoinController* controller) const {
  WallTimer timer;
  const int64_t n = static_cast<int64_t>(candidates.size());
  result->stats.candidates += n;
  if (n == 0) {
    result->stats.verify_seconds += timer.ElapsedSeconds();
    return;
  }
  const bool polled = controller->active();

  // Per-object grouping plans, built once up front: an object recurs in
  // many candidate pairs, and the plan (partition signatures + argsort) is
  // the pair-invariant half of group construction. Plans are read-only
  // during verification, so every shard shares them.
  std::vector<ObjectGroupPlan> left_plans(left.size());
  for (size_t o = 0; o < left.size(); ++o) verifier_.BuildPlan(left[o], &left_plans[o]);
  std::vector<ObjectGroupPlan> right_plans_storage;
  if (&right != &left) {
    right_plans_storage.resize(right.size());
    for (size_t o = 0; o < right.size(); ++o) {
      verifier_.BuildPlan(right[o], &right_plans_storage[o]);
    }
  }
  const std::vector<ObjectGroupPlan>& right_plans =
      &right != &left ? right_plans_storage : left_plans;
  // Shard count sized from the measured candidate count: each shard must
  // carry enough verification work to amortize waking a lane and warming
  // its thread-local arena (ShardsForWork above).
  const int max_shards =
      ShardsForWork(n, kMinVerifyPairsPerShard, pool_->num_threads());

  // Verification order: within each probe's candidate run, the pairs with
  // the largest cheap similarity upper bound — the similarity the two
  // objects would reach if every element of the smaller side matched
  // perfectly — go first. Near-duplicates are verified while the SimCache
  // lines their element pairs touch are hottest, and clear rejects sink to
  // the end of the run. Acceptance is decided per pair, so the order
  // cannot change the outcome; the flags below restore candidate order on
  // emission, keeping results byte-identical to an unordered run.
  std::vector<int64_t> order(n);
  std::vector<double> bound(n);
  for (int64_t i = 0; i < n; ++i) {
    order[i] = i;
    const auto& [l, r] = candidates[i];
    const int32_t sx = left[l].size();
    const int32_t sy = right[r].size();
    bound[i] = CombineOverlap(std::min(sx, sy), sx, sy, options_.set_metric);
  }
  for (int64_t run = 0; run < n;) {
    int64_t end = run;
    while (end < n && candidates[end].second == candidates[run].second) ++end;
    std::sort(order.begin() + run, order.begin() + end, [&](int64_t a, int64_t b) {
      if (bound[a] != bound[b]) return bound[a] > bound[b];
      return a < b;
    });
    run = end;
  }

  // Accept flags (1 = similar), written by the shard that verifies the
  // pair; contiguous shards over `order` touch disjoint flag slots.
  std::vector<char> similar(n, 0);

  // Runs inside a pool lane; never lets an exception escape into the pool
  // (that would terminate the process). Allocation failure — Hungarian /
  // SubGraph scratch on a pathological pair can be large — becomes a
  // kResourceExhausted trip with everything verified so far kept.
  auto verify_range = [&](int64_t begin, int64_t end, VerifyStats* vs) {
    try {
      int64_t since_poll = 0;
      for (int64_t k = begin; k < end; ++k) {
        if (polled && (since_poll++ % kVerifyPollStride) == 0 &&
            !controller->Poll(JoinPhase::kVerify)) {
          return;
        }
        const int64_t i = order[k];
        const auto& [l, r] = candidates[i];
        if (verifier_.Verify(left[l], right[r], left_plans[l], right_plans[r], vs)) {
          similar[i] = 1;
        }
      }
    } catch (const std::bad_alloc&) {
      controller->Trip(JoinPhase::kVerify,
                       ResourceExhaustedError("allocation failed while verifying a candidate "
                                              "pair; results so far are partial"));
    }
  };

  // Per-shard stats merge into one deterministic sum (all integer
  // counters, so the shard count cannot change the totals).
  std::vector<VerifyStats> stats(max_shards);
  const int tasks =
      pool_->ParallelFor(n, max_shards, [&](int shard, int64_t begin, int64_t end) {
        verify_range(begin, end, &stats[shard]);
      });
  result->stats.verify_tasks += tasks;
  for (int s = 0; s < tasks; ++s) result->stats.verify.Add(stats[s]);
  // Emit in candidate order regardless of verification order or sharding.
  for (int64_t i = 0; i < n; ++i) {
    if (similar[i]) result->pairs.push_back(candidates[i]);
  }
  result->stats.verify_seconds += timer.ElapsedSeconds();
}

SimCacheStats KJoin::CacheStats() const {
  return sim_cache_ != nullptr ? sim_cache_->stats() : SimCacheStats{};
}

void KJoin::FinishStats(const ThreadPoolStats& pool_before, const SimCacheStats& cache_before,
                        JoinStats* stats) const {
  const ThreadPoolStats after = pool_->stats();
  stats->threads = pool_->num_threads();
  stats->pool_busy_seconds = after.busy_seconds - pool_before.busy_seconds;
  if (stats->total_seconds > 0.0) {
    stats->pool_utilization =
        stats->pool_busy_seconds / (pool_->num_threads() * stats->total_seconds);
  }
  const SimCacheStats cache_after = CacheStats();
  stats->sim_cache_hits = cache_after.hits() - cache_before.hits();
  stats->sim_cache_misses = cache_after.misses - cache_before.misses;
  const int64_t lookups = stats->sim_cache_hits + stats->sim_cache_misses;
  if (lookups > 0) {
    stats->sim_cache_hit_rate =
        static_cast<double>(stats->sim_cache_hits) / static_cast<double>(lookups);
  }
}

Status KJoin::JoinImpl(const std::vector<Object>& left, const std::vector<Object>& right,
                       bool self, const JoinControl& control, JoinResult* result) const {
  KJOIN_CHECK(result != nullptr);
  *result = JoinResult();
  if (!FitsObjectIdSpace(left.size()) || KJOIN_FAULT_POINT("kjoin/id_space")) {
    return InvalidArgumentError(
        (self ? "collection of " : "left collection of ") + std::to_string(left.size()) +
        " objects exceeds the int32_t object-id space (max " +
        std::to_string(kMaxJoinCollectionSize) + "); shard the input");
  }
  if (!self && !FitsObjectIdSpace(right.size())) {
    return InvalidArgumentError(
        "right collection of " + std::to_string(right.size()) +
        " objects exceeds the int32_t object-id space (max " +
        std::to_string(kMaxJoinCollectionSize) + "); shard the input");
  }
  const std::vector<Object>& rhs = self ? left : right;
  result->stats.num_objects_left = static_cast<int64_t>(left.size());
  result->stats.num_objects_right = static_cast<int64_t>(rhs.size());

  JoinController controller(control);
  const bool polled = controller.active();
  const ThreadPoolStats pool_before = pool_->stats();
  const SimCacheStats cache_before = CacheStats();
  WallTimer total_timer;

  // ---- prepare ----
  WallTimer phase_timer;
  GlobalSignatureOrder order;
  // Signatures and the global order span both collections (§6.1).
  const Prepared prepared =
      self ? Prepare({&left}, &order, &result->stats, &controller)
           : Prepare({&left, &right}, &order, &result->stats, &controller);
  result->stats.signature_seconds = phase_timer.ElapsedSeconds();

  // ---- filter: index left prefixes, probe (self: probe x reads y < x) ----
  phase_timer.Restart();
  // Rank-keyed CSR over the indexed prefixes: one flat doc array plus a
  // rank -> [begin, end) offset table. Lists ascend by construction (the
  // fill pass walks objects in order), which the self-join cutoff and the
  // ScanCount accumulator both rely on. Built in a count + fill pass; a
  // mid-build trip leaves the arrays inconsistent, but a tripped
  // controller zeroes num_probes so they are never probed.
  const int32_t num_ranks = order.num_signatures();
  const int32_t num_indexed = static_cast<int32_t>(left.size());
  std::vector<int64_t> rank_offset(static_cast<size_t>(num_ranks) + 1, 0);
  std::vector<int32_t> rank_docs;
  if (!controller.tripped()) {
    int64_t since_poll = 0;
    bool counted = true;
    for (int32_t x = 0; x < num_indexed; ++x) {
      if (polled && (since_poll++ % kIndexPollStride) == 0 &&
          !controller.Poll(JoinPhase::kFilter)) {
        counted = false;
        break;
      }
      for (const int32_t rank : prepared.prefix_ranks[x]) ++rank_offset[rank + 1];
    }
    if (counted) {
      for (int32_t r = 0; r < num_ranks; ++r) rank_offset[r + 1] += rank_offset[r];
      rank_docs.resize(static_cast<size_t>(rank_offset[num_ranks]));
      std::vector<int64_t> cursor(rank_offset.begin(), rank_offset.end() - 1);
      for (int32_t x = 0; x < num_indexed; ++x) {
        if (polled && (since_poll++ % kIndexPollStride) == 0 &&
            !controller.Poll(JoinPhase::kFilter)) {
          break;
        }
        for (const int32_t rank : prepared.prefix_ranks[x]) {
          rank_docs[static_cast<size_t>(cursor[rank]++)] = x;
        }
      }
    }
  }

  const int32_t num_probes =
      controller.tripped() ? 0 : static_cast<int32_t>(self ? left.size() : right.size());
  const size_t probe_sig_offset = self ? 0 : left.size();
  const int64_t max_per_probe = control.max_candidates_per_probe;
  // Candidate pairs buffered at once under the byte budget (0 = unlimited).
  const int64_t pair_bytes = static_cast<int64_t>(sizeof(std::pair<int32_t, int32_t>));
  const int64_t max_buffered =
      control.candidate_byte_budget > 0
          ? std::max<int64_t>(int64_t{1}, control.candidate_byte_budget / pair_bytes)
          : 0;

  // The probe body is shared by self and R-S joins: both emit
  // (indexed id, probe id) pairs in probe order; self mode additionally
  // stops each posting list at the probe itself (ascending lists).
  //
  // Each probe ScanCounts its prefix's posting lists into a dense
  // per-shard counter array and extracts the touched objects in ascending
  // order (simd.h kernels). The candidate SET per probe is identical to
  // the old per-list dedup walk; within a probe the emission order is
  // ascending-by-index instead of first-occurrence, which no consumer
  // observes (verification restores candidate order, results are sets).
  auto probe = [&](int /*shard*/, int32_t begin, int32_t end,
                   std::vector<std::pair<int32_t, int32_t>>* out) {
    const size_t shard_base = out->size();
    // Counters stay all-zero between probes: extraction clears as it
    // drains, so only touched blocks are ever revisited.
    std::vector<uint8_t> counts(left.size(), 0);
    const int64_t counter_blocks =
        (static_cast<int64_t>(left.size()) + simd::kCounterBlock - 1) / simd::kCounterBlock;
    std::vector<uint64_t> touched(static_cast<size_t>((counter_blocks + 63) / 64), 0);
    int32_t block_buf[simd::kCounterBlock];
    int64_t since_poll = 0;
    for (int32_t p = begin; p < end; ++p) {
      if (polled && (since_poll++ % kProbePollStride) == 0 &&
          !controller.Poll(JoinPhase::kFilter)) {
        return;
      }
      const size_t probe_base = out->size();
      const int32_t limit = self ? p : num_indexed;
      if (limit > 0) {
        for (const int32_t rank : prepared.prefix_ranks[probe_sig_offset + p]) {
          const int32_t* list = rank_docs.data() + rank_offset[rank];
          int32_t n = static_cast<int32_t>(rank_offset[rank + 1] - rank_offset[rank]);
          if (self && n > 0 && list[n - 1] >= limit) {
            // Ascending list: clip to entries below the probe BEFORE
            // accumulating, so counters past the cutoff stay untouched.
            n = static_cast<int32_t>(std::lower_bound(list, list + n, limit) - list);
          }
          simd::AccumulateCounts(list, n, counts.data(), touched.data());
        }
        for (size_t w = 0; w < touched.size(); ++w) {
          uint64_t bits = touched[w];
          if (bits == 0) continue;
          touched[w] = 0;
          while (bits != 0) {
            const int bit = __builtin_ctzll(bits);
            bits &= bits - 1;
            const int64_t block_begin =
                (static_cast<int64_t>(w) * 64 + bit) * simd::kCounterBlock;
            const int32_t len = static_cast<int32_t>(std::min<int64_t>(
                simd::kCounterBlock, static_cast<int64_t>(left.size()) - block_begin));
            const int32_t found = simd::ExtractAndClearBlock(
                counts.data() + block_begin, static_cast<int32_t>(block_begin), len,
                /*threshold=*/1, block_buf);
            for (int32_t v = 0; v < found; ++v) out->emplace_back(block_buf[v], p);
          }
        }
        if (max_per_probe > 0 &&
            static_cast<int64_t>(out->size() - probe_base) > max_per_probe) {
          controller.Trip(
              JoinPhase::kFilter,
              ResourceExhaustedError(
                  "probe object " + std::to_string(p) + " emitted " +
                  std::to_string(out->size() - probe_base) +
                  " candidates, over max_candidates_per_probe=" +
                  std::to_string(max_per_probe) + "; results so far are partial"));
          return;
        }
      }
      // Hard memory backstop: chunks are sized to emit about one budget's
      // worth, and the rate estimate lags by at most ~2x on steadily
      // densifying workloads; a single shard emitting four budgets in one
      // chunk means a hub probe blew the estimate — give up instead of
      // ballooning further.
      if (max_buffered > 0 &&
          static_cast<int64_t>(out->size() - shard_base) >= 4 * max_buffered) {
        controller.Trip(
            JoinPhase::kFilter,
            ResourceExhaustedError(
                "candidate buffer overflowed candidate_byte_budget=" +
                std::to_string(control.candidate_byte_budget) + " at probe object " +
                std::to_string(p) + "; results so far are partial"));
        return;
      }
    }
  };

  // Candidate generation, chunked only when a byte budget is set. Chunk
  // sizes derive from deterministic emission counts, so the pair stream —
  // and therefore the verified result — is byte-identical to an
  // unbudgeted run that stays under budget.
  std::vector<std::pair<int32_t, int32_t>> candidates;
  int32_t next = 0;
  int64_t probes_done = 0;
  int64_t emitted_seen = 0;
  while (next < num_probes && !controller.tripped()) {
    int64_t chunk = num_probes;
    if (max_buffered > 0) {
      if (probes_done == 0) {
        chunk = kInitialBudgetChunk;
      } else {
        const int64_t rate = std::max<int64_t>(1, emitted_seen / probes_done);
        const int64_t headroom =
            max_buffered - static_cast<int64_t>(candidates.size());
        chunk = std::max<int64_t>(1, headroom / rate);
      }
    }
    const int32_t take = static_cast<int32_t>(
        std::min<int64_t>(chunk, static_cast<int64_t>(num_probes - next)));
    const int32_t chunk_begin = next;
    const size_t before = candidates.size();
    GenerateCandidates(
        take,
        [&](int shard, int32_t b, int32_t e, std::vector<std::pair<int32_t, int32_t>>* out) {
          probe(shard, chunk_begin + b, chunk_begin + e, out);
        },
        &candidates, &result->stats);
    next += take;
    probes_done += take;
    const int64_t chunk_emitted = static_cast<int64_t>(candidates.size() - before);
    emitted_seen += chunk_emitted;
    if (controller.tripped()) break;
    if (max_buffered > 0 && static_cast<int64_t>(candidates.size()) >= max_buffered) {
      // Budget full: spill — verify the buffer now as a smaller batch and
      // continue probing with a drained buffer.
      ++result->stats.budget_spills;
      result->stats.filter_seconds += phase_timer.ElapsedSeconds();
      VerifyCandidates(left, rhs, candidates, result, &controller);
      ++result->stats.verify_batches;
      const bool single_probe_overflow = take == 1 && chunk_emitted >= max_buffered;
      candidates.clear();
      candidates.shrink_to_fit();
      phase_timer.Restart();
      if (single_probe_overflow) {
        // Degradation bottomed out: one probe alone fills the budget. Its
        // candidates were verified above, but the promised memory bound
        // cannot be honored, so the join stops here.
        controller.Trip(
            JoinPhase::kFilter,
            ResourceExhaustedError(
                "probe object " + std::to_string(next - 1) + " alone emitted " +
                std::to_string(chunk_emitted) + " candidates (" +
                std::to_string(chunk_emitted * pair_bytes) +
                " bytes), filling candidate_byte_budget=" +
                std::to_string(control.candidate_byte_budget) +
                "; results so far are partial"));
      }
    }
  }
  result->stats.filter_seconds += phase_timer.ElapsedSeconds();

  // ---- verify (final batch) ----
  if (!controller.tripped()) {
    VerifyCandidates(left, rhs, candidates, result, &controller);
    ++result->stats.verify_batches;
  }

  result->stats.results = static_cast<int64_t>(result->pairs.size());
  result->stats.total_seconds = total_timer.ElapsedSeconds();
  result->stats.stopped_phase = controller.phase();
  result->stats.control_polls = controller.polls();
  FinishStats(pool_before, cache_before, &result->stats);
  return controller.status();
}

Status KJoin::SelfJoin(const std::vector<Object>& objects, const JoinControl& control,
                       JoinResult* result) const {
  return JoinImpl(objects, objects, /*self=*/true, control, result);
}

Status KJoin::Join(const std::vector<Object>& left, const std::vector<Object>& right,
                   const JoinControl& control, JoinResult* result) const {
  return JoinImpl(left, right, /*self=*/false, control, result);
}

JoinResult KJoin::SelfJoin(const std::vector<Object>& objects) const {
  JoinResult result;
  const Status status = JoinImpl(objects, objects, /*self=*/true, JoinControl{}, &result);
  KJOIN_CHECK(status.ok()) << status;
  return result;
}

JoinResult KJoin::Join(const std::vector<Object>& left,
                       const std::vector<Object>& right) const {
  JoinResult result;
  const Status status = JoinImpl(left, right, /*self=*/false, JoinControl{}, &result);
  KJOIN_CHECK(status.ok()) << status;
  return result;
}

double KJoin::ExactSimilarity(const Object& x, const Object& y) const {
  return verifier_.ExactSimilarity(x, y);
}

}  // namespace kjoin
