#include "core/kjoin.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "common/timer.h"
#include "core/inverted_index.h"
#include "core/prefix.h"

namespace kjoin {

KJoin::KJoin(const Hierarchy& hierarchy, KJoinOptions options)
    : hierarchy_(&hierarchy),
      options_(options),
      lca_(hierarchy),
      element_sim_(lca_, options.element_metric),
      signatures_(hierarchy, options.element_metric, options.scheme, options.delta),
      verifier_(element_sim_, signatures_,
                VerifierOptions{options.delta, options.tau, options.verify_mode,
                                options.set_metric, options.count_pruning,
                                options.weighted_count_pruning, options.plus_mode}) {
  KJOIN_CHECK(options.delta > 0.0 && options.delta <= 1.0);
  KJOIN_CHECK(options.tau >= 0.0 && options.tau <= 1.0);
  KJOIN_CHECK_GE(options.num_threads, 1);
  if (options.weighted_prefix) {
    KJOIN_CHECK(options.scheme == SignatureScheme::kDeepPath)
        << "the weighted prefix (Definition 9) is defined on deep path signatures";
  }
}

int32_t KJoin::PrefixLengthFor(const std::vector<Signature>& sigs, int32_t object_size) const {
  if (options_.weighted_prefix) {
    return PrefixLengthWeighted(
        sigs, MinOverlapWithAnyPartner(object_size, options_.tau, options_.set_metric));
  }
  return PrefixLengthDistinct(
      sigs, MinSimilarElements(object_size, options_.tau, options_.set_metric));
}

KJoin::Prepared KJoin::Prepare(const std::vector<const std::vector<Object>*>& collections,
                               GlobalSignatureOrder* order, JoinStats* stats) const {
  Prepared prepared;
  int64_t total_objects = 0;
  for (const auto* collection : collections) {
    total_objects += static_cast<int64_t>(collection->size());
  }
  prepared.sigs.reserve(total_objects);
  prepared.prefix_len.reserve(total_objects);

  for (const auto* collection : collections) {
    for (const Object& object : *collection) {
      prepared.sigs.push_back(signatures_.Generate(object));
      order->CountObject(prepared.sigs.back());
      stats->total_signatures += static_cast<int64_t>(prepared.sigs.back().size());
    }
  }
  order->Finalize();

  size_t index = 0;
  for (const auto* collection : collections) {
    for (const Object& object : *collection) {
      SortByGlobalOrder(*order, &prepared.sigs[index]);
      const int32_t prefix = PrefixLengthFor(prepared.sigs[index], object.size());
      prepared.prefix_len.push_back(prefix);
      stats->prefix_signatures += prefix;
      ++index;
    }
  }
  return prepared;
}

void KJoin::VerifyCandidates(const std::vector<Object>& left,
                             const std::vector<Object>& right,
                             const std::vector<std::pair<int32_t, int32_t>>& candidates,
                             JoinResult* result) const {
  WallTimer timer;
  result->stats.candidates += static_cast<int64_t>(candidates.size());
  const int num_threads = std::max(1, options_.num_threads);

  if (num_threads == 1 || candidates.size() < 2048) {
    for (const auto& [l, r] : candidates) {
      if (verifier_.Verify(left[l], right[r], &result->stats.verify)) {
        result->pairs.emplace_back(l, r);
      }
    }
    result->stats.verify_seconds += timer.ElapsedSeconds();
    return;
  }

  // Contiguous chunks keep the output in candidate order after an
  // in-order merge.
  std::vector<std::vector<std::pair<int32_t, int32_t>>> found(num_threads);
  std::vector<VerifyStats> stats(num_threads);
  const size_t chunk = (candidates.size() + num_threads - 1) / num_threads;
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    const size_t begin = std::min(candidates.size(), t * chunk);
    const size_t end = std::min(candidates.size(), begin + chunk);
    workers.emplace_back([&, t, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        const auto& [l, r] = candidates[i];
        if (verifier_.Verify(left[l], right[r], &stats[t])) {
          found[t].emplace_back(l, r);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (int t = 0; t < num_threads; ++t) {
    result->stats.verify.Add(stats[t]);
    result->pairs.insert(result->pairs.end(), found[t].begin(), found[t].end());
  }
  result->stats.verify_seconds += timer.ElapsedSeconds();
}

JoinResult KJoin::SelfJoin(const std::vector<Object>& objects) const {
  JoinResult result;
  result.stats.num_objects_left = static_cast<int64_t>(objects.size());
  result.stats.num_objects_right = result.stats.num_objects_left;
  WallTimer total_timer;

  WallTimer phase_timer;
  GlobalSignatureOrder order;
  const Prepared prepared = Prepare({&objects}, &order, &result.stats);
  result.stats.signature_seconds = phase_timer.ElapsedSeconds();

  // Candidate generation: stream objects through the inverted index.
  phase_timer.Restart();
  InvertedIndex index(order.num_signatures());
  std::vector<int32_t> last_probe(objects.size(), -1);
  std::vector<std::pair<int32_t, int32_t>> candidates;
  for (int32_t x = 0; x < static_cast<int32_t>(objects.size()); ++x) {
    const std::vector<Signature>& sigs = prepared.sigs[x];
    const int32_t prefix = prepared.prefix_len[x];
    int32_t previous_rank = -1;
    for (int32_t k = 0; k < prefix; ++k) {
      const int32_t rank = order.Rank(sigs[k].id);
      if (rank == previous_rank) continue;  // duplicate signature value
      previous_rank = rank;
      for (int32_t y : index.List(rank)) {
        if (last_probe[y] == x) continue;
        last_probe[y] = x;
        candidates.emplace_back(y, x);
      }
    }
    previous_rank = -1;
    for (int32_t k = 0; k < prefix; ++k) {
      const int32_t rank = order.Rank(sigs[k].id);
      if (rank == previous_rank) continue;
      previous_rank = rank;
      index.Add(rank, x);
    }
  }
  result.stats.filter_seconds = phase_timer.ElapsedSeconds();

  VerifyCandidates(objects, objects, candidates, &result);

  result.stats.results = static_cast<int64_t>(result.pairs.size());
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

JoinResult KJoin::Join(const std::vector<Object>& left,
                       const std::vector<Object>& right) const {
  JoinResult result;
  result.stats.num_objects_left = static_cast<int64_t>(left.size());
  result.stats.num_objects_right = static_cast<int64_t>(right.size());
  WallTimer total_timer;

  WallTimer phase_timer;
  GlobalSignatureOrder order;
  // Signatures and the global order span both collections (§6.1).
  const Prepared prepared = Prepare({&left, &right}, &order, &result.stats);
  result.stats.signature_seconds = phase_timer.ElapsedSeconds();
  const size_t right_offset = left.size();

  // Index the left collection's prefixes, probe with the right's.
  phase_timer.Restart();
  InvertedIndex index(order.num_signatures());
  for (int32_t l = 0; l < static_cast<int32_t>(left.size()); ++l) {
    const std::vector<Signature>& sigs = prepared.sigs[l];
    int32_t previous_rank = -1;
    for (int32_t k = 0; k < prepared.prefix_len[l]; ++k) {
      const int32_t rank = order.Rank(sigs[k].id);
      if (rank == previous_rank) continue;
      previous_rank = rank;
      index.Add(rank, l);
    }
  }
  std::vector<int32_t> last_probe(left.size(), -1);
  std::vector<std::pair<int32_t, int32_t>> candidates;
  for (int32_t r = 0; r < static_cast<int32_t>(right.size()); ++r) {
    const std::vector<Signature>& sigs = prepared.sigs[right_offset + r];
    int32_t previous_rank = -1;
    for (int32_t k = 0; k < prepared.prefix_len[right_offset + r]; ++k) {
      const int32_t rank = order.Rank(sigs[k].id);
      if (rank == previous_rank) continue;
      previous_rank = rank;
      for (int32_t l : index.List(rank)) {
        if (last_probe[l] == r) continue;
        last_probe[l] = r;
        candidates.emplace_back(l, r);
      }
    }
  }
  result.stats.filter_seconds = phase_timer.ElapsedSeconds();

  VerifyCandidates(left, right, candidates, &result);

  result.stats.results = static_cast<int64_t>(result.pairs.size());
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

double KJoin::ExactSimilarity(const Object& x, const Object& y) const {
  return verifier_.ExactSimilarity(x, y);
}

}  // namespace kjoin
