#include "core/kjoin.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/timer.h"
#include "core/inverted_index.h"
#include "core/prefix.h"

namespace kjoin {

namespace {

// Below this many candidates the sharding bookkeeping costs more than the
// verification it parallelizes.
constexpr size_t kMinParallelVerify = 2048;

}  // namespace

KJoin::KJoin(const Hierarchy& hierarchy, KJoinOptions options)
    : hierarchy_(&hierarchy),
      options_(options),
      lca_(hierarchy),
      sim_cache_(options.sim_cache ? std::make_unique<SimCache>(options.sim_cache_capacity)
                                   : nullptr),
      element_sim_(lca_, options.element_metric, sim_cache_.get()),
      signatures_(hierarchy, options.element_metric, options.scheme, options.delta),
      verifier_(element_sim_, signatures_,
                VerifierOptions{options.delta, options.tau, options.verify_mode,
                                options.set_metric, options.count_pruning,
                                options.weighted_count_pruning, options.plus_mode}),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {
  KJOIN_CHECK(options.delta > 0.0 && options.delta <= 1.0);
  KJOIN_CHECK(options.tau >= 0.0 && options.tau <= 1.0);
  KJOIN_CHECK_GE(options.num_threads, 1);
  if (options.weighted_prefix) {
    KJOIN_CHECK(options.scheme == SignatureScheme::kDeepPath)
        << "the weighted prefix (Definition 9) is defined on deep path signatures";
  }
}

int32_t KJoin::PrefixLengthFor(const std::vector<Signature>& sigs, int32_t object_size) const {
  if (options_.weighted_prefix) {
    return PrefixLengthWeighted(
        sigs, MinOverlapWithAnyPartner(object_size, options_.tau, options_.set_metric));
  }
  return PrefixLengthDistinct(
      sigs, MinSimilarElements(object_size, options_.tau, options_.set_metric));
}

KJoin::Prepared KJoin::Prepare(const std::vector<const std::vector<Object>*>& collections,
                               GlobalSignatureOrder* order, JoinStats* stats) const {
  std::vector<const Object*> objects;
  for (const auto* collection : collections) {
    for (const Object& object : *collection) objects.push_back(&object);
  }
  const int64_t n = static_cast<int64_t>(objects.size());

  Prepared prepared;
  prepared.sigs.resize(n);
  prepared.prefix_len.assign(n, 0);
  const int lanes = pool_->num_threads();

  // Pass 1: per-shard signature generation with shard-local df maps; the
  // maps merge into the order afterwards (order-insensitive sums), so the
  // final global order is independent of num_threads.
  std::vector<std::unordered_map<SigId, int32_t>> shard_df(lanes);
  std::vector<int64_t> shard_total(lanes, 0);
  stats->prepare_tasks +=
      pool_->ParallelFor(n, lanes, [&](int shard, int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          prepared.sigs[i] = signatures_.Generate(*objects[i]);
          GlobalSignatureOrder::CountDistinct(prepared.sigs[i], &shard_df[shard]);
          shard_total[shard] += static_cast<int64_t>(prepared.sigs[i].size());
        }
      });
  for (int s = 0; s < lanes; ++s) {
    order->MergeCounts(shard_df[s]);
    stats->total_signatures += shard_total[s];
  }
  order->Finalize();

  // Pass 2: global-order sort and prefix lengths, embarrassingly parallel
  // per object.
  std::vector<int64_t> shard_prefix(lanes, 0);
  stats->prepare_tasks +=
      pool_->ParallelFor(n, lanes, [&](int shard, int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          SortByGlobalOrder(*order, &prepared.sigs[i]);
          const int32_t prefix = PrefixLengthFor(prepared.sigs[i], objects[i]->size());
          prepared.prefix_len[i] = prefix;
          shard_prefix[shard] += prefix;
        }
      });
  for (int s = 0; s < lanes; ++s) stats->prefix_signatures += shard_prefix[s];
  return prepared;
}

void KJoin::GenerateCandidates(
    int64_t num_probes,
    const std::function<void(int, int32_t, int32_t,
                             std::vector<std::pair<int32_t, int32_t>>*)>& probe,
    std::vector<std::pair<int32_t, int32_t>>* candidates, JoinStats* stats) const {
  const int lanes = pool_->num_threads();
  if (lanes == 1) {
    // One lane: probe straight into the output, skipping the merge copy.
    const size_t before = candidates->size();
    stats->filter_tasks +=
        pool_->ParallelFor(num_probes, 1, [&](int shard, int64_t begin, int64_t end) {
          probe(shard, static_cast<int32_t>(begin), static_cast<int32_t>(end), candidates);
        });
    if (num_probes > 0) {
      stats->shard_candidates.push_back(static_cast<int64_t>(candidates->size() - before));
    }
    return;
  }

  std::vector<std::vector<std::pair<int32_t, int32_t>>> found(lanes);
  const int tasks =
      pool_->ParallelFor(num_probes, lanes, [&](int shard, int64_t begin, int64_t end) {
        probe(shard, static_cast<int32_t>(begin), static_cast<int32_t>(end), &found[shard]);
      });
  stats->filter_tasks += tasks;
  size_t total = candidates->size();
  for (int s = 0; s < tasks; ++s) total += found[s].size();
  candidates->reserve(total);
  // Shards cover probes in ascending contiguous ranges, so a shard-order
  // merge reproduces the global probe order exactly.
  for (int s = 0; s < tasks; ++s) {
    stats->shard_candidates.push_back(static_cast<int64_t>(found[s].size()));
    candidates->insert(candidates->end(), found[s].begin(), found[s].end());
  }
}

void KJoin::VerifyCandidates(const std::vector<Object>& left,
                             const std::vector<Object>& right,
                             const std::vector<std::pair<int32_t, int32_t>>& candidates,
                             JoinResult* result) const {
  WallTimer timer;
  result->stats.candidates += static_cast<int64_t>(candidates.size());
  // ParallelFor never schedules empty shards, so tiny batches cost at most
  // one task; the explicit clamp only avoids sharding overhead on batches
  // that are nontrivial yet still too small to win.
  const int max_shards =
      candidates.size() < kMinParallelVerify ? 1 : pool_->num_threads();

  if (max_shards == 1) {
    result->stats.verify_tasks += pool_->ParallelFor(
        static_cast<int64_t>(candidates.size()), 1, [&](int, int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            const auto& [l, r] = candidates[i];
            if (verifier_.Verify(left[l], right[r], &result->stats.verify)) {
              result->pairs.emplace_back(l, r);
            }
          }
        });
    result->stats.verify_seconds += timer.ElapsedSeconds();
    return;
  }

  // Contiguous shards keep the output in candidate order after an in-order
  // merge; per-shard stats merge into one deterministic sum.
  std::vector<std::vector<std::pair<int32_t, int32_t>>> found(max_shards);
  std::vector<VerifyStats> stats(max_shards);
  const int tasks = pool_->ParallelFor(
      static_cast<int64_t>(candidates.size()), max_shards,
      [&](int shard, int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const auto& [l, r] = candidates[i];
          if (verifier_.Verify(left[l], right[r], &stats[shard])) {
            found[shard].emplace_back(l, r);
          }
        }
      });
  result->stats.verify_tasks += tasks;
  for (int s = 0; s < tasks; ++s) {
    result->stats.verify.Add(stats[s]);
    result->pairs.insert(result->pairs.end(), found[s].begin(), found[s].end());
  }
  result->stats.verify_seconds += timer.ElapsedSeconds();
}

SimCacheStats KJoin::CacheStats() const {
  return sim_cache_ != nullptr ? sim_cache_->stats() : SimCacheStats{};
}

void KJoin::FinishStats(const ThreadPoolStats& pool_before, const SimCacheStats& cache_before,
                        JoinStats* stats) const {
  const ThreadPoolStats after = pool_->stats();
  stats->threads = pool_->num_threads();
  stats->pool_busy_seconds = after.busy_seconds - pool_before.busy_seconds;
  if (stats->total_seconds > 0.0) {
    stats->pool_utilization =
        stats->pool_busy_seconds / (pool_->num_threads() * stats->total_seconds);
  }
  const SimCacheStats cache_after = CacheStats();
  stats->sim_cache_hits = cache_after.hits() - cache_before.hits();
  stats->sim_cache_misses = cache_after.misses - cache_before.misses;
  const int64_t lookups = stats->sim_cache_hits + stats->sim_cache_misses;
  if (lookups > 0) {
    stats->sim_cache_hit_rate =
        static_cast<double>(stats->sim_cache_hits) / static_cast<double>(lookups);
  }
}

JoinResult KJoin::SelfJoin(const std::vector<Object>& objects) const {
  KJOIN_CHECK(FitsObjectIdSpace(objects.size()))
      << "collection exceeds the int32_t object-id space; shard the input";
  JoinResult result;
  result.stats.num_objects_left = static_cast<int64_t>(objects.size());
  result.stats.num_objects_right = result.stats.num_objects_left;
  const ThreadPoolStats pool_before = pool_->stats();
  const SimCacheStats cache_before = CacheStats();
  WallTimer total_timer;

  WallTimer phase_timer;
  GlobalSignatureOrder order;
  const Prepared prepared = Prepare({&objects}, &order, &result.stats);
  result.stats.signature_seconds = phase_timer.ElapsedSeconds();
  const int32_t n = static_cast<int32_t>(objects.size());

  // Candidate generation. The index holds every object's full prefix, with
  // each posting list ascending in object id; probing x only consumes
  // entries y < x, which reproduces the streaming formulation (probe
  // before insert) while letting probes shard freely across the pool.
  phase_timer.Restart();
  InvertedIndex index(order.num_signatures());
  for (int32_t x = 0; x < n; ++x) {
    const std::vector<Signature>& sigs = prepared.sigs[x];
    int32_t previous_rank = -1;
    for (int32_t k = 0; k < prepared.prefix_len[x]; ++k) {
      const int32_t rank = order.Rank(sigs[k].id);
      if (rank == previous_rank) continue;  // duplicate signature value
      previous_rank = rank;
      index.Add(rank, x);
    }
  }
  std::vector<std::pair<int32_t, int32_t>> candidates;
  GenerateCandidates(
      n,
      [&](int, int32_t begin, int32_t end, std::vector<std::pair<int32_t, int32_t>>* out) {
        std::vector<int32_t> last_probe(n, -1);
        for (int32_t x = begin; x < end; ++x) {
          const std::vector<Signature>& sigs = prepared.sigs[x];
          int32_t previous_rank = -1;
          for (int32_t k = 0; k < prepared.prefix_len[x]; ++k) {
            const int32_t rank = order.Rank(sigs[k].id);
            if (rank == previous_rank) continue;
            previous_rank = rank;
            for (int32_t y : index.List(rank)) {
              if (y >= x) break;  // ascending list: only x itself and later objects follow
              if (last_probe[y] == x) continue;
              last_probe[y] = x;
              out->emplace_back(y, x);
            }
          }
        }
      },
      &candidates, &result.stats);
  result.stats.filter_seconds = phase_timer.ElapsedSeconds();

  VerifyCandidates(objects, objects, candidates, &result);

  result.stats.results = static_cast<int64_t>(result.pairs.size());
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  FinishStats(pool_before, cache_before, &result.stats);
  return result;
}

JoinResult KJoin::Join(const std::vector<Object>& left,
                       const std::vector<Object>& right) const {
  KJOIN_CHECK(FitsObjectIdSpace(left.size()) && FitsObjectIdSpace(right.size()))
      << "collection exceeds the int32_t object-id space; shard the input";
  JoinResult result;
  result.stats.num_objects_left = static_cast<int64_t>(left.size());
  result.stats.num_objects_right = static_cast<int64_t>(right.size());
  const ThreadPoolStats pool_before = pool_->stats();
  const SimCacheStats cache_before = CacheStats();
  WallTimer total_timer;

  WallTimer phase_timer;
  GlobalSignatureOrder order;
  // Signatures and the global order span both collections (§6.1).
  const Prepared prepared = Prepare({&left, &right}, &order, &result.stats);
  result.stats.signature_seconds = phase_timer.ElapsedSeconds();
  const size_t right_offset = left.size();

  // Index the left collection's prefixes, probe with the right's.
  phase_timer.Restart();
  InvertedIndex index(order.num_signatures());
  for (int32_t l = 0; l < static_cast<int32_t>(left.size()); ++l) {
    const std::vector<Signature>& sigs = prepared.sigs[l];
    int32_t previous_rank = -1;
    for (int32_t k = 0; k < prepared.prefix_len[l]; ++k) {
      const int32_t rank = order.Rank(sigs[k].id);
      if (rank == previous_rank) continue;
      previous_rank = rank;
      index.Add(rank, l);
    }
  }
  std::vector<std::pair<int32_t, int32_t>> candidates;
  GenerateCandidates(
      static_cast<int64_t>(right.size()),
      [&](int, int32_t begin, int32_t end, std::vector<std::pair<int32_t, int32_t>>* out) {
        std::vector<int32_t> last_probe(left.size(), -1);
        for (int32_t r = begin; r < end; ++r) {
          const std::vector<Signature>& sigs = prepared.sigs[right_offset + r];
          int32_t previous_rank = -1;
          for (int32_t k = 0; k < prepared.prefix_len[right_offset + r]; ++k) {
            const int32_t rank = order.Rank(sigs[k].id);
            if (rank == previous_rank) continue;
            previous_rank = rank;
            for (int32_t l : index.List(rank)) {
              if (last_probe[l] == r) continue;
              last_probe[l] = r;
              out->emplace_back(l, r);
            }
          }
        }
      },
      &candidates, &result.stats);
  result.stats.filter_seconds = phase_timer.ElapsedSeconds();

  VerifyCandidates(left, right, candidates, &result);

  result.stats.results = static_cast<int64_t>(result.pairs.size());
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  FinishStats(pool_before, cache_before, &result.stats);
  return result;
}

double KJoin::ExactSimilarity(const Object& x, const Object& y) const {
  return verifier_.ExactSimilarity(x, y);
}

}  // namespace kjoin
