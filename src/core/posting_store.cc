#include "core/posting_store.h"

#include <algorithm>

#include "core/simd.h"

namespace kjoin {
namespace {

int BitWidth(uint32_t v) { return v == 0 ? 0 : 32 - __builtin_clz(v); }

}  // namespace

PostingStore::Builder::Builder() {
  entry_offset_.push_back(0);
  block_offset_.push_back(0);
}

void PostingStore::Builder::Add(SigId id, const int32_t* docs, int32_t count) {
  KJOIN_CHECK(count > 0);
  KJOIN_CHECK(keys_.empty() || id > keys_.back());
  keys_.push_back(id);
  max_length_ = std::max(max_length_, count);

  for (int32_t begin = 0; begin < count; begin += kBlockEntries) {
    const int32_t n = std::min(kBlockEntries, count - begin);
    const int32_t* block_docs = docs + begin;
    KJOIN_CHECK(block_docs[0] >= 0);
    if (begin > 0) {
      KJOIN_CHECK(block_docs[0] > docs[begin - 1]);
    }
    // Width = widest (delta - 1) in the block; 0 means a consecutive run.
    uint32_t max_gap = 0;
    for (int32_t i = 1; i < n; ++i) {
      KJOIN_CHECK(block_docs[i] > block_docs[i - 1]);
      max_gap |= static_cast<uint32_t>(block_docs[i] - block_docs[i - 1] - 1);
    }
    const int bits = BitWidth(max_gap);

    Block block;
    block.first = block_docs[0];
    block.max = block_docs[n - 1];
    block.word_begin = static_cast<int64_t>(words_.size());
    block.bits = static_cast<uint8_t>(bits);
    if (bits > 0) {
      const int64_t payload_bits = static_cast<int64_t>(n - 1) * bits;
      words_.resize(words_.size() + static_cast<size_t>((payload_bits + 63) / 64), 0);
      uint64_t* words = words_.data() + block.word_begin;
      uint64_t bit = 0;
      for (int32_t i = 1; i < n; ++i, bit += static_cast<uint64_t>(bits)) {
        const uint64_t v = static_cast<uint32_t>(block_docs[i] - block_docs[i - 1] - 1);
        const uint64_t word = bit >> 6;
        const int shift = static_cast<int>(bit & 63);
        words[word] |= v << shift;
        if (shift + bits > 64) words[word + 1] |= v >> (64 - shift);
      }
    }
    blocks_.push_back(block);
  }
  entry_offset_.push_back(entry_offset_.back() + count);
  block_offset_.push_back(static_cast<int64_t>(blocks_.size()));
}

PostingStore PostingStore::Builder::Finish() {
  // One zero pad word so a 32-bit value packed flush against the end of
  // the payload can still be read with the two-word window in the decoder.
  words_.push_back(0);
  PostingStore store;
  store.keys_ = std::move(keys_);
  store.entry_offset_ = std::move(entry_offset_);
  store.block_offset_ = std::move(block_offset_);
  store.blocks_ = std::move(blocks_);
  store.words_ = std::move(words_);
  store.max_length_ = max_length_;
  store.keys_.shrink_to_fit();
  store.blocks_.shrink_to_fit();
  store.words_.shrink_to_fit();
  return store;
}

int64_t PostingStore::packed_bytes() const {
  return static_cast<int64_t>(keys_.size() * sizeof(SigId) +
                              entry_offset_.size() * sizeof(int64_t) +
                              block_offset_.size() * sizeof(int64_t) +
                              blocks_.size() * sizeof(Block) + words_.size() * sizeof(uint64_t));
}

int32_t PostingStore::Find(SigId id) const {
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), id);
  if (it == keys_.end() || *it != id) return -1;
  return static_cast<int32_t>(it - keys_.begin());
}

int32_t PostingStore::DecodeBlock(int32_t slot, int64_t b, int32_t* out) const {
  const auto s = static_cast<size_t>(slot);
  const int64_t list_len = entry_offset_[s + 1] - entry_offset_[s];
  const int64_t local = b - block_offset_[s];
  const int32_t n = static_cast<int32_t>(
      std::min<int64_t>(kBlockEntries, list_len - local * kBlockEntries));
  const Block& block = blocks_[static_cast<size_t>(b)];
  out[0] = block.first;
  simd::DecodeDeltaBlock(words_.data() + block.word_begin, block.bits, n - 1, block.first,
                         out + 1);
  return n;
}

void PostingStore::Decode(int32_t slot, int32_t* out) const {
  const auto s = static_cast<size_t>(slot);
  for (int64_t b = block_offset_[s]; b < block_offset_[s + 1]; ++b) {
    out += DecodeBlock(slot, b, out);
  }
}

void PostingStore::AccumulateSlot(int32_t slot, uint8_t* counts, uint64_t* touched) const {
  const auto s = static_cast<size_t>(slot);
  int32_t buf[kBlockEntries];
  for (int64_t b = block_offset_[s]; b < block_offset_[s + 1]; ++b) {
    const int32_t n = DecodeBlock(slot, b, buf);
    simd::AccumulateCounts(buf, n, counts, touched);
  }
}

void PostingStore::AccumulateSlotBelow(int32_t slot, int32_t limit, uint8_t* counts,
                                       uint64_t* touched) const {
  const auto s = static_cast<size_t>(slot);
  int32_t buf[kBlockEntries];
  for (int64_t b = block_offset_[s]; b < block_offset_[s + 1]; ++b) {
    const Block& block = blocks_[static_cast<size_t>(b)];
    if (block.first >= limit) break;  // blocks ascend; nothing further qualifies
    const int32_t n = DecodeBlock(slot, b, buf);
    int32_t take = n;
    if (block.max >= limit) {
      take = static_cast<int32_t>(std::lower_bound(buf, buf + n, limit) - buf);
    }
    simd::AccumulateCounts(buf, take, counts, touched);
    if (take < n) break;
  }
}

int32_t PostingStore::CountBelow(int32_t slot, int32_t limit) const {
  const auto s = static_cast<size_t>(slot);
  int32_t total = 0;
  int32_t buf[kBlockEntries];
  for (int64_t b = block_offset_[s]; b < block_offset_[s + 1]; ++b) {
    const Block& block = blocks_[static_cast<size_t>(b)];
    if (block.first >= limit) break;
    const int64_t list_len = entry_offset_[s + 1] - entry_offset_[s];
    const int64_t local = b - block_offset_[s];
    const int32_t n = static_cast<int32_t>(
        std::min<int64_t>(kBlockEntries, list_len - local * kBlockEntries));
    if (block.max < limit) {
      total += n;  // whole block qualifies, skip the decode
      continue;
    }
    DecodeBlock(slot, b, buf);
    total += static_cast<int32_t>(std::lower_bound(buf, buf + n, limit) - buf);
    break;
  }
  return total;
}

int32_t PostingStore::IntersectSlots(int32_t slot_a, int32_t slot_b, int32_t* out) const {
  // Drive with the shorter list so the skip table prunes the longer one.
  if (length(slot_a) > length(slot_b)) return IntersectSlots(slot_b, slot_a, out);
  const auto sa = static_cast<size_t>(slot_a);
  const auto sb = static_cast<size_t>(slot_b);
  int32_t abuf[kBlockEntries];
  int32_t bbuf[kBlockEntries];
  int32_t k = 0;
  int64_t bb = block_offset_[sb];
  const int64_t bb_end = block_offset_[sb + 1];
  int32_t bn = 0;  // decoded length of the current b block (0 = not decoded)
  for (int64_t ab = block_offset_[sa]; ab < block_offset_[sa + 1]; ++ab) {
    const Block& ablock = blocks_[static_cast<size_t>(ab)];
    const int32_t an = DecodeBlock(slot_a, ab, abuf);
    const int32_t* a = abuf;
    int32_t remaining = an;
    while (remaining > 0 && bb < bb_end) {
      const Block& bblock = blocks_[static_cast<size_t>(bb)];
      if (bblock.max < a[0]) {  // b block entirely below the a window
        ++bb;
        bn = 0;
        continue;
      }
      if (bblock.first > ablock.max) break;  // rest of b is past this a block
      if (bn == 0) bn = DecodeBlock(slot_b, bb, bbuf);
      // Intersect the a window against this b block, then advance
      // whichever side is exhausted first.
      const int32_t* b = bbuf;
      const int32_t matched = simd::IntersectSorted(a, remaining, b, bn, out + k);
      k += matched;
      if (bblock.max <= a[remaining - 1]) {
        // b block exhausted: drop the a prefix it covered and move on.
        const int32_t consumed = static_cast<int32_t>(
            std::upper_bound(a, a + remaining, bblock.max) - a);
        a += consumed;
        remaining -= consumed;
        ++bb;
        bn = 0;
      } else {
        break;  // a window exhausted inside this b block
      }
    }
    if (bb >= bb_end) break;
  }
  return k;
}

}  // namespace kjoin
