#ifndef KJOIN_CORE_POSTING_STORE_H_
#define KJOIN_CORE_POSTING_STORE_H_

// Frozen CSR postings layout (docs/performance.md, "Filter engine").
//
// The mutable tail of a KJoinIndex keeps its unordered_map; everything
// that has been frozen (the flat build, Flatten output, snapshot loads)
// lives here instead:
//
//   keys_          SigId per list, strictly ascending — binary-searched
//   entry_offset_  per-list cumulative doc counts (lists + 1 entries)
//   block_offset_  per-list cumulative block counts (lists + 1 entries)
//   blocks_        per-block {first doc, max doc, word offset, bit width}
//   words_         the bit-packed (delta - 1) payload, one word-aligned
//                  run per block
//
// Lists are cut into fixed blocks of kBlockEntries docs. Each block
// stores its first doc id raw in the block table; the remaining
// (count - 1) ids are packed at the block's exact bit width (0 bits for
// a consecutive run). The block table doubles as a skip index: `max` is
// the block's last doc id, so probes and intersections can reject a
// whole block without touching words_.
//
// All decode paths go through core/simd.h and are dispatch-invariant:
// scalar and vector decodes of the same slot are bit-identical.

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "core/signature.h"

namespace kjoin {

class PostingStore {
 public:
  static constexpr int32_t kBlockEntries = 128;

  struct Block {
    int32_t first = 0;       // first doc id of the block (stored raw)
    int32_t max = 0;         // last doc id of the block (skip key)
    int64_t word_begin = 0;  // offset into words_ of the packed payload
    uint8_t bits = 0;        // packed width of each (delta - 1), 0..32
  };

  // Appends lists in strictly-ascending SigId order with strictly-
  // ascending non-empty doc lists; Finish() yields the frozen store.
  class Builder {
   public:
    Builder();
    void Add(SigId id, const int32_t* docs, int32_t count);
    PostingStore Finish();

   private:
    std::vector<SigId> keys_;
    std::vector<int64_t> entry_offset_;
    std::vector<int64_t> block_offset_;
    std::vector<Block> blocks_;
    std::vector<uint64_t> words_;
    int32_t max_length_ = 0;
  };

  PostingStore() = default;

  PostingStore(const PostingStore&) = delete;
  PostingStore& operator=(const PostingStore&) = delete;
  PostingStore(PostingStore&&) = default;
  PostingStore& operator=(PostingStore&&) = default;

  int32_t num_lists() const { return static_cast<int32_t>(keys_.size()); }
  bool empty() const { return keys_.empty(); }
  // Total doc entries across every list.
  int64_t num_entries() const { return entry_offset_.empty() ? 0 : entry_offset_.back(); }
  // Bytes held by the packed payload + tables (the compressed footprint).
  int64_t packed_bytes() const;
  // Longest list in the store (sizes probe scratch).
  int32_t max_length() const { return max_length_; }

  // Slot of `id`, or -1. Slots index the CSR tables, 0..num_lists).
  int32_t Find(SigId id) const;

  SigId key(int32_t slot) const { return keys_[static_cast<size_t>(slot)]; }
  int32_t length(int32_t slot) const {
    const auto s = static_cast<size_t>(slot);
    return static_cast<int32_t>(entry_offset_[s + 1] - entry_offset_[s]);
  }
  // Blocks in the slot's skip table (a list the progressive top-k probe
  // skips saves this many block decodes; see SearchStats).
  int64_t num_blocks(int32_t slot) const {
    const auto s = static_cast<size_t>(slot);
    return block_offset_[s + 1] - block_offset_[s];
  }

  // Decodes the whole list into out[0..length(slot)).
  void Decode(int32_t slot, int32_t* out) const;

  // ScanCount feed: decodes the list block-by-block into a stack buffer
  // and bumps the dense counter array (see simd::AccumulateCounts).
  void AccumulateSlot(int32_t slot, uint8_t* counts, uint64_t* touched) const;

  // Like AccumulateSlot but only docs < limit (self-join cutoff).
  // Whole blocks past the limit are rejected via the skip table.
  void AccumulateSlotBelow(int32_t slot, int32_t limit, uint8_t* counts,
                           uint64_t* touched) const;

  // Docs in the list strictly below `limit` (skip-table + block decode).
  int32_t CountBelow(int32_t slot, int32_t limit) const;

  // Intersects two slots into `out` (room for min of the two lengths);
  // returns the size. The skip table rejects non-overlapping blocks
  // before anything is decoded.
  int32_t IntersectSlots(int32_t slot_a, int32_t slot_b, int32_t* out) const;

  // Calls fn(SigId, const int32_t* docs, int32_t count) for every list in
  // ascending SigId order. Decodes through one reused scratch buffer, so
  // the pointer is only valid during the call.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    std::vector<int32_t> scratch(static_cast<size_t>(max_length_));
    for (int32_t slot = 0; slot < num_lists(); ++slot) {
      Decode(slot, scratch.data());
      fn(keys_[static_cast<size_t>(slot)], scratch.data(), length(slot));
    }
  }

 private:
  friend class Builder;

  // Decodes block `b` of `slot` into out; returns its doc count.
  int32_t DecodeBlock(int32_t slot, int64_t b, int32_t* out) const;

  std::vector<SigId> keys_;
  std::vector<int64_t> entry_offset_;
  std::vector<int64_t> block_offset_;
  std::vector<Block> blocks_;
  std::vector<uint64_t> words_;
  int32_t max_length_ = 0;
};

}  // namespace kjoin

#endif  // KJOIN_CORE_POSTING_STORE_H_
