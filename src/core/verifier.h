#ifndef KJOIN_CORE_VERIFIER_H_
#define KJOIN_CORE_VERIFIER_H_

// Candidate verification (paper §3.2 count pruning, §5 subgraph matching
// and adaptive verification).
//
// Given a candidate pair that survived the signature filter, decide
// whether SIMδ(Sx, Sy) >= τ:
//   kBasic    — build the full element bigraph and run one Hungarian
//               matching.
//   kSubGraph — partition elements by node signature (elements in
//               different groups cannot be δ-similar, Lemma 1), match each
//               subgraph separately and sum (Lemma 8).
//   kAdaptive — maintain running bounds while the per-group bigraphs are
//               being built (per-vertex max above, Eq. 6; two greedy
//               matchings below, §5.2.2) and stop as soon as the decision
//               is certain; remaining groups resolve exactly in
//               decreasing upper-bound order (§5.2.3), skipping the
//               Hungarian matcher whenever the bounds already pin the
//               exact value. See docs/performance.md.
// Count pruning (Lemma 3) and weighted count pruning (Lemma 4) run first
// when enabled; they need no edge weights at all.
//
// Verification state (group partition, token balances, bigraphs, matcher
// and bound buffers) lives in a per-thread scratch arena, so the steady
// state verifies candidates without touching the allocator.

#include <cstdint>
#include <vector>

#include "core/element_similarity.h"
#include "core/object.h"
#include "core/object_similarity.h"
#include "core/signature.h"

namespace kjoin {

// Per-thread verification arena; defined in verifier.cc.
struct VerifyScratch;

// The pair-invariant half of group construction, computed once per object:
// the object's partition signatures in element order, plus an argsort by
// signature. With both plans in hand, a pair's group partition is a linear
// merge of two sorted lists — no per-pair signature generation or sort.
// An object appears in as many candidate pairs as the filter emits for it,
// so the join builds each plan once and reuses it across all of them.
struct ObjectGroupPlan {
  struct Entry {
    SigId sig;
    int32_t element;
  };
  std::vector<Entry> entries;   // element-major (generation) order
  std::vector<int32_t> by_sig;  // argsort of entries by (sig, index)
};

enum class VerifyMode {
  kBasic,
  kSubGraph,
  kAdaptive,
};

struct VerifierOptions {
  double delta = 0.7;
  double tau = 0.8;
  VerifyMode mode = VerifyMode::kAdaptive;
  SetMetric set_metric = SetMetric::kJaccard;
  bool count_pruning = true;
  bool weighted_count_pruning = true;
  // K-Join+ (multi-node mappings): two distinct tokens may map to the
  // same node, so the d/(d+1) refinement of Lemma 4 is unsound; the
  // weighted count pruning then falls back to φ-based weights, and
  // verification groups sharing an element are merged (§6.4).
  bool plus_mode = false;
};

struct VerifyStats {
  int64_t pairs_verified = 0;
  int64_t pruned_by_count = 0;
  int64_t pruned_by_weighted_count = 0;
  int64_t accepted_by_lower_bound = 0;
  int64_t rejected_by_upper_bound = 0;
  int64_t hungarian_runs = 0;
  // Adaptive groups whose bounds pinned the exact matching (Bu <= Bl), so
  // no Hungarian run was needed — every 1 × k group lands here.
  int64_t groups_pinned = 0;
  int64_t results = 0;

  void Add(const VerifyStats& other);
};

class Verifier {
 public:
  // All referenced objects must outlive the verifier.
  Verifier(const ElementSimilarity& element_sim, const SignatureGenerator& signatures,
           VerifierOptions options);

  // True iff SIMδ(x, y) >= τ. Thread-safe: every mutable state is in a
  // per-thread scratch arena.
  bool Verify(const Object& x, const Object& y, VerifyStats* stats) const;

  // True iff SIMδ(x, y) >= tau, for a per-call threshold at or above the
  // configured options().tau. The progressive top-k search raises its
  // effective threshold mid-query as the shared k-th-best bound tightens
  // (core/kjoin_index.h, SearchBound); a higher tau means a higher
  // required overlap, so every pruning lemma stays sound and rejections
  // come earlier.
  bool VerifyAt(const Object& x, const Object& y, double tau, VerifyStats* stats) const;

  // VerifyAt with x's grouping plan prebuilt (BuildPlan). The search
  // probe loop verifies one query against a stream of candidates;
  // building the query's plan once per probe instead of once per pair
  // removes the dominant fixed cost of each verification. `tau` may
  // equal the configured options().tau.
  bool VerifyAt(const Object& x, const ObjectGroupPlan& plan_x, const Object& y,
                double tau, VerifyStats* stats) const;

  // Same, with the objects' precomputed grouping plans (BuildPlan). This
  // is the join's hot path: plans are built once per object and shared,
  // read-only, across all candidate pairs and verification shards.
  bool Verify(const Object& x, const Object& y, const ObjectGroupPlan& plan_x,
              const ObjectGroupPlan& plan_y, VerifyStats* stats) const;

  // Fills `plan` for one object (signatures + argsort). The plan stays
  // valid as long as the object and the verifier's signature scheme do.
  void BuildPlan(const Object& object, ObjectGroupPlan* plan) const;

  // Exact similarity, bypassing every pruning step (test/quality oracle).
  double ExactSimilarity(const Object& x, const Object& y) const;

  const VerifierOptions& options() const { return options_; }

 private:
  // Shared tail of the Verify overloads (prunes + mode dispatch) at the
  // given threshold (options_.tau for the plain overloads).
  bool VerifyWithPlans(const Object& x, const Object& y, double tau,
                       const ObjectGroupPlan& plan_x, const ObjectGroupPlan& plan_y,
                       VerifyScratch* scratch, VerifyStats* stats) const;

  // Partitions both objects' elements into node-signature groups, merging
  // groups that share an element (plus mode). The partition is stored as
  // flat member arrays in the scratch (no per-group vectors).
  void BuildGroups(const Object& x, const Object& y, const ObjectGroupPlan& plan_x,
                   const ObjectGroupPlan& plan_y, VerifyScratch* scratch) const;

  bool CountPrune(const VerifyScratch& scratch, double needed, VerifyStats* stats) const;
  bool WeightedCountPrune(const Object& x, const Object& y, VerifyScratch* scratch,
                          double needed, VerifyStats* stats) const;
  bool VerifyBasic(const Object& x, const Object& y, double needed, VerifyScratch* scratch,
                   VerifyStats* stats) const;
  bool VerifySubGraph(const Object& x, const Object& y, VerifyScratch* scratch, double needed,
                      VerifyStats* stats) const;
  bool VerifyAdaptive(const Object& x, const Object& y, VerifyScratch* scratch, double needed,
                      VerifyStats* stats) const;

  const ElementSimilarity* element_sim_;
  const SignatureGenerator* signatures_;
  VerifierOptions options_;
  ObjectSimilarity object_sim_;
};

}  // namespace kjoin

#endif  // KJOIN_CORE_VERIFIER_H_
