#ifndef KJOIN_CORE_VERIFIER_H_
#define KJOIN_CORE_VERIFIER_H_

// Candidate verification (paper §3.2 count pruning, §5 subgraph matching
// and adaptive verification).
//
// Given a candidate pair that survived the signature filter, decide
// whether SIMδ(Sx, Sy) >= τ:
//   kBasic    — build the full element bigraph and run one Hungarian
//               matching.
//   kSubGraph — partition elements by node signature (elements in
//               different groups cannot be δ-similar, Lemma 1), match each
//               subgraph separately and sum (Lemma 8).
//   kAdaptive — additionally bound each subgraph's matching from above
//               (per-vertex max, Eq. 6) and below (two greedy matchings,
//               §5.2.2), accept/reject early, and resolve the remaining
//               groups in decreasing Bu − Bl order (§5.2.3).
// Count pruning (Lemma 3) and weighted count pruning (Lemma 4) run first
// when enabled; they need no edge weights at all.

#include <cstdint>

#include "core/element_similarity.h"
#include "core/object.h"
#include "core/object_similarity.h"
#include "core/signature.h"

namespace kjoin {

enum class VerifyMode {
  kBasic,
  kSubGraph,
  kAdaptive,
};

struct VerifierOptions {
  double delta = 0.7;
  double tau = 0.8;
  VerifyMode mode = VerifyMode::kAdaptive;
  SetMetric set_metric = SetMetric::kJaccard;
  bool count_pruning = true;
  bool weighted_count_pruning = true;
  // K-Join+ (multi-node mappings): two distinct tokens may map to the
  // same node, so the d/(d+1) refinement of Lemma 4 is unsound; the
  // weighted count pruning then falls back to φ-based weights, and
  // verification groups sharing an element are merged (§6.4).
  bool plus_mode = false;
};

struct VerifyStats {
  int64_t pairs_verified = 0;
  int64_t pruned_by_count = 0;
  int64_t pruned_by_weighted_count = 0;
  int64_t accepted_by_lower_bound = 0;
  int64_t rejected_by_upper_bound = 0;
  int64_t hungarian_runs = 0;
  int64_t results = 0;

  void Add(const VerifyStats& other);
};

class Verifier {
 public:
  // All referenced objects must outlive the verifier.
  Verifier(const ElementSimilarity& element_sim, const SignatureGenerator& signatures,
           VerifierOptions options);

  // True iff SIMδ(x, y) >= τ.
  bool Verify(const Object& x, const Object& y, VerifyStats* stats) const;

  // Exact similarity, bypassing every pruning step (test/quality oracle).
  double ExactSimilarity(const Object& x, const Object& y) const;

  const VerifierOptions& options() const { return options_; }

 private:
  struct Group {
    std::vector<int32_t> left;   // element indices in x
    std::vector<int32_t> right;  // element indices in y
  };

  // Partitions both objects' elements into node-signature groups,
  // merging groups that share an element (plus mode).
  std::vector<Group> BuildGroups(const Object& x, const Object& y) const;

  bool CountPrune(const std::vector<Group>& groups, double needed, VerifyStats* stats) const;
  bool WeightedCountPrune(const Object& x, const Object& y, const std::vector<Group>& groups,
                          double needed, VerifyStats* stats) const;
  bool VerifyBasic(const Object& x, const Object& y, double needed, VerifyStats* stats) const;
  bool VerifySubGraph(const Object& x, const Object& y, const std::vector<Group>& groups,
                      double needed, VerifyStats* stats) const;
  bool VerifyAdaptive(const Object& x, const Object& y, const std::vector<Group>& groups,
                      double needed, VerifyStats* stats) const;

  const ElementSimilarity* element_sim_;
  const SignatureGenerator* signatures_;
  VerifierOptions options_;
  ObjectSimilarity object_sim_;
};

}  // namespace kjoin

#endif  // KJOIN_CORE_VERIFIER_H_
