#include "core/kjoin_index.h"

#include <algorithm>

#include "common/logging.h"
#include "core/prefix.h"

namespace kjoin {

KJoinIndex::KJoinIndex(const Hierarchy& hierarchy, KJoinOptions options,
                       std::vector<Object> objects)
    : hierarchy_(&hierarchy),
      options_(options),
      objects_(std::move(objects)),
      lca_(hierarchy),
      sim_cache_(options.sim_cache ? std::make_unique<SimCache>(options.sim_cache_capacity)
                                   : nullptr),
      element_sim_(lca_, options.element_metric, sim_cache_.get()),
      signatures_(hierarchy, options.element_metric, options.scheme, options.delta),
      object_sim_(element_sim_, options.delta, options.set_metric),
      verifier_(element_sim_, signatures_,
                VerifierOptions{options.delta, options.tau, options.verify_mode,
                                options.set_metric, options.count_pruning,
                                options.weighted_count_pruning, options.plus_mode}) {
  for (int32_t i = 0; i < static_cast<int32_t>(objects_.size()); ++i) IndexObject(i);
}

void KJoinIndex::IndexObject(int32_t index) {
  // Full signature set, deduplicated per object.
  std::vector<SigId> ids;
  for (const Signature& sig : signatures_.Generate(objects_[index])) ids.push_back(sig.id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (SigId id : ids) postings_[id].push_back(index);
}

int32_t KJoinIndex::Insert(const Object& object) {
  objects_.push_back(object);
  const int32_t index = static_cast<int32_t>(objects_.size() - 1);
  IndexObject(index);
  return index;
}

std::vector<int32_t> KJoinIndex::Candidates(const Object& query) const {
  std::vector<Signature> sigs = signatures_.Generate(query);
  // Order by indexed-side document frequency ascending (posting-list
  // length; absent signatures have df 0). Any fixed order is sound for
  // the asymmetric search argument; df-ascending keeps probed lists
  // short.
  auto df_of = [&](SigId id) {
    auto it = postings_.find(id);
    return it == postings_.end() ? int64_t{0} : static_cast<int64_t>(it->second.size());
  };
  std::sort(sigs.begin(), sigs.end(), [&](const Signature& a, const Signature& b) {
    const int64_t dfa = df_of(a.id);
    const int64_t dfb = df_of(b.id);
    if (dfa != dfb) return dfa < dfb;
    if (a.id != b.id) return a.id < b.id;
    return a.element < b.element;
  });

  int32_t prefix;
  if (options_.weighted_prefix) {
    prefix = PrefixLengthWeighted(
        sigs, MinOverlapWithAnyPartner(query.size(), options_.tau, options_.set_metric));
  } else {
    prefix = PrefixLengthDistinct(
        sigs, MinSimilarElements(query.size(), options_.tau, options_.set_metric));
  }

  std::vector<int32_t> candidates;
  std::vector<char> seen(objects_.size(), 0);
  SigId previous = 0;
  bool have_previous = false;
  for (int32_t k = 0; k < prefix; ++k) {
    if (have_previous && sigs[k].id == previous) continue;
    previous = sigs[k].id;
    have_previous = true;
    auto it = postings_.find(sigs[k].id);
    if (it == postings_.end()) continue;
    for (int32_t i : it->second) {
      if (!seen[i]) {
        seen[i] = 1;
        candidates.push_back(i);
      }
    }
  }
  last_candidates_ = static_cast<int64_t>(candidates.size());
  return candidates;
}

std::vector<SearchHit> KJoinIndex::Search(const Object& query) const {
  std::vector<SearchHit> hits;
  VerifyStats stats;
  for (int32_t i : Candidates(query)) {
    if (!verifier_.Verify(query, objects_[i], &stats)) continue;
    hits.push_back({i, object_sim_.Similarity(query, objects_[i])});
  }
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.object_index < b.object_index;
  });
  return hits;
}

std::vector<SearchHit> KJoinIndex::SearchTopK(const Object& query, int32_t k,
                                              double min_similarity) const {
  // Candidates are generated at the index's configured τ, so searching
  // below it would be incomplete.
  KJOIN_CHECK_GE(min_similarity, options_.tau)
      << "SearchTopK cannot go below the index's configured tau";
  std::vector<SearchHit> hits = Search(query);
  std::vector<SearchHit> result;
  for (const SearchHit& hit : hits) {
    if (hit.similarity + 1e-9 < min_similarity) continue;
    result.push_back(hit);
    if (k > 0 && static_cast<int32_t>(result.size()) >= k) break;
  }
  return result;
}

}  // namespace kjoin
