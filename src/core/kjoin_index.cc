#include "core/kjoin_index.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "core/prefix.h"
#include "core/simd.h"

namespace kjoin {

namespace {

// Candidate count of the calling thread's last Search. A mutable member
// would race under concurrent Search calls; a thread-local slot keeps the
// observability without any synchronization on the query path.
thread_local int64_t tls_last_candidates = 0;

// Deadline/cancel polling stride inside the verification loop. Polling is
// two relaxed loads every kControlStride pairs — invisible next to one
// verification — while bounding overshoot to a handful of pairs.
constexpr int kControlStride = 8;

// Float-safety slack between the shared SearchBound and the prune
// thresholds derived from it: the progressive probe prunes strictly below
// bound - slack, so a hit tied with the final k-th best can never be lost
// to floating-point noise in the prefix-budget or overlap computations.
// The verifier's own accept tolerance is 1e-9; 1e-7 dominates it by two
// orders while costing no measurable extra work.
constexpr double kSearchBoundSlack = 1e-7;

// Per-thread probe scratch (shared across all indexes the thread
// searches): dense ScanCount counters plus the touched-block bitmap.
// Invariant between calls: every counter is zero and every bitmap word is
// zero — extraction restores both as it drains, so repeated searches
// never re-touch cold memory.
struct ProbeScratch {
  std::vector<uint8_t> counts;
  std::vector<uint64_t> touched;

  void EnsureCapacity(int64_t num_objects) {
    if (static_cast<int64_t>(counts.size()) < num_objects) {
      counts.resize(static_cast<size_t>(num_objects), 0);
      const int64_t blocks =
          (num_objects + simd::kCounterBlock - 1) / simd::kCounterBlock;
      touched.resize(static_cast<size_t>((blocks + 63) / 64), 0);
    }
  }
};

thread_local ProbeScratch tls_probe_scratch;

}  // namespace

KJoinIndex::KJoinIndex(const Hierarchy& hierarchy, KJoinOptions options,
                       std::vector<Object> objects)
    : hierarchy_(&hierarchy),
      options_(options),
      objects_(std::move(objects)),
      lca_(std::make_shared<LcaIndex>(hierarchy)),
      sim_cache_(options.sim_cache ? std::make_unique<SimCache>(options.sim_cache_capacity)
                                   : nullptr),
      element_sim_(*lca_, options.element_metric, sim_cache_.get()),
      signatures_(hierarchy, options.element_metric, options.scheme, options.delta),
      object_sim_(element_sim_, options.delta, options.set_metric),
      verifier_(element_sim_, signatures_,
                VerifierOptions{options.delta, options.tau, options.verify_mode,
                                options.set_metric, options.count_pruning,
                                options.weighted_count_pruning, options.plus_mode}) {
  for (int32_t i = 0; i < static_cast<int32_t>(objects_.size()); ++i) IndexObject(i);
  FreezeTail();
}

KJoinIndex::KJoinIndex(const Hierarchy& hierarchy, KJoinOptions options,
                       std::vector<Object> objects, RestoredParts parts)
    : hierarchy_(&hierarchy),
      options_(options),
      objects_(std::move(objects)),
      lca_(parts.lca != nullptr ? std::move(parts.lca)
                                : std::make_shared<const LcaIndex>(hierarchy)),
      sim_cache_(options.sim_cache ? std::make_unique<SimCache>(options.sim_cache_capacity)
                                   : nullptr),
      element_sim_(*lca_, options.element_metric, sim_cache_.get()),
      signatures_(hierarchy, options.element_metric, options.scheme, options.delta),
      object_sim_(element_sim_, options.delta, options.set_metric),
      verifier_(element_sim_, signatures_,
                VerifierOptions{options.delta, options.tau, options.verify_mode,
                                options.set_metric, options.count_pruning,
                                options.weighted_count_pruning, options.plus_mode}),
      store_(std::move(parts.postings)) {
  KJOIN_CHECK(&lca_->hierarchy() == hierarchy_)
      << "restored LCA index belongs to a different hierarchy";
  for (const int32_t index : parts.tombstones) {
    KJOIN_CHECK(index >= 0 && static_cast<size_t>(index) < objects_.size())
        << "restored tombstone " << index << " outside the collection";
    dead_.insert(index);
  }
  total_dead_ = static_cast<int64_t>(dead_.size());
}

KJoinIndex::KJoinIndex(std::shared_ptr<const KJoinIndex> base)
    : hierarchy_(base->hierarchy_),
      options_(base->options_),
      base_(std::move(base)),
      base_total_(static_cast<int32_t>(base_->num_indexed())),
      depth_(base_->depth_ + 1),
      total_dead_(base_->total_dead_),
      lca_(base_->lca_),
      sim_cache_(options_.sim_cache ? std::make_unique<SimCache>(options_.sim_cache_capacity)
                                    : nullptr),
      element_sim_(*lca_, options_.element_metric, sim_cache_.get()),
      signatures_(*hierarchy_, options_.element_metric, options_.scheme, options_.delta),
      object_sim_(element_sim_, options_.delta, options_.set_metric),
      verifier_(element_sim_, signatures_,
                VerifierOptions{options_.delta, options_.tau, options_.verify_mode,
                                options_.set_metric, options_.count_pruning,
                                options_.weighted_count_pruning, options_.plus_mode}) {}

void KJoinIndex::IndexObject(int32_t index) {
  // Full signature set, deduplicated per object. New entries go to the
  // mutable tail; the flat build freezes it into the CSR store once.
  std::vector<SigId> ids;
  for (const Signature& sig : signatures_.Generate(object_at(index))) ids.push_back(sig.id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (SigId id : ids) tail_[id].push_back(index);
  tail_entries_ += static_cast<int64_t>(ids.size());
}

void KJoinIndex::FreezeTail() {
  KJOIN_CHECK(store_.empty());
  std::vector<SigId> keys;
  keys.reserve(tail_.size());
  for (const auto& [id, list] : tail_) keys.push_back(id);
  std::sort(keys.begin(), keys.end());
  PostingStore::Builder builder;
  for (const SigId id : keys) {
    const std::vector<int32_t>& list = tail_.at(id);
    builder.Add(id, list.data(), static_cast<int32_t>(list.size()));
  }
  store_ = builder.Finish();
  tail_.clear();
  tail_entries_ = 0;
}

int32_t KJoinIndex::Insert(const Object& object) {
  objects_.push_back(object);
  const int32_t index = base_total_ + static_cast<int32_t>(objects_.size()) - 1;
  IndexObject(index);
  return index;
}

bool KJoinIndex::DeleteObject(int32_t index) {
  KJOIN_CHECK(index >= 0 && index < num_indexed())
      << "DeleteObject index " << index << " outside [0, " << num_indexed() << ")";
  if (deleted(index)) return false;
  dead_.insert(index);
  ++total_dead_;
  return true;
}

void KJoinIndex::CollectLayers(std::vector<const KJoinIndex*>* layers) const {
  if (base_ != nullptr) base_->CollectLayers(layers);
  layers->push_back(this);
}

int64_t KJoinIndex::last_candidates() { return tls_last_candidates; }

std::vector<int32_t> KJoinIndex::Candidates(const Object& query, SearchBound* bound,
                                            SearchStats* stats) const {
  // The usual case is a flat index (one layer, no tombstones); deltas
  // probe every layer's postings — the frozen CSR store plus the mutable
  // tail of each.
  const KJoinIndex* flat[1] = {this};
  std::vector<const KJoinIndex*> chain;
  const KJoinIndex* const* layers = flat;
  size_t num_layers = 1;
  if (base_ != nullptr) {
    CollectLayers(&chain);
    layers = chain.data();
    num_layers = chain.size();
  }
  const bool check_dead = total_dead_ > 0;

  std::vector<Signature> sigs = signatures_.Generate(query);
  // Order by indexed-side document frequency ascending (chain-summed
  // posting-list length; absent signatures have df 0). Any fixed order is
  // sound for the asymmetric search argument; df-ascending keeps probed
  // lists short.
  auto df_of = [&](SigId id) {
    int64_t df = 0;
    for (size_t l = 0; l < num_layers; ++l) {
      const int32_t slot = layers[l]->store_.Find(id);
      if (slot >= 0) df += layers[l]->store_.length(slot);
      auto it = layers[l]->tail_.find(id);
      if (it != layers[l]->tail_.end()) df += static_cast<int64_t>(it->second.size());
    }
    return df;
  };
  // Cache each signature's df before sorting: df_of walks every layer's
  // store and tail per call, and the comparator would re-derive it
  // O(s log s) times per probe (the probes-per-query factor of a sharded
  // scatter makes that per-probe cost visible).
  std::vector<std::pair<int64_t, Signature>> keyed(sigs.size());
  for (size_t i = 0; i < sigs.size(); ++i) keyed[i] = {df_of(sigs[i].id), sigs[i]};
  std::sort(keyed.begin(), keyed.end(),
            [](const std::pair<int64_t, Signature>& a,
               const std::pair<int64_t, Signature>& b) {
              if (a.first != b.first) return a.first < b.first;
              if (a.second.id != b.second.id) return a.second.id < b.second.id;
              return a.second.element < b.second.element;
            });
  for (size_t i = 0; i < sigs.size(); ++i) sigs[i] = keyed[i].second;

  // Prefix length at a given similarity floor. Prefixes nest: a floor
  // above τ only ever shortens the prefix (the overlap budget grows with
  // the floor and the signature order is fixed), so re-deriving the
  // prefix mid-probe at a risen bound is exactly the prefix that floor
  // would have produced up front.
  auto prefix_at = [&](double floor) {
    if (options_.weighted_prefix) {
      return PrefixLengthWeighted(
          sigs, MinOverlapWithAnyPartner(query.size(), floor, options_.set_metric));
    }
    return PrefixLengthDistinct(
        sigs, MinSimilarElements(query.size(), floor, options_.set_metric));
  };
  int32_t prefix = prefix_at(options_.tau);
  // The floor the current prefix was derived from (progressive probes
  // re-derive it whenever the shared bound has risen past it).
  double level = options_.tau;

  // ScanCount the prefix's posting lists into the dense counter array,
  // then extract every object touched at least once, block by block in
  // ascending index order. Candidate SET (and count) are identical to the
  // old per-list dedup scan; only the emission order changes, and every
  // consumer either sorts hits or treats candidates as a set.
  ProbeScratch& scratch = tls_probe_scratch;
  scratch.EnsureCapacity(num_indexed());
  uint8_t* counts = scratch.counts.data();
  uint64_t* touched = scratch.touched.data();

  SigId previous = 0;
  bool have_previous = false;
  for (int32_t k = 0; k < prefix; ++k) {
    if (bound != nullptr) {
      const double raised = bound->value() - kSearchBoundSlack;
      if (raised > level) {
        level = raised;
        int32_t cut = prefix_at(level);
        if (cut < k) cut = k;
        if (cut < prefix) {
          if (stats != nullptr) {
            // Account the lists (and their entries/blocks) the tightened
            // prefix lets this probe skip, deduplicating repeated
            // signature ids the way the probe loop does.
            SigId prev_id = cut > 0 ? sigs[cut - 1].id : 0;
            bool have_prev = cut > 0;
            for (int32_t j = cut; j < prefix; ++j) {
              if (have_prev && sigs[j].id == prev_id) continue;
              prev_id = sigs[j].id;
              have_prev = true;
              ++stats->bound_pruned_lists;
              stats->bound_pruned_entries += df_of(sigs[j].id);
              for (size_t l = 0; l < num_layers; ++l) {
                const int32_t slot = layers[l]->store_.Find(sigs[j].id);
                if (slot >= 0) {
                  stats->bound_pruned_blocks += layers[l]->store_.num_blocks(slot);
                }
              }
            }
          }
          prefix = cut;
          if (k >= prefix) break;
        }
      }
    }
    if (have_previous && sigs[k].id == previous) continue;
    previous = sigs[k].id;
    have_previous = true;
    for (size_t l = 0; l < num_layers; ++l) {
      const int32_t slot = layers[l]->store_.Find(sigs[k].id);
      if (slot >= 0) layers[l]->store_.AccumulateSlot(slot, counts, touched);
      auto it = layers[l]->tail_.find(sigs[k].id);
      if (it != layers[l]->tail_.end()) {
        simd::AccumulateCounts(it->second.data(), static_cast<int32_t>(it->second.size()),
                               counts, touched);
      }
    }
  }

  std::vector<int32_t> candidates;
  const int64_t total = num_indexed();
  const int64_t words =
      ((total + simd::kCounterBlock - 1) / simd::kCounterBlock + 63) / 64;
  int32_t buf[simd::kCounterBlock];
  for (int64_t w = 0; w < words; ++w) {
    uint64_t bits = touched[w];
    touched[w] = 0;
    while (bits != 0) {
      const int bit = __builtin_ctzll(bits);
      bits &= bits - 1;
      const int64_t block_begin = (w * 64 + bit) * simd::kCounterBlock;
      const int32_t len =
          static_cast<int32_t>(std::min<int64_t>(simd::kCounterBlock, total - block_begin));
      const int32_t n = simd::ExtractAndClearBlock(
          counts + block_begin, static_cast<int32_t>(block_begin), len, 1, buf);
      for (int32_t v = 0; v < n; ++v) {
        if (check_dead && deleted(buf[v])) continue;
        candidates.push_back(buf[v]);
      }
    }
  }
  tls_last_candidates = static_cast<int64_t>(candidates.size());
  return candidates;
}

void KJoinIndex::Flatten(std::vector<Object>* objects, RestoredParts* parts) const {
  std::vector<const KJoinIndex*> layers;
  CollectLayers(&layers);

  objects->clear();
  objects->reserve(static_cast<size_t>(num_indexed()));
  std::unordered_set<int32_t> dead;
  for (const KJoinIndex* layer : layers) {
    // Dead objects are kept in place: chain-global indexes stay stable
    // across a flatten, so published hits and WAL deletes keep meaning
    // the same rows.
    objects->insert(objects->end(), layer->objects_.begin(), layer->objects_.end());
    dead.insert(layer->dead_.begin(), layer->dead_.end());
  }

  parts->lca = lca_;
  parts->tombstones.assign(dead.begin(), dead.end());
  std::sort(parts->tombstones.begin(), parts->tombstones.end());

  // Union of every layer's signatures, ascending, then one merged list
  // per signature fed straight to the CSR builder. Layers are ordered
  // deepest base first and each layer only indexes objects past its base,
  // so concatenating per-layer lists (each layer: frozen store first,
  // then its tail) keeps doc ids ascending without a sort.
  std::vector<SigId> keys;
  for (const KJoinIndex* layer : layers) {
    for (int32_t slot = 0; slot < layer->store_.num_lists(); ++slot) {
      keys.push_back(layer->store_.key(slot));
    }
    for (const auto& [id, list] : layer->tail_) keys.push_back(id);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  PostingStore::Builder builder;
  std::vector<int32_t> merged;
  std::vector<int32_t> decode_buf;
  for (const SigId id : keys) {
    merged.clear();
    for (const KJoinIndex* layer : layers) {
      const int32_t slot = layer->store_.Find(id);
      if (slot >= 0) {
        const int32_t n = layer->store_.length(slot);
        decode_buf.resize(static_cast<size_t>(n));
        layer->store_.Decode(slot, decode_buf.data());
        for (int32_t v = 0; v < n; ++v) {
          if (dead.find(decode_buf[v]) == dead.end()) merged.push_back(decode_buf[v]);
        }
      }
      auto it = layer->tail_.find(id);
      if (it != layer->tail_.end()) {
        for (const int32_t index : it->second) {
          if (dead.find(index) == dead.end()) merged.push_back(index);
        }
      }
    }
    // A signature all of whose carriers died must not leave an empty list
    // behind (the snapshot format forbids them, and df counts would skew).
    if (merged.empty()) continue;
    builder.Add(id, merged.data(), static_cast<int32_t>(merged.size()));
  }
  parts->postings = builder.Finish();
}

std::vector<SearchHit> KJoinIndex::Search(const Object& query) const {
  std::vector<SearchHit> hits;
  VerifyStats stats;
  for (int32_t i : Candidates(query)) {
    const Object& object = object_at(i);
    if (!verifier_.Verify(query, object, &stats)) continue;
    hits.push_back({i, object_sim_.Similarity(query, object)});
  }
  std::sort(hits.begin(), hits.end(), HitBefore);
  return hits;
}

std::vector<SearchHit> KJoinIndex::SearchTopK(const Object& query, int32_t k,
                                              double min_similarity) const {
  // Candidates are generated at the index's configured τ, so searching
  // below it would be incomplete.
  KJOIN_CHECK_GE(min_similarity, options_.tau)
      << "SearchTopK cannot go below the index's configured tau";
  std::vector<SearchHit> hits = Search(query);
  std::vector<SearchHit> result;
  for (const SearchHit& hit : hits) {
    if (hit.similarity + 1e-9 < min_similarity) continue;
    result.push_back(hit);
    if (k > 0 && static_cast<int32_t>(result.size()) >= k) break;
  }
  return result;
}

Status KJoinIndex::SearchControlled(const Object& query, const JoinControl& control,
                                    std::vector<SearchHit>* hits,
                                    SearchStats* stats) const {
  hits->clear();
  const bool has_deadline = control.deadline_seconds > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(has_deadline ? control.deadline_seconds : 0.0));
  const auto tripped = [&]() -> Status {
    if (control.cancel_token != nullptr && control.cancel_token->cancelled()) {
      return CancelledError("search cancelled");
    }
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      return DeadlineExceededError("search deadline exceeded");
    }
    return OkStatus();
  };

  Status status = tripped();
  VerifyStats verify_stats;
  int64_t candidate_count = 0;
  if (status.ok()) {
    const std::vector<int32_t> candidates = Candidates(query);
    candidate_count = static_cast<int64_t>(candidates.size());
    int since_poll = 0;
    for (int32_t i : candidates) {
      if (++since_poll >= kControlStride) {
        since_poll = 0;
        status = tripped();
        if (!status.ok()) break;
      }
      const Object& object = object_at(i);
      if (!verifier_.Verify(query, object, &verify_stats)) continue;
      hits->push_back({i, object_sim_.Similarity(query, object)});
    }
  }
  std::sort(hits->begin(), hits->end(), HitBefore);
  if (stats != nullptr) {
    stats->candidates = candidate_count;
    stats->verify = verify_stats;
  }
  return status;
}

Status KJoinIndex::Search(const Object& query, const JoinControl& control,
                          std::vector<SearchHit>* hits, SearchStats* stats) const {
  return SearchControlled(query, control, hits, stats);
}

Status KJoinIndex::SearchTopK(const Object& query, int32_t k, double min_similarity,
                              const JoinControl& control, std::vector<SearchHit>* hits,
                              SearchStats* stats) const {
  if (min_similarity < options_.tau) {
    return InvalidArgumentError("SearchTopK min_similarity " +
                                std::to_string(min_similarity) +
                                " below the index's configured tau " +
                                std::to_string(options_.tau));
  }
  // Filter and truncate even when the search tripped its deadline or
  // cancel token: partial hits still honor the caller's floor and k.
  const Status status = SearchControlled(query, control, hits, stats);
  std::vector<SearchHit> result;
  for (const SearchHit& hit : *hits) {
    if (hit.similarity + 1e-9 < min_similarity) continue;
    result.push_back(hit);
    if (k > 0 && static_cast<int32_t>(result.size()) >= k) break;
  }
  *hits = std::move(result);
  return status;
}

Status KJoinIndex::SearchTopK(const Object& query, int32_t k, double min_similarity,
                              const JoinControl& control, SearchBound* bound,
                              std::vector<SearchHit>* hits, SearchStats* stats) const {
  if (bound == nullptr) return SearchTopK(query, k, min_similarity, control, hits, stats);
  if (min_similarity < options_.tau) {
    return InvalidArgumentError("SearchTopK min_similarity " +
                                std::to_string(min_similarity) +
                                " below the index's configured tau " +
                                std::to_string(options_.tau));
  }
  return SearchTopKProgressive(query, k, min_similarity, control, bound, hits, stats);
}

Status KJoinIndex::SearchTopKProgressive(const Object& query, int32_t k,
                                         double min_similarity, const JoinControl& control,
                                         SearchBound* bound, std::vector<SearchHit>* hits,
                                         SearchStats* stats) const {
  hits->clear();
  const bool has_deadline = control.deadline_seconds > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(has_deadline ? control.deadline_seconds : 0.0));
  const auto tripped = [&]() -> Status {
    if (control.cancel_token != nullptr && control.cancel_token->cancelled()) {
      return CancelledError("search cancelled");
    }
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      return DeadlineExceededError("search deadline exceeded");
    }
    return OkStatus();
  };

  Status status = tripped();
  VerifyStats verify_stats;
  int64_t candidate_count = 0;
  // k > 0: a heap in HitBefore order with the worst kept hit at the
  // front, so the k-th cut (and the bound offered from it) honors the
  // documented total order through similarity ties. k <= 0: plain
  // accumulation, no tightening possible without a k-th best.
  std::vector<SearchHit> best;
  if (status.ok()) {
    const std::vector<int32_t> candidates = Candidates(query, bound, stats);
    candidate_count = static_cast<int64_t>(candidates.size());
    // One query, a stream of candidates: build the query's grouping plan
    // once for the whole probe instead of once per verified pair.
    ObjectGroupPlan query_plan;
    verifier_.BuildPlan(query, &query_plan);
    int since_poll = 0;
    for (int32_t i : candidates) {
      if (++since_poll >= kControlStride) {
        since_poll = 0;
        status = tripped();
        if (!status.ok()) break;
      }
      // The slack keeps the verify threshold strictly below every
      // similarity the bound was tightened to, so a final-top-k member
      // (similarity >= the bound at all times) can never be rejected by
      // float noise; anything the raised threshold does reject would
      // also lose the k-th cut.
      const double threshold = std::max(options_.tau, bound->value() - kSearchBoundSlack);
      const Object& object = object_at(i);
      bool similar;
      if (threshold > options_.tau) {
        // Length screen at the raised threshold: fuzzy overlap is a
        // matching with per-pair weights <= 1, so it never exceeds
        // min(|x|, |y|). When the overlap the threshold demands is above
        // that, VerifyAt could only reject — skip the (plan building +
        // grouping) work outright. The margin mirrors the verifier's
        // `overlap >= needed - kEps` accept rule, so the screen only
        // drops pairs a full verification would also drop.
        const double min_size =
            static_cast<double>(std::min(query.size(), object.size()));
        if (MinFuzzyOverlap(query.size(), object.size(), threshold,
                            options_.set_metric) > min_size + 1e-9) {
          if (stats != nullptr) ++stats->bound_skipped_verifies;
          continue;
        }
        if (stats != nullptr) ++stats->bound_raised_verifies;
        similar = verifier_.VerifyAt(query, query_plan, object, threshold, &verify_stats);
      } else {
        similar =
            verifier_.VerifyAt(query, query_plan, object, options_.tau, &verify_stats);
      }
      if (!similar) continue;
      const double similarity = object_sim_.Similarity(query, object);
      // Same floor rule as the plain SearchTopK filter.
      if (similarity + 1e-9 < min_similarity) continue;
      const SearchHit hit{i, similarity};
      if (k <= 0) {
        best.push_back(hit);
        continue;
      }
      if (static_cast<int32_t>(best.size()) < k) {
        best.push_back(hit);
        std::push_heap(best.begin(), best.end(), HitBefore);
        if (static_cast<int32_t>(best.size()) == k &&
            bound->Tighten(best.front().similarity) && stats != nullptr) {
          ++stats->bound_tightenings;
        }
      } else if (HitBefore(hit, best.front())) {
        std::pop_heap(best.begin(), best.end(), HitBefore);
        best.back() = hit;
        std::push_heap(best.begin(), best.end(), HitBefore);
        if (bound->Tighten(best.front().similarity) && stats != nullptr) {
          ++stats->bound_tightenings;
        }
      }
    }
  }
  std::sort(best.begin(), best.end(), HitBefore);
  *hits = std::move(best);
  if (stats != nullptr) {
    stats->candidates = candidate_count;
    stats->verify = verify_stats;
  }
  return status;
}

}  // namespace kjoin
