#include "core/kjoin_index.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "core/prefix.h"

namespace kjoin {

namespace {

// Candidate count of the calling thread's last Search. A mutable member
// would race under concurrent Search calls; a thread-local slot keeps the
// observability without any synchronization on the query path.
thread_local int64_t tls_last_candidates = 0;

// Deadline/cancel polling stride inside the verification loop. Polling is
// two relaxed loads every kControlStride pairs — invisible next to one
// verification — while bounding overshoot to a handful of pairs.
constexpr int kControlStride = 8;

}  // namespace

KJoinIndex::KJoinIndex(const Hierarchy& hierarchy, KJoinOptions options,
                       std::vector<Object> objects)
    : hierarchy_(&hierarchy),
      options_(options),
      objects_(std::move(objects)),
      lca_(std::make_shared<LcaIndex>(hierarchy)),
      sim_cache_(options.sim_cache ? std::make_unique<SimCache>(options.sim_cache_capacity)
                                   : nullptr),
      element_sim_(*lca_, options.element_metric, sim_cache_.get()),
      signatures_(hierarchy, options.element_metric, options.scheme, options.delta),
      object_sim_(element_sim_, options.delta, options.set_metric),
      verifier_(element_sim_, signatures_,
                VerifierOptions{options.delta, options.tau, options.verify_mode,
                                options.set_metric, options.count_pruning,
                                options.weighted_count_pruning, options.plus_mode}) {
  for (int32_t i = 0; i < static_cast<int32_t>(objects_.size()); ++i) IndexObject(i);
}

KJoinIndex::KJoinIndex(const Hierarchy& hierarchy, KJoinOptions options,
                       std::vector<Object> objects, RestoredParts parts)
    : hierarchy_(&hierarchy),
      options_(options),
      objects_(std::move(objects)),
      lca_(parts.lca != nullptr ? std::move(parts.lca)
                                : std::make_shared<const LcaIndex>(hierarchy)),
      sim_cache_(options.sim_cache ? std::make_unique<SimCache>(options.sim_cache_capacity)
                                   : nullptr),
      element_sim_(*lca_, options.element_metric, sim_cache_.get()),
      signatures_(hierarchy, options.element_metric, options.scheme, options.delta),
      object_sim_(element_sim_, options.delta, options.set_metric),
      verifier_(element_sim_, signatures_,
                VerifierOptions{options.delta, options.tau, options.verify_mode,
                                options.set_metric, options.count_pruning,
                                options.weighted_count_pruning, options.plus_mode}),
      postings_(std::move(parts.postings)) {
  KJOIN_CHECK(&lca_->hierarchy() == hierarchy_)
      << "restored LCA index belongs to a different hierarchy";
  for (const int32_t index : parts.tombstones) {
    KJOIN_CHECK(index >= 0 && static_cast<size_t>(index) < objects_.size())
        << "restored tombstone " << index << " outside the collection";
    dead_.insert(index);
  }
  total_dead_ = static_cast<int64_t>(dead_.size());
}

KJoinIndex::KJoinIndex(std::shared_ptr<const KJoinIndex> base)
    : hierarchy_(base->hierarchy_),
      options_(base->options_),
      base_(std::move(base)),
      base_total_(static_cast<int32_t>(base_->num_indexed())),
      depth_(base_->depth_ + 1),
      total_dead_(base_->total_dead_),
      lca_(base_->lca_),
      sim_cache_(options_.sim_cache ? std::make_unique<SimCache>(options_.sim_cache_capacity)
                                    : nullptr),
      element_sim_(*lca_, options_.element_metric, sim_cache_.get()),
      signatures_(*hierarchy_, options_.element_metric, options_.scheme, options_.delta),
      object_sim_(element_sim_, options_.delta, options_.set_metric),
      verifier_(element_sim_, signatures_,
                VerifierOptions{options_.delta, options_.tau, options_.verify_mode,
                                options_.set_metric, options_.count_pruning,
                                options_.weighted_count_pruning, options_.plus_mode}) {}

void KJoinIndex::IndexObject(int32_t index) {
  // Full signature set, deduplicated per object.
  std::vector<SigId> ids;
  for (const Signature& sig : signatures_.Generate(object_at(index))) ids.push_back(sig.id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (SigId id : ids) postings_[id].push_back(index);
}

int32_t KJoinIndex::Insert(const Object& object) {
  objects_.push_back(object);
  const int32_t index = base_total_ + static_cast<int32_t>(objects_.size()) - 1;
  IndexObject(index);
  return index;
}

bool KJoinIndex::DeleteObject(int32_t index) {
  KJOIN_CHECK(index >= 0 && index < num_indexed())
      << "DeleteObject index " << index << " outside [0, " << num_indexed() << ")";
  if (deleted(index)) return false;
  dead_.insert(index);
  ++total_dead_;
  return true;
}

void KJoinIndex::CollectLayers(std::vector<const KJoinIndex*>* layers) const {
  if (base_ != nullptr) base_->CollectLayers(layers);
  layers->push_back(this);
}

int64_t KJoinIndex::last_candidates() { return tls_last_candidates; }

std::vector<int32_t> KJoinIndex::Candidates(const Object& query) const {
  // The usual case is a flat index (one layer, no tombstones); deltas
  // probe every layer's postings. Layers are ordered deepest base first,
  // so concatenating a signature's lists preserves ascending object
  // order (each layer only indexes objects past its base).
  const KJoinIndex* flat[1] = {this};
  std::vector<const KJoinIndex*> chain;
  const KJoinIndex* const* layers = flat;
  size_t num_layers = 1;
  if (base_ != nullptr) {
    CollectLayers(&chain);
    layers = chain.data();
    num_layers = chain.size();
  }
  const bool check_dead = total_dead_ > 0;

  std::vector<Signature> sigs = signatures_.Generate(query);
  // Order by indexed-side document frequency ascending (chain-summed
  // posting-list length; absent signatures have df 0). Any fixed order is
  // sound for the asymmetric search argument; df-ascending keeps probed
  // lists short.
  auto df_of = [&](SigId id) {
    int64_t df = 0;
    for (size_t l = 0; l < num_layers; ++l) {
      auto it = layers[l]->postings_.find(id);
      if (it != layers[l]->postings_.end()) df += static_cast<int64_t>(it->second.size());
    }
    return df;
  };
  std::sort(sigs.begin(), sigs.end(), [&](const Signature& a, const Signature& b) {
    const int64_t dfa = df_of(a.id);
    const int64_t dfb = df_of(b.id);
    if (dfa != dfb) return dfa < dfb;
    if (a.id != b.id) return a.id < b.id;
    return a.element < b.element;
  });

  int32_t prefix;
  if (options_.weighted_prefix) {
    prefix = PrefixLengthWeighted(
        sigs, MinOverlapWithAnyPartner(query.size(), options_.tau, options_.set_metric));
  } else {
    prefix = PrefixLengthDistinct(
        sigs, MinSimilarElements(query.size(), options_.tau, options_.set_metric));
  }

  std::vector<int32_t> candidates;
  std::vector<char> seen(static_cast<size_t>(num_indexed()), 0);
  SigId previous = 0;
  bool have_previous = false;
  for (int32_t k = 0; k < prefix; ++k) {
    if (have_previous && sigs[k].id == previous) continue;
    previous = sigs[k].id;
    have_previous = true;
    for (size_t l = 0; l < num_layers; ++l) {
      auto it = layers[l]->postings_.find(sigs[k].id);
      if (it == layers[l]->postings_.end()) continue;
      for (int32_t i : it->second) {
        if (seen[i]) continue;
        seen[i] = 1;
        if (check_dead && deleted(i)) continue;
        candidates.push_back(i);
      }
    }
  }
  tls_last_candidates = static_cast<int64_t>(candidates.size());
  return candidates;
}

void KJoinIndex::Flatten(std::vector<Object>* objects, RestoredParts* parts) const {
  std::vector<const KJoinIndex*> layers;
  CollectLayers(&layers);

  objects->clear();
  objects->reserve(static_cast<size_t>(num_indexed()));
  std::unordered_set<int32_t> dead;
  for (const KJoinIndex* layer : layers) {
    // Dead objects are kept in place: chain-global indexes stay stable
    // across a flatten, so published hits and WAL deletes keep meaning
    // the same rows.
    objects->insert(objects->end(), layer->objects_.begin(), layer->objects_.end());
    dead.insert(layer->dead_.begin(), layer->dead_.end());
  }

  parts->lca = lca_;
  parts->tombstones.assign(dead.begin(), dead.end());
  std::sort(parts->tombstones.begin(), parts->tombstones.end());

  parts->postings.clear();
  for (const KJoinIndex* layer : layers) {
    for (const auto& [id, list] : layer->postings_) {
      std::vector<int32_t>& out = parts->postings[id];
      for (const int32_t index : list) {
        if (dead.find(index) == dead.end()) out.push_back(index);
      }
    }
  }
  // A signature all of whose carriers died must not leave an empty list
  // behind (the snapshot format forbids them, and df counts would skew).
  for (auto it = parts->postings.begin(); it != parts->postings.end();) {
    if (it->second.empty()) {
      it = parts->postings.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<SearchHit> KJoinIndex::Search(const Object& query) const {
  std::vector<SearchHit> hits;
  VerifyStats stats;
  for (int32_t i : Candidates(query)) {
    const Object& object = object_at(i);
    if (!verifier_.Verify(query, object, &stats)) continue;
    hits.push_back({i, object_sim_.Similarity(query, object)});
  }
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.object_index < b.object_index;
  });
  return hits;
}

std::vector<SearchHit> KJoinIndex::SearchTopK(const Object& query, int32_t k,
                                              double min_similarity) const {
  // Candidates are generated at the index's configured τ, so searching
  // below it would be incomplete.
  KJOIN_CHECK_GE(min_similarity, options_.tau)
      << "SearchTopK cannot go below the index's configured tau";
  std::vector<SearchHit> hits = Search(query);
  std::vector<SearchHit> result;
  for (const SearchHit& hit : hits) {
    if (hit.similarity + 1e-9 < min_similarity) continue;
    result.push_back(hit);
    if (k > 0 && static_cast<int32_t>(result.size()) >= k) break;
  }
  return result;
}

Status KJoinIndex::SearchControlled(const Object& query, const JoinControl& control,
                                    std::vector<SearchHit>* hits,
                                    SearchStats* stats) const {
  hits->clear();
  const bool has_deadline = control.deadline_seconds > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(has_deadline ? control.deadline_seconds : 0.0));
  const auto tripped = [&]() -> Status {
    if (control.cancel_token != nullptr && control.cancel_token->cancelled()) {
      return CancelledError("search cancelled");
    }
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      return DeadlineExceededError("search deadline exceeded");
    }
    return OkStatus();
  };

  Status status = tripped();
  VerifyStats verify_stats;
  int64_t candidate_count = 0;
  if (status.ok()) {
    const std::vector<int32_t> candidates = Candidates(query);
    candidate_count = static_cast<int64_t>(candidates.size());
    int since_poll = 0;
    for (int32_t i : candidates) {
      if (++since_poll >= kControlStride) {
        since_poll = 0;
        status = tripped();
        if (!status.ok()) break;
      }
      const Object& object = object_at(i);
      if (!verifier_.Verify(query, object, &verify_stats)) continue;
      hits->push_back({i, object_sim_.Similarity(query, object)});
    }
  }
  std::sort(hits->begin(), hits->end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.object_index < b.object_index;
  });
  if (stats != nullptr) {
    stats->candidates = candidate_count;
    stats->verify = verify_stats;
  }
  return status;
}

Status KJoinIndex::Search(const Object& query, const JoinControl& control,
                          std::vector<SearchHit>* hits, SearchStats* stats) const {
  return SearchControlled(query, control, hits, stats);
}

Status KJoinIndex::SearchTopK(const Object& query, int32_t k, double min_similarity,
                              const JoinControl& control, std::vector<SearchHit>* hits,
                              SearchStats* stats) const {
  if (min_similarity < options_.tau) {
    return InvalidArgumentError("SearchTopK min_similarity " +
                                std::to_string(min_similarity) +
                                " below the index's configured tau " +
                                std::to_string(options_.tau));
  }
  // Filter and truncate even when the search tripped its deadline or
  // cancel token: partial hits still honor the caller's floor and k.
  const Status status = SearchControlled(query, control, hits, stats);
  std::vector<SearchHit> result;
  for (const SearchHit& hit : *hits) {
    if (hit.similarity + 1e-9 < min_similarity) continue;
    result.push_back(hit);
    if (k > 0 && static_cast<int32_t>(result.size()) >= k) break;
  }
  *hits = std::move(result);
  return status;
}

}  // namespace kjoin
