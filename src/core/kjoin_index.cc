#include "core/kjoin_index.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "core/prefix.h"

namespace kjoin {

namespace {

// Candidate count of the calling thread's last Search. A mutable member
// would race under concurrent Search calls; a thread-local slot keeps the
// observability without any synchronization on the query path.
thread_local int64_t tls_last_candidates = 0;

// Deadline/cancel polling stride inside the verification loop. Polling is
// two relaxed loads every kControlStride pairs — invisible next to one
// verification — while bounding overshoot to a handful of pairs.
constexpr int kControlStride = 8;

}  // namespace

KJoinIndex::KJoinIndex(const Hierarchy& hierarchy, KJoinOptions options,
                       std::vector<Object> objects)
    : hierarchy_(&hierarchy),
      options_(options),
      objects_(std::move(objects)),
      lca_(std::make_shared<LcaIndex>(hierarchy)),
      sim_cache_(options.sim_cache ? std::make_unique<SimCache>(options.sim_cache_capacity)
                                   : nullptr),
      element_sim_(*lca_, options.element_metric, sim_cache_.get()),
      signatures_(hierarchy, options.element_metric, options.scheme, options.delta),
      object_sim_(element_sim_, options.delta, options.set_metric),
      verifier_(element_sim_, signatures_,
                VerifierOptions{options.delta, options.tau, options.verify_mode,
                                options.set_metric, options.count_pruning,
                                options.weighted_count_pruning, options.plus_mode}) {
  for (int32_t i = 0; i < static_cast<int32_t>(objects_.size()); ++i) IndexObject(i);
}

KJoinIndex::KJoinIndex(const Hierarchy& hierarchy, KJoinOptions options,
                       std::vector<Object> objects, RestoredParts parts)
    : hierarchy_(&hierarchy),
      options_(options),
      objects_(std::move(objects)),
      lca_(parts.lca != nullptr ? std::move(parts.lca)
                                : std::make_shared<const LcaIndex>(hierarchy)),
      sim_cache_(options.sim_cache ? std::make_unique<SimCache>(options.sim_cache_capacity)
                                   : nullptr),
      element_sim_(*lca_, options.element_metric, sim_cache_.get()),
      signatures_(hierarchy, options.element_metric, options.scheme, options.delta),
      object_sim_(element_sim_, options.delta, options.set_metric),
      verifier_(element_sim_, signatures_,
                VerifierOptions{options.delta, options.tau, options.verify_mode,
                                options.set_metric, options.count_pruning,
                                options.weighted_count_pruning, options.plus_mode}),
      postings_(std::move(parts.postings)) {
  KJOIN_CHECK(&lca_->hierarchy() == hierarchy_)
      << "restored LCA index belongs to a different hierarchy";
}

void KJoinIndex::IndexObject(int32_t index) {
  // Full signature set, deduplicated per object.
  std::vector<SigId> ids;
  for (const Signature& sig : signatures_.Generate(objects_[index])) ids.push_back(sig.id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (SigId id : ids) postings_[id].push_back(index);
}

int32_t KJoinIndex::Insert(const Object& object) {
  objects_.push_back(object);
  const int32_t index = static_cast<int32_t>(objects_.size() - 1);
  IndexObject(index);
  return index;
}

int64_t KJoinIndex::last_candidates() { return tls_last_candidates; }

std::vector<int32_t> KJoinIndex::Candidates(const Object& query) const {
  std::vector<Signature> sigs = signatures_.Generate(query);
  // Order by indexed-side document frequency ascending (posting-list
  // length; absent signatures have df 0). Any fixed order is sound for
  // the asymmetric search argument; df-ascending keeps probed lists
  // short.
  auto df_of = [&](SigId id) {
    auto it = postings_.find(id);
    return it == postings_.end() ? int64_t{0} : static_cast<int64_t>(it->second.size());
  };
  std::sort(sigs.begin(), sigs.end(), [&](const Signature& a, const Signature& b) {
    const int64_t dfa = df_of(a.id);
    const int64_t dfb = df_of(b.id);
    if (dfa != dfb) return dfa < dfb;
    if (a.id != b.id) return a.id < b.id;
    return a.element < b.element;
  });

  int32_t prefix;
  if (options_.weighted_prefix) {
    prefix = PrefixLengthWeighted(
        sigs, MinOverlapWithAnyPartner(query.size(), options_.tau, options_.set_metric));
  } else {
    prefix = PrefixLengthDistinct(
        sigs, MinSimilarElements(query.size(), options_.tau, options_.set_metric));
  }

  std::vector<int32_t> candidates;
  std::vector<char> seen(objects_.size(), 0);
  SigId previous = 0;
  bool have_previous = false;
  for (int32_t k = 0; k < prefix; ++k) {
    if (have_previous && sigs[k].id == previous) continue;
    previous = sigs[k].id;
    have_previous = true;
    auto it = postings_.find(sigs[k].id);
    if (it == postings_.end()) continue;
    for (int32_t i : it->second) {
      if (!seen[i]) {
        seen[i] = 1;
        candidates.push_back(i);
      }
    }
  }
  tls_last_candidates = static_cast<int64_t>(candidates.size());
  return candidates;
}

std::vector<SearchHit> KJoinIndex::Search(const Object& query) const {
  std::vector<SearchHit> hits;
  VerifyStats stats;
  for (int32_t i : Candidates(query)) {
    if (!verifier_.Verify(query, objects_[i], &stats)) continue;
    hits.push_back({i, object_sim_.Similarity(query, objects_[i])});
  }
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.object_index < b.object_index;
  });
  return hits;
}

std::vector<SearchHit> KJoinIndex::SearchTopK(const Object& query, int32_t k,
                                              double min_similarity) const {
  // Candidates are generated at the index's configured τ, so searching
  // below it would be incomplete.
  KJOIN_CHECK_GE(min_similarity, options_.tau)
      << "SearchTopK cannot go below the index's configured tau";
  std::vector<SearchHit> hits = Search(query);
  std::vector<SearchHit> result;
  for (const SearchHit& hit : hits) {
    if (hit.similarity + 1e-9 < min_similarity) continue;
    result.push_back(hit);
    if (k > 0 && static_cast<int32_t>(result.size()) >= k) break;
  }
  return result;
}

Status KJoinIndex::SearchControlled(const Object& query, const JoinControl& control,
                                    std::vector<SearchHit>* hits,
                                    SearchStats* stats) const {
  hits->clear();
  const bool has_deadline = control.deadline_seconds > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(has_deadline ? control.deadline_seconds : 0.0));
  const auto tripped = [&]() -> Status {
    if (control.cancel_token != nullptr && control.cancel_token->cancelled()) {
      return CancelledError("search cancelled");
    }
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      return DeadlineExceededError("search deadline exceeded");
    }
    return OkStatus();
  };

  Status status = tripped();
  VerifyStats verify_stats;
  int64_t candidate_count = 0;
  if (status.ok()) {
    const std::vector<int32_t> candidates = Candidates(query);
    candidate_count = static_cast<int64_t>(candidates.size());
    int since_poll = 0;
    for (int32_t i : candidates) {
      if (++since_poll >= kControlStride) {
        since_poll = 0;
        status = tripped();
        if (!status.ok()) break;
      }
      if (!verifier_.Verify(query, objects_[i], &verify_stats)) continue;
      hits->push_back({i, object_sim_.Similarity(query, objects_[i])});
    }
  }
  std::sort(hits->begin(), hits->end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.object_index < b.object_index;
  });
  if (stats != nullptr) {
    stats->candidates = candidate_count;
    stats->verify = verify_stats;
  }
  return status;
}

Status KJoinIndex::Search(const Object& query, const JoinControl& control,
                          std::vector<SearchHit>* hits, SearchStats* stats) const {
  return SearchControlled(query, control, hits, stats);
}

Status KJoinIndex::SearchTopK(const Object& query, int32_t k, double min_similarity,
                              const JoinControl& control, std::vector<SearchHit>* hits,
                              SearchStats* stats) const {
  if (min_similarity < options_.tau) {
    return InvalidArgumentError("SearchTopK min_similarity " +
                                std::to_string(min_similarity) +
                                " below the index's configured tau " +
                                std::to_string(options_.tau));
  }
  // Filter and truncate even when the search tripped its deadline or
  // cancel token: partial hits still honor the caller's floor and k.
  const Status status = SearchControlled(query, control, hits, stats);
  std::vector<SearchHit> result;
  for (const SearchHit& hit : *hits) {
    if (hit.similarity + 1e-9 < min_similarity) continue;
    result.push_back(hit);
    if (k > 0 && static_cast<int32_t>(result.size()) >= k) break;
  }
  *hits = std::move(result);
  return status;
}

}  // namespace kjoin
