#ifndef KJOIN_CORE_ELEMENT_H_
#define KJOIN_CORE_ELEMENT_H_

// The element model.
//
// An object (record) is a multiset of elements; each element is a token
// that maps onto zero or more knowledge-hierarchy nodes (paper §2.1.1).
// K-Join uses a single exact mapping; K-Join+ attaches several mappings,
// each with a confidence φ (1 for exact matches and synonyms, the
// normalized edit similarity for typo matches). Tokens that match no node
// keep an empty mapping list and can only be similar to an identical
// token.

#include <cstdint>
#include <string>
#include <vector>

#include "hierarchy/hierarchy.h"

namespace kjoin {

// One (node, confidence) mapping of an element.
struct ElementMapping {
  NodeId node = kInvalidNode;
  double phi = 0.0;

  friend bool operator==(const ElementMapping&, const ElementMapping&) = default;
};

struct Element {
  // Normalized surface form.
  std::string token;
  // Dense id of `token` from the ObjectBuilder's interner; identical
  // tokens (across both join sides) share an id.
  int32_t token_id = -1;
  // Candidate nodes, sorted by phi descending. Empty when unmatched.
  std::vector<ElementMapping> mappings;

  bool has_node() const { return !mappings.empty(); }

  // Largest mapping confidence (0 when unmatched).
  double max_phi() const;
};

}  // namespace kjoin

#endif  // KJOIN_CORE_ELEMENT_H_
