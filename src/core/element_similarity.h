#ifndef KJOIN_CORE_ELEMENT_SIMILARITY_H_
#define KJOIN_CORE_ELEMENT_SIMILARITY_H_

// Knowledge-aware element similarity (paper Definitions 1, Eq. 2, §6.2).

#include "core/element.h"
#include "core/sim_cache.h"
#include "hierarchy/lca.h"

namespace kjoin {

// Which hierarchy-based similarity is used between two nodes.
//  kKJoin:    d_LCA / max(d_x, d_y)            (Definition 1)
//  kWuPalmer: 2 d_LCA / (d_x + d_y)            (Wu & Palmer, §6.2)
enum class ElementMetric {
  kKJoin,
  kWuPalmer,
};

class ElementSimilarity {
 public:
  // The LCA index (and its hierarchy) must outlive this object. When
  // `cache` is non-null it must outlive this object too; node-pair
  // similarities are then memoized through it (hits are bit-identical to
  // recomputation, so results do not depend on the cache being present).
  explicit ElementSimilarity(const LcaIndex& lca, ElementMetric metric = ElementMetric::kKJoin,
                             const SimCache* cache = nullptr);

  // Similarity between two tree nodes under the configured metric.
  double NodeSim(NodeId x, NodeId y) const;

  // Element similarity with multi-node mappings (Eq. 2): identical tokens
  // have similarity 1; otherwise the maximum over mapping pairs of
  // NodeSim(n_x, n_y) · φ_x · φ_y; 0 when either side is unmapped.
  double Sim(const Element& x, const Element& y) const;

  ElementMetric metric() const { return metric_; }
  const LcaIndex& lca() const { return *lca_; }
  const Hierarchy& hierarchy() const { return lca_->hierarchy(); }

  // True when a SimCache fronts node-pair lookups. Callers that batch LCA
  // resolution themselves (verifier.cc's bigraph build) must stay on
  // Sim() when this is set, or cache hit counters would drift.
  bool cached() const { return cache_ != nullptr; }

  // NodeSim with the LCA depth already in hand (LcaIndex::LcaDepthBatch).
  // Bit-identical to an uncached NodeSim(x, y).
  double NodeSimFromDepth(NodeId x, NodeId y, int lca_depth) const;

  // --- Threshold geometry (static, metric-parameterized) ---------------

  // d_δ: the minimum LCA depth of two *different* δ-similar nodes
  // (§3.1: ⌈δ/(1−δ)⌉ for kKJoin, ⌈δ/(2(1−δ))⌉ for kWuPalmer).
  // Requires 0 < delta < 1 (with delta == 1 no two different nodes are
  // similar; callers special-case it).
  static int MinSignatureDepth(double delta, ElementMetric metric);

  // The minimum possible LCA depth of a δ-similar pair involving a node
  // of depth `node_depth`: ⌈δ·d⌉ for kKJoin, ⌈δ·d/(2−δ)⌉ for kWuPalmer.
  // This is the lower end of the deep path-signature depth range (§4.1).
  static int MinLcaDepthFor(int node_depth, double delta, ElementMetric metric);

  // Upper bound on the similarity between a node of depth `node_depth`
  // and any *different* node: d/(d+1) for kKJoin, 2d/(2d+1) for
  // kWuPalmer. Used by the weighted count pruning (Lemma 4).
  static double MaxSimToDistinctNode(int node_depth, ElementMetric metric);

  // Upper bound on the similarity realizable between a node of depth
  // `node_depth` and a counterpart whose LCA with it has depth at most
  // `lca_depth`: d_lca/d for kKJoin, 2·d_lca/(d_lca + d) for kWuPalmer.
  // This is the weight of the path signature at depth `lca_depth`
  // (Definition 9).
  static double MaxSimThroughDepth(int lca_depth, int node_depth, ElementMetric metric);

 private:
  // NodeSim without the cache in front.
  double NodeSimUncached(NodeId x, NodeId y) const;

  // The Eq. 2 mapping-pair loop, bypassing the cache entirely (its
  // NodeSims are computed directly: when this runs as a SimCache miss the
  // whole result is memoized at the element level, and caching the inner
  // node pairs too only adds probe traffic).
  double SimUncached(const Element& x, const Element& y) const;

  const LcaIndex* lca_;
  ElementMetric metric_;
  const SimCache* cache_;  // may be null (caching off)
};

}  // namespace kjoin

#endif  // KJOIN_CORE_ELEMENT_SIMILARITY_H_
