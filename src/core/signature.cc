#include "core/signature.h"

#include <algorithm>
#include <climits>

#include "common/logging.h"

namespace kjoin {

SignatureGenerator::SignatureGenerator(const Hierarchy& hierarchy, ElementMetric metric,
                                       SignatureScheme scheme, double delta)
    : hierarchy_(&hierarchy),
      metric_(metric),
      scheme_(scheme),
      delta_(delta),
      token_base_(hierarchy.num_nodes()) {
  KJOIN_CHECK(delta > 0.0 && delta <= 1.0) << "delta out of range: " << delta;
  d_delta_ = (delta >= 1.0) ? INT_MAX / 2 : ElementSimilarity::MinSignatureDepth(delta, metric);
}

void SignatureGenerator::AppendForMapping(const ElementMapping& mapping, int32_t element_index,
                                          std::vector<Signature>* out) const {
  const NodeId node = mapping.node;
  const int depth = hierarchy_->depth(node);
  switch (scheme_) {
    case SignatureScheme::kNode: {
      const NodeId sig =
          depth < d_delta_ ? node : hierarchy_->AncestorAtDepth(node, d_delta_);
      out->push_back({static_cast<SigId>(sig), element_index, 1.0f});
      return;
    }
    case SignatureScheme::kShallowPath: {
      const int hi = std::max(1, ElementSimilarity::MinLcaDepthFor(depth, delta_, metric_));
      const int lo = std::max(1, ElementSimilarity::MinLcaDepthFor(hi, delta_, metric_));
      for (int d = std::min(lo, depth); d <= std::min(hi, depth); ++d) {
        out->push_back(
            {static_cast<SigId>(hierarchy_->AncestorAtDepth(node, d)), element_index, 1.0f});
      }
      return;
    }
    case SignatureScheme::kDeepPath: {
      const int lo =
          std::max(1, ElementSimilarity::MinLcaDepthFor(depth, delta_, metric_));
      for (int d = std::min(lo, depth); d <= depth; ++d) {
        const double weight =
            mapping.phi * ElementSimilarity::MaxSimThroughDepth(d, depth, metric_);
        out->push_back({static_cast<SigId>(hierarchy_->AncestorAtDepth(node, d)), element_index,
                        static_cast<float>(weight)});
      }
      return;
    }
  }
}

std::vector<Signature> SignatureGenerator::Generate(const Object& object) const {
  std::vector<Signature> sigs;
  sigs.reserve(object.elements.size() * 2);
  std::vector<Signature> scratch;
  for (int32_t i = 0; i < object.size(); ++i) {
    const Element& element = object.elements[i];
    if (!element.has_node()) {
      KJOIN_CHECK_GE(element.token_id, 0) << "elements must be built by ObjectBuilder";
      sigs.push_back({TokenSignature(element.token_id), i, 1.0f});
      continue;
    }
    scratch.clear();
    for (const ElementMapping& mapping : element.mappings) {
      AppendForMapping(mapping, i, &scratch);
    }
    // Deduplicate per element, keeping the max weight: several mappings
    // (or the depth sweep of one mapping) can emit the same ancestor.
    std::sort(scratch.begin(), scratch.end(), [](const Signature& a, const Signature& b) {
      if (a.id != b.id) return a.id < b.id;
      return a.weight > b.weight;
    });
    for (size_t k = 0; k < scratch.size(); ++k) {
      if (k > 0 && scratch[k].id == scratch[k - 1].id) continue;
      sigs.push_back(scratch[k]);
    }
  }
  return sigs;
}

void SignatureGenerator::AppendNodeSignatures(const Element& element,
                                              std::vector<SigId>* out) const {
  if (!element.has_node()) {
    KJOIN_CHECK_GE(element.token_id, 0);
    out->push_back(TokenSignature(element.token_id));
    return;
  }
  const size_t start = out->size();
  for (const ElementMapping& mapping : element.mappings) {
    const int depth = hierarchy_->depth(mapping.node);
    const NodeId sig = depth < d_delta_
                           ? mapping.node
                           : hierarchy_->AncestorAtDepth(mapping.node, d_delta_);
    const SigId id = static_cast<SigId>(sig);
    if (std::find(out->begin() + start, out->end(), id) == out->end()) out->push_back(id);
  }
}

}  // namespace kjoin
