#include "core/object_similarity.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "matching/hungarian.h"

namespace kjoin {
namespace {

int32_t CeilSafe(double x) { return static_cast<int32_t>(std::ceil(x - 1e-9)); }

}  // namespace

double MinOverlapWithAnyPartner(int32_t size, double tau, SetMetric metric) {
  KJOIN_CHECK(tau >= 0.0 && tau <= 1.0) << "tau out of range: " << tau;
  switch (metric) {
    case SetMetric::kJaccard:
      return tau * size;
    case SetMetric::kDice:
      return tau / (2.0 - tau) * size;
    case SetMetric::kCosine:
      return tau * tau * size;
  }
  return 0.0;
}

int32_t MinSimilarElements(int32_t size, double tau, SetMetric metric) {
  return CeilSafe(MinOverlapWithAnyPartner(size, tau, metric));
}

double MinFuzzyOverlap(int32_t size_x, int32_t size_y, double tau, SetMetric metric) {
  switch (metric) {
    case SetMetric::kJaccard:
      return tau / (1.0 + tau) * (size_x + size_y);
    case SetMetric::kDice:
      return tau / 2.0 * (size_x + size_y);
    case SetMetric::kCosine:
      return tau * std::sqrt(static_cast<double>(size_x) * size_y);
  }
  return 0.0;
}

double CombineOverlap(double overlap, int32_t size_x, int32_t size_y, SetMetric metric) {
  if (size_x == 0 && size_y == 0) return 1.0;
  if (size_x == 0 || size_y == 0) return 0.0;
  switch (metric) {
    case SetMetric::kJaccard: {
      const double denom = size_x + size_y - overlap;
      return denom <= 0.0 ? 1.0 : overlap / denom;
    }
    case SetMetric::kDice:
      return 2.0 * overlap / (size_x + size_y);
    case SetMetric::kCosine:
      return overlap / std::sqrt(static_cast<double>(size_x) * size_y);
  }
  return 0.0;
}

ObjectSimilarity::ObjectSimilarity(const ElementSimilarity& element_sim, double delta,
                                   SetMetric metric)
    : element_sim_(&element_sim), delta_(delta), metric_(metric) {
  KJOIN_CHECK(delta > 0.0 && delta <= 1.0) << "delta out of range: " << delta;
}

Bigraph ObjectSimilarity::BuildBigraph(const Object& x, const Object& y) const {
  Bigraph graph;
  BuildBigraph(x, y, &graph);
  return graph;
}

void ObjectSimilarity::BuildBigraph(const Object& x, const Object& y, Bigraph* graph) const {
  graph->Reset(x.size(), y.size());
  for (int32_t i = 0; i < x.size(); ++i) {
    for (int32_t j = 0; j < y.size(); ++j) {
      const double sim = element_sim_->Sim(x.elements[i], y.elements[j]);
      if (sim >= delta_ - 1e-12) graph->AddEdge(i, j, sim);
    }
  }
}

double ObjectSimilarity::FuzzyOverlap(const Object& x, const Object& y) const {
  const Bigraph graph = BuildBigraph(x, y);
  return MaxWeightMatching(graph);
}

double ObjectSimilarity::Similarity(const Object& x, const Object& y) const {
  return CombineOverlap(FuzzyOverlap(x, y), x.size(), y.size(), metric_);
}

}  // namespace kjoin
