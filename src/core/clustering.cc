#include "core/clustering.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace kjoin {
namespace {

class UnionFind {
 public:
  explicit UnionFind(int64_t n) : parent_(n) {
    for (int64_t i = 0; i < n; ++i) parent_[i] = static_cast<int32_t>(i);
  }
  int32_t Find(int32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int32_t a, int32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int32_t> parent_;
};

// Number of unordered pairs implied by cluster sizes: sum of C(size, 2).
int64_t ImpliedPairs(const std::vector<int64_t>& sizes) {
  int64_t total = 0;
  for (int64_t size : sizes) total += size * (size - 1) / 2;
  return total;
}

}  // namespace

Clustering ClusterPairs(int64_t num_records,
                        const std::vector<std::pair<int32_t, int32_t>>& pairs) {
  UnionFind uf(num_records);
  for (const auto& [a, b] : pairs) {
    KJOIN_CHECK(a >= 0 && a < num_records) << "pair index out of range: " << a;
    KJOIN_CHECK(b >= 0 && b < num_records) << "pair index out of range: " << b;
    uf.Union(a, b);
  }

  Clustering clustering;
  clustering.cluster_of.assign(num_records, -1);
  // Assign dense ids in order of first appearance (== smallest member).
  std::unordered_map<int32_t, int32_t> id_of_root;
  for (int64_t i = 0; i < num_records; ++i) {
    const int32_t root = uf.Find(static_cast<int32_t>(i));
    auto [it, inserted] = id_of_root.emplace(root, clustering.num_clusters);
    if (inserted) {
      ++clustering.num_clusters;
      clustering.clusters.emplace_back();
    }
    clustering.cluster_of[i] = it->second;
    clustering.clusters[it->second].push_back(static_cast<int32_t>(i));
  }
  return clustering;
}

ClusterQuality EvaluateClustering(const Clustering& predicted,
                                  const std::vector<int32_t>& truth_cluster_of) {
  KJOIN_CHECK_EQ(predicted.cluster_of.size(), truth_cluster_of.size());
  const int64_t n = static_cast<int64_t>(truth_cluster_of.size());

  std::vector<int64_t> predicted_sizes(predicted.num_clusters, 0);
  for (int32_t cluster : predicted.cluster_of) ++predicted_sizes[cluster];

  std::unordered_map<int32_t, int64_t> truth_sizes;
  for (int32_t cluster : truth_cluster_of) {
    if (cluster >= 0) ++truth_sizes[cluster];
  }

  // Common pairs: group records by (predicted, truth) cluster pair; each
  // group of size s contributes C(s, 2) pairs in both clusterings.
  std::unordered_map<int64_t, int64_t> joint_sizes;
  for (int64_t i = 0; i < n; ++i) {
    if (truth_cluster_of[i] < 0) continue;
    const int64_t key = (static_cast<int64_t>(predicted.cluster_of[i]) << 32) |
                        static_cast<uint32_t>(truth_cluster_of[i]);
    ++joint_sizes[key];
  }

  ClusterQuality quality;
  quality.predicted_pairs = ImpliedPairs(predicted_sizes);
  std::vector<int64_t> truth_size_list;
  truth_size_list.reserve(truth_sizes.size());
  for (const auto& [cluster, size] : truth_sizes) truth_size_list.push_back(size);
  quality.truth_pairs = ImpliedPairs(truth_size_list);
  std::vector<int64_t> joint_size_list;
  joint_size_list.reserve(joint_sizes.size());
  for (const auto& [key, size] : joint_sizes) joint_size_list.push_back(size);
  quality.common_pairs = ImpliedPairs(joint_size_list);

  quality.precision = quality.predicted_pairs == 0
                          ? 1.0
                          : static_cast<double>(quality.common_pairs) / quality.predicted_pairs;
  quality.recall = quality.truth_pairs == 0
                       ? 1.0
                       : static_cast<double>(quality.common_pairs) / quality.truth_pairs;
  quality.f1 = (quality.precision + quality.recall) == 0.0
                   ? 0.0
                   : 2.0 * quality.precision * quality.recall /
                         (quality.precision + quality.recall);
  return quality;
}

}  // namespace kjoin
