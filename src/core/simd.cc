#include "core/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <utility>

#include "common/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#define KJOIN_SIMD_X86 1
#include <immintrin.h>
#else
#define KJOIN_SIMD_X86 0
#endif

namespace kjoin::simd {
namespace {

// Dispatch state: -1 = unresolved, otherwise an IsaLevel. Resolution is
// idempotent (CPUID + one getenv), so a racy double-resolve is harmless.
std::atomic<int> g_active_level{-1};

IsaLevel ResolveLevel() {
  const char* force = std::getenv("KJOIN_FORCE_SCALAR");
  if (force != nullptr && force[0] == '1' && force[1] == '\0') return IsaLevel::kScalar;
  return MaxSupportedLevel();
}

// ---------------------------------------------------------------------------
// Block decode.

// Extracts packed[i] for i in [0, count) and accumulates: each packed
// value is (delta - 1), so out[i] = previous + packed[i] + 1.
void DecodeScalar(const uint64_t* words, int bits, int32_t count, int32_t first,
                  int32_t* out) {
  int32_t running = first;
  if (bits == 0) {
    for (int32_t i = 0; i < count; ++i) out[i] = ++running;
    return;
  }
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  uint64_t bit = 0;
  for (int32_t i = 0; i < count; ++i, bit += static_cast<uint64_t>(bits)) {
    const uint64_t word = bit >> 6;
    const int shift = static_cast<int>(bit & 63);
    uint64_t v = words[word] >> shift;
    if (shift + bits > 64) v |= words[word + 1] << (64 - shift);
    running += static_cast<int32_t>(v & mask) + 1;
    out[i] = running;
  }
}

#if KJOIN_SIMD_X86

// 8-lane inclusive prefix sum (Hillis-Steele in registers).
__attribute__((target("avx2"))) inline __m256i Scan8(__m256i x) {
  x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
  x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
  // Carry the low lane's total into the high lane.
  __m256i carry = _mm256_permute2x128_si256(x, x, 0x08);
  carry = _mm256_shuffle_epi32(carry, 0xff);
  return _mm256_add_epi32(x, carry);
}

__attribute__((target("avx2"))) void DecodeAvx2(const uint64_t* words, int bits,
                                                int32_t count, int32_t first, int32_t* out) {
  if (bits == 0) {
    // A run of consecutive ids: first + 1, first + 2, ...
    const __m256i iota = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 8);
    __m256i base = _mm256_set1_epi32(first);
    int32_t i = 0;
    for (; i + 8 <= count; i += 8) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), _mm256_add_epi32(base, iota));
      base = _mm256_add_epi32(base, _mm256_set1_epi32(8));
    }
    for (int32_t running = first + i; i < count; ++i) out[i] = ++running;
    return;
  }
  // Bit-extract 8 deltas at a time, then vector prefix-sum them onto the
  // running base. Extraction is scalar (the windows are unaligned and
  // variable-width); the scan and the base add are where the cycles were.
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  alignas(32) int32_t deltas[8];
  int32_t running = first;
  uint64_t bit = 0;
  int32_t i = 0;
  for (; i + 8 <= count; i += 8) {
    for (int lane = 0; lane < 8; ++lane, bit += static_cast<uint64_t>(bits)) {
      const uint64_t word = bit >> 6;
      const int shift = static_cast<int>(bit & 63);
      uint64_t v = words[word] >> shift;
      if (shift + bits > 64) v |= words[word + 1] << (64 - shift);
      deltas[lane] = static_cast<int32_t>(v & mask);
    }
    __m256i d = _mm256_load_si256(reinterpret_cast<const __m256i*>(deltas));
    d = _mm256_add_epi32(d, _mm256_set1_epi32(1));
    const __m256i scanned = _mm256_add_epi32(Scan8(d), _mm256_set1_epi32(running));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), scanned);
    running = out[i + 7];
  }
  for (; i < count; ++i, bit += static_cast<uint64_t>(bits)) {
    const uint64_t word = bit >> 6;
    const int shift = static_cast<int>(bit & 63);
    uint64_t v = words[word] >> shift;
    if (shift + bits > 64) v |= words[word + 1] << (64 - shift);
    running += static_cast<int32_t>(v & mask) + 1;
    out[i] = running;
  }
}

__attribute__((target("sse4.2"))) inline __m128i Scan4(__m128i x) {
  x = _mm_add_epi32(x, _mm_slli_si128(x, 4));
  x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
  return x;
}

__attribute__((target("sse4.2"))) void DecodeSse42(const uint64_t* words, int bits,
                                                   int32_t count, int32_t first,
                                                   int32_t* out) {
  if (bits == 0) {
    const __m128i iota = _mm_setr_epi32(1, 2, 3, 4);
    __m128i base = _mm_set1_epi32(first);
    int32_t i = 0;
    for (; i + 4 <= count; i += 4) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm_add_epi32(base, iota));
      base = _mm_add_epi32(base, _mm_set1_epi32(4));
    }
    for (int32_t running = first + i; i < count; ++i) out[i] = ++running;
    return;
  }
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  alignas(16) int32_t deltas[4];
  int32_t running = first;
  uint64_t bit = 0;
  int32_t i = 0;
  for (; i + 4 <= count; i += 4) {
    for (int lane = 0; lane < 4; ++lane, bit += static_cast<uint64_t>(bits)) {
      const uint64_t word = bit >> 6;
      const int shift = static_cast<int>(bit & 63);
      uint64_t v = words[word] >> shift;
      if (shift + bits > 64) v |= words[word + 1] << (64 - shift);
      deltas[lane] = static_cast<int32_t>(v & mask);
    }
    __m128i d = _mm_load_si128(reinterpret_cast<const __m128i*>(deltas));
    d = _mm_add_epi32(d, _mm_set1_epi32(1));
    const __m128i scanned = _mm_add_epi32(Scan4(d), _mm_set1_epi32(running));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), scanned);
    running = out[i + 3];
  }
  for (; i < count; ++i, bit += static_cast<uint64_t>(bits)) {
    const uint64_t word = bit >> 6;
    const int shift = static_cast<int>(bit & 63);
    uint64_t v = words[word] >> shift;
    if (shift + bits > 64) v |= words[word + 1] << (64 - shift);
    running += static_cast<int32_t>(v & mask) + 1;
    out[i] = running;
  }
}

#endif  // KJOIN_SIMD_X86

// ---------------------------------------------------------------------------
// Intersection.

int32_t IntersectLinearScalar(const int32_t* a, int32_t an, const int32_t* b, int32_t bn,
                              int32_t* out) {
  int32_t i = 0, j = 0, k = 0;
  while (i < an && j < bn) {
    const int32_t va = a[i];
    const int32_t vb = b[j];
    if (va < vb) {
      ++i;
    } else if (vb < va) {
      ++j;
    } else {
      out[k++] = va;
      ++i;
      ++j;
    }
  }
  return k;
}

#if KJOIN_SIMD_X86

// Compare a 4-window of `a` against every rotation of a 4-window of `b`;
// the combined equality mask says which lanes of `a` matched. Windows
// advance by whichever side has the smaller maximum, so no match is ever
// skipped (classic V1 kernel).
__attribute__((target("sse4.2"))) int32_t IntersectLinearSseImpl(const int32_t* a, int32_t an,
                                                                 const int32_t* b, int32_t bn,
                                                                 int32_t* out) {
  int32_t i = 0, j = 0, k = 0;
  while (i + 4 <= an && j + 4 <= bn) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x39)));  // rot 1
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x4e)));  // rot 2
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x93)));  // rot 3
    int mask = _mm_movemask_ps(_mm_castsi128_ps(eq));
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      out[k++] = a[i + lane];
      mask &= mask - 1;
    }
    const int32_t amax = a[i + 3];
    const int32_t bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  return k + IntersectLinearScalar(a + i, an - i, b + j, bn - j, out + k);
}

__attribute__((target("avx2"))) int32_t IntersectLinearAvx2Impl(const int32_t* a, int32_t an,
                                                                const int32_t* b, int32_t bn,
                                                                int32_t* out) {
  // Rotation index vectors for _mm256_permutevar8x32_epi32.
  const __m256i rot[7] = {
      _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0), _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1),
      _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2), _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3),
      _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4), _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5),
      _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6)};
  int32_t i = 0, j = 0, k = 0;
  while (i + 8 <= an && j + 8 <= bn) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    for (int r = 0; r < 7; ++r) {
      eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot[r])));
    }
    int mask = _mm256_movemask_ps(_mm256_castsi256_ps(eq));
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      out[k++] = a[i + lane];
      mask &= mask - 1;
    }
    const int32_t amax = a[i + 7];
    const int32_t bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  return k + IntersectLinearScalar(a + i, an - i, b + j, bn - j, out + k);
}

#endif  // KJOIN_SIMD_X86

// Galloping core, parameterized on the vector probe width and a probe
// functor: probe(b + pos) inspects W consecutive values and returns
// (count of values < target, whether any value == target).
template <int W, typename Probe>
int32_t GallopImpl(const int32_t* a, int32_t an, const int32_t* b, int32_t bn, int32_t* out,
                   const Probe& probe) {
  // Drive with the shorter list so the skips happen in the longer one.
  if (an > bn) return GallopImpl<W>(b, bn, a, an, out, probe);
  int32_t k = 0;
  int32_t j = 0;
  for (int32_t i = 0; i < an && j < bn; ++i) {
    const int32_t target = a[i];
    // Exponential search for a window whose tail reaches the target.
    int32_t step = W;
    while (j + step < bn && b[j + step - 1] < target) {
      j += step;
      step <<= 1;
    }
    // Binary-shrink [j, hi) down to one probe window.
    int32_t hi = std::min(j + step, bn);
    while (hi - j > W) {
      const int32_t mid = j + (hi - j) / 2;
      if (b[mid] < target) {
        j = mid + 1;
      } else {
        hi = mid;
      }
    }
    // The shrink leaves the lower bound anywhere in [j, j + W] — one past
    // the probe window — so keep probing while a window comes back all-
    // below; the tail shorter than W falls through to the scalar walk.
    bool resolved = false;
    while (j + W <= bn) {
      const auto [below, found] = probe(b + j, target);
      j += below;
      if (found) out[k++] = target;
      if (found || below < W) {
        resolved = true;
        break;
      }
    }
    if (!resolved) {
      while (j < bn && b[j] < target) ++j;
      if (j < bn && b[j] == target) out[k++] = target;
    }
  }
  return k;
}

// Probe functors: structs (not lambdas) so the vector variants can carry
// the per-function target attribute through the template instantiation.
struct ProbeScalar {
  std::pair<int32_t, bool> operator()(const int32_t* p, int32_t target) const {
    return {*p < target ? 1 : 0, *p == target};
  }
};

int32_t IntersectGallopScalar(const int32_t* a, int32_t an, const int32_t* b, int32_t bn,
                              int32_t* out) {
  return GallopImpl<1>(a, an, b, bn, out, ProbeScalar{});
}

#if KJOIN_SIMD_X86

struct ProbeSse {
  __attribute__((target("sse4.2"))) std::pair<int32_t, bool> operator()(const int32_t* p,
                                                                        int32_t target) const {
    const __m128i w = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i t = _mm_set1_epi32(target);
    const int lt = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmplt_epi32(w, t)));
    const int eq = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(w, t)));
    return {__builtin_popcount(static_cast<unsigned>(lt)), eq != 0};
  }
};

struct ProbeAvx2 {
  __attribute__((target("avx2"))) std::pair<int32_t, bool> operator()(const int32_t* p,
                                                                      int32_t target) const {
    const __m256i w = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const __m256i t = _mm256_set1_epi32(target);
    const int gt = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(w, t)));
    const int eq = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(w, t)));
    const int ge = gt | eq;
    const int below = ge == 0 ? 8 : __builtin_ctz(static_cast<unsigned>(ge));
    return {below, eq != 0};
  }
};

int32_t IntersectGallopSseImpl(const int32_t* a, int32_t an, const int32_t* b, int32_t bn,
                               int32_t* out) {
  return GallopImpl<4>(a, an, b, bn, out, ProbeSse{});
}

int32_t IntersectGallopAvx2Impl(const int32_t* a, int32_t an, const int32_t* b, int32_t bn,
                                int32_t* out) {
  return GallopImpl<8>(a, an, b, bn, out, ProbeAvx2{});
}

#endif  // KJOIN_SIMD_X86

// ---------------------------------------------------------------------------
// Accumulator extraction.

int32_t ExtractScalar(uint8_t* counts, int32_t block_begin, int32_t len, int threshold,
                      int32_t* out) {
  int32_t k = 0;
  for (int32_t i = 0; i < len; ++i) {
    if (counts[i] >= threshold) out[k++] = block_begin + i;
    counts[i] = 0;
  }
  return k;
}

#if KJOIN_SIMD_X86

__attribute__((target("sse4.2"))) int32_t ExtractSseImpl(uint8_t* counts, int32_t block_begin,
                                                         int32_t len, int threshold,
                                                         int32_t* out) {
  const __m128i vt = _mm_set1_epi8(static_cast<char>(threshold));
  const __m128i zero = _mm_setzero_si128();
  int32_t k = 0;
  int32_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(counts + i));
    // v >= t (unsigned): max(v, t) == v.
    const __m128i ge = _mm_cmpeq_epi8(_mm_max_epu8(v, vt), v);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(counts + i), zero);
    int mask = _mm_movemask_epi8(ge);
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      out[k++] = block_begin + i + lane;
      mask &= mask - 1;
    }
  }
  return k + ExtractScalar(counts + i, block_begin + i, len - i, threshold, out + k);
}

__attribute__((target("avx2"))) int32_t ExtractAvx2Impl(uint8_t* counts, int32_t block_begin,
                                                        int32_t len, int threshold,
                                                        int32_t* out) {
  const __m256i vt = _mm256_set1_epi8(static_cast<char>(threshold));
  const __m256i zero = _mm256_setzero_si256();
  int32_t k = 0;
  int32_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counts + i));
    const __m256i ge = _mm256_cmpeq_epi8(_mm256_max_epu8(v, vt), v);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(counts + i), zero);
    uint32_t mask = static_cast<uint32_t>(_mm256_movemask_epi8(ge));
    while (mask != 0) {
      const int lane = __builtin_ctz(mask);
      out[k++] = block_begin + i + lane;
      mask &= mask - 1;
    }
  }
  return k + ExtractScalar(counts + i, block_begin + i, len - i, threshold, out + k);
}

#endif  // KJOIN_SIMD_X86

}  // namespace

const char* IsaLevelName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kSse42:
      return "sse4.2";
    case IsaLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

IsaLevel MaxSupportedLevel() {
#if KJOIN_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return IsaLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return IsaLevel::kSse42;
#endif
  return IsaLevel::kScalar;
}

IsaLevel ActiveLevel() {
  int level = g_active_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(ResolveLevel());
    g_active_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<IsaLevel>(level);
}

void SetActiveLevelForTest(IsaLevel level) {
  const IsaLevel clamped = std::min(level, MaxSupportedLevel());
  g_active_level.store(static_cast<int>(clamped), std::memory_order_relaxed);
}

void ResetActiveLevelForTest() { g_active_level.store(-1, std::memory_order_relaxed); }

void DecodeDeltaBlockAt(IsaLevel level, const uint64_t* words, int bits, int32_t count,
                        int32_t first, int32_t* out) {
  KJOIN_DCHECK(bits >= 0 && bits <= 32);
#if KJOIN_SIMD_X86
  switch (level) {
    case IsaLevel::kAvx2:
      DecodeAvx2(words, bits, count, first, out);
      return;
    case IsaLevel::kSse42:
      DecodeSse42(words, bits, count, first, out);
      return;
    case IsaLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  DecodeScalar(words, bits, count, first, out);
}

void DecodeDeltaBlock(const uint64_t* words, int bits, int32_t count, int32_t first,
                      int32_t* out) {
  DecodeDeltaBlockAt(ActiveLevel(), words, bits, count, first, out);
}

int32_t IntersectLinearAt(IsaLevel level, const int32_t* a, int32_t an, const int32_t* b,
                          int32_t bn, int32_t* out) {
#if KJOIN_SIMD_X86
  switch (level) {
    case IsaLevel::kAvx2:
      return IntersectLinearAvx2Impl(a, an, b, bn, out);
    case IsaLevel::kSse42:
      return IntersectLinearSseImpl(a, an, b, bn, out);
    case IsaLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return IntersectLinearScalar(a, an, b, bn, out);
}

int32_t IntersectGallopAt(IsaLevel level, const int32_t* a, int32_t an, const int32_t* b,
                          int32_t bn, int32_t* out) {
#if KJOIN_SIMD_X86
  switch (level) {
    case IsaLevel::kAvx2:
      return IntersectGallopAvx2Impl(a, an, b, bn, out);
    case IsaLevel::kSse42:
      return IntersectGallopSseImpl(a, an, b, bn, out);
    case IsaLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return IntersectGallopScalar(a, an, b, bn, out);
}

int32_t IntersectSortedAt(IsaLevel level, const int32_t* a, int32_t an, const int32_t* b,
                          int32_t bn, int32_t* out) {
  const int64_t small = std::min(an, bn);
  const int64_t large = std::max(an, bn);
  if (small == 0) return 0;
  if (large >= small * kGallopRatio) return IntersectGallopAt(level, a, an, b, bn, out);
  return IntersectLinearAt(level, a, an, b, bn, out);
}

int32_t IntersectSorted(const int32_t* a, int32_t an, const int32_t* b, int32_t bn,
                        int32_t* out) {
  return IntersectSortedAt(ActiveLevel(), a, an, b, bn, out);
}

void AccumulateCounts(const int32_t* docs, int32_t n, uint8_t* counts, uint64_t* touched) {
  // Scalar on purpose: the increments are data-dependent scattered
  // byte stores, which no pre-AVX-512 gather/scatter beats; the vector
  // win on this path is the thresholded extraction.
  for (int32_t t = 0; t < n; ++t) {
    const uint32_t d = static_cast<uint32_t>(docs[t]);
    const uint32_t block = d / static_cast<uint32_t>(kCounterBlock);
    touched[block >> 6] |= uint64_t{1} << (block & 63);
    const uint8_t c = counts[d];
    counts[d] = c + (c != 0xff ? 1 : 0);
  }
}

int32_t ExtractAndClearBlockAt(IsaLevel level, uint8_t* counts, int32_t block_begin,
                               int32_t len, int threshold, int32_t* out) {
#if KJOIN_SIMD_X86
  switch (level) {
    case IsaLevel::kAvx2:
      return ExtractAvx2Impl(counts, block_begin, len, threshold, out);
    case IsaLevel::kSse42:
      return ExtractSseImpl(counts, block_begin, len, threshold, out);
    case IsaLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return ExtractScalar(counts, block_begin, len, threshold, out);
}

int32_t ExtractAndClearBlock(uint8_t* counts, int32_t block_begin, int32_t len, int threshold,
                             int32_t* out) {
  return ExtractAndClearBlockAt(ActiveLevel(), counts, block_begin, len, threshold, out);
}

}  // namespace kjoin::simd
