#ifndef KJOIN_CORE_CLUSTERING_H_
#define KJOIN_CORE_CLUSTERING_H_

// Turning join results into entity clusters.
//
// Deduplication and web clustering — the applications the paper's
// introduction motivates — consume the join's similar pairs as an
// equivalence signal: records connected through chains of similar pairs
// describe one entity. This module builds those connected components and
// evaluates them against ground-truth clusters.

#include <cstdint>
#include <utility>
#include <vector>

namespace kjoin {

struct Clustering {
  // cluster_of[i] = dense cluster id of record i (singletons included).
  std::vector<int32_t> cluster_of;
  int32_t num_clusters = 0;

  // Members per cluster, each sorted ascending; clusters ordered by their
  // smallest member.
  std::vector<std::vector<int32_t>> clusters;
};

// Connected components of the pair graph over `num_records` records.
// Pairs may repeat and may be unordered; out-of-range indices are
// rejected with a CHECK.
Clustering ClusterPairs(int64_t num_records,
                        const std::vector<std::pair<int32_t, int32_t>>& pairs);

// Pairwise cluster quality: precision/recall/F1 over the *implied pair
// sets* of the two clusterings (the standard pairwise measure for entity
// resolution). `truth_cluster_of[i] < 0` marks records with no duplicate.
struct ClusterQuality {
  int64_t predicted_pairs = 0;
  int64_t truth_pairs = 0;
  int64_t common_pairs = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

ClusterQuality EvaluateClustering(const Clustering& predicted,
                                  const std::vector<int32_t>& truth_cluster_of);

}  // namespace kjoin

#endif  // KJOIN_CORE_CLUSTERING_H_
