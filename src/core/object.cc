#include "core/object.h"

namespace kjoin {

ObjectBuilder::ObjectBuilder(const EntityMatcher& matcher, bool multi_mapping)
    : matcher_(&matcher), multi_mapping_(multi_mapping) {}

int32_t ObjectBuilder::InternToken(const std::string& token) {
  auto [it, inserted] = token_ids_.emplace(token, static_cast<int32_t>(token_ids_.size()));
  return it->second;
}

void ObjectBuilder::PreloadTokens(const std::vector<std::string>& tokens) {
  KJOIN_CHECK(token_ids_.empty()) << "PreloadTokens needs a fresh builder";
  for (const std::string& token : tokens) {
    const int32_t id = InternToken(token);
    KJOIN_CHECK_EQ(static_cast<size_t>(id) + 1, token_ids_.size())
        << "duplicate token in preload table: " << token;
  }
}

std::vector<std::string> ObjectBuilder::TokenTable() const {
  std::vector<std::string> table(token_ids_.size());
  for (const auto& [token, id] : token_ids_) table[id] = token;
  return table;
}

Object ObjectBuilder::Build(int32_t id, const std::vector<std::string>& tokens) {
  Object object;
  object.id = id;
  object.elements.reserve(tokens.size());
  for (const std::string& raw : tokens) {
    const std::string token = tokenizer_.Normalize(raw);
    if (token.empty()) continue;
    Element element;
    element.token = token;
    element.token_id = InternToken(token);
    if (multi_mapping_) {
      for (const EntityMatch& match : matcher_->MatchAll(token)) {
        element.mappings.push_back({match.node, match.phi});
      }
    } else if (auto match = matcher_->MatchOne(token); match.has_value()) {
      element.mappings.push_back({match->node, match->phi});
    }
    object.elements.push_back(std::move(element));
  }
  return object;
}

Object ObjectBuilder::BuildFromText(int32_t id, std::string_view text) {
  return Build(id, tokenizer_.Tokenize(text));
}

Object ObjectBuilder::BuildWithSpans(int32_t id, const std::vector<std::string>& tokens,
                                     int max_span) {
  Object object;
  object.id = id;
  // Normalize once.
  std::vector<std::string> normalized;
  normalized.reserve(tokens.size());
  for (const std::string& raw : tokens) {
    std::string token = tokenizer_.Normalize(raw);
    if (!token.empty()) normalized.push_back(std::move(token));
  }

  size_t i = 0;
  while (i < normalized.size()) {
    size_t taken = 1;
    Element element;
    // Longest span first; multi-token spans must match exactly (φ = 1).
    for (size_t span = std::min<size_t>(max_span, normalized.size() - i); span >= 2; --span) {
      std::string concatenated;
      for (size_t k = 0; k < span; ++k) concatenated += normalized[i + k];
      const auto match = matcher_->MatchOne(concatenated);
      if (!match.has_value()) continue;
      element.token = concatenated;
      element.token_id = InternToken(concatenated);
      if (multi_mapping_) {
        for (const EntityMatch& m : matcher_->MatchAll(concatenated)) {
          element.mappings.push_back({m.node, m.phi});
        }
      } else {
        element.mappings.push_back({match->node, match->phi});
      }
      taken = span;
      break;
    }
    if (taken == 1) {
      element.token = normalized[i];
      element.token_id = InternToken(normalized[i]);
      if (multi_mapping_) {
        for (const EntityMatch& m : matcher_->MatchAll(normalized[i])) {
          element.mappings.push_back({m.node, m.phi});
        }
      } else if (auto match = matcher_->MatchOne(normalized[i]); match.has_value()) {
        element.mappings.push_back({match->node, match->phi});
      }
    }
    object.elements.push_back(std::move(element));
    i += taken;
  }
  return object;
}

}  // namespace kjoin
